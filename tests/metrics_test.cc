// Unit tests for FScore (paper Eq. 38), NMI, purity and ARI.

#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rhchme {
namespace eval {
namespace {

using Labels = std::vector<std::size_t>;

TEST(ContingencyTable, CountsAndSizes) {
  Labels truth = {0, 0, 1, 1, 2};
  Labels pred = {1, 1, 0, 1, 2};
  Result<ContingencyTable> t = ContingencyTable::Build(truth, pred);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_classes(), 3u);
  EXPECT_EQ(t.value().num_clusters(), 3u);
  EXPECT_EQ(t.value().total(), 5u);
  EXPECT_EQ(t.value().class_size(0), 2u);
  // Cluster ids are compacted in order of first appearance: predicted
  // label 1 becomes compact id 0, so class 0 pairs with cluster 0.
  EXPECT_EQ(t.value().joint(0, 0), 2u);
}

TEST(ContingencyTable, NonContiguousLabelsCompacted) {
  Labels truth = {7, 7, 42};
  Labels pred = {100, 3, 3};
  Result<ContingencyTable> t = ContingencyTable::Build(truth, pred);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_classes(), 2u);
  EXPECT_EQ(t.value().num_clusters(), 2u);
}

TEST(ContingencyTable, RejectsBadInput) {
  EXPECT_FALSE(ContingencyTable::Build({}, {}).ok());
  EXPECT_FALSE(ContingencyTable::Build({1, 2}, {1}).ok());
}

TEST(FScore, PerfectClusteringIsOne) {
  Labels y = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(FScore(y, y).value(), 1.0);
}

TEST(FScore, PermutedLabelsStillPerfect) {
  Labels truth = {0, 0, 1, 1, 2, 2};
  Labels pred = {2, 2, 0, 0, 1, 1};  // Same partition, renamed.
  EXPECT_DOUBLE_EQ(FScore(truth, pred).value(), 1.0);
}

TEST(FScore, HandComputedCase) {
  // Classes {a,a,b,b}; clusters {0,0,0,1}.
  // Class a: best cluster 0 -> P=2/3, R=1, F=0.8.
  // Class b: cluster 0 gives P=1/3,R=1/2,F=0.4; cluster 1 gives P=1,R=1/2,
  // F=2/3 -> best 2/3. Weighted: 0.5*0.8 + 0.5*2/3 = 0.7333...
  Labels truth = {0, 0, 1, 1};
  Labels pred = {0, 0, 0, 1};
  EXPECT_NEAR(FScore(truth, pred).value(), 0.5 * 0.8 + 0.5 * (2.0 / 3.0),
              1e-12);
}

TEST(FScore, SingleClusterOnBalancedClasses) {
  // All objects in one cluster over k balanced classes: each class has
  // P = 1/k, R = 1 -> F = 2/(k+1).
  Labels truth = {0, 0, 1, 1, 2, 2};
  Labels pred = {0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(FScore(truth, pred).value(), 2.0 / 4.0, 1e-12);
}

TEST(Nmi, PerfectClusteringIsOne) {
  Labels y = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(Nmi(y, y).value(), 1.0, 1e-12);
}

TEST(Nmi, PermutationInvariant) {
  Labels truth = {0, 0, 1, 1, 2, 2};
  Labels pred = {1, 1, 2, 2, 0, 0};
  EXPECT_NEAR(Nmi(truth, pred).value(), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionIsNearZero) {
  // Pred splits orthogonally to truth.
  Labels truth = {0, 0, 1, 1};
  Labels pred = {0, 1, 0, 1};
  EXPECT_NEAR(Nmi(truth, pred).value(), 0.0, 1e-12);
}

TEST(Nmi, SingleClusterConventions) {
  Labels truth = {0, 0, 1, 1};
  Labels one = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Nmi(truth, one).value(), 0.0);
  EXPECT_DOUBLE_EQ(Nmi(one, one).value(), 1.0);
}

TEST(Nmi, AllSingletonConventions) {
  // Both partitions all-singletons: identical, maximally informative.
  Labels singletons = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(Nmi(singletons, singletons).value(), 1.0);
  // Singletons against a 2-class truth: MI = H(truth), so the normalised
  // score is sqrt(H(truth)/log n) = sqrt(ln2/ln4) here.
  Labels truth = {0, 0, 1, 1};
  EXPECT_NEAR(Nmi(truth, singletons).value(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Nmi, SymmetricInArguments) {
  Rng rng(1);
  Labels a(50), b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a[i] = rng.UniformInt(4);
    b[i] = rng.UniformInt(3);
  }
  EXPECT_NEAR(Nmi(a, b).value(), Nmi(b, a).value(), 1e-12);
}

TEST(Nmi, BoundedInUnitInterval) {
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    Labels a(30), b(30);
    for (std::size_t i = 0; i < 30; ++i) {
      a[i] = rng.UniformInt(5);
      b[i] = rng.UniformInt(5);
    }
    double v = Nmi(a, b).value();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Purity, HandComputed) {
  Labels truth = {0, 0, 1, 1, 1};
  Labels pred = {0, 0, 0, 1, 1};
  // Cluster 0 majority 2 (class 0), cluster 1 majority 2 (class 1) -> 4/5.
  EXPECT_NEAR(Purity(truth, pred).value(), 0.8, 1e-12);
}

TEST(Purity, PerfectIsOne) {
  Labels y = {0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(Purity(y, y).value(), 1.0);
}

TEST(Purity, TrivialPartitionBounds) {
  Labels truth = {0, 0, 0, 1, 2, 2};
  // One cluster: purity is the largest class fraction.
  EXPECT_NEAR(Purity(truth, Labels(6, 0)).value(), 0.5, 1e-12);
  // All singletons: every cluster is trivially pure.
  Labels singletons = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Purity(truth, singletons).value(), 1.0);
}

TEST(Ari, PerfectIsOne) {
  Labels y = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(y, y).value(), 1.0, 1e-12);
}

TEST(Ari, TrivialPartitionConventions) {
  Labels truth = {0, 0, 1, 1};
  Labels one = {0, 0, 0, 0};
  Labels singletons = {0, 1, 2, 3};
  // Identical trivial partitions score 1 (matching the NMI convention);
  // a trivial partition against anything else carries no information.
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(one, one).value(), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(singletons, singletons).value(), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, one).value(), 0.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, singletons).value(), 0.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(one, singletons).value(), 0.0);
}

TEST(Ari, RandomPartitionsNearZero) {
  Rng rng(3);
  double acc = 0.0;
  const int reps = 50;
  for (int rep = 0; rep < reps; ++rep) {
    Labels a(100), b(100);
    for (std::size_t i = 0; i < 100; ++i) {
      a[i] = rng.UniformInt(4);
      b[i] = rng.UniformInt(4);
    }
    acc += AdjustedRandIndex(a, b).value();
  }
  EXPECT_NEAR(acc / reps, 0.0, 0.02);
}

TEST(Ari, KnownDisagreement) {
  Labels truth = {0, 0, 1, 1};
  Labels pred = {0, 1, 0, 1};
  EXPECT_LT(AdjustedRandIndex(truth, pred).value(), 0.01);
}

TEST(Metrics, ErrorOnMismatchedInput) {
  EXPECT_FALSE(FScore({0, 1}, {0}).ok());
  EXPECT_FALSE(Nmi({}, {}).ok());
  EXPECT_FALSE(Purity({0}, {}).ok());
  EXPECT_FALSE(AdjustedRandIndex({}, {0}).ok());
}

/// Property: metrics are invariant to any relabelling of the prediction.
class RelabelInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(RelabelInvarianceTest, AllMetricsInvariant) {
  Rng rng(100 + GetParam());
  Labels truth(60), pred(60);
  for (std::size_t i = 0; i < 60; ++i) {
    truth[i] = rng.UniformInt(4);
    pred[i] = rng.UniformInt(4);
  }
  // Random permutation of predicted ids.
  std::vector<std::size_t> perm = {0, 1, 2, 3};
  rng.Shuffle(&perm);
  Labels relabelled(60);
  for (std::size_t i = 0; i < 60; ++i) relabelled[i] = perm[pred[i]];

  EXPECT_NEAR(FScore(truth, pred).value(),
              FScore(truth, relabelled).value(), 1e-12);
  EXPECT_NEAR(Nmi(truth, pred).value(), Nmi(truth, relabelled).value(),
              1e-12);
  EXPECT_NEAR(Purity(truth, pred).value(),
              Purity(truth, relabelled).value(), 1e-12);
  EXPECT_NEAR(AdjustedRandIndex(truth, pred).value(),
              AdjustedRandIndex(truth, relabelled).value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelabelInvarianceTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace eval
}  // namespace rhchme
