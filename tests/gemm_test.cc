// Unit and property tests for the GEMM kernels.

#include "la/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "scoped_num_threads.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

/// Reference triple-loop product for validating the optimised kernels.
Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Gemm, HandComputedProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(6, 6, &rng);
  EXPECT_LT(MaxAbsDiff(Multiply(a, Matrix::Identity(6)), a), 1e-15);
  EXPECT_LT(MaxAbsDiff(Multiply(Matrix::Identity(6), a), a), 1e-15);
}

/// Property sweep over shapes: all kernel variants agree with the naive
/// reference and with each other through transposes.
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, VariantsAgreeWithNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(100 + m * 31 + k * 7 + n);
  Matrix a = Matrix::RandomNormal(m, k, &rng);
  Matrix b = Matrix::RandomNormal(k, n, &rng);
  Matrix expected = NaiveMultiply(a, b);

  EXPECT_LT(MaxAbsDiff(Multiply(a, b), expected), 1e-10);
  EXPECT_LT(MaxAbsDiff(MultiplyTN(a.Transposed(), b), expected), 1e-10);
  EXPECT_LT(MaxAbsDiff(MultiplyNT(a, b.Transposed()), expected), 1e-10);
}

TEST_P(GemmShapeTest, TransposeIdentity) {
  auto [m, k, n] = GetParam();
  Rng rng(200 + m + k + n);
  Matrix a = Matrix::RandomNormal(m, k, &rng);
  Matrix b = Matrix::RandomNormal(k, n, &rng);
  // (A·B)ᵀ = Bᵀ·Aᵀ.
  Matrix lhs = Multiply(a, b).Transposed();
  Matrix rhs = Multiply(b.Transposed(), a.Transposed());
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 1, 8), std::make_tuple(2, 9, 7),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 5)));

// Ragged shapes that stress the blocked kernels' tile edges: degenerate
// 1x1, single-row against a wide reduction, tall-and-skinny panels that
// straddle row-panel boundaries, wide outputs that straddle the column
// tile, reduction dims straddling the k tile, and empty matrices.
INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 300, 1),     // 1xk row vector
                      std::make_tuple(1, 7, 90),      // single-row output
                      std::make_tuple(130, 3, 2),     // tall: > kRowPanel rows
                      std::make_tuple(2, 3, 1000),    // wide: > kBlockJ cols
                      std::make_tuple(5, 200, 5),     // k > kBlockK
                      std::make_tuple(65, 65, 65),    // off-by-one vs tiles
                      std::make_tuple(0, 0, 0),       // fully empty
                      std::make_tuple(0, 4, 3),       // empty output rows
                      std::make_tuple(3, 0, 4)));     // empty reduction

// Microtile edges of the packed SIMD kernel: row counts straddling the
// 4-row register tile, column counts straddling the vector-panel width
// (kNr = 8 on AVX2, 4 on NEON) and the column block, and reduction depths
// straddling the k tile.
INSTANTIATE_TEST_SUITE_P(
    MicroTileEdges, GemmShapeTest,
    ::testing::Values(std::make_tuple(4, 64, 8),      // exact 4 x kNr tiles
                      std::make_tuple(5, 64, 9),      // +1 row, +1 col
                      std::make_tuple(3, 63, 7),      // -1 of everything
                      std::make_tuple(37, 70, 23),    // nothing divides
                      std::make_tuple(4, 1, 8),       // minimal reduction
                      std::make_tuple(34, 129, 260)));  // tails in all dims

TEST(Gemm, EmptyReductionYieldsZeroMatrix) {
  Matrix a(4, 0);
  Matrix b(0, 6);
  Matrix c = Multiply(a, b);
  EXPECT_EQ(c.rows(), 4u);
  EXPECT_EQ(c.cols(), 6u);
  EXPECT_EQ(c.MaxAbs(), 0.0);
}

TEST(Gemm, AssociativityProperty) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(6, 4, &rng);
  Matrix b = Matrix::RandomNormal(4, 5, &rng);
  Matrix c = Matrix::RandomNormal(5, 3, &rng);
  Matrix lhs = Multiply(Multiply(a, b), c);
  Matrix rhs = Multiply(a, Multiply(b, c));
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-10);
}

TEST(Gemm, GramMatchesExplicitProduct) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(9, 6, &rng);
  Matrix expected = Multiply(a.Transposed(), a);
  Matrix g = Gram(a);
  EXPECT_LT(MaxAbsDiff(g, expected), 1e-10);
  // Symmetry.
  EXPECT_LT(MaxAbsDiff(g, g.Transposed()), 1e-15);
}

TEST(Gemm, MultiplyIntoReusesBuffer) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(4, 4, &rng);
  Matrix b = Matrix::RandomNormal(4, 4, &rng);
  Matrix c(2, 2, 99.0);  // Wrong shape, stale contents.
  MultiplyInto(a, b, &c);
  EXPECT_LT(MaxAbsDiff(c, NaiveMultiply(a, b)), 1e-10);
}

TEST(Gemm, VectorProducts) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  std::vector<double> x = {1, 1, 1};
  EXPECT_EQ(MultiplyVec(a, x), (std::vector<double>{6, 15}));
  std::vector<double> y = {1, 2};
  EXPECT_EQ(MultiplyTVec(a, y), (std::vector<double>{9, 12, 15}));
}

TEST(Gemm, FrobeniusInnerMatchesTrace) {
  Rng rng(6);
  Matrix a = Matrix::RandomNormal(5, 7, &rng);
  Matrix b = Matrix::RandomNormal(5, 7, &rng);
  // <A, B>_F = tr(Aᵀ B).
  double expected = Multiply(a.Transposed(), b).Trace();
  EXPECT_NEAR(FrobeniusInner(a, b), expected, 1e-10);
}

TEST(Gemm, StreamingTNMatchesNaive) {
  Rng rng(23);
  // Square-A (the solver's Mᵀ·G shape) and rectangular shapes.
  for (auto [k, m, n] : {std::make_tuple(40, 40, 7), std::make_tuple(9, 5, 3),
                         std::make_tuple(300, 300, 4)}) {
    Matrix a = Matrix::RandomNormal(k, m, &rng);
    Matrix b = Matrix::RandomNormal(k, n, &rng);
    Matrix got;
    MultiplyTNStreamInto(a, b, &got);
    EXPECT_LT(MaxAbsDiff(got, NaiveMultiply(a.Transposed(), b)), 1e-9)
        << k << "x" << m << " * " << k << "x" << n;
  }
}

TEST(Gemm, StreamingTNHandlesEmptyShapes) {
  Matrix got;
  MultiplyTNStreamInto(Matrix(0, 3), Matrix(0, 2), &got);
  EXPECT_EQ(got.rows(), 3u);
  EXPECT_EQ(got.cols(), 2u);
  EXPECT_EQ(got.MaxAbs(), 0.0);
}

TEST(Gemm, StreamingTNIsBitStableAcrossThreadCounts) {
  Rng rng(24);
  Matrix a = Matrix::RandomNormal(500, 500, &rng);
  Matrix b = Matrix::RandomNormal(500, 6, &rng);
  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Matrix c;
    MultiplyTNStreamInto(a, b, &c);
    return c;
  };
  EXPECT_EQ(MaxAbsDiff(run(1), run(4)), 0.0);
}

TEST(Gemm, SandwichMatchesExplicitTrace) {
  Rng rng(17);
  Matrix g = Matrix::RandomNormal(23, 4, &rng);
  Matrix l = Matrix::RandomNormal(23, 23, &rng);
  // tr(Gᵀ L G) via the explicit product chain.
  const double expected = MultiplyTN(g, Multiply(l, g)).Trace();
  EXPECT_NEAR(Sandwich(g, l), expected, 1e-9);
}

TEST(Gemm, SandwichOfLaplacianLikeMatrixIsNonNegative) {
  // For L = D - W (diagonally dominant PSD), tr(GᵀLG) >= 0.
  Matrix w = Matrix::FromRows({{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  std::vector<double> deg = w.RowSums();
  Matrix l = Matrix::Diagonal(deg);
  l.Sub(w);
  Rng rng(23);
  Matrix g = Matrix::RandomNormal(3, 2, &rng);
  EXPECT_GE(Sandwich(g, l), -1e-12);
}

TEST(Gemm, SandwichEmptyIsZero) {
  EXPECT_EQ(Sandwich(Matrix(), Matrix()), 0.0);
  EXPECT_EQ(Sandwich(Matrix(4, 0), Matrix(4, 4)), 0.0);
}

TEST(Gemm, SparseInputsShortCircuit) {
  // Zero blocks must not pollute the result (the kernels skip zeros).
  Matrix a(30, 30);
  Matrix b(30, 30);
  a(3, 4) = 2.0;
  b(4, 9) = 5.0;
  Matrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(3, 9), 10.0);
  EXPECT_DOUBLE_EQ(c.Sum(), 10.0);
}

TEST(Gemm, MixedDensityTilesAgreeWithNaive) {
  // A membership-like A: the left half is one-nonzero-per-row (sparse
  // tiles take the zero-skip path), the right half dense (packed path).
  // Both paths must land in the same product.
  Rng rng(40);
  const std::size_t n = 96;
  Matrix a(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i % n) = rng.Uniform(0.5, 1.5);
    for (std::size_t j = n; j < 2 * n; ++j) a(i, j) = rng.Normal(0.0, 1.0);
  }
  Matrix b = Matrix::RandomNormal(2 * n, 17, &rng);
  EXPECT_LT(MaxAbsDiff(Multiply(a, b), NaiveMultiply(a, b)), 1e-9);
}

TEST(Gemm, MultiplyIsBitStableAcrossThreadCounts) {
  // The density probe runs per 32-row panel on the global row grid, so
  // sparse/dense path choices — and the result — cannot depend on how
  // ParallelFor chunks the rows.
  Rng rng(41);
  Matrix a = Matrix::RandomNormal(150, 90, &rng);
  // Zero a band so some panels probe sparse while others stay dense.
  for (std::size_t i = 40; i < 100; ++i) {
    for (std::size_t j = 0; j < 90; ++j) a(i, j) = (j % 19 == 0) ? a(i, j) : 0.0;
  }
  Matrix b = Matrix::RandomNormal(90, 70, &rng);
  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    return Multiply(a, b);
  };
  EXPECT_EQ(MaxAbsDiff(run(1), run(4)), 0.0);
}

TEST(Gemm, FrobeniusInnerIgnoresRowPadding) {
  // 5 columns forces a padded stride; the row-wise reduction must only
  // see logical columns.
  Rng rng(42);
  Matrix a = Matrix::RandomNormal(9, 5, &rng);
  Matrix b = Matrix::RandomNormal(9, 5, &rng);
  double expected = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) expected += a(i, j) * b(i, j);
  }
  EXPECT_NEAR(FrobeniusInner(a, b), expected, 1e-12);
}

TEST(Gemm, MultiplyTVecMatchesNaiveOnLargeInput) {
  Rng rng(43);
  const std::size_t rows = 700, cols = 41;
  Matrix a = Matrix::RandomNormal(rows, cols, &rng);
  std::vector<double> x(rows);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  std::vector<double> naive(cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) naive[j] += x[i] * a(i, j);
  }
  std::vector<double> got = MultiplyTVec(a, x);
  ASSERT_EQ(got.size(), cols);
  for (std::size_t j = 0; j < cols; ++j) {
    EXPECT_NEAR(got[j], naive[j], 1e-9) << "j=" << j;
  }
}

TEST(Gemm, MultiplyTVecIsBitStableAcrossThreadCounts) {
  Rng rng(44);
  Matrix a = Matrix::RandomNormal(900, 60, &rng);
  std::vector<double> x(900);
  for (double& v : x) v = rng.Normal(0.0, 1.0);
  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    return MultiplyTVec(a, x);
  };
  const std::vector<double> serial = run(1);
  const std::vector<double> pooled = run(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t j = 0; j < serial.size(); ++j) {
    EXPECT_EQ(serial[j], pooled[j]) << "j=" << j;
  }
}

}  // namespace
}  // namespace la
}  // namespace rhchme
