// Tests for the util/parallel thread-pool layer: ParallelFor coverage and
// chunking semantics, deterministic ParallelSum reductions, nested-region
// serialisation, and end-to-end bit-stability of Rhchme::Fit across thread
// counts (the guarantee that lets RHCHME_NUM_THREADS vary freely between
// machines without changing paper-reproduction numbers).

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <utility>
#include <vector>

#include "core/rhchme_solver.h"
#include "data/synthetic.h"
#include "la/gemm.h"
#include "scoped_num_threads.h"
#include "util/rng.h"

namespace rhchme {
namespace util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ScopedNumThreads threads(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, kN, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ChunksRespectGrainAlignment) {
  ScopedNumThreads threads(3);
  // Chunk starts must sit at begin + k*grain regardless of thread count —
  // the property deterministic reductions rely on.
  constexpr std::size_t kBegin = 5, kEnd = 103, kGrain = 10;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  ParallelFor(kBegin, kEnd, kGrain, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back({b, e});
  });
  std::size_t covered = 0;
  for (const auto& [b, e] : seen) {
    EXPECT_EQ((b - kBegin) % kGrain, 0u);
    EXPECT_LE(e, kEnd);
    covered += e - b;
  }
  EXPECT_EQ(covered, kEnd - kBegin);
}

TEST(ParallelFor, EmptyAndSingleChunkRanges) {
  ScopedNumThreads threads(4);
  int calls = 0;
  ParallelFor(3, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(0, 5, 100, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
  });
  EXPECT_EQ(calls, 1);
  // Grain 0 is clamped to 1 rather than dividing by zero.
  std::atomic<int> indices{0};
  ParallelFor(0, 4, 0, [&](std::size_t b, std::size_t e) {
    indices.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(indices.load(), 4);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  ScopedNumThreads threads(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t outer = ob; outer < oe; ++outer) {
      ParallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t inner = b; inner < e; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

TEST(ParallelSum, MatchesSerialSumBitForBitAcrossThreadCounts) {
  Rng rng(99);
  std::vector<double> v(5001);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  const auto chunk_sum = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += v[i];
    return acc;
  };
  constexpr std::size_t kGrain = 64;
  double reference;
  {
    ScopedNumThreads threads(1);
    reference = ParallelSum(0, v.size(), kGrain, chunk_sum);
  }
  for (int n : {2, 4, 8}) {
    ScopedNumThreads threads(n);
    const double got = ParallelSum(0, v.size(), kGrain, chunk_sum);
    EXPECT_EQ(got, reference) << "threads=" << n;
  }
}

TEST(ParallelSum, EmptyRangeIsZero) {
  EXPECT_EQ(ParallelSum(4, 4, 8, [](std::size_t, std::size_t) {
              return 1.0;
            }),
            0.0);
}

TEST(NumThreadsApi, SetNumThreadsClampsToOne) {
  ScopedNumThreads threads(4);
  EXPECT_EQ(NumThreads(), 4);
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(-3);
  EXPECT_EQ(NumThreads(), 1);
}

TEST(GrainForWorkApi, ScalesInverselyWithPerIndexCost) {
  EXPECT_EQ(GrainForWork(kMinWorkPerChunk), 1u);
  EXPECT_EQ(GrainForWork(kMinWorkPerChunk / 2), 2u);
  EXPECT_GE(GrainForWork(0), 1u);
  EXPECT_GE(GrainForWork(kMinWorkPerChunk * 10), 1u);
}

TEST(GemmDeterminism, IdenticalProductsAcrossThreadCounts) {
  Rng rng(7);
  la::Matrix a = la::Matrix::RandomNormal(93, 41, &rng);
  la::Matrix b = la::Matrix::RandomNormal(41, 57, &rng);
  la::Matrix c1, c8;
  {
    ScopedNumThreads threads(1);
    la::MultiplyInto(a, b, &c1);
  }
  {
    ScopedNumThreads threads(8);
    la::MultiplyInto(a, b, &c8);
  }
  EXPECT_EQ(la::MaxAbsDiff(c1, c8), 0.0);
}

// The tentpole guarantee: a full Rhchme::Fit — GEMM, pNN graphs, k-means
// seeding, the multiplicative updates, and the E_R reweighting — produces
// identical labels and objective traces whether the pool has 1 thread or 8
// (equivalently RHCHME_NUM_THREADS=1 vs 8, which feed the same pool size).
TEST(RhchmeDeterminism, FitIsBitStableAcrossThreadCounts) {
  data::BlockWorldOptions data_opts;
  data_opts.objects_per_type = {24, 18, 12};
  data_opts.n_classes = 3;
  data_opts.seed = 21;

  core::RhchmeOptions opts;
  opts.max_iterations = 15;
  opts.lambda = 1.0;
  opts.beta = 50.0;
  opts.ensemble.subspace.spg.max_iterations = 10;

  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    data::MultiTypeRelationalData d =
        data::GenerateBlockWorld(data_opts).value();
    core::Rhchme solver(opts);
    Result<core::RhchmeResult> r = solver.Fit(d);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  };

  const core::RhchmeResult serial = run(1);
  const core::RhchmeResult threaded = run(8);

  ASSERT_EQ(serial.hocc.labels.size(), threaded.hocc.labels.size());
  for (std::size_t k = 0; k < serial.hocc.labels.size(); ++k) {
    EXPECT_EQ(serial.hocc.labels[k], threaded.hocc.labels[k]) << "type " << k;
  }
  ASSERT_EQ(serial.hocc.objective_trace.size(),
            threaded.hocc.objective_trace.size());
  for (std::size_t t = 0; t < serial.hocc.objective_trace.size(); ++t) {
    EXPECT_EQ(serial.hocc.objective_trace[t],
              threaded.hocc.objective_trace[t])
        << "iteration " << t;
  }
  EXPECT_EQ(la::MaxAbsDiff(serial.hocc.g, threaded.hocc.g), 0.0);
}

}  // namespace
}  // namespace util
}  // namespace rhchme
