// Pins the runtime-dispatched kernel layer (la/simd.h, la/kernels.h)
// against the scalar reference — for EVERY kernel table this binary
// carries and this CPU can run, not just the dispatched one.
//
// Contract under test (docs/ARCHITECTURE.md "Kernel layer"):
//   - element-parallel kernels (Axpy, Add, Sub, Scale, Hadamard) are
//     bit-identical to scalar in every table, including AVX-512 masked
//     tails;
//   - reassociated reductions (Dot, SquaredDistance) match scalar within
//     bounded rounding;
//   - the packed GEMM protocol (pack_a / pack_b / gemm_packed) of every
//     table computes C += A·B within reduction rounding;
//   - both hold for every tail width 1..2*widest-unroll+1, so no lane or
//     mask remainder path is left uncovered;
//   - table selection (ResolveTable) and the force override (ForceIsa /
//     RHCHME_FORCE_ISA) behave as documented.

#include "la/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "la/aligned.h"
#include "la/matrix.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

// Widths covering every lane-remainder case of the widest path (AVX-512
// uses two 8-lane accumulators, so the unrolled step is 16): 1..2*16+1.
constexpr std::size_t kMaxWidth = 2 * 2 * 8 + 1;

/// Every table name the registry knows; unavailable ones resolve to null.
const char* const kAllIsaNames[] = {"scalar", "avx2", "avx512", "neon"};

std::vector<double> RandomVec(std::size_t n, uint64_t seed, double lo = -1.0,
                              double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

/// Rounding bound for a reassociated n-term sum of products whose terms
/// are bounded by `term_mag`: a generous constant times n·eps·term_mag.
double ReductionTol(std::size_t n, double term_mag) {
  return 64.0 * static_cast<double>(n + 1) *
         std::numeric_limits<double>::epsilon() * (term_mag + 1.0);
}

/// Tables this binary carries AND this CPU can execute. Always holds at
/// least the scalar table.
std::vector<const simd::KernelTable*> RunnableTables() {
  std::vector<const simd::KernelTable*> tables;
  for (const char* name : kAllIsaNames) {
    if (const simd::KernelTable* t = simd::TableForName(name)) {
      tables.push_back(t);
    }
  }
  return tables;
}

TEST(SimdKernels, AxpyMatchesScalarExactlyAtAllTailWidths) {
  for (const simd::KernelTable* t : RunnableTables()) {
    for (std::size_t n = 1; n <= kMaxWidth; ++n) {
      std::vector<double> x = RandomVec(n, 100 + n);
      std::vector<double> y0 = RandomVec(n, 200 + n);
      std::vector<double> y1 = y0;
      t->axpy(0.7318, x.data(), y0.data(), n);
      simd::scalar::Axpy(0.7318, x.data(), y1.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(y0[i], y1[i]) << t->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, ElementwiseKernelsMatchScalarExactly) {
  for (const simd::KernelTable* t : RunnableTables()) {
    for (std::size_t n = 1; n <= kMaxWidth; ++n) {
      const std::vector<double> x = RandomVec(n, 300 + n);
      const std::vector<double> base = RandomVec(n, 400 + n);

      std::vector<double> a = base, b = base;
      t->add(a.data(), x.data(), n);
      simd::scalar::Add(b.data(), x.data(), n);
      EXPECT_EQ(a, b) << t->name << " Add n=" << n;

      a = base, b = base;
      t->sub(a.data(), x.data(), n);
      simd::scalar::Sub(b.data(), x.data(), n);
      EXPECT_EQ(a, b) << t->name << " Sub n=" << n;

      a = base, b = base;
      t->scale(a.data(), -1.25, n);
      simd::scalar::Scale(b.data(), -1.25, n);
      EXPECT_EQ(a, b) << t->name << " Scale n=" << n;

      a = base, b = base;
      t->hadamard(a.data(), x.data(), n);
      simd::scalar::Hadamard(b.data(), x.data(), n);
      EXPECT_EQ(a, b) << t->name << " Hadamard n=" << n;
    }
  }
}

TEST(SimdKernels, MaskedTailsWriteOnlyTheLiveRange) {
  // The element past the logical length must be untouched by every
  // kernel — catches a masked store (or a full-width store on a tail)
  // that bleeds one lane over.
  for (const simd::KernelTable* t : RunnableTables()) {
    for (std::size_t n = 1; n <= kMaxWidth; ++n) {
      std::vector<double> x = RandomVec(n + 1, 500 + n);
      std::vector<double> y = RandomVec(n + 1, 600 + n);
      const double sentinel_x = x[n], sentinel_y = y[n];
      t->axpy(1.5, x.data(), y.data(), n);
      t->add(y.data(), x.data(), n);
      t->sub(y.data(), x.data(), n);
      t->scale(y.data(), 0.5, n);
      t->hadamard(y.data(), x.data(), n);
      EXPECT_EQ(x[n], sentinel_x) << t->name << " n=" << n;
      EXPECT_EQ(y[n], sentinel_y) << t->name << " n=" << n;
    }
  }
}

TEST(SimdKernels, DotMatchesScalarWithinRoundingAtAllTailWidths) {
  for (const simd::KernelTable* t : RunnableTables()) {
    for (std::size_t n = 1; n <= kMaxWidth; ++n) {
      std::vector<double> a = RandomVec(n, 500 + n);
      std::vector<double> b = RandomVec(n, 600 + n);
      const double got = t->dot(a.data(), b.data(), n);
      const double want = simd::scalar::Dot(a.data(), b.data(), n);
      EXPECT_NEAR(got, want, ReductionTol(n, 1.0)) << t->name << " n=" << n;
    }
  }
}

TEST(SimdKernels, SquaredDistanceMatchesScalarWithinRounding) {
  for (const simd::KernelTable* t : RunnableTables()) {
    for (std::size_t n = 1; n <= kMaxWidth; ++n) {
      std::vector<double> a = RandomVec(n, 700 + n, 0.0, 3.0);
      std::vector<double> b = RandomVec(n, 800 + n, 0.0, 3.0);
      const double got = t->squared_distance(a.data(), b.data(), n);
      const double want =
          simd::scalar::SquaredDistance(a.data(), b.data(), n);
      EXPECT_NEAR(got, want, ReductionTol(n, 9.0)) << t->name << " n=" << n;
      EXPECT_GE(got, 0.0);
    }
  }
}

TEST(SimdKernels, DotOfLargeVectorStaysAccurate) {
  const std::size_t n = 4097;  // Odd, exercises the tail after many lanes.
  std::vector<double> a = RandomVec(n, 31);
  std::vector<double> b = RandomVec(n, 32);
  for (const simd::KernelTable* t : RunnableTables()) {
    const double got = t->dot(a.data(), b.data(), n);
    const double want = simd::scalar::Dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, ReductionTol(n, 1.0)) << t->name;
  }
}

TEST(SimdKernels, ZeroLengthIsIdentity) {
  for (const simd::KernelTable* t : RunnableTables()) {
    double y = 3.0;
    t->axpy(2.0, &y, &y, 0);
    EXPECT_EQ(y, 3.0) << t->name;
    EXPECT_EQ(t->dot(&y, &y, 0), 0.0) << t->name;
    EXPECT_EQ(t->squared_distance(&y, &y, 0), 0.0) << t->name;
  }
}

// ---- Packed GEMM protocol -------------------------------------------------

/// C += A·B through one table's pack_a / pack_b / gemm_packed.
void PackedGemm(const simd::KernelTable& t, const Matrix& a, const Matrix& b,
                Matrix* c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t apanels = (m + t.mr - 1) / t.mr;
  const std::size_t bpanels = (n + t.nr - 1) / t.nr;
  // lint:memstats-ok(microkernel packing scratch sized by the tile under test)
  AlignedVector<double> pa(apanels * k * t.mr);
  // lint:memstats-ok(microkernel packing scratch sized by the tile under test)
  AlignedVector<double> pb(bpanels * k * t.nr);
  t.pack_a(a.row_ptr(0), a.stride(), m, k, pa.data());
  t.pack_b(b.row_ptr(0), b.stride(), k, n, pb.data());
  t.gemm_packed(pa.data(), pb.data(), m, k, n, c->row_ptr(0), c->stride());
}

TEST(SimdGemm, PackedMicrokernelMatchesNaiveAtAllTileShapes) {
  Rng rng(99);
  // Shapes straddling every mr/nr boundary of the widest geometry
  // (avx512 is 8 x 16), plus odd reduction lengths.
  const std::size_t ms[] = {1, 2, 3, 4, 5, 7, 8, 9, 17};
  const std::size_t ns[] = {1, 3, 7, 8, 9, 15, 16, 17, 33};
  const std::size_t ks[] = {1, 2, 7, 16, 33};
  for (const simd::KernelTable* t : RunnableTables()) {
    for (std::size_t m : ms) {
      for (std::size_t n : ns) {
        for (std::size_t k : ks) {
          const Matrix a = Matrix::RandomUniform(m, k, &rng, -1.0, 1.0);
          const Matrix b = Matrix::RandomUniform(k, n, &rng, -1.0, 1.0);
          Matrix c = Matrix::RandomUniform(m, n, &rng, -1.0, 1.0);
          Matrix want = c;
          PackedGemm(*t, a, b, &c);
          for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              double acc = want(i, j);
              for (std::size_t l = 0; l < k; ++l) acc += a(i, l) * b(l, j);
              want(i, j) = acc;
            }
          }
          for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              EXPECT_NEAR(c(i, j), want(i, j), ReductionTol(k, 1.0))
                  << t->name << " m=" << m << " n=" << n << " k=" << k
                  << " at (" << i << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(SimdGemm, PackedMicrokernelLeavesPaddingAndNeighboursAlone) {
  // C has more rows/cols than the product touches; the extra row, the
  // extra columns, and the stride padding must keep their values.
  Rng rng(7);
  for (const simd::KernelTable* t : RunnableTables()) {
    const std::size_t m = 5, n = 11, k = 9;
    const Matrix a = Matrix::RandomUniform(m, k, &rng, -1.0, 1.0);
    const Matrix b = Matrix::RandomUniform(k, n, &rng, -1.0, 1.0);
    Matrix c = Matrix::RandomUniform(m + 1, n + 3, &rng, -1.0, 1.0);
    const Matrix before = c;
    const std::size_t apanels = (m + t->mr - 1) / t->mr;
    const std::size_t bpanels = (n + t->nr - 1) / t->nr;
    // lint:memstats-ok(microkernel packing scratch sized by the tile under test)
    AlignedVector<double> pa(apanels * k * t->mr);
    // lint:memstats-ok(microkernel packing scratch sized by the tile under test)
    AlignedVector<double> pb(bpanels * k * t->nr);
    t->pack_a(a.row_ptr(0), a.stride(), m, k, pa.data());
    t->pack_b(b.row_ptr(0), b.stride(), k, n, pb.data());
    t->gemm_packed(pa.data(), pb.data(), m, k, n, c.row_ptr(0), c.stride());
    for (std::size_t j = 0; j < before.cols(); ++j) {
      EXPECT_EQ(c(m, j), before(m, j)) << t->name << " row beyond m, j=" << j;
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = n; j < before.cols(); ++j) {
        EXPECT_EQ(c(i, j), before(i, j))
            << t->name << " col beyond n at (" << i << "," << j << ")";
      }
    }
  }
}

// ---- Dispatch selection & force override ----------------------------------

TEST(SimdDispatch, ResolveTableHonoursMockedFeatureBits) {
  // No features at all → scalar, always.
  simd::CpuFeatures none;
  EXPECT_STREQ(simd::ResolveTable(none)->name, "scalar");

  // AVX2 without FMA is not enough for the avx2 table.
  simd::CpuFeatures avx2_only;
  avx2_only.avx2 = true;
  EXPECT_STREQ(simd::ResolveTable(avx2_only)->name, "scalar");

  // AVX2+FMA picks the avx2 table when this binary carries it.
  simd::CpuFeatures avx2_fma;
  avx2_fma.avx2 = avx2_fma.fma = true;
  EXPECT_STREQ(simd::ResolveTable(avx2_fma)->name,
               simd::Avx2KernelTable() ? "avx2" : "scalar");

  // AVX-512 needs both F and DQ; F alone falls back to avx2.
  simd::CpuFeatures f_only = avx2_fma;
  f_only.avx512f = true;
  EXPECT_STREQ(simd::ResolveTable(f_only)->name,
               simd::Avx2KernelTable() ? "avx2" : "scalar");

  simd::CpuFeatures full = f_only;
  full.avx512dq = true;
  if (simd::Avx512KernelTable()) {
    EXPECT_STREQ(simd::ResolveTable(full)->name, "avx512");
  } else {
    EXPECT_STREQ(simd::ResolveTable(full)->name,
                 simd::Avx2KernelTable() ? "avx2" : "scalar");
  }

  simd::CpuFeatures arm;
  arm.neon = true;
  EXPECT_STREQ(simd::ResolveTable(arm)->name,
               simd::NeonKernelTable() ? "neon" : "scalar");
}

TEST(SimdDispatch, TableForNameFiltersUnknownAndUnavailable) {
  EXPECT_EQ(simd::TableForName("bogus"), nullptr);
  EXPECT_EQ(simd::TableForName(nullptr), nullptr);
  const simd::KernelTable* s = simd::TableForName("scalar");
  ASSERT_NE(s, nullptr);
  EXPECT_STREQ(s->name, "scalar");
  EXPECT_EQ(s->lanes, 1u);
}

TEST(SimdDispatch, ForceIsaRejectsUnknownName) {
  const Status st = simd::ForceIsa("avx1024");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("avx1024"), std::string::npos);
}

TEST(SimdDispatch, ForceIsaRejectsUnavailableIsaCleanly) {
  // Whichever of neon/avx512 this host cannot run must come back as a
  // clean FailedPrecondition, not a crash or a silent fallback.
  for (const char* name : kAllIsaNames) {
    if (simd::TableForName(name) != nullptr) continue;
    const Status st = simd::ForceIsa(name);
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << name;
  }
}

TEST(SimdDispatch, ForceIsaAfterResolutionOnlyAcceptsTheResolvedTable) {
  const std::string resolved = simd::IsaName();  // Resolves the dispatch.
  EXPECT_TRUE(simd::ForceIsa(resolved.c_str()).ok());
  for (const simd::KernelTable* t : RunnableTables()) {
    if (resolved == t->name) continue;
    const Status st = simd::ForceIsa(t->name);
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << t->name;
    EXPECT_NE(st.message().find("already resolved"), std::string::npos);
  }
}

TEST(SimdDispatch, IsaNameIsAKnownTableAndHonoursTheEnvOverride) {
  const std::string name = simd::IsaName();
  bool known = false;
  for (const char* n : kAllIsaNames) known = known || name == n;
  EXPECT_TRUE(known) << name;
  EXPECT_STREQ(simd::Table().name, name.c_str());
  // Under a forced run (the CI forced-scalar / forced-avx2 legs), the
  // dispatched table must be exactly the requested one.
  const char* forced = std::getenv("RHCHME_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    EXPECT_EQ(name, forced);
  }
  // The detected name ignores forcing and is also a known table.
  const std::string detected = simd::DetectedIsaName();
  known = false;
  for (const char* n : kAllIsaNames) known = known || detected == n;
  EXPECT_TRUE(known) << detected;
}

// ---- Alignment & padding invariants of the storage layer -----------------

TEST(AlignedStorage, PaddedStrideRoundsUpToCacheLine) {
  EXPECT_EQ(PaddedStride(0), 0u);
  EXPECT_EQ(PaddedStride(1), kAlignDoubles);
  EXPECT_EQ(PaddedStride(kAlignDoubles), kAlignDoubles);
  EXPECT_EQ(PaddedStride(kAlignDoubles + 1), 2 * kAlignDoubles);
}

TEST(AlignedStorage, AlignedVectorBufferIsAligned) {
  // lint:memstats-ok(13-element probe asserting the allocator's alignment contract)
  AlignedVector<double> v(13, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
}

TEST(AlignedStorage, EveryMatrixRowIsCacheLineAligned) {
  // Odd column count forces padding; every row must still be aligned.
  Matrix m(7, 5);
  EXPECT_EQ(m.stride(), kAlignDoubles);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row_ptr(i)) % kAlignment, 0u)
        << "row " << i;
  }
}

}  // namespace
}  // namespace la
}  // namespace rhchme
