// Pins the SIMD kernel layer (la/simd.h) against its scalar references.
//
// Contract under test (docs/ARCHITECTURE.md "Kernel layer"):
//   - element-parallel kernels (Axpy, Add, Sub, Scale, Hadamard) are
//     bit-identical to scalar in every build;
//   - reassociated reductions (Dot, SquaredDistance) match scalar within
//     bounded rounding;
//   - both hold for every tail width 1..2*vector-width+1 and beyond, so
//     no lane remainder path is left uncovered.

#include "la/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "la/aligned.h"
#include "la/matrix.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

// Widths covering every lane-remainder case of the widest path (AVX2 uses
// two 4-lane accumulators, so the unrolled step is 8): 1..2*8+1.
constexpr std::size_t kMaxWidth = 2 * 2 * 4 + 1;

std::vector<double> RandomVec(std::size_t n, uint64_t seed, double lo = -1.0,
                              double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

/// Rounding bound for a reassociated n-term sum of products whose terms
/// are bounded by `term_mag`: a generous constant times n·eps·term_mag.
double ReductionTol(std::size_t n, double term_mag) {
  return 64.0 * static_cast<double>(n + 1) *
         std::numeric_limits<double>::epsilon() * (term_mag + 1.0);
}

TEST(SimdKernels, AxpyMatchesScalarExactlyAtAllTailWidths) {
  for (std::size_t n = 1; n <= kMaxWidth; ++n) {
    std::vector<double> x = RandomVec(n, 100 + n);
    std::vector<double> y0 = RandomVec(n, 200 + n);
    std::vector<double> y1 = y0;
    simd::Axpy(0.7318, x.data(), y0.data(), n);
    simd::scalar::Axpy(0.7318, x.data(), y1.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y0[i], y1[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, ElementwiseKernelsMatchScalarExactly) {
  for (std::size_t n = 1; n <= kMaxWidth; ++n) {
    const std::vector<double> x = RandomVec(n, 300 + n);
    const std::vector<double> base = RandomVec(n, 400 + n);

    std::vector<double> a = base, b = base;
    simd::Add(a.data(), x.data(), n);
    simd::scalar::Add(b.data(), x.data(), n);
    EXPECT_EQ(a, b) << "Add n=" << n;

    a = base, b = base;
    simd::Sub(a.data(), x.data(), n);
    simd::scalar::Sub(b.data(), x.data(), n);
    EXPECT_EQ(a, b) << "Sub n=" << n;

    a = base, b = base;
    simd::Scale(a.data(), -1.25, n);
    simd::scalar::Scale(b.data(), -1.25, n);
    EXPECT_EQ(a, b) << "Scale n=" << n;

    a = base, b = base;
    simd::Hadamard(a.data(), x.data(), n);
    simd::scalar::Hadamard(b.data(), x.data(), n);
    EXPECT_EQ(a, b) << "Hadamard n=" << n;
  }
}

TEST(SimdKernels, DotMatchesScalarWithinRoundingAtAllTailWidths) {
  for (std::size_t n = 1; n <= kMaxWidth; ++n) {
    std::vector<double> a = RandomVec(n, 500 + n);
    std::vector<double> b = RandomVec(n, 600 + n);
    const double got = simd::Dot(a.data(), b.data(), n);
    const double want = simd::scalar::Dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, ReductionTol(n, 1.0)) << "n=" << n;
  }
}

TEST(SimdKernels, SquaredDistanceMatchesScalarWithinRounding) {
  for (std::size_t n = 1; n <= kMaxWidth; ++n) {
    std::vector<double> a = RandomVec(n, 700 + n, 0.0, 3.0);
    std::vector<double> b = RandomVec(n, 800 + n, 0.0, 3.0);
    const double got = simd::SquaredDistance(a.data(), b.data(), n);
    const double want = simd::scalar::SquaredDistance(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, ReductionTol(n, 9.0)) << "n=" << n;
    EXPECT_GE(got, 0.0);
  }
}

TEST(SimdKernels, DotOfLargeVectorStaysAccurate) {
  const std::size_t n = 4097;  // Odd, exercises the tail after many lanes.
  std::vector<double> a = RandomVec(n, 31);
  std::vector<double> b = RandomVec(n, 32);
  const double got = simd::Dot(a.data(), b.data(), n);
  const double want = simd::scalar::Dot(a.data(), b.data(), n);
  EXPECT_NEAR(got, want, ReductionTol(n, 1.0));
}

TEST(SimdKernels, ZeroLengthIsIdentity) {
  double y = 3.0;
  simd::Axpy(2.0, &y, &y, 0);
  EXPECT_EQ(y, 3.0);
  EXPECT_EQ(simd::Dot(&y, &y, 0), 0.0);
  EXPECT_EQ(simd::SquaredDistance(&y, &y, 0), 0.0);
}

TEST(SimdKernels, IsaNameIsConsistentWithBuildFlags) {
#if RHCHME_SIMD_VECTOR
  EXPECT_GT(simd::kLanes, 1u);
  EXPECT_STRNE(simd::IsaName(), "scalar");
#else
  EXPECT_EQ(simd::kLanes, 1u);
  EXPECT_STREQ(simd::IsaName(), "scalar");
#endif
}

// ---- Alignment & padding invariants of the storage layer -----------------

TEST(AlignedStorage, PaddedStrideRoundsUpToCacheLine) {
  EXPECT_EQ(PaddedStride(0), 0u);
  EXPECT_EQ(PaddedStride(1), kAlignDoubles);
  EXPECT_EQ(PaddedStride(kAlignDoubles), kAlignDoubles);
  EXPECT_EQ(PaddedStride(kAlignDoubles + 1), 2 * kAlignDoubles);
}

TEST(AlignedStorage, AlignedVectorBufferIsAligned) {
  // lint:memstats-ok(13-element probe asserting the allocator's alignment contract)
  AlignedVector<double> v(13, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
}

TEST(AlignedStorage, EveryMatrixRowIsCacheLineAligned) {
  // Odd column count forces padding; every row must still be aligned.
  Matrix m(7, 5);
  EXPECT_EQ(m.stride(), kAlignDoubles);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row_ptr(i)) % kAlignment, 0u)
        << "row " << i;
  }
}

}  // namespace
}  // namespace la
}  // namespace rhchme
