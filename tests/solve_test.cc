// Unit tests for the dense direct solvers.

#include "la/solve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

/// Random SPD matrix A = BᵀB + n·I.
Matrix RandomSpd(std::size_t n, Rng* rng) {
  Matrix b = Matrix::RandomNormal(n, n, rng);
  Matrix a = Gram(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(1);
  Matrix a = RandomSpd(8, &rng);
  Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  Matrix recon = MultiplyNT(l.value(), l.value());
  EXPECT_LT(MaxAbsDiff(recon, a), 1e-9);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok());
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // Eigenvalues 3, -1.
  Result<Matrix> l = Cholesky(a);
  ASSERT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kNumericalError);
}

TEST(SolveSPD, RoundTrip) {
  Rng rng(2);
  Matrix a = RandomSpd(10, &rng);
  Matrix x_true = Matrix::RandomNormal(10, 3, &rng);
  Matrix b = Multiply(a, x_true);
  Result<Matrix> x = SolveSPD(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(MaxAbsDiff(x.value(), x_true), 1e-8);
}

TEST(SolveLU, RoundTripGeneral) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(12, 12, &rng);
  Matrix x_true = Matrix::RandomNormal(12, 2, &rng);
  Matrix b = Multiply(a, x_true);
  Result<Matrix> x = SolveLU(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(MaxAbsDiff(x.value(), x_true), 1e-7);
}

TEST(SolveLU, HandComputed) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  Matrix b = Matrix::FromRows({{5}, {10}});
  Result<Matrix> x = SolveLU(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.value()(1, 0), 3.0, 1e-12);
}

TEST(SolveLU, NeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  Matrix b = Matrix::FromRows({{2}, {3}});
  Result<Matrix> x = SolveLU(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x.value()(1, 0), 2.0, 1e-12);
}

TEST(SolveLU, DetectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  Result<Matrix> x = SolveLU(a, Matrix::Identity(2));
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(9, 9, &rng);
  Result<Matrix> inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(MaxAbsDiff(Multiply(a, inv.value()), Matrix::Identity(9)), 1e-8);
}

TEST(SolveRidged, HandlesSingularGram) {
  // GᵀG singular when a cluster column is empty (paper Eq. 18 guard).
  Matrix a = Matrix::FromRows({{1, 0}, {0, 0}});
  Matrix b = Matrix::Identity(2);
  Result<Matrix> x = SolveRidged(a, b, 1e-8);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x.value().AllFinite());
}

TEST(SolveRidged, MatchesExactSolveWhenWellConditioned) {
  Rng rng(5);
  Matrix a = RandomSpd(6, &rng);
  Matrix b = Matrix::RandomNormal(6, 2, &rng);
  Result<Matrix> exact = SolveSPD(a, b);
  Result<Matrix> ridged = SolveRidged(a, b, 1e-12);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(ridged.ok());
  EXPECT_LT(MaxAbsDiff(exact.value(), ridged.value()), 1e-6);
}

TEST(Determinant, KnownValues) {
  EXPECT_NEAR(Determinant(Matrix::Identity(4)).value(), 1.0, 1e-12);
  Matrix a = Matrix::FromRows({{2, 0}, {0, 3}});
  EXPECT_NEAR(Determinant(a).value(), 6.0, 1e-12);
  Matrix swapped = Matrix::FromRows({{0, 1}, {1, 0}});
  EXPECT_NEAR(Determinant(swapped).value(), -1.0, 1e-12);
  Matrix singular = Matrix::FromRows({{1, 1}, {1, 1}});
  EXPECT_NEAR(Determinant(singular).value(), 0.0, 1e-12);
}

TEST(Determinant, MatchesProductRule) {
  Rng rng(6);
  Matrix a = Matrix::RandomNormal(5, 5, &rng);
  Matrix b = Matrix::RandomNormal(5, 5, &rng);
  double da = Determinant(a).value();
  double db = Determinant(b).value();
  double dab = Determinant(Multiply(a, b)).value();
  EXPECT_NEAR(dab, da * db, 1e-6 * std::max(1.0, std::fabs(da * db)));
}

}  // namespace
}  // namespace la
}  // namespace rhchme
