// Unit tests for Status / Result<T>.

#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace rhchme {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("rows mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "rows mismatch");
  EXPECT_EQ(s.ToString(), "InvalidArgument: rows mismatch");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNumericalError), "NumericalError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotConverged), "NotConverged");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowAndStarOperators) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ(*r, "abc");
}

Status FailsWhen(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status Propagates(bool fail) {
  RHCHME_RETURN_IF_ERROR(FailsWhen(fail));
  return Status::OK();
}

TEST(Result, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(false).ok());
  Status s = Propagates(true);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rhchme
