// Unit tests for the table/CSV writer.

#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rhchme {
namespace {

TEST(TablePrinter, AlignedTextOutput) {
  TablePrinter t("Title", {"Method", "F"});
  t.AddRow({"RHCHME", "0.892"});
  t.AddRow({"SRC", "0.837"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("Method"), std::string::npos);
  EXPECT_NE(text.find("RHCHME"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinter, ColumnsAreAligned) {
  TablePrinter t("T", {"A", "B"});
  t.AddRow({"xxxxxx", "1"});
  t.AddRow({"y", "2"});
  std::string text = t.ToText();
  // Both data lines must have the separator at the same offset.
  std::istringstream in(text);
  std::string line;
  std::vector<std::size_t> positions;
  while (std::getline(in, line)) {
    std::size_t pos = line.find('|');
    if (pos != std::string::npos) positions.push_back(pos);
  }
  ASSERT_GE(positions.size(), 3u);
  for (std::size_t p : positions) EXPECT_EQ(p, positions[0]);
}

TEST(TablePrinter, FmtFormatsDecimals) {
  EXPECT_EQ(TablePrinter::Fmt(0.8923, 3), "0.892");
  EXPECT_EQ(TablePrinter::Fmt(1.0, 1), "1.0");
  EXPECT_EQ(TablePrinter::Fmt(-2.5, 2), "-2.50");
}

TEST(TablePrinter, CsvRoundTrip) {
  TablePrinter t("T", {"a", "b"});
  t.AddRow({"1", "hello, world"});
  t.AddRow({"2", "quote\"inside"});
  const std::string path = "/tmp/rhchme_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"hello, world\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(TablePrinter, CsvRejectsBadPath) {
  TablePrinter t("T", {"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent_dir/x.csv").ok());
}

}  // namespace
}  // namespace rhchme
