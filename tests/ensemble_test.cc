// Unit tests for the heterogeneous manifold ensemble (paper Eq. 12).

#include "core/ensemble.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "la/eigen_sym.h"
#include "la/gemm.h"
#include "scoped_num_threads.h"

namespace rhchme {
namespace core {
namespace {

data::MultiTypeRelationalData SmallData() {
  data::BlockWorldOptions o;
  o.objects_per_type = {15, 12};
  o.n_classes = 3;
  o.seed = 9;
  return data::GenerateBlockWorld(o).value();
}

EnsembleOptions FastOptions() {
  EnsembleOptions opts;
  opts.subspace.spg.max_iterations = 20;
  return opts;
}

TEST(Ensemble, ValidationErrors) {
  EnsembleOptions opts = FastOptions();
  opts.include_knn = false;
  opts.include_subspace = false;
  EXPECT_FALSE(opts.Validate().ok());
  opts = FastOptions();
  opts.alpha = -1.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = FastOptions();
  opts.knn.p = 0;
  EXPECT_FALSE(opts.Validate().ok());
  EXPECT_TRUE(FastOptions().Validate().ok());
}

TEST(Ensemble, BlockDiagonalStructure) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, FastOptions());
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // The joint Laplacian is stored sparse; densify for block inspection.
  const la::Matrix l = e.value().laplacian.ToDense();
  ASSERT_EQ(l.rows(), 27u);
  // Cross-type blocks are exactly zero.
  EXPECT_EQ(l.Block(0, 15, 15, 12).MaxAbs(), 0.0);
  EXPECT_EQ(l.Block(15, 0, 12, 15).MaxAbs(), 0.0);
  // Diagonal blocks are not.
  EXPECT_GT(l.Block(0, 0, 15, 15).MaxAbs(), 0.0);
  EXPECT_GT(l.Block(15, 15, 12, 12).MaxAbs(), 0.0);
}

TEST(Ensemble, EqualsAlphaLsPlusLe) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  EnsembleOptions both = FastOptions();
  both.alpha = 2.5;
  EnsembleOptions only_s = both;
  only_s.include_knn = false;
  only_s.alpha = 1.0;  // Raw L_S.
  EnsembleOptions only_e = both;
  only_e.include_subspace = false;

  Result<HeterogeneousEnsemble> e_both = BuildEnsemble(d, b, both);
  Result<HeterogeneousEnsemble> e_s = BuildEnsemble(d, b, only_s);
  Result<HeterogeneousEnsemble> e_e = BuildEnsemble(d, b, only_e);
  ASSERT_TRUE(e_both.ok());
  ASSERT_TRUE(e_s.ok());
  ASSERT_TRUE(e_e.ok());

  la::Matrix expected = la::Scaled(e_s.value().laplacian.ToDense(), 2.5);
  expected.Add(e_e.value().laplacian.ToDense());
  EXPECT_LT(la::MaxAbsDiff(e_both.value().laplacian.ToDense(), expected),
            1e-9);
}

TEST(Ensemble, MembersAreRecorded) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, FastOptions());
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e.value().subspace_affinity.size(), 2u);
  ASSERT_EQ(e.value().knn_affinity.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(e.value().subspace_affinity[k].rows(), d.Type(k).count);
    EXPECT_EQ(e.value().knn_affinity[k].rows(), d.Type(k).count);
    EXPECT_GT(e.value().knn_affinity[k].nnz(), 0u);
  }
}

TEST(Ensemble, DisabledMemberLeavesEmptySlot) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  EnsembleOptions opts = FastOptions();
  opts.include_subspace = false;
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().subspace_affinity[0].empty());
  EXPECT_GT(e.value().knn_affinity[0].nnz(), 0u);
}

TEST(Ensemble, KnnOnlyLaplacianStaysSparse) {
  // With only the pNN member, the joint Laplacian pattern is bounded by
  // the symmetrised p-NN edges plus the diagonal — never densified.
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  EnsembleOptions opts = FastOptions();
  opts.include_subspace = false;
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts);
  ASSERT_TRUE(e.ok());
  const std::size_t n = b.total_objects();
  const std::size_t p = opts.knn.p;
  EXPECT_GT(e.value().laplacian.nnz(), 0u);
  EXPECT_LE(e.value().laplacian.nnz(), n * (2 * p + 1));
}

TEST(Ensemble, LaplacianIsPSD) {
  // Both members are symmetric-normalised Laplacians, so the ensemble
  // (a nonnegative combination) must be PSD.
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, FastOptions());
  ASSERT_TRUE(e.ok());
  Result<la::EigenSymResult> eig =
      la::EigenSym(e.value().laplacian.ToDense());
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig.value().eigenvalues.front(), -1e-8);
}

TEST(Ensemble, AlphaZeroDropsSubspaceInfluence) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  EnsembleOptions zero_alpha = FastOptions();
  zero_alpha.alpha = 0.0;
  EnsembleOptions knn_only = FastOptions();
  knn_only.include_subspace = false;
  Result<HeterogeneousEnsemble> a = BuildEnsemble(d, b, zero_alpha);
  Result<HeterogeneousEnsemble> k = BuildEnsemble(d, b, knn_only);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(k.ok());
  EXPECT_LT(la::MaxAbsDiff(a.value().laplacian.ToDense(),
                           k.value().laplacian.ToDense()),
            1e-12);
}

TEST(Ensemble, ReweightMatchesFreshBuild) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  EnsembleOptions base_opts = FastOptions();
  Result<HeterogeneousEnsemble> base = BuildEnsemble(d, b, base_opts);
  ASSERT_TRUE(base.ok());

  EnsembleOptions heavy = base_opts;
  heavy.alpha = 3.5;
  Result<HeterogeneousEnsemble> fresh = BuildEnsemble(d, b, heavy);
  ASSERT_TRUE(fresh.ok());
  Result<HeterogeneousEnsemble> reweighted =
      ReweightEnsemble(base.value(), b, 3.5);
  ASSERT_TRUE(reweighted.ok());
  EXPECT_LT(la::MaxAbsDiff(fresh.value().laplacian.ToDense(),
                           reweighted.value().laplacian.ToDense()),
            1e-9);
  EXPECT_DOUBLE_EQ(reweighted.value().alpha, 3.5);
}

TEST(Ensemble, ReweightRejectsBadInputs) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> base = BuildEnsemble(d, b, FastOptions());
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(ReweightEnsemble(base.value(), b, -1.0).ok());
  HeterogeneousEnsemble broken = base.value();
  broken.subspace_affinity.pop_back();
  EXPECT_FALSE(ReweightEnsemble(broken, b, 1.0).ok());
}

// Per-member construction runs one manifold per pool task; member seeds
// are derived from (seed, type) before dispatch, so the assembled
// ensemble must be bit-identical whether the pool has 1 thread or 4
// (equivalently RHCHME_NUM_THREADS=1 vs 4, which feed the same pool).
TEST(Ensemble, BuildIsBitStableAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);

  auto build = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, FastOptions());
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  };
  const HeterogeneousEnsemble serial = build(1);
  const HeterogeneousEnsemble threaded = build(4);

  ASSERT_EQ(serial.laplacian.nnz(), threaded.laplacian.nnz());
  EXPECT_EQ(serial.laplacian.values(), threaded.laplacian.values());
  EXPECT_EQ(serial.laplacian.col_indices(), threaded.laplacian.col_indices());
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(la::MaxAbsDiff(serial.subspace_affinity[k],
                             threaded.subspace_affinity[k]),
              0.0)
        << "type " << k;
    ASSERT_EQ(serial.knn_affinity[k].nnz(), threaded.knn_affinity[k].nnz());
    EXPECT_EQ(serial.knn_affinity[k].values(),
              threaded.knn_affinity[k].values());
    EXPECT_EQ(serial.knn_affinity[k].col_indices(),
              threaded.knn_affinity[k].col_indices());
  }
}

TEST(Ensemble, ReweightIsBitStableAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> base = BuildEnsemble(d, b, FastOptions());
  ASSERT_TRUE(base.ok());

  auto reweight = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Result<HeterogeneousEnsemble> e = ReweightEnsemble(base.value(), b, 2.0);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  };
  const HeterogeneousEnsemble serial = reweight(1);
  const HeterogeneousEnsemble threaded = reweight(4);
  ASSERT_EQ(serial.laplacian.nnz(), threaded.laplacian.nnz());
  EXPECT_EQ(serial.laplacian.values(), threaded.laplacian.values());
}

TEST(Ensemble, FailsWithoutFeatures) {
  data::MultiTypeRelationalData d = SmallData();
  d.MutableType(0).features = la::Matrix();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, FastOptions());
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace core
}  // namespace rhchme
