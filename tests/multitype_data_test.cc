// Unit tests for the MultiTypeRelationalData container.

#include "data/multitype_data.h"

#include <gtest/gtest.h>

#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace data {
namespace {

MultiTypeRelationalData ThreeTypeFixture() {
  MultiTypeRelationalData d;
  Rng rng(1);
  d.AddType({"docs", 4, 2, la::Matrix::RandomUniform(4, 3, &rng), {0, 0, 1, 1}});
  d.AddType({"terms", 3, 2, la::Matrix::RandomUniform(3, 4, &rng), {0, 1, 1}});
  d.AddType({"concepts", 2, 2, la::Matrix::RandomUniform(2, 4, &rng), {0, 1}});
  la::Matrix r01 = la::Matrix::FromRows(
      {{1, 0, 0}, {0, 2, 0}, {0, 0, 3}, {4, 0, 0}});
  la::Matrix r02 = la::Matrix::FromRows({{1, 0}, {0, 1}, {1, 0}, {0, 1}});
  la::Matrix r12 = la::Matrix::FromRows({{5, 0}, {0, 6}, {7, 0}});
  EXPECT_TRUE(d.SetRelation(0, 1, r01).ok());
  EXPECT_TRUE(d.SetRelation(0, 2, r02).ok());
  EXPECT_TRUE(d.SetRelation(1, 2, r12).ok());
  return d;
}

TEST(MultiTypeData, CountsAndOffsets) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  EXPECT_EQ(d.NumTypes(), 3u);
  EXPECT_EQ(d.TotalObjects(), 9u);
  EXPECT_EQ(d.TotalClusters(), 6u);
  EXPECT_EQ(d.TypeOffset(0), 0u);
  EXPECT_EQ(d.TypeOffset(1), 4u);
  EXPECT_EQ(d.TypeOffset(2), 7u);
  EXPECT_EQ(d.ClusterOffset(1), 2u);
  EXPECT_EQ(d.ClusterOffset(2), 4u);
}

TEST(MultiTypeData, RelationRetrievalBothOrientations) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  ASSERT_TRUE(d.HasRelation(0, 1));
  ASSERT_TRUE(d.HasRelation(1, 0));
  const la::Matrix& r01 = d.Relation(0, 1);
  la::Matrix r10 = d.RelationTransposed(1, 0);
  EXPECT_LT(la::MaxAbsDiff(r10, r01.Transposed()), 1e-15);
}

TEST(MultiTypeData, SetRelationTransposedOrientationIsNormalised) {
  MultiTypeRelationalData d;
  Rng rng(2);
  d.AddType({"a", 2, 1, {}, {}});
  d.AddType({"b", 3, 1, {}, {}});
  la::Matrix r10 = la::Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});  // 3x2
  ASSERT_TRUE(d.SetRelation(1, 0, r10).ok());
  EXPECT_LT(la::MaxAbsDiff(d.Relation(0, 1), r10.Transposed()), 1e-15);
}

TEST(MultiTypeData, SetRelationRejectsBadShapes) {
  MultiTypeRelationalData d;
  d.AddType({"a", 2, 1, {}, {}});
  d.AddType({"b", 3, 1, {}, {}});
  EXPECT_FALSE(d.SetRelation(0, 1, la::Matrix(2, 2)).ok());
  EXPECT_FALSE(d.SetRelation(0, 0, la::Matrix(2, 2)).ok());
  EXPECT_FALSE(d.SetRelation(0, 5, la::Matrix(2, 3)).ok());
}

TEST(MultiTypeData, JointRIsSymmetricWithZeroDiagonalBlocks) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  la::Matrix r = d.BuildJointR();
  ASSERT_EQ(r.rows(), 9u);
  EXPECT_LT(la::MaxAbsDiff(r, r.Transposed()), 1e-15);
  // Diagonal blocks are zero (paper §I.A).
  for (std::size_t k = 0; k < 3; ++k) {
    const std::size_t o = d.TypeOffset(k);
    const std::size_t n = d.Type(k).count;
    EXPECT_EQ(r.Block(o, o, n, n).MaxAbs(), 0.0);
  }
  // Off-diagonal block matches the stored relation.
  EXPECT_LT(la::MaxAbsDiff(r.Block(0, 4, 4, 3), d.Relation(0, 1)), 1e-15);
  EXPECT_LT(la::MaxAbsDiff(r.Block(4, 0, 3, 4), d.RelationTransposed(1, 0)),
            1e-15);
}

TEST(MultiTypeData, SparseJointREqualsDense) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  la::Matrix dense = d.BuildJointR();
  la::SparseMatrix sparse = d.BuildJointRSparse();
  EXPECT_LT(la::MaxAbsDiff(sparse.ToDense(), dense), 1e-15);
  EXPECT_TRUE(sparse.IsSymmetric(1e-12));
}

TEST(MultiTypeData, SparseJointRMatchesDenseElementwise) {
  // Exact agreement with BuildJointR without densifying the sparse side:
  // every entry compared through At(), and the stored count must equal
  // the dense nonzero count (explicit zeros of the blocks are dropped,
  // both mirrored copies of each stored entry are present).
  MultiTypeRelationalData d = ThreeTypeFixture();
  la::Matrix dense = d.BuildJointR();
  la::SparseMatrix sparse = d.BuildJointRSparse();
  ASSERT_EQ(sparse.rows(), dense.rows());
  ASSERT_EQ(sparse.cols(), dense.cols());
  std::size_t dense_nnz = 0;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      EXPECT_EQ(sparse.At(i, j), dense(i, j)) << "(" << i << ", " << j << ")";
      if (dense(i, j) != 0.0) ++dense_nnz;
    }
  }
  EXPECT_EQ(sparse.nnz(), dense_nnz);
}

TEST(MultiTypeData, SparseJointRMirroredBlocksAreSymmetric) {
  // The fixture's blocks carry exact zeros, so the mirrored (l, k) copies
  // must land symmetric without relying on any dense detour.
  MultiTypeRelationalData d = ThreeTypeFixture();
  la::SparseMatrix sparse = d.BuildJointRSparse();
  EXPECT_TRUE(sparse.IsSymmetric(0.0));
  // Spot-check a mirrored pair: r01(3, 0) = 4 sits at (3, 4+0) and (4, 3).
  EXPECT_EQ(sparse.At(3, 4), 4.0);
  EXPECT_EQ(sparse.At(4, 3), 4.0);
}

TEST(MultiTypeData, SparseJointRBuildContractOnDuplicates) {
  // BuildJointRSparse leans on the FromTriplets build contract; pin the
  // two properties it needs with joint-R-shaped triplets: duplicates are
  // summed, and duplicates cancelling to an exact zero are pruned.
  std::vector<la::Triplet> trips = {
      {0, 4, 1.5}, {4, 0, 1.5},   // mirrored pair, split in two...
      {0, 4, 1.5}, {4, 0, 1.5},   // ...deliveries: must sum to 3.
      {2, 5, 2.0}, {5, 2, 2.0},   // Mirrored pair cancelled below.
      {2, 5, -2.0}, {5, 2, -2.0},
  };
  la::SparseMatrix m = la::SparseMatrix::FromTriplets(9, 9, std::move(trips));
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.At(0, 4), 3.0);
  EXPECT_EQ(m.At(4, 0), 3.0);
  EXPECT_EQ(m.At(2, 5), 0.0);
  EXPECT_TRUE(m.IsSymmetric(0.0));
}

TEST(MultiTypeData, JointRDensityCountsMirroredNonzeros) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  la::SparseMatrix sparse = d.BuildJointRSparse();
  EXPECT_DOUBLE_EQ(d.JointRDensity(), sparse.Density());
  // r01 has 4 nonzeros, r02 has 4, r12 has 3 → 22 mirrored entries / 81.
  EXPECT_DOUBLE_EQ(d.JointRDensity(), 22.0 / 81.0);
}

TEST(MultiTypeData, RelationReturnsStoredBlockByReference) {
  // Copy hygiene: repeated stored-orientation lookups must hand back the
  // same object, not per-call copies.
  MultiTypeRelationalData d = ThreeTypeFixture();
  const la::Matrix& a = d.Relation(0, 1);
  const la::Matrix& b = d.Relation(0, 1);
  EXPECT_EQ(&a, &b);
}

TEST(MultiTypeData, JointLabels) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  std::vector<std::size_t> joint = d.JointLabels();
  ASSERT_EQ(joint.size(), 9u);
  EXPECT_EQ(joint[0], 0u);
  EXPECT_EQ(joint[4], 0u);  // First term.
  EXPECT_EQ(joint[8], 1u);  // Last concept.
}

TEST(MultiTypeData, JointLabelsEmptyWhenAnyTypeUnlabelled) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  d.MutableType(1).labels.clear();
  EXPECT_TRUE(d.JointLabels().empty());
}

TEST(MultiTypeData, ValidatePassesOnFixture) {
  MultiTypeRelationalData d = ThreeTypeFixture();
  EXPECT_TRUE(d.Validate().ok());
}

TEST(MultiTypeData, ValidateCatchesProblems) {
  {
    MultiTypeRelationalData d;
    EXPECT_FALSE(d.Validate().ok());  // No types.
  }
  {
    MultiTypeRelationalData d = ThreeTypeFixture();
    d.MutableType(0).clusters = 0;
    EXPECT_FALSE(d.Validate().ok());
  }
  {
    MultiTypeRelationalData d = ThreeTypeFixture();
    d.MutableType(0).clusters = 100;  // More clusters than objects.
    EXPECT_FALSE(d.Validate().ok());
  }
  {
    MultiTypeRelationalData d = ThreeTypeFixture();
    d.MutableType(2).labels = {0};  // Wrong label count.
    EXPECT_FALSE(d.Validate().ok());
  }
  {
    // A type with no relations cannot be co-clustered.
    MultiTypeRelationalData d;
    d.AddType({"a", 2, 1, {}, {}});
    d.AddType({"b", 2, 1, {}, {}});
    d.AddType({"c", 2, 1, {}, {}});
    EXPECT_TRUE(d.SetRelation(0, 1, la::Matrix(2, 2, 1.0)).ok());
    EXPECT_FALSE(d.Validate().ok());
  }
}

TEST(MultiTypeData, FeatureShapeMismatchCaught) {
  MultiTypeRelationalData d;
  Rng rng(3);
  d.AddType({"a", 4, 2, la::Matrix::RandomUniform(3, 2, &rng), {}});  // 3 != 4.
  d.AddType({"b", 2, 1, {}, {}});
  EXPECT_TRUE(d.SetRelation(0, 1, la::Matrix(4, 2, 1.0)).ok());
  EXPECT_FALSE(d.Validate().ok());
}

}  // namespace
}  // namespace data
}  // namespace rhchme
