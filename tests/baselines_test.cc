// Unit tests for the SRC, SNMTF, RMC and DRCC baselines.

#include <gtest/gtest.h>

#include "baselines/drcc.h"
#include "baselines/rmc.h"
#include "baselines/snmtf.h"
#include "baselines/src_clustering.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/gemm.h"
#include "scoped_num_threads.h"

namespace rhchme {
namespace baselines {
namespace {

data::MultiTypeRelationalData SmallData(uint64_t seed = 17) {
  data::BlockWorldOptions o;
  o.objects_per_type = {24, 18, 12};
  o.n_classes = 3;
  o.seed = seed;
  return data::GenerateBlockWorld(o).value();
}

// ---- SRC -------------------------------------------------------------------

TEST(Src, RecoversPlantedClusters) {
  data::MultiTypeRelationalData d = SmallData();
  SrcOptions opts;
  opts.max_iterations = 40;
  Result<fact::HoccResult> r = RunSrc(d, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<double> f = eval::FScore(d.Type(0).labels, r.value().labels[0]);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f.value(), 0.9);
}

TEST(Src, ObjectiveDecreases) {
  data::MultiTypeRelationalData d = SmallData();
  SrcOptions opts;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;
  Result<fact::HoccResult> r = RunSrc(d, opts);
  ASSERT_TRUE(r.ok());
  const auto& t = r.value().objective_trace;
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i], t[i - 1] * (1.0 + 1e-7)) << "iteration " << i;
  }
}

TEST(Src, ValidationErrors) {
  SrcOptions opts;
  opts.max_iterations = 0;
  EXPECT_FALSE(RunSrc(SmallData(), opts).ok());
}

// ---- SNMTF -----------------------------------------------------------------

TEST(Snmtf, RecoversPlantedClusters) {
  data::MultiTypeRelationalData d = SmallData();
  SnmtfOptions opts;
  opts.lambda = 1.0;
  opts.max_iterations = 40;
  Result<fact::HoccResult> r = RunSnmtf(d, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<double> f = eval::FScore(d.Type(0).labels, r.value().labels[0]);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f.value(), 0.9);
}

TEST(Snmtf, ObjectiveDecreases) {
  data::MultiTypeRelationalData d = SmallData();
  SnmtfOptions opts;
  opts.lambda = 0.5;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;
  Result<fact::HoccResult> r = RunSnmtf(d, opts);
  ASSERT_TRUE(r.ok());
  const auto& t = r.value().objective_trace;
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i], t[i - 1] * (1.0 + 1e-7)) << "iteration " << i;
  }
}

TEST(Snmtf, JointLaplacianIsBlockDiagonal) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  graph::KnnGraphOptions knn;
  Result<la::Matrix> l = BuildJointKnnLaplacian(
      d, b, knn, graph::LaplacianKind::kSymmetric);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value().Block(0, 24, 24, 18).MaxAbs(), 0.0);
  EXPECT_GT(l.value().Block(0, 0, 24, 24).MaxAbs(), 0.0);
}

TEST(Snmtf, FailsWithoutFeatures) {
  data::MultiTypeRelationalData d = SmallData();
  d.MutableType(1).features = la::Matrix();
  SnmtfOptions opts;
  EXPECT_FALSE(RunSnmtf(d, opts).ok());
}

// ---- RMC -------------------------------------------------------------------

TEST(Rmc, DefaultCandidatesMatchPaper) {
  // q = 6: p ∈ {5, 10} × {binary, heat, cosine} (paper §IV.B).
  auto cands = DefaultRmcCandidates();
  ASSERT_EQ(cands.size(), 6u);
  std::size_t p5 = 0, p10 = 0;
  for (const auto& c : cands) {
    if (c.p == 5) ++p5;
    if (c.p == 10) ++p10;
  }
  EXPECT_EQ(p5, 3u);
  EXPECT_EQ(p10, 3u);
}

TEST(Rmc, RecoversPlantedClustersAndWeightsSumToOne) {
  data::MultiTypeRelationalData d = SmallData();
  RmcOptions opts;
  opts.lambda = 1.0;
  opts.max_iterations = 30;
  Result<RmcResult> r = RunRmc(d, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<double> f = eval::FScore(d.Type(0).labels, r.value().hocc.labels[0]);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f.value(), 0.9);
  double sum = 0.0;
  for (double b : r.value().candidate_weights) {
    EXPECT_GE(b, 0.0);
    sum += b;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Rmc, CustomCandidateListRespected) {
  data::MultiTypeRelationalData d = SmallData();
  RmcOptions opts;
  opts.lambda = 1.0;
  opts.max_iterations = 10;
  graph::KnnGraphOptions only;
  only.p = 3;
  opts.candidates = {only};
  Result<RmcResult> r = RunRmc(d, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().candidate_weights.size(), 1u);
  EXPECT_NEAR(r.value().candidate_weights[0], 1.0, 1e-12);
}

// Simplex projection properties (TEST_P over inputs).
class SimplexTest : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(SimplexTest, OutputOnSimplex) {
  std::vector<double> out = ProjectOntoSimplex(GetParam());
  double sum = 0.0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, SimplexTest,
    ::testing::Values(std::vector<double>{0.2, 0.3, 0.5},
                      std::vector<double>{10.0, -5.0, 0.0},
                      std::vector<double>{-1.0, -2.0, -3.0},
                      std::vector<double>{0.0, 0.0},
                      std::vector<double>{7.0},
                      std::vector<double>{1e6, 1e6, 1e-6}));

TEST(Simplex, AlreadyOnSimplexIsFixedPoint) {
  std::vector<double> v = {0.1, 0.4, 0.5};
  std::vector<double> out = ProjectOntoSimplex(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

TEST(Simplex, PreservesOrdering) {
  std::vector<double> out = ProjectOntoSimplex({3.0, 1.0, 2.0});
  EXPECT_GE(out[0], out[2]);
  EXPECT_GE(out[2], out[1]);
}

// ---- DRCC ------------------------------------------------------------------

/// Nonnegative block matrix with planted co-clusters.
la::Matrix BlockMatrix(Rng* rng) {
  la::Matrix x(30, 20);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      const bool same = (i / 10) == (j / 7 > 2 ? 2 : j / 7);
      x(i, j) = (same ? 1.0 : 0.1) * (0.5 + rng->Uniform());
    }
  }
  return x;
}

TEST(Drcc, RecoversRowCoClusters) {
  Rng rng(23);
  la::Matrix x = BlockMatrix(&rng);
  DrccOptions opts;
  opts.row_clusters = 3;
  opts.col_clusters = 3;
  opts.lambda = 0.1;
  opts.mu = 0.1;
  opts.max_iterations = 60;
  Result<DrccResult> r = RunDrcc(x, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::size_t> truth(30);
  for (std::size_t i = 0; i < 30; ++i) truth[i] = i / 10;
  Result<double> f = eval::FScore(truth, r.value().row_labels);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f.value(), 0.85);
}

TEST(Drcc, FactorsHaveRightShapes) {
  Rng rng(29);
  la::Matrix x = BlockMatrix(&rng);
  DrccOptions opts;
  opts.row_clusters = 3;
  opts.col_clusters = 4;
  opts.max_iterations = 15;
  Result<DrccResult> r = RunDrcc(x, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().g.rows(), 30u);
  EXPECT_EQ(r.value().g.cols(), 3u);
  EXPECT_EQ(r.value().f.rows(), 20u);
  EXPECT_EQ(r.value().f.cols(), 4u);
  EXPECT_EQ(r.value().s.rows(), 3u);
  EXPECT_EQ(r.value().s.cols(), 4u);
  EXPECT_EQ(r.value().row_labels.size(), 30u);
  EXPECT_EQ(r.value().col_labels.size(), 20u);
  EXPECT_TRUE(r.value().g.IsNonNegative());
  EXPECT_TRUE(r.value().f.IsNonNegative());
}

TEST(Drcc, ObjectiveDecreases) {
  Rng rng(31);
  la::Matrix x = BlockMatrix(&rng);
  DrccOptions opts;
  opts.row_clusters = 3;
  opts.col_clusters = 3;
  opts.lambda = 0.2;
  opts.mu = 0.2;
  opts.max_iterations = 25;
  opts.tolerance = 0.0;
  Result<DrccResult> r = RunDrcc(x, opts);
  ASSERT_TRUE(r.ok());
  const auto& t = r.value().objective_trace;
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i], t[i - 1] * (1.0 + 1e-6)) << "iteration " << i;
  }
}

TEST(Drcc, ValidationErrors) {
  Rng rng(37);
  la::Matrix x = BlockMatrix(&rng);
  DrccOptions opts;
  opts.row_clusters = 0;
  EXPECT_FALSE(RunDrcc(x, opts).ok());
  opts = DrccOptions{};
  opts.row_clusters = 100;  // More clusters than rows.
  opts.col_clusters = 2;
  EXPECT_FALSE(RunDrcc(x, opts).ok());
  opts = DrccOptions{};
  opts.row_clusters = 2;
  opts.col_clusters = 2;
  opts.lambda = -1.0;
  EXPECT_FALSE(RunDrcc(x, opts).ok());
}

// ---- Thread-count determinism ---------------------------------------------
//
// The scenario quality gate (tools/quality_compare.py) compares baseline
// metrics exactly against a committed artefact, which is only sound if
// every baseline honours the library's determinism contract:
// bit-identical results for any pool size given a fixed seed.

/// Runs `fit` under pool sizes 1 and 4 and returns both outcomes.
template <typename Fn>
auto FitUnderThreadCounts(Fn fit) {
  ScopedNumThreads one(1);
  auto a = fit();
  ScopedNumThreads four(4);
  auto b = fit();
  return std::make_pair(std::move(a), std::move(b));
}

void ExpectIdenticalHocc(const fact::HoccResult& a, const fact::HoccResult& b) {
  ASSERT_EQ(a.labels.size(), b.labels.size());
  for (std::size_t k = 0; k < a.labels.size(); ++k) {
    EXPECT_EQ(a.labels[k], b.labels[k]) << "type " << k;
  }
  ASSERT_EQ(a.objective_trace.size(), b.objective_trace.size());
  for (std::size_t i = 0; i < a.objective_trace.size(); ++i) {
    EXPECT_EQ(a.objective_trace[i], b.objective_trace[i]) << "iteration " << i;
  }
}

TEST(Determinism, SrcBitIdenticalAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  SrcOptions opts;
  opts.max_iterations = 15;
  opts.seed = 5;
  auto [a, b] = FitUnderThreadCounts([&] { return RunSrc(d, opts); });
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalHocc(a.value(), b.value());
}

TEST(Determinism, SnmtfBitIdenticalAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  SnmtfOptions opts;
  opts.lambda = 1.0;
  opts.max_iterations = 15;
  opts.seed = 5;
  auto [a, b] = FitUnderThreadCounts([&] { return RunSnmtf(d, opts); });
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalHocc(a.value(), b.value());
}

TEST(Determinism, RmcBitIdenticalAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  RmcOptions opts;
  opts.lambda = 1.0;
  opts.max_iterations = 15;
  opts.seed = 5;
  auto [a, b] = FitUnderThreadCounts([&] { return RunRmc(d, opts); });
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalHocc(a.value().hocc, b.value().hocc);
  ASSERT_EQ(a.value().candidate_weights.size(),
            b.value().candidate_weights.size());
  for (std::size_t i = 0; i < a.value().candidate_weights.size(); ++i) {
    EXPECT_EQ(a.value().candidate_weights[i], b.value().candidate_weights[i]);
  }
}

TEST(Determinism, DrccBitIdenticalAcrossThreadCounts) {
  Rng rng(41);
  la::Matrix x = BlockMatrix(&rng);
  DrccOptions opts;
  opts.row_clusters = 3;
  opts.col_clusters = 3;
  opts.max_iterations = 15;
  opts.seed = 5;
  auto [a, b] = FitUnderThreadCounts([&] { return RunDrcc(x, opts); });
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().row_labels, b.value().row_labels);
  EXPECT_EQ(a.value().col_labels, b.value().col_labels);
  ASSERT_EQ(a.value().objective_trace.size(),
            b.value().objective_trace.size());
  for (std::size_t i = 0; i < a.value().objective_trace.size(); ++i) {
    EXPECT_EQ(a.value().objective_trace[i], b.value().objective_trace[i])
        << "iteration " << i;
  }
}

}  // namespace
}  // namespace baselines
}  // namespace rhchme
