// Unit tests for the manifold/subspace samplers (paper Fig. 1 scene).

#include "data/manifolds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen_sym.h"
#include "la/gemm.h"

namespace rhchme {
namespace data {
namespace {

TEST(TwoCircles, SizesAndLabels) {
  TwoCirclesOptions opts;
  opts.points_per_circle = 50;
  opts.ambient_noise = 10;
  ManifoldSample s = SampleTwoCircles(opts);
  ASSERT_EQ(s.points.rows(), 110u);
  ASSERT_EQ(s.labels.size(), 110u);
  EXPECT_EQ(std::count(s.labels.begin(), s.labels.end(), 0u), 50);
  EXPECT_EQ(std::count(s.labels.begin(), s.labels.end(), 1u), 50);
  EXPECT_EQ(std::count(s.labels.begin(), s.labels.end(), 2u), 10);
}

TEST(TwoCircles, PointsLieNearTheirCircle) {
  TwoCirclesOptions opts;
  opts.points_per_circle = 100;
  opts.radius = 2.0;
  opts.center_distance = 1.0;
  opts.noise_sigma = 0.01;
  ManifoldSample s = SampleTwoCircles(opts);
  const double cx[2] = {-0.5, 0.5};
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t c = s.labels[i];
    const double dx = s.points(i, 0) - cx[c];
    const double dy = s.points(i, 1);
    EXPECT_NEAR(std::sqrt(dx * dx + dy * dy), 2.0, 0.1);
  }
}

TEST(TwoCircles, IntersectingCirclesShareSpace) {
  // With centre distance < 2r the circles intersect (the Fig. 1 setting):
  // some points of different circles are closer to each other than to
  // most same-circle points.
  TwoCirclesOptions opts;
  opts.points_per_circle = 150;
  opts.center_distance = 1.2;
  opts.seed = 3;
  ManifoldSample s = SampleTwoCircles(opts);
  double min_cross = 1e300;
  for (std::size_t i = 0; i < 150; ++i) {
    for (std::size_t j = 150; j < 300; ++j) {
      const double dx = s.points(i, 0) - s.points(j, 0);
      const double dy = s.points(i, 1) - s.points(j, 1);
      min_cross = std::min(min_cross, dx * dx + dy * dy);
    }
  }
  EXPECT_LT(min_cross, 0.05);  // Near-collisions across manifolds exist.
}

TEST(TwoCircles, DeterministicGivenSeed) {
  TwoCirclesOptions opts;
  ManifoldSample a = SampleTwoCircles(opts);
  ManifoldSample b = SampleTwoCircles(opts);
  EXPECT_EQ(la::MaxAbsDiff(a.points, b.points), 0.0);
}

TEST(UnionOfSubspaces, SizesAndLabels) {
  UnionOfSubspacesOptions opts;
  opts.subspace_dims = {2, 3};
  opts.points_per_subspace = 40;
  opts.ambient_dim = 12;
  Result<ManifoldSample> s = SampleUnionOfSubspaces(opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().points.rows(), 80u);
  EXPECT_EQ(s.value().points.cols(), 12u);
  EXPECT_EQ(std::count(s.value().labels.begin(), s.value().labels.end(), 0u),
            40);
}

TEST(UnionOfSubspaces, GroupsHaveLowRank) {
  UnionOfSubspacesOptions opts;
  opts.subspace_dims = {2, 2};
  opts.points_per_subspace = 50;
  opts.ambient_dim = 10;
  opts.noise_sigma = 0.0;
  Result<ManifoldSample> s = SampleUnionOfSubspaces(opts);
  ASSERT_TRUE(s.ok());
  // Gram of the first group's points has rank <= 2: eigenvalue 3 ≈ 0.
  la::Matrix group = s.value().points.Block(0, 0, 50, 10);
  la::Matrix gram = la::MultiplyNT(group, group);
  Result<la::EigenSymResult> eig = la::EigenSym(gram);
  ASSERT_TRUE(eig.ok());
  const auto& w = eig.value().eigenvalues;
  EXPECT_GT(w[49], 1e-3);            // Two substantial directions...
  EXPECT_GT(w[48], 1e-3);
  EXPECT_NEAR(w[47], 0.0, 1e-8);     // ...and nothing else.
}

TEST(UnionOfSubspaces, NonnegativeModeProducesNonnegativePoints) {
  UnionOfSubspacesOptions opts;
  opts.nonnegative = true;
  opts.noise_sigma = 0.0;
  Result<ManifoldSample> s = SampleUnionOfSubspaces(opts);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.value().points.IsNonNegative());
}

TEST(UnionOfSubspaces, ValidationErrors) {
  UnionOfSubspacesOptions opts;
  opts.subspace_dims = {};
  EXPECT_FALSE(SampleUnionOfSubspaces(opts).ok());
  opts.subspace_dims = {0};
  EXPECT_FALSE(SampleUnionOfSubspaces(opts).ok());
  opts.subspace_dims = {10};
  opts.ambient_dim = 10;  // Not a proper subspace.
  EXPECT_FALSE(SampleUnionOfSubspaces(opts).ok());
}

}  // namespace
}  // namespace data
}  // namespace rhchme
