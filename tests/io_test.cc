// Unit tests for matrix/label/dataset persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic.h"
#include "io/dataset_io.h"
#include "io/matrix_io.h"
#include "util/rng.h"

namespace rhchme {
namespace io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "rhchme_io_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(IoTest, MatrixCsvRoundTrip) {
  Rng rng(1);
  la::Matrix m = la::Matrix::RandomNormal(7, 5, &rng);
  ASSERT_TRUE(WriteMatrixCsv(m, Path("m.csv")).ok());
  Result<la::Matrix> back = ReadMatrixCsv(Path("m.csv"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(la::MaxAbsDiff(back.value(), m), 1e-12);
}

TEST_F(IoTest, MatrixCsvRejectsRaggedAndGarbage) {
  {
    std::ofstream f(Path("ragged.csv"));
    f << "1,2,3\n1,2\n";
  }
  EXPECT_FALSE(ReadMatrixCsv(Path("ragged.csv")).ok());
  {
    std::ofstream f(Path("garbage.csv"));
    f << "1,2\nfoo,3\n";
  }
  EXPECT_FALSE(ReadMatrixCsv(Path("garbage.csv")).ok());
  {
    std::ofstream f(Path("empty.csv"));
  }
  EXPECT_FALSE(ReadMatrixCsv(Path("empty.csv")).ok());
  EXPECT_FALSE(ReadMatrixCsv(Path("missing.csv")).ok());
}

TEST_F(IoTest, MatrixCsvSkipsEmptyLines) {
  {
    std::ofstream f(Path("gaps.csv"));
    f << "1,2\n\n3,4\n";
  }
  Result<la::Matrix> m = ReadMatrixCsv(Path("gaps.csv"));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().rows(), 2u);
  EXPECT_EQ(m.value()(1, 1), 4.0);
}

TEST_F(IoTest, MatrixBinaryRoundTripIsExact) {
  Rng rng(2);
  la::Matrix m = la::Matrix::RandomNormal(11, 13, &rng);
  m(0, 0) = 1e-300;  // Exact round-trip even for extreme values.
  m(1, 1) = -1e300;
  ASSERT_TRUE(WriteMatrixBinary(m, Path("m.bin")).ok());
  Result<la::Matrix> back = ReadMatrixBinary(Path("m.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(la::MaxAbsDiff(back.value(), m), 0.0);
}

TEST_F(IoTest, MatrixBinaryRejectsCorruption) {
  {
    std::ofstream f(Path("bad.bin"), std::ios::binary);
    f << "NOPE";
  }
  EXPECT_FALSE(ReadMatrixBinary(Path("bad.bin")).ok());
  // Truncated payload.
  Rng rng(3);
  la::Matrix m = la::Matrix::RandomNormal(4, 4, &rng);
  ASSERT_TRUE(WriteMatrixBinary(m, Path("trunc.bin")).ok());
  fs::resize_file(Path("trunc.bin"), 40);
  EXPECT_FALSE(ReadMatrixBinary(Path("trunc.bin")).ok());
}

TEST_F(IoTest, MatrixBinaryRejectsOverflowingShape) {
  // rows = cols = 2³³ makes rows·cols wrap to zero in 64 bits; the header
  // guard must reject each factor before multiplying instead of letting
  // the wrapped product slip past and trigger a huge allocation.
  {
    std::ofstream f(Path("overflow.bin"), std::ios::binary);
    f.write("RHM1", 4);
    const uint64_t rows = 1ull << 33, cols = 1ull << 33;
    f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  }
  Result<la::Matrix> r = ReadMatrixBinary(Path("overflow.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("implausible shape"), std::string::npos);
}

TEST_F(IoTest, MatrixBinaryRejectsShortHeader) {
  {
    std::ofstream f(Path("short.bin"), std::ios::binary);
    f.write("RHM1", 4);
    const uint64_t rows = 3;  // cols missing entirely.
    f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  }
  Result<la::Matrix> r = ReadMatrixBinary(Path("short.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("truncated header"), std::string::npos);
}

TEST_F(IoTest, LabelsRoundTrip) {
  std::vector<std::size_t> labels = {3, 0, 0, 7, 2};
  ASSERT_TRUE(WriteLabels(labels, Path("y.txt")).ok());
  Result<std::vector<std::size_t>> back = ReadLabels(Path("y.txt"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), labels);
}

TEST_F(IoTest, LabelsRejectGarbage) {
  {
    std::ofstream f(Path("bad.txt"));
    f << "1\nxyz\n";
  }
  EXPECT_FALSE(ReadLabels(Path("bad.txt")).ok());
}

TEST_F(IoTest, LabelsRejectTrailingJunkWithLineNumber) {
  // std::stoul alone would parse "3abc" as 3; the strict parser rejects
  // it and names the offending line.
  {
    std::ofstream f(Path("junk.txt"));
    f << "1\n2\n3abc\n";
  }
  Result<std::vector<std::size_t>> r = ReadLabels(Path("junk.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST_F(IoTest, LabelsRejectNegativeValues) {
  // "-1" would wrap to a huge size_t through std::stoul.
  {
    std::ofstream f(Path("neg.txt"));
    f << "0\n-1\n";
  }
  Result<std::vector<std::size_t>> r = ReadLabels(Path("neg.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST_F(IoTest, LabelsAcceptWindowsLineEndingsAndPadding) {
  {
    std::ofstream f(Path("crlf.txt"), std::ios::binary);
    f << "3\r\n 0 \r\n\r\n7\n";
  }
  Result<std::vector<std::size_t>> r = ReadLabels(Path("crlf.txt"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), (std::vector<std::size_t>{3, 0, 7}));
}

TEST_F(IoTest, LabelsRejectOutOfRangeValues) {
  {
    std::ofstream f(Path("huge.txt"));
    f << "123456789012345678901234567890\n";  // > 2⁶⁴.
  }
  Result<std::vector<std::size_t>> r = ReadLabels(Path("huge.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST_F(IoTest, DatasetRoundTrip) {
  data::SyntheticCorpusOptions gen;
  gen.docs_per_class = {8, 8};
  gen.n_terms = 30;
  gen.n_concepts = 20;
  gen.topics_per_class = 2;
  gen.core_terms_per_topic = 4;
  gen.seed = 9;
  data::MultiTypeRelationalData original =
      data::GenerateSyntheticCorpus(gen).value();

  const std::string ds = Path("dataset");
  ASSERT_TRUE(SaveDataset(original, ds).ok());
  Result<data::MultiTypeRelationalData> back = LoadDataset(ds);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  ASSERT_EQ(back.value().NumTypes(), original.NumTypes());
  for (std::size_t k = 0; k < original.NumTypes(); ++k) {
    EXPECT_EQ(back.value().Type(k).name, original.Type(k).name);
    EXPECT_EQ(back.value().Type(k).count, original.Type(k).count);
    EXPECT_EQ(back.value().Type(k).clusters, original.Type(k).clusters);
    EXPECT_EQ(back.value().Type(k).labels, original.Type(k).labels);
    EXPECT_EQ(la::MaxAbsDiff(back.value().Type(k).features,
                             original.Type(k).features),
              0.0);
  }
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t l = k + 1; l < 3; ++l) {
      ASSERT_EQ(back.value().HasRelation(k, l), original.HasRelation(k, l));
      if (original.HasRelation(k, l)) {
        EXPECT_EQ(la::MaxAbsDiff(back.value().Relation(k, l),
                                 original.Relation(k, l)),
                  0.0);
      }
    }
  }
}

TEST_F(IoTest, LoadDatasetFailsOnMissingDir) {
  EXPECT_FALSE(LoadDataset(Path("nope")).ok());
}

TEST_F(IoTest, SaveDatasetRejectsInvalidData) {
  data::MultiTypeRelationalData bad;  // No types.
  EXPECT_FALSE(SaveDataset(bad, Path("bad")).ok());
}

}  // namespace
}  // namespace io
}  // namespace rhchme
