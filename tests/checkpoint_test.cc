// Solver checkpoint/resume (core/checkpoint.h).
//
// Three properties pinned here:
//   1. snapshot round-trip is bit-exact;
//   2. a snapshot file truncated at *every* possible byte (or bit-flipped)
//      loads as a clean non-OK Status — never UB, never a garbage state;
//   3. a fit killed after iteration k and resumed reproduces the
//      uninterrupted trajectory bit-identically, at pool sizes 1 and 4,
//      on every solver core.

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/ensemble.h"
#include "core/rhchme_solver.h"
#include "data/synthetic.h"
#include "factorization/hocc_common.h"
#include "scoped_num_threads.h"
#include "util/rng.h"

namespace rhchme {
namespace core {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectBitIdentical(const la::Matrix& a, const la::Matrix& b,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    ASSERT_EQ(std::memcmp(a.row_ptr(i), b.row_ptr(i),
                          a.cols() * sizeof(double)),
              0)
        << what << " row " << i;
  }
}

SolverSnapshot MakeSnapshot() {
  SolverSnapshot snap;
  snap.core_id = SolverCoreId::kSparseR;
  snap.options_fingerprint = 0x1234abcdu;
  snap.iteration = 3;
  snap.prev_objective = 41.5;
  snap.have_error = true;
  Rng rng(7);
  rng.Normal(0.0, 1.0);  // Populate the cached-normal state too.
  snap.rng_state = rng.SaveState();
  snap.diagnostics.nan_guard_trips = 2;
  snap.diagnostics.nonfinite_input_entries = 5;
  snap.g = la::Matrix(4, 2);
  snap.s = la::Matrix(2, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    snap.g(i, 0) = 0.25 * static_cast<double>(i) + 0.1;
    snap.g(i, 1) = 1.0 - snap.g(i, 0);
  }
  snap.s(0, 1) = 0.75;
  snap.s(1, 0) = 0.25;
  snap.er_scale = {1.0, 0.5, 0.25, 0.125};
  snap.objective_trace = {100.0, 60.0, 41.5};
  return snap;
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const std::string path = TempPath("rhchme_ckpt_roundtrip.bin");
  const SolverSnapshot snap = MakeSnapshot();
  ASSERT_TRUE(SaveSolverSnapshot(path, snap).ok());
  Result<SolverSnapshot> loaded = LoadSolverSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SolverSnapshot& l = loaded.value();
  EXPECT_EQ(l.core_id, snap.core_id);
  EXPECT_EQ(l.options_fingerprint, snap.options_fingerprint);
  EXPECT_EQ(l.iteration, snap.iteration);
  EXPECT_EQ(l.prev_objective, snap.prev_objective);
  EXPECT_EQ(l.have_error, snap.have_error);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(l.rng_state.s[i], snap.rng_state.s[i]);
  }
  EXPECT_EQ(l.rng_state.have_cached_normal, snap.rng_state.have_cached_normal);
  EXPECT_EQ(l.rng_state.cached_normal, snap.rng_state.cached_normal);
  EXPECT_EQ(l.diagnostics.nan_guard_trips, 2);
  EXPECT_EQ(l.diagnostics.nonfinite_input_entries, 5u);
  ExpectBitIdentical(l.g, snap.g, "g");
  ExpectBitIdentical(l.s, snap.s, "s");
  EXPECT_EQ(l.er_scale, snap.er_scale);
  EXPECT_EQ(l.objective_trace, snap.objective_trace);
  fs::remove(path);
}

TEST(Checkpoint, MissingFileIsNotFound) {
  Result<SolverSnapshot> r =
      LoadSolverSnapshot(TempPath("rhchme_ckpt_never_written.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Checkpoint, TruncationAtEveryByteFailsCleanly) {
  // Simulates a kill (or disk-full) mid-write at every possible offset.
  // Every prefix must load as a clean error; none may crash or succeed.
  const std::string path = TempPath("rhchme_ckpt_trunc.bin");
  ASSERT_TRUE(SaveSolverSnapshot(path, MakeSnapshot()).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 0u);
  const std::string trunc_path = TempPath("rhchme_ckpt_trunc_cut.bin");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteAll(trunc_path, bytes.substr(0, cut));
    Result<SolverSnapshot> r = LoadSolverSnapshot(trunc_path);
    ASSERT_FALSE(r.ok()) << "truncation at byte " << cut << " loaded";
    ASSERT_FALSE(r.status().message().empty()) << "byte " << cut;
  }
  fs::remove(path);
  fs::remove(trunc_path);
}

TEST(Checkpoint, BitFlipFailsChecksum) {
  const std::string path = TempPath("rhchme_ckpt_flip.bin");
  ASSERT_TRUE(SaveSolverSnapshot(path, MakeSnapshot()).ok());
  std::string bytes = ReadAll(path);
  // Flip one bit at a spread of offsets, including inside the payload
  // (silent value corruption a shape check alone cannot catch).
  for (std::size_t pos : {std::size_t{0}, bytes.size() / 3,
                          bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    WriteAll(path, corrupt);
    Result<SolverSnapshot> r = LoadSolverSnapshot(path);
    EXPECT_FALSE(r.ok()) << "bit flip at " << pos << " loaded";
  }
  fs::remove(path);
}

// ---- Kill-and-resume bit-identity -----------------------------------------

data::MultiTypeRelationalData SmallData(uint64_t seed = 21) {
  data::BlockWorldOptions o;
  o.objects_per_type = {24, 18, 12};
  o.n_classes = 3;
  o.seed = seed;
  return data::GenerateBlockWorld(o).value();
}

struct CoreConfig {
  const char* name;
  SparseRMode sparse_r;
  bool explicit_core;
};

RhchmeOptions CoreOptions(const CoreConfig& cfg) {
  RhchmeOptions opts;
  opts.max_iterations = 9;
  opts.lambda = 1.0;
  opts.beta = 50.0;
  opts.tolerance = 0.0;  // Never converge early: full, comparable traces.
  opts.ensemble.subspace.spg.max_iterations = 20;
  opts.sparse_r = cfg.sparse_r;
  opts.explicit_materialization = cfg.explicit_core;
  return opts;
}

const CoreConfig kCores[] = {
    {"dense-implicit", SparseRMode::kNever, false},
    {"dense-explicit", SparseRMode::kNever, true},
    {"sparse-r", SparseRMode::kAlways, false},
};

TEST(CheckpointResume, KilledFitResumesBitIdentically) {
  const data::MultiTypeRelationalData d = SmallData();
  const fact::BlockStructure blocks = fact::BuildBlockStructure(d);
  for (int threads : {1, 4}) {
    ScopedNumThreads pool(threads);
    for (const CoreConfig& cfg : kCores) {
      SCOPED_TRACE(std::string(cfg.name) + " @" + std::to_string(threads) +
                   " threads");
      RhchmeOptions opts = CoreOptions(cfg);
      Result<HeterogeneousEnsemble> ensemble =
          BuildEnsemble(d, blocks, opts.ensemble);
      ASSERT_TRUE(ensemble.ok()) << ensemble.status().ToString();

      // Reference: one uninterrupted fit.
      Result<RhchmeResult> full =
          Rhchme(opts).FitWithEnsemble(d, *ensemble);
      ASSERT_TRUE(full.ok()) << full.status().ToString();

      // "Killed" fit: stop after 4 iterations with a checkpoint at 4,
      // then resume with the full budget (the options fingerprint
      // deliberately excludes max_iterations, so extending it is legal).
      const std::string snap = TempPath("rhchme_ckpt_resume.bin");
      fs::remove(snap);
      RhchmeOptions killed = opts;
      killed.max_iterations = 4;
      killed.checkpoint_path = snap;
      killed.checkpoint_every = 2;
      Result<RhchmeResult> part =
          Rhchme(killed).FitWithEnsemble(d, *ensemble);
      ASSERT_TRUE(part.ok()) << part.status().ToString();
      ASSERT_GE(part.value().diagnostics.snapshots_written, 1);

      RhchmeOptions resumed = opts;
      resumed.checkpoint_path = snap;
      resumed.resume = true;
      Result<RhchmeResult> cont =
          Rhchme(resumed).FitWithEnsemble(d, *ensemble);
      ASSERT_TRUE(cont.ok()) << cont.status().ToString();
      EXPECT_EQ(cont.value().diagnostics.resumed_from_iteration, 4);

      ASSERT_EQ(cont.value().hocc.objective_trace.size(),
                full.value().hocc.objective_trace.size());
      for (std::size_t t = 0; t < full.value().hocc.objective_trace.size();
           ++t) {
        EXPECT_EQ(cont.value().hocc.objective_trace[t],
                  full.value().hocc.objective_trace[t])
            << "objective diverged at iteration " << t + 1;
      }
      ExpectBitIdentical(cont.value().hocc.g, full.value().hocc.g, "g");
      ExpectBitIdentical(cont.value().hocc.s, full.value().hocc.s, "s");
      EXPECT_EQ(cont.value().hocc.labels, full.value().hocc.labels);
      fs::remove(snap);
    }
  }
}

TEST(CheckpointResume, MismatchedSnapshotIsRejectedNotSilentlyRestarted) {
  const data::MultiTypeRelationalData d = SmallData();
  const fact::BlockStructure blocks = fact::BuildBlockStructure(d);
  const CoreConfig dense = kCores[0];
  RhchmeOptions opts = CoreOptions(dense);
  Result<HeterogeneousEnsemble> ensemble =
      BuildEnsemble(d, blocks, opts.ensemble);
  ASSERT_TRUE(ensemble.ok());

  const std::string snap = TempPath("rhchme_ckpt_mismatch.bin");
  fs::remove(snap);
  RhchmeOptions writer = opts;
  writer.max_iterations = 4;
  writer.checkpoint_path = snap;
  writer.checkpoint_every = 2;
  ASSERT_TRUE(Rhchme(writer).FitWithEnsemble(d, *ensemble).ok());

  // Different lambda -> different fingerprint.
  RhchmeOptions other = opts;
  other.lambda = 2.0;
  other.checkpoint_path = snap;
  other.resume = true;
  Result<RhchmeResult> r = Rhchme(other).FitWithEnsemble(d, *ensemble);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  // Different solver core, same everything else.
  RhchmeOptions sparse = CoreOptions(kCores[2]);
  sparse.checkpoint_path = snap;
  sparse.resume = true;
  Result<RhchmeResult> r2 = Rhchme(sparse).FitWithEnsemble(d, *ensemble);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kFailedPrecondition);

  // resume with a missing file is a fresh fit, not an error.
  fs::remove(snap);
  RhchmeOptions fresh = opts;
  fresh.checkpoint_path = snap;
  fresh.resume = true;
  Result<RhchmeResult> r3 = Rhchme(fresh).FitWithEnsemble(d, *ensemble);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(r3.value().diagnostics.resumed_from_iteration, 0);
}

TEST(CheckpointResume, ValidationRejectsInconsistentOptions) {
  RhchmeOptions o = CoreOptions(kCores[0]);
  o.checkpoint_every = 2;  // every without a path
  EXPECT_FALSE(o.Validate().ok());
  o = CoreOptions(kCores[0]);
  o.resume = true;  // resume without a path
  EXPECT_FALSE(o.Validate().ok());
  o = CoreOptions(kCores[0]);
  o.checkpoint_every = -1;
  EXPECT_FALSE(o.Validate().ok());
}

}  // namespace
}  // namespace core
}  // namespace rhchme
