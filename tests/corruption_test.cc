// Unit tests for noise/corruption injection.

#include "data/corruption.h"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

namespace rhchme {
namespace data {
namespace {

TEST(CorruptRows, OnlySelectedRowsChange) {
  la::Matrix m(20, 10, 1.0);
  la::Matrix original = m;
  Rng rng(1);
  RowCorruptionOptions opts;
  opts.row_fraction = 0.25;
  opts.entry_fraction = 1.0;
  std::vector<std::size_t> rows = CorruptRows(&m, opts, &rng);
  EXPECT_EQ(rows.size(), 5u);
  for (std::size_t i = 0; i < 20; ++i) {
    const bool corrupted =
        std::find(rows.begin(), rows.end(), i) != rows.end();
    double diff = 0.0;
    for (std::size_t j = 0; j < 10; ++j) {
      diff += std::fabs(m(i, j) - original(i, j));
    }
    if (corrupted) {
      EXPECT_GT(diff, 0.0) << "row " << i;
    } else {
      EXPECT_EQ(diff, 0.0) << "row " << i;
    }
  }
}

TEST(CorruptRows, SpikesAreAdditiveAndPositive) {
  la::Matrix m(10, 5, 2.0);
  Rng rng(2);
  RowCorruptionOptions opts;
  opts.row_fraction = 1.0;
  opts.entry_fraction = 1.0;
  opts.magnitude = 3.0;
  CorruptRows(&m, opts, &rng);
  EXPECT_GE(m.Min(), 2.0);  // Additive spikes never decrease values.
  EXPECT_GT(m.Max(), 2.0);
}

TEST(CorruptRows, ZeroFractionIsNoOp) {
  la::Matrix m(5, 5, 1.0);
  la::Matrix original = m;
  Rng rng(3);
  RowCorruptionOptions opts;
  opts.row_fraction = 0.0;
  EXPECT_TRUE(CorruptRows(&m, opts, &rng).empty());
  EXPECT_EQ(la::MaxAbsDiff(m, original), 0.0);
}

TEST(CorruptRows, MagnitudeScalesWithDataMean) {
  la::Matrix small(10, 10, 0.1);
  la::Matrix large(10, 10, 100.0);
  Rng rng_a(4), rng_b(4);
  RowCorruptionOptions opts;
  opts.row_fraction = 1.0;
  opts.entry_fraction = 1.0;
  CorruptRows(&small, opts, &rng_a);
  CorruptRows(&large, opts, &rng_b);
  // Spikes are relative: the large matrix receives much larger spikes.
  EXPECT_GT(large.Max() - 100.0, 10.0 * (small.Max() - 0.1));
}

TEST(CorruptRows, RowIndicesAreSortedAndUnique) {
  la::Matrix m(50, 4, 1.0);
  Rng rng(5);
  RowCorruptionOptions opts;
  opts.row_fraction = 0.4;
  std::vector<std::size_t> rows = CorruptRows(&m, opts, &rng);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_EQ(std::adjacent_find(rows.begin(), rows.end()), rows.end());
}

TEST(CorruptRows, NonFiniteModePlantsNanAndInfInSelectedRowsOnly) {
  la::Matrix m(20, 10, 1.0);
  Rng rng(12);
  RowCorruptionOptions opts;
  opts.row_fraction = 0.25;
  opts.entry_fraction = 1.0;
  opts.mode = RowCorruptionMode::kNonFinite;
  std::vector<std::size_t> rows = CorruptRows(&m, opts, &rng);
  EXPECT_EQ(rows.size(), 5u);
  std::size_t nonfinite = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const bool corrupted =
        std::find(rows.begin(), rows.end(), i) != rows.end();
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(m(i, j))) {
        ++nonfinite;
        EXPECT_TRUE(corrupted) << "NaN/Inf leaked into clean row " << i;
      } else if (!corrupted) {
        EXPECT_EQ(m(i, j), 1.0);
      }
    }
  }
  // entry_fraction = 1 poisons every entry of every selected row.
  EXPECT_EQ(nonfinite, 50u);
}

TEST(CorruptRows, NonFiniteModeUsesBothNanAndInf) {
  la::Matrix m(40, 10, 1.0);
  Rng rng(13);
  RowCorruptionOptions opts;
  opts.row_fraction = 1.0;
  opts.entry_fraction = 1.0;
  opts.mode = RowCorruptionMode::kNonFinite;
  CorruptRows(&m, opts, &rng);
  std::size_t nans = 0, infs = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (std::isnan(m(i, j))) ++nans;
      if (std::isinf(m(i, j))) ++infs;
    }
  }
  EXPECT_GT(nans, 100u);
  EXPECT_GT(infs, 100u);
}

TEST(CorruptRows, NonFiniteModeSelectsSameEntriesAsSpike) {
  // The two payloads must consume the Rng identically, so the *set* of
  // hit entries is mode-independent and seeded experiments stay
  // comparable across modes.
  la::Matrix spiked(20, 10, 1.0);
  la::Matrix poisoned(20, 10, 1.0);
  Rng rng_a(14), rng_b(14);
  RowCorruptionOptions opts;
  opts.row_fraction = 0.5;
  opts.entry_fraction = 0.4;
  std::vector<std::size_t> rows_a = CorruptRows(&spiked, opts, &rng_a);
  opts.mode = RowCorruptionMode::kNonFinite;
  std::vector<std::size_t> rows_b = CorruptRows(&poisoned, opts, &rng_b);
  EXPECT_EQ(rows_a, rows_b);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_EQ(spiked(i, j) != 1.0, !std::isfinite(poisoned(i, j)))
          << "entry (" << i << ", " << j << ") hit in one mode only";
    }
  }
}

TEST(GaussianNoise, ClampsNegativesWhenAsked) {
  la::Matrix m(30, 30, 0.01);
  Rng rng(6);
  AddGaussianNoise(&m, 1.0, &rng, /*keep_nonnegative=*/true);
  EXPECT_TRUE(m.IsNonNegative());
}

TEST(GaussianNoise, LeavesNegativesWhenAllowed) {
  la::Matrix m(30, 30, 0.0);
  Rng rng(7);
  AddGaussianNoise(&m, 1.0, &rng, /*keep_nonnegative=*/false);
  EXPECT_LT(m.Min(), 0.0);
}

TEST(GaussianNoise, ChangesRoughlyEveryEntry) {
  la::Matrix m(10, 10, 5.0);
  Rng rng(8);
  AddGaussianNoise(&m, 0.1, &rng);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) != 5.0) ++changed;
    }
  }
  EXPECT_GT(changed, 95u);
}

TEST(RowCorruptionOptions, ValidatesRanges) {
  RowCorruptionOptions opts;
  EXPECT_TRUE(opts.Validate().ok());

  opts.row_fraction = -0.1;
  EXPECT_FALSE(opts.Validate().ok());
  opts.row_fraction = 1.1;
  EXPECT_FALSE(opts.Validate().ok());
  opts.row_fraction = 1.0;
  EXPECT_TRUE(opts.Validate().ok());

  opts.entry_fraction = -1e-9;
  EXPECT_FALSE(opts.Validate().ok());
  opts.entry_fraction = 2.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.entry_fraction = 0.0;
  EXPECT_TRUE(opts.Validate().ok());

  opts.magnitude = -3.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.magnitude = std::nan("");
  EXPECT_FALSE(opts.Validate().ok());
  opts.magnitude = 0.0;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(RowCorruptionOptions, NanFractionsAreRejected) {
  // NaN compares false against every bound — the range checks must be
  // written so NaN cannot slip through as "in range".
  RowCorruptionOptions opts;
  opts.row_fraction = std::nan("");
  EXPECT_FALSE(opts.Validate().ok());
  opts.row_fraction = 0.5;
  opts.entry_fraction = std::nan("");
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(DropEntries, HonoursProbabilityAndOnlyZeroes) {
  la::Matrix m(100, 100, 1.0);
  Rng rng(10);
  DropEntries(&m, 0.3, &rng);
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) == 0.0) {
        ++dropped;
      } else {
        EXPECT_EQ(m(i, j), 1.0);
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / 10000.0, 0.3, 0.03);
}

TEST(DropEntries, ZeroProbabilityIsNoOp) {
  la::Matrix m(8, 8, 2.0);
  la::Matrix original = m;
  Rng rng(11);
  DropEntries(&m, 0.0, &rng);
  EXPECT_EQ(la::MaxAbsDiff(m, original), 0.0);
}

TEST(SparseSpikes, ApproximatelyHonoursProbability) {
  la::Matrix m(100, 100, 0.0);
  Rng rng(9);
  AddSparseSpikes(&m, 0.1, 5.0, &rng);
  std::size_t spiked = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) != 0.0) ++spiked;
    }
  }
  EXPECT_NEAR(static_cast<double>(spiked) / 10000.0, 0.1, 0.02);
  EXPECT_LE(m.Max(), 5.0);
}

}  // namespace
}  // namespace data
}  // namespace rhchme
