// Deterministic fault-injection sweep (util/fault.h).
//
// The contract under test: every registered injection site, when fired,
// yields either a *recovered* fit (OK result, finite nonnegative G,
// diagnostics counting at least one recovery event) or a clean non-OK
// Status — never a crash, a hang, or a silently poisoned result.

#include "util/fault.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/ensemble.h"
#include "core/rhchme_solver.h"
#include "data/synthetic.h"
#include "factorization/hocc_common.h"
#include "io/dataset_io.h"

namespace rhchme {
namespace {

namespace fs = std::filesystem;

data::MultiTypeRelationalData SmallData(uint64_t seed = 21) {
  data::BlockWorldOptions o;
  o.objects_per_type = {24, 18, 12};
  o.n_classes = 3;
  o.seed = seed;
  return data::GenerateBlockWorld(o).value();
}

core::RhchmeOptions FastOptions(bool sparse_core) {
  core::RhchmeOptions opts;
  opts.max_iterations = 12;
  opts.lambda = 1.0;
  opts.beta = 50.0;
  opts.ensemble.subspace.spg.max_iterations = 20;
  opts.sparse_r =
      sparse_core ? core::SparseRMode::kAlways : core::SparseRMode::kNever;
  return opts;
}

/// A fit outcome that honours the recovery contract: OK with a sane,
/// fully finite result, or a clean non-OK Status carrying a message.
void ExpectRecoveredOrCleanFailure(const Result<core::RhchmeResult>& fit,
                                   const char* site, bool fired) {
  if (!fit.ok()) {
    EXPECT_FALSE(fit.status().message().empty()) << site;
    return;
  }
  const core::RhchmeResult& r = fit.value();
  EXPECT_TRUE(r.hocc.g.AllFinite()) << site;
  EXPECT_TRUE(r.hocc.g.IsNonNegative()) << site;
  EXPECT_GT(r.hocc.iterations, 0) << site;
  if (fired) {
    EXPECT_GT(r.diagnostics.RecoveryEvents(), 0u)
        << site << ": fault fired but no recovery event was counted";
  }
}

/// Solver-seam sites are probed inside FitWithEnsemble; a shared
/// ensemble keeps the sweep fast and keeps ensemble construction out of
/// the armed window.
class SolverFaultSweep : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    data_ = SmallData();
    blocks_ = fact::BuildBlockStructure(data_);
    core::RhchmeOptions opts = FastOptions(GetParam());
    Result<core::HeterogeneousEnsemble> e =
        core::BuildEnsemble(data_, blocks_, opts.ensemble);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    ensemble_ = std::move(e).value();
  }

  data::MultiTypeRelationalData data_;
  fact::BlockStructure blocks_;
  core::HeterogeneousEnsemble ensemble_;
};

TEST_P(SolverFaultSweep, EverySiteRecoversOrFailsCleanly) {
  // Fire each site on its first hit and again deeper into the fit, so
  // both the "no accepted iterate yet" and the "mid-trajectory" recovery
  // paths are exercised for every seam.
  for (const char* site : util::AllFaultSites()) {
    for (int fire_on_hit : {1, 3}) {
      util::ScopedFaultDisarm scoped;
      util::FaultArmCountdown(site, fire_on_hit);
      core::Rhchme solver(FastOptions(GetParam()));
      Result<core::RhchmeResult> fit =
          solver.FitWithEnsemble(data_, ensemble_);
      const bool fired = util::FaultHitCount(site) >= fire_on_hit;
      ExpectRecoveredOrCleanFailure(fit, site, fired);
    }
  }
}

TEST_P(SolverFaultSweep, PoisonSitesRecoverWithGuardsCounted) {
  // The NaN-payload seams must come back as *recovered* OK fits: the
  // guards absorb the poison, they do not give up.
  const std::vector<const char*> kPoisonSites = {
      util::fault_site::kGUpdatePoison, util::fault_site::kResidualPoison,
      util::fault_site::kObjectivePoison, util::fault_site::kInitPoison};
  for (const char* site : kPoisonSites) {
    util::ScopedFaultDisarm scoped;
    util::FaultArmCountdown(site, 1);
    core::Rhchme solver(FastOptions(GetParam()));
    Result<core::RhchmeResult> fit = solver.FitWithEnsemble(data_, ensemble_);
    ASSERT_TRUE(fit.ok()) << site << ": " << fit.status().ToString();
    ASSERT_GE(util::FaultHitCount(site), 1) << site << " was never probed";
    EXPECT_GT(fit.value().diagnostics.RecoveryEvents(), 0u) << site;
    EXPECT_TRUE(fit.value().hocc.g.AllFinite()) << site;
  }
}

TEST_P(SolverFaultSweep, CentralSolveFailureIsAbsorbedByRidgeLadder) {
  // Failing the first attempt of the c x c solve must be healed one
  // level down: the ridge ladder retries with boosted regularisation and
  // the fit proceeds, counting the retry — no degraded stop, no error.
  for (int fire_on_hit : {1, 2}) {
    util::ScopedFaultDisarm scoped;
    util::FaultArmCountdown(util::fault_site::kCentralSolveFail, fire_on_hit);
    core::Rhchme solver(FastOptions(GetParam()));
    Result<core::RhchmeResult> fit = solver.FitWithEnsemble(data_, ensemble_);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    ASSERT_GE(util::FaultHitCount(util::fault_site::kCentralSolveFail),
              fire_on_hit);
    EXPECT_GE(fit.value().diagnostics.solve_ridge_retries, 1);
    EXPECT_EQ(fit.value().diagnostics.degraded_stops, 0);
    EXPECT_TRUE(fit.value().hocc.g.AllFinite());
  }
}

TEST_P(SolverFaultSweep, AllocationFailureIsCleanStatus) {
  for (const char* site : {util::fault_site::kAllocJointR,
                           util::fault_site::kAllocWorkspace}) {
    util::ScopedFaultDisarm scoped;
    util::FaultArmCountdown(site, 1);
    core::Rhchme solver(FastOptions(GetParam()));
    Result<core::RhchmeResult> fit = solver.FitWithEnsemble(data_, ensemble_);
    ASSERT_FALSE(fit.ok()) << site;
    EXPECT_EQ(fit.status().code(), StatusCode::kInternal) << site;
  }
}

TEST_P(SolverFaultSweep, SeededSoakNeverCrashes) {
  // Probabilistic schedule over every site at once; any failure replays
  // from the logged seed via FaultArmSeeded.
  for (uint64_t seed : {7u, 99u}) {
    util::ScopedFaultDisarm scoped;
    util::FaultArmSeeded(seed, 0.05);
    core::Rhchme solver(FastOptions(GetParam()));
    Result<core::RhchmeResult> fit = solver.FitWithEnsemble(data_, ensemble_);
    SCOPED_TRACE("soak seed " + std::to_string(seed));
    ExpectRecoveredOrCleanFailure(fit, "seeded-soak", /*fired=*/false);
  }
}

TEST_P(SolverFaultSweep, DisarmedRegistryIsInert) {
  util::FaultDisarm();
  core::Rhchme solver(FastOptions(GetParam()));
  Result<core::RhchmeResult> fit = solver.FitWithEnsemble(data_, ensemble_);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit.value().diagnostics.RecoveryEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Cores, SolverFaultSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "SparseR"
                                                   : "DenseImplicit";
                         });

TEST(IoFaults, MatrixWriteFailureIsCleanStatus) {
  util::ScopedFaultDisarm scoped;
  const fs::path dir = fs::temp_directory_path() / "rhchme_fault_io_w";
  fs::remove_all(dir);
  data::MultiTypeRelationalData d = SmallData();
  util::FaultArmCountdown(util::fault_site::kMatrixWriteFail, 1);
  Status s = io::SaveDataset(d, dir.string());
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
  fs::remove_all(dir);
}

TEST(IoFaults, MatrixReadFailureIsCleanStatus) {
  util::ScopedFaultDisarm scoped;
  const fs::path dir = fs::temp_directory_path() / "rhchme_fault_io_r";
  fs::remove_all(dir);
  data::MultiTypeRelationalData d = SmallData();
  ASSERT_TRUE(io::SaveDataset(d, dir.string()).ok());
  util::FaultArmCountdown(util::fault_site::kMatrixReadFail, 1);
  Result<data::MultiTypeRelationalData> loaded =
      io::LoadDataset(dir.string());
  EXPECT_FALSE(loaded.ok());
  util::FaultDisarm();
  Result<data::MultiTypeRelationalData> clean = io::LoadDataset(dir.string());
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
  fs::remove_all(dir);
}

TEST(IoFaults, SnapshotWriteFaultsLeaveFitHealthy) {
  // A checkpoint write that truncates or cannot rename must be counted
  // and survived — and must never leave a half-written snapshot at the
  // final path (write-temp-then-rename).
  for (const char* site : {util::fault_site::kSnapshotWriteTruncate,
                           util::fault_site::kSnapshotRenameFail}) {
    util::ScopedFaultDisarm scoped;
    const fs::path snap =
        fs::temp_directory_path() / "rhchme_fault_snapshot.bin";
    fs::remove(snap);
    core::RhchmeOptions opts = FastOptions(/*sparse_core=*/false);
    opts.checkpoint_path = snap.string();
    opts.checkpoint_every = 1;
    util::FaultArmCountdown(site, 1);
    core::Rhchme solver(opts);
    Result<core::RhchmeResult> fit = solver.Fit(SmallData());
    ASSERT_TRUE(fit.ok()) << site << ": " << fit.status().ToString();
    EXPECT_GE(fit.value().diagnostics.snapshot_failures, 1) << site;
    EXPECT_GE(fit.value().diagnostics.snapshots_written, 1) << site;
    // Whatever is at the path is a complete snapshot from a later
    // iteration, never the truncated temp.
    Result<core::SolverSnapshot> loaded =
        core::LoadSolverSnapshot(snap.string());
    EXPECT_TRUE(loaded.ok()) << site << ": " << loaded.status().ToString();
    fs::remove(snap);
  }
}

}  // namespace
}  // namespace rhchme
