// Unit and statistical tests for the deterministic Rng.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace rhchme {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  uint64_t first = a.Next();
  a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIntCoversSupportWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(37);
  for (double mean : {0.5, 4.0, 30.0, 120.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / n, mean, std::max(0.05 * mean, 0.05))
        << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(43);
  for (int rep = 0; rep < 50; ++rep) {
    auto sample = rng.SampleWithoutReplacement(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (std::size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(59);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(DeriveStreamSeed, IsDeterministic) {
  EXPECT_EQ(DeriveStreamSeed(42, 0), DeriveStreamSeed(42, 0));
  EXPECT_EQ(DeriveStreamSeed(42, 7), DeriveStreamSeed(42, 7));
}

TEST(DeriveStreamSeed, AdjacentStreamsAndSeedsAreDistinct) {
  // Nearby (seed, stream) pairs must not collide — the failure mode of
  // additive offsets like seed + c*stream.
  std::set<uint64_t> seen;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (uint64_t stream = 0; stream < 8; ++stream) {
      seen.insert(DeriveStreamSeed(seed, stream));
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(StreamRng, MatchesDerivedSeedAndSeparatesStreams) {
  Rng direct(DeriveStreamSeed(123, 4));
  Rng stream = StreamRng(123, 4);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(stream.Next(), direct.Next());

  Rng a = StreamRng(123, 0);
  Rng b = StreamRng(123, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace rhchme
