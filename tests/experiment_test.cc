// Unit tests for the experiment harness behind Tables III-V.

#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace rhchme {
namespace eval {
namespace {

data::MultiTypeRelationalData SmallCorpus() {
  data::SyntheticCorpusOptions o;
  o.docs_per_class = {12, 12, 12};
  o.n_terms = 60;
  o.n_concepts = 40;
  o.topics_per_class = 2;
  o.core_terms_per_topic = 5;
  o.doc_length_mean = 50.0;
  o.class_overlap = 0.3;
  o.seed = 3;
  return data::GenerateSyntheticCorpus(o).value();
}

PaperBenchOptions FastBench() {
  PaperBenchOptions o;
  o.rhchme.max_iterations = 15;
  o.rhchme.ensemble.subspace.spg.max_iterations = 15;
  o.snmtf.max_iterations = 15;
  o.rmc.max_iterations = 10;
  o.src.max_iterations = 15;
  o.drcc.max_iterations = 15;
  return o;
}

TEST(Experiment, ScoreLabelsComputesBothMetrics) {
  std::vector<std::size_t> y = {0, 0, 1, 1};
  Result<Scores> s = ScoreLabels(y, y);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.value().fscore, 1.0);
  EXPECT_NEAR(s.value().nmi, 1.0, 1e-12);
}

TEST(Experiment, RunsAllSevenMethods) {
  data::MultiTypeRelationalData d = SmallCorpus();
  Result<std::vector<MethodRun>> runs =
      RunPaperMethods(d, "toy", FastBench());
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  ASSERT_EQ(runs.value().size(), 7u);
  std::vector<std::string> expected = {"DR-T", "DR-C",  "DR-TC", "SRC",
                                       "SNMTF", "RMC", "RHCHME"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(runs.value()[i].method, expected[i]);
    EXPECT_EQ(runs.value()[i].dataset, "toy");
    EXPECT_GE(runs.value()[i].scores.fscore, 0.0);
    EXPECT_LE(runs.value()[i].scores.fscore, 1.0);
    EXPECT_GE(runs.value()[i].scores.nmi, 0.0);
    EXPECT_LE(runs.value()[i].scores.nmi, 1.0);
    EXPECT_GT(runs.value()[i].seconds, 0.0);
    EXPECT_GT(runs.value()[i].iterations, 0);
  }
}

TEST(Experiment, MethodFilterRestrictsRuns) {
  data::MultiTypeRelationalData d = SmallCorpus();
  PaperBenchOptions opts = FastBench();
  opts.methods = {"SRC", "RHCHME"};
  Result<std::vector<MethodRun>> runs = RunPaperMethods(d, "toy", opts);
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs.value().size(), 2u);
  EXPECT_EQ(runs.value()[0].method, "SRC");
  EXPECT_EQ(runs.value()[1].method, "RHCHME");
}

TEST(Experiment, ConceptVariantsSkippedForTwoTypeData) {
  data::BlockWorldOptions o;
  o.objects_per_type = {20, 16};
  o.n_classes = 2;
  o.seed = 5;
  data::MultiTypeRelationalData d = data::GenerateBlockWorld(o).value();
  PaperBenchOptions opts = FastBench();
  opts.methods = {"DR-T", "DR-C", "DR-TC", "SRC"};
  Result<std::vector<MethodRun>> runs = RunPaperMethods(d, "bw", opts);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  // DR-C and DR-TC need a concept type; only DR-T and SRC remain.
  ASSERT_EQ(runs.value().size(), 2u);
  EXPECT_EQ(runs.value()[0].method, "DR-T");
  EXPECT_EQ(runs.value()[1].method, "SRC");
}

TEST(Experiment, RequiresDocumentLabels) {
  data::MultiTypeRelationalData d = SmallCorpus();
  d.MutableType(0).labels.clear();
  Result<std::vector<MethodRun>> runs =
      RunPaperMethods(d, "toy", FastBench());
  EXPECT_FALSE(runs.ok());
}

TEST(Experiment, RestartsAverageScores) {
  data::MultiTypeRelationalData d = SmallCorpus();
  PaperBenchOptions opts = FastBench();
  opts.methods = {"SRC"};
  opts.restarts = 3;
  Result<std::vector<MethodRun>> avg = RunPaperMethods(d, "toy", opts);
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();

  // Manual average over the same three seeds must agree.
  double f = 0.0;
  for (uint64_t seed : {0ull, 1ull, 2ull}) {
    baselines::SrcOptions o = opts.src;
    o.seed = seed;
    auto fit = baselines::RunSrc(d, o);
    ASSERT_TRUE(fit.ok());
    f += FScore(d.Type(0).labels, fit.value().labels[0]).value();
  }
  EXPECT_NEAR(avg.value()[0].scores.fscore, f / 3.0, 1e-12);
}

TEST(Experiment, RejectsZeroRestarts) {
  data::MultiTypeRelationalData d = SmallCorpus();
  PaperBenchOptions opts = FastBench();
  opts.restarts = 0;
  EXPECT_FALSE(RunPaperMethods(d, "toy", opts).ok());
}

TEST(Experiment, DeterministicAcrossCalls) {
  data::MultiTypeRelationalData d = SmallCorpus();
  PaperBenchOptions opts = FastBench();
  opts.methods = {"RHCHME"};
  Result<std::vector<MethodRun>> a = RunPaperMethods(d, "toy", opts);
  Result<std::vector<MethodRun>> b = RunPaperMethods(d, "toy", opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value()[0].scores.fscore, b.value()[0].scores.fscore);
  EXPECT_DOUBLE_EQ(a.value()[0].scores.nmi, b.value()[0].scores.nmi);
}

}  // namespace
}  // namespace eval
}  // namespace rhchme
