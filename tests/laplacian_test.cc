// Unit tests for graph Laplacians.

#include "graph/laplacian.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen_sym.h"
#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace graph {
namespace {

/// Path graph 0-1-2 with unit weights.
la::Matrix PathAffinity() {
  return la::Matrix::FromRows({{0, 1, 0}, {1, 0, 1}, {0, 1, 0}});
}

TEST(Laplacian, UnnormalizedHandComputed) {
  Result<la::Matrix> l =
      BuildLaplacian(PathAffinity(), LaplacianKind::kUnnormalized);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ(l.value()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(l.value()(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(l.value()(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(l.value()(0, 2), 0.0);
}

TEST(Laplacian, UnnormalizedRowSumsAreZero) {
  Rng rng(1);
  la::Matrix b = la::Matrix::RandomUniform(12, 12, &rng);
  la::Matrix w = la::Add(b, b.Transposed());  // Symmetric affinity.
  for (std::size_t i = 0; i < 12; ++i) w(i, i) = 0.0;
  Result<la::Matrix> l = BuildLaplacian(w, LaplacianKind::kUnnormalized);
  ASSERT_TRUE(l.ok());
  for (double s : l.value().RowSums()) EXPECT_NEAR(s, 0.0, 1e-10);
}

TEST(Laplacian, SymmetricNormalizedDiagonalIsOne) {
  Result<la::Matrix> l =
      BuildLaplacian(PathAffinity(), LaplacianKind::kSymmetric);
  ASSERT_TRUE(l.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(l.value()(i, i), 1.0);
  }
  // Off-diagonal: -1/sqrt(d_i d_j) = -1/sqrt(2).
  EXPECT_NEAR(l.value()(0, 1), -1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Laplacian, RandomWalkRowSumsAreZero) {
  Result<la::Matrix> l =
      BuildLaplacian(PathAffinity(), LaplacianKind::kRandomWalk);
  ASSERT_TRUE(l.ok());
  for (double s : l.value().RowSums()) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(Laplacian, UnnormalizedAndSymmetricArePSD) {
  Rng rng(2);
  la::Matrix b = la::Matrix::RandomUniform(10, 10, &rng);
  la::Matrix w = la::Add(b, b.Transposed());
  for (std::size_t i = 0; i < 10; ++i) w(i, i) = 0.0;
  for (LaplacianKind kind :
       {LaplacianKind::kUnnormalized, LaplacianKind::kSymmetric}) {
    Result<la::Matrix> l = BuildLaplacian(w, kind);
    ASSERT_TRUE(l.ok());
    Result<la::EigenSymResult> eig = la::EigenSym(l.value());
    ASSERT_TRUE(eig.ok());
    EXPECT_GE(eig.value().eigenvalues.front(), -1e-9)
        << LaplacianKindName(kind);
  }
}

TEST(Laplacian, ConstantVectorInNullspaceOfUnnormalized) {
  Rng rng(3);
  la::Matrix b = la::Matrix::RandomUniform(8, 8, &rng);
  la::Matrix w = la::Add(b, b.Transposed());
  for (std::size_t i = 0; i < 8; ++i) w(i, i) = 0.0;
  Result<la::Matrix> l = BuildLaplacian(w, LaplacianKind::kUnnormalized);
  ASSERT_TRUE(l.ok());
  std::vector<double> ones(8, 1.0);
  for (double v : la::MultiplyVec(l.value(), ones)) {
    EXPECT_NEAR(v, 0.0, 1e-10);
  }
}

TEST(Laplacian, IsolatedVertexHandledGracefully) {
  // Vertex 2 has no edges; normalised variants must not divide by zero.
  la::Matrix w = la::Matrix::FromRows({{0, 1, 0}, {1, 0, 0}, {0, 0, 0}});
  for (LaplacianKind kind :
       {LaplacianKind::kUnnormalized, LaplacianKind::kSymmetric,
        LaplacianKind::kRandomWalk}) {
    Result<la::Matrix> l = BuildLaplacian(w, kind);
    ASSERT_TRUE(l.ok()) << LaplacianKindName(kind);
    EXPECT_TRUE(l.value().AllFinite());
    EXPECT_DOUBLE_EQ(l.value()(2, 2), 0.0);
  }
}

TEST(Laplacian, SparseAndDenseOverloadsAgree) {
  Rng rng(4);
  la::Matrix b = la::Matrix::RandomUniform(9, 9, &rng);
  la::Matrix w = la::Add(b, b.Transposed());
  for (std::size_t i = 0; i < 9; ++i) w(i, i) = 0.0;
  w.Apply([](double v) { return v < 0.8 ? 0.0 : v; });
  la::SparseMatrix sparse = la::SparseMatrix::FromDense(w);
  for (LaplacianKind kind :
       {LaplacianKind::kUnnormalized, LaplacianKind::kSymmetric,
        LaplacianKind::kRandomWalk}) {
    Result<la::Matrix> from_dense = BuildLaplacian(w, kind);
    Result<la::Matrix> from_sparse = BuildLaplacian(sparse, kind);
    ASSERT_TRUE(from_dense.ok());
    ASSERT_TRUE(from_sparse.ok());
    EXPECT_LT(la::MaxAbsDiff(from_dense.value(), from_sparse.value()), 1e-12);
  }
}

TEST(Laplacian, SparseOutputMatchesDenseForAllKinds) {
  Rng rng(11);
  la::Matrix b = la::Matrix::RandomUniform(12, 12, &rng);
  la::Matrix w = la::Add(b, b.Transposed());
  for (std::size_t i = 0; i < 12; ++i) w(i, i) = 0.0;
  w.Apply([](double v) { return v < 1.2 ? 0.0 : v; });
  la::SparseMatrix sparse = la::SparseMatrix::FromDense(w);
  for (LaplacianKind kind :
       {LaplacianKind::kUnnormalized, LaplacianKind::kSymmetric,
        LaplacianKind::kRandomWalk}) {
    Result<la::Matrix> dense = BuildLaplacian(sparse, kind);
    Result<la::SparseMatrix> lean = BuildSparseLaplacian(sparse, kind);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(lean.ok()) << LaplacianKindName(kind);
    EXPECT_LT(la::MaxAbsDiff(dense.value(), lean.value().ToDense()), 1e-12)
        << LaplacianKindName(kind);
    // The sparse result never widens beyond W's pattern plus the diagonal.
    EXPECT_LE(lean.value().nnz(), sparse.nnz() + 12u);
  }
}

TEST(Laplacian, SparseOutputHandlesIsolatedVertices) {
  // Vertex 2 has no edges: normalised variants must leave its row (and
  // diagonal) empty, the unnormalised variant stores no explicit zero.
  std::vector<la::Triplet> trips = {{0, 1, 2.0}, {1, 0, 2.0}};
  la::SparseMatrix w = la::SparseMatrix::FromTriplets(3, 3, trips);
  for (LaplacianKind kind :
       {LaplacianKind::kUnnormalized, LaplacianKind::kSymmetric,
        LaplacianKind::kRandomWalk}) {
    Result<la::SparseMatrix> l = BuildSparseLaplacian(w, kind);
    ASSERT_TRUE(l.ok());
    EXPECT_EQ(l.value().At(2, 2), 0.0) << LaplacianKindName(kind);
    EXPECT_EQ(l.value().At(2, 0), 0.0) << LaplacianKindName(kind);
  }
}

TEST(Laplacian, SparseOutputRejectsNonSquare) {
  la::SparseMatrix w = la::SparseMatrix::FromTriplets(2, 3, {{0, 1, 1.0}});
  EXPECT_FALSE(BuildSparseLaplacian(w, LaplacianKind::kSymmetric).ok());
}

TEST(Laplacian, ConnectedComponentsShowInSpectrum) {
  // Two disjoint edges -> two zero eigenvalues of the unnormalised L.
  la::Matrix w(4, 4);
  w(0, 1) = w(1, 0) = 1.0;
  w(2, 3) = w(3, 2) = 1.0;
  Result<la::Matrix> l = BuildLaplacian(w, LaplacianKind::kUnnormalized);
  ASSERT_TRUE(l.ok());
  Result<la::EigenSymResult> eig = la::EigenSym(l.value());
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 0.0, 1e-10);
  EXPECT_NEAR(eig.value().eigenvalues[1], 0.0, 1e-10);
  EXPECT_GT(eig.value().eigenvalues[2], 0.5);
}

TEST(Laplacian, RejectsNonSquare) {
  EXPECT_FALSE(BuildLaplacian(la::Matrix(2, 3),
                              LaplacianKind::kUnnormalized).ok());
}

TEST(Laplacian, DegreeVectorMatchesRowSums) {
  la::Matrix w = PathAffinity();
  std::vector<double> deg = DegreeVector(w);
  EXPECT_EQ(deg, (std::vector<double>{1.0, 2.0, 1.0}));
  std::vector<double> deg_sparse =
      DegreeVector(la::SparseMatrix::FromDense(w));
  EXPECT_EQ(deg_sparse, deg);
}

}  // namespace
}  // namespace graph
}  // namespace rhchme
