// Unit tests for the tf-idf transform.

#include "data/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rhchme {
namespace data {
namespace {

TEST(TfIdf, HandComputedNoSmoothingNoSublinear) {
  // 2 docs, 2 terms; term 0 in both docs (idf = log(2/2) = 0), term 1 in
  // doc 0 only (idf = log(2/1)).
  la::Matrix counts = la::Matrix::FromRows({{1, 2}, {3, 0}});
  TfIdfOptions opts;
  opts.sublinear_tf = false;
  opts.smooth_idf = false;
  opts.l2_normalize = false;
  la::Matrix w = TfIdf(counts, opts);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w(1, 0), 0.0);
  EXPECT_NEAR(w(0, 1), 2.0 * std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(w(1, 1), 0.0);
}

TEST(TfIdf, SublinearDampensHighCounts) {
  la::Matrix counts = la::Matrix::FromRows({{100, 0}, {0, 1}});
  TfIdfOptions opts;
  opts.sublinear_tf = true;
  opts.smooth_idf = true;
  opts.l2_normalize = false;
  la::Matrix w = TfIdf(counts, opts);
  // tf = 1 + log(100) ≈ 5.6 instead of 100.
  const double idf = std::log(3.0 / 2.0) + 1.0;
  EXPECT_NEAR(w(0, 0), (1.0 + std::log(100.0)) * idf, 1e-12);
}

TEST(TfIdf, SmoothIdfNeverZeroOrInfinite) {
  // Term 1 appears nowhere; smooth idf must stay finite and positive.
  la::Matrix counts = la::Matrix::FromRows({{1, 0}, {1, 0}});
  TfIdfOptions opts;
  opts.smooth_idf = true;
  opts.l2_normalize = false;
  la::Matrix w = TfIdf(counts, opts);
  EXPECT_TRUE(w.AllFinite());
  EXPECT_GT(w(0, 0), 0.0);
}

TEST(TfIdf, L2NormalisedRowsHaveUnitNorm) {
  la::Matrix counts = la::Matrix::FromRows({{3, 4, 0}, {1, 1, 1}});
  la::Matrix w = TfIdf(counts);  // Defaults include L2 normalisation.
  for (std::size_t i = 0; i < 2; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 3; ++j) s += w(i, j) * w(i, j);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(TfIdf, EmptyDocumentStaysZero) {
  la::Matrix counts = la::Matrix::FromRows({{0, 0}, {1, 2}});
  la::Matrix w = TfIdf(counts);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w(0, 1), 0.0);
  EXPECT_TRUE(w.AllFinite());
}

TEST(TfIdf, NegativeCountsClampedFirst) {
  la::Matrix counts = la::Matrix::FromRows({{-5, 2}});
  TfIdfOptions opts;
  opts.l2_normalize = false;
  la::Matrix w = TfIdf(counts, opts);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.0);
  EXPECT_GT(w(0, 1), 0.0);
}

TEST(TfIdf, OutputIsNonNegative) {
  la::Matrix counts = la::Matrix::FromRows({{1, 0, 3}, {0, 2, 0}, {1, 1, 1}});
  la::Matrix w = TfIdf(counts);
  EXPECT_TRUE(w.IsNonNegative());
}

TEST(TfIdf, RareTermsWeighMoreThanCommonOnes) {
  // Same tf; the rare term (df=1) must outweigh the common one (df=3).
  la::Matrix counts = la::Matrix::FromRows({{2, 2}, {2, 0}, {2, 0}});
  TfIdfOptions opts;
  opts.l2_normalize = false;
  la::Matrix w = TfIdf(counts, opts);
  EXPECT_GT(w(0, 1), w(0, 0));
}

}  // namespace
}  // namespace data
}  // namespace rhchme
