// Unit tests for the pNN affinity graph (paper Eq. 3).

#include "graph/knn_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace rhchme {
namespace graph {
namespace {

/// Four collinear points at x = 0, 1, 2, 10: the first three are mutual
/// neighbours, the outlier attaches to x = 2.
la::Matrix LinePoints() {
  return la::Matrix::FromRows({{0.0}, {1.0}, {2.0}, {10.0}});
}

TEST(PairwiseDistances, HandComputed) {
  la::Matrix d = PairwiseSquaredDistances(LinePoints());
  EXPECT_DOUBLE_EQ(d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(d(0, 3), 100.0);
  EXPECT_DOUBLE_EQ(d(1, 2), 1.0);
  // Symmetry, zero diagonal.
  EXPECT_DOUBLE_EQ(d(3, 0), 100.0);
  EXPECT_DOUBLE_EQ(d(2, 2), 0.0);
}

TEST(PairwiseCosine, HandComputed) {
  la::Matrix pts = la::Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}, {-1, 0}});
  la::Matrix c = PairwiseCosine(pts);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
  EXPECT_NEAR(c(0, 2), 1.0 / std::sqrt(2.0), 1e-12);
  // Negative similarity floored at zero.
  EXPECT_DOUBLE_EQ(c(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(c(2, 2), 0.0);  // Diagonal untouched (zero).
}

TEST(PairwiseCosine, ZeroRowsGetZeroSimilarity) {
  la::Matrix pts = la::Matrix::FromRows({{0, 0}, {1, 1}});
  la::Matrix c = PairwiseCosine(pts);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

TEST(KnnGraph, NeighbourStructureOnLine) {
  KnnGraphOptions opts;
  opts.p = 1;
  opts.scheme = WeightScheme::kBinary;
  Result<la::SparseMatrix> g = BuildKnnGraph(LinePoints(), opts);
  ASSERT_TRUE(g.ok());
  la::Matrix w = g.value().ToDense();
  // Union symmetrisation: x=10's nearest is x=2, so (2,3) edge exists.
  EXPECT_GT(w(2, 3), 0.0);
  EXPECT_GT(w(0, 1), 0.0);
  // x=0 and x=10 are nobody's 1-NN pair.
  EXPECT_EQ(w(0, 3), 0.0);
}

TEST(KnnGraph, ResultIsSymmetricZeroDiagonal) {
  Rng rng(1);
  la::Matrix pts = la::Matrix::RandomNormal(30, 4, &rng);
  KnnGraphOptions opts;
  opts.p = 5;
  for (WeightScheme scheme :
       {WeightScheme::kBinary, WeightScheme::kHeatKernel,
        WeightScheme::kCosine}) {
    opts.scheme = scheme;
    Result<la::SparseMatrix> g = BuildKnnGraph(pts, opts);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g.value().IsSymmetric(1e-12))
        << WeightSchemeName(scheme);
    la::Matrix w = g.value().ToDense();
    for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(w(i, i), 0.0);
    EXPECT_TRUE(w.IsNonNegative());
  }
}

TEST(KnnGraph, BinaryWeightsAreOne) {
  Rng rng(2);
  la::Matrix pts = la::Matrix::RandomNormal(20, 3, &rng);
  KnnGraphOptions opts;
  opts.p = 3;
  opts.scheme = WeightScheme::kBinary;
  la::Matrix w = BuildKnnGraph(pts, opts).value().ToDense();
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      if (w(i, j) != 0.0) {
        EXPECT_DOUBLE_EQ(w(i, j), 1.0);
      }
    }
  }
}

TEST(KnnGraph, HeatWeightsDecayWithDistance) {
  KnnGraphOptions opts;
  opts.p = 2;
  opts.scheme = WeightScheme::kHeatKernel;
  opts.heat_sigma = 4.0;
  la::Matrix w = BuildKnnGraph(LinePoints(), opts).value().ToDense();
  // Closer pairs get larger weights.
  EXPECT_GT(w(0, 1), w(0, 2));
  // All weights in (0, 1].
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (w(i, j) > 0.0) {
        EXPECT_LE(w(i, j), 1.0);
      }
    }
  }
}

TEST(KnnGraph, AutoSigmaIsFiniteAndPositive) {
  Rng rng(3);
  la::Matrix pts = la::Matrix::RandomNormal(15, 2, &rng);
  KnnGraphOptions opts;
  opts.p = 3;
  opts.scheme = WeightScheme::kHeatKernel;
  opts.heat_sigma = -1.0;  // Auto.
  Result<la::SparseMatrix> g = BuildKnnGraph(pts, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g.value().nnz(), 0u);
  la::Matrix w = g.value().ToDense();
  EXPECT_TRUE(w.AllFinite());
}

TEST(KnnGraph, MutualIsSubsetOfUnion) {
  Rng rng(4);
  la::Matrix pts = la::Matrix::RandomNormal(40, 3, &rng);
  KnnGraphOptions u;
  u.p = 4;
  u.scheme = WeightScheme::kBinary;
  KnnGraphOptions m = u;
  m.mutual = true;
  la::Matrix wu = BuildKnnGraph(pts, u).value().ToDense();
  la::Matrix wm = BuildKnnGraph(pts, m).value().ToDense();
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 40; ++j) {
      if (wm(i, j) > 0.0) {
        EXPECT_GT(wu(i, j), 0.0);
      }
    }
  }
  EXPECT_LE(wm.Sum(), wu.Sum());
}

TEST(KnnGraph, PClampedToPopulation) {
  la::Matrix pts = la::Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  KnnGraphOptions opts;
  opts.p = 100;  // > n-1; must clamp, not crash.
  opts.scheme = WeightScheme::kBinary;
  Result<la::SparseMatrix> g = BuildKnnGraph(pts, opts);
  ASSERT_TRUE(g.ok());
  // Complete graph on 3 vertices.
  EXPECT_EQ(g.value().nnz(), 6u);
}

TEST(KnnGraph, RejectsDegenerateInputs) {
  KnnGraphOptions opts;
  EXPECT_FALSE(BuildKnnGraph(la::Matrix(1, 2), opts).ok());
  opts.p = 0;
  EXPECT_FALSE(BuildKnnGraph(la::Matrix(5, 2), opts).ok());
}

TEST(KnnGraph, DuplicatePointsDoNotBreakCosine) {
  la::Matrix pts = la::Matrix::FromRows({{1, 1}, {1, 1}, {2, 2}, {0, 0}});
  KnnGraphOptions opts;
  opts.p = 2;
  opts.scheme = WeightScheme::kCosine;
  Result<la::SparseMatrix> g = BuildKnnGraph(pts, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g.value().ToDense().AllFinite());
}

/// Regression: heat_sigma == 0 used to slip through Validate() and divide
/// by zero in the weight pass. Exactly zero is now rejected; negative
/// still selects the automatic bandwidth.
TEST(KnnGraph, RejectsZeroHeatSigma) {
  KnnGraphOptions opts;
  opts.scheme = WeightScheme::kHeatKernel;
  opts.heat_sigma = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  EXPECT_FALSE(BuildKnnGraph(LinePoints(), opts).ok());
  opts.heat_sigma = -1.0;
  EXPECT_TRUE(opts.Validate().ok());
  // Zero sigma is fine for schemes that never use it.
  opts.scheme = WeightScheme::kBinary;
  opts.heat_sigma = 0.0;
  EXPECT_TRUE(opts.Validate().ok());
}

/// Acceptance gate of the blocked exact path: no construction step —
/// neighbour search, auto bandwidth, weighting, symmetrisation — may
/// allocate a dense n x n matrix (la::memstats counts every Matrix
/// construction or Resize of >= n² doubles).
TEST(KnnGraph, ExactBuildAllocatesNoDenseNxN) {
  Rng rng(6);
  la::Matrix pts = la::Matrix::RandomNormal(64, 8, &rng);
  KnnGraphOptions opts;
  opts.p = 5;
  opts.backend = KnnBackend::kExact;
  for (WeightScheme scheme :
       {WeightScheme::kBinary, WeightScheme::kHeatKernel,
        WeightScheme::kCosine}) {
    opts.scheme = scheme;
    la::memstats::StartTracking(64 * 64);
    Result<la::SparseMatrix> g = BuildKnnGraph(pts, opts);
    la::memstats::StopTracking();
    ASSERT_TRUE(g.ok()) << WeightSchemeName(scheme);
    EXPECT_EQ(la::memstats::LargeAllocations(), 0u)
        << WeightSchemeName(scheme);
    EXPECT_GT(g.value().nnz(), 0u);
  }
}

TEST(KnnGraph, SchemeNames) {
  EXPECT_STREQ(WeightSchemeName(WeightScheme::kBinary), "binary");
  EXPECT_STREQ(WeightSchemeName(WeightScheme::kHeatKernel), "heat");
  EXPECT_STREQ(WeightSchemeName(WeightScheme::kCosine), "cosine");
}

}  // namespace
}  // namespace graph
}  // namespace rhchme
