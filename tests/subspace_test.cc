// Unit and property tests for multiple-subspace affinity learning
// (paper §III.A, Algorithm 1).

#include "core/subspace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/manifolds.h"
#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace core {
namespace {

TEST(ProjectFeasible, ClampsAndZeroesDiagonal) {
  la::Matrix w = la::Matrix::FromRows({{5, -1}, {2, 3}});
  ProjectFeasible(&w);
  EXPECT_EQ(w(0, 0), 0.0);
  EXPECT_EQ(w(1, 1), 0.0);
  EXPECT_EQ(w(0, 1), 0.0);
  EXPECT_EQ(w(1, 0), 2.0);
}

TEST(SubspaceObjective, MatchesDirectEvaluation) {
  Rng rng(1);
  la::Matrix x = la::Matrix::RandomUniform(8, 5, &rng);
  la::Matrix w = la::Matrix::RandomUniform(8, 8, &rng, 0.0, 0.2);
  ProjectFeasible(&w);
  const la::Matrix gram = la::MultiplyNT(x, x);
  // Direct: gamma*||X - WX||² + ||WWᵀ||₁ (nonneg W -> plain sum).
  la::Matrix resid = la::Multiply(w, x);
  resid.Sub(x);
  resid.Scale(-1.0);
  const double direct =
      3.0 * resid.FrobeniusNormSquared() + la::MultiplyNT(w, w).Sum();
  EXPECT_NEAR(SubspaceObjective(w, gram, 3.0), direct, 1e-8);
}

TEST(LearnSubspace, OutputSatisfiesConstraints) {
  Rng rng(2);
  la::Matrix x = la::Matrix::RandomUniform(30, 10, &rng);
  SubspaceOptions opts;
  Result<SubspaceResult> r = LearnSubspaceAffinity(x, opts);
  ASSERT_TRUE(r.ok());
  const la::Matrix& w = r.value().affinity;
  EXPECT_EQ(w.rows(), 30u);
  EXPECT_TRUE(w.IsNonNegative());
  EXPECT_TRUE(w.AllFinite());
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(w(i, i), 0.0);
  // Symmetrised by default.
  EXPECT_LT(la::MaxAbsDiff(w, w.Transposed()), 1e-12);
}

TEST(LearnSubspace, ObjectiveDecreasesMonotonically) {
  // The exact line search on the convex QP guarantees descent.
  Rng rng(3);
  la::Matrix x = la::Matrix::RandomUniform(25, 8, &rng);
  SubspaceOptions opts;
  opts.spg.max_iterations = 40;
  Result<SubspaceResult> r = LearnSubspaceAffinity(x, opts);
  ASSERT_TRUE(r.ok());
  const auto& trace = r.value().objective_trace;
  ASSERT_GE(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] + 1e-8) << "iteration " << i;
  }
}

TEST(LearnSubspace, ConnectsWithinSubspaceObjects) {
  // Points from two disjoint linear subspaces: the affinity mass must
  // concentrate within subspaces (paper Eq. 5).
  data::UnionOfSubspacesOptions gen;
  gen.subspace_dims = {2, 2};
  gen.points_per_subspace = 40;
  gen.ambient_dim = 12;
  gen.noise_sigma = 0.01;
  gen.seed = 5;
  Result<data::ManifoldSample> sample = data::SampleUnionOfSubspaces(gen);
  ASSERT_TRUE(sample.ok());

  SubspaceOptions opts;
  opts.gamma = 20.0;
  Result<SubspaceResult> r =
      LearnSubspaceAffinity(sample.value().points, opts);
  ASSERT_TRUE(r.ok());
  const la::Matrix& w = r.value().affinity;
  double within = 0.0, across = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      if (sample.value().labels[i] == sample.value().labels[j]) {
        within += w(i, j);
      } else {
        across += w(i, j);
      }
    }
  }
  EXPECT_GT(within, 3.0 * across);
}

TEST(LearnSubspace, FindsDistantWithinManifoldNeighbours) {
  // The headline claim of §III.A (point z in Fig. 1): objects far apart
  // in Euclidean distance but in the same subspace get nonzero affinity.
  data::UnionOfSubspacesOptions gen;
  gen.subspace_dims = {1, 1};
  gen.points_per_subspace = 30;
  gen.ambient_dim = 6;
  gen.noise_sigma = 0.0;
  gen.nonnegative = true;  // Coefficients 0.2..1.2 -> magnitude spread.
  gen.seed = 11;
  Result<data::ManifoldSample> sample = data::SampleUnionOfSubspaces(gen);
  ASSERT_TRUE(sample.ok());

  SubspaceOptions opts;
  opts.gamma = 50.0;
  Result<SubspaceResult> r =
      LearnSubspaceAffinity(sample.value().points, opts);
  ASSERT_TRUE(r.ok());
  const la::Matrix& w = r.value().affinity;

  // Pick the two most Euclidean-distant points of subspace 0; they are
  // colinear, so the affinity must still connect them (possibly via
  // normalisation the direction is identical).
  const la::Matrix& pts = sample.value().points;
  double best = -1.0;
  std::size_t a = 0, b = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      double d = 0.0;
      for (std::size_t k = 0; k < 6; ++k) {
        const double diff = pts(i, k) - pts(j, k);
        d += diff * diff;
      }
      if (d > best) {
        best = d;
        a = i;
        b = j;
      }
    }
  }
  EXPECT_GT(w(a, b), 0.0);
}

TEST(LearnSubspace, TopKSparsification) {
  Rng rng(6);
  la::Matrix x = la::Matrix::RandomUniform(20, 6, &rng);
  SubspaceOptions opts;
  opts.keep_top_k = 3;
  opts.symmetrize = false;
  Result<SubspaceResult> r = LearnSubspaceAffinity(x, opts);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < 20; ++i) {
    std::size_t nonzeros = 0;
    for (std::size_t j = 0; j < 20; ++j) {
      if (r.value().affinity(i, j) > 0.0) ++nonzeros;
    }
    EXPECT_LE(nonzeros, 3u) << "row " << i;
  }
}

TEST(LearnSubspace, GammaControlsReconstructionPressure) {
  Rng rng(7);
  la::Matrix x = la::Matrix::RandomUniform(20, 6, &rng);
  auto residual_for = [&](double gamma) {
    SubspaceOptions opts;
    opts.gamma = gamma;
    opts.symmetrize = false;
    la::Matrix w = LearnSubspaceAffinity(x, opts).value().affinity;
    la::Matrix resid = la::Multiply(w, x);
    resid.Sub(x);
    return resid.FrobeniusNormSquared();
  };
  // Larger gamma forces a more faithful reconstruction.
  EXPECT_LT(residual_for(100.0), residual_for(0.5));
}

TEST(LearnSubspace, ValidationErrors) {
  la::Matrix x(10, 3, 1.0);
  SubspaceOptions opts;
  opts.gamma = 0.0;
  EXPECT_FALSE(LearnSubspaceAffinity(x, opts).ok());
  opts = SubspaceOptions{};
  opts.spg.max_iterations = 0;
  EXPECT_FALSE(LearnSubspaceAffinity(x, opts).ok());
  opts = SubspaceOptions{};
  EXPECT_FALSE(LearnSubspaceAffinity(la::Matrix(1, 3), opts).ok());
}

TEST(LearnSubspace, AffinePenaltyPullsRowSumsToOne) {
  Rng rng(9);
  la::Matrix x = la::Matrix::RandomUniform(24, 6, &rng);
  auto mean_row_sum_error = [&](double eta) {
    SubspaceOptions opts;
    opts.affine_penalty = eta;
    opts.symmetrize = false;
    opts.spg.max_iterations = 60;
    la::Matrix w = LearnSubspaceAffinity(x, opts).value().affinity;
    double err = 0.0;
    for (double rs : w.RowSums()) err += std::fabs(rs - 1.0);
    return err / static_cast<double>(w.rows());
  };
  // Eq. 6's sum-to-one constraint is approached as the penalty grows.
  EXPECT_LT(mean_row_sum_error(100.0), mean_row_sum_error(0.0));
  EXPECT_LT(mean_row_sum_error(100.0), 0.2);
}

TEST(LearnSubspace, AffinePenaltyKeepsDescentProperty) {
  Rng rng(10);
  la::Matrix x = la::Matrix::RandomUniform(20, 5, &rng);
  SubspaceOptions opts;
  opts.affine_penalty = 25.0;
  opts.spg.max_iterations = 30;
  Result<SubspaceResult> r = LearnSubspaceAffinity(x, opts);
  ASSERT_TRUE(r.ok());
  const auto& trace = r.value().objective_trace;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] + 1e-8);
  }
}

TEST(LearnSubspace, NegativeAffinePenaltyRejected) {
  SubspaceOptions opts;
  opts.affine_penalty = -1.0;
  EXPECT_FALSE(LearnSubspaceAffinity(la::Matrix(5, 3, 1.0), opts).ok());
}

class SubspaceGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SubspaceGammaSweep, AlwaysFeasibleAndDescending) {
  Rng rng(8);
  la::Matrix x = la::Matrix::RandomUniform(18, 5, &rng);
  SubspaceOptions opts;
  opts.gamma = GetParam();
  opts.spg.max_iterations = 25;
  Result<SubspaceResult> r = LearnSubspaceAffinity(x, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().affinity.IsNonNegative());
  EXPECT_TRUE(r.value().affinity.AllFinite());
  const auto& trace = r.value().objective_trace;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, SubspaceGammaSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0,
                                           1000.0));

}  // namespace
}  // namespace core
}  // namespace rhchme
