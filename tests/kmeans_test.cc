// Unit tests for k-means and the membership helpers.

#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "cluster/assignments.h"
#include "util/rng.h"

namespace rhchme {
namespace cluster {
namespace {

/// Three well-separated Gaussian blobs in 2D.
la::Matrix Blobs(std::size_t per_blob, Rng* rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  la::Matrix pts(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      pts(b * per_blob + i, 0) = centers[b][0] + rng->Normal(0.0, 0.3);
      pts(b * per_blob + i, 1) = centers[b][1] + rng->Normal(0.0, 0.3);
    }
  }
  return pts;
}

/// Squared distance from `pts` row i to `centroids` row c.
double Dist2(const la::Matrix& pts, std::size_t i, const la::Matrix& centroids,
             std::size_t c) {
  double v = 0.0;
  for (std::size_t j = 0; j < pts.cols(); ++j) {
    const double diff = pts(i, j) - centroids(c, j);
    v += diff * diff;
  }
  return v;
}

/// Sum over points of the squared distance to the nearest centroid, while
/// asserting each point's assignment IS a nearest centroid — the
/// (assignments, centroids) consistency invariant of KMeansResult.
double RecomputeInertiaCheckingAssignments(const la::Matrix& pts,
                                           const KMeansResult& r,
                                           const std::string& context) {
  double total = 0.0;
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < r.centroids.rows(); ++c) {
      best = std::min(best, Dist2(pts, i, r.centroids, c));
    }
    const double assigned = Dist2(pts, i, r.centroids, r.assignments[i]);
    EXPECT_NEAR(assigned, best, 1e-12) << context << " point " << i;
    total += assigned;
  }
  return total;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(1);
  la::Matrix pts = Blobs(30, &rng);
  KMeansOptions opts;
  opts.k = 3;
  Result<KMeansResult> r = KMeans(pts, opts, &rng);
  ASSERT_TRUE(r.ok());
  // Each blob maps to exactly one cluster id and the ids are distinct.
  std::set<std::size_t> ids;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t id = r.value().assignments[b * 30];
    ids.insert(id);
    for (std::size_t i = 0; i < 30; ++i) {
      EXPECT_EQ(r.value().assignments[b * 30 + i], id);
    }
  }
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng rng1(42), rng2(42);
  la::Matrix pts = Blobs(20, &rng1);
  Rng data_rng(7);
  la::Matrix pts2 = Blobs(20, &rng2);
  KMeansOptions opts;
  opts.k = 3;
  Rng a(9), b(9);
  Result<KMeansResult> r1 = KMeans(pts, opts, &a);
  Result<KMeansResult> r2 = KMeans(pts2, opts, &b);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().assignments, r2.value().assignments);
  EXPECT_DOUBLE_EQ(r1.value().inertia, r2.value().inertia);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(3);
  la::Matrix pts = la::Matrix::RandomNormal(100, 3, &rng);
  double prev = 1e300;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    KMeansOptions opts;
    opts.k = k;
    opts.restarts = 4;
    Rng local(11);
    Result<KMeansResult> r = KMeans(pts, opts, &local);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.value().inertia, prev + 1e-9) << "k=" << k;
    prev = r.value().inertia;
  }
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  la::Matrix pts = la::Matrix::FromRows({{0, 0}, {2, 0}, {0, 2}, {2, 2}});
  KMeansOptions opts;
  opts.k = 1;
  Rng rng(5);
  Result<KMeansResult> r = KMeans(pts, opts, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().centroids(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(r.value().centroids(0, 1), 1.0, 1e-12);
}

TEST(KMeans, KEqualsNPutsEachPointAlone) {
  la::Matrix pts = la::Matrix::FromRows({{0.0}, {5.0}, {10.0}});
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 5;
  Rng rng(6);
  Result<KMeansResult> r = KMeans(pts, opts, &rng);
  ASSERT_TRUE(r.ok());
  std::set<std::size_t> ids(r.value().assignments.begin(),
                            r.value().assignments.end());
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_NEAR(r.value().inertia, 0.0, 1e-12);
}

TEST(KMeans, ValidationErrors) {
  Rng rng(7);
  la::Matrix pts = la::Matrix::RandomNormal(5, 2, &rng);
  KMeansOptions opts;
  opts.k = 0;
  EXPECT_FALSE(KMeans(pts, opts, &rng).ok());
  opts.k = 10;  // More clusters than points.
  EXPECT_FALSE(KMeans(pts, opts, &rng).ok());
  opts.k = 2;
  opts.max_iterations = 0;
  EXPECT_FALSE(KMeans(pts, opts, &rng).ok());
  opts.max_iterations = 10;
  opts.restarts = 0;
  EXPECT_FALSE(KMeans(pts, opts, &rng).ok());
}

TEST(KMeans, ReseedOscillationTerminatesAndStaysConsistent) {
  // Four duplicate points and one outlier with k = 3: after seeding, the
  // third centroid always duplicates an existing location, its cluster
  // stays empty, and every update step reseeds it — the reseed
  // oscillation. The solver must still terminate promptly (the fit is
  // exact, so the empty-cluster escape applies) instead of spinning to
  // the iteration cap, and the returned assignments must be consistent
  // with the returned centroids — convergence is never declared on a
  // reseed that the assignment step has not re-evaluated.
  la::Matrix pts = la::Matrix::FromRows({{1.0}, {1.0}, {1.0}, {1.0}, {5.0}});
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    Result<KMeansResult> r = KMeans(pts, opts, &rng);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    EXPECT_NEAR(r.value().inertia, 0.0, 1e-12) << "seed " << seed;
    EXPECT_LT(r.value().iterations, opts.max_iterations) << "seed " << seed;
    RecomputeInertiaCheckingAssignments(pts, r.value(),
                                        "seed " + std::to_string(seed));
  }
}

TEST(KMeans, LooseToleranceDoesNotStopOnAnUnevaluatedReseed) {
  // With a tolerance far larger than any real improvement, the solver
  // would previously break on the first small delta even when that very
  // update step had just reseeded an empty cluster. The guard keeps
  // iterating until an update with no reseed (or an exact fit), so the
  // final inertia must never exceed a freshly recomputed assignment cost.
  Rng data_rng(17);
  la::Matrix pts = la::Matrix::RandomNormal(40, 2, &data_rng);
  KMeansOptions opts;
  opts.k = 8;
  opts.restarts = 1;
  opts.tolerance = 100.0;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    Result<KMeansResult> r = KMeans(pts, opts, &rng);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    const double recomputed = RecomputeInertiaCheckingAssignments(
        pts, r.value(), "seed " + std::to_string(seed));
    // The returned inertia was measured against pre-update centroids;
    // the update (means, no unevaluated reseed) can only improve it.
    EXPECT_LE(recomputed, r.value().inertia + 1e-9) << "seed " << seed;
  }
}

TEST(KMeans, IterationCapExitReturnsConsistentBundle) {
  // tolerance = 0 on noisy data forces the iteration-cap exit. The update
  // step must not run after the final assignment, so the returned
  // assignments, centroids and inertia describe the same state: each
  // point sits on a nearest returned centroid and the inertia is exactly
  // the recomputed assignment cost.
  Rng data_rng(19);
  la::Matrix pts = la::Matrix::RandomNormal(30, 2, &data_rng);
  KMeansOptions opts;
  opts.k = 6;
  opts.restarts = 1;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Result<KMeansResult> r = KMeans(pts, opts, &rng);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    const double total = RecomputeInertiaCheckingAssignments(
        pts, r.value(), "seed " + std::to_string(seed));
    EXPECT_NEAR(total, r.value().inertia, 1e-9) << "seed " << seed;
  }
}

TEST(KMeans, DuplicatePointsDoNotCrash) {
  la::Matrix pts(10, 2, 1.0);  // All identical.
  KMeansOptions opts;
  opts.k = 3;
  Rng rng(8);
  Result<KMeansResult> r = KMeans(pts, opts, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().inertia, 0.0, 1e-12);
}

// ---- Assignment helpers ----------------------------------------------------

TEST(Assignments, HardAssignmentsFullMatrix) {
  la::Matrix g = la::Matrix::FromRows({{0.1, 0.9}, {0.8, 0.2}});
  EXPECT_EQ(HardAssignments(g), (std::vector<std::size_t>{1, 0}));
}

TEST(Assignments, HardAssignmentsSubrange) {
  la::Matrix g = la::Matrix::FromRows(
      {{0.9, 0.1, 0.0, 0.0}, {0.1, 0.9, 0.0, 0.0}, {0.0, 0.0, 0.3, 0.7}});
  // Columns [2,4) of row [2,3): labels relative to column 2.
  EXPECT_EQ(HardAssignments(g, 2, 3, 2, 4), (std::vector<std::size_t>{1}));
}

TEST(Assignments, MembershipFromLabelsProperties) {
  la::Matrix g = MembershipFromLabels({0, 2, 1}, 3, 0.3);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GT(g(i, j), 0.0);  // Never exactly zero (MU requirement).
      sum += g(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Arg-max recovers the label.
  EXPECT_EQ(HardAssignments(g), (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Assignments, MembershipSingleCluster) {
  la::Matrix g = MembershipFromLabels({0, 0}, 1, 0.0);
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
}

TEST(Assignments, RandomMembershipIsRowStochastic) {
  Rng rng(9);
  la::Matrix g = RandomMembership(20, 4, &rng);
  for (std::size_t i = 0; i < 20; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_GT(g(i, j), 0.0);
      sum += g(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace cluster
}  // namespace rhchme
