// Unit tests for the CSR SparseMatrix.

#include "la/sparse.h"

#include <gtest/gtest.h>

#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

TEST(Sparse, EmptyMatrix) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.Density(), 0.0);
}

TEST(Sparse, FromTripletsBasic) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0}, {2, 3, -1.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.At(2, 3), -1.0);
  EXPECT_EQ(m.At(1, 0), 5.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
}

TEST(Sparse, DuplicatesAreSummed) {
  SparseMatrix m =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.At(0, 0), 3.5);
}

TEST(Sparse, ZerosArePruned) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {1, 1, 0.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Sparse, DenseRoundTrip) {
  Rng rng(1);
  Matrix dense = Matrix::RandomUniform(6, 9, &rng);
  // Sparsify a bit.
  dense.Apply([](double v) { return v < 0.6 ? 0.0 : v; });
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_LT(MaxAbsDiff(sparse.ToDense(), dense), 1e-15);
}

TEST(Sparse, FromDenseWithPruneTolerance) {
  Matrix dense = Matrix::FromRows({{0.5, 0.01}, {0.0, 2.0}});
  SparseMatrix sparse = SparseMatrix::FromDense(dense, 0.1);
  EXPECT_EQ(sparse.nnz(), 2u);
  EXPECT_EQ(sparse.At(0, 1), 0.0);
}

TEST(Sparse, Density) {
  SparseMatrix m = SparseMatrix::FromTriplets(4, 5, {{0, 0, 1.0}, {3, 4, 1.0}});
  EXPECT_DOUBLE_EQ(m.Density(), 2.0 / 20.0);
}

TEST(Sparse, TransposeMatchesDense) {
  Rng rng(2);
  Matrix dense = Matrix::RandomUniform(5, 8, &rng);
  dense.Apply([](double v) { return v < 0.5 ? 0.0 : v; });
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_LT(MaxAbsDiff(sparse.Transposed().ToDense(), dense.Transposed()),
            1e-15);
}

TEST(Sparse, MultiplyVecMatchesDense) {
  Rng rng(3);
  Matrix dense = Matrix::RandomUniform(7, 4, &rng);
  dense.Apply([](double v) { return v < 0.4 ? 0.0 : v; });
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> expected = MultiplyVec(dense, x);
  std::vector<double> got = sparse.MultiplyVec(x);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-12);
  }
}

TEST(Sparse, MultiplyDenseMatchesDense) {
  Rng rng(4);
  Matrix a = Matrix::RandomUniform(6, 5, &rng);
  a.Apply([](double v) { return v < 0.5 ? 0.0 : v; });
  Matrix b = Matrix::RandomNormal(5, 3, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyDense(b), Multiply(a, b)), 1e-12);
}

TEST(Sparse, MultiplyTransposedDenseMatchesDense) {
  Rng rng(5);
  Matrix a = Matrix::RandomUniform(6, 5, &rng);
  a.Apply([](double v) { return v < 0.5 ? 0.0 : v; });
  Matrix b = Matrix::RandomNormal(6, 2, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  Matrix got;
  sparse.MultiplyTransposedDenseInto(b, &got);
  EXPECT_LT(MaxAbsDiff(got, Multiply(a.Transposed(), b)), 1e-12);
}

TEST(Sparse, RowSumsMatchDense) {
  Rng rng(6);
  Matrix dense = Matrix::RandomUniform(5, 5, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  std::vector<double> expected = dense.RowSums();
  std::vector<double> got = sparse.RowSums();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(got[i], expected[i], 1e-12);
}

TEST(Sparse, NormAndSum) {
  SparseMatrix m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 3.0}, {1, 1, 4.0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
}

TEST(Sparse, SymmetryCheck) {
  SparseMatrix sym = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {1, 0, 2.0}, {2, 2, 1.0}});
  EXPECT_TRUE(sym.IsSymmetric());
  SparseMatrix asym = SparseMatrix::FromTriplets(3, 3, {{0, 1, 2.0}});
  EXPECT_FALSE(asym.IsSymmetric());
  SparseMatrix rect = SparseMatrix::FromTriplets(2, 3, {});
  EXPECT_FALSE(rect.IsSymmetric());
}

TEST(Sparse, UnsortedTripletsAreOrdered) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{2, 2, 1.0}, {0, 2, 2.0}, {0, 0, 3.0}, {1, 1, 4.0}});
  // CSR row offsets must be monotone and consistent.
  const auto& offsets = m.row_offsets();
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[3], 4u);
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    EXPECT_LE(offsets[i], offsets[i + 1]);
  }
  EXPECT_EQ(m.At(0, 0), 3.0);
  EXPECT_EQ(m.At(0, 2), 2.0);
}

}  // namespace
}  // namespace la
}  // namespace rhchme
