// Unit tests for the CSR SparseMatrix and its CSC mirror: build/round-trip
// correctness, transposed products on both the gather (CSC) and scatter
// (per-chunk accumulator) paths, mutation-triggered mirror invalidation,
// and bit-stability of the products across thread counts.

#include "la/sparse.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/gemm.h"
#include "scoped_num_threads.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

/// Random rectangular matrix sparsified to roughly `density`.
Matrix RandomSparseDense(std::size_t r, std::size_t c, double density,
                         uint64_t seed) {
  Rng rng(seed);
  Matrix m = Matrix::RandomUniform(r, c, &rng);
  m.Apply([&](double v) { return v < 1.0 - density ? 0.0 : v; });
  return m;
}

TEST(Sparse, EmptyMatrix) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.Density(), 0.0);
}

TEST(Sparse, FromTripletsBasic) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0}, {2, 3, -1.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.At(2, 3), -1.0);
  EXPECT_EQ(m.At(1, 0), 5.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
}

TEST(Sparse, DuplicatesAreSummed) {
  SparseMatrix m =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.At(0, 0), 3.5);
}

TEST(Sparse, ZerosArePruned) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {1, 1, 0.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Sparse, DenseRoundTrip) {
  Rng rng(1);
  Matrix dense = Matrix::RandomUniform(6, 9, &rng);
  // Sparsify a bit.
  dense.Apply([](double v) { return v < 0.6 ? 0.0 : v; });
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_LT(MaxAbsDiff(sparse.ToDense(), dense), 1e-15);
}

TEST(Sparse, FromDenseWithPruneTolerance) {
  Matrix dense = Matrix::FromRows({{0.5, 0.01}, {0.0, 2.0}});
  SparseMatrix sparse = SparseMatrix::FromDense(dense, 0.1);
  EXPECT_EQ(sparse.nnz(), 2u);
  EXPECT_EQ(sparse.At(0, 1), 0.0);
}

TEST(Sparse, Density) {
  SparseMatrix m = SparseMatrix::FromTriplets(4, 5, {{0, 0, 1.0}, {3, 4, 1.0}});
  EXPECT_DOUBLE_EQ(m.Density(), 2.0 / 20.0);
}

TEST(Sparse, TransposeMatchesDense) {
  Rng rng(2);
  Matrix dense = Matrix::RandomUniform(5, 8, &rng);
  dense.Apply([](double v) { return v < 0.5 ? 0.0 : v; });
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_LT(MaxAbsDiff(sparse.Transposed().ToDense(), dense.Transposed()),
            1e-15);
}

TEST(Sparse, MultiplyVecMatchesDense) {
  Rng rng(3);
  Matrix dense = Matrix::RandomUniform(7, 4, &rng);
  dense.Apply([](double v) { return v < 0.4 ? 0.0 : v; });
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> expected = MultiplyVec(dense, x);
  std::vector<double> got = sparse.MultiplyVec(x);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-12);
  }
}

TEST(Sparse, MultiplyDenseMatchesDense) {
  Rng rng(4);
  Matrix a = Matrix::RandomUniform(6, 5, &rng);
  a.Apply([](double v) { return v < 0.5 ? 0.0 : v; });
  Matrix b = Matrix::RandomNormal(5, 3, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyDense(b), Multiply(a, b)), 1e-12);
}

TEST(Sparse, MultiplyTransposedDenseMatchesDense) {
  Rng rng(5);
  Matrix a = Matrix::RandomUniform(6, 5, &rng);
  a.Apply([](double v) { return v < 0.5 ? 0.0 : v; });
  Matrix b = Matrix::RandomNormal(6, 2, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  Matrix got;
  sparse.MultiplyTransposedDenseInto(b, &got);
  EXPECT_LT(MaxAbsDiff(got, Multiply(a.Transposed(), b)), 1e-12);
}

TEST(Sparse, RowNormsSquaredMatchDense) {
  Rng rng(31);
  Matrix dense = RandomSparseDense(7, 9, 0.4, 31);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  std::vector<double> got = sparse.RowNormsSquared();
  ASSERT_EQ(got.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < 9; ++j) expected += dense(i, j) * dense(i, j);
    EXPECT_NEAR(got[i], expected, 1e-12) << "row " << i;
  }
}

TEST(Sparse, RowNormsSquaredEmptyAndZeroRows) {
  EXPECT_TRUE(SparseMatrix().RowNormsSquared().empty());
  SparseMatrix m = SparseMatrix::FromTriplets(3, 3, {{0, 1, 2.0}});
  std::vector<double> norms = m.RowNormsSquared();
  EXPECT_EQ(norms[0], 4.0);
  EXPECT_EQ(norms[1], 0.0);
  EXPECT_EQ(norms[2], 0.0);
}

TEST(Sparse, TransposedScaledDenseMatchesDenseOnBothPaths) {
  // Aᵀ·diag(d)·B against the dense reference, on the scatter fallback and
  // on the CSC gather path.
  Rng rng(32);
  Matrix a = RandomSparseDense(8, 6, 0.5, 32);
  Matrix b = Matrix::RandomNormal(8, 3, &rng);
  std::vector<double> d(8);
  for (double& v : d) v = rng.Uniform(-1.0, 2.0);
  Matrix expected(6, 3);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        expected(r, c) += a(i, r) * d[i] * b(i, c);
      }
    }
  }
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  Matrix got;
  sparse.MultiplyTransposedScaledDenseInto(d, b, &got);  // Scatter path.
  EXPECT_LT(MaxAbsDiff(got, expected), 1e-12);
  sparse.BuildCscMirror();
  Matrix got_csc;
  sparse.MultiplyTransposedScaledDenseInto(d, b, &got_csc);  // Gather path.
  EXPECT_LT(MaxAbsDiff(got_csc, expected), 1e-12);
}

TEST(Sparse, TransposedScaledDenseBitStableAcrossThreadCounts) {
  Rng rng(33);
  Matrix a = RandomSparseDense(64, 40, 0.2, 33);
  Matrix b = Matrix::RandomNormal(64, 5, &rng);
  std::vector<double> d(64);
  for (double& v : d) v = rng.Uniform(0.0, 1.0);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  auto run = [&](int threads, bool mirror) {
    ScopedNumThreads scoped(threads);
    SparseMatrix m = sparse;
    if (mirror) m.BuildCscMirror();
    Matrix out;
    m.MultiplyTransposedScaledDenseInto(d, b, &out);
    return out;
  };
  for (bool mirror : {false, true}) {
    Matrix serial = run(1, mirror);
    Matrix threaded = run(4, mirror);
    EXPECT_EQ(MaxAbsDiff(serial, threaded), 0.0) << "mirror=" << mirror;
  }
}

TEST(Sparse, RowSumsMatchDense) {
  Rng rng(6);
  Matrix dense = Matrix::RandomUniform(5, 5, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  std::vector<double> expected = dense.RowSums();
  std::vector<double> got = sparse.RowSums();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(got[i], expected[i], 1e-12);
}

TEST(Sparse, NormAndSum) {
  SparseMatrix m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 3.0}, {1, 1, 4.0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
}

TEST(Sparse, SymmetryCheck) {
  SparseMatrix sym = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {1, 0, 2.0}, {2, 2, 1.0}});
  EXPECT_TRUE(sym.IsSymmetric());
  SparseMatrix asym = SparseMatrix::FromTriplets(3, 3, {{0, 1, 2.0}});
  EXPECT_FALSE(asym.IsSymmetric());
  SparseMatrix rect = SparseMatrix::FromTriplets(2, 3, {});
  EXPECT_FALSE(rect.IsSymmetric());
}

TEST(Sparse, UnsortedTripletsAreOrdered) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{2, 2, 1.0}, {0, 2, 2.0}, {0, 0, 3.0}, {1, 1, 4.0}});
  // CSR row offsets must be monotone and consistent.
  const auto& offsets = m.row_offsets();
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[3], 4u);
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    EXPECT_LE(offsets[i], offsets[i + 1]);
  }
  EXPECT_EQ(m.At(0, 0), 3.0);
  EXPECT_EQ(m.At(0, 2), 2.0);
}

TEST(SparseCsc, MirrorIsLazyAndCached) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0}, {2, 3, -1.0}, {1, 0, 5.0}});
  EXPECT_FALSE(m.HasCscMirror());
  const CscMirror& csc = m.BuildCscMirror();
  EXPECT_TRUE(m.HasCscMirror());
  EXPECT_EQ(&csc, &m.BuildCscMirror());  // Second call reuses the cache.
}

TEST(SparseCsc, RoundTripMatchesCsr) {
  Matrix dense = RandomSparseDense(7, 5, 0.4, 31);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  const CscMirror& csc = sparse.BuildCscMirror();
  ASSERT_EQ(csc.col_ptr.size(), 6u);
  ASSERT_EQ(csc.row_idx.size(), sparse.nnz());
  EXPECT_EQ(csc.col_ptr.front(), 0u);
  EXPECT_EQ(csc.col_ptr.back(), sparse.nnz());
  // Rebuild the dense matrix column by column; rows must ascend within
  // each column (the order the deterministic gather loops rely on).
  Matrix rebuilt(7, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    for (std::size_t k = csc.col_ptr[c]; k < csc.col_ptr[c + 1]; ++k) {
      if (k > csc.col_ptr[c]) {
        EXPECT_LT(csc.row_idx[k - 1], csc.row_idx[k]);
      }
      rebuilt(csc.row_idx[k], c) = csc.values[k];
    }
  }
  EXPECT_EQ(MaxAbsDiff(rebuilt, dense), 0.0);
}

TEST(SparseCsc, EmptyAndRaggedShapes) {
  SparseMatrix empty;
  EXPECT_EQ(empty.BuildCscMirror().col_ptr.size(), 1u);

  // Ragged occupancy: empty rows, empty columns, a full row.
  SparseMatrix ragged = SparseMatrix::FromTriplets(
      4, 3, {{1, 0, 1.0}, {1, 1, 2.0}, {1, 2, 3.0}, {3, 1, 4.0}});
  const CscMirror& csc = ragged.BuildCscMirror();
  ASSERT_EQ(csc.col_ptr.size(), 4u);
  EXPECT_EQ(csc.col_ptr[1] - csc.col_ptr[0], 1u);  // Column 0: one entry.
  EXPECT_EQ(csc.col_ptr[2] - csc.col_ptr[1], 2u);  // Column 1: two.
  Matrix b = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0},
                               {7.0, 8.0}});
  Matrix got;
  ragged.MultiplyTransposedDenseInto(b, &got);
  EXPECT_LT(MaxAbsDiff(got, Multiply(ragged.ToDense().Transposed(), b)),
            1e-12);

  // Zero-row / zero-column shapes keep the product well-defined.
  SparseMatrix no_rows = SparseMatrix::FromTriplets(0, 3, {});
  Matrix empty_b(0, 2);
  no_rows.MultiplyTransposedDenseInto(empty_b, &got);
  EXPECT_EQ(got.rows(), 3u);
  EXPECT_EQ(got.MaxAbs(), 0.0);
}

TEST(SparseCsc, TransposedProductGatherMatchesDense) {
  Matrix a = RandomSparseDense(9, 6, 0.5, 32);
  Matrix b = RandomSparseDense(9, 4, 1.0, 33);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  sparse.BuildCscMirror();
  Matrix got;
  sparse.MultiplyTransposedDenseInto(b, &got);
  EXPECT_LT(MaxAbsDiff(got, Multiply(a.Transposed(), b)), 1e-12);
}

TEST(SparseCsc, TransposedProductBitStableAcrossThreadCounts) {
  // Both the gather path (mirror built) and the scatter fallback must be
  // bit-identical for any pool size — the chunk layouts derive from the
  // matrix shape only.
  Matrix a = RandomSparseDense(153, 47, 0.2, 34);
  Matrix b = RandomSparseDense(153, 9, 1.0, 35);
  for (bool with_mirror : {false, true}) {
    SparseMatrix sparse = SparseMatrix::FromDense(a);
    if (with_mirror) sparse.BuildCscMirror();
    Matrix serial, threaded;
    {
      ScopedNumThreads threads(1);
      sparse.MultiplyTransposedDenseInto(b, &serial);
    }
    {
      ScopedNumThreads threads(8);
      sparse.MultiplyTransposedDenseInto(b, &threaded);
    }
    EXPECT_EQ(MaxAbsDiff(serial, threaded), 0.0)
        << "mirror=" << with_mirror;
  }
}

TEST(SparseCsc, MultiplyTVecMatchesDenseOnBothPaths) {
  Matrix a = RandomSparseDense(11, 7, 0.4, 36);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  Rng rng(37);
  std::vector<double> x(11);
  for (double& v : x) v = rng.Uniform(-2.0, 2.0);
  std::vector<double> expected = MultiplyVec(a.Transposed(), x);

  std::vector<double> scatter = sparse.MultiplyTVec(x);  // No mirror yet.
  sparse.BuildCscMirror();
  std::vector<double> gather = sparse.MultiplyTVec(x);
  ASSERT_EQ(scatter.size(), 7u);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(scatter[i], expected[i], 1e-12);
    EXPECT_NEAR(gather[i], expected[i], 1e-12);
  }
}

TEST(SparseCsc, TransposedUsesAndCarriesMirror) {
  Matrix a = RandomSparseDense(8, 5, 0.5, 38);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  sparse.BuildCscMirror();
  SparseMatrix t = sparse.Transposed();
  // The transpose ships with the original CSR as its ready-made mirror.
  EXPECT_TRUE(t.HasCscMirror());
  EXPECT_EQ(MaxAbsDiff(t.ToDense(), a.Transposed()), 0.0);
  EXPECT_EQ(MaxAbsDiff(t.Transposed().ToDense(), a), 0.0);
}

TEST(SparseCsc, ColSumsMatchDenseOnBothPaths) {
  Matrix a = RandomSparseDense(10, 6, 0.4, 39);
  SparseMatrix sparse = SparseMatrix::FromDense(a);
  std::vector<double> expected = a.Transposed().RowSums();
  std::vector<double> scatter = sparse.ColSums();
  sparse.BuildCscMirror();
  std::vector<double> gather = sparse.ColSums();
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(scatter[c], expected[c], 1e-12);
    // Identical summation order on both paths — exact agreement.
    EXPECT_EQ(gather[c], scatter[c]);
  }
}

TEST(SparseCsc, ScaleInvalidatesMirror) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  m.BuildCscMirror();
  m.Scale(2.0);
  EXPECT_FALSE(m.HasCscMirror());
  EXPECT_EQ(m.At(0, 1), 4.0);
  // The rebuilt mirror sees the new values.
  Matrix b = Matrix::FromRows({{1.0}, {1.0}});
  Matrix got;
  m.BuildCscMirror();
  m.MultiplyTransposedDenseInto(b, &got);
  EXPECT_DOUBLE_EQ(got(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(got(1, 0), 10.0);
}

TEST(SparseCsc, PruneSmallInvalidatesMirrorAndDropsEntries) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 1e-14}, {1, 1, -2.0}, {2, 0, 1e-15}});
  m.BuildCscMirror();
  EXPECT_EQ(m.PruneSmall(1e-12), 2u);
  EXPECT_FALSE(m.HasCscMirror());
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.At(0, 2), 0.0);
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(1, 1), -2.0);
  // Row offsets stay consistent after compaction.
  EXPECT_EQ(m.row_offsets().back(), 2u);
  EXPECT_EQ(m.BuildCscMirror().col_ptr.back(), 2u);
}

// ---- ±-split and Sandwich (memory-lean solver algebra) ---------------------

TEST(Sparse, PositiveAndNegativePartsMatchDense) {
  Rng rng(41);
  Matrix d = Matrix::RandomNormal(7, 9, &rng);
  d.Apply([](double v) { return std::fabs(v) < 0.8 ? 0.0 : v; });
  SparseMatrix m = SparseMatrix::FromDense(d);
  SparseMatrix pos = PositivePart(m);
  SparseMatrix neg = NegativePart(m);
  EXPECT_EQ(MaxAbsDiff(pos.ToDense(), PositivePart(d)), 0.0);
  EXPECT_EQ(MaxAbsDiff(neg.ToDense(), NegativePart(d)), 0.0);
  // The split partitions the pattern: pos and neg together hold exactly
  // m's nonzeros, and both are entrywise nonnegative.
  EXPECT_EQ(pos.nnz() + neg.nnz(), m.nnz());
  for (double v : pos.values()) EXPECT_GT(v, 0.0);
  for (double v : neg.values()) EXPECT_GT(v, 0.0);
}

TEST(Sparse, PartsOfEmptyMatrixAreEmpty) {
  SparseMatrix m;
  EXPECT_EQ(PositivePart(m).nnz(), 0u);
  EXPECT_EQ(NegativePart(m).nnz(), 0u);
}

TEST(Sparse, SandwichMatchesDenseKernel) {
  Rng rng(42);
  const std::size_t n = 24, c = 5;
  Matrix l_dense = RandomSparseDense(n, n, 0.3, 43);
  SparseMatrix l = SparseMatrix::FromDense(l_dense);
  Matrix g = Matrix::RandomUniform(n, c, &rng);
  EXPECT_NEAR(Sandwich(g, l), Sandwich(g, l_dense), 1e-10);
}

TEST(Sparse, SandwichEmptyIsZero) {
  EXPECT_EQ(Sandwich(Matrix(), SparseMatrix()), 0.0);
  SparseMatrix l = SparseMatrix::FromTriplets(4, 4, {});
  EXPECT_EQ(Sandwich(Matrix(4, 3), l), 0.0);
}

TEST(Sparse, SandwichIsBitStableAcrossThreadCounts) {
  const std::size_t n = 400, c = 12;
  Matrix l_dense = RandomSparseDense(n, n, 0.05, 44);
  SparseMatrix l = SparseMatrix::FromDense(l_dense);
  Rng rng(45);
  Matrix g = Matrix::RandomUniform(n, c, &rng);
  auto run = [&](int threads) {
    ScopedNumThreads scoped(threads);
    return Sandwich(g, l);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(SparseCsc, CopySharesMirrorAndMutationDetaches) {
  Matrix a = RandomSparseDense(6, 6, 0.5, 40);
  SparseMatrix original = SparseMatrix::FromDense(a);
  original.BuildCscMirror();
  SparseMatrix copy = original;
  EXPECT_TRUE(copy.HasCscMirror());
  // Mutating the original must not disturb the copy's mirror or values.
  original.Scale(0.0);
  EXPECT_TRUE(copy.HasCscMirror());
  EXPECT_EQ(MaxAbsDiff(copy.ToDense(), a), 0.0);
}

}  // namespace
}  // namespace la
}  // namespace rhchme
