// Unit and property tests for the Jacobi symmetric eigensolver.

#include "la/eigen_sym.h"

#include <gtest/gtest.h>

#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

TEST(EigenSym, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal({3.0, -1.0, 2.0});
  Result<EigenSymResult> r = EigenSym(a);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().eigenvalues.size(), 3u);
  EXPECT_NEAR(r.value().eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r.value().eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r.value().eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenSym, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  Result<EigenSymResult> r = EigenSym(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.value().eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenSym, RejectsNonSquare) {
  EXPECT_FALSE(EigenSym(Matrix(2, 3)).ok());
}

TEST(EigenSym, EmptyAndSingleton) {
  Result<EigenSymResult> empty = EigenSym(Matrix(0, 0));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().eigenvalues.empty());
  Result<EigenSymResult> one = EigenSym(Matrix::Diagonal({5.0}));
  ASSERT_TRUE(one.ok());
  EXPECT_NEAR(one.value().eigenvalues[0], 5.0, 1e-12);
}

class EigenSymPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenSymPropertyTest, ReconstructionAndOrthonormality) {
  const int n = GetParam();
  Rng rng(1000 + n);
  Matrix b = Matrix::RandomNormal(n, n, &rng);
  Matrix a = Add(b, b.Transposed());  // Symmetric.
  Result<EigenSymResult> r = EigenSym(a);
  ASSERT_TRUE(r.ok());
  const Matrix& v = r.value().eigenvectors;

  // VᵀV = I.
  EXPECT_LT(MaxAbsDiff(Gram(v), Matrix::Identity(n)), 1e-9);

  // V·diag(w)·Vᵀ = A.
  Matrix vl = v;
  std::vector<double> w = r.value().eigenvalues;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) vl(i, j) *= w[j];
  }
  EXPECT_LT(MaxAbsDiff(MultiplyNT(vl, v), a), 1e-8);

  // Eigenvalues ascending.
  for (int i = 1; i < n; ++i) EXPECT_LE(w[i - 1], w[i] + 1e-12);

  // Trace preserved.
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, a.Trace(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymPropertyTest,
                         ::testing::Values(2, 3, 5, 10, 25, 50));

TEST(EigenSym, EigenvectorSatisfiesDefinition) {
  Rng rng(7);
  Matrix b = Matrix::RandomNormal(8, 8, &rng);
  Matrix a = Add(b, b.Transposed());
  Result<EigenSymResult> r = EigenSym(a);
  ASSERT_TRUE(r.ok());
  // Check A·v_j = w_j·v_j for the extreme eigenpairs.
  for (std::size_t j : {std::size_t{0}, std::size_t{7}}) {
    std::vector<double> v = r.value().eigenvectors.Col(j);
    std::vector<double> av = MultiplyVec(a, v);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(av[i], r.value().eigenvalues[j] * v[i], 1e-8);
    }
  }
}

TEST(EigenSym, SmallestSliceMatchesFull) {
  Rng rng(8);
  Matrix b = Matrix::RandomNormal(10, 10, &rng);
  Matrix a = Add(b, b.Transposed());
  Result<EigenSymResult> full = EigenSym(a);
  Result<EigenSymResult> small = EigenSymSmallest(a, 3);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(small.ok());
  ASSERT_EQ(small.value().eigenvalues.size(), 3u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(small.value().eigenvalues[j], full.value().eigenvalues[j],
                1e-12);
  }
  EXPECT_EQ(small.value().eigenvectors.cols(), 3u);
}

TEST(EigenSym, SmallestRejectsOversizedK) {
  EXPECT_FALSE(EigenSymSmallest(Matrix::Identity(3), 4).ok());
}

TEST(EigenSym, NonSymmetricInputIsSymmetrised) {
  // (A + Aᵀ)/2 of [[0, 2],[0, 0]] is [[0,1],[1,0]] with eigenvalues ±1.
  Matrix a = Matrix::FromRows({{0, 2}, {0, 0}});
  Result<EigenSymResult> r = EigenSym(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r.value().eigenvalues[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace la
}  // namespace rhchme
