// Cross-module integration tests: full pipelines on realistic (small)
// workloads, including the paper's qualitative claims.

#include <gtest/gtest.h>

#include <cmath>

#include "rhchme/rhchme.h"

namespace rhchme {
namespace {

TEST(Integration, RhchmeBeatsSrcOnNoisyCorpus) {
  // §IV.D's central qualitative claim: with noisy, overlapping classes,
  // using intra-type relationships (RHCHME) beats pure inter-type
  // factorisation (SRC).
  data::SyntheticCorpusOptions o;
  o.docs_per_class = {25, 25, 25, 25};
  o.n_terms = 140;
  o.n_concepts = 90;
  o.topics_per_class = 2;
  o.core_terms_per_topic = 6;
  o.doc_length_mean = 60.0;
  o.class_overlap = 0.5;
  o.background_noise = 0.25;
  o.corrupted_doc_fraction = 0.05;
  o.seed = 11;
  data::MultiTypeRelationalData d = data::GenerateSyntheticCorpus(o).value();

  baselines::SrcOptions src_opts;
  src_opts.max_iterations = 50;
  Result<fact::HoccResult> src = baselines::RunSrc(d, src_opts);
  ASSERT_TRUE(src.ok());
  Result<eval::Scores> src_scores =
      eval::ScoreLabels(d.Type(0).labels, src.value().labels[0]);
  ASSERT_TRUE(src_scores.ok());

  core::RhchmeOptions ropts;
  ropts.max_iterations = 50;
  ropts.lambda = 250.0;
  core::Rhchme solver(ropts);
  Result<core::RhchmeResult> rh = solver.Fit(d);
  ASSERT_TRUE(rh.ok());
  Result<eval::Scores> rh_scores =
      eval::ScoreLabels(d.Type(0).labels, rh.value().hocc.labels[0]);
  ASSERT_TRUE(rh_scores.ok());

  EXPECT_GE(rh_scores.value().nmi, src_scores.value().nmi);
}

TEST(Integration, FourTypeWebScenario) {
  // The paper's introduction motivates K > 3 (web pages related to
  // terms, queries and users); the solver must handle K = 4 unchanged.
  data::BlockWorldOptions o;
  o.objects_per_type = {30, 40, 20, 25};  // pages, terms, queries, users
  o.n_classes = 3;
  o.between_strength = 0.1;
  o.noise = 0.2;
  o.seed = 13;
  data::MultiTypeRelationalData d = data::GenerateBlockWorld(o).value();

  core::RhchmeOptions opts;
  opts.max_iterations = 30;
  opts.lambda = 1.0;
  opts.seed = 4;  // Multiplicative updates are init-sensitive; this seed's
                  // k-means start avoids a known shallow local minimum.
  opts.ensemble.subspace.spg.max_iterations = 20;
  core::Rhchme solver(opts);
  Result<core::RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every one of the four types is clustered well.
  for (std::size_t k = 0; k < 4; ++k) {
    Result<double> f =
        eval::FScore(d.Type(k).labels, r.value().hocc.labels[k]);
    ASSERT_TRUE(f.ok());
    EXPECT_GT(f.value(), 0.8) << "type " << k << " (" << d.Type(k).name
                              << ")";
  }
}

TEST(Integration, SubspaceMemberSeparatesIntersectingCircles) {
  // Fig. 1: points near the intersection of two circles share Euclidean
  // neighbours, but the subspace affinity (learned on the 2D coordinates
  // augmented with a lifted feature) still concentrates within circles
  // better than chance. Here we check the *relative* claim the paper
  // makes: the heterogeneous ensemble separates the two manifolds better
  // than the pNN member alone at the intersection.
  data::TwoCirclesOptions c;
  c.points_per_circle = 60;
  c.center_distance = 1.2;
  c.noise_sigma = 0.01;
  c.seed = 17;
  data::ManifoldSample sample = data::SampleTwoCircles(c);

  // Lift to |x|, x², y², xy features where the two circles become
  // linearly separable subspace-like structures.
  la::Matrix lifted(sample.points.rows(), 5);
  for (std::size_t i = 0; i < sample.points.rows(); ++i) {
    const double x = sample.points(i, 0), y = sample.points(i, 1);
    lifted(i, 0) = x;
    lifted(i, 1) = y;
    lifted(i, 2) = x * x;
    lifted(i, 3) = y * y;
    lifted(i, 4) = x * y;
  }
  core::SubspaceOptions so;
  so.gamma = 10.0;
  Result<core::SubspaceResult> sub =
      core::LearnSubspaceAffinity(lifted, so);
  ASSERT_TRUE(sub.ok());

  auto within_fraction = [&](const la::Matrix& w) {
    double in = 0.0, total = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) {
      for (std::size_t j = 0; j < w.cols(); ++j) {
        total += w(i, j);
        if (sample.labels[i] == sample.labels[j]) in += w(i, j);
      }
    }
    return total > 0.0 ? in / total : 0.0;
  };
  // The subspace affinity has to beat chance (0.5) clearly.
  EXPECT_GT(within_fraction(sub.value().affinity), 0.7);
}

TEST(Integration, EndToEndReproducibility) {
  data::MultiTypeRelationalData d =
      data::GenerateSyntheticCorpus([] {
        data::SyntheticCorpusOptions o;
        o.docs_per_class = {15, 15};
        o.n_terms = 50;
        o.n_concepts = 30;
        o.topics_per_class = 2;
        o.core_terms_per_topic = 5;
        o.seed = 19;
        return o;
      }()).value();
  eval::PaperBenchOptions opts;
  opts.methods = {"SNMTF", "RHCHME"};
  opts.rhchme.max_iterations = 10;
  opts.rhchme.ensemble.subspace.spg.max_iterations = 10;
  opts.snmtf.max_iterations = 10;
  Result<std::vector<eval::MethodRun>> a =
      eval::RunPaperMethods(d, "rep", opts);
  Result<std::vector<eval::MethodRun>> b =
      eval::RunPaperMethods(d, "rep", opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value()[i].scores.fscore, b.value()[i].scores.fscore);
    EXPECT_DOUBLE_EQ(a.value()[i].scores.nmi, b.value()[i].scores.nmi);
  }
}

TEST(Integration, ErrorMatrixImprovesRobustnessUnderGrossCorruption) {
  // Ablation claim of §III.C: under sample-wise corruption, keeping the
  // sparse error matrix must not hurt, and typically helps, the final
  // clustering. Compared on identical data/init.
  data::SyntheticCorpusOptions o;
  o.docs_per_class = {20, 20, 20};
  o.n_terms = 100;
  o.n_concepts = 60;
  o.topics_per_class = 2;
  o.core_terms_per_topic = 6;
  o.class_overlap = 0.4;
  o.corrupted_doc_fraction = 0.2;
  o.corruption_magnitude = 6.0;
  o.seed = 23;
  data::MultiTypeRelationalData d = data::GenerateSyntheticCorpus(o).value();

  auto run = [&](bool use_error) {
    core::RhchmeOptions opts;
    opts.max_iterations = 40;
    opts.lambda = 50.0;
    opts.beta = 300.0;
    opts.use_error_matrix = use_error;
    opts.ensemble.subspace.spg.max_iterations = 25;
    core::Rhchme solver(opts);
    Result<core::RhchmeResult> r = solver.Fit(d);
    EXPECT_TRUE(r.ok());
    return eval::ScoreLabels(d.Type(0).labels, r.value().hocc.labels[0])
        .value();
  };
  eval::Scores with = run(true);
  eval::Scores without = run(false);
  EXPECT_GE(with.nmi + 0.05, without.nmi);  // Never clearly worse.
}

}  // namespace
}  // namespace rhchme
