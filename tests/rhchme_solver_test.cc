// Unit and property tests for the RHCHME solver (paper Algorithm 2),
// including the Theorem 1 monotone-descent property.

#include "core/rhchme_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include <thread>
#include <tuple>
#include <vector>

#include "data/corruption.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/gemm.h"
#include "la/matrix.h"
#include "scoped_num_threads.h"

namespace rhchme {
namespace core {
namespace {

data::MultiTypeRelationalData SmallData(uint64_t seed = 21) {
  data::BlockWorldOptions o;
  o.objects_per_type = {24, 18, 12};
  o.n_classes = 3;
  o.seed = seed;
  return data::GenerateBlockWorld(o).value();
}

RhchmeOptions FastOptions() {
  RhchmeOptions opts;
  opts.max_iterations = 25;
  opts.lambda = 1.0;
  opts.beta = 50.0;
  opts.ensemble.subspace.spg.max_iterations = 20;
  return opts;
}

TEST(RhchmeOptions, Validation) {
  EXPECT_TRUE(FastOptions().Validate().ok());
  RhchmeOptions o = FastOptions();
  o.lambda = -1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = FastOptions();
  o.beta = -1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = FastOptions();
  o.max_iterations = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = FastOptions();
  o.ensemble.include_knn = false;
  o.ensemble.include_subspace = false;
  EXPECT_FALSE(o.Validate().ok());
  // The sparse-R core cannot be forced together with the dense reference
  // core, and the auto threshold must be a density.
  o = FastOptions();
  o.sparse_r = SparseRMode::kAlways;
  o.explicit_materialization = true;
  EXPECT_FALSE(o.Validate().ok());
  o = FastOptions();
  o.sparse_r_density_threshold = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o = FastOptions();
  o.sparse_r_density_threshold = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(Rhchme, SurvivesNonFiniteCorruptedInput) {
  // End-to-end guard check: a block world whose corrupted rows carry
  // NaN/Inf (not spikes) must still fit — input sanitization zeroes the
  // poison, counts it, and every downstream invariant holds.
  data::BlockWorldOptions gen;
  gen.objects_per_type = {24, 18, 12};
  gen.n_classes = 3;
  gen.corrupted_fraction = 0.2;
  gen.corruption_mode = data::RowCorruptionMode::kNonFinite;
  gen.seed = 33;
  data::MultiTypeRelationalData d = data::GenerateBlockWorld(gen).value();

  for (core::SparseRMode mode :
       {core::SparseRMode::kNever, core::SparseRMode::kAlways}) {
    RhchmeOptions opts = FastOptions();
    opts.sparse_r = mode;
    Rhchme solver(opts);
    Result<RhchmeResult> r = solver.Fit(d);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.value().diagnostics.nonfinite_input_entries, 0u);
    EXPECT_TRUE(r.value().hocc.g.AllFinite());
    EXPECT_TRUE(r.value().hocc.g.IsNonNegative());
    EXPECT_FALSE(r.value().hocc.objective_trace.empty());
    for (double obj : r.value().hocc.objective_trace) {
      EXPECT_TRUE(std::isfinite(obj));
    }
  }
}

TEST(Rhchme, ProducesValidResult) {
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const fact::HoccResult& h = r.value().hocc;
  EXPECT_TRUE(h.g.AllFinite());
  EXPECT_TRUE(h.g.IsNonNegative());
  EXPECT_EQ(h.g.rows(), 54u);
  EXPECT_EQ(h.g.cols(), 9u);
  ASSERT_EQ(h.labels.size(), 3u);
  EXPECT_EQ(h.labels[0].size(), 24u);
  EXPECT_GT(h.iterations, 0);
  EXPECT_FALSE(h.objective_trace.empty());
  EXPECT_GT(h.seconds, 0.0);
  EXPECT_TRUE(r.value().HasErrorMatrix());
  EXPECT_EQ(r.value().ErrorMatrix().rows(), 54u);
}

TEST(Rhchme, MembershipRowsAreL1Normalised) {
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const la::Matrix& g = r.value().hocc.g;
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = b.type_offset[k]; i < b.type_offset[k + 1]; ++i) {
      double sum = 0.0;
      for (std::size_t j = b.cluster_offset[k]; j < b.cluster_offset[k + 1];
           ++j) {
        sum += g(i, j);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << i;
    }
  }
}

TEST(Rhchme, BlockStructurePreserved) {
  // G block-diagonal; S zero diagonal blocks (paper §I.A structure).
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  const la::Matrix& g = r.value().hocc.g;
  const la::Matrix& s = r.value().hocc.s;
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = b.type_offset[k]; i < b.type_offset[k + 1]; ++i) {
      for (std::size_t j = 0; j < g.cols(); ++j) {
        const bool inside =
            j >= b.cluster_offset[k] && j < b.cluster_offset[k + 1];
        if (!inside) {
          EXPECT_EQ(g(i, j), 0.0);
        }
      }
    }
    la::Matrix s_block =
        s.Block(b.cluster_offset[k], b.cluster_offset[k], b.clusters(k),
                b.clusters(k));
    EXPECT_LT(s_block.MaxAbs(), 1e-8) << "S diagonal block " << k;
  }
}

/// Theorem 1: the objective decreases monotonically under the S, G, E_R
/// updates (the row-normalisation step is outside the theorem; disable it).
class Theorem1Test
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Theorem1Test, ObjectiveMonotonicallyDecreases) {
  auto [lambda, beta] = GetParam();
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.lambda = lambda;
  opts.beta = beta;
  opts.normalize_rows = false;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;  // Run all iterations.
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const auto& trace = r.value().hocc.objective_trace;
  ASSERT_GE(trace.size(), 5u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-7))
        << "objective rose at iteration " << i << " (lambda=" << lambda
        << ", beta=" << beta << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    LambdaBetaGrid, Theorem1Test,
    ::testing::Values(std::make_tuple(0.0, 10.0), std::make_tuple(1.0, 10.0),
                      std::make_tuple(10.0, 10.0),
                      std::make_tuple(1.0, 1000.0),
                      std::make_tuple(100.0, 100.0)));

TEST(Rhchme, ErrorMatrixLocalisesOnCorruptedRows) {
  // Corrupt a handful of document rows of R and check that E_R carries
  // more mass on those rows than on clean ones (the L2,1 sample-wise
  // noise model, paper Eq. 13/14).
  data::MultiTypeRelationalData d = SmallData(33);
  la::Matrix r01 = d.Relation(0, 1);
  la::Matrix r02 = d.Relation(0, 2);
  Rng rng(3);
  data::RowCorruptionOptions corr;
  corr.row_fraction = 0.15;
  corr.magnitude = 8.0;
  corr.entry_fraction = 0.8;
  std::vector<std::size_t> bad = data::CorruptRows(&r01, corr, &rng);
  ASSERT_TRUE(d.SetRelation(0, 1, r01).ok());
  ASSERT_TRUE(d.SetRelation(0, 2, r02).ok());

  RhchmeOptions opts = FastOptions();
  opts.beta = 30.0;
  opts.max_iterations = 20;
  Rhchme solver(opts);
  Result<RhchmeResult> res = solver.Fit(d);
  ASSERT_TRUE(res.ok());
  const la::Matrix& e = res.value().ErrorMatrix();

  double bad_mass = 0.0, clean_mass = 0.0;
  std::size_t n_bad = 0, n_clean = 0;
  for (std::size_t i = 0; i < 24; ++i) {  // Document rows.
    double row_norm = 0.0;
    for (std::size_t j = 0; j < e.cols(); ++j) row_norm += e(i, j) * e(i, j);
    row_norm = std::sqrt(row_norm);
    if (std::find(bad.begin(), bad.end(), i) != bad.end()) {
      bad_mass += row_norm;
      ++n_bad;
    } else {
      clean_mass += row_norm;
      ++n_clean;
    }
  }
  ASSERT_GT(n_bad, 0u);
  EXPECT_GT(bad_mass / n_bad, 2.0 * clean_mass / n_clean);
}

TEST(Rhchme, CallbackSeesEveryIteration) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 7;
  opts.tolerance = 0.0;
  Rhchme solver(opts);
  std::vector<int> seen;
  solver.SetIterationCallback([&seen](int it, const la::Matrix& g) {
    seen.push_back(it);
    EXPECT_GT(g.rows(), 0u);
  });
  ASSERT_TRUE(solver.Fit(d).ok());
  ASSERT_EQ(seen.size(), 7u);
  EXPECT_EQ(seen.front(), 1);
  EXPECT_EQ(seen.back(), 7);
}

TEST(Rhchme, FitWithEnsembleMatchesFit) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  Rhchme solver(opts);
  Result<RhchmeResult> direct = solver.Fit(d);
  ASSERT_TRUE(direct.ok());
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts.ensemble);
  ASSERT_TRUE(e.ok());
  Result<RhchmeResult> staged = solver.FitWithEnsemble(d, e.value());
  ASSERT_TRUE(staged.ok());
  EXPECT_LT(la::MaxAbsDiff(direct.value().hocc.g, staged.value().hocc.g),
            1e-12);
}

TEST(Rhchme, DeterministicGivenSeed) {
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> a = solver.Fit(d);
  Result<RhchmeResult> b = solver.Fit(d);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(la::MaxAbsDiff(a.value().hocc.g, b.value().hocc.g), 0.0);
  EXPECT_EQ(a.value().hocc.objective_trace, b.value().hocc.objective_trace);
}

TEST(Rhchme, RecoversPlantedClusters) {
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  Result<double> f =
      eval::FScore(d.Type(0).labels, r.value().hocc.labels[0]);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f.value(), 0.9);
}

TEST(Rhchme, DisablingErrorMatrixLeavesItEmpty) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.use_error_matrix = false;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().HasErrorMatrix());
  EXPECT_TRUE(r.value().ErrorMatrix().empty());
}

TEST(Rhchme, ConvergesBeforeIterationCapOnEasyData) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 200;
  opts.tolerance = 1e-4;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().hocc.converged);
  EXPECT_LT(r.value().hocc.iterations, 200);
}

TEST(Rhchme, RandomInitAlsoWorks) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.init = fact::MembershipInit::kRandom;
  opts.seed = 4;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().hocc.g.AllFinite());
}

// ---- Memory-lean solver core -----------------------------------------------

/// The implicit core (factored E_R, sparse Laplacian algebra) and the
/// explicit-materialisation reference core run the same update algebra;
/// their objective traces must agree to rounding (the Laplacian products
/// and objective reductions use different summation orders, so exact
/// equality is not expected).
TEST(RhchmeImplicitCore, ObjectiveTraceMatchesExplicitCore) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 15;
  opts.tolerance = 0.0;  // Fixed-length traces on both cores.

  RhchmeOptions explicit_opts = opts;
  explicit_opts.explicit_materialization = true;

  Result<RhchmeResult> implicit_fit = Rhchme(opts).Fit(d);
  Result<RhchmeResult> explicit_fit = Rhchme(explicit_opts).Fit(d);
  ASSERT_TRUE(implicit_fit.ok());
  ASSERT_TRUE(explicit_fit.ok());

  const auto& ti = implicit_fit.value().hocc.objective_trace;
  const auto& te = explicit_fit.value().hocc.objective_trace;
  ASSERT_EQ(ti.size(), te.size());
  for (std::size_t i = 0; i < ti.size(); ++i) {
    const double rel = std::fabs(ti[i] - te[i]) / std::fabs(te[i]);
    EXPECT_LT(rel, 1e-10) << "iteration " << i;
  }
  // The factored E_R must materialise to the explicit one.
  EXPECT_LT(la::MaxAbsDiff(implicit_fit.value().ErrorMatrix(),
                           explicit_fit.value().ErrorMatrix()),
            1e-8);
}

TEST(RhchmeImplicitCore, LazyErrorMatrixMatchesFactoredForm) {
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const RhchmeResult& res = r.value();
  ASSERT_TRUE(res.HasErrorMatrix());
  ASSERT_EQ(res.error_scale.size(), res.error_residual.rows());
  const la::Matrix& e = res.ErrorMatrix();
  ASSERT_EQ(e.rows(), res.error_residual.rows());
  for (std::size_t i = 0; i < e.rows(); ++i) {
    for (std::size_t j = 0; j < e.cols(); ++j) {
      EXPECT_EQ(e(i, j), res.error_scale[i] * res.error_residual(i, j));
    }
  }
  // The accessor caches: a second call hands back the same matrix.
  EXPECT_EQ(&res.ErrorMatrix(), &e);
}

/// Acceptance gate of the memory-lean core: the default path allocates
/// exactly two dense n x n matrices per fit — the joint R and the shared
/// M/Q workspace. No dense E_R, no dense ensemble Laplacian, no dense ±
/// parts (la::memstats counts every Matrix construction/Resize of at
/// least n² doubles).
TEST(RhchmeImplicitCore, FitAllocatesOnlyTwoDenseNxN) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  RhchmeOptions opts = FastOptions();
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts.ensemble);
  ASSERT_TRUE(e.ok());
  const std::size_t n = b.total_objects();

  Rhchme solver(opts);
  la::memstats::StartTracking(n * n);
  Result<RhchmeResult> r = solver.FitWithEnsemble(d, e.value());
  la::memstats::StopTracking();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::memstats::LargeAllocations(), 2u);
}

/// The implicit core's kernels (fold, scale reduction, sparse SpMM and
/// Sandwich) all chunk independently of the pool size, so the full fit is
/// bit-identical across thread counts.
TEST(RhchmeImplicitCore, FitIsBitStableAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  auto fit = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Result<RhchmeResult> r = Rhchme(opts).Fit(d);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  const RhchmeResult serial = fit(1);
  const RhchmeResult threaded = fit(4);
  EXPECT_EQ(serial.hocc.objective_trace, threaded.hocc.objective_trace);
  EXPECT_EQ(la::MaxAbsDiff(serial.hocc.g, threaded.hocc.g), 0.0);
  EXPECT_EQ(serial.error_scale, threaded.error_scale);
  EXPECT_EQ(la::MaxAbsDiff(serial.error_residual, threaded.error_residual),
            0.0);
}

/// Satellite guards: with the robust term off and lambda == 0, the fit
/// must not touch E_R state or build Laplacian ± parts — on either core.
TEST(RhchmeImplicitCore, DisabledTermsSkipTheirAllocations) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  RhchmeOptions opts = FastOptions();
  opts.use_error_matrix = false;
  opts.lambda = 0.0;
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts.ensemble);
  ASSERT_TRUE(e.ok());
  const std::size_t n = b.total_objects();

  for (bool explicit_core : {false, true}) {
    RhchmeOptions core_opts = opts;
    core_opts.explicit_materialization = explicit_core;
    Rhchme solver(core_opts);
    la::memstats::StartTracking(n * n);
    Result<RhchmeResult> r = solver.FitWithEnsemble(d, e.value());
    la::memstats::StopTracking();
    ASSERT_TRUE(r.ok()) << "explicit_core=" << explicit_core;
    // Joint R + the residual workspace; nothing else reaches n².
    EXPECT_EQ(la::memstats::LargeAllocations(), 2u)
        << "explicit_core=" << explicit_core;
    EXPECT_FALSE(r.value().HasErrorMatrix());
  }
}

// ---- Sparse-R solver core --------------------------------------------------

/// Acceptance gate of the sparse-R core: the objective trace must agree
/// with the implicit dense core within 1e-8 relative — at one and at four
/// threads — on the synthetic three-type dataset. The cores share the
/// update algebra but group the arithmetic differently (low-rank
/// identities vs dense folds), so exact equality is not expected.
TEST(RhchmeSparseCore, ObjectiveTraceMatchesImplicitCoreAtBothThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 15;
  opts.tolerance = 0.0;  // Fixed-length traces on both cores.

  RhchmeOptions sparse_opts = opts;
  sparse_opts.sparse_r = SparseRMode::kAlways;
  RhchmeOptions dense_opts = opts;
  dense_opts.sparse_r = SparseRMode::kNever;

  for (int threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    Result<RhchmeResult> sparse_fit = Rhchme(sparse_opts).Fit(d);
    Result<RhchmeResult> dense_fit = Rhchme(dense_opts).Fit(d);
    ASSERT_TRUE(sparse_fit.ok()) << "threads=" << threads;
    ASSERT_TRUE(dense_fit.ok()) << "threads=" << threads;

    const auto& ts = sparse_fit.value().hocc.objective_trace;
    const auto& td = dense_fit.value().hocc.objective_trace;
    ASSERT_EQ(ts.size(), td.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double rel = std::fabs(ts[i] - td[i]) / std::fabs(td[i]);
      EXPECT_LT(rel, 1e-8) << "iteration " << i << ", threads=" << threads;
    }
    // Same clustering out of both cores.
    EXPECT_EQ(sparse_fit.value().hocc.labels, dense_fit.value().hocc.labels)
        << "threads=" << threads;
  }
}

/// ROADMAP item 4d: the joint R of MultiTypeRelationalData is symmetric
/// by construction (every relation is mirrored into its transpose), so
/// assume_symmetric_r — which reuses K = R·G for Rᵀ·G and runs the scaled
/// transposed product as a forward SpMM — must reproduce the non-assuming
/// sparse core to rounding: trace-match <= 1e-8 relative, same labels, at
/// one and at four threads, with and without the robust term.
TEST(RhchmeSparseCore, AssumeSymmetricRMatchesNonAssumingPath) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 15;
  opts.tolerance = 0.0;  // Fixed-length traces on both paths.
  opts.sparse_r = SparseRMode::kAlways;

  for (bool robust : {true, false}) {
    opts.use_error_matrix = robust;
    RhchmeOptions sym_opts = opts;
    sym_opts.assume_symmetric_r = true;
    for (int threads : {1, 4}) {
      ScopedNumThreads scoped(threads);
      Result<RhchmeResult> base = Rhchme(opts).Fit(d);
      Result<RhchmeResult> sym = Rhchme(sym_opts).Fit(d);
      ASSERT_TRUE(base.ok()) << "threads=" << threads;
      ASSERT_TRUE(sym.ok()) << "threads=" << threads;

      const auto& tb = base.value().hocc.objective_trace;
      const auto& ts = sym.value().hocc.objective_trace;
      ASSERT_EQ(tb.size(), ts.size()) << "threads=" << threads;
      for (std::size_t i = 0; i < tb.size(); ++i) {
        const double rel = std::fabs(tb[i] - ts[i]) / std::fabs(tb[i]);
        EXPECT_LT(rel, 1e-8)
            << "iteration " << i << ", threads=" << threads
            << ", robust=" << robust;
      }
      EXPECT_EQ(base.value().hocc.labels, sym.value().hocc.labels)
          << "threads=" << threads << ", robust=" << robust;
    }
  }
}

/// The sparse-R fit must never allocate a dense n x n matrix — the whole
/// point of the core. la::memstats counts every Matrix construction or
/// Resize of >= n² doubles.
TEST(RhchmeSparseCore, FitAllocatesZeroDenseNxN) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  RhchmeOptions opts = FastOptions();
  opts.sparse_r = SparseRMode::kAlways;
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts.ensemble);
  ASSERT_TRUE(e.ok());
  const std::size_t n = b.total_objects();

  Rhchme solver(opts);
  la::memstats::StartTracking(n * n);
  Result<RhchmeResult> r = solver.FitWithEnsemble(d, e.value());
  la::memstats::StopTracking();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(la::memstats::LargeAllocations(), 0u);
  EXPECT_TRUE(r.value().hocc.g.AllFinite());
  EXPECT_TRUE(r.value().HasErrorMatrix());
}

TEST(RhchmeSparseCore, FitIsBitStableAcrossThreadCounts) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.sparse_r = SparseRMode::kAlways;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  auto fit = [&](int threads) {
    ScopedNumThreads scoped(threads);
    Result<RhchmeResult> r = Rhchme(opts).Fit(d);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  const RhchmeResult serial = fit(1);
  const RhchmeResult threaded = fit(4);
  EXPECT_EQ(serial.hocc.objective_trace, threaded.hocc.objective_trace);
  EXPECT_EQ(la::MaxAbsDiff(serial.hocc.g, threaded.hocc.g), 0.0);
  EXPECT_EQ(serial.error_scale, threaded.error_scale);
}

/// The factored sparse E_R materialises to the implicit core's dense one.
TEST(RhchmeSparseCore, ErrorMatrixMatchesImplicitCore) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 12;
  opts.tolerance = 0.0;
  RhchmeOptions sparse_opts = opts;
  sparse_opts.sparse_r = SparseRMode::kAlways;
  Result<RhchmeResult> sparse_fit = Rhchme(sparse_opts).Fit(d);
  Result<RhchmeResult> dense_fit = Rhchme(opts).Fit(d);
  ASSERT_TRUE(sparse_fit.ok());
  ASSERT_TRUE(dense_fit.ok());
  ASSERT_TRUE(sparse_fit.value().HasErrorMatrix());
  EXPECT_TRUE(sparse_fit.value().error_residual.empty());
  EXPECT_GT(sparse_fit.value().error_sparse_r.nnz(), 0u);
  EXPECT_LT(la::MaxAbsDiff(sparse_fit.value().ErrorMatrix(),
                           dense_fit.value().ErrorMatrix()),
            1e-8);
}

/// kAuto picks the core per dataset: a tf-idf-sparse block world (heavy
/// dropout) runs sparse (zero dense n x n), the dense default block world
/// stays on the implicit dense core (exactly two).
TEST(RhchmeSparseCore, AutoModeSelectsByDensity) {
  RhchmeOptions opts = FastOptions();
  ASSERT_EQ(opts.sparse_r, SparseRMode::kAuto);

  data::BlockWorldOptions sparse_world;
  sparse_world.objects_per_type = {24, 18, 12};
  sparse_world.n_classes = 3;
  sparse_world.dropout = 0.97;
  sparse_world.seed = 21;
  data::MultiTypeRelationalData sparse_data =
      data::GenerateBlockWorld(sparse_world).value();
  ASSERT_LE(sparse_data.JointRDensity(), opts.sparse_r_density_threshold);

  data::MultiTypeRelationalData dense_data = SmallData();
  ASSERT_GT(dense_data.JointRDensity(), opts.sparse_r_density_threshold);

  struct Case {
    const data::MultiTypeRelationalData* data;
    std::size_t expected_allocs;
  };
  for (const Case& c : {Case{&sparse_data, 0}, Case{&dense_data, 2}}) {
    const data::MultiTypeRelationalData& data = *c.data;
    const std::size_t expected_allocs = c.expected_allocs;
    fact::BlockStructure b = fact::BuildBlockStructure(data);
    Result<HeterogeneousEnsemble> e = BuildEnsemble(data, b, opts.ensemble);
    ASSERT_TRUE(e.ok());
    const std::size_t n = b.total_objects();
    la::memstats::StartTracking(n * n);
    Result<RhchmeResult> r = Rhchme(opts).FitWithEnsemble(data, e.value());
    la::memstats::StopTracking();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(la::memstats::LargeAllocations(), expected_allocs);
  }
}

/// Disabled robust term and lambda == 0 must also stay dense-free on the
/// sparse core.
TEST(RhchmeSparseCore, DisabledTermsStayAllocationFree) {
  data::MultiTypeRelationalData d = SmallData();
  fact::BlockStructure b = fact::BuildBlockStructure(d);
  RhchmeOptions opts = FastOptions();
  opts.sparse_r = SparseRMode::kAlways;
  opts.use_error_matrix = false;
  opts.lambda = 0.0;
  Result<HeterogeneousEnsemble> e = BuildEnsemble(d, b, opts.ensemble);
  ASSERT_TRUE(e.ok());
  const std::size_t n = b.total_objects();
  Rhchme solver(opts);
  la::memstats::StartTracking(n * n);
  Result<RhchmeResult> r = solver.FitWithEnsemble(d, e.value());
  la::memstats::StopTracking();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::memstats::LargeAllocations(), 0u);
  EXPECT_FALSE(r.value().HasErrorMatrix());
  EXPECT_TRUE(r.value().ErrorMatrix().empty());
}

/// Theorem 1 holds on the sparse core too: same updates, different
/// arithmetic grouping.
TEST(RhchmeSparseCore, ObjectiveMonotonicallyDecreases) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.sparse_r = SparseRMode::kAlways;
  opts.normalize_rows = false;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const auto& trace = r.value().hocc.objective_trace;
  ASSERT_GE(trace.size(), 5u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-7))
        << "objective rose at iteration " << i;
  }
}

/// The standalone sparse-R objective overload, fed the sparse fit's own
/// factors, must reproduce the solver's last trace entry.
TEST(RhchmeObjective, SparseROverloadMatchesSparseFitTrace) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.sparse_r = SparseRMode::kAlways;
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const RhchmeResult& res = r.value();
  const double objective = RhchmeObjective(
      d.BuildJointRSparse(), res.hocc.g, res.hocc.s, res.error_scale,
      res.ensemble.laplacian, opts.lambda, opts.beta);
  const double traced = res.hocc.objective_trace.back();
  EXPECT_NEAR(objective, traced, 1e-8 * std::fabs(traced));
}

/// And with the robust term off, the overload's E_R = 0 form must match
/// the dense no-error objective.
TEST(RhchmeObjective, SparseROverloadMatchesDenseWithoutError) {
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.use_error_matrix = false;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const RhchmeResult& res = r.value();
  const double sparse_obj = RhchmeObjective(
      d.BuildJointRSparse(), res.hocc.g, res.hocc.s, {},
      res.ensemble.laplacian, opts.lambda, opts.beta);
  const double dense_obj = RhchmeObjective(
      d.BuildJointR(), res.hocc.g, res.hocc.s, la::Matrix(),
      res.ensemble.laplacian, opts.lambda, opts.beta);
  EXPECT_NEAR(sparse_obj, dense_obj, 1e-8 * std::fabs(dense_obj));
}

// ---- Lazy ErrorMatrix thread-safety ----------------------------------------

/// Regression for the lazy-build race: concurrent const readers must all
/// see the same cached matrix (the build is internally synchronised, like
/// SparseMatrix::BuildCscMirror). Run under TSan in CI.
TEST(RhchmeResult, ErrorMatrixIsSafeUnderConcurrentConstReads) {
  data::MultiTypeRelationalData d = SmallData();
  Rhchme solver(FastOptions());
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const RhchmeResult& res = r.value();
  ASSERT_TRUE(res.HasErrorMatrix());

  constexpr int kReaders = 8;
  std::vector<const la::Matrix*> seen(kReaders, nullptr);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&res, &seen, i] { seen[i] = &res.ErrorMatrix(); });
  }
  for (std::thread& t : readers) t.join();
  for (int i = 1; i < kReaders; ++i) {
    EXPECT_EQ(seen[i], seen[0]) << "reader " << i;
  }
  // The built matrix matches the factored form.
  const la::Matrix& e = *seen[0];
  ASSERT_EQ(e.rows(), res.error_residual.rows());
  for (std::size_t i = 0; i < e.rows(); ++i) {
    for (std::size_t j = 0; j < e.cols(); ++j) {
      EXPECT_EQ(e(i, j), res.error_scale[i] * res.error_residual(i, j));
    }
  }
}

TEST(RhchmeObjective, SparseOverloadMatchesFinalTraceValue) {
  // The public Eq. 15 helper, fed the fit's own factors and its sparse
  // ensemble Laplacian, must reproduce the solver's last trace entry.
  data::MultiTypeRelationalData d = SmallData();
  RhchmeOptions opts = FastOptions();
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  Rhchme solver(opts);
  Result<RhchmeResult> r = solver.Fit(d);
  ASSERT_TRUE(r.ok());
  const RhchmeResult& res = r.value();
  const double objective = RhchmeObjective(
      d.BuildJointR(), res.hocc.g, res.hocc.s, res.ErrorMatrix(),
      res.ensemble.laplacian, opts.lambda, opts.beta);
  const double traced = res.hocc.objective_trace.back();
  EXPECT_NEAR(objective, traced, 1e-8 * std::fabs(traced));
}

TEST(RhchmeObjective, MatchesManualEvaluation) {
  Rng rng(5);
  const std::size_t n = 10, c = 3;
  la::Matrix r = la::Matrix::RandomUniform(n, n, &rng);
  la::Matrix g = la::Matrix::RandomUniform(n, c, &rng);
  la::Matrix s = la::Matrix::RandomNormal(c, c, &rng);
  la::Matrix e = la::Matrix::RandomUniform(n, n, &rng, 0.0, 0.1);
  la::Matrix lap = la::Matrix::Identity(n);
  la::Matrix resid = la::MultiplyNT(la::Multiply(g, s), g);
  resid.Scale(-1.0);
  resid.Add(r);
  resid.Sub(e);
  const double expected =
      resid.FrobeniusNormSquared() + 2.0 * e.L21Norm() +
      3.0 * la::FrobeniusInner(la::Multiply(lap, g), g);
  EXPECT_NEAR(RhchmeObjective(r, g, s, e, lap, 3.0, 2.0), expected, 1e-8);
}

}  // namespace
}  // namespace core
}  // namespace rhchme
