// Tests for the robustness scenario grid (eval/scenario.h): option
// validation, cell ordering/coverage, the JSON artefact, and the
// thread-count determinism contract the CI quality gate depends on.

#include "eval/scenario.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scoped_num_threads.h"

namespace rhchme {
namespace eval {
namespace {

/// Smallest grid that still exercises both generators' corruption and
/// dropout paths; sized to keep the whole file under a few seconds.
ScenarioGridOptions TinyGrid() {
  ScenarioGridOptions opts;
  opts.corruption_fractions = {0.2};
  // Spike-only keeps the cell-count arithmetic below mode-free; the
  // kNonFinite axis has its own dedicated test.
  opts.corruption_modes = {data::RowCorruptionMode::kSpike};
  opts.sparsity_levels = {0.3};
  opts.imbalances = {ImbalanceKind::kSkewed};
  opts.seeds = {1};
  opts.docs_per_class = 8;
  opts.n_terms = 40;
  opts.n_concepts = 24;
  opts.objects_per_type = 12;
  opts.max_iterations = 8;
  return opts;
}

TEST(ScenarioGridOptions, ValidatesAxesAndMethods) {
  EXPECT_TRUE(ScenarioGridOptions{}.Validate().ok());
  EXPECT_TRUE(TinyGrid().Validate().ok());

  ScenarioGridOptions bad = TinyGrid();
  bad.corruption_fractions = {1.5};
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.sparsity_levels = {1.0};  // Dropout must stay below 1.
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.seeds.clear();
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.methods = {"RHCHME", "KMEANS"};
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.rhchme_variants = {{"semi", "exact"}};
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.rhchme_variants = {{"implicit", "annoy"}};
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.docs_per_class = 4;  // Too small for the 4:2:1 skew.
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyGrid();
  bad.corruption_modes.clear();
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(RunScenarioGrid, NonFiniteModeRunsGuardedVariantsOnly) {
  ScenarioGridOptions opts = TinyGrid();
  opts.corruption_fractions = {0.0, 0.2};
  opts.corruption_modes = {data::RowCorruptionMode::kSpike,
                           data::RowCorruptionMode::kNonFinite};
  opts.methods = {"RHCHME", "SNMTF"};
  opts.rhchme_variants = {{"implicit", "exact"}};

  Result<ScenarioReport> report = RunScenarioGrid(opts);
  ASSERT_TRUE(report.ok()) << report.status().message();
  // Spike: 2 corruption x 2 slots. NonFinite: only corruption 0.2 (the
  // corruption-0 cell would duplicate the spike one) and only the
  // guarded RHCHME variant (baselines have no numerical guards).
  const std::vector<ScenarioCell>& cells = report.value().cells;
  ASSERT_EQ(cells.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cells[i].corruption_mode, data::RowCorruptionMode::kSpike);
    EXPECT_EQ(cells[i].recovery_events, 0.0) << "spike cell " << i;
  }
  const ScenarioCell& poisoned = cells[4];
  EXPECT_EQ(poisoned.corruption_mode, data::RowCorruptionMode::kNonFinite);
  EXPECT_EQ(poisoned.corruption, 0.2);
  EXPECT_EQ(poisoned.method, "RHCHME");
  // The guards must have absorbed real damage: finite metrics, counted
  // recoveries.
  EXPECT_GT(poisoned.recovery_events, 0.0);
  EXPECT_GE(poisoned.nmi, 0.0);
  EXPECT_LE(poisoned.nmi, 1.0);
}

TEST(RunScenarioGrid, CoversEveryCellMethodAndVariant) {
  ScenarioGridOptions opts = TinyGrid();
  opts.corruption_fractions = {0.0, 0.2};
  opts.seeds = {1, 2};
  opts.methods = {"RHCHME", "SNMTF"};
  opts.rhchme_variants = {{"implicit", "exact"}, {"sparse", "exact"}};

  Result<ScenarioReport> report = RunScenarioGrid(opts);
  ASSERT_TRUE(report.ok()) << report.status().message();
  // 1 imbalance x 2 corruption x 1 sparsity, 3 slots each.
  const std::vector<ScenarioCell>& cells = report.value().cells;
  ASSERT_EQ(cells.size(), 6u);
  for (const ScenarioCell& c : cells) {
    EXPECT_EQ(c.replicates, 2);
    EXPECT_GE(c.nmi, 0.0);
    EXPECT_LE(c.nmi, 1.0);
    EXPECT_GE(c.purity, 0.0);
    EXPECT_LE(c.purity, 1.0);
  }
  // Cells are ordered (imbalance, corruption, sparsity, method) with
  // RHCHME variants expanded in listed order.
  EXPECT_EQ(cells[0].corruption, 0.0);
  EXPECT_EQ(cells[0].variant, "implicit+exact");
  EXPECT_EQ(cells[1].variant, "sparse+exact");
  EXPECT_EQ(cells[2].method, "SNMTF");
  EXPECT_EQ(cells[3].corruption, 0.2);

  // The implicit and sparse-R cores solve the same objective and must
  // trace-match: identical labels, identical seed-averaged metrics.
  EXPECT_EQ(cells[0].nmi, cells[1].nmi);
  EXPECT_EQ(cells[3].nmi, cells[4].nmi);
}

TEST(RunScenarioGrid, BlockWorldWorkloadRuns) {
  ScenarioGridOptions opts = TinyGrid();
  opts.workload = ScenarioWorkload::kBlockWorld;
  opts.methods = {"RHCHME", "DR-T"};
  opts.rhchme_variants = {{"implicit", "descent"}};

  Result<ScenarioReport> report = RunScenarioGrid(opts);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report.value().cells.size(), 2u);
  EXPECT_EQ(report.value().cells[0].variant, "implicit+descent");
  EXPECT_EQ(report.value().cells[1].method, "DR-T");
}

// The CI gate compares metric doubles exactly against a committed
// baseline, so a grid run must be bit-identical for any pool size.
TEST(RunScenarioGrid, BitIdenticalAcrossThreadCounts) {
  ScenarioGridOptions opts = TinyGrid();
  opts.methods = {"RHCHME", "DR-T", "SRC", "SNMTF", "RMC"};
  opts.rhchme_variants = {{"implicit", "exact"}, {"implicit", "descent"}};

  Result<ScenarioReport> one(Status::Internal("unset"));
  Result<ScenarioReport> four(Status::Internal("unset"));
  {
    ScopedNumThreads guard(1);
    one = RunScenarioGrid(opts);
  }
  {
    ScopedNumThreads guard(4);
    four = RunScenarioGrid(opts);
  }
  ASSERT_TRUE(one.ok()) << one.status().message();
  ASSERT_TRUE(four.ok()) << four.status().message();
  ASSERT_EQ(one.value().cells.size(), four.value().cells.size());
  for (std::size_t i = 0; i < one.value().cells.size(); ++i) {
    const ScenarioCell& a = one.value().cells[i];
    const ScenarioCell& b = four.value().cells[i];
    SCOPED_TRACE(a.method + "/" + a.variant);
    EXPECT_EQ(a.nmi, b.nmi);
    EXPECT_EQ(a.ari, b.ari);
    EXPECT_EQ(a.purity, b.purity);
    EXPECT_EQ(a.fscore, b.fscore);
  }
}

TEST(WriteScenarioReportJson, EmitsContextAndCells) {
  ScenarioGridOptions opts = TinyGrid();
  opts.methods = {"SNMTF"};
  Result<ScenarioReport> report = RunScenarioGrid(opts);
  ASSERT_TRUE(report.ok()) << report.status().message();

  const std::string path =
      ::testing::TempDir() + "/scenario_report_test.json";
  ASSERT_TRUE(WriteScenarioReportJson(report.value(), path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"rhchme_build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"rhchme_simd\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"corpus\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"SNMTF\""), std::string::npos);
  EXPECT_NE(json.find("\"replicates\": 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteScenarioReportJson, RejectsUnwritablePath) {
  ScenarioReport empty;
  EXPECT_FALSE(
      WriteScenarioReportJson(empty, "/nonexistent-dir/out.json").ok());
}

}  // namespace
}  // namespace eval
}  // namespace rhchme
