// End-to-end smoke test: tiny corpus through the full RHCHME pipeline.

#include <gtest/gtest.h>

#include "rhchme/rhchme.h"

namespace rhchme {
namespace {

TEST(Smoke, RhchmeEndToEnd) {
  data::SyntheticCorpusOptions opts;
  opts.docs_per_class = {20, 20, 20};
  opts.n_terms = 60;
  opts.n_concepts = 40;
  opts.topics_per_class = 2;
  opts.core_terms_per_topic = 6;
  opts.doc_length_mean = 60.0;
  Result<data::MultiTypeRelationalData> data =
      data::GenerateSyntheticCorpus(opts);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  core::RhchmeOptions ropts;
  ropts.max_iterations = 20;
  ropts.lambda = 10.0;
  ropts.beta = 50.0;
  ropts.ensemble.subspace.spg.max_iterations = 30;
  core::Rhchme solver(ropts);
  Result<core::RhchmeResult> fit = solver.Fit(data.value());
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  const fact::HoccResult& res = fit.value().hocc;
  EXPECT_TRUE(res.g.AllFinite());
  EXPECT_TRUE(res.g.IsNonNegative());
  ASSERT_EQ(res.labels.size(), 3u);
  EXPECT_EQ(res.labels[0].size(), 60u);

  Result<eval::Scores> scores =
      eval::ScoreLabels(data.value().Type(0).labels, res.labels[0]);
  ASSERT_TRUE(scores.ok());
  // A well-separated 3-class toy corpus must be clustered far above chance.
  EXPECT_GT(scores.value().fscore, 0.6);
}

}  // namespace
}  // namespace rhchme
