// Tests for the neighbour-list construction engines (blocked exact scan
// and NN-descent) and the recall gate behind the approximate backend.

#include "graph/knn_descent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "eval/knn_recall.h"
#include "graph/knn_graph.h"
#include "la/matrix.h"
#include "la/simd.h"
#include "scoped_num_threads.h"
#include "util/rng.h"

namespace rhchme {
namespace graph {
namespace {

/// Gaussian blobs: well-separated centres with unit-variance points, the
/// clustered regime NN-descent is built for (and the regime every pNN
/// ensemble member actually sees).
la::Matrix Blobs(std::size_t clusters, std::size_t per_cluster,
                 std::size_t d, uint64_t seed) {
  Rng rng(seed);
  la::Matrix centers(clusters, d);
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t j = 0; j < d; ++j) centers(c, j) = 10.0 * rng.Normal();
  }
  la::Matrix pts(clusters * per_cluster, d);
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        pts(c * per_cluster + i, j) = centers(c, j) + rng.Normal();
      }
    }
  }
  return pts;
}

/// Straight-from-the-definition reference with the engines' exact
/// arithmetic (norms + simd::Dot), so distances compare bitwise.
KnnNeighborLists BruteForce(const la::Matrix& pts, std::size_t p,
                            KnnMetric metric) {
  const std::size_t n = pts.rows(), d = pts.cols();
  std::vector<double> norm(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sq = la::simd::Dot(pts.row_ptr(i), pts.row_ptr(i), d);
    norm[i] = metric == KnnMetric::kCosine ? std::sqrt(sq) : sq;
  }
  KnnNeighborLists out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dot = la::simd::Dot(pts.row_ptr(i), pts.row_ptr(j), d);
      double dist;
      if (metric == KnnMetric::kSquaredEuclidean) {
        dist = std::max(0.0, norm[i] + norm[j] - 2.0 * dot);
      } else if (norm[i] == 0.0 || norm[j] == 0.0) {
        dist = 1.0;
      } else {
        dist = 1.0 - dot / (norm[i] * norm[j]);
      }
      out[i].push_back({j, dist});
    }
    std::sort(out[i].begin(), out[i].end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.index < b.index);
              });
    out[i].resize(std::min(p, out[i].size()));
  }
  return out;
}

void ExpectListsIdentical(const KnnNeighborLists& a,
                          const KnnNeighborLists& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "row " << i;
    for (std::size_t t = 0; t < a[i].size(); ++t) {
      EXPECT_EQ(a[i][t].index, b[i][t].index) << "row " << i << " slot " << t;
      EXPECT_EQ(a[i][t].distance, b[i][t].distance)
          << "row " << i << " slot " << t;
    }
  }
}

TEST(ExactKnn, MatchesBruteForceBothMetrics) {
  Rng rng(5);
  la::Matrix pts = la::Matrix::RandomNormal(70, 5, &rng);
  for (KnnMetric metric :
       {KnnMetric::kSquaredEuclidean, KnnMetric::kCosine}) {
    ExpectListsIdentical(ExactKnnNeighbors(pts, 7, metric),
                         BruteForce(pts, 7, metric));
  }
}

TEST(ExactKnn, HandlesDegenerateShapes) {
  // n < 2: empty lists, no crash.
  EXPECT_TRUE(ExactKnnNeighbors(la::Matrix(1, 3), 5,
                                KnnMetric::kSquaredEuclidean)[0]
                  .empty());
  // p >= n clamps to the complete graph.
  la::Matrix pts = la::Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  KnnNeighborLists lists =
      ExactKnnNeighbors(pts, 100, KnnMetric::kSquaredEuclidean);
  for (const auto& l : lists) EXPECT_EQ(l.size(), 2u);
}

TEST(ExactKnn, BitStableAcrossThreadCounts) {
  la::Matrix pts = Blobs(6, 50, 8, 17);
  KnnNeighborLists ref;
  {
    ScopedNumThreads scoped(1);
    ref = ExactKnnNeighbors(pts, 6, KnnMetric::kSquaredEuclidean);
  }
  {
    ScopedNumThreads scoped(4);
    ExpectListsIdentical(
        ExactKnnNeighbors(pts, 6, KnnMetric::kSquaredEuclidean), ref);
  }
}

TEST(NnDescentOptions, Validation) {
  KnnDescentOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.max_iterations = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = KnnDescentOptions();
  o.termination_delta = -1e-3;
  EXPECT_FALSE(o.Validate().ok());
  o = KnnDescentOptions();
  o.sample_rate = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.sample_rate = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(NnDescent, HighRecallOnBlobs) {
  la::Matrix pts = Blobs(8, 40, 16, 23);  // n = 320.
  KnnDescentOptions opts;
  for (std::size_t p : {std::size_t{5}, std::size_t{10}}) {
    Result<KnnNeighborLists> approx =
        NnDescent(pts, p, KnnMetric::kSquaredEuclidean, opts);
    ASSERT_TRUE(approx.ok());
    KnnNeighborLists exact =
        ExactKnnNeighbors(pts, p, KnnMetric::kSquaredEuclidean);
    Result<double> recall = eval::KnnRecall(approx.value(), exact);
    ASSERT_TRUE(recall.ok());
    EXPECT_GE(recall.value(), 0.95) << "p=" << p;
  }
}

TEST(NnDescent, HighRecallOnTfIdfDocuments) {
  data::SyntheticCorpusOptions gen;
  gen.docs_per_class = {45, 45, 45, 45};  // n = 180 documents.
  gen.n_terms = 150;
  gen.n_concepts = 90;
  gen.seed = 31;
  la::Matrix docs =
      data::GenerateSyntheticCorpus(gen).value().Type(0).features;
  KnnGraphOptions opts;
  opts.backend = KnnBackend::kNNDescent;
  for (std::size_t p : {std::size_t{5}, std::size_t{10}}) {
    opts.p = p;
    Result<double> recall = eval::RecallAgainstExact(docs, opts);
    ASSERT_TRUE(recall.ok());
    EXPECT_GE(recall.value(), 0.95) << "p=" << p;
  }
}

TEST(NnDescent, BitStableAcrossThreadCounts) {
  la::Matrix pts = Blobs(5, 60, 8, 29);
  KnnDescentOptions opts;
  KnnNeighborLists ref;
  {
    ScopedNumThreads scoped(1);
    ref = NnDescent(pts, 5, KnnMetric::kSquaredEuclidean, opts).value();
  }
  {
    ScopedNumThreads scoped(4);
    ExpectListsIdentical(
        NnDescent(pts, 5, KnnMetric::kSquaredEuclidean, opts).value(), ref);
  }
}

TEST(NnDescent, DeterministicUnderFixedStream) {
  la::Matrix pts = Blobs(4, 30, 6, 37);
  KnnDescentOptions opts;
  opts.seed = DeriveStreamSeed(123, 7);  // An ensemble-style derived stream.
  KnnNeighborLists a =
      NnDescent(pts, 5, KnnMetric::kSquaredEuclidean, opts).value();
  KnnNeighborLists b =
      NnDescent(pts, 5, KnnMetric::kSquaredEuclidean, opts).value();
  ExpectListsIdentical(a, b);
}

TEST(KnnBackend, AutoSelectsByThreshold) {
  Rng rng(41);
  la::Matrix pts = la::Matrix::RandomNormal(64, 4, &rng);
  KnnGraphOptions opts;
  opts.p = 4;

  // Below the threshold kAuto is the exact reference...
  opts.backend = KnnBackend::kAuto;
  opts.auto_backend_threshold = 1000;
  ExpectListsIdentical(
      BuildKnnNeighbors(pts, opts).value(),
      ExactKnnNeighbors(pts, 4, KnnMetric::kSquaredEuclidean));

  // ...above it, exactly the NN-descent result for the same seed.
  opts.auto_backend_threshold = 32;
  ExpectListsIdentical(
      BuildKnnNeighbors(pts, opts).value(),
      NnDescent(pts, 4, KnnMetric::kSquaredEuclidean, opts.descent).value());

  // Explicit backends ignore the threshold.
  opts.backend = KnnBackend::kExact;
  ExpectListsIdentical(
      BuildKnnNeighbors(pts, opts).value(),
      ExactKnnNeighbors(pts, 4, KnnMetric::kSquaredEuclidean));
  opts.backend = KnnBackend::kNNDescent;
  opts.auto_backend_threshold = 1000;
  ExpectListsIdentical(
      BuildKnnNeighbors(pts, opts).value(),
      NnDescent(pts, 4, KnnMetric::kSquaredEuclidean, opts.descent).value());
}

TEST(KnnBackend, Names) {
  EXPECT_STREQ(KnnBackendName(KnnBackend::kExact), "exact");
  EXPECT_STREQ(KnnBackendName(KnnBackend::kNNDescent), "nn-descent");
  EXPECT_STREQ(KnnBackendName(KnnBackend::kAuto), "auto");
}

TEST(KnnRecall, ScoresOverlapByIndex) {
  KnnNeighborLists exact = {{{1, 0.1}, {2, 0.2}}, {{0, 0.1}, {3, 0.3}}};
  KnnNeighborLists perfect = exact;
  EXPECT_DOUBLE_EQ(eval::KnnRecall(perfect, exact).value(), 1.0);
  KnnNeighborLists half = {{{1, 0.1}, {5, 0.5}}, {{0, 0.1}, {6, 0.6}}};
  EXPECT_DOUBLE_EQ(eval::KnnRecall(half, exact).value(), 0.5);
  KnnNeighborLists wrong_shape(3);
  EXPECT_FALSE(eval::KnnRecall(wrong_shape, exact).ok());
}

}  // namespace
}  // namespace graph
}  // namespace rhchme
