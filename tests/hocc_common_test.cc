// Unit tests for the shared NMTF machinery.

#include "factorization/hocc_common.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace fact {
namespace {

data::MultiTypeRelationalData SmallData() {
  data::BlockWorldOptions o;
  o.objects_per_type = {12, 9, 6};
  o.n_classes = 3;
  o.seed = 5;
  return data::GenerateBlockWorld(o).value();
}

TEST(BlockStructure, OffsetsMatchData) {
  data::MultiTypeRelationalData d = SmallData();
  BlockStructure b = BuildBlockStructure(d);
  EXPECT_EQ(b.num_types(), 3u);
  EXPECT_EQ(b.total_objects(), 27u);
  EXPECT_EQ(b.total_clusters(), 9u);
  EXPECT_EQ(b.objects(0), 12u);
  EXPECT_EQ(b.objects(2), 6u);
  EXPECT_EQ(b.clusters(1), 3u);
  EXPECT_EQ(b.type_offset[1], 12u);
  EXPECT_EQ(b.cluster_offset[2], 6u);
}

TEST(InitMembership, BlockDiagonalRowStochastic) {
  data::MultiTypeRelationalData d = SmallData();
  BlockStructure b = BuildBlockStructure(d);
  Rng rng(1);
  for (MembershipInit init :
       {MembershipInit::kKMeans, MembershipInit::kRandom}) {
    Result<la::Matrix> g = InitMembership(d, b, init, &rng);
    ASSERT_TRUE(g.ok());
    ASSERT_EQ(g.value().rows(), 27u);
    ASSERT_EQ(g.value().cols(), 9u);
    for (std::size_t k = 0; k < 3; ++k) {
      for (std::size_t i = b.type_offset[k]; i < b.type_offset[k + 1]; ++i) {
        double in_block = 0.0, out_block = 0.0;
        for (std::size_t j = 0; j < 9; ++j) {
          const bool inside =
              j >= b.cluster_offset[k] && j < b.cluster_offset[k + 1];
          (inside ? in_block : out_block) += g.value()(i, j);
          if (inside) {
            EXPECT_GT(g.value()(i, j), 0.0);
          }
        }
        EXPECT_NEAR(in_block, 1.0, 1e-9);
        EXPECT_EQ(out_block, 0.0);
      }
    }
  }
}

TEST(SolveCentralS, RecoversPlantedS) {
  // Build R = G·S·Gᵀ exactly and check the closed form recovers S.
  Rng rng(2);
  const std::size_t n = 20, c = 4;
  la::Matrix g = la::Matrix::RandomUniform(n, c, &rng, 0.1, 1.0);
  la::Matrix s_true = la::Matrix::RandomNormal(c, c, &rng);
  la::Matrix r = la::MultiplyNT(la::Multiply(g, s_true), g);
  Result<la::Matrix> s = SolveCentralS(g, r, 1e-12);
  ASSERT_TRUE(s.ok());
  EXPECT_LT(la::MaxAbsDiff(s.value(), s_true), 1e-6);
}

TEST(SolveCentralS, SurvivesEmptyClusterColumn) {
  Rng rng(3);
  la::Matrix g = la::Matrix::RandomUniform(10, 3, &rng);
  for (std::size_t i = 0; i < 10; ++i) g(i, 2) = 0.0;  // Empty cluster.
  la::Matrix r = la::Matrix::RandomUniform(10, 10, &rng);
  Result<la::Matrix> s = SolveCentralS(g, r, 1e-9);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.value().AllFinite());
}

TEST(SolveCentralS, RejectsShapeMismatch) {
  EXPECT_FALSE(SolveCentralS(la::Matrix(5, 2), la::Matrix(4, 4)).ok());
  EXPECT_FALSE(SolveCentralS(la::Matrix(4, 2), la::Matrix(4, 5)).ok());
}

TEST(MultiplicativeGUpdate, DecreasesReconstructionObjective) {
  Rng rng(4);
  const std::size_t n = 16, c = 3;
  la::Matrix g_true = la::Matrix::RandomUniform(n, c, &rng, 0.0, 1.0);
  la::Matrix s = la::Matrix::RandomUniform(c, c, &rng, 0.0, 1.0);
  la::Matrix r = la::MultiplyNT(la::Multiply(g_true, s), g_true);
  la::Matrix g = la::Matrix::RandomUniform(n, c, &rng, 0.1, 1.0);

  double prev = ReconstructionError(r, g, s);
  for (int it = 0; it < 25; ++it) {
    MultiplicativeGUpdate(r, s, 1e-12, &g);
    const double now = ReconstructionError(r, g, s);
    EXPECT_LE(now, prev * (1.0 + 1e-9)) << "iteration " << it;
    prev = now;
  }
}

TEST(MultiplicativeGUpdate, ZerosStayZero) {
  // The block-diagonal structure of G survives because multiplicative
  // updates cannot resurrect exact zeros.
  Rng rng(5);
  const std::size_t n = 12, c = 4;
  la::Matrix g = la::Matrix::RandomUniform(n, c, &rng, 0.1, 1.0);
  for (std::size_t i = 0; i < 6; ++i) g(i, 3) = 0.0;
  la::Matrix s = la::Matrix::RandomUniform(c, c, &rng);
  la::Matrix r = la::Matrix::RandomUniform(n, n, &rng);
  MultiplicativeGUpdate(r, s, 1e-12, &g);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(g(i, 3), 0.0);
  EXPECT_TRUE(g.IsNonNegative());
  EXPECT_TRUE(g.AllFinite());
}

TEST(MultiplicativeGUpdate, LaplacianTermPullsNeighboursTogether) {
  // Two objects connected by a strong graph edge end up with more
  // similar membership rows than without the regulariser.
  Rng rng(6);
  const std::size_t n = 8, c = 2;
  la::Matrix r = la::Matrix::RandomUniform(n, n, &rng, 0.0, 0.3);
  la::Matrix s = la::Matrix::Identity(c);
  la::Matrix w(n, n);
  w(0, 1) = w(1, 0) = 10.0;  // Strong edge 0-1.
  la::Matrix lap(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) lap(i, j) = -w(i, j);
  }
  lap(0, 0) = lap(1, 1) = 10.0;
  la::Matrix lap_pos = la::PositivePart(lap);
  la::Matrix lap_neg = la::NegativePart(lap);

  la::Matrix g0 = la::Matrix::RandomUniform(n, c, &rng, 0.1, 1.0);
  g0(0, 0) = 0.9;
  g0(0, 1) = 0.1;
  g0(1, 0) = 0.1;
  g0(1, 1) = 0.9;  // Rows 0 and 1 start very different.

  auto row_gap = [](const la::Matrix& g) {
    return std::fabs(g(0, 0) - g(1, 0)) + std::fabs(g(0, 1) - g(1, 1));
  };
  la::Matrix g_reg = g0;
  la::Matrix g_noreg = g0;
  for (int it = 0; it < 10; ++it) {
    MultiplicativeGUpdate(r, s, 5.0, &lap_pos, &lap_neg, 1e-12, &g_reg);
    MultiplicativeGUpdate(r, s, 1e-12, &g_noreg);
  }
  EXPECT_LT(row_gap(g_reg), row_gap(g_noreg));
}

TEST(RatioUpdate, AppliesSqrtRatio) {
  la::Matrix g = la::Matrix::FromRows({{2.0, 4.0}});
  la::Matrix num = la::Matrix::FromRows({{4.0, 1.0}});
  la::Matrix den = la::Matrix::FromRows({{1.0, 4.0}});
  RatioUpdate(num, den, 0.0, &g);
  EXPECT_NEAR(g(0, 0), 4.0, 1e-12);  // 2 * sqrt(4/1)
  EXPECT_NEAR(g(0, 1), 2.0, 1e-12);  // 4 * sqrt(1/4)
}

TEST(RatioUpdate, NegativeNumeratorTreatedAsZero) {
  la::Matrix g = la::Matrix::FromRows({{3.0}});
  la::Matrix num = la::Matrix::FromRows({{-2.0}});
  la::Matrix den = la::Matrix::FromRows({{1.0}});
  RatioUpdate(num, den, 1e-12, &g);
  EXPECT_EQ(g(0, 0), 0.0);
}

TEST(NormalizeMembershipRows, PerBlockRowSums) {
  data::MultiTypeRelationalData d = SmallData();
  BlockStructure b = BuildBlockStructure(d);
  Rng rng(7);
  la::Matrix g = InitMembership(d, b, MembershipInit::kRandom, &rng).value();
  g.Scale(7.3);  // Destroy normalisation.
  NormalizeMembershipRows(b, &g);
  for (std::size_t k = 0; k < b.num_types(); ++k) {
    for (std::size_t i = b.type_offset[k]; i < b.type_offset[k + 1]; ++i) {
      double sum = 0.0;
      for (std::size_t j = b.cluster_offset[k]; j < b.cluster_offset[k + 1];
           ++j) {
        sum += g(i, j);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(NormalizeMembershipRows, ZeroRowBecomesUniform) {
  data::MultiTypeRelationalData d = SmallData();
  BlockStructure b = BuildBlockStructure(d);
  la::Matrix g(b.total_objects(), b.total_clusters());
  NormalizeMembershipRows(b, &g);
  EXPECT_NEAR(g(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(g(0, 3), 0.0);  // Stays outside its block.
}

TEST(ExtractLabels, PerTypeArgmax) {
  data::MultiTypeRelationalData d = SmallData();
  BlockStructure b = BuildBlockStructure(d);
  la::Matrix g(27, 9);
  // Put every object of type 1 into its cluster 2 (column 5 overall).
  for (std::size_t i = b.type_offset[1]; i < b.type_offset[2]; ++i) {
    g(i, 5) = 1.0;
  }
  auto labels = ExtractLabels(b, g);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[1], std::vector<std::size_t>(9, 2u));
}

TEST(ReconstructionError, ZeroForExactFactorisation) {
  Rng rng(8);
  la::Matrix g = la::Matrix::RandomUniform(10, 3, &rng);
  la::Matrix s = la::Matrix::RandomNormal(3, 3, &rng);
  la::Matrix r = la::MultiplyNT(la::Multiply(g, s), g);
  EXPECT_NEAR(ReconstructionError(r, g, s), 0.0, 1e-10);
}

}  // namespace
}  // namespace fact
}  // namespace rhchme
