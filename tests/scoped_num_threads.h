// Shared test helper: pin the pool size for a scope.

#ifndef RHCHME_TESTS_SCOPED_NUM_THREADS_H_
#define RHCHME_TESTS_SCOPED_NUM_THREADS_H_

#include "util/parallel.h"

namespace rhchme {

/// Restores the ambient pool size when a test scope ends.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : saved_(util::NumThreads()) {
    util::SetNumThreads(n);
  }
  ~ScopedNumThreads() { util::SetNumThreads(saved_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

}  // namespace rhchme

#endif  // RHCHME_TESTS_SCOPED_NUM_THREADS_H_
