// Unit tests for the synthetic data generators.

#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

namespace rhchme {
namespace data {
namespace {

SyntheticCorpusOptions SmallCorpus() {
  SyntheticCorpusOptions o;
  o.docs_per_class = {10, 15, 20};
  o.n_terms = 80;
  o.n_concepts = 50;
  o.topics_per_class = 2;
  o.core_terms_per_topic = 6;
  o.doc_length_mean = 50.0;
  o.seed = 7;
  return o;
}

TEST(SyntheticCorpus, ShapesAndLabels) {
  Result<MultiTypeRelationalData> d = GenerateSyntheticCorpus(SmallCorpus());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d.value().NumTypes(), 3u);
  EXPECT_EQ(d.value().Type(0).count, 45u);
  EXPECT_EQ(d.value().Type(1).count, 80u);
  EXPECT_EQ(d.value().Type(2).count, 50u);
  EXPECT_EQ(d.value().Type(0).clusters, 3u);
  // Ground truth present for all types.
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(d.value().Type(k).labels.size(), d.value().Type(k).count);
    for (std::size_t label : d.value().Type(k).labels) EXPECT_LT(label, 3u);
  }
  // Class sizes honoured (docs generated class by class).
  const auto& y = d.value().Type(0).labels;
  EXPECT_EQ(std::count(y.begin(), y.end(), 0u), 10);
  EXPECT_EQ(std::count(y.begin(), y.end(), 1u), 15);
  EXPECT_EQ(std::count(y.begin(), y.end(), 2u), 20);
}

TEST(SyntheticCorpus, AllThreeRelationsPresentAndNonNegative) {
  Result<MultiTypeRelationalData> d = GenerateSyntheticCorpus(SmallCorpus());
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d.value().HasRelation(0, 1));
  ASSERT_TRUE(d.value().HasRelation(0, 2));
  ASSERT_TRUE(d.value().HasRelation(1, 2));
  for (auto [k, l] : {std::pair<std::size_t, std::size_t>{0, 1},
                      {0, 2},
                      {1, 2}}) {
    la::Matrix r = d.value().Relation(k, l);
    EXPECT_TRUE(r.IsNonNegative());
    EXPECT_TRUE(r.AllFinite());
    EXPECT_GT(r.Sum(), 0.0);
  }
  EXPECT_TRUE(d.value().Validate().ok());
}

TEST(SyntheticCorpus, DeterministicGivenSeed) {
  Result<MultiTypeRelationalData> a = GenerateSyntheticCorpus(SmallCorpus());
  Result<MultiTypeRelationalData> b = GenerateSyntheticCorpus(SmallCorpus());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(la::MaxAbsDiff(a.value().Relation(0, 1), b.value().Relation(0, 1)),
            0.0);
  EXPECT_EQ(a.value().Type(1).labels, b.value().Type(1).labels);
}

TEST(SyntheticCorpus, SeedChangesData) {
  SyntheticCorpusOptions o = SmallCorpus();
  Result<MultiTypeRelationalData> a = GenerateSyntheticCorpus(o);
  o.seed = 8;
  Result<MultiTypeRelationalData> b = GenerateSyntheticCorpus(o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(la::MaxAbsDiff(a.value().Relation(0, 1), b.value().Relation(0, 1)),
            0.0);
}

TEST(SyntheticCorpus, FeaturesMatchRelations) {
  Result<MultiTypeRelationalData> d = GenerateSyntheticCorpus(SmallCorpus());
  ASSERT_TRUE(d.ok());
  // Document features are the doc-term tf-idf block (paper §IV.A).
  EXPECT_EQ(la::MaxAbsDiff(d.value().Type(0).features,
                           d.value().Relation(0, 1)),
            0.0);
  // Term features are its transpose.
  EXPECT_EQ(la::MaxAbsDiff(d.value().Type(1).features,
                           d.value().RelationTransposed(1, 0)),
            0.0);
}

TEST(SyntheticCorpus, CorruptionIncreasesMass) {
  SyntheticCorpusOptions clean = SmallCorpus();
  SyntheticCorpusOptions dirty = SmallCorpus();
  dirty.corrupted_doc_fraction = 0.3;
  Result<MultiTypeRelationalData> a = GenerateSyntheticCorpus(clean);
  Result<MultiTypeRelationalData> b = GenerateSyntheticCorpus(dirty);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value().Relation(0, 1).Sum(), a.value().Relation(0, 1).Sum());
}

TEST(SyntheticCorpus, ClusterCountOverrides) {
  SyntheticCorpusOptions o = SmallCorpus();
  o.term_clusters = 8;
  o.concept_clusters = 5;
  Result<MultiTypeRelationalData> d = GenerateSyntheticCorpus(o);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().Type(1).clusters, 8u);
  EXPECT_EQ(d.value().Type(2).clusters, 5u);
}

TEST(SyntheticCorpus, ValidationErrors) {
  SyntheticCorpusOptions o = SmallCorpus();
  o.docs_per_class.clear();
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
  o = SmallCorpus();
  o.docs_per_class = {5, 0};
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
  o = SmallCorpus();
  o.n_terms = 2;  // Fewer terms than topics.
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
  o = SmallCorpus();
  o.background_noise = 1.5;
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
  o = SmallCorpus();
  o.doc_length_mean = 0.0;
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
}

TEST(SyntheticCorpus, PresetsAreValidAndMatchTableII) {
  // Class counts follow Table II: 5, 10, 25, 10.
  EXPECT_EQ(Multi5Preset().docs_per_class.size(), 5u);
  EXPECT_EQ(Multi10Preset().docs_per_class.size(), 10u);
  EXPECT_EQ(ReutersMin20Max200Preset().docs_per_class.size(), 25u);
  EXPECT_EQ(ReutersTop10Preset().docs_per_class.size(), 10u);
  // D3' sizes are skewed between its min and max.
  const auto d3 = ReutersMin20Max200Preset().docs_per_class;
  EXPECT_LT(*std::min_element(d3.begin(), d3.end()),
            *std::max_element(d3.begin(), d3.end()) / 5);
  // All presets validate.
  for (const auto& p :
       {Multi5Preset(), Multi10Preset(), ReutersMin20Max200Preset(),
        ReutersTop10Preset()}) {
    EXPECT_TRUE(p.Validate().ok());
  }
}

TEST(SyntheticCorpus, PresetByName) {
  EXPECT_TRUE(PresetByName("D1").ok());
  EXPECT_TRUE(PresetByName("Multi10").ok());
  EXPECT_TRUE(PresetByName("R-Top10").ok());
  Result<SyntheticCorpusOptions> bad = PresetByName("D9");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(SyntheticCorpus, MapAlignmentStrengthensConceptSignal) {
  // With an aligned term→concept map (the Wikipedia mapping is topically
  // coherent) the doc–concept block separates classes better than with a
  // class-blind map.
  auto within_across_ratio = [](double alignment) {
    SyntheticCorpusOptions o;
    o.docs_per_class = {20, 20, 20};
    o.n_terms = 90;
    o.n_concepts = 60;
    o.topics_per_class = 2;
    o.core_terms_per_topic = 6;
    o.concept_map_alignment = alignment;
    o.seed = 31;
    MultiTypeRelationalData d = GenerateSyntheticCorpus(o).value();
    la::Matrix r02 = d.Relation(0, 2);
    const auto& dl = d.Type(0).labels;
    const auto& cl = d.Type(2).labels;
    double win = 0.0, acr = 0.0;
    std::size_t nw = 0, na = 0;
    for (std::size_t i = 0; i < r02.rows(); ++i) {
      for (std::size_t c = 0; c < r02.cols(); ++c) {
        if (dl[i] == cl[c]) {
          win += r02(i, c);
          ++nw;
        } else {
          acr += r02(i, c);
          ++na;
        }
      }
    }
    return (win / nw) / (acr / na);
  };
  EXPECT_GT(within_across_ratio(0.9), within_across_ratio(0.0));
}

// Rows of `dirty` whose doc-term block differs from `clean` — the
// corrupted-row set as observable from the outside.
std::vector<std::size_t> ChangedDocRows(const MultiTypeRelationalData& clean,
                                        const MultiTypeRelationalData& dirty) {
  const la::Matrix& a = clean.Relation(0, 1);
  const la::Matrix& b = dirty.Relation(0, 1);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) {
        rows.push_back(i);
        break;
      }
    }
  }
  return rows;
}

TEST(SyntheticCorpus, CorruptionDrawsFromItsOwnSeedStream) {
  // The corrupted-row set must depend only on (seed, fraction): changing
  // an option whose draws happen elsewhere in the generation (the
  // doc-concept noise channel) must not move the corruption. Before the
  // DeriveStreamSeed stream, the corruption consumed the tail of the main
  // generator, so any upstream option change reshuffled the rows.
  SyntheticCorpusOptions clean = SmallCorpus();
  clean.balance_blocks = false;  // Keep doc-term independent of the rest.
  SyntheticCorpusOptions dirty = clean;
  dirty.corrupted_doc_fraction = 0.3;
  SyntheticCorpusOptions dirty_other_noise = dirty;
  dirty_other_noise.concept_noise_hits = 9.0;

  MultiTypeRelationalData c = GenerateSyntheticCorpus(clean).value();
  MultiTypeRelationalData d1 = GenerateSyntheticCorpus(dirty).value();
  MultiTypeRelationalData d2 =
      GenerateSyntheticCorpus(dirty_other_noise).value();

  std::vector<std::size_t> rows1 = ChangedDocRows(c, d1);
  std::vector<std::size_t> rows2 = ChangedDocRows(c, d2);
  EXPECT_FALSE(rows1.empty());
  EXPECT_EQ(rows1, rows2);
  // Stronger: the whole corrupted doc-term block is bit-identical — the
  // concept-channel change cannot leak into it.
  EXPECT_EQ(la::MaxAbsDiff(d1.Relation(0, 1), d2.Relation(0, 1)), 0.0);
}

TEST(SyntheticCorpus, RelationDropoutSparsifiesDeterministically) {
  SyntheticCorpusOptions o = SmallCorpus();
  o.relation_dropout = 0.5;
  MultiTypeRelationalData a = GenerateSyntheticCorpus(o).value();
  MultiTypeRelationalData b = GenerateSyntheticCorpus(o).value();
  EXPECT_EQ(la::MaxAbsDiff(a.Relation(0, 1), b.Relation(0, 1)), 0.0);
  EXPECT_EQ(la::MaxAbsDiff(a.Relation(1, 2), b.Relation(1, 2)), 0.0);

  auto zeros = [](const la::Matrix& m) {
    std::size_t z = 0;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        if (m(i, j) == 0.0) ++z;
      }
    }
    return z;
  };
  MultiTypeRelationalData dense = GenerateSyntheticCorpus(SmallCorpus()).value();
  EXPECT_GT(zeros(a.Relation(0, 1)), zeros(dense.Relation(0, 1)));
}

TEST(SyntheticCorpus, DropoutValidation) {
  SyntheticCorpusOptions o = SmallCorpus();
  o.relation_dropout = 1.0;
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
  o.relation_dropout = -0.1;
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
  o.relation_dropout = 0.0;
  o.corruption_magnitude = -1.0;
  EXPECT_FALSE(GenerateSyntheticCorpus(o).ok());
}

// ---- BlockWorld ------------------------------------------------------------

TEST(BlockWorld, ShapesAndLabels) {
  BlockWorldOptions o;
  o.objects_per_type = {20, 30, 25, 15};
  o.n_classes = 3;
  Result<MultiTypeRelationalData> d = GenerateBlockWorld(o);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d.value().NumTypes(), 4u);
  EXPECT_EQ(d.value().TotalObjects(), 90u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(d.value().Type(k).labels.size(), d.value().Type(k).count);
    EXPECT_EQ(d.value().Type(k).clusters, 3u);
    EXPECT_FALSE(d.value().Type(k).features.empty());
  }
  EXPECT_TRUE(d.value().Validate().ok());
}

TEST(BlockWorld, AllPairsRelated) {
  BlockWorldOptions o;
  o.objects_per_type = {10, 12, 8};
  Result<MultiTypeRelationalData> d = GenerateBlockWorld(o);
  ASSERT_TRUE(d.ok());
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t l = k + 1; l < 3; ++l) {
      EXPECT_TRUE(d.value().HasRelation(k, l));
    }
  }
}

TEST(BlockWorld, WithinClassMassDominates) {
  BlockWorldOptions o;
  o.objects_per_type = {40, 40};
  o.n_classes = 4;
  o.dropout = 0.0;
  Result<MultiTypeRelationalData> d = GenerateBlockWorld(o);
  ASSERT_TRUE(d.ok());
  la::Matrix r = d.value().Relation(0, 1);
  const auto& ya = d.value().Type(0).labels;
  const auto& yb = d.value().Type(1).labels;
  double within = 0.0, across = 0.0;
  std::size_t nw = 0, na = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 40; ++j) {
      if (ya[i] == yb[j]) {
        within += r(i, j);
        ++nw;
      } else {
        across += r(i, j);
        ++na;
      }
    }
  }
  EXPECT_GT(within / nw, 2.0 * across / na);
}

TEST(BlockWorld, CorruptionSpikesType0RowsAndKeepsFeaturesConsistent) {
  BlockWorldOptions o;
  o.objects_per_type = {20, 16, 12};
  o.n_classes = 2;
  o.dropout = 0.0;
  o.seed = 99;
  BlockWorldOptions dirty = o;
  dirty.corrupted_fraction = 0.25;
  MultiTypeRelationalData c = GenerateBlockWorld(o).value();
  MultiTypeRelationalData d = GenerateBlockWorld(dirty).value();

  // Some type-0 rows changed, none of the type-1/2-only block did.
  EXPECT_GT(la::MaxAbsDiff(c.Relation(0, 1), d.Relation(0, 1)), 0.0);
  EXPECT_EQ(la::MaxAbsDiff(c.Relation(1, 2), d.Relation(1, 2)), 0.0);

  // Features are assembled after corruption: type 0's leading feature
  // block is exactly its corrupted (0,1) relation rows.
  const la::Matrix feat01 =
      d.Type(0).features.Block(0, 0, 20, 16);
  EXPECT_EQ(la::MaxAbsDiff(feat01, d.Relation(0, 1)), 0.0);

  // Same seed → same corrupted data.
  MultiTypeRelationalData d2 = GenerateBlockWorld(dirty).value();
  EXPECT_EQ(la::MaxAbsDiff(d.Relation(0, 1), d2.Relation(0, 1)), 0.0);
}

TEST(BlockWorld, ValidationErrors) {
  BlockWorldOptions o;
  o.objects_per_type = {10};
  EXPECT_FALSE(GenerateBlockWorld(o).ok());
  o.objects_per_type = {10, 10};
  o.n_classes = 0;
  EXPECT_FALSE(GenerateBlockWorld(o).ok());
  o.n_classes = 20;  // More classes than objects.
  EXPECT_FALSE(GenerateBlockWorld(o).ok());
  o.n_classes = 2;
  o.within_strength = 0.1;
  o.between_strength = 0.5;  // Inverted.
  EXPECT_FALSE(GenerateBlockWorld(o).ok());
}

}  // namespace
}  // namespace data
}  // namespace rhchme
