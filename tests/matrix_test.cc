// Unit tests for the dense Matrix type.

#include "la/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>

#include "util/rng.h"

namespace rhchme {
namespace la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, FillConstructorAndFill) {
  Matrix m(2, 2, 3.5);
  EXPECT_EQ(m(1, 1), 3.5);
  m.Fill(-1.0);
  EXPECT_EQ(m(0, 0), -1.0);
}

TEST(Matrix, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.Trace(), 3.0);
  EXPECT_EQ(id(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({2, 5});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 5.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, RandomMatricesHonourRange) {
  Rng rng(1);
  Matrix u = Matrix::RandomUniform(10, 10, &rng, 2.0, 3.0);
  EXPECT_GE(u.Min(), 2.0);
  EXPECT_LT(u.Max(), 3.0);
  Matrix n = Matrix::RandomNormal(10, 10, &rng, 0.0, 1.0);
  EXPECT_TRUE(n.AllFinite());
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(2);
  Matrix m = Matrix::RandomUniform(7, 13, &rng);
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 13u);
  EXPECT_EQ(t.cols(), 7u);
  EXPECT_EQ(MaxAbsDiff(t.Transposed(), m), 0.0);
  EXPECT_EQ(m(3, 11), t(11, 3));
}

TEST(Matrix, BlockExtractAndSet) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), 5.0);
  EXPECT_EQ(b(1, 1), 9.0);
  Matrix z(2, 2, 0.0);
  m.SetBlock(0, 0, z);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(1, 1), 0.0);
  EXPECT_EQ(m(2, 2), 9.0);
}

TEST(Matrix, RowAndColExtraction) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3}));
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  Matrix sum = Add(a, b);
  EXPECT_EQ(sum(1, 1), 44.0);
  Matrix diff = Sub(b, a);
  EXPECT_EQ(diff(0, 0), 9.0);
  Matrix h = Hadamard(a, b);
  EXPECT_EQ(h(1, 0), 90.0);
  Matrix s = Scaled(a, 2.0);
  EXPECT_EQ(s(0, 1), 4.0);
  a.AddScaled(b, 0.1);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(Matrix, ApplyAndClamp) {
  Matrix m = Matrix::FromRows({{-1, 2}, {3, -4}});
  Matrix clamped = m;
  clamped.ClampNonNegative();
  EXPECT_EQ(clamped(0, 0), 0.0);
  EXPECT_EQ(clamped(1, 0), 3.0);
  m.Apply([](double v) { return v * v; });
  EXPECT_EQ(m(1, 1), 16.0);
}

TEST(Matrix, PositiveNegativeSplit) {
  Matrix m = Matrix::FromRows({{-1, 2}, {0, -3}});
  Matrix pos = PositivePart(m);
  Matrix neg = NegativePart(m);
  EXPECT_EQ(pos(0, 0), 0.0);
  EXPECT_EQ(pos(0, 1), 2.0);
  EXPECT_EQ(neg(0, 0), 1.0);
  EXPECT_EQ(neg(1, 1), 3.0);
  // Invariant: M = pos - neg, both parts nonnegative.
  Matrix recon = Sub(pos, neg);
  EXPECT_EQ(MaxAbsDiff(recon, m), 0.0);
  EXPECT_TRUE(pos.IsNonNegative());
  EXPECT_TRUE(neg.IsNonNegative());
}

TEST(Matrix, Norms) {
  Matrix m = Matrix::FromRows({{3, 4}, {0, 0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(m.L1Norm(), 7.0);
  // L2,1: row norms summed -> 5 + 0.
  EXPECT_DOUBLE_EQ(m.L21Norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(Matrix, L21NormMatchesDefinition) {
  // Paper Eq. 14: sum_i ||row_i||_2.
  Matrix m = Matrix::FromRows({{1, 2, 2}, {-3, 0, 4}});
  EXPECT_DOUBLE_EQ(m.L21Norm(), 3.0 + 5.0);
}

TEST(Matrix, RowColSumsAndTrace) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.RowSums(), (std::vector<double>{3, 7}));
  EXPECT_EQ(m.ColSums(), (std::vector<double>{4, 6}));
  EXPECT_EQ(m.Trace(), 5.0);
}

TEST(Matrix, FiniteAndNonNegativeChecks) {
  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(m.AllFinite());
  EXPECT_TRUE(m.IsNonNegative());
  m(0, 0) = -1e-9;
  EXPECT_FALSE(m.IsNonNegative());
  EXPECT_TRUE(m.IsNonNegative(1e-8));
  m(1, 1) = std::nan("");
  EXPECT_FALSE(m.AllFinite());
}

TEST(Matrix, ScaleRowsAndCols) {
  Matrix m = Matrix::FromRows({{2, 4}, {6, 8}});
  m.ScaleRows({2.0, 4.0});  // Divides by d[i].
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
  m.ScaleCols({10.0, 1.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(Matrix, ScaleRowsSkipsZeroDivisors) {
  Matrix m = Matrix::FromRows({{2, 4}});
  m.ScaleRows({0.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);  // Untouched.
}

TEST(Matrix, NormalizeRowsL1) {
  Matrix m = Matrix::FromRows({{1, 3}, {0, 0}});
  m.NormalizeRowsL1(0, 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.75);
  // All-zero row becomes uniform over the requested range.
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.5);
}

TEST(Matrix, NormalizeRowsL1ZeroRowStaysZeroWithoutRange) {
  Matrix m = Matrix::FromRows({{0, 0}});
  m.NormalizeRowsL1();
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(0, 1), 0.0);
}

TEST(Matrix, ScaleRowsEpsFloorBoundary) {
  // Divisors at or above the documented floor divide; below it the row is
  // left untouched instead of blowing up to ±Inf.
  Matrix m = Matrix::FromRows({{2, 4}, {2, 4}, {2, 4}});
  m.ScaleRows({kScaleRowsEps, kScaleRowsEps / 2.0, -kScaleRowsEps / 2.0});
  EXPECT_TRUE(m.AllFinite());
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0 / kScaleRowsEps);  // At the floor: divides.
  EXPECT_DOUBLE_EQ(m(1, 0), 2.0);                  // Below: untouched.
  EXPECT_DOUBLE_EQ(m(2, 0), 2.0);                  // |d| is what matters.
}

TEST(Matrix, NormalizeRowsL1UniformFallbackOverSubrange) {
  // The all-zero fallback spreads mass only over [c0, c1), matching the
  // per-type cluster blocks of the membership matrix (paper Eq. 22).
  Matrix m = Matrix::FromRows({{0, 0, 0, 0}, {1, 1, 1, 1}});
  m.NormalizeRowsL1(1, 4);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m(0, 3), 1.0 / 3.0);
  // A nonzero row normalises over all columns, untouched by the range.
  EXPECT_DOUBLE_EQ(m(1, 0), 0.25);
}

TEST(Matrix, NormalizeRowsL1NegativeEntriesUseAbsoluteMass) {
  Matrix m = Matrix::FromRows({{-1, 3}});
  m.NormalizeRowsL1();
  EXPECT_DOUBLE_EQ(m(0, 0), -0.25);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.75);
}

TEST(Matrix, Concat) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5}, {6}});
  Matrix h = HConcat(a, b);
  EXPECT_EQ(h.cols(), 3u);
  EXPECT_EQ(h(1, 2), 6.0);
  Matrix c = Matrix::FromRows({{7, 8}});
  Matrix v = VConcat(a, c);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v(2, 1), 8.0);
}

TEST(Matrix, MaxAbsDiffDetectsChange) {
  Matrix a(3, 3, 1.0);
  Matrix b = a;
  EXPECT_EQ(a.MaxAbsDiff(b), 0.0);
  b(2, 2) = 1.5;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
}

TEST(Matrix, ResizeDiscardsContents) {
  Matrix m(2, 2, 7.0);
  m.Resize(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_EQ(m(2, 0), 0.0);
}

TEST(Matrix, DebugStringMentionsShape) {
  Matrix m(3, 2, 1.0);
  std::string s = m.DebugString();
  EXPECT_NE(s.find("3x2"), std::string::npos);
}

// ---- Aligned, padded storage invariants ----------------------------------

bool AllRowsAligned(const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (reinterpret_cast<std::uintptr_t>(m.row_ptr(i)) % kAlignment != 0) {
      return false;
    }
  }
  return true;
}

bool PaddingIsZero(const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row_ptr(i);
    for (std::size_t j = m.cols(); j < m.stride(); ++j) {
      if (r[j] != 0.0) return false;
    }
  }
  return true;
}

TEST(MatrixAlignment, RowsAlignedAfterConstructResizeCopyMove) {
  // 5 columns forces a padded stride (not a multiple of the cache line).
  Matrix m(6, 5, 2.0);
  EXPECT_EQ(m.stride(), PaddedStride(5));
  EXPECT_TRUE(AllRowsAligned(m));

  m.Resize(11, 3);
  EXPECT_TRUE(AllRowsAligned(m));

  Matrix copy = m;
  EXPECT_TRUE(AllRowsAligned(copy));

  Matrix moved = std::move(copy);
  EXPECT_TRUE(AllRowsAligned(moved));
}

TEST(MatrixAlignment, SizeIsLogicalAndPaddedSizeCoversStride) {
  Matrix m(4, 5);
  EXPECT_EQ(m.size(), 20u);
  EXPECT_EQ(m.padded_size(), 4 * m.stride());
  EXPECT_GE(m.stride(), m.cols());
}

TEST(MatrixAlignment, PaddingStaysZeroThroughMutations) {
  Rng rng(77);
  Matrix m = Matrix::RandomUniform(5, 3, &rng, 0.5, 1.5);
  EXPECT_TRUE(PaddingIsZero(m));

  m.Fill(4.0);
  EXPECT_TRUE(PaddingIsZero(m));

  m.Scale(-2.0);  // Negative scale must not flip pad signs to nonzero.
  EXPECT_TRUE(PaddingIsZero(m));

  Matrix other = Matrix::RandomUniform(5, 3, &rng);
  m.Add(other);
  m.Sub(other);
  m.Hadamard(other);
  m.AddScaled(other, -0.3);
  EXPECT_TRUE(PaddingIsZero(m));

  // Apply maps 0 -> 1 on logical entries only; pad must not see f.
  m.Apply([](double) { return 1.0; });
  EXPECT_TRUE(PaddingIsZero(m));

  m.NormalizeRowsL1(0, 3);
  m.ScaleRows({1.0, 2.0, 3.0, 4.0, 5.0});
  m.ScaleCols({1.0, 2.0, 3.0});
  m.ClampNonNegative();
  EXPECT_TRUE(PaddingIsZero(m));
}

TEST(MatrixAlignment, ReductionsIgnorePadding) {
  // All-positive entries: any pad leakage would drag Min to 0 or inflate
  // counts/sums.
  Matrix m(3, 5, 2.0);
  EXPECT_EQ(m.Min(), 2.0);
  EXPECT_EQ(m.Max(), 2.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 30.0);
  EXPECT_DOUBLE_EQ(m.L1Norm(), 30.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 60.0);

  // A NaN written into the pad through raw storage must stay invisible to
  // the logical predicates (no consumer may read pad columns).
  if (m.stride() > m.cols()) {
    m.row_ptr(1)[m.cols()] = std::nan("");
    EXPECT_TRUE(m.AllFinite());
  }
}

TEST(MatrixAlignment, MemstatsCountsLogicalElementsNotPaddedBuffer) {
  // 4x3 pads its buffer to 4*8 = 32 doubles; tracking with a threshold of
  // 13 must NOT count it (logical size 12), proving memstats never sees
  // the padding.
  memstats::StartTracking(13);
  { Matrix m(4, 3); }
  EXPECT_EQ(memstats::LargeAllocations(), 0u);
  memstats::StopTracking();

  memstats::StartTracking(12);
  { Matrix m(4, 3); }
  EXPECT_EQ(memstats::LargeAllocations(), 1u);
  memstats::StopTracking();
}

}  // namespace
}  // namespace la
}  // namespace rhchme
