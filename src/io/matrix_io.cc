#include "io/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault.h"

namespace rhchme {
namespace io {
namespace {
constexpr char kMagic[4] = {'R', 'H', 'M', '1'};

// Shared shape guard: each factor is bounded before the product is formed —
// rows·cols would wrap for adversarial headers (e.g. rows = cols = 2³³),
// silently bypassing the guard and requesting a huge allocation.
constexpr uint64_t kMaxElements = 1ull << 32;

bool PlausibleShape(uint64_t rows, uint64_t cols) {
  return rows <= kMaxElements && cols <= kMaxElements &&
         (rows == 0 || cols <= kMaxElements / rows);
}
}  // namespace

Status WriteMatrixCsv(const la::Matrix& m, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  f.precision(17);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      f << m(i, j);
      if (j + 1 < m.cols()) f << ',';
    }
    f << '\n';
  }
  return f ? Status::OK()
           : Status::Internal("write failed for: " + path);
}

Result<la::Matrix> ReadMatrixCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::vector<std::vector<double>> rows;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        std::size_t used = 0;
        row.push_back(std::stod(cell, &used));
        // Trailing junk after the number (e.g. "1.5abc") is an error.
        while (used < cell.size() &&
               (cell[used] == ' ' || cell[used] == '\r')) {
          ++used;
        }
        if (used != cell.size()) throw std::invalid_argument(cell);
      } catch (const std::exception&) {
        return Status::InvalidArgument("non-numeric cell '" + cell +
                                       "' at line " +
                                       std::to_string(lineno) + " of " +
                                       path);
      }
    }
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::InvalidArgument("ragged row at line " +
                                     std::to_string(lineno) + " of " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + path);
  return la::Matrix::FromRows(rows);
}

Status WriteMatrixBinary(const la::Matrix& m, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  if (util::FaultShouldFail(util::fault_site::kMatrixWriteFail)) {
    return Status::Internal("injected write failure for: " + path);
  }
  const uint64_t rows = m.rows(), cols = m.cols();
  f.write(kMagic, sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  // Row by row: the on-disk format is densely packed, while in-memory rows
  // are stride-padded for alignment.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    f.write(reinterpret_cast<const char*>(m.row_ptr(i)),
            static_cast<std::streamsize>(m.cols() * sizeof(double)));
  }
  return f ? Status::OK() : Status::Internal("write failed for: " + path);
}

Result<la::Matrix> ReadMatrixBinary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open: " + path);
  if (util::FaultShouldFail(util::fault_site::kMatrixReadFail)) {
    return Status::Internal("injected read failure for: " + path);
  }
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in: " + path);
  }
  uint64_t rows = 0, cols = 0;
  f.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  f.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!f) {
    return Status::InvalidArgument("truncated header in: " + path);
  }
  if (!PlausibleShape(rows, cols)) {
    return Status::InvalidArgument("implausible shape in: " + path);
  }
  la::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    f.read(reinterpret_cast<char*>(m.row_ptr(i)),
           static_cast<std::streamsize>(m.cols() * sizeof(double)));
    if (!f) return Status::InvalidArgument("truncated matrix in: " + path);
  }
  return m;
}

void AppendMatrixPayload(const la::Matrix& m, std::string* out) {
  const uint64_t rows = m.rows(), cols = m.cols();
  out->append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  // Row by row: in-memory rows are stride-padded, the payload is dense.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    out->append(reinterpret_cast<const char*>(m.row_ptr(i)),
                m.cols() * sizeof(double));
  }
}

Result<la::Matrix> ParseMatrixPayload(const char* buf, std::size_t size,
                                      std::size_t* pos) {
  uint64_t rows = 0, cols = 0;
  if (*pos > size || size - *pos < 2 * sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated matrix payload header");
  }
  std::memcpy(&rows, buf + *pos, sizeof(rows));
  std::memcpy(&cols, buf + *pos + sizeof(rows), sizeof(cols));
  *pos += 2 * sizeof(uint64_t);
  if (!PlausibleShape(rows, cols)) {
    return Status::InvalidArgument("implausible shape in matrix payload");
  }
  const uint64_t bytes = rows * cols * sizeof(double);
  if (size - *pos < bytes) {
    return Status::InvalidArgument("truncated matrix payload body");
  }
  la::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::memcpy(m.row_ptr(i), buf + *pos, m.cols() * sizeof(double));
    *pos += m.cols() * sizeof(double);
  }
  return m;
}

Status WriteLabels(const std::vector<std::size_t>& labels,
                   const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  for (std::size_t v : labels) f << v << '\n';
  return f ? Status::OK() : Status::Internal("write failed for: " + path);
}

Result<std::vector<std::size_t>> ReadLabels(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::vector<std::size_t> labels;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    // A label line is digits with optional surrounding spaces/CR; as
    // strict as ReadMatrixCsv's cell parser. std::stoul alone would
    // accept trailing junk ("3abc" → 3) and wrap negatives ("-1" → huge
    // size_t), so the digit span is delimited by hand first.
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t digits_begin = pos;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') ++pos;
    const std::size_t digits_end = pos;
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\r')) {
      ++pos;
    }
    if (digits_begin == digits_end && pos == line.size()) continue;  // Blank.
    if (digits_begin == digits_end || pos != line.size()) {
      return Status::InvalidArgument("non-integer label '" + line +
                                     "' at line " + std::to_string(lineno) +
                                     " of " + path);
    }
    try {
      labels.push_back(
          std::stoull(line.substr(digits_begin, digits_end - digits_begin)));
    } catch (const std::exception&) {
      return Status::InvalidArgument("label out of range '" + line +
                                     "' at line " + std::to_string(lineno) +
                                     " of " + path);
    }
  }
  return labels;
}

}  // namespace io
}  // namespace rhchme
