// Matrix and label persistence (CSV text + a compact binary format).
//
// The CLI tool and the dataset loader use these to move data in and out of
// the library; CSV is for interoperability (numpy/pandas/R), the binary
// format for exact round-trips of large blocks.

#ifndef RHCHME_IO_MATRIX_IO_H_
#define RHCHME_IO_MATRIX_IO_H_

#include <string>
#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace io {

/// Writes `m` as plain CSV (no header). Overwrites `path`.
Status WriteMatrixCsv(const la::Matrix& m, const std::string& path);

/// Reads a numeric CSV with uniform row lengths. Empty lines are skipped;
/// a leading non-numeric header row is rejected with InvalidArgument.
Result<la::Matrix> ReadMatrixCsv(const std::string& path);

/// Binary round-trip format: magic "RHM1", uint64 rows/cols, row-major
/// doubles (host endianness — intended for local caching, not exchange).
Status WriteMatrixBinary(const la::Matrix& m, const std::string& path);
Result<la::Matrix> ReadMatrixBinary(const std::string& path);

/// Appends the binary payload of `m` — uint64 rows, uint64 cols, densely
/// packed row-major doubles; the WriteMatrixBinary layout without the
/// magic — to `out`. Building block for container formats that embed
/// matrices (the solver's checkpoint snapshots).
void AppendMatrixPayload(const la::Matrix& m, std::string* out);

/// Parses a matrix payload written by AppendMatrixPayload from
/// buf[*pos, size); advances *pos past it on success. Truncation and
/// implausible shapes are a clean InvalidArgument (same overflow guard as
/// ReadMatrixBinary), never UB.
Result<la::Matrix> ParseMatrixPayload(const char* buf, std::size_t size,
                                      std::size_t* pos);

/// One label per line.
Status WriteLabels(const std::vector<std::size_t>& labels,
                   const std::string& path);
Result<std::vector<std::size_t>> ReadLabels(const std::string& path);

}  // namespace io
}  // namespace rhchme

#endif  // RHCHME_IO_MATRIX_IO_H_
