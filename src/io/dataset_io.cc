#include "io/dataset_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/matrix_io.h"

namespace rhchme {
namespace io {
namespace fs = std::filesystem;

Status SaveDataset(const data::MultiTypeRelationalData& data,
                   const std::string& dir) {
  RHCHME_RETURN_IF_ERROR(data.Validate());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::InvalidArgument("cannot create directory: " + dir);

  std::ofstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest) {
    return Status::InvalidArgument("cannot write manifest in: " + dir);
  }
  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    const data::ObjectType& t = data.Type(k);
    // Names with spaces would break the manifest tokenizer.
    if (t.name.find_first_of(" \t\n") != std::string::npos) {
      return Status::InvalidArgument("type name contains whitespace: '" +
                                     t.name + "'");
    }
    manifest << t.name << ' ' << t.count << ' ' << t.clusters << '\n';
    const std::string stem =
        (fs::path(dir) / ("type" + std::to_string(k))).string();
    if (!t.features.empty()) {
      RHCHME_RETURN_IF_ERROR(
          WriteMatrixBinary(t.features, stem + "_features.bin"));
    }
    if (!t.labels.empty()) {
      RHCHME_RETURN_IF_ERROR(WriteLabels(t.labels, stem + "_labels.txt"));
    }
  }
  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    for (std::size_t l = k + 1; l < data.NumTypes(); ++l) {
      if (!data.HasRelation(k, l)) continue;
      const std::string path =
          (fs::path(dir) / ("relation_" + std::to_string(k) + "_" +
                            std::to_string(l) + ".bin"))
              .string();
      RHCHME_RETURN_IF_ERROR(WriteMatrixBinary(data.Relation(k, l), path));
    }
  }
  return Status::OK();
}

Result<data::MultiTypeRelationalData> LoadDataset(const std::string& dir) {
  std::ifstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest) return Status::NotFound("no manifest in: " + dir);

  // Manifest values are attacker-controlled on-disk input: counts beyond
  // any plausible dataset would drive huge allocations downstream, and a
  // garbage file must come back as a clean Status, never an abort.
  constexpr std::size_t kMaxManifestTypes = 256;
  constexpr std::size_t kMaxObjectsPerType = std::size_t{1} << 32;

  data::MultiTypeRelationalData data;
  std::string line;
  std::size_t k = 0;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    if (k >= kMaxManifestTypes) {
      return Status::InvalidArgument("manifest lists more than " +
                                     std::to_string(kMaxManifestTypes) +
                                     " types: " + dir)
          .WithContext(__FILE__, __LINE__);
    }
    std::istringstream ss(line);
    data::ObjectType type;
    if (!(ss >> type.name >> type.count >> type.clusters)) {
      return Status::InvalidArgument("malformed manifest line: " + line)
          .WithContext(__FILE__, __LINE__);
    }
    if (type.count == 0 || type.count > kMaxObjectsPerType ||
        type.clusters == 0 || type.clusters > type.count) {
      return Status::InvalidArgument(
                 "implausible manifest counts (count=" +
                 std::to_string(type.count) +
                 ", clusters=" + std::to_string(type.clusters) +
                 ") in line: " + line)
          .WithContext(__FILE__, __LINE__);
    }
    const std::string stem =
        (fs::path(dir) / ("type" + std::to_string(k))).string();
    if (fs::exists(stem + "_features.bin")) {
      Result<la::Matrix> features = ReadMatrixBinary(stem + "_features.bin");
      if (!features.ok()) {
        return features.status().WithContext(__FILE__, __LINE__);
      }
      type.features = std::move(features).value();
    }
    if (fs::exists(stem + "_labels.txt")) {
      Result<std::vector<std::size_t>> labels =
          ReadLabels(stem + "_labels.txt");
      if (!labels.ok()) {
        return labels.status().WithContext(__FILE__, __LINE__);
      }
      type.labels = std::move(labels).value();
    }
    data.AddType(std::move(type));
    ++k;
  }
  for (std::size_t a = 0; a < data.NumTypes(); ++a) {
    for (std::size_t b = a + 1; b < data.NumTypes(); ++b) {
      const std::string path =
          (fs::path(dir) / ("relation_" + std::to_string(a) + "_" +
                            std::to_string(b) + ".bin"))
              .string();
      if (!fs::exists(path)) continue;
      Result<la::Matrix> block = ReadMatrixBinary(path);
      if (!block.ok()) return block.status().WithContext(__FILE__, __LINE__);
      RHCHME_RETURN_IF_ERROR_CTX(
          data.SetRelation(a, b, std::move(block).value()));
    }
  }
  RHCHME_RETURN_IF_ERROR_CTX(data.Validate());
  return data;
}

}  // namespace io
}  // namespace rhchme
