// Directory-based persistence for MultiTypeRelationalData.
//
// Layout (all inside one directory):
//   manifest.txt                    one line per type: "name count clusters"
//   type<k>_features.bin            optional feature matrix
//   type<k>_labels.txt              optional ground truth
//   relation_<k>_<l>.bin            one per stored pair (k < l)
//
// Used by the CLI to hand corpora between `generate` and `run` steps.

#ifndef RHCHME_IO_DATASET_IO_H_
#define RHCHME_IO_DATASET_IO_H_

#include <string>

#include "data/multitype_data.h"
#include "util/status.h"

namespace rhchme {
namespace io {

/// Writes `data` into `dir` (created if missing).
Status SaveDataset(const data::MultiTypeRelationalData& data,
                   const std::string& dir);

/// Loads a dataset previously written by SaveDataset.
Result<data::MultiTypeRelationalData> LoadDataset(const std::string& dir);

}  // namespace io
}  // namespace rhchme

#endif  // RHCHME_IO_DATASET_IO_H_
