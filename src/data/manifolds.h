// Manifold / subspace samplers for tests and the Fig. 1 demo.
//
// The paper motivates subspace learning with two intersecting circles
// (Fig. 1): points near the intersection share pNN neighbours across
// manifolds, while subspace membership separates them. These samplers
// recreate that scene and the linear-subspace setting the reconstruction
// methods assume.

#ifndef RHCHME_DATA_MANIFOLDS_H_
#define RHCHME_DATA_MANIFOLDS_H_

#include <vector>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace data {

/// Labelled point set sampled from a union of manifolds.
struct ManifoldSample {
  la::Matrix points;                 ///< n x d, one point per row.
  std::vector<std::size_t> labels;   ///< Manifold id per point.
};

struct TwoCirclesOptions {
  std::size_t points_per_circle = 100;
  double radius = 1.0;
  /// Centre distance; < 2*radius makes the circles intersect (Fig. 1).
  double center_distance = 1.2;
  double noise_sigma = 0.02;         ///< Radial jitter.
  std::size_t ambient_noise = 0;     ///< Extra uniform outliers (label = 2).
  uint64_t seed = 1;
};

/// Two (possibly intersecting) circles in R², plus optional outliers.
ManifoldSample SampleTwoCircles(const TwoCirclesOptions& opts);

struct UnionOfSubspacesOptions {
  /// Intrinsic dimension of each subspace; length = number of subspaces.
  std::vector<std::size_t> subspace_dims = {2, 2};
  std::size_t ambient_dim = 10;
  std::size_t points_per_subspace = 60;
  double noise_sigma = 0.01;
  /// When true, subspace coefficients are nonnegative (documents are
  /// nonnegative mixtures of topics).
  bool nonnegative = true;
  uint64_t seed = 2;
};

/// Points drawn from a union of random linear subspaces — the setting in
/// which the self-expressive model X = X·W is exact.
Result<ManifoldSample> SampleUnionOfSubspaces(
    const UnionOfSubspacesOptions& opts);

}  // namespace data
}  // namespace rhchme

#endif  // RHCHME_DATA_MANIFOLDS_H_
