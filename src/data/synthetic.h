// Synthetic multi-type relational data.
//
// The paper evaluates on 20Newsgroups and Reuters-21578 subsets enriched
// with Wikipedia concepts (documents, terms, concepts). Those corpora are
// not available offline, so this module generates statistically analogous
// data (DESIGN.md §3):
//
//  * documents of a class are drawn from a low-rank mixture of topic
//    term-distributions — classes are low-dimensional subspaces, which is
//    exactly the manifold assumption RHCHME exploits;
//  * concepts arise from a sparse term→concept map, mimicking the
//    Wikipedia mapping of [12];
//  * the three relationship blocks mirror §IV.A: doc–term tf-idf,
//    doc–concept mapped tf-idf, term–concept document co-occurrence counts;
//  * presets reproduce the class-count / balance shape of D1–D4 at reduced
//    scale (Table II), and rows can be corrupted sample-wise to exercise
//    the L2,1 error matrix.
//
// A second, fully generic generator (BlockWorld) produces K-type data with
// planted co-cluster structure for K != 3 demos and fast tests.

#ifndef RHCHME_DATA_SYNTHETIC_H_
#define RHCHME_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/corruption.h"
#include "data/multitype_data.h"
#include "data/tfidf.h"
#include "util/status.h"

namespace rhchme {
namespace data {

struct SyntheticCorpusOptions {
  /// Class sizes; length = number of classes. Balanced for D1'/D2',
  /// skewed for D3'/D4'.
  std::vector<std::size_t> docs_per_class;
  std::size_t n_terms = 400;
  std::size_t n_concepts = 330;
  /// Topics per class = rank of the class subspace in term space.
  std::size_t topics_per_class = 3;
  /// Terms that are (mostly) exclusive to one topic.
  std::size_t core_terms_per_topic = 12;
  /// Mean token count per document (Poisson).
  double doc_length_mean = 120.0;
  /// Probability mass routed to the shared background topic — class
  /// overlap / noise level.
  double background_noise = 0.15;
  /// Fraction of each topic's core weight that bleeds onto other
  /// classes' core terms — models genuinely related classes
  /// (rec.autos vs rec.motorcycles, the sci.* family, ...). 0 gives
  /// fully separable classes; realistic corpora sit around 0.3–0.5.
  double class_overlap = 0.35;
  /// Terms linked to each concept in the term→concept map.
  std::size_t terms_per_concept = 3;
  /// Probability that a concept's linked term is drawn from the concept's
  /// own class vocabulary (the Wikipedia mapping is topically coherent:
  /// "Autos" links to car terms). The remainder is drawn uniformly —
  /// mapping ambiguity. 0 gives a class-blind map.
  double concept_map_alignment = 0.7;
  /// Weight of the mapped-term component of the doc–concept block
  /// (concepts triggered by their linked terms appearing in the doc).
  double concept_map_weight = 0.3;
  /// Mean number of DIRECT concept hits per document on concepts owned
  /// by the document's class — Wikipedia concepts add semantic signal
  /// beyond the raw terms ([12, 13]); this is that independent channel.
  double concept_direct_hits = 6.0;
  /// Mean number of spurious concept hits per document (uniform over all
  /// concepts) — the ambiguity of the term→article mapping.
  double concept_noise_hits = 3.0;
  /// Fraction of document rows whose R-blocks are corrupted (sample-wise,
  /// matching the paper's L2,1 noise model). 0 disables corruption.
  /// Drawn from its own DeriveStreamSeed stream of `seed`, so the
  /// corrupted-row set depends only on the seed and the fraction — not on
  /// how many draws the clean generation consumed before it.
  double corrupted_doc_fraction = 0.0;
  /// Spike size relative to the block's mean positive entry.
  double corruption_magnitude = 3.0;
  /// Corrupted-entry payload: spikes (paper model) or NaN/Inf plants (the
  /// fault-tolerance scenario axis). Passed through to CorruptRows.
  RowCorruptionMode corruption_mode = RowCorruptionMode::kSpike;
  /// Probability that an entry of each relation block is zeroed after
  /// tf-idf weighting (missing observations — the sparsity axis of the
  /// robustness scenario grid). Applied before corruption and block
  /// balancing from its own DeriveStreamSeed stream. 0 disables.
  double relation_dropout = 0.0;
  /// Term/concept cluster counts; 0 means "same as the number of classes"
  /// (the paper sweeps m/10..m/100; that is exposed, not forced).
  std::size_t term_clusters = 0;
  std::size_t concept_clusters = 0;
  /// Weighting of the doc–term / doc–concept blocks. Raw (un-normalised)
  /// tf-idf by default: the paper's lambda/beta ranges (Fig. 2) assume
  /// that magnitude — L2-normalised rows shrink ||R||²_F by ~100x and the
  /// regularisers then dominate.
  TfIdfOptions tfidf{.sublinear_tf = true, .smooth_idf = true,
                     .l2_normalize = false};
  /// Scale the doc–concept and term–concept blocks so their mean squared
  /// entry matches the doc–term block. The joint squared loss weights
  /// every entry of R equally, so an unbalanced block is effectively
  /// ignored (the original SRC introduces nu_ij weights for exactly this
  /// reason — balancing at generation time keeps all solvers comparable).
  bool balance_blocks = true;
  uint64_t seed = 42;

  Status Validate() const;
};

/// Presets mirroring Table II at reduced scale (suffix ' = scaled analogue).
SyntheticCorpusOptions Multi5Preset();             ///< D1': 5 balanced classes.
SyntheticCorpusOptions Multi10Preset();            ///< D2': 10 balanced classes.
SyntheticCorpusOptions ReutersMin20Max200Preset(); ///< D3': 25 skewed classes.
SyntheticCorpusOptions ReutersTop10Preset();       ///< D4': 10 large skewed.

/// Preset lookup by the paper's dataset ids: "D1", "D2", "D3", "D4".
Result<SyntheticCorpusOptions> PresetByName(const std::string& name);

/// Generates a 3-type corpus: type 0 documents, type 1 terms,
/// type 2 concepts, with relations (0,1) doc–term tf-idf, (0,2)
/// doc–concept tf-idf, (1,2) term–concept co-occurrence counts, ground
/// truth labels for all three types, and per-type features.
Result<MultiTypeRelationalData> GenerateSyntheticCorpus(
    const SyntheticCorpusOptions& opts);

// ---- Generic K-type generator --------------------------------------------

struct BlockWorldOptions {
  /// Object count per type (K = size). Example: pages, terms, queries,
  /// users for the paper's introductory web scenario.
  std::vector<std::size_t> objects_per_type;
  /// Shared latent class count; every type's objects are split over these.
  std::size_t n_classes = 3;
  /// Mean co-occurrence strength for objects of the same class.
  double within_strength = 1.0;
  /// Mean strength across classes (higher = harder problem).
  double between_strength = 0.15;
  /// Multiplicative noise spread.
  double noise = 0.25;
  /// Zero out entries with this probability (sparsity of R).
  double dropout = 0.3;
  /// Fraction of type-0 objects whose relation rows receive sample-wise
  /// spikes (the corruption axis of the robustness scenario grid, same
  /// L2,1 noise model as the corpus generator). Applied before features
  /// are assembled, from its own DeriveStreamSeed stream. 0 disables.
  double corrupted_fraction = 0.0;
  /// Spike size relative to each block's mean positive entry.
  double corruption_magnitude = 3.0;
  /// Corrupted-entry payload: spikes or NaN/Inf plants (see
  /// RowCorruptionMode).
  RowCorruptionMode corruption_mode = RowCorruptionMode::kSpike;
  uint64_t seed = 7;

  Status Validate() const;
};

/// K-type data with a planted joint co-cluster structure: R_kl(i,j) is
/// large when objects i and j share a latent class. Labels are attached to
/// every type; features are each object's concatenated relation rows.
Result<MultiTypeRelationalData> GenerateBlockWorld(
    const BlockWorldOptions& opts);

}  // namespace data
}  // namespace rhchme

#endif  // RHCHME_DATA_SYNTHETIC_H_
