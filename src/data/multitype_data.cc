#include "data/multitype_data.h"

#include <string>

namespace rhchme {
namespace data {

std::size_t MultiTypeRelationalData::AddType(ObjectType type) {
  types_.push_back(std::move(type));
  return types_.size() - 1;
}

Status MultiTypeRelationalData::SetRelation(std::size_t k, std::size_t l,
                                            la::Matrix r) {
  if (k >= types_.size() || l >= types_.size()) {
    return Status::InvalidArgument("SetRelation: type index out of range");
  }
  if (k == l) {
    return Status::InvalidArgument(
        "SetRelation: diagonal blocks of R are zero by definition; intra-type "
        "relationships are learned, not provided");
  }
  if (r.rows() != types_[k].count || r.cols() != types_[l].count) {
    return Status::InvalidArgument("SetRelation: block shape mismatch");
  }
  if (k < l) {
    relations_[{k, l}] = std::move(r);
  } else {
    relations_[{l, k}] = r.Transposed();
  }
  return Status::OK();
}

const ObjectType& MultiTypeRelationalData::Type(std::size_t k) const {
  RHCHME_CHECK(k < types_.size(), "type index out of range");
  return types_[k];
}

ObjectType& MultiTypeRelationalData::MutableType(std::size_t k) {
  RHCHME_CHECK(k < types_.size(), "type index out of range");
  return types_[k];
}

bool MultiTypeRelationalData::HasRelation(std::size_t k, std::size_t l) const {
  if (k == l) return false;
  return relations_.count({std::min(k, l), std::max(k, l)}) > 0;
}

const la::Matrix& MultiTypeRelationalData::Relation(std::size_t k,
                                                    std::size_t l) const {
  RHCHME_CHECK(HasRelation(k, l), "relation not set");
  RHCHME_CHECK(k < l,
               "Relation(k, l) requires the stored orientation k < l; use "
               "RelationTransposed for the reversed block");
  return relations_.at({k, l});
}

la::Matrix MultiTypeRelationalData::RelationTransposed(std::size_t k,
                                                       std::size_t l) const {
  RHCHME_CHECK(HasRelation(k, l), "relation not set");
  RHCHME_CHECK(k > l, "RelationTransposed(k, l) requires k > l; the stored "
                      "orientation is available by reference via Relation");
  return relations_.at({l, k}).Transposed();
}

std::size_t MultiTypeRelationalData::TotalObjects() const {
  std::size_t n = 0;
  for (const auto& t : types_) n += t.count;
  return n;
}

std::size_t MultiTypeRelationalData::TotalClusters() const {
  std::size_t c = 0;
  for (const auto& t : types_) c += t.clusters;
  return c;
}

std::size_t MultiTypeRelationalData::TypeOffset(std::size_t k) const {
  RHCHME_CHECK(k < types_.size(), "type index out of range");
  std::size_t off = 0;
  for (std::size_t i = 0; i < k; ++i) off += types_[i].count;
  return off;
}

std::size_t MultiTypeRelationalData::ClusterOffset(std::size_t k) const {
  RHCHME_CHECK(k < types_.size(), "type index out of range");
  std::size_t off = 0;
  for (std::size_t i = 0; i < k; ++i) off += types_[i].clusters;
  return off;
}

la::Matrix MultiTypeRelationalData::BuildJointR() const {
  const std::size_t n = TotalObjects();
  la::Matrix r(n, n);
  for (const auto& [key, block] : relations_) {
    const std::size_t rk = TypeOffset(key.first);
    const std::size_t cl = TypeOffset(key.second);
    r.SetBlock(rk, cl, block);
    r.SetBlock(cl, rk, block.Transposed());
  }
  return r;
}

la::SparseMatrix MultiTypeRelationalData::BuildJointRSparse() const {
  const std::size_t n = TotalObjects();
  std::vector<la::Triplet> trips;
  for (const auto& [key, block] : relations_) {
    const std::size_t rk = TypeOffset(key.first);
    const std::size_t cl = TypeOffset(key.second);
    for (std::size_t i = 0; i < block.rows(); ++i) {
      for (std::size_t j = 0; j < block.cols(); ++j) {
        const double v = block(i, j);
        if (v != 0.0) {
          trips.push_back({rk + i, cl + j, v});
          trips.push_back({cl + j, rk + i, v});
        }
      }
    }
  }
  return la::SparseMatrix::FromTriplets(n, n, std::move(trips));
}

double MultiTypeRelationalData::JointRDensity() const {
  const std::size_t n = TotalObjects();
  if (n == 0) return 0.0;
  std::size_t nnz = 0;
  for (const auto& [key, block] : relations_) {
    for (std::size_t i = 0; i < block.rows(); ++i) {
      const double* row = block.row_ptr(i);
      for (std::size_t j = 0; j < block.cols(); ++j) {
        if (row[j] != 0.0) ++nnz;
      }
    }
  }
  // Each stored entry appears in both the (k, l) and the mirrored (l, k)
  // block of the joint matrix.
  return static_cast<double>(2 * nnz) /
         (static_cast<double>(n) * static_cast<double>(n));
}

std::vector<std::size_t> MultiTypeRelationalData::JointLabels() const {
  std::vector<std::size_t> joint;
  for (const auto& t : types_) {
    if (t.labels.size() != t.count) return {};
    joint.insert(joint.end(), t.labels.begin(), t.labels.end());
  }
  return joint;
}

Status MultiTypeRelationalData::Validate() const {
  if (types_.empty()) {
    return Status::InvalidArgument("data has no object types");
  }
  for (std::size_t k = 0; k < types_.size(); ++k) {
    const auto& t = types_[k];
    if (t.count == 0) {
      return Status::InvalidArgument("type '" + t.name + "' has no objects");
    }
    if (t.clusters == 0 || t.clusters > t.count) {
      return Status::InvalidArgument("type '" + t.name +
                                     "' has invalid cluster count");
    }
    if (!t.features.empty() && t.features.rows() != t.count) {
      return Status::InvalidArgument("type '" + t.name +
                                     "' feature rows != object count");
    }
    if (!t.labels.empty() && t.labels.size() != t.count) {
      return Status::InvalidArgument("type '" + t.name +
                                     "' label count != object count");
    }
    bool has_any = false;
    for (std::size_t l = 0; l < types_.size() && !has_any; ++l) {
      has_any = HasRelation(k, l);
    }
    if (!has_any) {
      return Status::InvalidArgument(
          "type '" + t.name +
          "' participates in no inter-type relation; it cannot be co-clustered");
    }
  }
  return Status::OK();
}

}  // namespace data
}  // namespace rhchme
