#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/corruption.h"
#include "data/tfidf.h"
#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace data {

Status SyntheticCorpusOptions::Validate() const {
  if (docs_per_class.empty()) {
    return Status::InvalidArgument("need at least one class");
  }
  for (std::size_t s : docs_per_class) {
    if (s == 0) return Status::InvalidArgument("empty class");
  }
  if (n_terms < docs_per_class.size() * topics_per_class) {
    return Status::InvalidArgument("too few terms for the topic structure");
  }
  if (n_concepts == 0 || terms_per_concept == 0) {
    return Status::InvalidArgument("concepts misconfigured");
  }
  if (topics_per_class == 0 || core_terms_per_topic == 0) {
    return Status::InvalidArgument("topics misconfigured");
  }
  if (doc_length_mean <= 0.0) {
    return Status::InvalidArgument("doc_length_mean must be positive");
  }
  if (background_noise < 0.0 || background_noise >= 1.0) {
    return Status::InvalidArgument("background_noise must be in [0,1)");
  }
  if (corrupted_doc_fraction < 0.0 || corrupted_doc_fraction > 1.0) {
    return Status::InvalidArgument("corrupted_doc_fraction must be in [0,1]");
  }
  if (corruption_magnitude < 0.0) {
    return Status::InvalidArgument("corruption_magnitude must be >= 0");
  }
  if (relation_dropout < 0.0 || relation_dropout >= 1.0) {
    return Status::InvalidArgument("relation_dropout must be in [0,1)");
  }
  return Status::OK();
}

namespace {

// Noise-injection sub-streams of the generator seed. Dedicated streams
// keep the corrupted-row/dropped-entry draws independent of how many
// draws the clean generation consumed, so the same seed selects the same
// corrupted rows no matter which unrelated options change.
constexpr uint64_t kCorruptionStream = 0xc042u;
constexpr uint64_t kDropoutStream = 0xd409u;

/// Difficulty shared by the D1'–D4' presets, calibrated so the absolute
/// FScore/NMI levels land in the paper's reported range (Tables III/IV)
/// and the method ordering can differentiate: related classes share half
/// their core vocabulary, documents are short, the concept channel is
/// independent but noisy, and a small fraction of documents is corrupted
/// (standing in for the natural noise of the real corpora, and
/// exercising the L2,1 error matrix).
void ApplyPaperDifficulty(SyntheticCorpusOptions* o) {
  o->class_overlap = 0.5;
  o->background_noise = 0.25;
  o->doc_length_mean = 70.0;
  // The concept view is complementary but individually weak (ambiguous
  // mapping, sparse direct hits) — on the real corpora DR-C is the
  // weakest single view (Table III).
  o->concept_direct_hits = 3.0;
  o->concept_noise_hits = 6.0;
  o->concept_map_alignment = 0.45;
  o->corrupted_doc_fraction = 0.05;
}

}  // namespace

SyntheticCorpusOptions Multi5Preset() {
  SyntheticCorpusOptions o;
  o.docs_per_class.assign(5, 50);  // Paper: 5 x 100; scaled /2.
  o.n_terms = 400;                 // Paper: 2000.
  o.n_concepts = 330;              // Paper: 1667.
  ApplyPaperDifficulty(&o);
  // Multi5 is the paper's easiest corpus (Table III: all methods peak
  // here); with only 5 classes the overlap bleed concentrates, so dial
  // it back to keep the term view at the same relative difficulty.
  o.class_overlap = 0.4;
  o.seed = 101;
  return o;
}

SyntheticCorpusOptions Multi10Preset() {
  SyntheticCorpusOptions o;
  o.docs_per_class.assign(10, 25);  // Paper: 10 x 50; scaled /2.
  o.n_terms = 400;                  // Paper: 2000.
  o.n_concepts = 330;               // Paper: 1658.
  ApplyPaperDifficulty(&o);
  o.seed = 102;
  return o;
}

SyntheticCorpusOptions ReutersMin20Max200Preset() {
  SyntheticCorpusOptions o;
  // Paper: 25 classes, 20..200 docs each, 1413 docs total. Scaled /5:
  // sizes between 4 and 40 with the same spread; 283 docs total.
  o.docs_per_class = {4,  4,  5,  5,  6,  6,  7,  8,  8,  9,  10, 11, 12,
                      13, 14, 15, 16, 17, 18, 20, 22, 25, 28, 32, 40};
  o.n_terms = 480;     // Paper: 2904.
  o.n_concepts = 400;  // Paper: 2450.
  o.topics_per_class = 2;  // Keep term budget: 25 classes x 2 topics.
  o.core_terms_per_topic = 8;
  ApplyPaperDifficulty(&o);
  o.seed = 103;
  return o;
}

SyntheticCorpusOptions ReutersTop10Preset() {
  SyntheticCorpusOptions o;
  // Paper: the 10 largest Reuters classes (8023 docs, heavily skewed).
  // Scaled to keep the skew: 660 docs total.
  o.docs_per_class = {160, 120, 90, 70, 55, 45, 40, 35, 25, 20};
  o.n_terms = 520;     // Paper: 5146.
  o.n_concepts = 420;  // Paper: 4109.
  ApplyPaperDifficulty(&o);
  o.seed = 104;
  return o;
}

Result<SyntheticCorpusOptions> PresetByName(const std::string& name) {
  if (name == "D1" || name == "Multi5") return Multi5Preset();
  if (name == "D2" || name == "Multi10") return Multi10Preset();
  if (name == "D3" || name == "R-Min20Max200") {
    return ReutersMin20Max200Preset();
  }
  if (name == "D4" || name == "R-Top10") return ReutersTop10Preset();
  return Status::NotFound("unknown dataset preset: " + name);
}

namespace {

/// Topic model over terms: per-topic categorical weights.
struct TopicModel {
  /// weights[t] is the unnormalised term distribution of topic t; topics
  /// are grouped per class (class c owns topics [c*r, (c+1)*r)).
  std::vector<std::vector<double>> weights;
  std::vector<double> background;
  /// Owning class of each term (ground truth for term clustering).
  std::vector<std::size_t> term_class;
};

TopicModel BuildTopics(const SyntheticCorpusOptions& opts, Rng* rng) {
  const std::size_t n_classes = opts.docs_per_class.size();
  const std::size_t n_topics = n_classes * opts.topics_per_class;
  TopicModel model;
  model.weights.assign(n_topics, std::vector<double>(opts.n_terms, 0.0));
  model.background.assign(opts.n_terms, 1.0);
  model.term_class.assign(opts.n_terms, 0);

  // Assign core terms: shuffle the vocabulary, deal it out to topics.
  std::vector<std::size_t> pool(opts.n_terms);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  rng->Shuffle(&pool);
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < n_topics; ++t) {
    const std::size_t cls = t / opts.topics_per_class;
    for (std::size_t c = 0; c < opts.core_terms_per_topic; ++c) {
      const std::size_t term = pool[cursor % pool.size()];
      cursor++;
      // Core term: dominant weight in this topic, jittered.
      model.weights[t][term] += 1.0 + rng->Uniform();
      model.term_class[term] = cls;
    }
  }
  // Class overlap: each topic places `class_overlap` of its probability
  // mass on core terms dealt to OTHER topics (related classes share
  // vocabulary — rec.autos vs rec.motorcycles). The bleed lands on
  // discriminative words, which is what actually confuses clustering.
  if (opts.class_overlap > 0.0 && cursor > 0) {
    const std::size_t dealt = std::min<std::size_t>(cursor, pool.size());
    const std::size_t bleed_terms = 2 * opts.core_terms_per_topic;
    const double ratio =
        opts.class_overlap / (1.0 - std::min(opts.class_overlap, 0.8));
    for (std::size_t t = 0; t < n_topics; ++t) {
      double self_mass = 0.0;
      for (double v : model.weights[t]) self_mass += v;
      // Raw bleed weights, then scale them to ratio * self_mass total.
      std::vector<std::pair<std::size_t, double>> bleed;
      bleed.reserve(bleed_terms);
      double bleed_mass = 0.0;
      for (std::size_t b = 0; b < bleed_terms; ++b) {
        const std::size_t term = pool[rng->UniformInt(dealt)];
        const double v = 0.5 + rng->Uniform();
        bleed.push_back({term, v});
        bleed_mass += v;
      }
      const double scale =
          bleed_mass > 0.0 ? ratio * self_mass / bleed_mass : 0.0;
      for (const auto& [term, v] : bleed) {
        model.weights[t][term] += scale * v;
      }
    }
  }
  // Every term keeps a small floor in every topic so distributions
  // overlap (documents share vocabulary across classes).
  const double floor = 0.05 / static_cast<double>(opts.n_terms);
  for (auto& w : model.weights) {
    for (double& v : w) v += floor;
  }
  // Terms never dealt as core terms: spread their class labels uniformly
  // (they are background words; any label is equally (in)correct).
  for (std::size_t term = cursor >= pool.size() ? 0 : cursor; term < pool.size();
       ++term) {
    model.term_class[pool[term]] = rng->UniformInt(n_classes);
  }
  return model;
}

}  // namespace

Result<MultiTypeRelationalData> GenerateSyntheticCorpus(
    const SyntheticCorpusOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  Rng rng(opts.seed);
  const std::size_t n_classes = opts.docs_per_class.size();
  const std::size_t n_docs = std::accumulate(opts.docs_per_class.begin(),
                                             opts.docs_per_class.end(),
                                             std::size_t{0});
  TopicModel topics = BuildTopics(opts, &rng);

  // ---- Documents: counts from the class's topic mixture -------------------
  la::Matrix doc_term_counts(n_docs, opts.n_terms);
  std::vector<std::size_t> doc_labels(n_docs);
  std::size_t doc = 0;
  for (std::size_t cls = 0; cls < n_classes; ++cls) {
    for (std::size_t d = 0; d < opts.docs_per_class[cls]; ++d, ++doc) {
      doc_labels[doc] = cls;
      // Mixture over the class's topics (random convex weights) — the
      // document lives in the class's rank-r subspace.
      std::vector<double> mix(opts.topics_per_class);
      double mix_sum = 0.0;
      for (double& m : mix) {
        m = 0.1 + rng.Uniform();
        mix_sum += m;
      }
      for (double& m : mix) m /= mix_sum;

      const int tokens = std::max(8, rng.Poisson(opts.doc_length_mean));
      for (int tok = 0; tok < tokens; ++tok) {
        std::size_t term;
        if (rng.Uniform() < opts.background_noise) {
          term = rng.Categorical(topics.background);
        } else {
          const std::size_t local = rng.Categorical(mix);
          const std::size_t topic = cls * opts.topics_per_class + local;
          term = rng.Categorical(topics.weights[topic]);
        }
        doc_term_counts(doc, term) += 1.0;
      }
    }
  }

  // ---- Concepts: Wikipedia-mapping stand-in --------------------------------
  // Each concept owns a class (concepts are class-indicative Wikipedia
  // articles) and links terms_per_concept random terms. The doc–concept
  // block combines three channels mirroring [12, 13]:
  //   1. direct hits on the document's class concepts (independent
  //      semantic signal beyond the raw terms),
  //   2. mapped-term mass (concepts triggered by their linked terms),
  //   3. spurious hits (mapping ambiguity).
  std::vector<std::size_t> concept_owner(opts.n_concepts);
  for (std::size_t c = 0; c < opts.n_concepts; ++c) {
    concept_owner[c] = c % n_classes;
  }
  rng.Shuffle(&concept_owner);
  std::vector<std::vector<std::size_t>> class_concepts(n_classes);
  for (std::size_t c = 0; c < opts.n_concepts; ++c) {
    class_concepts[concept_owner[c]].push_back(c);
  }

  la::Matrix term_concept_map(opts.n_terms, opts.n_concepts);
  std::vector<std::vector<std::size_t>> class_terms(n_classes);
  for (std::size_t t = 0; t < opts.n_terms; ++t) {
    class_terms[topics.term_class[t]].push_back(t);
  }
  std::vector<std::size_t> perm(opts.n_terms);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.Shuffle(&perm);
  std::size_t map_cursor = 0;
  for (std::size_t c = 0; c < opts.n_concepts; ++c) {
    const auto& own_terms = class_terms[concept_owner[c]];
    for (std::size_t k = 0; k < opts.terms_per_concept; ++k) {
      std::size_t term;
      if (!own_terms.empty() &&
          rng.Uniform() < opts.concept_map_alignment) {
        term = own_terms[rng.UniformInt(own_terms.size())];
      } else {
        term = perm[map_cursor % perm.size()];
        ++map_cursor;
      }
      // Semantic-relatedness weight in (0.5, 1].
      term_concept_map(term, c) = 0.5 + 0.5 * rng.Uniform();
    }
  }

  la::Matrix doc_concept_counts =
      la::Multiply(doc_term_counts, term_concept_map);
  if (opts.concept_map_weight != 1.0) {
    doc_concept_counts.Scale(opts.concept_map_weight);
  }
  for (std::size_t i = 0; i < n_docs; ++i) {
    const auto& own = class_concepts[doc_labels[i]];
    if (!own.empty()) {
      const int hits = rng.Poisson(opts.concept_direct_hits);
      for (int h = 0; h < hits; ++h) {
        doc_concept_counts(i, own[rng.UniformInt(own.size())]) += 1.0;
      }
    }
    const int noise_hits = rng.Poisson(opts.concept_noise_hits);
    for (int h = 0; h < noise_hits; ++h) {
      doc_concept_counts(i, rng.UniformInt(opts.n_concepts)) += 1.0;
    }
  }

  // Term–concept co-occurrence: number of documents containing both
  // (binary co-presence, §IV.A).
  la::Matrix term_bin = doc_term_counts;
  term_bin.Apply([](double v) { return v > 0.0 ? 1.0 : 0.0; });
  la::Matrix concept_bin = doc_concept_counts;
  concept_bin.Apply([](double v) { return v > 0.75 ? 1.0 : 0.0; });
  la::Matrix term_concept_counts = la::MultiplyTN(term_bin, concept_bin);

  // ---- tf-idf blocks -------------------------------------------------------
  la::Matrix doc_term = TfIdf(doc_term_counts, opts.tfidf);
  la::Matrix doc_concept = TfIdf(doc_concept_counts, opts.tfidf);

  // ---- Relation sparsification (missing observations) ---------------------
  if (opts.relation_dropout > 0.0) {
    Rng drop_rng = StreamRng(opts.seed, kDropoutStream);
    DropEntries(&doc_term, opts.relation_dropout, &drop_rng);
    DropEntries(&doc_concept, opts.relation_dropout, &drop_rng);
    DropEntries(&term_concept_counts, opts.relation_dropout, &drop_rng);
  }

  // ---- Sample-wise corruption (exercises the L2,1 error matrix) -----------
  if (opts.corrupted_doc_fraction > 0.0) {
    RowCorruptionOptions c;
    c.row_fraction = opts.corrupted_doc_fraction;
    c.magnitude = opts.corruption_magnitude;
    c.mode = opts.corruption_mode;
    Rng corrupt_rng = StreamRng(opts.seed, kCorruptionStream);
    CorruptRows(&doc_term, c, &corrupt_rng);
    CorruptRows(&doc_concept, c, &corrupt_rng);
  }

  // ---- Concept labels: the owning class is the ground truth ---------------
  const std::vector<std::size_t>& concept_labels = concept_owner;

  // ---- Block balancing ------------------------------------------------------
  // The joint squared loss weights every entry of R equally; bring the
  // doc–concept and term–concept blocks to the doc–term block's mean
  // squared entry so no view is silently ignored (cf. SRC's nu_ij).
  if (opts.balance_blocks) {
    const double target =
        doc_term.FrobeniusNormSquared() / static_cast<double>(doc_term.size());
    auto balance = [target](la::Matrix* block) {
      const double ms = block->FrobeniusNormSquared() /
                        static_cast<double>(block->size());
      if (ms > 0.0) block->Scale(std::sqrt(target / ms));
    };
    balance(&doc_concept);
    balance(&term_concept_counts);
  } else {
    // Legacy scaling: cap the count block at the tf-idf blocks' max.
    const double max_entry = term_concept_counts.MaxAbs();
    const double target = std::max(doc_term.MaxAbs(), 1.0);
    if (max_entry > 0.0) term_concept_counts.Scale(target / max_entry);
  }

  // ---- Assemble ------------------------------------------------------------
  // Features follow the paper's representation: documents by their term
  // vectors, terms and concepts by their document vectors (§IV.A).
  MultiTypeRelationalData data;
  const std::size_t ct =
      opts.term_clusters == 0 ? n_classes : opts.term_clusters;
  const std::size_t cc =
      opts.concept_clusters == 0 ? n_classes : opts.concept_clusters;
  data.AddType({"documents", n_docs, n_classes, doc_term, doc_labels});
  data.AddType(
      {"terms", opts.n_terms, ct, doc_term.Transposed(), topics.term_class});
  data.AddType({"concepts", opts.n_concepts, cc, doc_concept.Transposed(),
                concept_labels});
  RHCHME_RETURN_IF_ERROR(data.SetRelation(0, 1, doc_term));
  RHCHME_RETURN_IF_ERROR(data.SetRelation(0, 2, doc_concept));
  RHCHME_RETURN_IF_ERROR(data.SetRelation(1, 2, term_concept_counts));
  RHCHME_RETURN_IF_ERROR(data.Validate());
  return data;
}

// ---- BlockWorld ------------------------------------------------------------

Status BlockWorldOptions::Validate() const {
  if (objects_per_type.size() < 2) {
    return Status::InvalidArgument("BlockWorld needs at least two types");
  }
  if (n_classes == 0) return Status::InvalidArgument("n_classes must be >= 1");
  for (std::size_t n : objects_per_type) {
    if (n < n_classes) {
      return Status::InvalidArgument("each type needs >= n_classes objects");
    }
  }
  if (within_strength <= between_strength) {
    return Status::InvalidArgument(
        "within_strength must exceed between_strength");
  }
  if (dropout < 0.0 || dropout >= 1.0) {
    return Status::InvalidArgument("dropout must be in [0,1)");
  }
  if (corrupted_fraction < 0.0 || corrupted_fraction > 1.0) {
    return Status::InvalidArgument("corrupted_fraction must be in [0,1]");
  }
  if (corruption_magnitude < 0.0) {
    return Status::InvalidArgument("corruption_magnitude must be >= 0");
  }
  return Status::OK();
}

Result<MultiTypeRelationalData> GenerateBlockWorld(
    const BlockWorldOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  Rng rng(opts.seed);
  const std::size_t types = opts.objects_per_type.size();

  // Balanced class labels per type, shuffled.
  std::vector<std::vector<std::size_t>> labels(types);
  for (std::size_t k = 0; k < types; ++k) {
    labels[k].resize(opts.objects_per_type[k]);
    for (std::size_t i = 0; i < labels[k].size(); ++i) {
      labels[k][i] = i % opts.n_classes;
    }
    rng.Shuffle(&labels[k]);
  }

  // Relationship blocks for every pair.
  std::vector<std::vector<la::Matrix>> blocks(types,
                                              std::vector<la::Matrix>(types));
  for (std::size_t k = 0; k < types; ++k) {
    for (std::size_t l = k + 1; l < types; ++l) {
      la::Matrix r(opts.objects_per_type[k], opts.objects_per_type[l]);
      for (std::size_t i = 0; i < r.rows(); ++i) {
        for (std::size_t j = 0; j < r.cols(); ++j) {
          if (rng.Uniform() < opts.dropout) continue;
          const double base = labels[k][i] == labels[l][j]
                                  ? opts.within_strength
                                  : opts.between_strength;
          double v = base * (1.0 + opts.noise * rng.Normal());
          r(i, j) = v > 0.0 ? v : 0.0;
        }
      }
      blocks[k][l] = std::move(r);
    }
  }

  // Sample-wise corruption of type-0 objects, before features are
  // assembled so the corrupted blocks and the derived features agree.
  if (opts.corrupted_fraction > 0.0) {
    RowCorruptionOptions c;
    c.row_fraction = opts.corrupted_fraction;
    c.magnitude = opts.corruption_magnitude;
    c.mode = opts.corruption_mode;
    Rng corrupt_rng = StreamRng(opts.seed, kCorruptionStream);
    for (std::size_t l = 1; l < types; ++l) {
      CorruptRows(&blocks[0][l], c, &corrupt_rng);
    }
  }

  MultiTypeRelationalData data;
  static const char* kNames[] = {"pages", "terms", "queries", "users",
                                 "type4", "type5", "type6", "type7"};
  for (std::size_t k = 0; k < types; ++k) {
    // Features: the object's concatenated relation rows (how it co-occurs
    // with every other type) — the standard representation when no
    // explicit intra-type features exist.
    std::size_t dim = 0;
    for (std::size_t l = 0; l < types; ++l) {
      if (l != k) dim += opts.objects_per_type[l];
    }
    la::Matrix feats(opts.objects_per_type[k], dim);
    std::size_t col = 0;
    for (std::size_t l = 0; l < types; ++l) {
      if (l == k) continue;
      const la::Matrix block =
          k < l ? blocks[k][l] : blocks[l][k].Transposed();
      feats.SetBlock(0, col, block);
      col += opts.objects_per_type[l];
    }
    const char* name = k < 8 ? kNames[k] : "type";
    data.AddType({name, opts.objects_per_type[k], opts.n_classes,
                  std::move(feats), labels[k]});
  }
  for (std::size_t k = 0; k < types; ++k) {
    for (std::size_t l = k + 1; l < types; ++l) {
      RHCHME_RETURN_IF_ERROR(data.SetRelation(k, l, std::move(blocks[k][l])));
    }
  }
  RHCHME_RETURN_IF_ERROR(data.Validate());
  return data;
}

}  // namespace data
}  // namespace rhchme
