#include "data/tfidf.h"

#include <cmath>

namespace rhchme {
namespace data {

la::Matrix TfIdf(const la::Matrix& counts, const TfIdfOptions& opts) {
  const std::size_t n_docs = counts.rows(), n_terms = counts.cols();
  la::Matrix out = counts;
  out.ClampNonNegative();

  // Document frequency per term.
  std::vector<double> df(n_terms, 0.0);
  for (std::size_t i = 0; i < n_docs; ++i) {
    const double* r = out.row_ptr(i);
    for (std::size_t j = 0; j < n_terms; ++j) {
      if (r[j] > 0.0) df[j] += 1.0;
    }
  }
  std::vector<double> idf(n_terms, 0.0);
  const double n = static_cast<double>(n_docs);
  for (std::size_t j = 0; j < n_terms; ++j) {
    if (opts.smooth_idf) {
      idf[j] = std::log((1.0 + n) / (1.0 + df[j])) + 1.0;
    } else {
      idf[j] = df[j] > 0.0 ? std::log(n / df[j]) : 0.0;
    }
  }

  for (std::size_t i = 0; i < n_docs; ++i) {
    double* r = out.row_ptr(i);
    for (std::size_t j = 0; j < n_terms; ++j) {
      double tf = r[j];
      // Sublinear scaling: the classic 1 + log(tf) for tf >= 1; linear
      // below 1 (fractional masses occur for mapped concept counts) so
      // the weight stays positive and continuous at tf = 1.
      if (tf >= 1.0 && opts.sublinear_tf) tf = 1.0 + std::log(tf);
      r[j] = tf * idf[j];
    }
    if (opts.l2_normalize) {
      double s = 0.0;
      for (std::size_t j = 0; j < n_terms; ++j) s += r[j] * r[j];
      if (s > 0.0) {
        double inv = 1.0 / std::sqrt(s);
        for (std::size_t j = 0; j < n_terms; ++j) r[j] *= inv;
      }
    }
  }
  return out;
}

}  // namespace data
}  // namespace rhchme
