// Multi-type relational data container (paper §I.A).
//
// Holds K object types, each with a feature matrix and an optional ground
// truth, plus the pairwise inter-type relationship blocks R_kl. Provides
// the joint block matrices R (inter-type, zero diagonal blocks) and the
// per-type offsets used to address the block structure of G and S.

#ifndef RHCHME_DATA_MULTITYPE_DATA_H_
#define RHCHME_DATA_MULTITYPE_DATA_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "la/matrix.h"
#include "la/sparse.h"
#include "util/status.h"

namespace rhchme {
namespace data {

/// One object type: its name, features and clustering setup.
struct ObjectType {
  std::string name;          ///< e.g. "documents".
  std::size_t count = 0;     ///< n_k, number of objects.
  std::size_t clusters = 0;  ///< c_k, requested clusters for this type.
  /// Feature matrix X_k with one object per ROW (count x D_k). Used for
  /// intra-type relationship learning (pNN graph and subspace learning).
  la::Matrix features;
  /// Optional ground-truth class labels (empty when unknown).
  std::vector<std::size_t> labels;
};

/// K types plus the inter-type relationship blocks.
///
/// Usage:
///   MultiTypeRelationalData data;
///   data.AddType({"docs", nd, cd, Xd, yd});
///   data.AddType({"terms", nt, ct, Xt, {}});
///   data.SetRelation(0, 1, doc_term_tfidf);
///   RHCHME_RETURN_IF_ERROR(data.Validate());
class MultiTypeRelationalData {
 public:
  /// Appends a type; returns its index.
  std::size_t AddType(ObjectType type);

  /// Sets the relationship block between types k and l (k != l) with
  /// shape (count_k x count_l). The transposed block is implied.
  Status SetRelation(std::size_t k, std::size_t l, la::Matrix r);

  /// Number of types K.
  std::size_t NumTypes() const { return types_.size(); }

  const ObjectType& Type(std::size_t k) const;
  ObjectType& MutableType(std::size_t k);

  /// True if the (k, l) relation (either orientation) was provided.
  bool HasRelation(std::size_t k, std::size_t l) const;

  /// The (count_k x count_l) block in its stored orientation (k < l),
  /// returned by const reference — no copy. Requires HasRelation(k, l)
  /// and k < l; for the reversed orientation use RelationTransposed,
  /// which makes its O(count_k·count_l) transposed copy explicit at the
  /// call site. The reference stays valid until the relation is replaced
  /// via SetRelation.
  const la::Matrix& Relation(std::size_t k, std::size_t l) const;

  /// The (count_k x count_l) block for k > l: an explicit transposed copy
  /// of the stored (l, k) block. Requires HasRelation(k, l) and k > l.
  la::Matrix RelationTransposed(std::size_t k, std::size_t l) const;

  /// Total object count n = sum_k n_k.
  std::size_t TotalObjects() const;

  /// Total cluster count c = sum_k c_k.
  std::size_t TotalClusters() const;

  /// Row offset of type k inside the joint n x n matrices.
  std::size_t TypeOffset(std::size_t k) const;

  /// Column offset of type k inside the joint n x c membership matrix.
  std::size_t ClusterOffset(std::size_t k) const;

  /// Joint symmetric inter-type matrix R (n x n, zero diagonal blocks;
  /// paper §I.A). Missing blocks stay zero.
  la::Matrix BuildJointR() const;

  /// Sparse version of BuildJointR (drops exact zeros).
  la::SparseMatrix BuildJointRSparse() const;

  /// Density of the joint R: nonzero entries / n², counted from the
  /// stored blocks without building either representation. Drives the
  /// solver's automatic sparse-R core selection.
  double JointRDensity() const;

  /// Joint ground-truth labels offset per type; empty if any type lacks
  /// labels.
  std::vector<std::size_t> JointLabels() const;

  /// Shape/consistency checks: positive counts and cluster counts,
  /// feature row counts match, relation shapes match, at least one
  /// relation per type (connected star assumption is NOT required).
  Status Validate() const;

 private:
  std::vector<ObjectType> types_;
  /// Keyed on (min(k,l), max(k,l)); stored with rows = first key's type.
  std::map<std::pair<std::size_t, std::size_t>, la::Matrix> relations_;
};

}  // namespace data
}  // namespace rhchme

#endif  // RHCHME_DATA_MULTITYPE_DATA_H_
