#include "data/corruption.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rhchme {
namespace data {

Status RowCorruptionOptions::Validate() const {
  if (!(row_fraction >= 0.0 && row_fraction <= 1.0)) {
    return Status::InvalidArgument("row_fraction must be in [0,1]");
  }
  if (!(entry_fraction >= 0.0 && entry_fraction <= 1.0)) {
    return Status::InvalidArgument("entry_fraction must be in [0,1]");
  }
  if (!(magnitude >= 0.0) || !std::isfinite(magnitude)) {
    return Status::InvalidArgument("magnitude must be finite and >= 0");
  }
  return Status::OK();
}

std::vector<std::size_t> CorruptRows(la::Matrix* m,
                                     const RowCorruptionOptions& opts,
                                     Rng* rng) {
  const Status valid = opts.Validate();
  RHCHME_CHECK(valid.ok(), valid.message().c_str());
  const std::size_t n = m->rows();
  const auto n_corrupt = static_cast<std::size_t>(
      opts.row_fraction * static_cast<double>(n) + 0.5);
  if (n_corrupt == 0) return {};

  // Scale spikes to the data's own magnitude. Row-wise: flat data()
  // indexing would walk into the stride padding.
  double pos_sum = 0.0;
  std::size_t pos_cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* r = m->row_ptr(i);
    for (std::size_t j = 0; j < m->cols(); ++j) {
      if (r[j] > 0.0) {
        pos_sum += r[j];
        ++pos_cnt;
      }
    }
  }
  const double mean_pos = pos_cnt > 0 ? pos_sum / static_cast<double>(pos_cnt)
                                      : 1.0;
  const double spike = opts.magnitude * mean_pos;

  std::vector<std::size_t> rows = rng->SampleWithoutReplacement(n, n_corrupt);
  std::sort(rows.begin(), rows.end());
  for (std::size_t i : rows) {
    double* r = m->row_ptr(i);
    for (std::size_t j = 0; j < m->cols(); ++j) {
      if (rng->Uniform() < opts.entry_fraction) {
        // Both payloads draw exactly one extra Uniform per hit entry, so
        // the sequence of selected entries is mode-independent; kSpike is
        // byte-identical to the pre-kNonFinite behaviour.
        if (opts.mode == RowCorruptionMode::kNonFinite) {
          r[j] = rng->Uniform() < 0.5
                     ? std::numeric_limits<double>::quiet_NaN()
                     : std::numeric_limits<double>::infinity();
        } else {
          r[j] += spike * rng->Uniform();
        }
      }
    }
  }
  return rows;
}

void AddGaussianNoise(la::Matrix* m, double sigma, Rng* rng,
                      bool keep_nonnegative) {
  // Row-major logical order keeps the draw sequence identical to the
  // unpadded layout.
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* r = m->row_ptr(i);
    for (std::size_t j = 0; j < m->cols(); ++j) {
      r[j] += rng->Normal(0.0, sigma);
    }
  }
  if (keep_nonnegative) m->ClampNonNegative();
}

void DropEntries(la::Matrix* m, double prob, Rng* rng) {
  RHCHME_CHECK(prob >= 0.0 && prob <= 1.0, "drop probability must be in [0,1]");
  if (prob == 0.0) return;
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* r = m->row_ptr(i);
    for (std::size_t j = 0; j < m->cols(); ++j) {
      if (rng->Uniform() < prob) r[j] = 0.0;
    }
  }
}

void AddSparseSpikes(la::Matrix* m, double prob, double magnitude, Rng* rng) {
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* r = m->row_ptr(i);
    for (std::size_t j = 0; j < m->cols(); ++j) {
      if (rng->Uniform() < prob) {
        r[j] = magnitude * rng->Uniform();
      }
    }
  }
}

}  // namespace data
}  // namespace rhchme
