#include "data/manifolds.h"

#include <cmath>

namespace rhchme {
namespace data {

ManifoldSample SampleTwoCircles(const TwoCirclesOptions& opts) {
  Rng rng(opts.seed);
  const std::size_t n = 2 * opts.points_per_circle + opts.ambient_noise;
  ManifoldSample out;
  out.points.Resize(n, 2);
  out.labels.resize(n);

  const double cx[2] = {-0.5 * opts.center_distance,
                        0.5 * opts.center_distance};
  std::size_t row = 0;
  for (std::size_t circle = 0; circle < 2; ++circle) {
    for (std::size_t i = 0; i < opts.points_per_circle; ++i, ++row) {
      const double theta = 2.0 * M_PI * rng.Uniform();
      const double r = opts.radius + rng.Normal(0.0, opts.noise_sigma);
      out.points(row, 0) = cx[circle] + r * std::cos(theta);
      out.points(row, 1) = r * std::sin(theta);
      out.labels[row] = circle;
    }
  }
  const double span = opts.center_distance + 2.0 * opts.radius;
  for (std::size_t i = 0; i < opts.ambient_noise; ++i, ++row) {
    out.points(row, 0) = rng.Uniform(-span, span);
    out.points(row, 1) = rng.Uniform(-span, span);
    out.labels[row] = 2;
  }
  return out;
}

Result<ManifoldSample> SampleUnionOfSubspaces(
    const UnionOfSubspacesOptions& opts) {
  if (opts.subspace_dims.empty()) {
    return Status::InvalidArgument("need at least one subspace");
  }
  for (std::size_t d : opts.subspace_dims) {
    if (d == 0 || d >= opts.ambient_dim) {
      return Status::InvalidArgument(
          "subspace dims must be in [1, ambient_dim)");
    }
  }
  Rng rng(opts.seed);
  const std::size_t n_sub = opts.subspace_dims.size();
  const std::size_t n = n_sub * opts.points_per_subspace;

  ManifoldSample out;
  out.points.Resize(n, opts.ambient_dim);
  out.labels.resize(n);

  std::size_t row = 0;
  for (std::size_t s = 0; s < n_sub; ++s) {
    // Random basis: ambient_dim x d with N(0,1) entries. Entries of the
    // basis are not orthogonalised — span is what matters.
    la::Matrix basis = la::Matrix::RandomNormal(
        opts.ambient_dim, opts.subspace_dims[s], &rng);
    if (opts.nonnegative) basis.Apply([](double v) { return std::fabs(v); });
    for (std::size_t i = 0; i < opts.points_per_subspace; ++i, ++row) {
      // Draw the coefficient vector once per point, then project.
      std::vector<double> coeff(opts.subspace_dims[s]);
      for (double& c : coeff) {
        c = opts.nonnegative ? 0.2 + rng.Uniform() : rng.Normal();
      }
      for (std::size_t a = 0; a < opts.ambient_dim; ++a) {
        double v = 0.0;
        for (std::size_t dd = 0; dd < opts.subspace_dims[s]; ++dd) {
          v += basis(a, dd) * coeff[dd];
        }
        out.points(row, a) = v + rng.Normal(0.0, opts.noise_sigma);
      }
      out.labels[row] = s;
    }
  }
  return out;
}

}  // namespace data
}  // namespace rhchme
