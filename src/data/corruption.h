// Noise and corruption injection.
//
// The robustness experiments corrupt a fraction of data rows (sample-wise,
// matching the L2,1 error model of paper Eq. 13/14) or add dense Gaussian
// noise/sparse spikes. All functions mutate in place and are deterministic
// given the Rng.

#ifndef RHCHME_DATA_CORRUPTION_H_
#define RHCHME_DATA_CORRUPTION_H_

#include <vector>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace data {

/// What a corrupted entry becomes. kSpike is the paper's gross-error
/// model; kNonFinite plants NaN/±Inf — the "upstream pipeline broke"
/// failure mode the solver's numerical guards must absorb.
enum class RowCorruptionMode {
  kSpike,
  kNonFinite,
};

struct RowCorruptionOptions {
  /// Fraction of rows to corrupt, in [0, 1].
  double row_fraction = 0.1;
  /// Spike magnitude relative to the matrix's mean positive entry.
  double magnitude = 3.0;
  /// Fraction of entries within a corrupted row that receive a spike.
  double entry_fraction = 0.5;
  /// Entry payload (spikes by default; magnitude is ignored for
  /// kNonFinite). The kSpike draw sequence is unchanged by this field, so
  /// existing seeded experiments reproduce exactly.
  RowCorruptionMode mode = RowCorruptionMode::kSpike;

  /// InvalidArgument when either fraction leaves [0, 1], or on a
  /// negative/non-finite magnitude (negative spikes would break the
  /// nonnegativity every relationship matrix must keep).
  Status Validate() const;
};

/// Corrupts a random subset of rows with positive uniform spikes; returns
/// the corrupted row indices (useful for asserting that E_R localises the
/// damage).
std::vector<std::size_t> CorruptRows(la::Matrix* m,
                                     const RowCorruptionOptions& opts,
                                     Rng* rng);

/// Adds i.i.d. N(0, sigma²) noise to every entry, then clamps at zero if
/// `keep_nonnegative` (relationship matrices must stay in R+).
void AddGaussianNoise(la::Matrix* m, double sigma, Rng* rng,
                      bool keep_nonnegative = true);

/// Sets each entry to `magnitude * Uniform()` with probability `prob`
/// (gross sparse corruption).
void AddSparseSpikes(la::Matrix* m, double prob, double magnitude, Rng* rng);

/// Zeroes each entry independently with probability `prob` — relation
/// sparsification (missing observations) for the robustness scenario
/// grids. Requires prob in [0, 1].
void DropEntries(la::Matrix* m, double prob, Rng* rng);

}  // namespace data
}  // namespace rhchme

#endif  // RHCHME_DATA_CORRUPTION_H_
