// tf-idf weighting (paper §IV.A: document-term blocks carry tf-idf values).

#ifndef RHCHME_DATA_TFIDF_H_
#define RHCHME_DATA_TFIDF_H_

#include "la/matrix.h"

namespace rhchme {
namespace data {

struct TfIdfOptions {
  /// Use 1 + log(tf) instead of raw term frequency for tf > 0.
  bool sublinear_tf = true;
  /// Smooth idf: log((1 + N) / (1 + df)) + 1 (never zero, never divides
  /// by zero for terms absent from every document).
  bool smooth_idf = true;
  /// L2-normalise each document row afterwards.
  bool l2_normalize = true;
};

/// Transforms a nonnegative document x term count matrix into tf-idf
/// weights. Negative counts are clamped to zero first.
la::Matrix TfIdf(const la::Matrix& counts, const TfIdfOptions& opts = {});

}  // namespace data
}  // namespace rhchme

#endif  // RHCHME_DATA_TFIDF_H_
