#include "graph/knn_graph.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace graph {
namespace {

/// Folded triangular row mapping: unit m owns rows {m, n−1−m}, so every
/// unit costs exactly (n−1) upper-triangle cells — uniform-grain chunking
/// then balances perfectly, unlike plain row chunks where row i costs
/// (n−1−i) and early chunks get ~2x the work. Ownership is exclusive
/// (units own disjoint row pairs; the middle row of odd n pairs with
/// itself), and per-cell arithmetic is untouched, so output values are
/// bit-identical to the unfolded loop for any pool size.
template <typename RowFn>
void ForEachRowFolded(std::size_t n, std::size_t cost_per_unit,
                      const RowFn& fn) {
  const std::size_t units = (n + 1) / 2;
  util::ParallelFor(0, units, util::GrainForWork(cost_per_unit),
                    [&](std::size_t m0, std::size_t m1) {
                      for (std::size_t m = m0; m < m1; ++m) {
                        fn(m);
                        const std::size_t mate = n - 1 - m;
                        if (mate != m) fn(mate);
                      }
                    });
}

/// Copies the strict upper triangle of `m` onto the lower one. Each unit
/// writes only its own rows; the upper triangle was fully written before
/// the ParallelFor barrier that precedes this call.
void MirrorUpperToLower(la::Matrix* m) {
  const std::size_t n = m->rows();
  if (n == 0) return;
  ForEachRowFolded(n, n, [&](std::size_t i) {
    for (std::size_t j = 0; j < i; ++j) {
      (*m)(i, j) = (*m)(j, i);
    }
  });
}

}  // namespace

const char* WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kBinary: return "binary";
    case WeightScheme::kHeatKernel: return "heat";
    case WeightScheme::kCosine: return "cosine";
  }
  return "?";
}

const char* KnnBackendName(KnnBackend backend) {
  switch (backend) {
    case KnnBackend::kExact: return "exact";
    case KnnBackend::kNNDescent: return "nn-descent";
    case KnnBackend::kAuto: return "auto";
  }
  return "?";
}

Status KnnGraphOptions::Validate() const {
  if (p == 0) return Status::InvalidArgument("pNN graph needs p >= 1");
  if (scheme == WeightScheme::kHeatKernel && heat_sigma == 0.0) {
    return Status::InvalidArgument(
        "heat_sigma == 0 divides by zero; use < 0 for auto bandwidth");
  }
  return descent.Validate();
}

la::Matrix PairwiseSquaredDistances(const la::Matrix& points) {
  const std::size_t n = points.rows(), d = points.cols();
  std::vector<double> sq(n, 0.0);
  util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* r = points.row_ptr(i);
                        sq[i] = la::simd::Dot(r, r, d);
                      }
                    });
  la::Matrix dist(n, n);
  if (n == 0) return dist;
  // Upper triangle only, folded row units: every chunk write lands in the
  // chunk's own rows, and the mirror pass runs after the barrier.
  ForEachRowFolded(n, d * (n - 1) + 1, [&](std::size_t i) {
    const double* ri = points.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dot = la::simd::Dot(ri, points.row_ptr(j), d);
      // max() guards the tiny negatives produced by cancellation.
      dist(i, j) = std::max(0.0, sq[i] + sq[j] - 2.0 * dot);
    }
  });
  MirrorUpperToLower(&dist);
  return dist;
}

la::Matrix PairwiseCosine(const la::Matrix& points) {
  const std::size_t n = points.rows(), d = points.cols();
  std::vector<double> norm(n, 0.0);
  util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* r = points.row_ptr(i);
                        norm[i] = std::sqrt(la::simd::Dot(r, r, d));
                      }
                    });
  la::Matrix cos(n, n);
  if (n == 0) return cos;
  // Same folded upper-triangle + mirror structure as the distance kernel.
  ForEachRowFolded(n, d * (n - 1) + 1, [&](std::size_t i) {
    if (norm[i] == 0.0) return;
    const double* ri = points.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (norm[j] == 0.0) continue;
      const double dot = la::simd::Dot(ri, points.row_ptr(j), d);
      cos(i, j) = std::max(0.0, dot / (norm[i] * norm[j]));
    }
  });
  MirrorUpperToLower(&cos);
  return cos;
}

Result<KnnNeighborLists> BuildKnnNeighbors(const la::Matrix& points,
                                           const KnnGraphOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  const std::size_t n = points.rows();
  if (n < 2) {
    return Status::InvalidArgument("pNN graph needs at least two points");
  }
  const std::size_t p = std::min(opts.p, n - 1);
  const bool use_descent =
      opts.backend == KnnBackend::kNNDescent ||
      (opts.backend == KnnBackend::kAuto && n > opts.auto_backend_threshold);
  if (use_descent) {
    return NnDescent(points, p, KnnMetric::kSquaredEuclidean, opts.descent);
  }
  return ExactKnnNeighbors(points, p, KnnMetric::kSquaredEuclidean);
}

Result<la::SparseMatrix> BuildKnnGraph(const la::Matrix& points,
                                       const KnnGraphOptions& opts) {
  Result<KnnNeighborLists> lists = BuildKnnNeighbors(points, opts);
  if (!lists.ok()) return lists.status();
  const KnnNeighborLists& nbrs = lists.value();
  const std::size_t n = points.rows(), d = points.cols();
  const std::size_t p = std::min(opts.p, n - 1);

  // Directed adjacency flags for the symmetrisation rule of Eq. 3.
  // Lists hold p entries; a linear scan beats any index for paper-scale p.
  auto is_neighbour = [&](std::size_t i, std::size_t j) {
    for (const KnnNeighbor& e : nbrs[i]) {
      if (e.index == j) return true;
    }
    return false;
  };

  // Auto bandwidth: mean squared distance over all directed edges.
  double sigma = opts.heat_sigma;
  if (opts.scheme == WeightScheme::kHeatKernel && sigma < 0.0) {
    double acc = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const KnnNeighbor& e : nbrs[i]) {
        acc += e.distance;
        ++cnt;
      }
    }
    sigma = cnt > 0 ? std::max(acc / static_cast<double>(cnt), 1e-12) : 1.0;
  }

  // Row norms, needed only to weight cosine edges (the edge set itself is
  // selected by Euclidean proximity for every scheme).
  std::vector<double> norm;
  if (opts.scheme == WeightScheme::kCosine) {
    norm.assign(n, 0.0);
    util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          const double* r = points.row_ptr(i);
                          norm[i] = std::sqrt(la::simd::Dot(r, r, d));
                        }
                      });
  }

  auto weight = [&](std::size_t i, std::size_t j, double dist) -> double {
    switch (opts.scheme) {
      case WeightScheme::kBinary:
        return 1.0;
      case WeightScheme::kHeatKernel:
        return std::exp(-dist / sigma);
      case WeightScheme::kCosine: {
        if (norm[i] == 0.0 || norm[j] == 0.0) return 0.0;
        const double dot =
            la::simd::Dot(points.row_ptr(i), points.row_ptr(j), d);
        return std::max(0.0, dot / (norm[i] * norm[j]));
      }
    }
    return 0.0;
  };

  // Edge weighting per source row is independent (reads only the shared
  // neighbour lists), so rows run as parallel chunks writing their own
  // edge lists; the row-ordered concatenation below keeps the triplet
  // sequence — and the summed duplicates — identical to a serial build.
  std::vector<std::vector<la::Triplet>> row_edges(n);
  util::ParallelFor(
      0, n, util::GrainForWork((2 * d + 8) * p + 1),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          row_edges[i].reserve(2 * p);
          for (const KnnNeighbor& e : nbrs[i]) {
            const std::size_t j = e.index;
            bool keep = opts.mutual ? is_neighbour(j, i) : true;
            if (!keep) continue;
            double w = weight(i, j, e.distance);
            if (w <= 0.0) continue;
            // Insert both directions; FromTriplets sums duplicates, so
            // halve edges that both endpoints list.
            bool both = is_neighbour(j, i);
            double v = both ? 0.5 * w : w;
            row_edges[i].push_back({i, j, v});
            row_edges[i].push_back({j, i, v});
          }
        }
      });
  std::vector<la::Triplet> trips;
  trips.reserve(2 * n * p);
  for (std::size_t i = 0; i < n; ++i) {
    trips.insert(trips.end(), row_edges[i].begin(), row_edges[i].end());
  }
  return la::SparseMatrix::FromTriplets(n, n, std::move(trips));
}

}  // namespace graph
}  // namespace rhchme
