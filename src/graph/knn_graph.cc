#include "graph/knn_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace rhchme {
namespace graph {

const char* WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kBinary: return "binary";
    case WeightScheme::kHeatKernel: return "heat";
    case WeightScheme::kCosine: return "cosine";
  }
  return "?";
}

Status KnnGraphOptions::Validate() const {
  if (p == 0) return Status::InvalidArgument("pNN graph needs p >= 1");
  return Status::OK();
}

la::Matrix PairwiseSquaredDistances(const la::Matrix& points) {
  const std::size_t n = points.rows(), d = points.cols();
  std::vector<double> sq(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* r = points.row_ptr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) s += r[j] * r[j];
    sq[i] = s;
  }
  la::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = points.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double* rj = points.row_ptr(j);
      double dot = 0.0;
      for (std::size_t k = 0; k < d; ++k) dot += ri[k] * rj[k];
      // max() guards the tiny negatives produced by cancellation.
      double v = std::max(0.0, sq[i] + sq[j] - 2.0 * dot);
      dist(i, j) = v;
      dist(j, i) = v;
    }
  }
  return dist;
}

la::Matrix PairwiseCosine(const la::Matrix& points) {
  const std::size_t n = points.rows(), d = points.cols();
  std::vector<double> norm(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* r = points.row_ptr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) s += r[j] * r[j];
    norm[i] = std::sqrt(s);
  }
  la::Matrix cos(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (norm[i] == 0.0) continue;
    const double* ri = points.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (norm[j] == 0.0) continue;
      const double* rj = points.row_ptr(j);
      double dot = 0.0;
      for (std::size_t k = 0; k < d; ++k) dot += ri[k] * rj[k];
      double v = dot / (norm[i] * norm[j]);
      if (v < 0.0) v = 0.0;
      cos(i, j) = v;
      cos(j, i) = v;
    }
  }
  return cos;
}

Result<la::SparseMatrix> BuildKnnGraph(const la::Matrix& points,
                                       const KnnGraphOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  const std::size_t n = points.rows();
  if (n < 2) {
    return Status::InvalidArgument("pNN graph needs at least two points");
  }
  const std::size_t p = std::min(opts.p, n - 1);

  la::Matrix dist = PairwiseSquaredDistances(points);

  // Neighbour lists: partial-sort the p closest of each row.
  std::vector<std::vector<std::size_t>> nbrs(n);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < n; ++i) {
    order.resize(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(p - 1),
                     order.end(), [&](std::size_t a, std::size_t b) {
                       return dist(i, a) < dist(i, b);
                     });
    nbrs[i].assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(p));
  }

  // Directed adjacency flags for the symmetrisation rule of Eq. 3.
  auto is_neighbour = [&](std::size_t i, std::size_t j) {
    return std::find(nbrs[i].begin(), nbrs[i].end(), j) != nbrs[i].end();
  };

  // Auto bandwidth: mean squared distance over all directed edges.
  double sigma = opts.heat_sigma;
  if (opts.scheme == WeightScheme::kHeatKernel && sigma <= 0.0) {
    double acc = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j : nbrs[i]) {
        acc += dist(i, j);
        ++cnt;
      }
    }
    sigma = cnt > 0 ? std::max(acc / static_cast<double>(cnt), 1e-12) : 1.0;
  }

  la::Matrix cos;  // Only needed for the cosine scheme.
  if (opts.scheme == WeightScheme::kCosine) cos = PairwiseCosine(points);

  auto weight = [&](std::size_t i, std::size_t j) -> double {
    switch (opts.scheme) {
      case WeightScheme::kBinary:
        return 1.0;
      case WeightScheme::kHeatKernel:
        return std::exp(-dist(i, j) / sigma);
      case WeightScheme::kCosine:
        return cos(i, j);
    }
    return 0.0;
  };

  std::vector<la::Triplet> trips;
  trips.reserve(2 * n * p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j : nbrs[i]) {
      bool keep = opts.mutual ? is_neighbour(j, i) : true;
      if (!keep) continue;
      double w = weight(i, j);
      if (w <= 0.0) continue;
      // Insert both directions; FromTriplets sums duplicates, so halve
      // edges that both endpoints list.
      bool both = is_neighbour(j, i);
      double v = both ? 0.5 * w : w;
      trips.push_back({i, j, v});
      trips.push_back({j, i, v});
    }
  }
  return la::SparseMatrix::FromTriplets(n, n, std::move(trips));
}

}  // namespace graph
}  // namespace rhchme
