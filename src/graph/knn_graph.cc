#include "graph/knn_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace graph {
namespace {

/// Copies the strict upper triangle of `m` onto the lower one. Each chunk
/// writes only its own rows; the upper triangle was fully written before
/// the ParallelFor barrier that precedes this call.
void MirrorUpperToLower(la::Matrix* m, std::size_t work_per_row) {
  const std::size_t n = m->rows();
  util::ParallelFor(0, n, util::GrainForWork(work_per_row),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        for (std::size_t j = 0; j < i; ++j) {
                          (*m)(i, j) = (*m)(j, i);
                        }
                      }
                    });
}

}  // namespace

const char* WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kBinary: return "binary";
    case WeightScheme::kHeatKernel: return "heat";
    case WeightScheme::kCosine: return "cosine";
  }
  return "?";
}

Status KnnGraphOptions::Validate() const {
  if (p == 0) return Status::InvalidArgument("pNN graph needs p >= 1");
  return Status::OK();
}

la::Matrix PairwiseSquaredDistances(const la::Matrix& points) {
  const std::size_t n = points.rows(), d = points.cols();
  std::vector<double> sq(n, 0.0);
  util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* r = points.row_ptr(i);
                        sq[i] = la::simd::Dot(r, r, d);
                      }
                    });
  la::Matrix dist(n, n);
  // Upper triangle only, row-parallel: chunk boundaries fall between rows,
  // so every write lands in the chunk's own rows. The mirror pass runs
  // after the barrier and reads the finished upper triangle.
  util::ParallelFor(
      0, n, util::GrainForWork(d * (n / 2 + 1)),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const double* ri = points.row_ptr(i);
          for (std::size_t j = i + 1; j < n; ++j) {
            const double dot = la::simd::Dot(ri, points.row_ptr(j), d);
            // max() guards the tiny negatives produced by cancellation.
            dist(i, j) = std::max(0.0, sq[i] + sq[j] - 2.0 * dot);
          }
        }
      });
  MirrorUpperToLower(&dist, n / 2 + 1);
  return dist;
}

la::Matrix PairwiseCosine(const la::Matrix& points) {
  const std::size_t n = points.rows(), d = points.cols();
  std::vector<double> norm(n, 0.0);
  util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* r = points.row_ptr(i);
                        norm[i] = std::sqrt(la::simd::Dot(r, r, d));
                      }
                    });
  la::Matrix cos(n, n);
  // Same row-parallel upper-triangle + mirror structure as the distance
  // kernel above.
  util::ParallelFor(
      0, n, util::GrainForWork(d * (n / 2 + 1)),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          if (norm[i] == 0.0) continue;
          const double* ri = points.row_ptr(i);
          for (std::size_t j = i + 1; j < n; ++j) {
            if (norm[j] == 0.0) continue;
            const double dot = la::simd::Dot(ri, points.row_ptr(j), d);
            cos(i, j) = std::max(0.0, dot / (norm[i] * norm[j]));
          }
        }
      });
  MirrorUpperToLower(&cos, n / 2 + 1);
  return cos;
}

Result<la::SparseMatrix> BuildKnnGraph(const la::Matrix& points,
                                       const KnnGraphOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  const std::size_t n = points.rows();
  if (n < 2) {
    return Status::InvalidArgument("pNN graph needs at least two points");
  }
  const std::size_t p = std::min(opts.p, n - 1);

  la::Matrix dist = PairwiseSquaredDistances(points);

  // Neighbour lists: partial-sort the p closest of each row. Rows are
  // independent; each chunk keeps its own scratch `order` vector.
  std::vector<std::vector<std::size_t>> nbrs(n);
  util::ParallelFor(0, n, util::GrainForWork(n), [&](std::size_t r0,
                                                     std::size_t r1) {
    std::vector<std::size_t> order;
    for (std::size_t i = r0; i < r1; ++i) {
      order.resize(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
      std::nth_element(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(p - 1),
                       order.end(), [&](std::size_t a, std::size_t b) {
                         return dist(i, a) < dist(i, b);
                       });
      nbrs[i].assign(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(p));
    }
  });

  // Directed adjacency flags for the symmetrisation rule of Eq. 3.
  auto is_neighbour = [&](std::size_t i, std::size_t j) {
    return std::find(nbrs[i].begin(), nbrs[i].end(), j) != nbrs[i].end();
  };

  // Auto bandwidth: mean squared distance over all directed edges.
  double sigma = opts.heat_sigma;
  if (opts.scheme == WeightScheme::kHeatKernel && sigma <= 0.0) {
    double acc = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j : nbrs[i]) {
        acc += dist(i, j);
        ++cnt;
      }
    }
    sigma = cnt > 0 ? std::max(acc / static_cast<double>(cnt), 1e-12) : 1.0;
  }

  la::Matrix cos;  // Only needed for the cosine scheme.
  if (opts.scheme == WeightScheme::kCosine) cos = PairwiseCosine(points);

  auto weight = [&](std::size_t i, std::size_t j) -> double {
    switch (opts.scheme) {
      case WeightScheme::kBinary:
        return 1.0;
      case WeightScheme::kHeatKernel:
        return std::exp(-dist(i, j) / sigma);
      case WeightScheme::kCosine:
        return cos(i, j);
    }
    return 0.0;
  };

  // Edge weighting per source row is independent (reads only the
  // precomputed distance/cosine tables), so rows run as parallel chunks
  // writing their own edge lists; the row-ordered concatenation below
  // keeps the triplet sequence — and the summed duplicates — identical
  // to a serial build.
  std::vector<std::vector<la::Triplet>> row_edges(n);
  util::ParallelFor(
      0, n, util::GrainForWork(8 * p + 1),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          row_edges[i].reserve(2 * p);
          for (std::size_t j : nbrs[i]) {
            bool keep = opts.mutual ? is_neighbour(j, i) : true;
            if (!keep) continue;
            double w = weight(i, j);
            if (w <= 0.0) continue;
            // Insert both directions; FromTriplets sums duplicates, so
            // halve edges that both endpoints list.
            bool both = is_neighbour(j, i);
            double v = both ? 0.5 * w : w;
            row_edges[i].push_back({i, j, v});
            row_edges[i].push_back({j, i, v});
          }
        }
      });
  std::vector<la::Triplet> trips;
  trips.reserve(2 * n * p);
  for (std::size_t i = 0; i < n; ++i) {
    trips.insert(trips.end(), row_edges[i].begin(), row_edges[i].end());
  }
  return la::SparseMatrix::FromTriplets(n, n, std::move(trips));
}

}  // namespace graph
}  // namespace rhchme
