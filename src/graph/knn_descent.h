// Approximate and exact p-nearest-neighbour *lists* — the construction
// engines behind graph::BuildKnnGraph (ROADMAP: "break the O(n²)
// construction wall").
//
// Two engines produce the same artefact, a per-row list of the p closest
// other rows with their distances:
//
//  * ExactKnnNeighbors — the reference. Blocked row-panel distance tiles
//    feed per-row top-p heaps, so the dense n x n distance matrix of the
//    old path is never allocated: peak memory is O(n·p) (per-chunk heap
//    scratch, bounded chunk count) instead of O(n²). The triangular pair
//    set (j > i) is split into cost-balanced row ranges — row i does
//    (n−1−i) distance dots, so uniform row chunks would give early chunks
//    ~2x the work — and each chunk's candidates are merged in fixed chunk
//    order, keeping results bit-identical across thread counts.
//  * NnDescent — NN-descent (Dong, Moses & Li, WWW 2011) seeded by a
//    random-projection forest (the pynndescent/LargeVis recipe): a few
//    hyperplane-split trees partition the rows into small leaves, each
//    leaf is joined exhaustively to form near-good initial lists, then
//    descent rounds repeatedly examine neighbours-of-neighbours (forward
//    and sampled reverse edges, pair-once generator-side join), keep the
//    closest p, and stop when the update rate collapses. Empirically
//    ~n^1.1 distance evaluations on clustered data vs the exact engine's
//    O(n²). The ensemble combiner is designed to downweight imperfect
//    manifolds (paper §III.B), which is exactly what makes a high-recall
//    approximate pNN member a drop-in replacement.
//
// NN-descent determinism: every stochastic choice (tree splits, reverse
// samples, forward thinning) draws from util DeriveStreamSeed streams
// keyed by (seed, tree, split) or (seed, round, node), fixed before any
// chunk is scheduled. Leaves of one tree own disjoint node sets, the join
// emits improvement proposals into per-chunk buffers over a shape-only
// chunk layout, and proposals are applied per target in fixed
// (chunk, emission) order — so results are bit-identical for any pool
// size (covered by tests/knn_descent_test.cc). Top-p heap contents are
// insertion-order-independent under dedup-on-arrival because an evicted
// candidate can never re-enter: eviction implies the surviving worst
// entry is strictly closer in the (distance, index) total order.

#ifndef RHCHME_GRAPH_KNN_DESCENT_H_
#define RHCHME_GRAPH_KNN_DESCENT_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace graph {

/// Distance used for neighbour selection. BuildKnnGraph always selects by
/// squared Euclidean distance (matching the historical exact path for
/// every weight scheme); the cosine metric (1 − cosine similarity, zero
/// rows maximally distant) is exposed for direct users of the lists.
enum class KnnMetric {
  kSquaredEuclidean,
  kCosine,
};

struct KnnDescentOptions {
  /// Refinement-round cap. Recall plateaus within a handful of rounds on
  /// clustered data; the update-rate test below usually stops earlier.
  int max_iterations = 15;
  /// Early termination: stop when a round improves fewer than
  /// `termination_delta * n * p` list entries.
  double termination_delta = 1e-3;
  /// Join sample cap as a multiple of p (rho in the paper): each round a
  /// node contributes at most ceil(sample_rate * p) of its fresh forward
  /// edges to the join (unsampled fresh edges stay fresh and wait for a
  /// later round) and at most twice that many reverse edges.
  double sample_rate = 0.5;
  /// Random-projection trees used to seed the initial lists. Each tree
  /// recursively splits the rows by a hyperplane through two sampled
  /// points and joins every leaf exhaustively. 0 falls back to random
  /// initial lists (slower convergence, kept for reference).
  int rp_trees = 4;
  /// Target leaf size of the projection trees; the effective value is
  /// max(leaf_size, 2·(p+1)) so median splits always leave >= p + 1 rows
  /// per leaf and every initial list is full.
  std::size_t leaf_size = 64;
  /// Stream seed for tree splits, initial lists and join samples.
  /// Ensemble members derive per-member streams from it (see
  /// core::BuildEnsemble).
  uint64_t seed = 0x9e3779b9;

  Status Validate() const;
};

/// One neighbour of a row: its index and the metric distance.
struct KnnNeighbor {
  std::size_t index;
  double distance;
};

/// Per-row neighbour lists, each sorted ascending by (distance, index).
using KnnNeighborLists = std::vector<std::vector<KnnNeighbor>>;

/// Exact p-nearest-neighbour lists in O(n·p) memory (never the dense
/// n x n distance matrix). Requires points.rows() >= 2; p is clamped to
/// n − 1. Bit-identical across thread counts.
KnnNeighborLists ExactKnnNeighbors(const la::Matrix& points, std::size_t p,
                                   KnnMetric metric);

/// Approximate p-nearest-neighbour lists via NN-descent. Requires
/// points.rows() >= 2; p is clamped to n − 1 (at which point the result
/// is exact). Bit-identical across thread counts for a fixed seed.
Result<KnnNeighborLists> NnDescent(const la::Matrix& points, std::size_t p,
                                   KnnMetric metric,
                                   const KnnDescentOptions& opts);

}  // namespace graph
}  // namespace rhchme

#endif  // RHCHME_GRAPH_KNN_DESCENT_H_
