// Graph Laplacians.
//
// The manifold regulariser tr(Gᵀ L G) (paper Eq. 1/15) smooths cluster
// labels over an affinity graph. The paper writes L = D − W and calls it
// normalised; we provide the unnormalised, symmetric-normalised and
// random-walk variants explicitly (DESIGN.md §5.3) — the symmetric form is
// the library default.

#ifndef RHCHME_GRAPH_LAPLACIAN_H_
#define RHCHME_GRAPH_LAPLACIAN_H_

#include "la/matrix.h"
#include "la/sparse.h"
#include "util/status.h"

namespace rhchme {
namespace graph {

enum class LaplacianKind {
  kUnnormalized,  ///< L = D - W
  kSymmetric,     ///< L = I - D^{-1/2} W D^{-1/2}
  kRandomWalk,    ///< L = I - D^{-1} W
};

const char* LaplacianKindName(LaplacianKind kind);

/// Degree vector d_i = sum_j W_ij of an affinity matrix.
std::vector<double> DegreeVector(const la::SparseMatrix& affinity);
std::vector<double> DegreeVector(const la::Matrix& affinity);

/// Dense Laplacian of a sparse affinity matrix. Isolated vertices (zero
/// degree) contribute L_ii = 0 in normalised variants (their D^{-1/2} is
/// treated as 0, the spectral-clustering convention).
/// Requires a square affinity matrix. Sparse-direct: only W's nonzeros
/// are scattered (threaded over rows), never a densified copy of W.
Result<la::Matrix> BuildLaplacian(const la::SparseMatrix& affinity,
                                  LaplacianKind kind);

/// Dense-affinity overload (subspace affinities W^S are dense).
Result<la::Matrix> BuildLaplacian(const la::Matrix& affinity,
                                  LaplacianKind kind);

/// Sparse-in, sparse-out Laplacian: the result's pattern is W's pattern
/// plus the diagonal, so a pNN affinity (p entries per row) yields an
/// O(n·p) Laplacian — never a dense n x n. This is what keeps the
/// ensemble Laplacian of Eq. 12 sparse end-to-end in the solver. Values
/// agree with the dense BuildLaplacian overloads to rounding.
Result<la::SparseMatrix> BuildSparseLaplacian(const la::SparseMatrix& affinity,
                                              LaplacianKind kind);

}  // namespace graph
}  // namespace rhchme

#endif  // RHCHME_GRAPH_LAPLACIAN_H_
