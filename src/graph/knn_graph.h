// p-nearest-neighbour affinity graphs (paper Eq. 3).
//
// Existing HOCC methods estimate intra-type relationships W_E from a pNN
// graph over each type's feature vectors; RHCHME keeps one small-p cosine
// pNN graph as the "local" member of its heterogeneous ensemble, and the
// RMC baseline uses six of them (p ∈ {5,10} × three weighting schemes).

#ifndef RHCHME_GRAPH_KNN_GRAPH_H_
#define RHCHME_GRAPH_KNN_GRAPH_H_

#include "la/matrix.h"
#include "la/sparse.h"
#include "util/status.h"

namespace rhchme {
namespace graph {

/// Edge weighting for the pNN graph (paper §II.A lists all three).
enum class WeightScheme {
  kBinary,      ///< w_ij = 1 when a neighbour edge exists.
  kHeatKernel,  ///< w_ij = exp(-||x_i - x_j||² / sigma).
  kCosine,      ///< w_ij = <x_i, x_j> / (||x_i|| ||x_j||), floored at 0.
};

const char* WeightSchemeName(WeightScheme scheme);

struct KnnGraphOptions {
  /// Neighbour count p. The paper uses p = 5 for SNMTF/RHCHME and
  /// p ∈ {5, 10} for the RMC candidates.
  std::size_t p = 5;
  WeightScheme scheme = WeightScheme::kCosine;
  /// Heat-kernel bandwidth sigma; <= 0 selects the mean squared
  /// neighbour distance automatically.
  double heat_sigma = -1.0;
  /// Eq. 3 keeps an edge when either endpoint lists the other (union
  /// symmetrisation). Set to true for the stricter mutual-kNN variant.
  bool mutual = false;

  /// InvalidArgument when p == 0.
  Status Validate() const;
};

/// Builds the symmetric pNN affinity matrix for `points` (one object per
/// row). The diagonal is zero; the result has at most 2·n·p nonzeros.
/// Requires points.rows() >= 2 and p < points.rows().
Result<la::SparseMatrix> BuildKnnGraph(const la::Matrix& points,
                                       const KnnGraphOptions& opts);

/// Pairwise squared Euclidean distances between rows of `points`
/// (exposed for tests and for the subspace demo).
la::Matrix PairwiseSquaredDistances(const la::Matrix& points);

/// Pairwise cosine similarities between rows, floored at zero so the
/// affinity stays nonnegative. Zero rows get zero similarity.
la::Matrix PairwiseCosine(const la::Matrix& points);

}  // namespace graph
}  // namespace rhchme

#endif  // RHCHME_GRAPH_KNN_GRAPH_H_
