// p-nearest-neighbour affinity graphs (paper Eq. 3).
//
// Existing HOCC methods estimate intra-type relationships W_E from a pNN
// graph over each type's feature vectors; RHCHME keeps one small-p cosine
// pNN graph as the "local" member of its heterogeneous ensemble, and the
// RMC baseline uses six of them (p ∈ {5,10} × three weighting schemes).
//
// Construction is two-phase: a backend (exact or NN-descent, see
// graph/knn_descent.h) produces per-row neighbour lists, then a shared
// symmetrise/weight step turns the lists into the sparse affinity matrix.
// Neither phase materialises a dense n x n matrix — peak memory is O(n·p).

#ifndef RHCHME_GRAPH_KNN_GRAPH_H_
#define RHCHME_GRAPH_KNN_GRAPH_H_

#include "graph/knn_descent.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "util/status.h"

namespace rhchme {
namespace graph {

/// Edge weighting for the pNN graph (paper §II.A lists all three).
enum class WeightScheme {
  kBinary,      ///< w_ij = 1 when a neighbour edge exists.
  kHeatKernel,  ///< w_ij = exp(-||x_i - x_j||² / sigma).
  kCosine,      ///< w_ij = <x_i, x_j> / (||x_i|| ||x_j||), floored at 0.
};

const char* WeightSchemeName(WeightScheme scheme);

/// Neighbour-list construction engine.
enum class KnnBackend {
  kExact,      ///< Blocked exact scan: O(n²·d) time, O(n·p) memory.
  kNNDescent,  ///< NN-descent approximation: ~O(n^1.14) distance evals.
  kAuto,       ///< kExact below auto_backend_threshold points, else descent.
};

const char* KnnBackendName(KnnBackend backend);

struct KnnGraphOptions {
  /// Neighbour count p. The paper uses p = 5 for SNMTF/RHCHME and
  /// p ∈ {5, 10} for the RMC candidates.
  std::size_t p = 5;
  WeightScheme scheme = WeightScheme::kCosine;
  /// Heat-kernel bandwidth sigma; < 0 selects the mean squared neighbour
  /// distance automatically. Exactly zero is rejected by Validate() — it
  /// would divide by zero in the weight pass.
  double heat_sigma = -1.0;
  /// Eq. 3 keeps an edge when either endpoint lists the other (union
  /// symmetrisation). Set to true for the stricter mutual-kNN variant.
  bool mutual = false;
  /// Neighbour-list engine. kAuto keeps the exact reference for small
  /// inputs (all paper-scale datasets and the test corpora) and switches
  /// to NN-descent where the O(n²·d) scan starts to dominate.
  KnnBackend backend = KnnBackend::kAuto;
  /// kAuto uses NN-descent when points.rows() exceeds this.
  std::size_t auto_backend_threshold = 2048;
  /// NN-descent tuning; ignored by the exact backend. Ensemble members
  /// derive per-member seeds from descent.seed (see core::BuildEnsemble).
  KnnDescentOptions descent;

  /// InvalidArgument when p == 0, when heat_sigma == 0 with kHeatKernel,
  /// or when the descent options are malformed.
  Status Validate() const;
};

/// Builds the symmetric pNN affinity matrix for `points` (one object per
/// row). The diagonal is zero; the result has at most 2·n·p nonzeros.
/// Requires points.rows() >= 2 and p < points.rows().
Result<la::SparseMatrix> BuildKnnGraph(const la::Matrix& points,
                                       const KnnGraphOptions& opts);

/// The backend dispatcher behind BuildKnnGraph: per-row neighbour lists
/// selected by squared Euclidean distance (every weight scheme selects by
/// Euclidean proximity, matching the historical dense path) under
/// opts.backend. Exposed for recall evaluation (eval::RecallAgainstExact)
/// and benches.
Result<KnnNeighborLists> BuildKnnNeighbors(const la::Matrix& points,
                                           const KnnGraphOptions& opts);

/// Pairwise squared Euclidean distances between rows of `points`
/// (exposed for tests and for the subspace demo).
la::Matrix PairwiseSquaredDistances(const la::Matrix& points);

/// Pairwise cosine similarities between rows, floored at zero so the
/// affinity stays nonnegative. Zero rows get zero similarity.
la::Matrix PairwiseCosine(const la::Matrix& points);

}  // namespace graph
}  // namespace rhchme

#endif  // RHCHME_GRAPH_KNN_GRAPH_H_
