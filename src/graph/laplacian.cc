#include "graph/laplacian.h"

#include <cmath>

#include "util/parallel.h"

namespace rhchme {
namespace graph {
namespace {

/// Shared core: builds L from a dense affinity already materialised.
la::Matrix LaplacianFromDense(const la::Matrix& w, LaplacianKind kind) {
  const std::size_t n = w.rows();
  std::vector<double> deg = w.RowSums();
  la::Matrix l(n, n);
  switch (kind) {
    case LaplacianKind::kUnnormalized: {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) l(i, j) = -w(i, j);
        l(i, i) += deg[i];
      }
      break;
    }
    case LaplacianKind::kSymmetric: {
      std::vector<double> inv_sqrt(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          l(i, j) = -inv_sqrt[i] * w(i, j) * inv_sqrt[j];
        }
        l(i, i) += deg[i] > 0.0 ? 1.0 : 0.0;
      }
      break;
    }
    case LaplacianKind::kRandomWalk: {
      for (std::size_t i = 0; i < n; ++i) {
        const double inv = deg[i] > 0.0 ? 1.0 / deg[i] : 0.0;
        for (std::size_t j = 0; j < n; ++j) l(i, j) = -inv * w(i, j);
        l(i, i) += deg[i] > 0.0 ? 1.0 : 0.0;
      }
      break;
    }
  }
  return l;
}

/// Sparse-direct core: scatters only the nonzeros of W into the dense L
/// instead of densifying W first — O(n² zero-fill + nnz) rather than
/// O(n²) arithmetic per entry. Rows of L are independent, so the scatter
/// threads over row chunks; each (i, j) receives exactly one write plus
/// the diagonal add, in a fixed order, keeping the result bit-identical
/// across thread counts.
la::Matrix LaplacianFromSparse(const la::SparseMatrix& w, LaplacianKind kind) {
  const std::size_t n = w.rows();
  std::vector<double> deg = w.RowSums();
  const auto& offsets = w.row_offsets();
  const auto& cols = w.col_indices();
  const auto& vals = w.values();
  la::Matrix l(n, n);

  std::vector<double> inv_sqrt;
  if (kind == LaplacianKind::kSymmetric) {
    inv_sqrt.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
    }
  }

  const std::size_t nnz_per_row = n > 0 ? w.nnz() / n + 1 : 1;
  util::ParallelFor(
      0, n, util::GrainForWork(2 * nnz_per_row + 2),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          double* li = l.row_ptr(i);
          switch (kind) {
            case LaplacianKind::kUnnormalized: {
              for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
                li[cols[k]] -= vals[k];
              }
              li[i] += deg[i];
              break;
            }
            case LaplacianKind::kSymmetric: {
              for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
                li[cols[k]] -= inv_sqrt[i] * vals[k] * inv_sqrt[cols[k]];
              }
              li[i] += deg[i] > 0.0 ? 1.0 : 0.0;
              break;
            }
            case LaplacianKind::kRandomWalk: {
              const double inv = deg[i] > 0.0 ? 1.0 / deg[i] : 0.0;
              for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
                li[cols[k]] -= inv * vals[k];
              }
              li[i] += deg[i] > 0.0 ? 1.0 : 0.0;
              break;
            }
          }
        }
      });
  return l;
}

}  // namespace

const char* LaplacianKindName(LaplacianKind kind) {
  switch (kind) {
    case LaplacianKind::kUnnormalized: return "unnormalized";
    case LaplacianKind::kSymmetric: return "symmetric";
    case LaplacianKind::kRandomWalk: return "random-walk";
  }
  return "?";
}

std::vector<double> DegreeVector(const la::SparseMatrix& affinity) {
  return affinity.RowSums();
}

std::vector<double> DegreeVector(const la::Matrix& affinity) {
  return affinity.RowSums();
}

Result<la::Matrix> BuildLaplacian(const la::SparseMatrix& affinity,
                                  LaplacianKind kind) {
  if (affinity.rows() != affinity.cols()) {
    return Status::InvalidArgument("Laplacian: affinity must be square");
  }
  return LaplacianFromSparse(affinity, kind);
}

Result<la::Matrix> BuildLaplacian(const la::Matrix& affinity,
                                  LaplacianKind kind) {
  if (affinity.rows() != affinity.cols()) {
    return Status::InvalidArgument("Laplacian: affinity must be square");
  }
  return LaplacianFromDense(affinity, kind);
}

Result<la::SparseMatrix> BuildSparseLaplacian(const la::SparseMatrix& w,
                                              LaplacianKind kind) {
  if (w.rows() != w.cols()) {
    return Status::InvalidArgument("Laplacian: affinity must be square");
  }
  const std::size_t n = w.rows();
  std::vector<double> deg = w.RowSums();
  const auto& offsets = w.row_offsets();
  const auto& cols = w.col_indices();
  const auto& vals = w.values();

  std::vector<double> inv_sqrt;
  if (kind == LaplacianKind::kSymmetric) {
    inv_sqrt.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
    }
  }

  // One triplet per nonzero of W plus one diagonal triplet per vertex;
  // FromTriplets sums a self-loop's off-diagonal term with the diagonal
  // one (two addends — order-insensitive), matching the dense scatter.
  std::vector<la::Triplet> trips;
  trips.reserve(w.nnz() + n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case LaplacianKind::kUnnormalized:
        for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
          trips.push_back({i, cols[k], -vals[k]});
        }
        trips.push_back({i, i, deg[i]});
        break;
      case LaplacianKind::kSymmetric:
        for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
          trips.push_back({i, cols[k], -inv_sqrt[i] * vals[k] *
                                           inv_sqrt[cols[k]]});
        }
        if (deg[i] > 0.0) trips.push_back({i, i, 1.0});
        break;
      case LaplacianKind::kRandomWalk: {
        const double inv = deg[i] > 0.0 ? 1.0 / deg[i] : 0.0;
        for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
          trips.push_back({i, cols[k], -inv * vals[k]});
        }
        if (deg[i] > 0.0) trips.push_back({i, i, 1.0});
        break;
      }
    }
  }
  return la::SparseMatrix::FromTriplets(n, n, std::move(trips));
}

}  // namespace graph
}  // namespace rhchme
