#include "graph/laplacian.h"

#include <cmath>

namespace rhchme {
namespace graph {
namespace {

/// Shared core: builds L from a dense affinity already materialised.
la::Matrix LaplacianFromDense(const la::Matrix& w, LaplacianKind kind) {
  const std::size_t n = w.rows();
  std::vector<double> deg = w.RowSums();
  la::Matrix l(n, n);
  switch (kind) {
    case LaplacianKind::kUnnormalized: {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) l(i, j) = -w(i, j);
        l(i, i) += deg[i];
      }
      break;
    }
    case LaplacianKind::kSymmetric: {
      std::vector<double> inv_sqrt(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          l(i, j) = -inv_sqrt[i] * w(i, j) * inv_sqrt[j];
        }
        l(i, i) += deg[i] > 0.0 ? 1.0 : 0.0;
      }
      break;
    }
    case LaplacianKind::kRandomWalk: {
      for (std::size_t i = 0; i < n; ++i) {
        const double inv = deg[i] > 0.0 ? 1.0 / deg[i] : 0.0;
        for (std::size_t j = 0; j < n; ++j) l(i, j) = -inv * w(i, j);
        l(i, i) += deg[i] > 0.0 ? 1.0 : 0.0;
      }
      break;
    }
  }
  return l;
}

}  // namespace

const char* LaplacianKindName(LaplacianKind kind) {
  switch (kind) {
    case LaplacianKind::kUnnormalized: return "unnormalized";
    case LaplacianKind::kSymmetric: return "symmetric";
    case LaplacianKind::kRandomWalk: return "random-walk";
  }
  return "?";
}

std::vector<double> DegreeVector(const la::SparseMatrix& affinity) {
  return affinity.RowSums();
}

std::vector<double> DegreeVector(const la::Matrix& affinity) {
  return affinity.RowSums();
}

Result<la::Matrix> BuildLaplacian(const la::SparseMatrix& affinity,
                                  LaplacianKind kind) {
  if (affinity.rows() != affinity.cols()) {
    return Status::InvalidArgument("Laplacian: affinity must be square");
  }
  return LaplacianFromDense(affinity.ToDense(), kind);
}

Result<la::Matrix> BuildLaplacian(const la::Matrix& affinity,
                                  LaplacianKind kind) {
  if (affinity.rows() != affinity.cols()) {
    return Status::InvalidArgument("Laplacian: affinity must be square");
  }
  return LaplacianFromDense(affinity, kind);
}

}  // namespace graph
}  // namespace rhchme
