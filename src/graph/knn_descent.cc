#include "graph/knn_descent.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "la/simd.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace rhchme {
namespace graph {
namespace {

/// Bounded chunk count for the shape-only triangular split of the exact
/// engine (same idiom and cap as the sparse scatter fallback): scratch is
/// O(n·p) per chunk, so the cap bounds peak memory at 16·n·p entries.
constexpr std::size_t kMaxExactChunks = 16;

/// Row panel height of the exact engine's distance tiles: each j-row load
/// is reused against a whole panel of i-rows while the panel's heap state
/// stays hot.
constexpr std::size_t kExactPanelRows = 8;

/// Total order on candidates: closer first, ties broken by index so every
/// merge order yields the same list.
inline bool CloserThan(double da, std::size_t ia, double db, std::size_t ib) {
  return da < db || (da == db && ia < ib);
}

/// Per-row top-p candidate heap over a caller-owned entry slab: a binary
/// max-heap ordered by CloserThan, worst candidate at the root so inserts
/// beyond capacity replace it in O(log p).
class TopPHeap {
 public:
  TopPHeap(KnnNeighbor* slab, std::size_t capacity, std::size_t size = 0)
      : slab_(slab), capacity_(capacity), size_(size) {}

  std::size_t size() const { return size_; }
  const KnnNeighbor& entry(std::size_t i) const { return slab_[i]; }

  bool full() const { return size_ == capacity_; }
  /// Root = worst entry when the heap is full.
  const KnnNeighbor& root() const { return slab_[0]; }

  bool Contains(std::size_t index) const {
    for (std::size_t t = 0; t < size_; ++t) {
      if (slab_[t].index == index) return true;
    }
    return false;
  }

  /// True when (index, distance) entered the heap.
  bool Push(std::size_t index, double distance) {
    if (size_ < capacity_) {
      slab_[size_++] = {index, distance};
      SiftUp(size_ - 1);
      return true;
    }
    if (!CloserThan(distance, index, slab_[0].distance, slab_[0].index)) {
      return false;
    }
    slab_[0] = {index, distance};
    SiftDown(0);
    return true;
  }

  /// Copies the entries out, sorted ascending by (distance, index).
  void ExtractSorted(std::vector<KnnNeighbor>* out) const {
    out->assign(slab_, slab_ + size_);
    std::sort(out->begin(), out->end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                return CloserThan(a.distance, a.index, b.distance, b.index);
              });
  }

 private:
  /// True when a is *farther* than b (the heap's "greater" order).
  static bool Farther(const KnnNeighbor& a, const KnnNeighbor& b) {
    return CloserThan(b.distance, b.index, a.distance, a.index);
  }

  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!Farther(slab_[i], slab_[parent])) break;
      std::swap(slab_[i], slab_[parent]);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    for (;;) {
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      std::size_t top = i;
      if (l < size_ && Farther(slab_[l], slab_[top])) top = l;
      if (r < size_ && Farther(slab_[r], slab_[top])) top = r;
      if (top == i) break;
      std::swap(slab_[i], slab_[top]);
      i = top;
    }
  }

  KnnNeighbor* slab_;
  std::size_t capacity_;
  std::size_t size_ = 0;
};

/// Shared metric state: squared row norms for kSquaredEuclidean (the
/// historical sq[i] + sq[j] − 2·dot grouping, kept so exact weights stay
/// bit-identical to the old dense path), row norms for kCosine.
struct MetricContext {
  const la::Matrix& points;
  KnnMetric metric;
  std::vector<double> norm;  // ‖x_i‖² (Euclidean) or ‖x_i‖ (cosine).
};

MetricContext MakeMetricContext(const la::Matrix& points, KnnMetric metric) {
  const std::size_t n = points.rows(), d = points.cols();
  MetricContext ctx{points, metric, std::vector<double>(n, 0.0)};
  util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* r = points.row_ptr(i);
                        const double sq = la::simd::Dot(r, r, d);
                        ctx.norm[i] =
                            metric == KnnMetric::kCosine ? std::sqrt(sq) : sq;
                      }
                    });
  return ctx;
}

inline double Distance(const MetricContext& ctx, std::size_t i,
                       std::size_t j) {
  const std::size_t d = ctx.points.cols();
  const double dot =
      la::simd::Dot(ctx.points.row_ptr(i), ctx.points.row_ptr(j), d);
  if (ctx.metric == KnnMetric::kSquaredEuclidean) {
    // max() guards the tiny negatives produced by cancellation.
    return std::max(0.0, ctx.norm[i] + ctx.norm[j] - 2.0 * dot);
  }
  if (ctx.norm[i] == 0.0 || ctx.norm[j] == 0.0) return 1.0;
  return 1.0 - dot / (ctx.norm[i] * ctx.norm[j]);
}

/// Cost-balanced boundaries of the triangular pair set: chunk k covers
/// rows [bounds[k], bounds[k+1]) such that every chunk owns about
/// total/chunks of the Σ (n−1−i) distance dots. Derived from (n, chunks)
/// only — never the pool size — so chunk identity survives any schedule.
std::vector<std::size_t> TriangularBounds(std::size_t n, std::size_t chunks) {
  std::vector<std::size_t> bounds(chunks + 1, n);
  bounds[0] = 0;
  const double total = 0.5 * static_cast<double>(n) * (n - 1);
  std::size_t row = 0;
  double done = 0.0;
  for (std::size_t k = 1; k < chunks; ++k) {
    const double target = total * static_cast<double>(k) /
                          static_cast<double>(chunks);
    while (row < n && done < target) {
      done += static_cast<double>(n - 1 - row);
      ++row;
    }
    bounds[k] = row;
  }
  return bounds;
}

/// Fixed chunk count of the descent join — shape-only so the proposal
/// merge order (chunk ascending, emission order within a chunk) never
/// depends on the pool size.
constexpr std::size_t kMaxJoinChunks = 16;

/// One improvement proposal from the generator-side join: `partner` at
/// distance `dist` challenges `target`'s current list.
struct JoinProposal {
  uint32_t target;
  uint32_t partner;
  double dist;
};

/// Pushes `cand` into the heap unless it is already present or provably
/// rejected; the cheap root test runs first so the O(size) membership
/// scan is only paid for candidates that would actually enter. Heap
/// content stays insertion-order-independent: an evicted entry can never
/// re-enter because eviction implies every survivor is closer in the
/// (distance, index) total order.
inline bool DedupPush(TopPHeap* heap, std::size_t cand, double dist) {
  if (heap->full() &&
      !CloserThan(dist, cand, heap->root().distance, heap->root().index)) {
    return false;
  }
  if (heap->Contains(cand)) return false;
  return heap->Push(cand, dist);
}

/// Seeds the n×p `lists` slabs from a random-projection forest: each tree
/// recursively halves the row set by a hyperplane through two sampled
/// rows (deterministic median split in the (projection, index) total
/// order) down to `leaf` rows, then joins every leaf exhaustively.
/// Leaves of one tree are disjoint, so the per-leaf parallel join owns
/// its rows' heaps exclusively; trees run sequentially. Requires
/// leaf >= 2·(p+1): a median split never creates a leaf smaller than
/// ceil(leaf/2) > p, so every heap comes out full.
///
/// `leaf_tags` (n × trees, tag t of node v at v*trees + t) records each
/// node's leaf ordinal per tree. A pair sharing a tag was already joined
/// exhaustively, and a pair that one endpoint's heap has seen can never
/// improve that heap again (rejection and eviction are monotone in the
/// (distance, index) total order) — so later trees and the descent rounds
/// skip tag-sharing pairs with bit-identical results.
void RpForestInit(const MetricContext& ctx, std::size_t p, int trees,
                  std::size_t leaf, uint64_t seed,
                  std::vector<KnnNeighbor>* lists,
                  std::vector<std::size_t>* sizes,
                  std::vector<uint32_t>* leaf_tags) {
  const std::size_t n = ctx.points.rows(), d = ctx.points.cols();
  struct Span {
    std::size_t lo, hi;
  };
  std::vector<uint32_t> idx(n), scratch(n);
  std::vector<double> proj(n), dir(d);
  std::vector<std::pair<double, uint32_t>> keys;
  std::vector<Span> stack, leaves;
  for (int tree = 0; tree < trees; ++tree) {
    for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
    stack.assign(1, Span{0, n});
    leaves.clear();
    uint64_t split_id = 0;
    const uint64_t tree_seed =
        DeriveStreamSeed(seed, 0xa11f0000ULL + static_cast<uint64_t>(tree));
    while (!stack.empty()) {
      const Span s = stack.back();
      stack.pop_back();
      const std::size_t m = s.hi - s.lo;
      if (m <= leaf) {
        leaves.push_back(s);
        continue;
      }
      // Hyperplane through two sampled rows: direction x_a − x_b.
      Rng rng = StreamRng(tree_seed, split_id++);
      const std::size_t a = s.lo + rng.UniformInt(m);
      std::size_t b = s.lo + rng.UniformInt(m);
      if (b == a) b = s.lo + (b + 1 - s.lo) % m;
      const double* xa = ctx.points.row_ptr(idx[a]);
      const double* xb = ctx.points.row_ptr(idx[b]);
      for (std::size_t j = 0; j < d; ++j) dir[j] = xa[j] - xb[j];
      keys.resize(m);
      for (std::size_t k = 0; k < m; ++k) {
        proj[s.lo + k] =
            la::simd::Dot(ctx.points.row_ptr(idx[s.lo + k]), dir.data(), d);
        keys[k] = {proj[s.lo + k], idx[s.lo + k]};
      }
      // Median split in the (projection, index) total order: exactly
      // m/2 keys are strictly below the pivot, so the stable two-way
      // scatter below fills the halves exactly — deterministic even
      // though nth_element's internal ordering is not.
      std::nth_element(keys.begin(), keys.begin() + m / 2, keys.end());
      const std::pair<double, uint32_t> pivot = keys[m / 2];
      std::size_t lo_at = s.lo, hi_at = s.lo + m / 2;
      for (std::size_t k = 0; k < m; ++k) {
        const std::pair<double, uint32_t> key{proj[s.lo + k], idx[s.lo + k]};
        scratch[key < pivot ? lo_at++ : hi_at++] = idx[s.lo + k];
      }
      std::copy(scratch.begin() + s.lo, scratch.begin() + s.hi,
                idx.begin() + s.lo);
      stack.push_back(Span{s.lo + m / 2, s.hi});
      stack.push_back(Span{s.lo, s.lo + m / 2});
    }
    // Exhaustive join inside every leaf: pair (a, b) is evaluated once
    // and challenges both endpoints' heaps. Rows are gathered up front so
    // the pair loop runs over L1-resident pointers. Pairs that shared a
    // leaf in an earlier tree are skipped (already joined there), which
    // also means no heap ever sees the same partner twice — plain pushes
    // suffice, no duplicate scan.
    const std::size_t t_now = static_cast<std::size_t>(tree);
    util::ParallelFor(
        0, leaves.size(), 1, [&](std::size_t l0, std::size_t l1) {
          std::vector<const double*> l_ptr(leaf);
          std::vector<double> l_norm(leaf);
          for (std::size_t l = l0; l < l1; ++l) {
            const Span s = leaves[l];
            const std::size_t m = s.hi - s.lo;
            for (std::size_t k = 0; k < m; ++k) {
              const std::size_t a = idx[s.lo + k];
              l_ptr[k] = ctx.points.row_ptr(a);
              l_norm[k] = ctx.norm[a];
            }
            for (std::size_t i = 0; i + 1 < m; ++i) {
              const std::size_t a = idx[s.lo + i];
              const double* pa = l_ptr[i];
              const double na = l_norm[i];
              const uint32_t* tag_a = leaf_tags->data() + a * trees;
              for (std::size_t j = i + 1; j < m; ++j) {
                const std::size_t b = idx[s.lo + j];
                const uint32_t* tag_b = leaf_tags->data() + b * trees;
                bool joined_before = false;
                for (std::size_t t = 0; t < t_now; ++t) {
                  if (tag_a[t] == tag_b[t]) {
                    joined_before = true;
                    break;
                  }
                }
                if (joined_before) continue;
                const double dot = la::simd::Dot(pa, l_ptr[j], d);
                double dist;
                if (ctx.metric == KnnMetric::kSquaredEuclidean) {
                  dist = std::max(0.0, na + l_norm[j] - 2.0 * dot);
                } else if (na == 0.0 || l_norm[j] == 0.0) {
                  dist = 1.0;
                } else {
                  dist = 1.0 - dot / (na * l_norm[j]);
                }
                TopPHeap ha(lists->data() + a * p, p, (*sizes)[a]);
                ha.Push(b, dist);
                (*sizes)[a] = ha.size();
                TopPHeap hb(lists->data() + b * p, p, (*sizes)[b]);
                hb.Push(a, dist);
                (*sizes)[b] = hb.size();
              }
            }
          }
        });
    // Record this tree's leaf ordinals only after its join, so the skip
    // test above never sees the tree's own tags.
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      for (std::size_t k = leaves[l].lo; k < leaves[l].hi; ++k) {
        (*leaf_tags)[idx[k] * trees + tree] = static_cast<uint32_t>(l);
      }
    }
  }
}

}  // namespace

Status KnnDescentOptions::Validate() const {
  if (max_iterations < 1) {
    return Status::InvalidArgument("NN-descent needs max_iterations >= 1");
  }
  if (termination_delta < 0.0) {
    return Status::InvalidArgument(
        "NN-descent termination_delta must be >= 0");
  }
  if (sample_rate <= 0.0 || sample_rate > 1.0) {
    return Status::InvalidArgument(
        "NN-descent sample_rate must be in (0, 1]");
  }
  if (rp_trees < 0) {
    return Status::InvalidArgument("NN-descent rp_trees must be >= 0");
  }
  if (leaf_size < 4) {
    return Status::InvalidArgument("NN-descent leaf_size must be >= 4");
  }
  return Status::OK();
}

KnnNeighborLists ExactKnnNeighbors(const la::Matrix& points, std::size_t p,
                                   KnnMetric metric) {
  const std::size_t n = points.rows(), d = points.cols();
  KnnNeighborLists out(n);
  if (n < 2) return out;
  p = std::min(p, n - 1);
  const MetricContext ctx = MakeMetricContext(points, metric);

  // Shape-only chunk count: enough chunks to amortise kMinWorkPerChunk
  // dots of length d each, capped so scratch stays O(n·p).
  const double total_pairs = 0.5 * static_cast<double>(n) * (n - 1);
  const std::size_t want =
      static_cast<std::size_t>(total_pairs * static_cast<double>(d) /
                               static_cast<double>(util::kMinWorkPerChunk)) +
      1;
  const std::size_t chunks = std::min(kMaxExactChunks, std::min(want, n));
  const std::vector<std::size_t> bounds = TriangularBounds(n, chunks);

  // Chunk k owns source rows [bounds[k], bounds[k+1]) and evaluates every
  // pair (i, j) with j > i in that range — each pair exactly once across
  // chunks. Both endpoints' candidates land in the chunk's own heap
  // scratch, which covers target rows [bounds[k], n); the merge below
  // walks chunks in fixed order.
  std::vector<std::vector<KnnNeighbor>> slabs(chunks);
  std::vector<std::vector<std::size_t>> sizes(chunks);
  util::ParallelFor(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      const std::size_t r0 = bounds[c], r1 = bounds[c + 1];
      if (r0 >= r1) continue;
      const std::size_t span = n - r0;
      slabs[c].resize(span * p);
      sizes[c].assign(span, 0);
      std::vector<TopPHeap> heaps;
      heaps.reserve(span);
      for (std::size_t t = 0; t < span; ++t) {
        heaps.emplace_back(slabs[c].data() + t * p, p);
      }
      // Row panels: each j-row is streamed once per panel and scored
      // against up to kExactPanelRows i-rows while their heaps stay hot.
      for (std::size_t i0 = r0; i0 < r1; i0 += kExactPanelRows) {
        const std::size_t i1 = std::min(i0 + kExactPanelRows, r1);
        for (std::size_t j = i0 + 1; j < n; ++j) {
          const std::size_t i_end = std::min(i1, j);
          for (std::size_t i = i0; i < i_end; ++i) {
            const double dist = Distance(ctx, i, j);
            if (heaps[i - r0].Push(j, dist)) sizes[c][i - r0] = heaps[i - r0].size();
            if (heaps[j - r0].Push(i, dist)) sizes[c][j - r0] = heaps[j - r0].size();
          }
        }
      }
    }
  });

  // Merge: row i's candidates are spread over the chunks whose scratch
  // covers it; every partner index appears exactly once (each pair was
  // evaluated once), so concatenating in chunk order and keeping the
  // closest p by (distance, index) is schedule-independent.
  util::ParallelFor(
      0, n, util::GrainForWork(chunks * p * 8 + 1),
      [&](std::size_t t0, std::size_t t1) {
        std::vector<KnnNeighbor> merged;
        for (std::size_t i = t0; i < t1; ++i) {
          merged.clear();
          for (std::size_t c = 0; c < chunks; ++c) {
            if (bounds[c] > i) break;  // Later chunks do not cover row i.
            if (bounds[c] >= bounds[c + 1]) continue;
            const std::size_t t = i - bounds[c];
            const KnnNeighbor* s = slabs[c].data() + t * p;
            merged.insert(merged.end(), s, s + sizes[c][t]);
          }
          std::sort(merged.begin(), merged.end(),
                    [](const KnnNeighbor& a, const KnnNeighbor& b) {
                      return CloserThan(a.distance, a.index, b.distance,
                                        b.index);
                    });
          if (merged.size() > p) merged.resize(p);
          out[i] = merged;
        }
      });
  return out;
}

Result<KnnNeighborLists> NnDescent(const la::Matrix& points, std::size_t p,
                                   KnnMetric metric,
                                   const KnnDescentOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  const std::size_t n = points.rows();
  KnnNeighborLists out(n);
  if (n < 2) return out;
  p = std::min(p, n - 1);
  if (p + 1 >= n) {
    // Every other point is a neighbour; the exact engine is already
    // O(n·p) here and descent could not prune anything.
    return ExactKnnNeighbors(points, p, metric);
  }
  const MetricContext ctx = MakeMetricContext(points, metric);
  const std::size_t d = points.cols();

  // Neighbour state as flat heap slabs: entry t of row v lives at v*p + t,
  // with the worst entry at slot 0 once the heap is full. `fresh` marks
  // entries not yet fed through a join round.
  std::vector<KnnNeighbor> lists(n * p);
  std::vector<char> fresh(n * p, 1);

  // Per-node leaf ordinals of the init forest (n × rp_trees): pairs
  // sharing a tag were joined exhaustively during init and are skipped by
  // every later pair scan (bit-identical, see RpForestInit).
  const std::size_t n_tags = static_cast<std::size_t>(opts.rp_trees);
  std::vector<uint32_t> leaf_tags(n * n_tags);
  if (opts.rp_trees > 0) {
    // Random-projection forest init: every heap comes out full because
    // the effective leaf keeps >= p + 1 rows per leaf (see RpForestInit).
    const std::size_t leaf =
        std::max<std::size_t>(opts.leaf_size, 2 * (p + 1));
    std::vector<std::size_t> sizes(n, 0);
    RpForestInit(ctx, p, opts.rp_trees, leaf, opts.seed, &lists, &sizes,
                 &leaf_tags);
  } else {
    // Reference fallback: random initial lists from per-node streams —
    // node v samples p distinct partners from [0, n) \ {v}.
    util::ParallelFor(
        0, n, util::GrainForWork(2 * d * p + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t v = r0; v < r1; ++v) {
            Rng rng = StreamRng(opts.seed, v);
            const std::vector<std::size_t> picks =
                rng.SampleWithoutReplacement(n - 1, p);
            TopPHeap heap(lists.data() + v * p, p);
            for (std::size_t raw : picks) {
              const std::size_t u = raw >= v ? raw + 1 : raw;  // Skip self.
              heap.Push(u, Distance(ctx, v, u));
            }
          }
        });
  }

  const std::size_t fwd_cap = static_cast<std::size_t>(
      std::ceil(opts.sample_rate * static_cast<double>(p)));
  const std::size_t rev_cap = 2 * fwd_cap;
  const std::size_t max_adj = p + rev_cap;
  const std::size_t update_floor = static_cast<std::size_t>(
      opts.termination_delta * static_cast<double>(n) *
      static_cast<double>(p));

  // Flat per-round state, allocated once. Forward edges: up to p kept
  // entries per node (old edges plus the sampled fresh ones). Reverse
  // edges: exact CSR of the kept forward edges, capped per node when the
  // adjacency is assembled.
  std::vector<uint32_t> fwd_node(n * p);
  std::vector<char> fwd_flag(n * p);
  std::vector<uint32_t> fwd_cnt(n);
  std::vector<uint32_t> rev_off(n + 1), rev_node(n * p);
  std::vector<char> rev_flag(n * p);
  std::vector<uint32_t> adj_off(n + 1), adj_node(n * max_adj);
  std::vector<char> adj_flag(n * max_adj);
  std::vector<double> worst(n);
  std::vector<std::vector<JoinProposal>> proposals(kMaxJoinChunks);
  for (auto& buf : proposals) buf.reserve(2 * (n / kMaxJoinChunks + 1) * p);
  std::vector<JoinProposal> by_target;
  by_target.reserve(2 * n * p);
  std::vector<uint32_t> target_off(n + 1);
  std::vector<KnnNeighbor> next(n * p);
  std::vector<char> next_fresh(n * p);
  std::vector<std::size_t> updates(n, 0);

  for (int round = 0; round < opts.max_iterations; ++round) {
    // ---- Forward thinning: node v keeps its settled entries plus at
    // most fwd_cap of its fresh ones, drawn from a (seed, round, node)
    // stream; sampled entries lose their flag, unsampled fresh entries
    // stay fresh and sit the round out (the rho-sampling of the paper).
    const uint64_t fwd_seed = DeriveStreamSeed(
        opts.seed, 0x7e7e0000ULL + static_cast<uint64_t>(round));
    const uint64_t rev_seed = DeriveStreamSeed(
        opts.seed, 0x5a5a0000ULL + static_cast<uint64_t>(round));
    util::ParallelFor(
        0, n, util::GrainForWork(64 * p + 1),
        [&](std::size_t r0, std::size_t r1) {
          std::vector<std::size_t> fresh_slots;
          for (std::size_t v = r0; v < r1; ++v) {
            fresh_slots.clear();
            uint32_t cnt = 0;
            for (std::size_t t = 0; t < p; ++t) {
              if (fresh[v * p + t]) {
                fresh_slots.push_back(t);
              } else {
                fwd_node[v * p + cnt] =
                    static_cast<uint32_t>(lists[v * p + t].index);
                fwd_flag[v * p + cnt] = 0;
                ++cnt;
              }
            }
            if (fresh_slots.size() > fwd_cap) {
              Rng rng = StreamRng(fwd_seed, v);
              std::vector<std::size_t> keep =
                  rng.SampleWithoutReplacement(fresh_slots.size(), fwd_cap);
              std::sort(keep.begin(), keep.end());
              for (std::size_t k : keep) {
                const std::size_t t = fresh_slots[k];
                fwd_node[v * p + cnt] =
                    static_cast<uint32_t>(lists[v * p + t].index);
                fwd_flag[v * p + cnt] = 1;
                ++cnt;
                fresh[v * p + t] = 0;
              }
            } else {
              for (std::size_t t : fresh_slots) {
                fwd_node[v * p + cnt] =
                    static_cast<uint32_t>(lists[v * p + t].index);
                fwd_flag[v * p + cnt] = 1;
                ++cnt;
                fresh[v * p + t] = 0;
              }
            }
            fwd_cnt[v] = cnt;
          }
        });

    // ---- Reverse CSR of the kept forward edges (serial counting
    // scatter in ascending source order: deterministic and O(n·p)).
    std::memset(rev_off.data(), 0, (n + 1) * sizeof(uint32_t));
    for (std::size_t v = 0; v < n; ++v) {
      for (uint32_t t = 0; t < fwd_cnt[v]; ++t) {
        ++rev_off[fwd_node[v * p + t] + 1];
      }
    }
    for (std::size_t v = 0; v < n; ++v) rev_off[v + 1] += rev_off[v];
    {
      std::vector<uint32_t> cursor(rev_off.begin(), rev_off.end() - 1);
      for (std::size_t v = 0; v < n; ++v) {
        for (uint32_t t = 0; t < fwd_cnt[v]; ++t) {
          const uint32_t u = fwd_node[v * p + t];
          rev_node[cursor[u]] = static_cast<uint32_t>(v);
          rev_flag[cursor[u]] = fwd_flag[v * p + t];
          ++cursor[u];
        }
      }
    }

    // ---- Adjacency assembly: forward entries plus at most rev_cap
    // reverse entries, oversized reverse lists thinned by a
    // (seed, round, node) stream. Exclusive per-node output ranges.
    adj_off[0] = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const uint32_t rdeg = rev_off[v + 1] - rev_off[v];
      adj_off[v + 1] =
          adj_off[v] + fwd_cnt[v] +
          std::min<uint32_t>(rdeg, static_cast<uint32_t>(rev_cap));
    }
    util::ParallelFor(
        0, n, util::GrainForWork(64 * max_adj + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t v = r0; v < r1; ++v) {
            uint32_t at = adj_off[v];
            for (uint32_t t = 0; t < fwd_cnt[v]; ++t) {
              adj_node[at] = fwd_node[v * p + t];
              adj_flag[at] = fwd_flag[v * p + t];
              ++at;
            }
            const uint32_t rb = rev_off[v], re = rev_off[v + 1];
            if (re - rb > rev_cap) {
              Rng rng = StreamRng(rev_seed, v);
              std::vector<std::size_t> keep =
                  rng.SampleWithoutReplacement(re - rb, rev_cap);
              std::sort(keep.begin(), keep.end());
              for (std::size_t k : keep) {
                adj_node[at] = rev_node[rb + k];
                adj_flag[at] = rev_flag[rb + k];
                ++at;
              }
            } else {
              for (uint32_t k = rb; k < re; ++k) {
                adj_node[at] = rev_node[k];
                adj_flag[at] = rev_flag[k];
                ++at;
              }
            }
          }
        });

    // ---- Generator-side join, pair evaluated once: node u scores every
    // pair in its adjacency with at least one fresh edge; improvements
    // against either endpoint's round-start worst distance (the full
    // heap's root) become proposals in the generator chunk's buffer.
    // Chunk layout is shape-only (kMaxJoinChunks uniform node ranges),
    // so buffer contents and order are schedule-independent.
    for (std::size_t v = 0; v < n; ++v) worst[v] = lists[v * p].distance;
    const std::size_t chunks = std::min(kMaxJoinChunks, n);
    util::ParallelFor(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
      std::vector<const double*> g_ptr(max_adj);
      std::vector<double> g_sq(max_adj), g_worst(max_adj);
      std::vector<uint32_t> g_id(max_adj), g_tag(max_adj * (n_tags + 1));
      std::vector<char> g_flag(max_adj);
      for (std::size_t c = c0; c < c1; ++c) {
        std::vector<JoinProposal>& out_props = proposals[c];
        out_props.clear();
        const std::size_t u0 = c * n / chunks, u1 = (c + 1) * n / chunks;
        for (std::size_t u = u0; u < u1; ++u) {
          const uint32_t b = adj_off[u], e = adj_off[u + 1];
          const std::size_t m = e - b;
          if (m < 2) continue;
          for (std::size_t i = 0; i < m; ++i) {
            const uint32_t a = adj_node[b + i];
            g_id[i] = a;
            g_flag[i] = adj_flag[b + i];
            g_ptr[i] = ctx.points.row_ptr(a);
            g_sq[i] = ctx.norm[a];
            g_worst[i] = worst[a];
            for (std::size_t t = 0; t < n_tags; ++t) {
              g_tag[i * n_tags + t] = leaf_tags[a * n_tags + t];
            }
          }
          for (std::size_t i = 0; i + 1 < m; ++i) {
            const uint32_t a = g_id[i];
            const double* pa = g_ptr[i];
            const double na = g_sq[i], wa = g_worst[i];
            const char fa = g_flag[i];
            const uint32_t* tag_a = g_tag.data() + i * n_tags;
            for (std::size_t j = i + 1; j < m; ++j) {
              if (!(fa | g_flag[j])) continue;
              const uint32_t cnd = g_id[j];
              if (a == cnd) continue;
              // Same init leaf in some tree: the pair was already joined
              // exhaustively there, so it cannot improve either list.
              bool joined_before = false;
              for (std::size_t t = 0; t < n_tags; ++t) {
                if (tag_a[t] == g_tag[j * n_tags + t]) {
                  joined_before = true;
                  break;
                }
              }
              if (joined_before) continue;
              const double dot = la::simd::Dot(pa, g_ptr[j], d);
              double dist;
              if (metric == KnnMetric::kSquaredEuclidean) {
                dist = std::max(0.0, na + g_sq[j] - 2.0 * dot);
              } else if (na == 0.0 || g_sq[j] == 0.0) {
                dist = 1.0;
              } else {
                dist = 1.0 - dot / (na * g_sq[j]);
              }
              if (dist < wa) out_props.push_back({a, cnd, dist});
              if (dist < g_worst[j]) out_props.push_back({cnd, a, dist});
            }
          }
        }
      }
    });

    // ---- Proposal scatter: stable counting sort by target over the
    // chunk buffers in chunk order — the per-target segments therefore
    // have a schedule-independent order.
    std::memset(target_off.data(), 0, (n + 1) * sizeof(uint32_t));
    std::size_t total_props = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      total_props += proposals[c].size();
      for (const JoinProposal& pr : proposals[c]) ++target_off[pr.target + 1];
    }
    for (std::size_t v = 0; v < n; ++v) target_off[v + 1] += target_off[v];
    by_target.resize(total_props);
    {
      std::vector<uint32_t> cursor(target_off.begin(), target_off.end() - 1);
      for (std::size_t c = 0; c < chunks; ++c) {
        for (const JoinProposal& pr : proposals[c]) {
          by_target[cursor[pr.target]++] = pr;
        }
      }
    }

    // ---- Apply, per-target ownership: each list absorbs its proposal
    // segment through the dedup heap; freshness is recomputed with
    // carry-over (an entry that survives keeps its previous flag, a new
    // entry starts fresh).
    std::copy(lists.begin(), lists.end(), next.begin());
    std::copy(fresh.begin(), fresh.end(), next_fresh.begin());
    util::ParallelFor(
        0, n, util::GrainForWork(64 * p + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t v = r0; v < r1; ++v) {
            const uint32_t b = target_off[v], e = target_off[v + 1];
            updates[v] = 0;
            if (b == e) continue;
            TopPHeap heap(next.data() + v * p, p, p);
            std::size_t count = 0;
            for (uint32_t i = b; i < e; ++i) {
              const JoinProposal& pr = by_target[i];
              if (DedupPush(&heap, pr.partner, pr.dist)) ++count;
            }
            updates[v] = count;
            if (count == 0) continue;
            for (std::size_t t = 0; t < p; ++t) {
              const std::size_t idx = next[v * p + t].index;
              char flag = 1;
              for (std::size_t s = 0; s < p; ++s) {
                if (lists[v * p + s].index == idx) {
                  flag = fresh[v * p + s];
                  break;
                }
              }
              next_fresh[v * p + t] = flag;
            }
          }
        });
    std::size_t total_updates = 0;
    for (std::size_t v = 0; v < n; ++v) total_updates += updates[v];
    lists.swap(next);
    fresh.swap(next_fresh);
    if (total_updates <= update_floor) break;
  }

  util::ParallelFor(0, n, util::GrainForWork(8 * p + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t v = r0; v < r1; ++v) {
                        out[v].assign(lists.begin() + v * p,
                                      lists.begin() + (v + 1) * p);
                        std::sort(out[v].begin(), out[v].end(),
                                  [](const KnnNeighbor& a,
                                     const KnnNeighbor& b) {
                                    return CloserThan(a.distance, a.index,
                                                      b.distance, b.index);
                                  });
                      }
                    });
  return out;
}

}  // namespace graph
}  // namespace rhchme
