#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace cluster {
namespace {

double SquaredDistance(const double* a, const double* b, std::size_t d) {
  return la::simd::SquaredDistance(a, b, d);
}

/// k-means++: first centre uniform, then proportional to D².
la::Matrix SeedPlusPlus(const la::Matrix& points, std::size_t k, Rng* rng) {
  const std::size_t n = points.rows(), d = points.cols();
  // KMeans() validates this for callers; the check here keeps the seeding
  // from silently sampling duplicate centres if it is ever reached on a
  // path that skipped validation.
  RHCHME_CHECK(k >= 1 && k <= n, "SeedPlusPlus: requires 1 <= k <= n");
  la::Matrix centroids(k, d);
  std::size_t first = rng->UniformInt(n);
  centroids.SetBlock(0, 0, points.Block(first, 0, 1, d));

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  for (std::size_t c = 1; c < k; ++c) {
    // D² refresh against the newest centre; rows are independent.
    util::ParallelFor(0, n, util::GrainForWork(2 * d + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          double v = SquaredDistance(
                              points.row_ptr(i), centroids.row_ptr(c - 1), d);
                          if (v < dist2[i]) dist2[i] = v;
                        }
                      });
    double total = 0.0;
    for (double v : dist2) total += v;
    std::size_t chosen;
    if (total <= 0.0) {
      chosen = rng->UniformInt(n);  // All points identical to a centre.
    } else {
      chosen = rng->Categorical(dist2);
    }
    centroids.SetBlock(c, 0, points.Block(chosen, 0, 1, d));
  }
  return centroids;
}

struct LloydOutcome {
  std::vector<std::size_t> assignments;
  la::Matrix centroids;
  double inertia;
  int iterations;
};

LloydOutcome RunLloyd(const la::Matrix& points, la::Matrix centroids,
                      const KMeansOptions& opts, Rng* rng) {
  const std::size_t n = points.rows(), d = points.cols(), k = opts.k;
  std::vector<std::size_t> assign(n, 0);
  std::vector<double> best_dist(n, 0.0);
  double prev_inertia = std::numeric_limits<double>::max();
  double inertia = prev_inertia;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    // Assignment step: each point's nearest centre is independent, so the
    // scan parallelises over rows. Per-point best distances are staged in
    // best_dist and summed serially in row order afterwards, which keeps
    // the inertia bit-identical for any thread count.
    util::ParallelFor(
        0, n, util::GrainForWork(2 * d * k + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t i = r0; i < r1; ++i) {
            double best = std::numeric_limits<double>::max();
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
              double v =
                  SquaredDistance(points.row_ptr(i), centroids.row_ptr(c), d);
              if (v < best) {
                best = v;
                best_c = c;
              }
            }
            assign[i] = best_c;
            best_dist[i] = best;
          }
        });
    inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) inertia += best_dist[i];
    // Convergence needs a *nonnegative* improvement below the tolerance:
    // a rise (delta < 0) must keep iterating, not satisfy
    // `delta < tolerance` through a large negative value.
    const double delta = prev_inertia - inertia;
    if (delta >= 0.0 && delta < opts.tolerance) {
      ++it;
      break;
    }
    prev_inertia = inertia;
    // Update step; empty clusters are re-seeded on a random point. The
    // update runs only when another assignment pass will re-evaluate it,
    // so every exit — convergence break or iteration cap — returns the
    // exact (assignments, centroids, inertia) triple the assignment step
    // measured, and a reseeded centre is never returned sight-unseen.
    if (it + 1 >= opts.max_iterations) continue;  // Cap: no trailing update.
    centroids.Fill(0.0);
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      double* cr = centroids.row_ptr(assign[i]);
      const double* pr = points.row_ptr(i);
      for (std::size_t j = 0; j < d; ++j) cr[j] += pr[j];
      ++count[assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (count[c] == 0) {
        centroids.SetBlock(c, 0, points.Block(rng->UniformInt(n), 0, 1, d));
        continue;
      }
      double inv = 1.0 / static_cast<double>(count[c]);
      double* cr = centroids.row_ptr(c);
      for (std::size_t j = 0; j < d; ++j) cr[j] *= inv;
    }
  }
  return {std::move(assign), std::move(centroids), inertia, it};
}

}  // namespace

Status KMeansOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k-means needs k >= 1");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("k-means needs max_iterations >= 1");
  }
  if (restarts <= 0) {
    return Status::InvalidArgument("k-means needs restarts >= 1");
  }
  return Status::OK();
}

Result<KMeansResult> KMeans(const la::Matrix& points,
                            const KMeansOptions& opts, Rng* rng) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  if (points.rows() < opts.k) {
    return Status::InvalidArgument("k-means: fewer points than clusters");
  }

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int r = 0; r < opts.restarts; ++r) {
    LloydOutcome out =
        RunLloyd(points, SeedPlusPlus(points, opts.k, rng), opts, rng);
    if (out.inertia < best.inertia) {
      best.assignments = std::move(out.assignments);
      best.centroids = std::move(out.centroids);
      best.inertia = out.inertia;
      best.iterations = out.iterations;
    }
  }
  return best;
}

}  // namespace cluster
}  // namespace rhchme
