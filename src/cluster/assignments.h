// Conversions between soft membership matrices and hard cluster labels.
//
// The HOCC solvers produce a nonnegative membership matrix G whose row i
// scores object i against each cluster; the evaluation metrics consume hard
// labels. These helpers also build the k-means-based initial G of
// Algorithm 2.

#ifndef RHCHME_CLUSTER_ASSIGNMENTS_H_
#define RHCHME_CLUSTER_ASSIGNMENTS_H_

#include <vector>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace cluster {

/// Hard labels: argmax over columns [c0, c1) of each row in [r0, r1).
/// Labels are relative to c0 (i.e. in [0, c1-c0)). A pass with
/// c0 = 0, c1 = G.cols(), r0 = 0, r1 = G.rows() covers the whole matrix.
std::vector<std::size_t> HardAssignments(const la::Matrix& g, std::size_t r0,
                                         std::size_t r1, std::size_t c0,
                                         std::size_t c1);

/// Hard labels over the full matrix.
std::vector<std::size_t> HardAssignments(const la::Matrix& g);

/// Builds an n x k membership block from hard labels: row i carries
/// (1 - smoothing) on labels[i] and smoothing/(k-1) elsewhere (so the
/// multiplicative updates never start at exact zeros, which they cannot
/// leave). Rows are L1-normalised.
la::Matrix MembershipFromLabels(const std::vector<std::size_t>& labels,
                                std::size_t k, double smoothing = 0.2);

/// Random row-stochastic n x k membership block (uniform + jitter).
la::Matrix RandomMembership(std::size_t n, std::size_t k, Rng* rng);

}  // namespace cluster
}  // namespace rhchme

#endif  // RHCHME_CLUSTER_ASSIGNMENTS_H_
