// Lloyd's k-means with k-means++ seeding.
//
// Algorithm 2 of the paper initialises the cluster-membership matrix G by
// k-means on each type's feature vectors; the DRCC baseline and several
// tests use it directly.

#ifndef RHCHME_CLUSTER_KMEANS_H_
#define RHCHME_CLUSTER_KMEANS_H_

#include <vector>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace cluster {

struct KMeansOptions {
  std::size_t k = 2;         ///< Number of clusters (>= 1).
  int max_iterations = 100;  ///< Lloyd iteration cap.
  double tolerance = 1e-6;   ///< Stop when inertia improves less than this.
  int restarts = 3;          ///< Independent k-means++ restarts; best kept.

  Status Validate() const;
};

struct KMeansResult {
  std::vector<std::size_t> assignments;  ///< Cluster id per input row.
  la::Matrix centroids;                  ///< k x d centroid matrix.
  double inertia = 0.0;                  ///< Sum of squared distances.
  int iterations = 0;                    ///< Lloyd iterations of best run.
};

/// Clusters the rows of `points` into k groups. Deterministic given `rng`
/// state. Requires points.rows() >= k >= 1.
Result<KMeansResult> KMeans(const la::Matrix& points,
                            const KMeansOptions& opts, Rng* rng);

}  // namespace cluster
}  // namespace rhchme

#endif  // RHCHME_CLUSTER_KMEANS_H_
