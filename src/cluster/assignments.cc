#include "cluster/assignments.h"

namespace rhchme {
namespace cluster {

std::vector<std::size_t> HardAssignments(const la::Matrix& g, std::size_t r0,
                                         std::size_t r1, std::size_t c0,
                                         std::size_t c1) {
  RHCHME_CHECK(r0 <= r1 && r1 <= g.rows(), "row range out of bounds");
  RHCHME_CHECK(c0 < c1 && c1 <= g.cols(), "column range out of bounds");
  std::vector<std::size_t> labels;
  labels.reserve(r1 - r0);
  for (std::size_t i = r0; i < r1; ++i) {
    std::size_t best = c0;
    for (std::size_t j = c0 + 1; j < c1; ++j) {
      if (g(i, j) > g(i, best)) best = j;
    }
    labels.push_back(best - c0);
  }
  return labels;
}

std::vector<std::size_t> HardAssignments(const la::Matrix& g) {
  return HardAssignments(g, 0, g.rows(), 0, g.cols());
}

la::Matrix MembershipFromLabels(const std::vector<std::size_t>& labels,
                                std::size_t k, double smoothing) {
  RHCHME_CHECK(k >= 1, "k must be >= 1");
  RHCHME_CHECK(smoothing >= 0.0 && smoothing < 1.0, "smoothing in [0,1)");
  la::Matrix g(labels.size(), k);
  const double off = k > 1 ? smoothing / static_cast<double>(k - 1) : 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    RHCHME_CHECK(labels[i] < k, "label out of range");
    for (std::size_t j = 0; j < k; ++j) g(i, j) = off;
    g(i, labels[i]) = 1.0 - smoothing;
  }
  g.NormalizeRowsL1(0, k);
  return g;
}

la::Matrix RandomMembership(std::size_t n, std::size_t k, Rng* rng) {
  la::Matrix g(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) g(i, j) = 0.5 + rng->Uniform();
  }
  g.NormalizeRowsL1(0, k);
  return g;
}

}  // namespace cluster
}  // namespace rhchme
