// Multiple-subspace affinity learning (paper §III.A, Algorithm 1).
//
// Learns the self-expressive affinity W solving
//
//   min_{W >= 0, diag(W) = 0}  gamma * ||X - W·X||²_F + ||W·Wᵀ||₁      (Eq. 9)
//
// by the nonmonotone Spectral Projected Gradient method of Birgin,
// Martínez & Raydan [25]. Objects are ROWS of X here (the paper uses
// columns), so self-expression reads X ≈ W·X. For nonnegative W the
// SSQP-style regulariser satisfies ||W·Wᵀ||₁ = ||1ᵀW||²₂, giving the
// gradient 2γ(W·Q − Q) + 2·1·(1ᵀW) with Q = X·Xᵀ (DESIGN.md §5.1/5.2
// documents the deviations from the paper's typo'd formulas).
//
// The point of this learner (Fig. 1): two objects far apart in Euclidean
// space but on the same low-dimensional subspace obtain a nonzero
// affinity, which a p-nearest-neighbour graph cannot deliver.

#ifndef RHCHME_CORE_SUBSPACE_H_
#define RHCHME_CORE_SUBSPACE_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace core {

/// Spectral Projected Gradient solver knobs.
struct SpgOptions {
  int max_iterations = 80;
  /// Stop when the projected-gradient step has infinity norm below this.
  double tolerance = 1e-5;
  /// Barzilai–Borwein steplength clamp (standard SPG safeguards).
  double step_min = 1e-10;
  double step_max = 1e10;

  Status Validate() const;
};

struct SubspaceOptions {
  /// Noise-tolerance gamma of Eq. 9 — larger means "trust the
  /// reconstruction more" (cleaner data). The paper reports gamma ∈
  /// [10, 50] on its corpora (Fig. 2); the value scales with data
  /// magnitude and our synthetic corpora sit best around 5 (the Fig. 2
  /// bench re-derives this sweep).
  double gamma = 5.0;
  /// Keep only the k strongest affinities per row (0 = keep all).
  /// Eq. 5 wants W zero across subspaces; on noisy data the solved W
  /// carries cross-subspace dust, and keeping the top-k entries per
  /// object restores that sparsity pattern.
  std::size_t keep_top_k = 0;
  /// Weight of the affine-combination penalty eta·||W·1 − 1||²₂.
  /// Eq. 4/6 of the paper constrain each object's coefficients to sum
  /// to one (affine self-expression) but Eq. 9 drops the constraint; a
  /// positive eta restores it softly. Needed when the manifolds are
  /// affine rather than linear subspaces (e.g. the Fig. 1 circles in
  /// monomial coordinates). 0 reproduces Eq. 9 exactly.
  double affine_penalty = 0.0;
  SpgOptions spg;
  /// Symmetrise the learned affinity to (W + Wᵀ)/2 — a graph Laplacian
  /// needs a symmetric affinity.
  bool symmetrize = true;
  /// L2-normalise each object row before learning (standard practice in
  /// the SSC/LRR/SSQP family): subspace membership is direction, not
  /// magnitude, so corrupted high-magnitude rows stop dominating the
  /// self-expression.
  bool normalize_rows = true;
  /// Zero out affinities below this fraction of the matrix max
  /// (suppresses numerical dust; 0 disables).
  double prune_rel_tol = 1e-6;
  uint64_t seed = 12345;  ///< Random initialisation of W (paper Algorithm 1).

  Status Validate() const;
};

struct SubspaceResult {
  /// Learned affinity W: nonnegative, zero diagonal, symmetric when
  /// requested. This is the paper's W^S for one object type.
  la::Matrix affinity;
  std::vector<double> objective_trace;  ///< J₂ after each SPG iteration.
  int iterations = 0;
  bool converged = false;
};

/// Runs Algorithm 1 on one object type. `objects` holds one object per
/// row (n x D). Requires n >= 2.
Result<SubspaceResult> LearnSubspaceAffinity(const la::Matrix& objects,
                                             const SubspaceOptions& opts);

/// The objective J₂ of Eq. 9 at W (exposed for tests: descent property,
/// optimality checks). `gram` is X·Xᵀ.
double SubspaceObjective(const la::Matrix& w, const la::Matrix& gram,
                         double gamma);

/// Projection of Eq. 11: zero diagonal, negatives clamped to zero.
void ProjectFeasible(la::Matrix* w);

}  // namespace core
}  // namespace rhchme

#endif  // RHCHME_CORE_SUBSPACE_H_
