// Solver checkpoint/resume (fault tolerance).
//
// A SolverSnapshot captures everything the RHCHME iteration loop needs to
// continue a fit bit-identically after a crash: the factors G and S, the
// E_R scales, the objective trace, the RNG stream position and the
// recovery counters. The determinism contract (bit-identical traces across
// thread counts, chunk-ordered reductions) is what makes resume exact
// rather than approximate — replaying iteration t+1 from a snapshot at t
// performs the same floating-point operations in the same order as the
// uninterrupted fit.
//
// On-disk format "RHS1" (host endianness, like the RHM1 matrix format):
//
//   magic "RHS1" | uint32 version | payload | uint64 FNV-1a checksum
//
// where the payload is fixed-width scalars (core id, options fingerprint,
// iteration, previous objective, RNG state, diagnostics counters) followed
// by the G and S matrices in the RHM1 payload layout and two
// length-prefixed double vectors (er_scale, objective_trace). The
// checksum covers everything before it, so any truncation or bit flip is
// a clean non-OK Status on load — never UB, never a silently wrong
// resume. Writes go to path + ".tmp" and land with std::rename, so the
// snapshot file is always a complete snapshot (the previous one until the
// rename commits).

#ifndef RHCHME_CORE_CHECKPOINT_H_
#define RHCHME_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rhchme_solver.h"
#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace core {

/// Which solver core wrote the snapshot. Resuming under a different core
/// is rejected (the cores' loop states are not interchangeable: the dense
/// cores carry Q in a workspace, the sparse-R core recomputes H/K/GᵀG).
enum class SolverCoreId : uint32_t {
  kDenseImplicit = 0,
  kDenseExplicit = 1,
  kSparseR = 2,
};

/// Mid-fit solver state, captured after iteration `iteration` completed
/// (its objective is objective_trace.back()).
struct SolverSnapshot {
  SolverCoreId core_id = SolverCoreId::kDenseImplicit;
  /// Fingerprint of the trajectory-affecting options + problem shape (see
  /// OptionsFingerprint). A mismatch on load is FailedPrecondition.
  uint64_t options_fingerprint = 0;
  int iteration = 0;               ///< Completed iterations (1-based count).
  double prev_objective = 0.0;     ///< Objective after `iteration`.
  bool have_error = false;         ///< E_R scales valid (use_error_matrix).
  Rng::State rng_state;            ///< Solver RNG stream position.
  FitDiagnostics diagnostics;      ///< Counters accumulated so far.
  la::Matrix g;                    ///< Joint n x c membership.
  la::Matrix s;                    ///< Joint c x c association.
  std::vector<double> er_scale;    ///< Per-row E_R scales (may be empty).
  std::vector<double> objective_trace;
};

/// FNV-1a over the options that determine the fit trajectory (lambda,
/// beta, tolerance, ridge, mu_eps, l21_zeta, init, seed, normalize_rows,
/// use_error_matrix, assume_symmetric_r) plus the problem shape (n, c)
/// and the solver core. Deliberately EXCLUDES max_iterations and the
/// checkpoint options themselves: resuming a killed 7-iteration run with
/// a larger budget is the intended use, and where a snapshot lands must
/// not affect whether it can be loaded. The ensemble is not fingerprinted
/// (FitWithEnsemble takes it as an argument); resuming against a
/// different ensemble of the same shape is the caller's responsibility.
uint64_t OptionsFingerprint(const RhchmeOptions& opts, std::size_t n,
                            std::size_t c, SolverCoreId core_id);

/// Serialises and atomically replaces `path` (write path + ".tmp", then
/// rename). Any failure — including the io.snapshot.* injection sites —
/// leaves the previous snapshot file untouched.
Status SaveSolverSnapshot(const std::string& path, const SolverSnapshot& snap);

/// Loads and verifies a snapshot. NotFound when the file does not exist
/// (callers treat that as "fresh fit" under resume); InvalidArgument for
/// truncation, checksum mismatch, bad magic or implausible shapes; any
/// version this build does not understand is FailedPrecondition.
Result<SolverSnapshot> LoadSolverSnapshot(const std::string& path);

}  // namespace core
}  // namespace rhchme

#endif  // RHCHME_CORE_CHECKPOINT_H_
