#include "core/ensemble.h"

#include <utility>

#include "util/parallel.h"
#include "util/rng.h"

namespace rhchme {
namespace core {
namespace {

/// One ensemble-member construction unit: learn the affinity of member
/// (`type`, subspace-or-pNN) and its Laplacian. Members are mutually
/// independent, so they run one-per-task on the thread pool.
struct MemberTask {
  std::size_t type;
  bool subspace;  // false = pNN member.
};

/// Runs `fn(t)` for every task index. Dispatches through ParallelFor only
/// when there is real fan-out: a single task runs directly on the caller
/// so its own inner parallel regions (SPG GEMMs, pairwise distances)
/// still reach the pool instead of being serialised as nested regions.
template <typename Fn>
void RunTasks(std::size_t count, const Fn& fn) {
  if (count <= 1) {
    for (std::size_t t = 0; t < count; ++t) fn(t);
    return;
  }
  util::ParallelFor(0, count, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t t = b; t < e; ++t) fn(t);
  });
}

/// Assembles the joint sparse Laplacian alpha·L_S + L_E from per-type
/// member Laplacians (dense L_S blocks, sparse L_E blocks; either may be
/// empty). Blocks land at their type offsets; overlapping (i, j) entries
/// of the two members are summed by FromTriplets (two addends —
/// order-insensitive), so the assembly is deterministic.
la::SparseMatrix AssembleJointLaplacian(
    const fact::BlockStructure& blocks,
    const std::vector<la::Matrix>& subspace_lap,
    const std::vector<la::SparseMatrix>& knn_lap, double alpha) {
  std::vector<la::Triplet> trips;
  std::size_t nnz_bound = 0;
  for (std::size_t k = 0; k < blocks.num_types(); ++k) {
    nnz_bound += subspace_lap[k].size() + knn_lap[k].nnz();
  }
  trips.reserve(nnz_bound);
  for (std::size_t k = 0; k < blocks.num_types(); ++k) {
    const std::size_t off = blocks.type_offset[k];
    const la::Matrix& ls = subspace_lap[k];
    for (std::size_t i = 0; i < ls.rows(); ++i) {
      const double* row = ls.row_ptr(i);
      for (std::size_t j = 0; j < ls.cols(); ++j) {
        const double v = alpha * row[j];
        if (v != 0.0) trips.push_back({off + i, off + j, v});
      }
    }
    const la::SparseMatrix& le = knn_lap[k];
    const auto& offsets = le.row_offsets();
    const auto& cols = le.col_indices();
    const auto& vals = le.values();
    for (std::size_t i = 0; i < le.rows(); ++i) {
      for (std::size_t p = offsets[i]; p < offsets[i + 1]; ++p) {
        trips.push_back({off + i, off + cols[p], vals[p]});
      }
    }
  }
  return la::SparseMatrix::FromTriplets(
      blocks.total_objects(), blocks.total_objects(), std::move(trips));
}

}  // namespace

Status EnsembleOptions::Validate() const {
  if (!include_subspace && !include_knn) {
    return Status::InvalidArgument(
        "ensemble needs at least one member (subspace or pNN)");
  }
  if (alpha < 0.0) {
    return Status::InvalidArgument("ensemble alpha must be nonnegative");
  }
  RHCHME_RETURN_IF_ERROR(knn.Validate());
  return subspace.Validate();
}

Result<HeterogeneousEnsemble> BuildEnsemble(
    const data::MultiTypeRelationalData& data,
    const fact::BlockStructure& blocks, const EnsembleOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());

  const std::size_t num_types = data.NumTypes();
  for (std::size_t k = 0; k < num_types; ++k) {
    if (data.Type(k).features.empty()) {
      return Status::FailedPrecondition(
          "type '" + data.Type(k).name +
          "' has no features; intra-type relationships cannot be learned");
    }
  }

  HeterogeneousEnsemble out;
  out.alpha = opts.alpha;
  out.subspace_affinity.resize(num_types);
  out.knn_affinity.resize(num_types);

  // One candidate manifold per task (ROADMAP threading item): every
  // (type, member) pair learns its affinity and Laplacian independently.
  // Stochastic members (subspace init, NN-descent backend) draw seeds
  // from DeriveStreamSeed(seed, type), fixed before dispatch, so the
  // ensemble is reproducible for any schedule or pool size. Tasks write
  // only their own slots; assembly stays serial.
  std::vector<MemberTask> tasks;
  tasks.reserve(2 * num_types);
  for (std::size_t k = 0; k < num_types; ++k) {
    if (opts.include_subspace) tasks.push_back({k, true});
    if (opts.include_knn) tasks.push_back({k, false});
  }
  std::vector<la::Matrix> subspace_lap(num_types);
  std::vector<la::SparseMatrix> knn_lap(num_types);
  std::vector<Status> task_status(tasks.size());

  // Non-finite feature entries (kNonFinite row corruption, bad upstream
  // data) would propagate through every distance and subspace iterate
  // into the whole joint Laplacian. Affected types work on a zero-filled
  // local copy; the clean common case pays only the finiteness scan and
  // shares the caller's matrices untouched.
  std::vector<la::Matrix> sanitized(num_types);
  for (std::size_t k = 0; k < num_types; ++k) {
    const la::Matrix& features = data.Type(k).features;
    if (!features.AllFinite()) {
      sanitized[k] = features;
      sanitized[k].ReplaceNonFinite(0.0);
    }
  }

  RunTasks(tasks.size(), [&](std::size_t t) {
    const MemberTask& task = tasks[t];
    const la::Matrix& features = sanitized[task.type].empty()
                                     ? data.Type(task.type).features
                                     : sanitized[task.type];
    if (task.subspace) {
      SubspaceOptions sub = opts.subspace;
      // Per-type stream keeps the W initialisations independent.
      sub.seed = DeriveStreamSeed(opts.subspace.seed, task.type);
      Result<SubspaceResult> learned =
          LearnSubspaceAffinity(features, sub);
      if (!learned.ok()) {
        task_status[t] = learned.status();
        return;
      }
      out.subspace_affinity[task.type] = std::move(learned).value().affinity;
      Result<la::Matrix> lap =
          graph::BuildLaplacian(out.subspace_affinity[task.type],
                                opts.laplacian);
      if (!lap.ok()) {
        task_status[t] = lap.status();
        return;
      }
      subspace_lap[task.type] = std::move(lap).value();
    } else {
      graph::KnnGraphOptions knn_opts = opts.knn;
      // Per-type stream for the NN-descent backend's random init, fixed
      // before dispatch like the subspace seed above (no-op for exact).
      knn_opts.descent.seed =
          DeriveStreamSeed(opts.knn.descent.seed, task.type);
      Result<la::SparseMatrix> knn =
          graph::BuildKnnGraph(features, knn_opts);
      if (!knn.ok()) {
        task_status[t] = knn.status();
        return;
      }
      out.knn_affinity[task.type] = std::move(knn).value();
      Result<la::SparseMatrix> lap = graph::BuildSparseLaplacian(
          out.knn_affinity[task.type], opts.laplacian);
      if (!lap.ok()) {
        task_status[t] = lap.status();
        return;
      }
      knn_lap[task.type] = std::move(lap).value();
    }
  });
  for (const Status& status : task_status) {
    if (!status.ok()) return status;
  }

  out.laplacian =
      AssembleJointLaplacian(blocks, subspace_lap, knn_lap, opts.alpha);
  return out;
}

Result<HeterogeneousEnsemble> ReweightEnsemble(
    const HeterogeneousEnsemble& base, const fact::BlockStructure& blocks,
    double alpha, graph::LaplacianKind kind) {
  if (alpha < 0.0) {
    return Status::InvalidArgument("ensemble alpha must be nonnegative");
  }
  if (base.subspace_affinity.size() != blocks.num_types() ||
      base.knn_affinity.size() != blocks.num_types()) {
    return Status::InvalidArgument(
        "ensemble members do not match the block structure");
  }
  HeterogeneousEnsemble out = base;
  out.alpha = alpha;
  // Laplacian rebuilds are per-type independent; tasks fill their own
  // member slots, then the joint sparse Laplacian is assembled serially
  // in type order.
  std::vector<la::Matrix> subspace_lap(blocks.num_types());
  std::vector<la::SparseMatrix> knn_lap(blocks.num_types());
  std::vector<Status> task_status(blocks.num_types());
  RunTasks(blocks.num_types(), [&](std::size_t k) {
    if (!base.subspace_affinity[k].empty()) {
      Result<la::Matrix> lap =
          graph::BuildLaplacian(base.subspace_affinity[k], kind);
      if (!lap.ok()) {
        task_status[k] = lap.status();
        return;
      }
      subspace_lap[k] = std::move(lap).value();
    }
    if (base.knn_affinity[k].nnz() > 0) {
      Result<la::SparseMatrix> lap =
          graph::BuildSparseLaplacian(base.knn_affinity[k], kind);
      if (!lap.ok()) {
        task_status[k] = lap.status();
        return;
      }
      knn_lap[k] = std::move(lap).value();
    }
  });
  for (const Status& status : task_status) {
    if (!status.ok()) return status;
  }
  out.laplacian = AssembleJointLaplacian(blocks, subspace_lap, knn_lap, alpha);
  return out;
}

}  // namespace core
}  // namespace rhchme
