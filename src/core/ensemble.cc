#include "core/ensemble.h"

namespace rhchme {
namespace core {

Status EnsembleOptions::Validate() const {
  if (!include_subspace && !include_knn) {
    return Status::InvalidArgument(
        "ensemble needs at least one member (subspace or pNN)");
  }
  if (alpha < 0.0) {
    return Status::InvalidArgument("ensemble alpha must be nonnegative");
  }
  RHCHME_RETURN_IF_ERROR(knn.Validate());
  return subspace.Validate();
}

Result<HeterogeneousEnsemble> BuildEnsemble(
    const data::MultiTypeRelationalData& data,
    const fact::BlockStructure& blocks, const EnsembleOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());

  HeterogeneousEnsemble out;
  out.alpha = opts.alpha;
  out.laplacian.Resize(blocks.total_objects(), blocks.total_objects());
  out.subspace_affinity.resize(data.NumTypes());
  out.knn_affinity.resize(data.NumTypes());

  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    const data::ObjectType& type = data.Type(k);
    if (type.features.empty()) {
      return Status::FailedPrecondition(
          "type '" + type.name +
          "' has no features; intra-type relationships cannot be learned");
    }
    la::Matrix block(type.count, type.count);

    if (opts.include_subspace) {
      SubspaceOptions sub = opts.subspace;
      // Per-type seed offset keeps the W initialisations independent.
      sub.seed = opts.subspace.seed + 7919 * (k + 1);
      Result<SubspaceResult> learned =
          LearnSubspaceAffinity(type.features, sub);
      if (!learned.ok()) return learned.status();
      out.subspace_affinity[k] = learned.value().affinity;
      Result<la::Matrix> lap =
          graph::BuildLaplacian(out.subspace_affinity[k], opts.laplacian);
      if (!lap.ok()) return lap.status();
      block.AddScaled(lap.value(), opts.alpha);
    }

    if (opts.include_knn) {
      Result<la::SparseMatrix> knn =
          graph::BuildKnnGraph(type.features, opts.knn);
      if (!knn.ok()) return knn.status();
      out.knn_affinity[k] = std::move(knn).value();
      Result<la::Matrix> lap =
          graph::BuildLaplacian(out.knn_affinity[k], opts.laplacian);
      if (!lap.ok()) return lap.status();
      block.Add(lap.value());
    }

    out.laplacian.SetBlock(blocks.type_offset[k], blocks.type_offset[k],
                           block);
  }
  return out;
}

Result<HeterogeneousEnsemble> ReweightEnsemble(
    const HeterogeneousEnsemble& base, const fact::BlockStructure& blocks,
    double alpha, graph::LaplacianKind kind) {
  if (alpha < 0.0) {
    return Status::InvalidArgument("ensemble alpha must be nonnegative");
  }
  if (base.subspace_affinity.size() != blocks.num_types() ||
      base.knn_affinity.size() != blocks.num_types()) {
    return Status::InvalidArgument(
        "ensemble members do not match the block structure");
  }
  HeterogeneousEnsemble out = base;
  out.alpha = alpha;
  out.laplacian.Resize(blocks.total_objects(), blocks.total_objects());
  for (std::size_t k = 0; k < blocks.num_types(); ++k) {
    la::Matrix block(blocks.objects(k), blocks.objects(k));
    if (!base.subspace_affinity[k].empty()) {
      Result<la::Matrix> lap =
          graph::BuildLaplacian(base.subspace_affinity[k], kind);
      if (!lap.ok()) return lap.status();
      block.AddScaled(lap.value(), alpha);
    }
    if (base.knn_affinity[k].nnz() > 0) {
      Result<la::Matrix> lap =
          graph::BuildLaplacian(base.knn_affinity[k], kind);
      if (!lap.ok()) return lap.status();
      block.Add(lap.value());
    }
    out.laplacian.SetBlock(blocks.type_offset[k], blocks.type_offset[k],
                           block);
  }
  return out;
}

}  // namespace core
}  // namespace rhchme
