// RHCHME: Robust High-order Co-clustering via Heterogeneous Manifold
// Ensemble (paper §III, Algorithm 2) — the library's primary contribution.
//
// Solves
//
//   min_{G >= 0, G·1_c = 1_n}  ||R − G·S·Gᵀ − E_R||²_F + beta·||E_R||₂,₁
//                              + lambda·tr(Gᵀ·L·G)               (Eq. 15)
//
// by alternating:
//   1. closed-form S           (Eq. 18)
//   2. multiplicative G update (Eq. 21) + row ℓ1 normalisation (Eq. 22)
//   3. closed-form E_R via the reweighted-ℓ₂ surrogate of the L2,1 norm
//      (Eq. 25–27) — the sample-wise sparse error matrix absorbs
//      corrupted rows of R.
//
// L is the heterogeneous manifold ensemble of Eq. 12 (see ensemble.h).
// Theorem 1 (monotone descent of Eq. 15 under updates 1–3, without the
// normalisation step) is covered by property tests.
//
// Memory model (docs/ARCHITECTURE.md §Memory model): three solver cores
// share the update algebra and differ only in how much of the O(n²)
// state they materialise.
//
// - implicit (dense default): exactly two dense n x n matrices per fit —
//   the joint R and one workspace that alternately holds M = R − E_R and
//   the residual Q = R − G·S·Gᵀ. The Eq. 25–27 update makes
//   E_R = diag(s)·Q with per-row scales s_i = 1/(beta·d_ii + 1), so only
//   the n scales are stored and the objective terms are evaluated
//   analytically (‖Q − E_R‖²_F = Σ(1−s_i)²‖q_i‖²,
//   ‖E_R‖₂,₁ = Σ s_i‖q_i‖); the ensemble Laplacian and its Eq. 21 ±
//   parts stay sparse end-to-end.
// - sparse-R (RhchmeOptions::sparse_r, auto-enabled for tf-idf-sparse
//   relations): the joint R stays a la::SparseMatrix and **no dense
//   n x n matrix is allocated at all** — O(nnz + n·c) per fit. With
//   H = G·S and K = R·G (one SpMM per iteration) every quantity the
//   updates need is low-rank: M·G = K − diag(s)·(K − H·(GᵀG)), Mᵀ·G
//   symmetrically via the CSC mirror, and the residual row norms follow
//   from ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ with cached
//   sparse row norms ‖r_i‖².
// - explicit (RhchmeOptions::explicit_materialization): the pre-refactor
//   core that materialises dense E_R and dense Laplacian parts, kept as
//   the equivalence/ablation reference.

#ifndef RHCHME_CORE_RHCHME_SOLVER_H_
#define RHCHME_CORE_RHCHME_SOLVER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/ensemble.h"
#include "data/multitype_data.h"
#include "factorization/hocc_common.h"
#include "la/sparse.h"
#include "util/status.h"

namespace rhchme {
namespace core {

/// Joint-R representation policy: whether the fit runs the sparse-R
/// solver core (R kept as la::SparseMatrix end-to-end, zero dense n x n
/// allocations) or one of the dense-R cores.
enum class SparseRMode {
  /// Pick per dataset: sparse-R when the joint R's density is at most
  /// RhchmeOptions::sparse_r_density_threshold, dense otherwise. The
  /// default — tf-idf-like corpora get the O(nnz + n·c) path without any
  /// caller opt-in, dense block worlds keep the dense kernels that beat
  /// SpMM at high fill.
  kAuto,
  /// Always run the sparse-R core (equivalence tests, memory ceilings).
  kAlways,
  /// Never — keep the dense implicit (or explicit) core.
  kNever,
};

struct RhchmeOptions {
  /// Manifold regularisation strength lambda. The paper tunes on
  /// {0.001 .. 1500}; best around 250 on R-Min20Max200 (Fig. 2).
  double lambda = 250.0;
  /// Error-matrix trade-off beta of Eq. 15; larger beta = sparser E_R
  /// (cleaner data). The paper's best is 50 on its corpora; beta scales
  /// with the residual row norms 2·||q_i|| and the synthetic corpora here
  /// sit best around 300 (the Fig. 2 bench re-derives this sweep).
  double beta = 300.0;
  /// Heterogeneous ensemble settings (alpha, pNN, subspace learning).
  EnsembleOptions ensemble;
  int max_iterations = 100;
  /// Stop when the relative objective change falls below this.
  double tolerance = 1e-5;
  /// Ridge added to GᵀG before inversion (empty-cluster guard, Eq. 18).
  double ridge = 1e-9;
  /// Denominator floor of the multiplicative update (Eq. 21).
  double mu_eps = 1e-12;
  /// The paper's zeta: perturbation regularising D_ii = 1/(2||q_i|| + zeta)
  /// when a row of Q vanishes (§III.D.3).
  double l21_zeta = 1e-8;
  fact::MembershipInit init = fact::MembershipInit::kKMeans;
  uint64_t seed = 0;
  /// Row ℓ1 normalisation of Eq. 22 (trivial-solution guard). On by
  /// default; exposed for the ablation bench.
  bool normalize_rows = true;
  /// Sparse error matrix E_R (robust term). On by default; exposed for
  /// the ablation bench — disabling recovers a plain graph-regularised
  /// symmetric NMTF with an ensemble Laplacian.
  bool use_error_matrix = true;
  /// Reference core: materialise a dense E_R each iteration and dense
  /// Laplacian ± parts up front (the pre-implicit-core behaviour). Off by
  /// default — the implicit core is algebraically identical and keeps the
  /// dense footprint at R plus one workspace; the explicit core exists
  /// for equivalence tests and memory/perf ablations.
  bool explicit_materialization = false;
  /// Sparse-R solver core selection (see SparseRMode). Ignored — with a
  /// Validate error on kAlways — when explicit_materialization is set:
  /// the reference core is inherently dense.
  SparseRMode sparse_r = SparseRMode::kAuto;
  /// Density cutoff (nnz / n²) for SparseRMode::kAuto. 5% keeps genuinely
  /// sparse relations (tf-idf corpora sit well below 1%) on the sparse
  /// core while dense synthetic block worlds stay on the dense kernels.
  double sparse_r_density_threshold = 0.05;
  /// Promise that the joint R is symmetric (true for
  /// data::MultiTypeRelationalData, which mirrors every relation into its
  /// transpose). The sparse-R core then reuses K = R·G for Rᵀ·G, turns
  /// the scaled transposed product into a forward SpMM and skips the CSC
  /// mirror — one fewer transposed SpMM per iteration and O(nnz) less
  /// memory. Results are only meaningful when R really is symmetric; the
  /// promise is not verified. Off by default (trace-matches the
  /// non-assuming path to rounding only, ≤1e-8 relative).
  bool assume_symmetric_r = false;

  // ---- Checkpoint/resume (fault tolerance) -------------------------------
  /// Snapshot file for periodic solver-state checkpoints. Written with
  /// write-temp-then-rename semantics, so the file is always a complete
  /// snapshot (the previous one until the rename lands). Empty = disabled.
  std::string checkpoint_path;
  /// Write a snapshot every this many completed iterations (0 = never).
  /// Requires checkpoint_path.
  int checkpoint_every = 0;
  /// Resume from checkpoint_path when the file exists: the fit restores
  /// G, S, the E_R scales, the objective trace and the RNG stream, then
  /// continues bit-identically with the uninterrupted trajectory (the
  /// determinism contract makes this exact, not approximate). A missing
  /// file means a fresh fit; a corrupt or mismatched snapshot (different
  /// options fingerprint, solver core, or shapes) is a clean non-OK
  /// Status, never a silent restart.
  bool resume = false;

  Status Validate() const;
};

/// Recovery-event counters for one fit. Every numerical guard and
/// checkpoint event increments a counter instead of (or in addition to)
/// logging, so robustness is observable: the scenario grid sums
/// RecoveryEvents() into its per-cell JSON and tests assert exact counts
/// under fault injection. All counters are zero on a healthy fit.
struct FitDiagnostics {
  /// NaN/Inf entries zeroed in the joint R (and feature copies) on input.
  std::size_t nonfinite_input_entries = 0;
  /// NaN/Inf entries zeroed in G by the post-update tripwire.
  std::size_t nonfinite_g_entries = 0;
  /// Iterations where the post-update G tripwire fired.
  int nan_guard_trips = 0;
  /// Boosted-ridge retries of the central c x c solve (fact::SolveStats).
  int solve_ridge_retries = 0;
  /// Iterations rolled back by the objective-divergence guard.
  int backtracks = 0;
  /// Fits stopped early on an unrecoverable mid-fit failure, keeping the
  /// last accepted iterate (result is valid but converged == false).
  int degraded_stops = 0;
  /// Snapshots successfully written (temp + rename completed).
  int snapshots_written = 0;
  /// Snapshot writes that failed; the fit continues, the previous
  /// snapshot file stays intact.
  int snapshot_failures = 0;
  /// Iteration the fit resumed from (0 = fresh fit).
  int resumed_from_iteration = 0;

  /// Total guard activations — the scenario grid's per-cell
  /// "recovery_events" field. Snapshot writes are bookkeeping, not
  /// recoveries, so they are excluded; resuming counts as one event.
  std::size_t RecoveryEvents() const {
    return nonfinite_input_entries + nonfinite_g_entries +
           static_cast<std::size_t>(nan_guard_trips) +
           static_cast<std::size_t>(solve_ridge_retries) +
           static_cast<std::size_t>(backtracks) +
           static_cast<std::size_t>(degraded_stops) +
           static_cast<std::size_t>(snapshot_failures) +
           (resumed_from_iteration > 0 ? 1u : 0u);
  }
};

/// Per-iteration hook: receives the 1-based iteration index and the
/// current joint membership matrix (used by the Fig. 3 convergence bench
/// to score FScore/NMI against ground truth each iteration).
using IterationCallback =
    std::function<void(int iteration, const la::Matrix& g)>;

/// Result bundle: fact::HoccResult plus the learned error matrix (kept
/// factored) and the ensemble that produced it.
struct RhchmeResult {
  fact::HoccResult hocc;
  HeterogeneousEnsemble ensemble;    ///< The Laplacian ensemble used.
  /// Final E_R in factored form: E_R = diag(error_scale) · Q with the
  /// per-row scales s_i of Eq. 25–27 and the last residual
  /// Q = R − G·S·Gᵀ. The implicit dense core stores Q in error_residual;
  /// the sparse-R core stores only the sparse joint R in error_sparse_r
  /// (Q is rebuilt from R, g and s on demand — still O(nnz + n·c) at
  /// rest); the explicit-materialisation core stores the dense E_R
  /// directly and leaves both empty. error_scale is empty when the
  /// robust term is disabled.
  std::vector<double> error_scale;
  la::Matrix error_residual;
  la::SparseMatrix error_sparse_r;
  /// Guard/recovery counters for this fit (all zero on a healthy run).
  FitDiagnostics diagnostics;

  // ErrorMatrix()'s lazy cache adds a mutex, so the rule-of-five members
  // are spelled out (same pattern as la::SparseMatrix's CSC cache).
  RhchmeResult() = default;
  RhchmeResult(const RhchmeResult& other);
  RhchmeResult& operator=(const RhchmeResult& other);
  RhchmeResult(RhchmeResult&& other) noexcept;
  RhchmeResult& operator=(RhchmeResult&& other) noexcept;
  ~RhchmeResult() = default;

  /// True when a robust E_R was learned (any representation).
  bool HasErrorMatrix() const;

  /// Dense E_R, materialised on first call and cached — the solver itself
  /// never allocates it on the default paths. Returns an empty matrix
  /// when the robust term was disabled. Thread-safe: the lazy build is
  /// internally synchronised (at most one thread builds, the rest reuse
  /// the cached matrix), matching the library's "concurrent const access
  /// is safe" contract.
  const la::Matrix& ErrorMatrix() const;

 private:
  friend class Rhchme;
  /// Guards the lazy build of error_dense_ below; the built matrix is
  /// immutable afterwards.
  mutable std::mutex error_mu_;
  mutable la::Matrix error_dense_;   ///< Lazy cache for ErrorMatrix().
};

/// RHCHME driver. Typical use:
///
///   core::RhchmeOptions opts;                   // paper defaults
///   core::Rhchme solver(opts);
///   auto result = solver.Fit(data);
///   if (result.ok()) { use result.value().hocc.labels[0] ... }
class Rhchme {
 public:
  explicit Rhchme(RhchmeOptions opts) : opts_(std::move(opts)) {}

  /// Builds the ensemble (stage 1 + 2 of the paper) and solves Eq. 15.
  Result<RhchmeResult> Fit(const data::MultiTypeRelationalData& data) const;

  /// Solves Eq. 15 against a caller-provided ensemble — used by parameter
  /// sweeps that vary lambda/beta without re-learning subspaces.
  Result<RhchmeResult> FitWithEnsemble(
      const data::MultiTypeRelationalData& data,
      const HeterogeneousEnsemble& ensemble) const;

  void SetIterationCallback(IterationCallback cb) { callback_ = std::move(cb); }

  const RhchmeOptions& options() const { return opts_; }

 private:
  /// The dense cores (implicit workspace or explicit reference): body of
  /// FitWithEnsemble, separated so the public entry point can convert a
  /// std::bad_alloc from any core into a clean Status.
  Result<RhchmeResult> FitDense(const data::MultiTypeRelationalData& data,
                                const HeterogeneousEnsemble& ensemble,
                                const fact::BlockStructure& blocks) const;

  /// The sparse-R core: joint R as la::SparseMatrix end-to-end, all
  /// solver quantities from the low-rank identities in the header
  /// comment. Allocates no dense n x n matrix (la::memstats-pinned).
  Result<RhchmeResult> FitSparseR(const data::MultiTypeRelationalData& data,
                                  const HeterogeneousEnsemble& ensemble,
                                  const fact::BlockStructure& blocks) const;

  RhchmeOptions opts_;
  IterationCallback callback_;
};

/// The full objective J₄ of Eq. 15 (exposed for the Theorem 1 tests).
double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::Matrix& laplacian, double lambda,
                       double beta);

/// Sparse-Laplacian overload — evaluates Eq. 15 directly against a fit's
/// `HeterogeneousEnsemble::laplacian` without densifying it.
double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta);

/// Sparse-R overload — evaluates Eq. 15 against a sparse R and the
/// factored E_R = diag(error_scale)·(R − G·S·Gᵀ) without materialising
/// any dense n x n matrix: the residual row norms come from the analytic
/// identity ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ, so the data
/// and ℓ2,1 terms are O(nnz + n·c²). Pass an empty `error_scale` for
/// E_R = 0 (robust term disabled). Matches the dense overloads to
/// rounding and the sparse-R fit's objective_trace exactly in structure.
double RhchmeObjective(const la::SparseMatrix& r, const la::Matrix& g,
                       const la::Matrix& s,
                       const std::vector<double>& error_scale,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta);

}  // namespace core
}  // namespace rhchme

#endif  // RHCHME_CORE_RHCHME_SOLVER_H_
