// RHCHME: Robust High-order Co-clustering via Heterogeneous Manifold
// Ensemble (paper §III, Algorithm 2) — the library's primary contribution.
//
// Solves
//
//   min_{G >= 0, G·1_c = 1_n}  ||R − G·S·Gᵀ − E_R||²_F + beta·||E_R||₂,₁
//                              + lambda·tr(Gᵀ·L·G)               (Eq. 15)
//
// by alternating:
//   1. closed-form S           (Eq. 18)
//   2. multiplicative G update (Eq. 21) + row ℓ1 normalisation (Eq. 22)
//   3. closed-form E_R via the reweighted-ℓ₂ surrogate of the L2,1 norm
//      (Eq. 25–27) — the sample-wise sparse error matrix absorbs
//      corrupted rows of R.
//
// L is the heterogeneous manifold ensemble of Eq. 12 (see ensemble.h).
// Theorem 1 (monotone descent of Eq. 15 under updates 1–3, without the
// normalisation step) is covered by property tests.

#ifndef RHCHME_CORE_RHCHME_SOLVER_H_
#define RHCHME_CORE_RHCHME_SOLVER_H_

#include <cstdint>
#include <functional>

#include "core/ensemble.h"
#include "data/multitype_data.h"
#include "factorization/hocc_common.h"
#include "util/status.h"

namespace rhchme {
namespace core {

struct RhchmeOptions {
  /// Manifold regularisation strength lambda. The paper tunes on
  /// {0.001 .. 1500}; best around 250 on R-Min20Max200 (Fig. 2).
  double lambda = 250.0;
  /// Error-matrix trade-off beta of Eq. 15; larger beta = sparser E_R
  /// (cleaner data). The paper's best is 50 on its corpora; beta scales
  /// with the residual row norms 2·||q_i|| and the synthetic corpora here
  /// sit best around 300 (the Fig. 2 bench re-derives this sweep).
  double beta = 300.0;
  /// Heterogeneous ensemble settings (alpha, pNN, subspace learning).
  EnsembleOptions ensemble;
  int max_iterations = 100;
  /// Stop when the relative objective change falls below this.
  double tolerance = 1e-5;
  /// Ridge added to GᵀG before inversion (empty-cluster guard, Eq. 18).
  double ridge = 1e-9;
  /// Denominator floor of the multiplicative update (Eq. 21).
  double mu_eps = 1e-12;
  /// The paper's zeta: perturbation regularising D_ii = 1/(2||q_i|| + zeta)
  /// when a row of Q vanishes (§III.D.3).
  double l21_zeta = 1e-8;
  fact::MembershipInit init = fact::MembershipInit::kKMeans;
  uint64_t seed = 0;
  /// Row ℓ1 normalisation of Eq. 22 (trivial-solution guard). On by
  /// default; exposed for the ablation bench.
  bool normalize_rows = true;
  /// Sparse error matrix E_R (robust term). On by default; exposed for
  /// the ablation bench — disabling recovers a plain graph-regularised
  /// symmetric NMTF with an ensemble Laplacian.
  bool use_error_matrix = true;

  Status Validate() const;
};

/// Per-iteration hook: receives the 1-based iteration index and the
/// current joint membership matrix (used by the Fig. 3 convergence bench
/// to score FScore/NMI against ground truth each iteration).
using IterationCallback =
    std::function<void(int iteration, const la::Matrix& g)>;

/// Result bundle: fact::HoccResult plus the learned error matrix and the
/// ensemble that produced it.
struct RhchmeResult {
  fact::HoccResult hocc;
  la::Matrix error_matrix;           ///< Final E_R (empty when disabled).
  HeterogeneousEnsemble ensemble;    ///< The Laplacian ensemble used.
};

/// RHCHME driver. Typical use:
///
///   core::RhchmeOptions opts;                   // paper defaults
///   core::Rhchme solver(opts);
///   auto result = solver.Fit(data);
///   if (result.ok()) { use result.value().hocc.labels[0] ... }
class Rhchme {
 public:
  explicit Rhchme(RhchmeOptions opts) : opts_(std::move(opts)) {}

  /// Builds the ensemble (stage 1 + 2 of the paper) and solves Eq. 15.
  Result<RhchmeResult> Fit(const data::MultiTypeRelationalData& data) const;

  /// Solves Eq. 15 against a caller-provided ensemble — used by parameter
  /// sweeps that vary lambda/beta without re-learning subspaces.
  Result<RhchmeResult> FitWithEnsemble(
      const data::MultiTypeRelationalData& data,
      const HeterogeneousEnsemble& ensemble) const;

  void SetIterationCallback(IterationCallback cb) { callback_ = std::move(cb); }

  const RhchmeOptions& options() const { return opts_; }

 private:
  RhchmeOptions opts_;
  IterationCallback callback_;
};

/// The full objective J₄ of Eq. 15 (exposed for the Theorem 1 tests).
double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::Matrix& laplacian, double lambda,
                       double beta);

}  // namespace core
}  // namespace rhchme

#endif  // RHCHME_CORE_RHCHME_SOLVER_H_
