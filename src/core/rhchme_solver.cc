#include "core/rhchme_solver.h"

#include <cmath>

#include "la/gemm.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace core {

Status RhchmeOptions::Validate() const {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (beta < 0.0) return Status::InvalidArgument("beta must be >= 0");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) return Status::InvalidArgument("tolerance must be >= 0");
  return ensemble.Validate();
}

bool RhchmeResult::HasErrorMatrix() const {
  return !error_scale.empty() || !error_dense_.empty();
}

const la::Matrix& RhchmeResult::ErrorMatrix() const {
  if (!error_dense_.empty() || error_scale.empty()) return error_dense_;
  const std::size_t n = error_residual.rows();
  const std::size_t cols = error_residual.cols();
  error_dense_.Resize(n, cols);
  util::ParallelFor(0, n, util::GrainForWork(2 * cols + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double s = error_scale[i];
                        const double* qi = error_residual.row_ptr(i);
                        double* ei = error_dense_.row_ptr(i);
                        for (std::size_t j = 0; j < cols; ++j) {
                          ei[j] = s * qi[j];
                        }
                      }
                    });
  return error_dense_;
}

namespace {

/// Data + ℓ2,1 terms of Eq. 15, shared by both RhchmeObjective overloads;
/// the smoothness term is evaluated by the caller against its Laplacian
/// representation.
double ObjectiveDataTerms(const la::Matrix& r, const la::Matrix& g,
                          const la::Matrix& s, const la::Matrix& error_matrix,
                          double beta) {
  la::Matrix residual = la::MultiplyNT(la::Multiply(g, s), g);  // G S Gᵀ
  residual.Sub(r);
  residual.Scale(-1.0);  // R - G S Gᵀ
  double l21 = 0.0;
  if (!error_matrix.empty()) {
    residual.Sub(error_matrix);
    l21 = error_matrix.L21Norm();
  }
  return residual.FrobeniusNormSquared() + beta * l21;
}

}  // namespace

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::Matrix& laplacian, double lambda,
                       double beta) {
  // tr(Gᵀ L G) without materialising the n x c product L G.
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return ObjectiveDataTerms(r, g, s, error_matrix, beta) + lambda * smooth;
}

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta) {
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return ObjectiveDataTerms(r, g, s, error_matrix, beta) + lambda * smooth;
}

Result<RhchmeResult> Rhchme::Fit(
    const data::MultiTypeRelationalData& data) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  Result<HeterogeneousEnsemble> ensemble =
      BuildEnsemble(data, blocks, opts_.ensemble);
  if (!ensemble.ok()) return ensemble.status();
  return FitWithEnsemble(data, ensemble.value());
}

Result<RhchmeResult> Rhchme::FitWithEnsemble(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  Stopwatch watch;

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  const std::size_t n = blocks.total_objects();
  if (ensemble.laplacian.rows() != n) {
    return Status::InvalidArgument("ensemble Laplacian size mismatch");
  }
  const bool robust = opts_.use_error_matrix;
  const bool explicit_core = opts_.explicit_materialization;

  // Step 1 of Algorithm 2: the joint inter-type matrix R.
  const la::Matrix r = data.BuildJointR();

  // ±-parts of L are fixed across iterations (Eq. 21). Sparse on the
  // default core; the explicit reference core densifies them. Neither is
  // needed — nor built — when lambda == 0 (no manifold term).
  la::SparseMatrix lap_pos, lap_neg;
  la::Matrix dense_pos, dense_neg;
  if (opts_.lambda != 0.0) {
    lap_pos = la::PositivePart(ensemble.laplacian);
    lap_neg = la::NegativePart(ensemble.laplacian);
    if (explicit_core) {
      dense_pos = lap_pos.ToDense();
      dense_neg = lap_neg.ToDense();
    }
  }

  // Initialise G (k-means by default) and E_R = 0.
  Rng rng(opts_.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts_.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();

  // E_R state. Default core: per-row scales s with E_R = diag(s)·Q — the
  // dense matrix is never formed. Explicit core: the dense E_R of the
  // pre-refactor solver (starts at zero, Algorithm 2).
  std::vector<double> er_scale(robust ? n : 0, 0.0);
  std::vector<double> row_norm(robust && !explicit_core ? n : 0, 0.0);
  la::Matrix error;
  if (robust && explicit_core) error.Resize(n, n);
  bool have_error = false;  // True once the first E_R update has run.

  RhchmeResult out;
  out.ensemble = ensemble;
  fact::HoccResult& res = out.hocc;
  res.objective_trace.reserve(opts_.max_iterations);

  la::Matrix s;
  la::Matrix gs;    // n x c staging for G·S.
  la::Matrix work;  // Shared n x n buffer: holds M, then the residual Q.
  double prev_objective = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts_.max_iterations; ++t) {
    // ---- Step 3 prep: M = R - E_R ---------------------------------------
    const la::Matrix* m = &r;  // E_R = 0 (first iteration, or disabled).
    if (robust && have_error) {
      if (explicit_core) {
        work = r;
        work.Sub(error);
      } else {
        // Implicit fold: row i of M is r_i - s_i·q_i. `work` still holds
        // the previous residual Q, so the fold rewrites it in place —
        // no dense E_R and no extra buffer.
        util::ParallelFor(0, n, util::GrainForWork(3 * n + 1),
                          [&](std::size_t r0, std::size_t r1) {
                            for (std::size_t i = r0; i < r1; ++i) {
                              const double si = er_scale[i];
                              const double* ri = r.row_ptr(i);
                              double* wi = work.row_ptr(i);
                              for (std::size_t j = 0; j < n; ++j) {
                                wi[j] = ri[j] - si * wi[j];
                              }
                            }
                          });
      }
      m = &work;
    }

    // ---- Step 3: S update (Eq. 18) on M ---------------------------------
    Result<la::Matrix> s_new = fact::SolveCentralS(g, *m, opts_.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();

    // ---- Step 4: multiplicative G update (Eq. 21) -----------------------
    if (explicit_core) {
      fact::MultiplicativeGUpdate(*m, s, opts_.lambda, &dense_pos, &dense_neg,
                                  opts_.mu_eps, &g);
    } else {
      fact::MultiplicativeGUpdate(*m, s, opts_.lambda, &lap_pos, &lap_neg,
                                  opts_.mu_eps, &g);
    }

    // ---- Step 5: row ℓ1 normalisation (Eq. 22) --------------------------
    if (opts_.normalize_rows) fact::NormalizeMembershipRows(blocks, &g);

    // The residual Q = R - G S Gᵀ feeds both the E_R update (Eq. 25-27)
    // and the objective; it overwrites the shared workspace.
    la::MultiplyInto(g, s, &gs);
    la::MultiplyNTInto(gs, g, &work);
    work.Scale(-1.0);
    work.Add(r);  // Q = R - G S Gᵀ

    // ---- Steps 6–7: E_R update (Eq. 25–27) and objective ----------------
    // (beta·D + I)⁻¹ is diagonal: row i of E_R is row i of Q scaled by
    // s_i = 1 / (beta/(2||q_i|| + zeta) + 1). Rows are independent, so
    // both cores run the reweighting as parallel row chunks; the default
    // core stores only the scales.
    double data_term = 0.0;
    double l21 = 0.0;
    if (robust) {
      have_error = true;
      if (explicit_core) {
        util::ParallelFor(
            0, n, util::GrainForWork(4 * n + 1),
            [&](std::size_t r0, std::size_t r1) {
              for (std::size_t i = r0; i < r1; ++i) {
                const double* qi = work.row_ptr(i);
                double norm_sq = 0.0;
                for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
                const double d_ii =
                    1.0 / (2.0 * std::sqrt(norm_sq) + opts_.l21_zeta);
                const double scale = 1.0 / (opts_.beta * d_ii + 1.0);
                er_scale[i] = scale;
                double* ei = error.row_ptr(i);
                for (std::size_t j = 0; j < n; ++j) ei[j] = scale * qi[j];
              }
            });
        // After the E_R update the data term is ||Q - E_R||²_F, evaluated
        // elementwise on the materialised matrices (reference behaviour).
        work.Sub(error);
        l21 = error.L21Norm();
        data_term = work.FrobeniusNormSquared();
      } else {
        // Row norms and scales staged per row, then reduced serially in
        // row order — bit-identical for any pool size. The objective
        // terms follow analytically from E_R = diag(s)·Q:
        //   ||Q - E_R||²_F = Σ (1 - s_i)²·||q_i||²
        //   ||E_R||₂,₁     = Σ s_i·||q_i||.
        util::ParallelFor(
            0, n, util::GrainForWork(2 * n + 1),
            [&](std::size_t r0, std::size_t r1) {
              for (std::size_t i = r0; i < r1; ++i) {
                const double* qi = work.row_ptr(i);
                double norm_sq = 0.0;
                for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
                const double norm = std::sqrt(norm_sq);
                row_norm[i] = norm;
                const double d_ii = 1.0 / (2.0 * norm + opts_.l21_zeta);
                er_scale[i] = 1.0 / (opts_.beta * d_ii + 1.0);
              }
            });
        for (std::size_t i = 0; i < n; ++i) {
          const double keep = 1.0 - er_scale[i];
          data_term += keep * keep * row_norm[i] * row_norm[i];
          l21 += er_scale[i] * row_norm[i];
        }
      }
    } else {
      data_term = work.FrobeniusNormSquared();
    }

    const double smooth =
        opts_.lambda != 0.0 ? la::Sandwich(g, ensemble.laplacian) : 0.0;
    const double objective =
        data_term + opts_.beta * l21 + opts_.lambda * smooth;
    res.objective_trace.push_back(objective);
    res.iterations = t;
    if (callback_) callback_(t, g);

    const double rel = std::fabs(prev_objective - objective) /
                       std::max(1.0, std::fabs(prev_objective));
    if (std::isfinite(prev_objective) && rel < opts_.tolerance) {
      res.converged = true;
      break;
    }
    prev_objective = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  if (robust) {
    out.error_scale = std::move(er_scale);
    if (explicit_core) {
      out.error_dense_ = std::move(error);
    } else {
      // `work` holds the final residual Q — exactly the factored E_R's
      // second factor. Handing it to the result costs no copy.
      out.error_residual = std::move(work);
    }
  }
  return out;
}

}  // namespace core
}  // namespace rhchme
