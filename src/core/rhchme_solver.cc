#include "core/rhchme_solver.h"

#include <cmath>
#include <limits>
#include <new>
#include <utility>

#include "core/checkpoint.h"
#include "la/gemm.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace core {

Status RhchmeOptions::Validate() const {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (beta < 0.0) return Status::InvalidArgument("beta must be >= 0");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) return Status::InvalidArgument("tolerance must be >= 0");
  if (sparse_r_density_threshold < 0.0 || sparse_r_density_threshold > 1.0) {
    return Status::InvalidArgument(
        "sparse_r_density_threshold must be in [0, 1]");
  }
  if (sparse_r == SparseRMode::kAlways && explicit_materialization) {
    return Status::InvalidArgument(
        "sparse_r == kAlways conflicts with explicit_materialization; the "
        "reference core is inherently dense");
  }
  if (checkpoint_every < 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 0");
  }
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    return Status::InvalidArgument("checkpoint_every requires checkpoint_path");
  }
  if (resume && checkpoint_path.empty()) {
    return Status::InvalidArgument("resume requires checkpoint_path");
  }
  return ensemble.Validate();
}

RhchmeResult::RhchmeResult(const RhchmeResult& other)
    : hocc(other.hocc),
      ensemble(other.ensemble),
      error_scale(other.error_scale),
      error_residual(other.error_residual),
      error_sparse_r(other.error_sparse_r),
      diagnostics(other.diagnostics) {
  std::lock_guard<std::mutex> lock(other.error_mu_);
  error_dense_ = other.error_dense_;
}

RhchmeResult& RhchmeResult::operator=(const RhchmeResult& other) {
  if (this == &other) return *this;
  la::Matrix dense;
  {
    std::lock_guard<std::mutex> lock(other.error_mu_);
    dense = other.error_dense_;
  }
  hocc = other.hocc;
  ensemble = other.ensemble;
  error_scale = other.error_scale;
  error_residual = other.error_residual;
  error_sparse_r = other.error_sparse_r;
  diagnostics = other.diagnostics;
  std::lock_guard<std::mutex> lock(error_mu_);
  error_dense_ = std::move(dense);
  return *this;
}

// Moves assume exclusive access to `other` (standard move contract), so
// its cache slot is read without locking.
RhchmeResult::RhchmeResult(RhchmeResult&& other) noexcept
    : hocc(std::move(other.hocc)),
      ensemble(std::move(other.ensemble)),
      error_scale(std::move(other.error_scale)),
      error_residual(std::move(other.error_residual)),
      error_sparse_r(std::move(other.error_sparse_r)),
      diagnostics(other.diagnostics),
      error_dense_(std::move(other.error_dense_)) {}

RhchmeResult& RhchmeResult::operator=(RhchmeResult&& other) noexcept {
  if (this == &other) return *this;
  hocc = std::move(other.hocc);
  ensemble = std::move(other.ensemble);
  error_scale = std::move(other.error_scale);
  error_residual = std::move(other.error_residual);
  error_sparse_r = std::move(other.error_sparse_r);
  diagnostics = other.diagnostics;
  error_dense_ = std::move(other.error_dense_);
  return *this;
}

bool RhchmeResult::HasErrorMatrix() const {
  return !error_scale.empty() || !error_dense_.empty();
}

const la::Matrix& RhchmeResult::ErrorMatrix() const {
  // The lazy build runs under the mutex so concurrent const readers are
  // safe (same pattern as SparseMatrix::BuildCscMirror): at most one
  // thread builds, the rest block and reuse the cached matrix, which is
  // immutable afterwards.
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_dense_.empty() || error_scale.empty()) return error_dense_;
  if (!error_residual.empty()) {
    // Implicit dense core: E_R = diag(s)·Q from the stored residual.
    const std::size_t n = error_residual.rows();
    const std::size_t cols = error_residual.cols();
    error_dense_.Resize(n, cols);
    util::ParallelFor(0, n, util::GrainForWork(2 * cols + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          const double s = error_scale[i];
                          const double* qi = error_residual.row_ptr(i);
                          double* ei = error_dense_.row_ptr(i);
                          for (std::size_t j = 0; j < cols; ++j) {
                            ei[j] = s * qi[j];
                          }
                        }
                      });
  } else {
    // Sparse-R core: the fit never formed Q, so rebuild it from the
    // stored sparse R and the final factors (Q = R − G·S·Gᵀ), then scale
    // rows. This is the path's only dense n x n allocation, and it
    // happens here, on demand.
    const la::Matrix& g = hocc.g;
    la::Matrix q = la::MultiplyNT(la::Multiply(g, hocc.s), g);  // G S Gᵀ
    q.Scale(-1.0);
    const std::vector<std::size_t>& offsets = error_sparse_r.row_offsets();
    const std::vector<std::size_t>& cols = error_sparse_r.col_indices();
    const std::vector<double>& vals = error_sparse_r.values();
    util::ParallelFor(0, q.rows(), util::GrainForWork(2 * q.cols() + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          double* qi = q.row_ptr(i);
                          for (std::size_t k = offsets[i]; k < offsets[i + 1];
                               ++k) {
                            qi[cols[k]] += vals[k];
                          }
                          const double s = error_scale[i];
                          for (std::size_t j = 0; j < q.cols(); ++j) {
                            qi[j] *= s;
                          }
                        }
                      });
    error_dense_ = std::move(q);
  }
  return error_dense_;
}

namespace {

/// Data + ℓ2,1 terms of Eq. 15, shared by both RhchmeObjective overloads;
/// the smoothness term is evaluated by the caller against its Laplacian
/// representation.
double ObjectiveDataTerms(const la::Matrix& r, const la::Matrix& g,
                          const la::Matrix& s, const la::Matrix& error_matrix,
                          double beta) {
  la::Matrix residual = la::MultiplyNT(la::Multiply(g, s), g);  // G S Gᵀ
  residual.Sub(r);
  residual.Scale(-1.0);  // R - G S Gᵀ
  double l21 = 0.0;
  if (!error_matrix.empty()) {
    residual.Sub(error_matrix);
    l21 = error_matrix.L21Norm();
  }
  return residual.FrobeniusNormSquared() + beta * l21;
}

/// Objective-divergence guard: multiplicative updates descend
/// monotonically on healthy data (Theorem 1), so an accepted objective
/// jumping more than this factor above the previous one is a numerical
/// blow-up, not progress — roll it back.
constexpr double kDivergenceFactor = 10.0;
/// A rolled-back iteration replays deterministically, so a second
/// consecutive failure means the blow-up is persistent (not a one-shot
/// fault): stop degraded instead of spinning.
constexpr int kMaxConsecutiveBacktracks = 2;

bool ObjectiveLooksBad(double objective, double prev) {
  if (!std::isfinite(objective)) return true;
  return std::isfinite(prev) &&
         std::fabs(objective) >
             kDivergenceFactor * std::max(1.0, std::fabs(prev));
}

/// Resume probe: loads opts.checkpoint_path and validates it against this
/// fit's identity. OK + *loaded=false means no snapshot yet (fresh fit);
/// OK + *loaded=true hands the snapshot back; anything else — corruption,
/// fingerprint/core/shape mismatch — is a real error (never a silent
/// restart).
Status TryLoadResume(const std::string& path, uint64_t fingerprint,
                     SolverCoreId core_id, std::size_t n, std::size_t c,
                     std::size_t er_size, SolverSnapshot* snap, bool* loaded) {
  *loaded = false;
  Result<SolverSnapshot> r = LoadSolverSnapshot(path);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kNotFound) return Status::OK();
    return r.status();
  }
  SolverSnapshot s = std::move(r).value();
  if (s.core_id != core_id) {
    return Status::FailedPrecondition(
        "snapshot was written by a different solver core: " + path);
  }
  if (s.options_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "snapshot options fingerprint mismatch: " + path);
  }
  if (s.g.rows() != n || s.g.cols() != c || s.s.rows() != c ||
      s.s.cols() != c) {
    return Status::FailedPrecondition("snapshot factor shape mismatch: " +
                                      path);
  }
  if (s.er_scale.size() != er_size) {
    return Status::FailedPrecondition("snapshot E_R state mismatch: " + path);
  }
  if (s.iteration < 1 ||
      s.objective_trace.size() != static_cast<std::size_t>(s.iteration)) {
    return Status::FailedPrecondition(
        "snapshot iteration/trace inconsistency: " + path);
  }
  *snap = std::move(s);
  *loaded = true;
  return Status::OK();
}

}  // namespace

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::Matrix& laplacian, double lambda,
                       double beta) {
  // tr(Gᵀ L G) without materialising the n x c product L G.
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return ObjectiveDataTerms(r, g, s, error_matrix, beta) + lambda * smooth;
}

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta) {
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return ObjectiveDataTerms(r, g, s, error_matrix, beta) + lambda * smooth;
}

double RhchmeObjective(const la::SparseMatrix& r, const la::Matrix& g,
                       const la::Matrix& s,
                       const std::vector<double>& error_scale,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta) {
  const std::size_t n = g.rows();
  const std::size_t c = g.cols();
  RHCHME_CHECK(r.rows() == n && r.cols() == n,
               "RhchmeObjective: R shape mismatch");
  RHCHME_CHECK(error_scale.empty() || error_scale.size() == n,
               "RhchmeObjective: error_scale size mismatch");
  // The dense n x n residual is never formed: with H = G·S, K = R·G the
  // residual row norms are ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ,
  // and E_R = diag(s)·Q makes the data and ℓ2,1 terms analytic —
  // ‖Q − E_R‖²_F = Σ(1−s_i)²‖q_i‖², ‖E_R‖₂,₁ = Σ s_i‖q_i‖.
  la::Matrix h = la::Multiply(g, s);
  la::Matrix k = r.MultiplyDense(g);
  la::Matrix hg = la::Multiply(h, la::Gram(g));
  const std::vector<double> r_norm_sq = r.RowNormsSquared();
  std::vector<double> row_norm(n, 0.0);
  util::ParallelFor(0, n, util::GrainForWork(4 * c + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* hi = h.row_ptr(i);
                        const double* ki = k.row_ptr(i);
                        const double* hgi = hg.row_ptr(i);
                        double hk = 0.0, hh = 0.0;
                        for (std::size_t j = 0; j < c; ++j) {
                          hk += hi[j] * ki[j];
                          hh += hi[j] * hgi[j];
                        }
                        const double nsq = r_norm_sq[i] - 2.0 * hk + hh;
                        row_norm[i] = nsq > 0.0 ? std::sqrt(nsq) : 0.0;
                      }
                    });
  double data_term = 0.0;
  double l21 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = row_norm[i];
    if (error_scale.empty()) {
      data_term += norm * norm;
    } else {
      const double keep = 1.0 - error_scale[i];
      data_term += keep * keep * norm * norm;
      l21 += error_scale[i] * norm;
    }
  }
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return data_term + beta * l21 + lambda * smooth;
}

Result<RhchmeResult> Rhchme::Fit(
    const data::MultiTypeRelationalData& data) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  Result<HeterogeneousEnsemble> ensemble =
      BuildEnsemble(data, blocks, opts_.ensemble);
  if (!ensemble.ok()) return ensemble.status();
  return FitWithEnsemble(data, ensemble.value());
}

Result<RhchmeResult> Rhchme::FitWithEnsemble(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  if (ensemble.laplacian.rows() != blocks.total_objects()) {
    return Status::InvalidArgument("ensemble Laplacian size mismatch");
  }

  // Core selection: sparse-R when forced, or when kAuto sees a joint R
  // sparse enough that the O(nnz + n·c) path wins. The explicit reference
  // core is inherently dense and takes precedence.
  bool sparse_core = false;
  if (!opts_.explicit_materialization) {
    switch (opts_.sparse_r) {
      case SparseRMode::kAlways:
        sparse_core = true;
        break;
      case SparseRMode::kNever:
        break;
      case SparseRMode::kAuto:
        sparse_core =
            data.JointRDensity() <= opts_.sparse_r_density_threshold;
        break;
    }
  }

  // An allocation failure anywhere in a core — the O(n²) joint R, a
  // workspace, any kernel temporary — surfaces as a clean Status instead
  // of an abort: the fit entry point is a recovery seam, not a crash seam.
  try {
    if (sparse_core) return FitSparseR(data, ensemble, blocks);
    return FitDense(data, ensemble, blocks);
  } catch (const std::bad_alloc&) {
    return Status::Internal("allocation failure during fit (out of memory)");
  }
}

Result<RhchmeResult> Rhchme::FitDense(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble,
    const fact::BlockStructure& blocks) const {
  Stopwatch watch;
  const std::size_t n = blocks.total_objects();
  const std::size_t c = blocks.total_clusters();
  const bool robust = opts_.use_error_matrix;
  const bool explicit_core = opts_.explicit_materialization;
  const SolverCoreId core_id = explicit_core ? SolverCoreId::kDenseExplicit
                                             : SolverCoreId::kDenseImplicit;

  RhchmeResult out;
  out.ensemble = ensemble;
  fact::HoccResult& res = out.hocc;
  res.objective_trace.reserve(opts_.max_iterations);
  FitDiagnostics& diag = out.diagnostics;

  // Step 1 of Algorithm 2: the joint inter-type matrix R. Non-finite
  // entries (kNonFinite row corruption, bad upstream data) are zeroed and
  // counted — every downstream kernel assumes finite input.
  if (util::FaultShouldFail(util::fault_site::kAllocJointR)) {
    throw std::bad_alloc();
  }
  la::Matrix r = data.BuildJointR();
  diag.nonfinite_input_entries += r.ReplaceNonFinite(0.0);

  // ±-parts of L are fixed across iterations (Eq. 21). Sparse on the
  // default core; the explicit reference core densifies them. Neither is
  // needed — nor built — when lambda == 0 (no manifold term).
  la::SparseMatrix lap_pos, lap_neg;
  la::Matrix dense_pos, dense_neg;
  if (opts_.lambda != 0.0) {
    lap_pos = la::PositivePart(ensemble.laplacian);
    lap_neg = la::NegativePart(ensemble.laplacian);
    if (explicit_core) {
      dense_pos = lap_pos.ToDense();
      dense_neg = lap_neg.ToDense();
    }
  }

  // E_R state. Default core: per-row scales s with E_R = diag(s)·Q — the
  // dense matrix is never formed. Explicit core: the dense E_R of the
  // pre-refactor solver (starts at zero, Algorithm 2).
  std::vector<double> er_scale(robust ? n : 0, 0.0);
  std::vector<double> row_norm(robust && !explicit_core ? n : 0, 0.0);
  la::Matrix error;
  if (robust && explicit_core) error.Resize(n, n);
  bool have_error = false;  // True once the first E_R update has run.

  Rng rng(opts_.seed);
  const uint64_t fingerprint = OptionsFingerprint(opts_, n, c, core_id);

  la::Matrix g, s;
  la::Matrix gs;  // n x c staging for G·S.
  if (util::FaultShouldFail(util::fault_site::kAllocWorkspace)) {
    throw std::bad_alloc();
  }
  la::Matrix work;  // Shared n x n buffer: holds M, then the residual Q.
  double prev_objective = std::numeric_limits<double>::infinity();
  int start_t = 1;

  // Rebuilds the dense E_R rows from the current Q in `work` and the
  // current scales — the same arithmetic the E_R update uses, so resume
  // and rollback reproduce the matrix bit-for-bit.
  auto rebuild_explicit_error = [&]() {
    util::ParallelFor(0, n, util::GrainForWork(2 * n + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          const double scale = er_scale[i];
                          const double* qi = work.row_ptr(i);
                          double* ei = error.row_ptr(i);
                          for (std::size_t j = 0; j < n; ++j) {
                            ei[j] = scale * qi[j];
                          }
                        }
                      });
  };

  // Rebuilds the loop-carried workspace from the current factors with
  // the loop's own kernel sequence (Q = R − G·S·Gᵀ); the determinism
  // contract then makes any replay or continuation bit-identical.
  auto rebuild_derived_state = [&]() {
    if (!(robust && have_error)) return;
    la::MultiplyInto(g, s, &gs);
    la::MultiplyNTInto(gs, g, &work);
    work.Scale(-1.0);
    work.Add(r);
    if (explicit_core) rebuild_explicit_error();
  };

  // ---- Resume (or fresh initialisation) ---------------------------------
  if (opts_.resume) {
    SolverSnapshot snap;
    bool resumed = false;
    RHCHME_RETURN_IF_ERROR(TryLoadResume(opts_.checkpoint_path, fingerprint,
                                         core_id, n, c, er_scale.size(),
                                         &snap, &resumed));
    if (resumed) {
      g = std::move(snap.g);
      s = std::move(snap.s);
      er_scale = std::move(snap.er_scale);
      have_error = snap.have_error;
      prev_objective = snap.prev_objective;
      res.objective_trace = std::move(snap.objective_trace);
      rng.RestoreState(snap.rng_state);
      diag = snap.diagnostics;  // Counters resume too (incl. input count).
      diag.resumed_from_iteration = snap.iteration;
      res.iterations = snap.iteration;
      start_t = snap.iteration + 1;
      rebuild_derived_state();
    }
  }
  if (start_t == 1) {
    // Initialise G (k-means by default) and E_R = 0.
    Result<la::Matrix> init =
        fact::InitMembership(data, blocks, opts_.init, &rng);
    if (!init.ok()) return init.status();
    g = std::move(init).value();
    // Init tripwire: a poisoned initial membership is cleaned like a
    // poisoned update — zeroed rows become uniform over their block.
    if (!g.AllFinite()) {
      ++diag.nan_guard_trips;
      diag.nonfinite_g_entries += g.ReplaceNonFinite(0.0);
      fact::NormalizeMembershipRows(blocks, &g);
    }
  }

  // Periodic snapshot after an accepted iteration t; failures count and
  // the fit keeps going (the previous snapshot file stays intact).
  auto write_checkpoint = [&](int t) {
    if (opts_.checkpoint_every <= 0 || t % opts_.checkpoint_every != 0) return;
    SolverSnapshot snap;
    snap.core_id = core_id;
    snap.options_fingerprint = fingerprint;
    snap.iteration = t;
    snap.prev_objective = prev_objective;
    snap.have_error = have_error;
    snap.rng_state = rng.SaveState();
    snap.diagnostics = diag;
    snap.g = g;
    snap.s = s;
    snap.er_scale = er_scale;
    snap.objective_trace = res.objective_trace;
    const Status st = SaveSolverSnapshot(opts_.checkpoint_path, snap);
    if (st.ok()) {
      ++diag.snapshots_written;
    } else {
      ++diag.snapshot_failures;
    }
  };

  // Iteration-start state for the divergence guard's rollback; n·c + c²
  // copies, cheap next to the n² kernels.
  la::Matrix g_prev, s_prev;
  std::vector<double> er_prev;
  bool have_error_prev = false;
  int consecutive_backtracks = 0;
  fact::SolveStats solve_stats;

  // Rolls the loop-carried state back to the last accepted iterate.
  auto restore_accepted = [&]() {
    g = g_prev;
    s = s_prev;
    if (robust) er_scale = er_prev;
    have_error = have_error_prev;
    rebuild_derived_state();
  };

  for (int t = start_t; t <= opts_.max_iterations; ++t) {
    g_prev = g;
    s_prev = s;
    if (robust) er_prev = er_scale;
    have_error_prev = have_error;
    // ---- Step 3 prep: M = R - E_R ---------------------------------------
    const la::Matrix* m = &r;  // E_R = 0 (first iteration, or disabled).
    if (robust && have_error) {
      if (explicit_core) {
        work = r;
        work.Sub(error);
      } else {
        // Implicit fold: row i of M is r_i - s_i·q_i. `work` still holds
        // the previous residual Q, so the fold rewrites it in place —
        // no dense E_R and no extra buffer.
        util::ParallelFor(0, n, util::GrainForWork(3 * n + 1),
                          [&](std::size_t r0, std::size_t r1) {
                            for (std::size_t i = r0; i < r1; ++i) {
                              const double si = er_scale[i];
                              const double* ri = r.row_ptr(i);
                              double* wi = work.row_ptr(i);
                              for (std::size_t j = 0; j < n; ++j) {
                                wi[j] = ri[j] - si * wi[j];
                              }
                            }
                          });
      }
      m = &work;
    }

    // ---- Step 3: S update (Eq. 18) on M ---------------------------------
    Result<la::Matrix> s_new =
        fact::SolveCentralS(g, *m, opts_.ridge, &solve_stats);
    diag.solve_ridge_retries += solve_stats.ridge_retries;
    solve_stats.ridge_retries = 0;
    if (!s_new.ok()) {
      // The ridge ladder inside the solve already retried, so the failure
      // is persistent. With no accepted iterate there is nothing to fall
      // back to; otherwise keep the last accepted iterate, stop degraded.
      if (res.objective_trace.empty()) return s_new.status();
      ++diag.degraded_stops;
      restore_accepted();
      break;
    }
    s = std::move(s_new).value();

    // ---- Step 4: multiplicative G update (Eq. 21) -----------------------
    if (explicit_core) {
      fact::MultiplicativeGUpdate(*m, s, opts_.lambda, &dense_pos, &dense_neg,
                                  opts_.mu_eps, &g);
    } else {
      fact::MultiplicativeGUpdate(*m, s, opts_.lambda, &lap_pos, &lap_neg,
                                  opts_.mu_eps, &g);
    }

    // NaN tripwire: a poisoned or overflowed update must not fold n²
    // NaNs into the next iteration. Bad entries are zeroed and the rows
    // renormalised — an all-zero row becomes uniform over its block, a
    // valid membership. Healthy fits only pay the AllFinite scan. Runs
    // BEFORE the Eq. 22 normalisation: its zero-row uniform fallback
    // (|NaN| sums fail `s > 0`) would silently absorb a NaN row and hide
    // the recovery from the diagnostics.
    if (!g.AllFinite()) {
      ++diag.nan_guard_trips;
      diag.nonfinite_g_entries += g.ReplaceNonFinite(0.0);
      fact::NormalizeMembershipRows(blocks, &g);
    }

    // ---- Step 5: row ℓ1 normalisation (Eq. 22) --------------------------
    if (opts_.normalize_rows) fact::NormalizeMembershipRows(blocks, &g);

    // The residual Q = R - G S Gᵀ feeds both the E_R update (Eq. 25-27)
    // and the objective; it overwrites the shared workspace.
    la::MultiplyInto(g, s, &gs);
    la::MultiplyNTInto(gs, g, &work);
    work.Scale(-1.0);
    work.Add(r);  // Q = R - G S Gᵀ
    if (util::FaultShouldFail(util::fault_site::kResidualPoison) &&
        !work.empty()) {
      work(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }

    // ---- Steps 6–7: E_R update (Eq. 25–27) and objective ----------------
    // (beta·D + I)⁻¹ is diagonal: row i of E_R is row i of Q scaled by
    // s_i = 1 / (beta/(2||q_i|| + zeta) + 1). Rows are independent, so
    // both cores run the reweighting as parallel row chunks; the default
    // core stores only the scales.
    double data_term = 0.0;
    double l21 = 0.0;
    if (robust) {
      have_error = true;
      if (explicit_core) {
        util::ParallelFor(
            0, n, util::GrainForWork(4 * n + 1),
            [&](std::size_t r0, std::size_t r1) {
              for (std::size_t i = r0; i < r1; ++i) {
                const double* qi = work.row_ptr(i);
                double norm_sq = 0.0;
                for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
                const double d_ii =
                    1.0 / (2.0 * std::sqrt(norm_sq) + opts_.l21_zeta);
                const double scale = 1.0 / (opts_.beta * d_ii + 1.0);
                er_scale[i] = scale;
                double* ei = error.row_ptr(i);
                for (std::size_t j = 0; j < n; ++j) ei[j] = scale * qi[j];
              }
            });
        // After the E_R update the data term is ||Q - E_R||²_F, evaluated
        // elementwise on the materialised matrices (reference behaviour).
        work.Sub(error);
        l21 = error.L21Norm();
        data_term = work.FrobeniusNormSquared();
      } else {
        // Row norms and scales staged per row, then reduced serially in
        // row order — bit-identical for any pool size. The objective
        // terms follow analytically from E_R = diag(s)·Q:
        //   ||Q - E_R||²_F = Σ (1 - s_i)²·||q_i||²
        //   ||E_R||₂,₁     = Σ s_i·||q_i||.
        util::ParallelFor(
            0, n, util::GrainForWork(2 * n + 1),
            [&](std::size_t r0, std::size_t r1) {
              for (std::size_t i = r0; i < r1; ++i) {
                const double* qi = work.row_ptr(i);
                double norm_sq = 0.0;
                for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
                const double norm = std::sqrt(norm_sq);
                row_norm[i] = norm;
                const double d_ii = 1.0 / (2.0 * norm + opts_.l21_zeta);
                er_scale[i] = 1.0 / (opts_.beta * d_ii + 1.0);
              }
            });
        for (std::size_t i = 0; i < n; ++i) {
          const double keep = 1.0 - er_scale[i];
          data_term += keep * keep * row_norm[i] * row_norm[i];
          l21 += er_scale[i] * row_norm[i];
        }
      }
    } else {
      data_term = work.FrobeniusNormSquared();
    }

    const double smooth =
        opts_.lambda != 0.0 ? la::Sandwich(g, ensemble.laplacian) : 0.0;
    double objective = data_term + opts_.beta * l21 + opts_.lambda * smooth;
    if (util::FaultShouldFail(util::fault_site::kObjectivePoison)) {
      objective = std::numeric_limits<double>::quiet_NaN();
    }

    // ---- Divergence guard -----------------------------------------------
    // A non-finite or blown-up objective never lands in the trace. The
    // iteration is rolled back and replayed (a one-shot fault vanishes on
    // the deterministic replay); a persistent blow-up stops the fit on the
    // last accepted iterate.
    if (ObjectiveLooksBad(objective, prev_objective)) {
      if (consecutive_backtracks < kMaxConsecutiveBacktracks) {
        ++consecutive_backtracks;
        ++diag.backtracks;
        restore_accepted();
        --t;  // Replay this iteration from the accepted state.
        continue;
      }
      if (res.objective_trace.empty()) {
        return Status::NumericalError(
            "objective non-finite at the first iteration");
      }
      ++diag.degraded_stops;
      restore_accepted();
      break;
    }
    consecutive_backtracks = 0;

    res.objective_trace.push_back(objective);
    res.iterations = t;
    if (callback_) callback_(t, g);

    const double rel = std::fabs(prev_objective - objective) /
                       std::max(1.0, std::fabs(prev_objective));
    if (std::isfinite(prev_objective) && rel < opts_.tolerance) {
      res.converged = true;
      break;
    }
    prev_objective = objective;
    write_checkpoint(t);
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  if (robust) {
    out.error_scale = std::move(er_scale);
    if (explicit_core) {
      out.error_dense_ = std::move(error);
    } else {
      // `work` holds the final residual Q — exactly the factored E_R's
      // second factor. Handing it to the result costs no copy.
      out.error_residual = std::move(work);
    }
  }
  return out;
}

Result<RhchmeResult> Rhchme::FitSparseR(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble,
    const fact::BlockStructure& blocks) const {
  Stopwatch watch;
  const std::size_t n = blocks.total_objects();
  const std::size_t c = blocks.total_clusters();
  const bool robust = opts_.use_error_matrix;
  const SolverCoreId core_id = SolverCoreId::kSparseR;

  RhchmeResult out;
  out.ensemble = ensemble;
  fact::HoccResult& res = out.hocc;
  res.objective_trace.reserve(opts_.max_iterations);
  FitDiagnostics& diag = out.diagnostics;

  // Step 1: the joint R, sparse end-to-end. The CSC mirror is built once
  // so every Rᵀ product of the fit runs the threaded gather path; the row
  // norms ‖r_i‖² anchor the analytic residual norms all fit long. Under
  // assume_symmetric_r no Rᵀ product is ever taken, so the mirror (an
  // extra O(nnz) of memory) is skipped too. Non-finite stored entries are
  // zeroed and counted before anything derives from them.
  const bool sym_r = opts_.assume_symmetric_r;
  if (util::FaultShouldFail(util::fault_site::kAllocJointR)) {
    throw std::bad_alloc();
  }
  la::SparseMatrix r = data.BuildJointRSparse();
  diag.nonfinite_input_entries += r.ReplaceNonFinite(0.0);
  if (!sym_r) r.BuildCscMirror();
  const std::vector<double> r_norm_sq = r.RowNormsSquared();

  la::SparseMatrix lap_pos, lap_neg;
  if (opts_.lambda != 0.0) {
    lap_pos = la::PositivePart(ensemble.laplacian);
    lap_neg = la::NegativePart(ensemble.laplacian);
  }

  // E_R stays doubly implicit: per-row scales s_i with
  // E_R = diag(s)·(R − H·Gᵀ) — neither the error matrix nor the residual
  // is ever formed.
  std::vector<double> er_scale(robust ? n : 0, 0.0);
  std::vector<double> row_norm(n, 0.0);
  bool have_error = false;

  Rng rng(opts_.seed);
  const uint64_t fingerprint = OptionsFingerprint(opts_, n, c, core_id);

  // Low-rank iteration state, all n x c or c x c. K = R·G (the one SpMM
  // per iteration), H = G·S, GᵀG and HG = H·(GᵀG) are computed right
  // after each G update and double as the next iteration's implicit-M
  // product inputs — M·G = K − diag(s)·(K − HG) needs exactly them.
  la::Matrix g, s, h, k, hg, gtg;
  la::Matrix mg, mtg, gs_scaled, scratch;
  double prev_objective = std::numeric_limits<double>::infinity();
  int start_t = 1;

  // Rebuilds the cached low-rank state from the current factors with the
  // loop's own kernel sequence, so resume and rollback continue
  // bit-identically with an uninterrupted fit.
  auto rebuild_derived_state = [&]() {
    if (have_error) la::MultiplyInto(g, s, &h);
    r.MultiplyDenseInto(g, &k);
    gtg = la::Gram(g);
    if (have_error) la::MultiplyInto(h, gtg, &hg);
  };

  // ---- Resume (or fresh initialisation) ---------------------------------
  if (opts_.resume) {
    SolverSnapshot snap;
    bool resumed = false;
    RHCHME_RETURN_IF_ERROR(TryLoadResume(opts_.checkpoint_path, fingerprint,
                                         core_id, n, c, er_scale.size(),
                                         &snap, &resumed));
    if (resumed) {
      g = std::move(snap.g);
      s = std::move(snap.s);
      er_scale = std::move(snap.er_scale);
      have_error = snap.have_error;
      prev_objective = snap.prev_objective;
      res.objective_trace = std::move(snap.objective_trace);
      rng.RestoreState(snap.rng_state);
      diag = snap.diagnostics;
      diag.resumed_from_iteration = snap.iteration;
      res.iterations = snap.iteration;
      start_t = snap.iteration + 1;
    }
  }
  if (start_t == 1) {
    Result<la::Matrix> init =
        fact::InitMembership(data, blocks, opts_.init, &rng);
    if (!init.ok()) return init.status();
    g = std::move(init).value();
    if (!g.AllFinite()) {
      ++diag.nan_guard_trips;
      diag.nonfinite_g_entries += g.ReplaceNonFinite(0.0);
      fact::NormalizeMembershipRows(blocks, &g);
    }
  }
  if (util::FaultShouldFail(util::fault_site::kAllocWorkspace)) {
    throw std::bad_alloc();
  }
  rebuild_derived_state();

  auto write_checkpoint = [&](int t) {
    if (opts_.checkpoint_every <= 0 || t % opts_.checkpoint_every != 0) return;
    SolverSnapshot snap;
    snap.core_id = core_id;
    snap.options_fingerprint = fingerprint;
    snap.iteration = t;
    snap.prev_objective = prev_objective;
    snap.have_error = have_error;
    snap.rng_state = rng.SaveState();
    snap.diagnostics = diag;
    snap.g = g;
    snap.s = s;
    snap.er_scale = er_scale;
    snap.objective_trace = res.objective_trace;
    const Status st = SaveSolverSnapshot(opts_.checkpoint_path, snap);
    if (st.ok()) {
      ++diag.snapshots_written;
    } else {
      ++diag.snapshot_failures;
    }
  };

  la::Matrix g_prev, s_prev;
  std::vector<double> er_prev;
  bool have_error_prev = false;
  int consecutive_backtracks = 0;
  fact::SolveStats solve_stats;

  auto restore_accepted = [&]() {
    g = g_prev;
    s = s_prev;
    if (robust) er_scale = er_prev;
    have_error = have_error_prev;
    rebuild_derived_state();
  };

  for (int t = start_t; t <= opts_.max_iterations; ++t) {
    g_prev = g;
    s_prev = s;
    if (robust) er_prev = er_scale;
    have_error_prev = have_error;
    // ---- M·G and Mᵀ·G from the implicit M = R − diag(s)·(R − H·Gᵀ) ------
    const la::Matrix* m_g = &k;  // E_R = 0 (first iteration, or disabled).
    if (robust && have_error) {
      // mg_i = k_i − s_i·(k_i − hg_i): the E_R fold collapses to a row
      // recombination of cached n x c state.
      mg.Resize(n, c);
      util::ParallelFor(0, n, util::GrainForWork(3 * c + 1),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t i = r0; i < r1; ++i) {
                            const double si = er_scale[i];
                            const double* ki = k.row_ptr(i);
                            const double* hgi = hg.row_ptr(i);
                            double* mi = mg.row_ptr(i);
                            for (std::size_t j = 0; j < c; ++j) {
                              mi[j] = ki[j] - si * (ki[j] - hgi[j]);
                            }
                          }
                        });
      // Mᵀ·G = Rᵀ·G − Rᵀ·diag(s)·G + G·(Hᵀ·diag(s)·G) plus a c x c
      // recombination. Non-assuming: two gather-path transposed SpMMs
      // (the scaled one never materialises diag(s)·R). Symmetric R:
      // Rᵀ·G is the cached K and Rᵀ·diag(s)·G = R·(diag(s)·G) runs as a
      // forward SpMM — no transposed product at all.
      gs_scaled.Resize(n, c);
      util::ParallelFor(0, n, util::GrainForWork(2 * c + 1),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t i = r0; i < r1; ++i) {
                            const double si = er_scale[i];
                            const double* gi = g.row_ptr(i);
                            double* oi = gs_scaled.row_ptr(i);
                            for (std::size_t j = 0; j < c; ++j) {
                              oi[j] = si * gi[j];
                            }
                          }
                        });
      if (sym_r) {
        mtg = k;
        r.MultiplyDenseInto(gs_scaled, &scratch);
      } else {
        r.MultiplyTransposedDenseInto(g, &mtg);
        r.MultiplyTransposedScaledDenseInto(er_scale, g, &scratch);
      }
      mtg.Sub(scratch);
      la::Matrix hts = la::MultiplyTN(h, gs_scaled);  // Hᵀ·diag(s)·G, c x c
      mtg.Add(la::Multiply(g, hts));
      m_g = &mg;
    } else {
      // M = R, so M·G is exactly the cached K (no copy); Mᵀ·G needs the
      // transposed product — or is K again when R is symmetric.
      if (sym_r) {
        mtg = k;
      } else {
        r.MultiplyTransposedDenseInto(g, &mtg);
      }
    }

    // ---- Step 3: S update (Eq. 18) from the c x c products --------------
    la::Matrix gtmg = la::MultiplyTN(g, *m_g);
    Result<la::Matrix> s_new =
        fact::SolveCentralSFromProducts(gtg, gtmg, opts_.ridge, &solve_stats);
    diag.solve_ridge_retries += solve_stats.ridge_retries;
    solve_stats.ridge_retries = 0;
    if (!s_new.ok()) {
      // The ridge ladder already retried; persistent. Keep the last
      // accepted iterate (degraded stop) unless there is none.
      if (res.objective_trace.empty()) return s_new.status();
      ++diag.degraded_stops;
      restore_accepted();
      break;
    }
    s = std::move(s_new).value();

    // ---- Step 4: multiplicative G update (Eq. 21) -----------------------
    RHCHME_RETURN_IF_ERROR_CTX(fact::MultiplicativeGUpdateFromProducts(
        *m_g, mtg, s, gtg, opts_.lambda, &lap_pos, &lap_neg, opts_.mu_eps,
        &g));

    // NaN tripwire (same contract as the dense cores; before Eq. 22 so
    // the zero-row fallback cannot silently absorb a NaN row).
    if (!g.AllFinite()) {
      ++diag.nan_guard_trips;
      diag.nonfinite_g_entries += g.ReplaceNonFinite(0.0);
      fact::NormalizeMembershipRows(blocks, &g);
    }

    // ---- Step 5: row ℓ1 normalisation (Eq. 22) --------------------------
    if (opts_.normalize_rows) fact::NormalizeMembershipRows(blocks, &g);

    // ---- Post-update low-rank state -------------------------------------
    la::MultiplyInto(g, s, &h);      // H = G·S
    r.MultiplyDenseInto(g, &k);      // K = R·G — the iteration's one SpMM
    gtg = la::Gram(g);
    la::MultiplyInto(h, gtg, &hg);   // H·(GᵀG)

    // ---- Steps 6–7: E_R scales and objective, all analytic --------------
    // ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ — per-row dots of
    // cached n x c state, staged row-indexed then reduced serially in row
    // order (bit-identical for any pool size, like the dense cores).
    util::ParallelFor(
        0, n, util::GrainForWork(4 * c + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t i = r0; i < r1; ++i) {
            const double* hi = h.row_ptr(i);
            const double* ki = k.row_ptr(i);
            const double* hgi = hg.row_ptr(i);
            double hk = 0.0, hh = 0.0;
            for (std::size_t j = 0; j < c; ++j) {
              hk += hi[j] * ki[j];
              hh += hi[j] * hgi[j];
            }
            // The identity can dip below zero by rounding when a residual
            // row vanishes; clamp before the square root.
            const double nsq = r_norm_sq[i] - 2.0 * hk + hh;
            row_norm[i] = nsq > 0.0 ? std::sqrt(nsq) : 0.0;
          }
        });
    if (util::FaultShouldFail(util::fault_site::kResidualPoison) && n > 0) {
      row_norm[0] = std::numeric_limits<double>::quiet_NaN();
    }
    double data_term = 0.0;
    double l21 = 0.0;
    if (robust) {
      have_error = true;
      for (std::size_t i = 0; i < n; ++i) {
        const double norm = row_norm[i];
        const double d_ii = 1.0 / (2.0 * norm + opts_.l21_zeta);
        er_scale[i] = 1.0 / (opts_.beta * d_ii + 1.0);
        const double keep = 1.0 - er_scale[i];
        data_term += keep * keep * norm * norm;
        l21 += er_scale[i] * norm;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        data_term += row_norm[i] * row_norm[i];
      }
    }

    const double smooth =
        opts_.lambda != 0.0 ? la::Sandwich(g, ensemble.laplacian) : 0.0;
    double objective = data_term + opts_.beta * l21 + opts_.lambda * smooth;
    if (util::FaultShouldFail(util::fault_site::kObjectivePoison)) {
      objective = std::numeric_limits<double>::quiet_NaN();
    }

    // ---- Divergence guard (same contract as the dense cores) ------------
    if (ObjectiveLooksBad(objective, prev_objective)) {
      if (consecutive_backtracks < kMaxConsecutiveBacktracks) {
        ++consecutive_backtracks;
        ++diag.backtracks;
        restore_accepted();
        --t;  // Replay this iteration from the accepted state.
        continue;
      }
      if (res.objective_trace.empty()) {
        return Status::NumericalError(
            "objective non-finite at the first iteration");
      }
      ++diag.degraded_stops;
      restore_accepted();
      break;
    }
    consecutive_backtracks = 0;

    res.objective_trace.push_back(objective);
    res.iterations = t;
    if (callback_) callback_(t, g);

    const double rel = std::fabs(prev_objective - objective) /
                       std::max(1.0, std::fabs(prev_objective));
    if (std::isfinite(prev_objective) && rel < opts_.tolerance) {
      res.converged = true;
      break;
    }
    prev_objective = objective;
    write_checkpoint(t);
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  if (robust) {
    out.error_scale = std::move(er_scale);
    // The factored E_R's second factor is Q = R − G·S·Gᵀ, never formed on
    // this core; hand the sparse R to the result so ErrorMatrix() can
    // rebuild Q on demand.
    out.error_sparse_r = std::move(r);
  }
  return out;
}

}  // namespace core
}  // namespace rhchme
