#include "core/rhchme_solver.h"

#include <cmath>

#include "la/gemm.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace core {

Status RhchmeOptions::Validate() const {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (beta < 0.0) return Status::InvalidArgument("beta must be >= 0");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) return Status::InvalidArgument("tolerance must be >= 0");
  return ensemble.Validate();
}

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::Matrix& laplacian, double lambda,
                       double beta) {
  la::Matrix residual = la::MultiplyNT(la::Multiply(g, s), g);  // G S Gᵀ
  residual.Sub(r);
  residual.Scale(-1.0);  // R - G S Gᵀ
  double l21 = 0.0;
  if (!error_matrix.empty()) {
    residual.Sub(error_matrix);
    l21 = error_matrix.L21Norm();
  }
  double smooth = 0.0;
  if (lambda != 0.0) {
    // tr(Gᵀ L G) without materialising the n x c product L G.
    smooth = la::Sandwich(g, laplacian);
  }
  return residual.FrobeniusNormSquared() + beta * l21 + lambda * smooth;
}

Result<RhchmeResult> Rhchme::Fit(
    const data::MultiTypeRelationalData& data) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  Result<HeterogeneousEnsemble> ensemble =
      BuildEnsemble(data, blocks, opts_.ensemble);
  if (!ensemble.ok()) return ensemble.status();
  return FitWithEnsemble(data, ensemble.value());
}

Result<RhchmeResult> Rhchme::FitWithEnsemble(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  Stopwatch watch;

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  const std::size_t n = blocks.total_objects();
  if (ensemble.laplacian.rows() != n) {
    return Status::InvalidArgument("ensemble Laplacian size mismatch");
  }

  // Step 1 of Algorithm 2: the joint inter-type matrix R.
  const la::Matrix r = data.BuildJointR();

  // ±-parts of L are fixed across iterations (Eq. 21).
  const la::Matrix lap_pos = la::PositivePart(ensemble.laplacian);
  const la::Matrix lap_neg = la::NegativePart(ensemble.laplacian);

  // Initialise G (k-means by default) and E_R = 0.
  Rng rng(opts_.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts_.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();
  la::Matrix error(n, n);  // E_R starts at zero (Algorithm 2).

  RhchmeResult out;
  out.ensemble = ensemble;
  fact::HoccResult& res = out.hocc;
  res.objective_trace.reserve(opts_.max_iterations);

  la::Matrix s;
  double prev_objective = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts_.max_iterations; ++t) {
    // ---- Step 3: S update (Eq. 18) on M = R - E_R ----------------------
    la::Matrix m = r;
    if (opts_.use_error_matrix) m.Sub(error);
    Result<la::Matrix> s_new = fact::SolveCentralS(g, m, opts_.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();

    // ---- Step 4: multiplicative G update (Eq. 21) ----------------------
    fact::MultiplicativeGUpdate(m, s, opts_.lambda, &lap_pos, &lap_neg,
                                opts_.mu_eps, &g);

    // ---- Step 5: row ℓ1 normalisation (Eq. 22) -------------------------
    if (opts_.normalize_rows) fact::NormalizeMembershipRows(blocks, &g);

    // The residual Q = R - G S Gᵀ feeds both the E_R update (Eq. 25-27)
    // and the objective, so the n² x c product pair is formed once per
    // iteration instead of twice.
    la::Matrix q = la::MultiplyNT(la::Multiply(g, s), g);
    q.Scale(-1.0);
    q.Add(r);  // Q = R - G S Gᵀ

    // ---- Steps 6–7: E_R update (Eq. 25–27) -----------------------------
    if (opts_.use_error_matrix) {
      // (beta·D + I)⁻¹ is diagonal: row i of E_R is row i of Q scaled by
      // 1 / (beta/(2||q_i|| + zeta) + 1). Rows are independent, so the
      // reweighting runs as parallel row chunks.
      util::ParallelFor(
          0, n, util::GrainForWork(4 * n + 1),
          [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = r0; i < r1; ++i) {
              const double* qi = q.row_ptr(i);
              double norm_sq = 0.0;
              for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
              const double d_ii =
                  1.0 / (2.0 * std::sqrt(norm_sq) + opts_.l21_zeta);
              const double scale = 1.0 / (opts_.beta * d_ii + 1.0);
              double* ei = error.row_ptr(i);
              for (std::size_t j = 0; j < n; ++j) ei[j] = scale * qi[j];
            }
          });
    }

    // ---- Objective bookkeeping and convergence -------------------------
    // Same value as RhchmeObjective(), evaluated on the shared residual:
    // after the E_R update, the data term is ||Q - E_R||²_F.
    double l21 = 0.0;
    if (opts_.use_error_matrix) {
      q.Sub(error);
      l21 = error.L21Norm();
    }
    const double smooth =
        opts_.lambda != 0.0 ? la::Sandwich(g, ensemble.laplacian) : 0.0;
    const double objective = q.FrobeniusNormSquared() +
                             opts_.beta * l21 + opts_.lambda * smooth;
    res.objective_trace.push_back(objective);
    res.iterations = t;
    if (callback_) callback_(t, g);

    const double rel = std::fabs(prev_objective - objective) /
                       std::max(1.0, std::fabs(prev_objective));
    if (std::isfinite(prev_objective) && rel < opts_.tolerance) {
      res.converged = true;
      break;
    }
    prev_objective = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  if (opts_.use_error_matrix) out.error_matrix = std::move(error);
  return out;
}

}  // namespace core
}  // namespace rhchme
