#include "core/rhchme_solver.h"

#include <cmath>

#include "la/gemm.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace core {

Status RhchmeOptions::Validate() const {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (beta < 0.0) return Status::InvalidArgument("beta must be >= 0");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) return Status::InvalidArgument("tolerance must be >= 0");
  if (sparse_r_density_threshold < 0.0 || sparse_r_density_threshold > 1.0) {
    return Status::InvalidArgument(
        "sparse_r_density_threshold must be in [0, 1]");
  }
  if (sparse_r == SparseRMode::kAlways && explicit_materialization) {
    return Status::InvalidArgument(
        "sparse_r == kAlways conflicts with explicit_materialization; the "
        "reference core is inherently dense");
  }
  return ensemble.Validate();
}

RhchmeResult::RhchmeResult(const RhchmeResult& other)
    : hocc(other.hocc),
      ensemble(other.ensemble),
      error_scale(other.error_scale),
      error_residual(other.error_residual),
      error_sparse_r(other.error_sparse_r) {
  std::lock_guard<std::mutex> lock(other.error_mu_);
  error_dense_ = other.error_dense_;
}

RhchmeResult& RhchmeResult::operator=(const RhchmeResult& other) {
  if (this == &other) return *this;
  la::Matrix dense;
  {
    std::lock_guard<std::mutex> lock(other.error_mu_);
    dense = other.error_dense_;
  }
  hocc = other.hocc;
  ensemble = other.ensemble;
  error_scale = other.error_scale;
  error_residual = other.error_residual;
  error_sparse_r = other.error_sparse_r;
  std::lock_guard<std::mutex> lock(error_mu_);
  error_dense_ = std::move(dense);
  return *this;
}

// Moves assume exclusive access to `other` (standard move contract), so
// its cache slot is read without locking.
RhchmeResult::RhchmeResult(RhchmeResult&& other) noexcept
    : hocc(std::move(other.hocc)),
      ensemble(std::move(other.ensemble)),
      error_scale(std::move(other.error_scale)),
      error_residual(std::move(other.error_residual)),
      error_sparse_r(std::move(other.error_sparse_r)),
      error_dense_(std::move(other.error_dense_)) {}

RhchmeResult& RhchmeResult::operator=(RhchmeResult&& other) noexcept {
  if (this == &other) return *this;
  hocc = std::move(other.hocc);
  ensemble = std::move(other.ensemble);
  error_scale = std::move(other.error_scale);
  error_residual = std::move(other.error_residual);
  error_sparse_r = std::move(other.error_sparse_r);
  error_dense_ = std::move(other.error_dense_);
  return *this;
}

bool RhchmeResult::HasErrorMatrix() const {
  return !error_scale.empty() || !error_dense_.empty();
}

const la::Matrix& RhchmeResult::ErrorMatrix() const {
  // The lazy build runs under the mutex so concurrent const readers are
  // safe (same pattern as SparseMatrix::BuildCscMirror): at most one
  // thread builds, the rest block and reuse the cached matrix, which is
  // immutable afterwards.
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_dense_.empty() || error_scale.empty()) return error_dense_;
  if (!error_residual.empty()) {
    // Implicit dense core: E_R = diag(s)·Q from the stored residual.
    const std::size_t n = error_residual.rows();
    const std::size_t cols = error_residual.cols();
    error_dense_.Resize(n, cols);
    util::ParallelFor(0, n, util::GrainForWork(2 * cols + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          const double s = error_scale[i];
                          const double* qi = error_residual.row_ptr(i);
                          double* ei = error_dense_.row_ptr(i);
                          for (std::size_t j = 0; j < cols; ++j) {
                            ei[j] = s * qi[j];
                          }
                        }
                      });
  } else {
    // Sparse-R core: the fit never formed Q, so rebuild it from the
    // stored sparse R and the final factors (Q = R − G·S·Gᵀ), then scale
    // rows. This is the path's only dense n x n allocation, and it
    // happens here, on demand.
    const la::Matrix& g = hocc.g;
    la::Matrix q = la::MultiplyNT(la::Multiply(g, hocc.s), g);  // G S Gᵀ
    q.Scale(-1.0);
    const std::vector<std::size_t>& offsets = error_sparse_r.row_offsets();
    const std::vector<std::size_t>& cols = error_sparse_r.col_indices();
    const std::vector<double>& vals = error_sparse_r.values();
    util::ParallelFor(0, q.rows(), util::GrainForWork(2 * q.cols() + 1),
                      [&](std::size_t r0, std::size_t r1) {
                        for (std::size_t i = r0; i < r1; ++i) {
                          double* qi = q.row_ptr(i);
                          for (std::size_t k = offsets[i]; k < offsets[i + 1];
                               ++k) {
                            qi[cols[k]] += vals[k];
                          }
                          const double s = error_scale[i];
                          for (std::size_t j = 0; j < q.cols(); ++j) {
                            qi[j] *= s;
                          }
                        }
                      });
    error_dense_ = std::move(q);
  }
  return error_dense_;
}

namespace {

/// Data + ℓ2,1 terms of Eq. 15, shared by both RhchmeObjective overloads;
/// the smoothness term is evaluated by the caller against its Laplacian
/// representation.
double ObjectiveDataTerms(const la::Matrix& r, const la::Matrix& g,
                          const la::Matrix& s, const la::Matrix& error_matrix,
                          double beta) {
  la::Matrix residual = la::MultiplyNT(la::Multiply(g, s), g);  // G S Gᵀ
  residual.Sub(r);
  residual.Scale(-1.0);  // R - G S Gᵀ
  double l21 = 0.0;
  if (!error_matrix.empty()) {
    residual.Sub(error_matrix);
    l21 = error_matrix.L21Norm();
  }
  return residual.FrobeniusNormSquared() + beta * l21;
}

}  // namespace

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::Matrix& laplacian, double lambda,
                       double beta) {
  // tr(Gᵀ L G) without materialising the n x c product L G.
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return ObjectiveDataTerms(r, g, s, error_matrix, beta) + lambda * smooth;
}

double RhchmeObjective(const la::Matrix& r, const la::Matrix& g,
                       const la::Matrix& s, const la::Matrix& error_matrix,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta) {
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return ObjectiveDataTerms(r, g, s, error_matrix, beta) + lambda * smooth;
}

double RhchmeObjective(const la::SparseMatrix& r, const la::Matrix& g,
                       const la::Matrix& s,
                       const std::vector<double>& error_scale,
                       const la::SparseMatrix& laplacian, double lambda,
                       double beta) {
  const std::size_t n = g.rows();
  const std::size_t c = g.cols();
  RHCHME_CHECK(r.rows() == n && r.cols() == n,
               "RhchmeObjective: R shape mismatch");
  RHCHME_CHECK(error_scale.empty() || error_scale.size() == n,
               "RhchmeObjective: error_scale size mismatch");
  // The dense n x n residual is never formed: with H = G·S, K = R·G the
  // residual row norms are ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ,
  // and E_R = diag(s)·Q makes the data and ℓ2,1 terms analytic —
  // ‖Q − E_R‖²_F = Σ(1−s_i)²‖q_i‖², ‖E_R‖₂,₁ = Σ s_i‖q_i‖.
  la::Matrix h = la::Multiply(g, s);
  la::Matrix k = r.MultiplyDense(g);
  la::Matrix hg = la::Multiply(h, la::Gram(g));
  const std::vector<double> r_norm_sq = r.RowNormsSquared();
  std::vector<double> row_norm(n, 0.0);
  util::ParallelFor(0, n, util::GrainForWork(4 * c + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* hi = h.row_ptr(i);
                        const double* ki = k.row_ptr(i);
                        const double* hgi = hg.row_ptr(i);
                        double hk = 0.0, hh = 0.0;
                        for (std::size_t j = 0; j < c; ++j) {
                          hk += hi[j] * ki[j];
                          hh += hi[j] * hgi[j];
                        }
                        const double nsq = r_norm_sq[i] - 2.0 * hk + hh;
                        row_norm[i] = nsq > 0.0 ? std::sqrt(nsq) : 0.0;
                      }
                    });
  double data_term = 0.0;
  double l21 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = row_norm[i];
    if (error_scale.empty()) {
      data_term += norm * norm;
    } else {
      const double keep = 1.0 - error_scale[i];
      data_term += keep * keep * norm * norm;
      l21 += error_scale[i] * norm;
    }
  }
  const double smooth = lambda != 0.0 ? la::Sandwich(g, laplacian) : 0.0;
  return data_term + beta * l21 + lambda * smooth;
}

Result<RhchmeResult> Rhchme::Fit(
    const data::MultiTypeRelationalData& data) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  Result<HeterogeneousEnsemble> ensemble =
      BuildEnsemble(data, blocks, opts_.ensemble);
  if (!ensemble.ok()) return ensemble.status();
  return FitWithEnsemble(data, ensemble.value());
}

Result<RhchmeResult> Rhchme::FitWithEnsemble(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble) const {
  RHCHME_RETURN_IF_ERROR(opts_.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  Stopwatch watch;

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  const std::size_t n = blocks.total_objects();
  if (ensemble.laplacian.rows() != n) {
    return Status::InvalidArgument("ensemble Laplacian size mismatch");
  }
  const bool robust = opts_.use_error_matrix;
  const bool explicit_core = opts_.explicit_materialization;

  // Core selection: sparse-R when forced, or when kAuto sees a joint R
  // sparse enough that the O(nnz + n·c) path wins. The explicit reference
  // core is inherently dense and takes precedence.
  if (!explicit_core) {
    bool sparse_core = false;
    switch (opts_.sparse_r) {
      case SparseRMode::kAlways:
        sparse_core = true;
        break;
      case SparseRMode::kNever:
        break;
      case SparseRMode::kAuto:
        sparse_core =
            data.JointRDensity() <= opts_.sparse_r_density_threshold;
        break;
    }
    if (sparse_core) return FitSparseR(data, ensemble, blocks);
  }

  // Step 1 of Algorithm 2: the joint inter-type matrix R.
  const la::Matrix r = data.BuildJointR();

  // ±-parts of L are fixed across iterations (Eq. 21). Sparse on the
  // default core; the explicit reference core densifies them. Neither is
  // needed — nor built — when lambda == 0 (no manifold term).
  la::SparseMatrix lap_pos, lap_neg;
  la::Matrix dense_pos, dense_neg;
  if (opts_.lambda != 0.0) {
    lap_pos = la::PositivePart(ensemble.laplacian);
    lap_neg = la::NegativePart(ensemble.laplacian);
    if (explicit_core) {
      dense_pos = lap_pos.ToDense();
      dense_neg = lap_neg.ToDense();
    }
  }

  // Initialise G (k-means by default) and E_R = 0.
  Rng rng(opts_.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts_.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();

  // E_R state. Default core: per-row scales s with E_R = diag(s)·Q — the
  // dense matrix is never formed. Explicit core: the dense E_R of the
  // pre-refactor solver (starts at zero, Algorithm 2).
  std::vector<double> er_scale(robust ? n : 0, 0.0);
  std::vector<double> row_norm(robust && !explicit_core ? n : 0, 0.0);
  la::Matrix error;
  if (robust && explicit_core) error.Resize(n, n);
  bool have_error = false;  // True once the first E_R update has run.

  RhchmeResult out;
  out.ensemble = ensemble;
  fact::HoccResult& res = out.hocc;
  res.objective_trace.reserve(opts_.max_iterations);

  la::Matrix s;
  la::Matrix gs;    // n x c staging for G·S.
  la::Matrix work;  // Shared n x n buffer: holds M, then the residual Q.
  double prev_objective = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts_.max_iterations; ++t) {
    // ---- Step 3 prep: M = R - E_R ---------------------------------------
    const la::Matrix* m = &r;  // E_R = 0 (first iteration, or disabled).
    if (robust && have_error) {
      if (explicit_core) {
        work = r;
        work.Sub(error);
      } else {
        // Implicit fold: row i of M is r_i - s_i·q_i. `work` still holds
        // the previous residual Q, so the fold rewrites it in place —
        // no dense E_R and no extra buffer.
        util::ParallelFor(0, n, util::GrainForWork(3 * n + 1),
                          [&](std::size_t r0, std::size_t r1) {
                            for (std::size_t i = r0; i < r1; ++i) {
                              const double si = er_scale[i];
                              const double* ri = r.row_ptr(i);
                              double* wi = work.row_ptr(i);
                              for (std::size_t j = 0; j < n; ++j) {
                                wi[j] = ri[j] - si * wi[j];
                              }
                            }
                          });
      }
      m = &work;
    }

    // ---- Step 3: S update (Eq. 18) on M ---------------------------------
    Result<la::Matrix> s_new = fact::SolveCentralS(g, *m, opts_.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();

    // ---- Step 4: multiplicative G update (Eq. 21) -----------------------
    if (explicit_core) {
      fact::MultiplicativeGUpdate(*m, s, opts_.lambda, &dense_pos, &dense_neg,
                                  opts_.mu_eps, &g);
    } else {
      fact::MultiplicativeGUpdate(*m, s, opts_.lambda, &lap_pos, &lap_neg,
                                  opts_.mu_eps, &g);
    }

    // ---- Step 5: row ℓ1 normalisation (Eq. 22) --------------------------
    if (opts_.normalize_rows) fact::NormalizeMembershipRows(blocks, &g);

    // The residual Q = R - G S Gᵀ feeds both the E_R update (Eq. 25-27)
    // and the objective; it overwrites the shared workspace.
    la::MultiplyInto(g, s, &gs);
    la::MultiplyNTInto(gs, g, &work);
    work.Scale(-1.0);
    work.Add(r);  // Q = R - G S Gᵀ

    // ---- Steps 6–7: E_R update (Eq. 25–27) and objective ----------------
    // (beta·D + I)⁻¹ is diagonal: row i of E_R is row i of Q scaled by
    // s_i = 1 / (beta/(2||q_i|| + zeta) + 1). Rows are independent, so
    // both cores run the reweighting as parallel row chunks; the default
    // core stores only the scales.
    double data_term = 0.0;
    double l21 = 0.0;
    if (robust) {
      have_error = true;
      if (explicit_core) {
        util::ParallelFor(
            0, n, util::GrainForWork(4 * n + 1),
            [&](std::size_t r0, std::size_t r1) {
              for (std::size_t i = r0; i < r1; ++i) {
                const double* qi = work.row_ptr(i);
                double norm_sq = 0.0;
                for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
                const double d_ii =
                    1.0 / (2.0 * std::sqrt(norm_sq) + opts_.l21_zeta);
                const double scale = 1.0 / (opts_.beta * d_ii + 1.0);
                er_scale[i] = scale;
                double* ei = error.row_ptr(i);
                for (std::size_t j = 0; j < n; ++j) ei[j] = scale * qi[j];
              }
            });
        // After the E_R update the data term is ||Q - E_R||²_F, evaluated
        // elementwise on the materialised matrices (reference behaviour).
        work.Sub(error);
        l21 = error.L21Norm();
        data_term = work.FrobeniusNormSquared();
      } else {
        // Row norms and scales staged per row, then reduced serially in
        // row order — bit-identical for any pool size. The objective
        // terms follow analytically from E_R = diag(s)·Q:
        //   ||Q - E_R||²_F = Σ (1 - s_i)²·||q_i||²
        //   ||E_R||₂,₁     = Σ s_i·||q_i||.
        util::ParallelFor(
            0, n, util::GrainForWork(2 * n + 1),
            [&](std::size_t r0, std::size_t r1) {
              for (std::size_t i = r0; i < r1; ++i) {
                const double* qi = work.row_ptr(i);
                double norm_sq = 0.0;
                for (std::size_t j = 0; j < n; ++j) norm_sq += qi[j] * qi[j];
                const double norm = std::sqrt(norm_sq);
                row_norm[i] = norm;
                const double d_ii = 1.0 / (2.0 * norm + opts_.l21_zeta);
                er_scale[i] = 1.0 / (opts_.beta * d_ii + 1.0);
              }
            });
        for (std::size_t i = 0; i < n; ++i) {
          const double keep = 1.0 - er_scale[i];
          data_term += keep * keep * row_norm[i] * row_norm[i];
          l21 += er_scale[i] * row_norm[i];
        }
      }
    } else {
      data_term = work.FrobeniusNormSquared();
    }

    const double smooth =
        opts_.lambda != 0.0 ? la::Sandwich(g, ensemble.laplacian) : 0.0;
    const double objective =
        data_term + opts_.beta * l21 + opts_.lambda * smooth;
    res.objective_trace.push_back(objective);
    res.iterations = t;
    if (callback_) callback_(t, g);

    const double rel = std::fabs(prev_objective - objective) /
                       std::max(1.0, std::fabs(prev_objective));
    if (std::isfinite(prev_objective) && rel < opts_.tolerance) {
      res.converged = true;
      break;
    }
    prev_objective = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  if (robust) {
    out.error_scale = std::move(er_scale);
    if (explicit_core) {
      out.error_dense_ = std::move(error);
    } else {
      // `work` holds the final residual Q — exactly the factored E_R's
      // second factor. Handing it to the result costs no copy.
      out.error_residual = std::move(work);
    }
  }
  return out;
}

Result<RhchmeResult> Rhchme::FitSparseR(
    const data::MultiTypeRelationalData& data,
    const HeterogeneousEnsemble& ensemble,
    const fact::BlockStructure& blocks) const {
  Stopwatch watch;
  const std::size_t n = blocks.total_objects();
  const std::size_t c = blocks.total_clusters();
  const bool robust = opts_.use_error_matrix;

  // Step 1: the joint R, sparse end-to-end. The CSC mirror is built once
  // so every Rᵀ product of the fit runs the threaded gather path; the row
  // norms ‖r_i‖² anchor the analytic residual norms all fit long. Under
  // assume_symmetric_r no Rᵀ product is ever taken, so the mirror (an
  // extra O(nnz) of memory) is skipped too.
  const bool sym_r = opts_.assume_symmetric_r;
  la::SparseMatrix r = data.BuildJointRSparse();
  if (!sym_r) r.BuildCscMirror();
  const std::vector<double> r_norm_sq = r.RowNormsSquared();

  la::SparseMatrix lap_pos, lap_neg;
  if (opts_.lambda != 0.0) {
    lap_pos = la::PositivePart(ensemble.laplacian);
    lap_neg = la::NegativePart(ensemble.laplacian);
  }

  Rng rng(opts_.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts_.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();

  // E_R stays doubly implicit: per-row scales s_i with
  // E_R = diag(s)·(R − H·Gᵀ) — neither the error matrix nor the residual
  // is ever formed.
  std::vector<double> er_scale(robust ? n : 0, 0.0);
  std::vector<double> row_norm(n, 0.0);
  bool have_error = false;

  RhchmeResult out;
  out.ensemble = ensemble;
  fact::HoccResult& res = out.hocc;
  res.objective_trace.reserve(opts_.max_iterations);

  // Low-rank iteration state, all n x c or c x c. K = R·G (the one SpMM
  // per iteration), H = G·S, GᵀG and HG = H·(GᵀG) are computed right
  // after each G update and double as the next iteration's implicit-M
  // product inputs — M·G = K − diag(s)·(K − HG) needs exactly them.
  la::Matrix s, h, k, hg, gtg;
  la::Matrix mg, mtg, gs_scaled, scratch;
  r.MultiplyDenseInto(g, &k);
  gtg = la::Gram(g);

  double prev_objective = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts_.max_iterations; ++t) {
    // ---- M·G and Mᵀ·G from the implicit M = R − diag(s)·(R − H·Gᵀ) ------
    const la::Matrix* m_g = &k;  // E_R = 0 (first iteration, or disabled).
    if (robust && have_error) {
      // mg_i = k_i − s_i·(k_i − hg_i): the E_R fold collapses to a row
      // recombination of cached n x c state.
      mg.Resize(n, c);
      util::ParallelFor(0, n, util::GrainForWork(3 * c + 1),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t i = r0; i < r1; ++i) {
                            const double si = er_scale[i];
                            const double* ki = k.row_ptr(i);
                            const double* hgi = hg.row_ptr(i);
                            double* mi = mg.row_ptr(i);
                            for (std::size_t j = 0; j < c; ++j) {
                              mi[j] = ki[j] - si * (ki[j] - hgi[j]);
                            }
                          }
                        });
      // Mᵀ·G = Rᵀ·G − Rᵀ·diag(s)·G + G·(Hᵀ·diag(s)·G) plus a c x c
      // recombination. Non-assuming: two gather-path transposed SpMMs
      // (the scaled one never materialises diag(s)·R). Symmetric R:
      // Rᵀ·G is the cached K and Rᵀ·diag(s)·G = R·(diag(s)·G) runs as a
      // forward SpMM — no transposed product at all.
      gs_scaled.Resize(n, c);
      util::ParallelFor(0, n, util::GrainForWork(2 * c + 1),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t i = r0; i < r1; ++i) {
                            const double si = er_scale[i];
                            const double* gi = g.row_ptr(i);
                            double* oi = gs_scaled.row_ptr(i);
                            for (std::size_t j = 0; j < c; ++j) {
                              oi[j] = si * gi[j];
                            }
                          }
                        });
      if (sym_r) {
        mtg = k;
        r.MultiplyDenseInto(gs_scaled, &scratch);
      } else {
        r.MultiplyTransposedDenseInto(g, &mtg);
        r.MultiplyTransposedScaledDenseInto(er_scale, g, &scratch);
      }
      mtg.Sub(scratch);
      la::Matrix hts = la::MultiplyTN(h, gs_scaled);  // Hᵀ·diag(s)·G, c x c
      mtg.Add(la::Multiply(g, hts));
      m_g = &mg;
    } else {
      // M = R, so M·G is exactly the cached K (no copy); Mᵀ·G needs the
      // transposed product — or is K again when R is symmetric.
      if (sym_r) {
        mtg = k;
      } else {
        r.MultiplyTransposedDenseInto(g, &mtg);
      }
    }

    // ---- Step 3: S update (Eq. 18) from the c x c products --------------
    la::Matrix gtmg = la::MultiplyTN(g, *m_g);
    Result<la::Matrix> s_new =
        fact::SolveCentralSFromProducts(gtg, gtmg, opts_.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();

    // ---- Step 4: multiplicative G update (Eq. 21) -----------------------
    fact::MultiplicativeGUpdateFromProducts(*m_g, mtg, s, gtg, opts_.lambda,
                                            &lap_pos, &lap_neg, opts_.mu_eps,
                                            &g);

    // ---- Step 5: row ℓ1 normalisation (Eq. 22) --------------------------
    if (opts_.normalize_rows) fact::NormalizeMembershipRows(blocks, &g);

    // ---- Post-update low-rank state -------------------------------------
    la::MultiplyInto(g, s, &h);      // H = G·S
    r.MultiplyDenseInto(g, &k);      // K = R·G — the iteration's one SpMM
    gtg = la::Gram(g);
    la::MultiplyInto(h, gtg, &hg);   // H·(GᵀG)

    // ---- Steps 6–7: E_R scales and objective, all analytic --------------
    // ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ — per-row dots of
    // cached n x c state, staged row-indexed then reduced serially in row
    // order (bit-identical for any pool size, like the dense cores).
    util::ParallelFor(
        0, n, util::GrainForWork(4 * c + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t i = r0; i < r1; ++i) {
            const double* hi = h.row_ptr(i);
            const double* ki = k.row_ptr(i);
            const double* hgi = hg.row_ptr(i);
            double hk = 0.0, hh = 0.0;
            for (std::size_t j = 0; j < c; ++j) {
              hk += hi[j] * ki[j];
              hh += hi[j] * hgi[j];
            }
            // The identity can dip below zero by rounding when a residual
            // row vanishes; clamp before the square root.
            const double nsq = r_norm_sq[i] - 2.0 * hk + hh;
            row_norm[i] = nsq > 0.0 ? std::sqrt(nsq) : 0.0;
          }
        });
    double data_term = 0.0;
    double l21 = 0.0;
    if (robust) {
      have_error = true;
      for (std::size_t i = 0; i < n; ++i) {
        const double norm = row_norm[i];
        const double d_ii = 1.0 / (2.0 * norm + opts_.l21_zeta);
        er_scale[i] = 1.0 / (opts_.beta * d_ii + 1.0);
        const double keep = 1.0 - er_scale[i];
        data_term += keep * keep * norm * norm;
        l21 += er_scale[i] * norm;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        data_term += row_norm[i] * row_norm[i];
      }
    }

    const double smooth =
        opts_.lambda != 0.0 ? la::Sandwich(g, ensemble.laplacian) : 0.0;
    const double objective =
        data_term + opts_.beta * l21 + opts_.lambda * smooth;
    res.objective_trace.push_back(objective);
    res.iterations = t;
    if (callback_) callback_(t, g);

    const double rel = std::fabs(prev_objective - objective) /
                       std::max(1.0, std::fabs(prev_objective));
    if (std::isfinite(prev_objective) && rel < opts_.tolerance) {
      res.converged = true;
      break;
    }
    prev_objective = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  if (robust) {
    out.error_scale = std::move(er_scale);
    // The factored E_R's second factor is Q = R − G·S·Gᵀ, never formed on
    // this core; hand the sparse R to the result so ErrorMatrix() can
    // rebuild Q on demand.
    out.error_sparse_r = std::move(r);
  }
  return out;
}

}  // namespace core
}  // namespace rhchme
