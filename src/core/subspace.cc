#include "core/subspace.h"

#include <algorithm>
#include <cmath>

#include "la/gemm.h"
#include "util/rng.h"

namespace rhchme {
namespace core {

Status SpgOptions::Validate() const {
  if (max_iterations <= 0) {
    return Status::InvalidArgument("SPG needs max_iterations >= 1");
  }
  if (tolerance <= 0.0) {
    return Status::InvalidArgument("SPG tolerance must be positive");
  }
  if (step_min <= 0.0 || step_max <= step_min) {
    return Status::InvalidArgument("SPG step clamp invalid");
  }
  return Status::OK();
}

Status SubspaceOptions::Validate() const {
  if (gamma <= 0.0) {
    return Status::InvalidArgument("subspace gamma must be positive");
  }
  if (affine_penalty < 0.0) {
    return Status::InvalidArgument("affine_penalty must be nonnegative");
  }
  return spg.Validate();
}

void ProjectFeasible(la::Matrix* w) {
  w->ClampNonNegative();
  const std::size_t n = std::min(w->rows(), w->cols());
  for (std::size_t i = 0; i < n; ++i) (*w)(i, i) = 0.0;
}

namespace {

/// J₂ evaluated from a precomputed W·Q (avoids the n³ re-multiply).
/// `eta` adds the optional affine penalty eta·||W·1 − 1||².
double ObjectiveFromWq(const la::Matrix& w, const la::Matrix& gram,
                       const la::Matrix& wq, double gamma, double eta) {
  double tr_q = gram.Trace();
  double tr_wq = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) tr_wq += wq(i, i);
  const double tr_wqwt = la::FrobeniusInner(wq, w);
  double sparsity = 0.0;
  for (double cs : w.ColSums()) sparsity += cs * cs;
  double affine = 0.0;
  if (eta > 0.0) {
    for (double rs : w.RowSums()) affine += (rs - 1.0) * (rs - 1.0);
  }
  return gamma * (tr_q - 2.0 * tr_wq + tr_wqwt) + sparsity + eta * affine;
}

}  // namespace

double SubspaceObjective(const la::Matrix& w, const la::Matrix& gram,
                         double gamma) {
  // gamma * tr((I-W) Q (I-W)ᵀ) + ||1ᵀW||².
  la::Matrix wq = la::Multiply(w, gram);
  return ObjectiveFromWq(w, gram, wq, gamma, /*eta=*/0.0);
}

namespace {

/// grad = 2·gamma·(W·Q − Q) + 2·1·(1ᵀW) + 2·eta·(W·1 − 1)·1ᵀ; reuses the
/// caller's W·Q.
la::Matrix Gradient(const la::Matrix& w, const la::Matrix& gram,
                    const la::Matrix& wq, double gamma, double eta) {
  la::Matrix g = wq;
  g.Sub(gram);
  g.Scale(2.0 * gamma);
  const std::vector<double> cs = w.ColSums();
  const std::vector<double> rs = eta > 0.0 ? w.RowSums()
                                           : std::vector<double>();
  for (std::size_t i = 0; i < g.rows(); ++i) {
    double* r = g.row_ptr(i);
    const double affine = eta > 0.0 ? 2.0 * eta * (rs[i] - 1.0) : 0.0;
    for (std::size_t j = 0; j < g.cols(); ++j) {
      r[j] += 2.0 * cs[j] + affine;
    }
  }
  return g;
}

}  // namespace

Result<SubspaceResult> LearnSubspaceAffinity(const la::Matrix& objects,
                                             const SubspaceOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  const std::size_t n = objects.rows();
  if (n < 2) {
    return Status::InvalidArgument(
        "subspace learning needs at least two objects");
  }

  // Gram of object rows; all reconstruction algebra runs through it, so
  // the ambient dimension D only costs one n²D product here.
  la::Matrix gram = la::MultiplyNT(objects, objects);
  if (opts.normalize_rows) {
    // Scale Gram by the row norms: equivalent to normalising X's rows.
    std::vector<double> inv_norm(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = std::sqrt(gram(i, i));
      inv_norm[i] = d > 0.0 ? 1.0 / d : 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        gram(i, j) *= inv_norm[i] * inv_norm[j];
      }
    }
  }

  Rng rng(opts.seed);
  la::Matrix w = la::Matrix::RandomUniform(n, n, &rng, 0.0,
                                           1.0 / static_cast<double>(n));
  ProjectFeasible(&w);

  const double eta = opts.affine_penalty;
  SubspaceResult out;
  la::Matrix wq = la::Multiply(w, gram);
  la::Matrix grad = Gradient(w, gram, wq, opts.gamma, eta);
  double step = 1.0;  // Initial BB steplength guess.
  bool converged = false;
  int it = 0;
  for (; it < opts.spg.max_iterations; ++it) {
    // Stationarity check: ||P(W - grad) - W||_inf.
    {
      la::Matrix probe = w;
      probe.AddScaled(grad, -1.0);
      ProjectFeasible(&probe);
      probe.Sub(w);
      if (probe.MaxAbs() <= opts.spg.tolerance) {
        converged = true;
        break;
      }
    }

    // Projected direction d = P(W - step·grad) - W.
    la::Matrix d = w;
    d.AddScaled(grad, -step);
    ProjectFeasible(&d);
    d.Sub(w);

    // J₂ is a convex quadratic, so the line objective
    //   f(W + t·d) = f(W) + b·t + a·t²
    // is exact; the minimiser replaces the Armijo search of Algorithm 1
    // and guarantees monotone descent.
    la::Matrix dq = la::Multiply(d, gram);
    const std::vector<double> cs_w = w.ColSums();
    const std::vector<double> cs_d = d.ColSums();
    double tr_dq = 0.0;
    for (std::size_t i = 0; i < n; ++i) tr_dq += dq(i, i);
    const double fi_dq_w = la::FrobeniusInner(dq, w);
    const double fi_dq_d = la::FrobeniusInner(dq, d);
    double dot_cs = 0.0, cs_d_sq = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dot_cs += cs_w[j] * cs_d[j];
      cs_d_sq += cs_d[j] * cs_d[j];
    }
    double b = -2.0 * opts.gamma * (tr_dq - fi_dq_w) + 2.0 * dot_cs;
    double a = opts.gamma * fi_dq_d + cs_d_sq;
    if (eta > 0.0) {
      // Affine term: eta·||(W + t·d)·1 − 1||² adds eta·(2t·<u, v> + t²·|v|²)
      // with u = W·1 − 1, v = d·1.
      const std::vector<double> rs_w = w.RowSums();
      const std::vector<double> rs_d = d.RowSums();
      double uv = 0.0, vv = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        uv += (rs_w[i] - 1.0) * rs_d[i];
        vv += rs_d[i] * rs_d[i];
      }
      b += 2.0 * eta * uv;
      a += eta * vv;
    }

    double t = 1.0;
    if (a > 0.0) t = std::clamp(-b / (2.0 * a), 1e-6, 1.0);

    // Take the step; track s and y for the Barzilai–Borwein steplength.
    la::Matrix s = d;
    s.Scale(t);
    w.Add(s);
    la::MultiplyInto(w, gram, &wq);
    la::Matrix grad_new = Gradient(w, gram, wq, opts.gamma, eta);
    la::Matrix y = grad_new;
    y.Sub(grad);
    const double sy = la::FrobeniusInner(s, y);
    const double ss = la::FrobeniusInner(s, s);
    step = sy > 0.0 ? std::clamp(ss / sy, opts.spg.step_min,
                                 opts.spg.step_max)
                    : opts.spg.step_max;
    grad = std::move(grad_new);

    out.objective_trace.push_back(
        ObjectiveFromWq(w, gram, wq, opts.gamma, eta));
  }

  // Post-processing: prune dust, symmetrise for Laplacian use.
  if (opts.prune_rel_tol > 0.0) {
    const double cut = opts.prune_rel_tol * w.MaxAbs();
    w.Apply([cut](double v) { return v < cut ? 0.0 : v; });
  }
  if (opts.keep_top_k > 0 && opts.keep_top_k < n - 1) {
    std::vector<std::pair<double, std::size_t>> row;
    for (std::size_t i = 0; i < n; ++i) {
      row.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (w(i, j) > 0.0) row.push_back({w(i, j), j});
      }
      if (row.size() <= opts.keep_top_k) continue;
      std::nth_element(row.begin(),
                       row.begin() + static_cast<std::ptrdiff_t>(
                                         opts.keep_top_k - 1),
                       row.end(), std::greater<>());
      const double cut = row[opts.keep_top_k - 1].first;
      for (std::size_t j = 0; j < n; ++j) {
        if (w(i, j) < cut) w(i, j) = 0.0;
      }
    }
  }
  if (opts.symmetrize) {
    la::Matrix wt = w.Transposed();
    w.Add(wt);
    w.Scale(0.5);
  }

  out.affinity = std::move(w);
  out.iterations = it;
  out.converged = converged;
  return out;
}

}  // namespace core
}  // namespace rhchme
