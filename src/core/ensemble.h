// Heterogeneous manifold ensemble (paper §III.B, Eq. 12).
//
// Per object type, two intra-type relationship estimates are combined:
//
//   L = alpha · L_S + L_E
//
// where L_S is the Laplacian of the subspace-membership affinity W^S
// (distant but within-manifold neighbours; §III.A) and L_E the Laplacian
// of a small-p cosine pNN graph W^E (close Euclidean neighbours; Eq. 3).
// Two *diverse* members give the accuracy that RMC's many same-type
// members cannot (§III.B). The joint Laplacian is block-diagonal across
// types and plugs into the regulariser tr(Gᵀ L G) of Eq. 15.
//
// Threading model: every (type, member) pair is an independent
// construction task — one candidate manifold per task — dispatched on
// the global pool (util/parallel.h). Each member's subspace seed is
// derived upfront via util DeriveStreamSeed(seed, type), and tasks write
// only their own output slots, so the assembled ensemble is bit-identical
// for any pool size or schedule (covered by ensemble_test). A task's own
// inner parallel regions run inline while other tasks are in flight
// (nested-region rule); with a single task the caller runs it directly
// so its inner kernels keep the whole pool.

#ifndef RHCHME_CORE_ENSEMBLE_H_
#define RHCHME_CORE_ENSEMBLE_H_

#include <vector>

#include "core/subspace.h"
#include "data/multitype_data.h"
#include "factorization/hocc_common.h"
#include "graph/knn_graph.h"
#include "graph/laplacian.h"
#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace core {

struct EnsembleOptions {
  /// Trade-off alpha of Eq. 12. Fig. 2: stable in [0.25, 2], best at 1.
  double alpha = 1.0;
  /// pNN member W^E: the paper uses p = 5 with cosine weighting.
  /// knn.backend selects the construction engine (kAuto: exact below the
  /// threshold, NN-descent above); per-type descent seeds are derived
  /// from knn.descent.seed inside BuildEnsemble.
  graph::KnnGraphOptions knn;
  /// Subspace member W^S (Algorithm 1 settings).
  SubspaceOptions subspace;
  graph::LaplacianKind laplacian = graph::LaplacianKind::kSymmetric;
  /// Ablation switches: drop a member entirely (at least one must stay).
  bool include_subspace = true;
  bool include_knn = true;

  Status Validate() const;
};

/// The assembled ensemble plus its per-type ingredients (kept for
/// inspection, tests and the subspace demo).
struct HeterogeneousEnsemble {
  /// Joint block-diagonal n x n Laplacian, alpha·L_S + L_E per block.
  /// Stored sparse: the pattern is the union of the per-type blocks, so
  /// the footprint is Σ_k nnz(block k) — O(n·p) when only the pNN member
  /// is on, Σ_k n_k² worst case with the (dense-affinity) subspace
  /// member — never the dense n². The solver consumes it sparse
  /// end-to-end (±-split, SpMM, Sandwich); call ToDense() only for
  /// inspection.
  la::SparseMatrix laplacian;
  /// Per-type subspace affinities W^S (empty matrices when disabled).
  std::vector<la::Matrix> subspace_affinity;
  /// Per-type pNN affinities W^E (empty when disabled).
  std::vector<la::SparseMatrix> knn_affinity;
  double alpha = 1.0;
};

/// Builds the ensemble for every type of `data` using each type's feature
/// matrix. Types must have nonempty features. Members are constructed in
/// parallel (one task per member) with schedule-independent results; the
/// first failing member's status (in type order, subspace before pNN) is
/// returned on error.
Result<HeterogeneousEnsemble> BuildEnsemble(
    const data::MultiTypeRelationalData& data,
    const fact::BlockStructure& blocks, const EnsembleOptions& opts);

/// Re-assembles the joint Laplacian from an ensemble's stored members at a
/// different alpha — the expensive subspace learning is NOT repeated.
/// Used by alpha sweeps (Fig. 2) and the auto-tuner. Per-type Laplacian
/// rebuilds run as parallel tasks (the diagonal blocks occupy disjoint
/// rows of the joint Laplacian).
Result<HeterogeneousEnsemble> ReweightEnsemble(
    const HeterogeneousEnsemble& base, const fact::BlockStructure& blocks,
    double alpha,
    graph::LaplacianKind kind = graph::LaplacianKind::kSymmetric);

}  // namespace core
}  // namespace rhchme

#endif  // RHCHME_CORE_ENSEMBLE_H_
