#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "io/matrix_io.h"
#include "util/fault.h"

namespace rhchme {
namespace core {
namespace {

constexpr char kMagic[4] = {'R', 'H', 'S', '1'};
constexpr uint32_t kVersion = 1;

// Vector lengths share the matrix format's plausibility ceiling; a
// corrupted length field must not turn into a huge allocation.
constexpr uint64_t kMaxVectorLength = 1ull << 32;

uint64_t Fnv1a(const char* data, std::size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void AppendPod(const T& v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ParsePod(const std::string& buf, std::size_t* pos, T* out) {
  if (*pos > buf.size() || buf.size() - *pos < sizeof(T)) return false;
  std::memcpy(out, buf.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void AppendDoubleVector(const std::vector<double>& v, std::string* out) {
  AppendPod(static_cast<uint64_t>(v.size()), out);
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(double));
}

Status ParseDoubleVector(const std::string& buf, std::size_t* pos,
                         std::vector<double>* out) {
  uint64_t count = 0;
  if (!ParsePod(buf, pos, &count)) {
    return Status::InvalidArgument("snapshot: truncated vector length");
  }
  if (count > kMaxVectorLength) {
    return Status::InvalidArgument("snapshot: implausible vector length");
  }
  const uint64_t bytes = count * sizeof(double);
  if (*pos > buf.size() || buf.size() - *pos < bytes) {
    return Status::InvalidArgument("snapshot: truncated vector body");
  }
  out->resize(count);
  std::memcpy(out->data(), buf.data() + *pos, bytes);
  *pos += bytes;
  return Status::OK();
}

// Bools cross the serialisation boundary as one explicit byte — padding
// and sizeof(bool) portability aside, a corrupted byte must still parse
// to a valid bool.
void AppendBool(bool v, std::string* out) {
  AppendPod<uint8_t>(v ? 1 : 0, out);
}

Status ParseBool(const std::string& buf, std::size_t* pos, bool* out) {
  uint8_t b = 0;
  if (!ParsePod(buf, pos, &b)) {
    return Status::InvalidArgument("snapshot: truncated bool field");
  }
  if (b > 1) return Status::InvalidArgument("snapshot: bad bool field");
  *out = b != 0;
  return Status::OK();
}

void AppendDiagnostics(const FitDiagnostics& d, std::string* out) {
  AppendPod(static_cast<uint64_t>(d.nonfinite_input_entries), out);
  AppendPod(static_cast<uint64_t>(d.nonfinite_g_entries), out);
  AppendPod(static_cast<int64_t>(d.nan_guard_trips), out);
  AppendPod(static_cast<int64_t>(d.solve_ridge_retries), out);
  AppendPod(static_cast<int64_t>(d.backtracks), out);
  AppendPod(static_cast<int64_t>(d.degraded_stops), out);
  AppendPod(static_cast<int64_t>(d.snapshots_written), out);
  AppendPod(static_cast<int64_t>(d.snapshot_failures), out);
  AppendPod(static_cast<int64_t>(d.resumed_from_iteration), out);
}

Status ParseDiagnostics(const std::string& buf, std::size_t* pos,
                        FitDiagnostics* d) {
  uint64_t u[2] = {0, 0};
  int64_t i[7] = {0, 0, 0, 0, 0, 0, 0};
  for (auto& v : u) {
    if (!ParsePod(buf, pos, &v)) {
      return Status::InvalidArgument("snapshot: truncated diagnostics");
    }
  }
  for (auto& v : i) {
    if (!ParsePod(buf, pos, &v)) {
      return Status::InvalidArgument("snapshot: truncated diagnostics");
    }
  }
  d->nonfinite_input_entries = static_cast<std::size_t>(u[0]);
  d->nonfinite_g_entries = static_cast<std::size_t>(u[1]);
  d->nan_guard_trips = static_cast<int>(i[0]);
  d->solve_ridge_retries = static_cast<int>(i[1]);
  d->backtracks = static_cast<int>(i[2]);
  d->degraded_stops = static_cast<int>(i[3]);
  d->snapshots_written = static_cast<int>(i[4]);
  d->snapshot_failures = static_cast<int>(i[5]);
  d->resumed_from_iteration = static_cast<int>(i[6]);
  return Status::OK();
}

std::string Serialize(const SolverSnapshot& snap) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendPod(kVersion, &out);
  AppendPod(static_cast<uint32_t>(snap.core_id), &out);
  AppendPod(snap.options_fingerprint, &out);
  AppendPod(static_cast<int64_t>(snap.iteration), &out);
  AppendPod(snap.prev_objective, &out);
  AppendBool(snap.have_error, &out);
  for (uint64_t s : snap.rng_state.s) AppendPod(s, &out);
  AppendBool(snap.rng_state.have_cached_normal, &out);
  AppendPod(snap.rng_state.cached_normal, &out);
  AppendDiagnostics(snap.diagnostics, &out);
  io::AppendMatrixPayload(snap.g, &out);
  io::AppendMatrixPayload(snap.s, &out);
  AppendDoubleVector(snap.er_scale, &out);
  AppendDoubleVector(snap.objective_trace, &out);
  AppendPod(Fnv1a(out.data(), out.size()), &out);
  return out;
}

}  // namespace

uint64_t OptionsFingerprint(const RhchmeOptions& opts, std::size_t n,
                            std::size_t c, SolverCoreId core_id) {
  std::string buf;
  AppendPod(opts.lambda, &buf);
  AppendPod(opts.beta, &buf);
  AppendPod(opts.tolerance, &buf);
  AppendPod(opts.ridge, &buf);
  AppendPod(opts.mu_eps, &buf);
  AppendPod(opts.l21_zeta, &buf);
  AppendPod(static_cast<uint32_t>(opts.init), &buf);
  AppendPod(opts.seed, &buf);
  AppendBool(opts.normalize_rows, &buf);
  AppendBool(opts.use_error_matrix, &buf);
  AppendBool(opts.assume_symmetric_r, &buf);
  AppendPod(static_cast<uint64_t>(n), &buf);
  AppendPod(static_cast<uint64_t>(c), &buf);
  AppendPod(static_cast<uint32_t>(core_id), &buf);
  return Fnv1a(buf.data(), buf.size());
}

Status SaveSolverSnapshot(const std::string& path,
                          const SolverSnapshot& snap) {
  const std::string buf = Serialize(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      return Status::InvalidArgument("cannot open for write: " + tmp);
    }
    if (util::FaultShouldFail(util::fault_site::kSnapshotWriteTruncate)) {
      // Simulated kill mid-write: half the bytes land, the rename never
      // happens. The previous snapshot at `path` stays intact.
      f.write(buf.data(), static_cast<std::streamsize>(buf.size() / 2));
      return Status::Internal("injected truncated snapshot write: " + tmp);
    }
    f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!f) return Status::Internal("snapshot write failed: " + tmp);
  }
  if (util::FaultShouldFail(util::fault_site::kSnapshotRenameFail)) {
    std::remove(tmp.c_str());
    return Status::Internal("injected snapshot rename failure: " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot rename failed: " + path);
  }
  return Status::OK();
}

Result<SolverSnapshot> LoadSolverSnapshot(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open snapshot: " + path);
  std::string buf((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  if (!f.good() && !f.eof()) {
    return Status::Internal("snapshot read failed: " + path);
  }
  // The checksum trails everything, so integrity is settled before any
  // field is interpreted: a file shorter than header + checksum, or one
  // whose trailing hash disagrees with its contents, never reaches the
  // parser.
  constexpr std::size_t kMinSize =
      sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
  if (buf.size() < kMinSize) {
    return Status::InvalidArgument("truncated snapshot: " + path);
  }
  uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, buf.data() + buf.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a(buf.data(), buf.size() - sizeof(uint64_t)) != stored_sum) {
    return Status::InvalidArgument("snapshot checksum mismatch: " + path);
  }
  std::size_t pos = 0;
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad snapshot magic: " + path);
  }
  pos += sizeof(kMagic);
  uint32_t version = 0;
  if (!ParsePod(buf, &pos, &version)) {
    return Status::InvalidArgument("truncated snapshot: " + path);
  }
  if (version != kVersion) {
    return Status::FailedPrecondition(
        "unsupported snapshot version " + std::to_string(version) + " in: " +
        path);
  }
  SolverSnapshot snap;
  uint32_t core_id = 0;
  int64_t iteration = 0;
  if (!ParsePod(buf, &pos, &core_id) ||
      !ParsePod(buf, &pos, &snap.options_fingerprint) ||
      !ParsePod(buf, &pos, &iteration) ||
      !ParsePod(buf, &pos, &snap.prev_objective)) {
    return Status::InvalidArgument("truncated snapshot header: " + path);
  }
  if (core_id > static_cast<uint32_t>(SolverCoreId::kSparseR)) {
    return Status::InvalidArgument("bad solver core id in: " + path);
  }
  snap.core_id = static_cast<SolverCoreId>(core_id);
  snap.iteration = static_cast<int>(iteration);
  RHCHME_RETURN_IF_ERROR(ParseBool(buf, &pos, &snap.have_error));
  for (uint64_t& s : snap.rng_state.s) {
    if (!ParsePod(buf, &pos, &s)) {
      return Status::InvalidArgument("truncated RNG state in: " + path);
    }
  }
  RHCHME_RETURN_IF_ERROR(
      ParseBool(buf, &pos, &snap.rng_state.have_cached_normal));
  if (!ParsePod(buf, &pos, &snap.rng_state.cached_normal)) {
    return Status::InvalidArgument("truncated RNG state in: " + path);
  }
  RHCHME_RETURN_IF_ERROR(ParseDiagnostics(buf, &pos, &snap.diagnostics));
  {
    Result<la::Matrix> g =
        io::ParseMatrixPayload(buf.data(), buf.size() - sizeof(uint64_t),
                               &pos);
    if (!g.ok()) return g.status().WithContext(__FILE__, __LINE__);
    snap.g = std::move(g).value();
    Result<la::Matrix> s =
        io::ParseMatrixPayload(buf.data(), buf.size() - sizeof(uint64_t),
                               &pos);
    if (!s.ok()) return s.status().WithContext(__FILE__, __LINE__);
    snap.s = std::move(s).value();
  }
  RHCHME_RETURN_IF_ERROR(ParseDoubleVector(buf, &pos, &snap.er_scale));
  RHCHME_RETURN_IF_ERROR(ParseDoubleVector(buf, &pos, &snap.objective_trace));
  if (pos != buf.size() - sizeof(uint64_t)) {
    return Status::InvalidArgument("snapshot has trailing bytes: " + path);
  }
  return snap;
}

}  // namespace core
}  // namespace rhchme
