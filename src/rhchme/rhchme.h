// Umbrella header: the full public API of the RHCHME library.
//
// Reproduction of Hou & Nayak, "Robust clustering of multi-type relational
// data via a heterogeneous manifold ensemble", ICDE 2015.
//
// Quick start:
//
//   #include "rhchme/rhchme.h"
//   using namespace rhchme;
//
//   auto data = data::GenerateSyntheticCorpus(data::Multi5Preset());
//   core::Rhchme solver(core::RhchmeOptions{});
//   auto result = solver.Fit(data.value());
//   auto scores = eval::ScoreLabels(data.value().Type(0).labels,
//                                   result.value().hocc.labels[0]);
//
// Solver cores: the fit picks its memory profile per dataset —
// tf-idf-sparse relations run the sparse-R core (zero dense n x n
// allocations, O(nnz + n·c) per iteration), dense relations the implicit
// dense core (two n x n matrices); see core::SparseRMode and
// docs/ARCHITECTURE.md §Memory model.

#ifndef RHCHME_RHCHME_RHCHME_H_
#define RHCHME_RHCHME_RHCHME_H_

// Substrate: linear algebra, graphs, clustering.
#include "la/aligned.h"
#include "la/eigen_sym.h"
#include "la/gemm.h"
#include "la/matrix.h"
#include "la/simd.h"
#include "la/solve.h"
#include "la/sparse.h"

#include "graph/knn_graph.h"
#include "graph/laplacian.h"

#include "cluster/assignments.h"
#include "cluster/kmeans.h"

// Data: containers, generators, transforms.
#include "data/corruption.h"
#include "data/manifolds.h"
#include "data/multitype_data.h"
#include "data/synthetic.h"
#include "data/tfidf.h"

// The paper's contribution.
#include "core/ensemble.h"
#include "core/rhchme_solver.h"
#include "core/subspace.h"

// Baselines benchmarked in the paper.
#include "baselines/drcc.h"
#include "baselines/rmc.h"
#include "baselines/snmtf.h"
#include "baselines/src_clustering.h"

// Evaluation.
#include "eval/experiment.h"
#include "eval/knn_recall.h"
#include "eval/metrics.h"

// Persistence.
#include "io/dataset_io.h"
#include "io/matrix_io.h"

// Utilities.
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

#endif  // RHCHME_RHCHME_RHCHME_H_
