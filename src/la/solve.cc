#include "la/solve.h"

#include <cmath>
#include <numeric>
#include <vector>

namespace rhchme {
namespace la {

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError("Cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    const double inv = 1.0 / l(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s * inv;
    }
  }
  return l;
}

Result<Matrix> SolveSPD(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveSPD: rhs rows mismatch");
  }
  Result<Matrix> chol = Cholesky(a);
  if (!chol.ok()) return chol.status();
  const Matrix& l = chol.value();
  const std::size_t n = a.rows(), m = b.cols();

  // Forward substitution L·Y = B.
  Matrix y(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < m; ++c) {
      double s = b(i, c);
      for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y(k, c);
      y(i, c) = s / l(i, i);
    }
  }
  // Backward substitution Lᵀ·X = Y.
  Matrix x(n, m);
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t c = 0; c < m; ++c) {
      double s = y(ii, c);
      for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x(k, c);
      x(ii, c) = s / l(ii, ii);
    }
  }
  return x;
}

namespace {

/// LU with partial pivoting, in place. Returns the pivot permutation and
/// its sign, or an error on (numerical) singularity.
Status LuFactor(Matrix* a, std::vector<std::size_t>* perm, int* sign) {
  const std::size_t n = a->rows();
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), std::size_t{0});
  *sign = 1;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::fabs((*a)(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      double v = std::fabs((*a)(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < 1e-300 || !std::isfinite(best)) {
      return Status::NumericalError("LU: matrix is singular");
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap((*a)(k, j), (*a)(p, j));
      std::swap((*perm)[k], (*perm)[p]);
      *sign = -*sign;
    }
    const double inv = 1.0 / (*a)(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = (*a)(i, k) * inv;
      (*a)(i, k) = f;
      if (f == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) (*a)(i, j) -= f * (*a)(k, j);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Matrix> SolveLU(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLU: matrix must be square");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveLU: rhs rows mismatch");
  }
  Matrix lu = a;
  std::vector<std::size_t> perm;
  int sign = 0;
  RHCHME_RETURN_IF_ERROR(LuFactor(&lu, &perm, &sign));
  const std::size_t n = a.rows(), m = b.cols();

  // Apply permutation to B, then forward/backward substitute.
  Matrix x(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < m; ++c) x(i, c) = b(perm[i], c);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < m; ++c) {
      double s = x(i, c);
      for (std::size_t k = 0; k < i; ++k) s -= lu(i, k) * x(k, c);
      x(i, c) = s;
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    const double inv = 1.0 / lu(ii, ii);
    for (std::size_t c = 0; c < m; ++c) {
      double s = x(ii, c);
      for (std::size_t k = ii + 1; k < n; ++k) s -= lu(ii, k) * x(k, c);
      x(ii, c) = s * inv;
    }
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  return SolveLU(a, Matrix::Identity(a.rows()));
}

Result<Matrix> SolveRidged(const Matrix& a, const Matrix& b, double ridge) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveRidged: matrix must be square");
  }
  Matrix reg = a;
  for (std::size_t i = 0; i < reg.rows(); ++i) reg(i, i) += ridge;
  Result<Matrix> spd = SolveSPD(reg, b);
  if (spd.ok()) return spd;
  return SolveLU(reg, b);  // Fall back for indefinite inputs.
}

Result<double> Determinant(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Determinant: matrix must be square");
  }
  Matrix lu = a;
  std::vector<std::size_t> perm;
  int sign = 0;
  Status s = LuFactor(&lu, &perm, &sign);
  if (!s.ok()) return 0.0;  // Singular: determinant is (numerically) zero.
  double det = sign;
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

}  // namespace la
}  // namespace rhchme
