// Dense row-major matrix of doubles.
//
// This is the workhorse type of the library. It is a concrete value type
// (no expression templates): clusters of a few thousand objects fit easily
// in memory and the solvers are dominated by GEMM, which lives in gemm.h.

#ifndef RHCHME_LA_MATRIX_H_
#define RHCHME_LA_MATRIX_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "la/aligned.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace la {

/// Global accounting of large dense allocations, used by the solver
/// memory tests to prove the implicit-E_R core never materialises a
/// dense n x n error matrix or Laplacian part. Off by default; when
/// tracking, every Matrix construction or Resize that acquires at least
/// `min_elements` doubles bumps a counter (relaxed atomics, thread-safe).
/// Counted elements are logical (rows * cols) — row padding introduced by
/// the aligned storage layout is excluded, so thresholds keyed to problem
/// sizes (n²) keep their meaning.
/// Plain copies/moves of an existing matrix are not counted — the
/// contract covers explicit allocation sites, which is where solver
/// working sets are created.
namespace memstats {
/// Starts counting allocations of >= `min_elements` doubles; resets the
/// counter.
void StartTracking(std::size_t min_elements);
/// Stops counting. The counter keeps its value for reading.
void StopTracking();
/// Number of tracked allocations since the last StartTracking().
std::size_t LargeAllocations();
namespace internal {
/// Allocation hook called by Matrix; no-op unless tracking is on.
void NoteAlloc(std::size_t elements);
}  // namespace internal
}  // namespace memstats

/// Divisor floor for Matrix::ScaleRows: rows whose scale entry has
/// magnitude below this are left untouched instead of dividing by a
/// (near-)zero and flushing the row to ±Inf. Degree vectors and row
/// norms in this library are either exactly zero or of sane magnitude,
/// so the floor only needs to sit far below any legitimate divisor;
/// 1e-300 filters exact zeros and underflow debris while remaining ~8
/// decades above the smallest normal double (~2.2e-308).
constexpr double kScaleRowsEps = 1e-300;

/// Row-mass threshold for Matrix::NormalizeRowsL1: a row whose L1 mass is
/// at or below this is treated as all-zero and (when a column range is
/// given) replaced by the uniform distribution over that range — the
/// fallback used for objects with no membership signal (paper Eq. 22).
constexpr double kNormalizeRowsZeroTol = 0.0;

/// Dense row-major matrix with aligned, padded row storage: the buffer is
/// 64-byte aligned and the leading dimension (`stride()`) is `cols()`
/// rounded up to a whole cache line of doubles, so every row starts on a
/// 64-byte boundary. Indices are 0-based; element (i,j) is
/// `data()[i * stride() + j]` — use `row_ptr(i)` / `operator()` rather
/// than flat `data()` indexing. Padding columns (`cols() <= j < stride()`)
/// are always zero; no consumer of logical values may read them.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0), stride_(0) {}

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        stride_(PaddedStride(cols)),
        data_(rows * stride_, 0.0) {
    memstats::internal::NoteAlloc(rows * cols);
  }

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows),
        cols_(cols),
        stride_(PaddedStride(cols)),
        data_(rows * stride_, 0.0) {
    memstats::internal::NoteAlloc(rows * cols);
    Fill(fill);
  }

  /// Builds from nested initialiser-style rows; all rows must agree in size.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const std::vector<double>& diag);

  /// Matrix with i.i.d. Uniform[lo, hi) entries.
  static Matrix RandomUniform(std::size_t rows, std::size_t cols, Rng* rng,
                              double lo = 0.0, double hi = 1.0);

  /// Matrix with i.i.d. standard normal entries.
  static Matrix RandomNormal(std::size_t rows, std::size_t cols, Rng* rng,
                             double mean = 0.0, double stddev = 1.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Number of logical elements (rows * cols), excluding row padding.
  std::size_t size() const { return rows_ * cols_; }
  /// Leading dimension in doubles: cols() padded to a whole cache line.
  std::size_t stride() const { return stride_; }
  /// Total buffer length in doubles (rows * stride), including padding.
  std::size_t padded_size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * stride_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * stride_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(std::size_t i) { return data_.data() + i * stride_; }
  const double* row_ptr(std::size_t i) const {
    return data_.data() + i * stride_;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every entry to `v`.
  void Fill(double v);

  /// Resizes to rows x cols, zero-initialised (contents discarded).
  void Resize(std::size_t rows, std::size_t cols);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Copy of rows [r0, r0+nr) x cols [c0, c0+nc).
  Matrix Block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// Writes `src` into the block with top-left corner (r0, c0).
  void SetBlock(std::size_t r0, std::size_t c0, const Matrix& src);

  /// Returns row i as a vector.
  std::vector<double> Row(std::size_t i) const;

  /// Returns column j as a vector.
  std::vector<double> Col(std::size_t j) const;

  // ---- In-place elementwise operations ----------------------------------

  void Add(const Matrix& other);            ///< this += other
  void Sub(const Matrix& other);            ///< this -= other
  void Scale(double s);                     ///< this *= s
  void AddScaled(const Matrix& other, double s);  ///< this += s * other
  void Hadamard(const Matrix& other);       ///< this ∘= other
  void Apply(const std::function<double(double)>& f);  ///< entrywise map

  /// Clamps negatives to zero (projection onto the nonnegative orthant).
  void ClampNonNegative();

  // ---- Reductions --------------------------------------------------------

  double FrobeniusNorm() const;             ///< sqrt(sum of squares)
  double FrobeniusNormSquared() const;
  double L1Norm() const;                    ///< sum of |entries|
  /// L2,1 norm: sum over rows of the row's Euclidean norm (paper Eq. 14).
  double L21Norm() const;
  double Sum() const;
  double MaxAbs() const;
  double Min() const;
  double Max() const;
  std::vector<double> RowSums() const;
  std::vector<double> ColSums() const;
  /// Trace; requires a square matrix.
  double Trace() const;

  /// True if all entries are finite (no NaN/Inf).
  bool AllFinite() const;
  /// Replaces every NaN/Inf entry with `value`; returns how many were
  /// replaced. The graceful-degradation seam for corrupted inputs: a
  /// poisoned entry becomes missing data instead of propagating through
  /// every downstream kernel.
  std::size_t ReplaceNonFinite(double value);
  /// True if all entries are >= -tol.
  bool IsNonNegative(double tol = 0.0) const;
  /// Max |this - other| entry; requires same shape.
  double MaxAbsDiff(const Matrix& other) const;

  // ---- Row/column scaling -----------------------------------------------

  /// Divides each row by `d[i]` (no-op for rows with |d[i]| < kScaleRowsEps).
  void ScaleRows(const std::vector<double>& d);
  /// Multiplies each column by `d[j]`.
  void ScaleCols(const std::vector<double>& d);
  /// Normalises each row to unit L1 mass; rows with mass <=
  /// kNormalizeRowsZeroTol become uniform over [c0, c1) if a nonempty
  /// range is given, else stay zero.
  void NormalizeRowsL1(std::size_t c0 = 0, std::size_t c1 = 0);

  /// Short human-readable dump (for debugging / error messages).
  std::string DebugString(std::size_t max_rows = 8,
                          std::size_t max_cols = 8) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t stride_;
  AlignedVector<double> data_;
};

// ---- Free-function helpers (value-returning) -----------------------------

/// C = A + B. Shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
/// C = A - B. Shapes must match.
Matrix Sub(const Matrix& a, const Matrix& b);
/// C = s * A.
Matrix Scaled(const Matrix& a, double s);
/// C = A ∘ B (entrywise). Shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);
/// Splits M into the positive part (|M|+M)/2 — used by multiplicative
/// updates (paper Eq. 21).
Matrix PositivePart(const Matrix& m);
/// Splits M into the negative part (|M|-M)/2 (entrywise nonnegative).
Matrix NegativePart(const Matrix& m);
/// Max |a(i,j) - b(i,j)|.
double MaxAbsDiff(const Matrix& a, const Matrix& b);
/// [A | B] side by side. Row counts must match.
Matrix HConcat(const Matrix& a, const Matrix& b);
/// [A; B] stacked. Column counts must match.
Matrix VConcat(const Matrix& a, const Matrix& b);

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_MATRIX_H_
