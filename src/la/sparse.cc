#include "la/sparse.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace rhchme {
namespace la {

SparseMatrix SparseMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    RHCHME_CHECK(t.row < rows && t.col < cols, "triplet out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.cols_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  while (i < triplets.size()) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      m.cols_idx_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_ptr_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double prune_tol) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (std::fabs(dense(i, j)) > prune_tol) {
        trips.push_back({i, j, dense(i, j)});
      }
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

double SparseMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double SparseMatrix::At(std::size_t i, std::size_t j) const {
  RHCHME_CHECK(i < rows_ && j < cols_, "At: index out of range");
  const auto begin = cols_idx_.begin() + row_ptr_[i];
  const auto end = cols_idx_.begin() + row_ptr_[i + 1];
  auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_idx_.begin())];
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      d(i, cols_idx_[k]) = values_[k];
    }
  }
  return d;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      trips.push_back({cols_idx_[k], i, values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(trips));
}

std::vector<double> SparseMatrix::MultiplyVec(
    const std::vector<double>& x) const {
  RHCHME_CHECK(x.size() == cols_, "MultiplyVec: dims mismatch");
  std::vector<double> y(rows_, 0.0);
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  util::ParallelFor(0, rows_, util::GrainForWork(2 * nnz_per_row),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        double acc = 0.0;
                        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1];
                             ++k) {
                          acc += values_[k] * x[cols_idx_[k]];
                        }
                        y[i] = acc;
                      }
                    });
  return y;
}

void SparseMatrix::MultiplyDenseInto(const Matrix& b, Matrix* c) const {
  RHCHME_CHECK(b.rows() == cols_, "MultiplyDense: dims mismatch");
  c->Resize(rows_, b.cols());
  const std::size_t n = b.cols();
  // Output rows are independent; each chunk gathers its own rows' nonzeros.
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  util::ParallelFor(
      0, rows_, util::GrainForWork(2 * nnz_per_row * (n + 1)),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          double* ci = c->row_ptr(i);
          for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
            const double v = values_[k];
            const double* br = b.row_ptr(cols_idx_[k]);
            for (std::size_t j = 0; j < n; ++j) ci[j] += v * br[j];
          }
        }
      });
}

Matrix SparseMatrix::MultiplyDense(const Matrix& b) const {
  Matrix c;
  MultiplyDenseInto(b, &c);
  return c;
}

void SparseMatrix::MultiplyTransposedDenseInto(const Matrix& b,
                                               Matrix* c) const {
  RHCHME_CHECK(b.rows() == rows_, "MultiplyTransposedDense: dims mismatch");
  c->Resize(cols_, b.cols());
  const std::size_t n = b.cols();
  // The scatter lands on C rows indexed by the nonzeros' columns, so rows
  // of C cannot be split across chunks. Slice the dense operand's columns
  // instead: every chunk walks all nonzeros but owns a disjoint column
  // band [j0, j1) of C, and the per-element accumulation order (row-major
  // nonzero order) is identical for any slicing.
  const std::size_t scan_cost = 2 * nnz() + 1;
  util::ParallelFor(0, n, util::GrainForWork(scan_cost),
                    [&](std::size_t j0, std::size_t j1) {
                      for (std::size_t i = 0; i < rows_; ++i) {
                        const double* bi = b.row_ptr(i);
                        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1];
                             ++k) {
                          const double v = values_[k];
                          double* cr = c->row_ptr(cols_idx_[k]);
                          for (std::size_t j = j0; j < j1; ++j) {
                            cr[j] += v * bi[j];
                          }
                        }
                      }
                    });
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> s(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      acc += values_[k];
    }
    s[i] = acc;
  }
  return s;
}

double SparseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

double SparseMatrix::Sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

bool SparseMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (std::fabs(values_[k] - At(cols_idx_[k], i)) > tol) return false;
    }
  }
  return true;
}

}  // namespace la
}  // namespace rhchme
