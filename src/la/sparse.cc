#include "la/sparse.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace la {
namespace {

/// Upper bound on the per-chunk dense accumulators the scatter fallback
/// of the transposed products may allocate. The cap bounds the merge
/// memory to kMaxScatterChunks copies of the output and — because it
/// depends only on the matrix shape — keeps chunk boundaries (and with
/// them the floating-point merge order) independent of the pool size.
constexpr std::size_t kMaxScatterChunks = 16;

/// Grain for chunking `rows` source rows so that at most
/// kMaxScatterChunks chunks exist and each chunk carries at least
/// `work_per_row`-sized work per index.
std::size_t ScatterGrain(std::size_t rows, std::size_t work_per_row) {
  const std::size_t cap_grain = (rows + kMaxScatterChunks - 1) / kMaxScatterChunks;
  return std::max(util::GrainForWork(work_per_row), cap_grain);
}

}  // namespace

SparseMatrix::SparseMatrix(const SparseMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(other.row_ptr_),
      cols_idx_(other.cols_idx_),
      values_(other.values_),
      csc_(other.CscIfBuilt()) {}

SparseMatrix& SparseMatrix::operator=(const SparseMatrix& other) {
  if (this == &other) return *this;
  std::shared_ptr<const CscMirror> mirror = other.CscIfBuilt();
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  cols_idx_ = other.cols_idx_;
  values_ = other.values_;
  std::lock_guard<std::mutex> lock(csc_mu_);
  csc_ = std::move(mirror);
  return *this;
}

// Moves assume exclusive access to `other` (standard move contract), so
// its mirror slot is read without locking.
SparseMatrix::SparseMatrix(SparseMatrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(std::move(other.row_ptr_)),
      cols_idx_(std::move(other.cols_idx_)),
      values_(std::move(other.values_)),
      csc_(std::move(other.csc_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.row_ptr_.assign(1, 0);
}

SparseMatrix& SparseMatrix::operator=(SparseMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = std::move(other.row_ptr_);
  cols_idx_ = std::move(other.cols_idx_);
  values_ = std::move(other.values_);
  csc_ = std::move(other.csc_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.row_ptr_.assign(1, 0);
  return *this;
}

SparseMatrix SparseMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    RHCHME_CHECK(t.row < rows && t.col < cols, "triplet out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.cols_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  while (i < triplets.size()) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      m.cols_idx_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_ptr_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double prune_tol) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (std::fabs(dense(i, j)) > prune_tol) {
        trips.push_back({i, j, dense(i, j)});
      }
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

double SparseMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::shared_ptr<const CscMirror> SparseMatrix::ComputeCsc() const {
  auto csc = std::make_shared<CscMirror>();
  csc->col_ptr.assign(cols_ + 1, 0);
  csc->row_idx.resize(nnz());
  csc->values.resize(nnz());
  for (std::size_t k = 0; k < nnz(); ++k) ++csc->col_ptr[cols_idx_[k] + 1];
  for (std::size_t c = 0; c < cols_; ++c) {
    csc->col_ptr[c + 1] += csc->col_ptr[c];
  }
  // Row-major CSR traversal writes each column's slots in ascending row
  // order — the property the deterministic gather loops rely on.
  std::vector<std::size_t> next(csc->col_ptr.begin(), csc->col_ptr.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t pos = next[cols_idx_[k]]++;
      csc->row_idx[pos] = i;
      csc->values[pos] = values_[k];
    }
  }
  return csc;
}

const CscMirror& SparseMatrix::BuildCscMirror() const {
  std::lock_guard<std::mutex> lock(csc_mu_);
  if (!csc_) csc_ = ComputeCsc();
  return *csc_;
}

bool SparseMatrix::HasCscMirror() const {
  std::lock_guard<std::mutex> lock(csc_mu_);
  return csc_ != nullptr;
}

std::shared_ptr<const CscMirror> SparseMatrix::CscIfBuilt() const {
  std::lock_guard<std::mutex> lock(csc_mu_);
  return csc_;
}

void SparseMatrix::InvalidateCscMirror() {
  std::lock_guard<std::mutex> lock(csc_mu_);
  csc_.reset();
}

void SparseMatrix::Scale(double s) {
  for (double& v : values_) v *= s;
  InvalidateCscMirror();
}

std::size_t SparseMatrix::ReplaceNonFinite(double value) {
  std::size_t replaced = 0;
  for (double& v : values_) {
    if (!std::isfinite(v)) {
      v = value;
      ++replaced;
    }
  }
  if (replaced > 0) InvalidateCscMirror();
  return replaced;
}

std::size_t SparseMatrix::PruneSmall(double tol) {
  std::vector<std::size_t> new_row_ptr(rows_ + 1, 0);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (std::fabs(values_[k]) > tol) {
        cols_idx_[kept] = cols_idx_[k];
        values_[kept] = values_[k];
        ++kept;
      }
    }
    new_row_ptr[i + 1] = kept;
  }
  const std::size_t dropped = values_.size() - kept;
  cols_idx_.resize(kept);
  values_.resize(kept);
  row_ptr_ = std::move(new_row_ptr);
  InvalidateCscMirror();
  return dropped;
}

double SparseMatrix::At(std::size_t i, std::size_t j) const {
  RHCHME_CHECK(i < rows_ && j < cols_, "At: index out of range");
  const auto begin = cols_idx_.begin() + row_ptr_[i];
  const auto end = cols_idx_.begin() + row_ptr_[i + 1];
  auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_idx_.begin())];
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      d(i, cols_idx_[k]) = values_[k];
    }
  }
  return d;
}

SparseMatrix SparseMatrix::Transposed() const {
  BuildCscMirror();  // Cached for later transposed products too.
  std::shared_ptr<const CscMirror> csc = CscIfBuilt();
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  // The CSC arrays of A are exactly the CSR arrays of Aᵀ (and vice
  // versa), so the transpose ships with its own mirror for free.
  t.row_ptr_ = csc->col_ptr;
  t.cols_idx_ = csc->row_idx;
  t.values_ = csc->values;
  auto mirror = std::make_shared<CscMirror>();
  mirror->col_ptr = row_ptr_;
  mirror->row_idx = cols_idx_;
  mirror->values = values_;
  t.csc_ = std::move(mirror);
  return t;
}

std::vector<double> SparseMatrix::MultiplyVec(
    const std::vector<double>& x) const {
  RHCHME_CHECK(x.size() == cols_, "MultiplyVec: dims mismatch");
  std::vector<double> y(rows_, 0.0);
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  util::ParallelFor(0, rows_, util::GrainForWork(2 * nnz_per_row),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        double acc = 0.0;
                        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1];
                             ++k) {
                          acc += values_[k] * x[cols_idx_[k]];
                        }
                        y[i] = acc;
                      }
                    });
  return y;
}

std::vector<double> SparseMatrix::MultiplyTVec(
    const std::vector<double>& x) const {
  RHCHME_CHECK(x.size() == rows_, "MultiplyTVec: dims mismatch");
  std::vector<double> y(cols_, 0.0);
  std::shared_ptr<const CscMirror> csc = CscIfBuilt();
  if (csc) {
    // Gather: y[c] sums column c's entries in ascending row order.
    const std::size_t nnz_per_col = cols_ > 0 ? nnz() / cols_ + 1 : 1;
    util::ParallelFor(0, cols_, util::GrainForWork(2 * nnz_per_col),
                      [&](std::size_t c0, std::size_t c1) {
                        for (std::size_t c = c0; c < c1; ++c) {
                          double acc = 0.0;
                          for (std::size_t k = csc->col_ptr[c];
                               k < csc->col_ptr[c + 1]; ++k) {
                            acc += csc->values[k] * x[csc->row_idx[k]];
                          }
                          y[c] = acc;
                        }
                      });
    return y;
  }
  // Scatter fallback: source-row chunks accumulate into per-chunk
  // vectors, merged in chunk order. Chunking depends only on the shape,
  // so the summation tree — and the result — is thread-count invariant.
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  const std::size_t grain = ScatterGrain(rows_, 2 * nnz_per_row);
  const std::size_t nchunks = rows_ > 0 ? (rows_ + grain - 1) / grain : 0;
  if (nchunks <= 1) {
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        y[cols_idx_[k]] += values_[k] * x[i];
      }
    }
    return y;
  }
  std::vector<std::vector<double>> partial(nchunks);
  util::ParallelFor(0, rows_, grain, [&](std::size_t b, std::size_t e) {
    // Chunk starts are grain-aligned even when the inline path fuses the
    // whole range, so the slot index is recoverable from the start.
    for (std::size_t cb = b; cb < e; cb += grain) {
      std::vector<double>& slot = partial[cb / grain];
      slot.assign(cols_, 0.0);
      const std::size_t ce = std::min(e, cb + grain);
      for (std::size_t i = cb; i < ce; ++i) {
        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          slot[cols_idx_[k]] += values_[k] * x[i];
        }
      }
    }
  });
  for (const std::vector<double>& slot : partial) {
    for (std::size_t c = 0; c < cols_; ++c) y[c] += slot[c];
  }
  return y;
}

void SparseMatrix::MultiplyDenseInto(const Matrix& b, Matrix* c) const {
  RHCHME_CHECK(b.rows() == cols_, "MultiplyDense: dims mismatch");
  c->Resize(rows_, b.cols());
  const std::size_t n = b.cols();
  // Output rows are independent; each chunk gathers its own rows' nonzeros.
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  util::ParallelFor(
      0, rows_, util::GrainForWork(2 * nnz_per_row * (n + 1)),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          double* ci = c->row_ptr(i);
          for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
            simd::Axpy(values_[k], b.row_ptr(cols_idx_[k]), ci, n);
          }
        }
      });
}

Matrix SparseMatrix::MultiplyDense(const Matrix& b) const {
  Matrix c;
  MultiplyDenseInto(b, &c);
  return c;
}

// Shared body of the two transposed products: Aᵀ·B, with source row i
// scaled by row_scale[i] when row_scale != nullptr (Aᵀ·diag(d)·B).
void SparseMatrix::TransposedDenseProductInto(const double* row_scale,
                                              const Matrix& b,
                                              Matrix* c) const {
  RHCHME_CHECK(b.rows() == rows_, "MultiplyTransposedDense: dims mismatch");
  c->Resize(cols_, b.cols());
  const std::size_t n = b.cols();
  std::shared_ptr<const CscMirror> csc = CscIfBuilt();
  if (csc) {
    // Gather path: output row r of C is column r of A dotted against the
    // corresponding rows of B — rows of C are independent and thread
    // cleanly; ascending row order within each column fixes the
    // accumulation order.
    const std::size_t nnz_per_col = cols_ > 0 ? nnz() / cols_ + 1 : 1;
    util::ParallelFor(
        0, cols_, util::GrainForWork(2 * nnz_per_col * (n + 1)),
        [&](std::size_t c0, std::size_t c1) {
          for (std::size_t r = c0; r < c1; ++r) {
            double* cr = c->row_ptr(r);
            if (row_scale == nullptr) {
              // Hot unscaled path: no per-nonzero multiply.
              for (std::size_t k = csc->col_ptr[r]; k < csc->col_ptr[r + 1];
                   ++k) {
                simd::Axpy(csc->values[k], b.row_ptr(csc->row_idx[k]), cr, n);
              }
            } else {
              for (std::size_t k = csc->col_ptr[r]; k < csc->col_ptr[r + 1];
                   ++k) {
                const std::size_t src = csc->row_idx[k];
                simd::Axpy(csc->values[k] * row_scale[src], b.row_ptr(src),
                           cr, n);
              }
            }
          }
        });
    return;
  }
  // Scatter fallback for one-shot products (no mirror built): source-row
  // chunks scatter into per-chunk dense accumulators, merged in chunk
  // order afterwards. The chunk layout derives from the shape only (see
  // ScatterGrain), so results are bit-identical across thread counts.
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  const std::size_t grain = ScatterGrain(rows_, 2 * nnz_per_row * (n + 1));
  const std::size_t nchunks = rows_ > 0 ? (rows_ + grain - 1) / grain : 0;
  if (nchunks <= 1) {
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* bi = b.row_ptr(i);
      if (row_scale == nullptr) {
        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          simd::Axpy(values_[k], bi, c->row_ptr(cols_idx_[k]), n);
        }
      } else {
        const double scale = row_scale[i];
        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          simd::Axpy(values_[k] * scale, bi, c->row_ptr(cols_idx_[k]), n);
        }
      }
    }
    return;
  }
  std::vector<Matrix> partial(nchunks);
  util::ParallelFor(0, rows_, grain, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t cb = b0; cb < e0; cb += grain) {
      Matrix& slot = partial[cb / grain];
      slot.Resize(cols_, n);  // Zero-initialised accumulator.
      const std::size_t ce = std::min(e0, cb + grain);
      for (std::size_t i = cb; i < ce; ++i) {
        const double* bi = b.row_ptr(i);
        if (row_scale == nullptr) {
          for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
            simd::Axpy(values_[k], bi, slot.row_ptr(cols_idx_[k]), n);
          }
        } else {
          const double scale = row_scale[i];
          for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
            simd::Axpy(values_[k] * scale, bi, slot.row_ptr(cols_idx_[k]), n);
          }
        }
      }
    }
  });
  for (const Matrix& slot : partial) c->Add(slot);
}

void SparseMatrix::MultiplyTransposedDenseInto(const Matrix& b,
                                               Matrix* c) const {
  TransposedDenseProductInto(nullptr, b, c);
}

void SparseMatrix::MultiplyTransposedScaledDenseInto(
    const std::vector<double>& d, const Matrix& b, Matrix* c) const {
  RHCHME_CHECK(d.size() == rows_,
               "MultiplyTransposedScaledDense: scale size mismatch");
  TransposedDenseProductInto(d.data(), b, c);
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> s(rows_, 0.0);
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  util::ParallelFor(0, rows_, util::GrainForWork(nnz_per_row),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        double acc = 0.0;
                        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1];
                             ++k) {
                          acc += values_[k];
                        }
                        s[i] = acc;
                      }
                    });
  return s;
}

std::vector<double> SparseMatrix::RowNormsSquared() const {
  std::vector<double> s(rows_, 0.0);
  const std::size_t nnz_per_row = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  util::ParallelFor(0, rows_, util::GrainForWork(2 * nnz_per_row),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        double acc = 0.0;
                        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1];
                             ++k) {
                          acc += values_[k] * values_[k];
                        }
                        s[i] = acc;
                      }
                    });
  return s;
}

std::vector<double> SparseMatrix::ColSums() const {
  std::vector<double> s(cols_, 0.0);
  std::shared_ptr<const CscMirror> csc = CscIfBuilt();
  if (csc) {
    const std::size_t nnz_per_col = cols_ > 0 ? nnz() / cols_ + 1 : 1;
    util::ParallelFor(0, cols_, util::GrainForWork(nnz_per_col),
                      [&](std::size_t c0, std::size_t c1) {
                        for (std::size_t c = c0; c < c1; ++c) {
                          double acc = 0.0;
                          for (std::size_t k = csc->col_ptr[c];
                               k < csc->col_ptr[c + 1]; ++k) {
                            acc += csc->values[k];
                          }
                          s[c] = acc;
                        }
                      });
    return s;
  }
  // Serial scatter adds each column's entries in ascending row order —
  // the same summation order as the gather above, so both paths agree
  // bit for bit.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s[cols_idx_[k]] += values_[k];
    }
  }
  return s;
}

double SparseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

double SparseMatrix::Sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

bool SparseMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (std::fabs(values_[k] - At(cols_idx_[k], i)) > tol) return false;
    }
  }
  return true;
}

namespace {

/// Shared filter behind the ± parts: keeps entries selected by `keep`,
/// storing `map(v)`. The CSR scan preserves the (row, col) order, so the
/// triplets arrive pre-sorted and FromTriplets' sort is near-free.
template <typename Keep, typename Map>
SparseMatrix FilterEntries(const SparseMatrix& m, Keep keep, Map map) {
  const auto& offsets = m.row_offsets();
  const auto& cols = m.col_indices();
  const auto& vals = m.values();
  std::vector<Triplet> trips;
  trips.reserve(m.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      if (keep(vals[k])) trips.push_back({i, cols[k], map(vals[k])});
    }
  }
  return SparseMatrix::FromTriplets(m.rows(), m.cols(), std::move(trips));
}

}  // namespace

SparseMatrix PositivePart(const SparseMatrix& m) {
  return FilterEntries(
      m, [](double v) { return v > 0.0; }, [](double v) { return v; });
}

SparseMatrix NegativePart(const SparseMatrix& m) {
  return FilterEntries(
      m, [](double v) { return v < 0.0; }, [](double v) { return -v; });
}

double Sandwich(const Matrix& g, const SparseMatrix& l) {
  RHCHME_CHECK(l.rows() == l.cols() && l.rows() == g.rows(),
               "Sandwich: shape mismatch");
  const std::size_t n = g.rows(), c = g.cols();
  if (n == 0 || c == 0 || l.nnz() == 0) return 0.0;
  const auto& offsets = l.row_offsets();
  const auto& cols = l.col_indices();
  const auto& vals = l.values();
  // tr(Gᵀ L G) = Σ_i Σ_{k ∈ row i} l_ik · (g_i · g_k). Rows are
  // independent; ParallelSum combines per-chunk partials in chunk order,
  // and chunk boundaries depend only on (n, grain), so the reduction tree
  // — and the result — is thread-count invariant.
  const std::size_t nnz_per_row = l.nnz() / n + 1;
  const std::size_t grain = util::GrainForWork(2 * nnz_per_row * c + 1);
  return util::ParallelSum(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    double acc = 0.0;
    for (std::size_t i = r0; i < r1; ++i) {
      const double* gi = g.row_ptr(i);
      for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        acc += vals[k] * simd::Dot(gi, g.row_ptr(cols[k]), c);
      }
    }
    return acc;
  });
}

}  // namespace la
}  // namespace rhchme
