// Symmetric eigensolver (cyclic Jacobi).
//
// Replaces the Spectra dependency: the library needs eigenpairs of graph
// Laplacians for spectral diagnostics, the spectral-embedding example and
// tests (Laplacian PSD-ness, Fiedler vectors). Jacobi is O(n³) with a small
// constant and is numerically robust, which is sufficient for the n ≤ a few
// thousand Laplacians in this project.

#ifndef RHCHME_LA_EIGEN_SYM_H_
#define RHCHME_LA_EIGEN_SYM_H_

#include "la/matrix.h"

namespace rhchme {
namespace la {

/// Eigen-decomposition A = V·diag(w)·Vᵀ of a symmetric matrix.
struct EigenSymResult {
  /// Eigenvalues in ascending order.
  std::vector<double> eigenvalues;
  /// Column j of `eigenvectors` is the unit eigenvector for eigenvalues[j].
  Matrix eigenvectors;
};

/// Options for the Jacobi sweep loop.
struct EigenSymOptions {
  int max_sweeps = 64;      ///< Hard cap; convergence is usually < 15 sweeps.
  double tolerance = 1e-12; ///< Stop when off-diagonal Frobenius mass is
                            ///< below tolerance * ||A||_F.
};

/// Full eigen-decomposition of symmetric `a`. Symmetry is enforced by
/// averaging (A+Aᵀ)/2; returns InvalidArgument for non-square input and
/// NotConverged if the sweep cap is hit (pairs computed so far returned
/// in the error-free case only).
Result<EigenSymResult> EigenSym(const Matrix& a,
                                const EigenSymOptions& opts = {});

/// The k smallest eigenpairs (e.g. the spectral embedding of a Laplacian).
/// Computes the full decomposition and slices it.
Result<EigenSymResult> EigenSymSmallest(const Matrix& a, std::size_t k,
                                        const EigenSymOptions& opts = {});

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_EIGEN_SYM_H_
