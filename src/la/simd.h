// Portable SIMD microkernel primitives for the dense/sparse hot loops.
//
// Three compile-time paths, selected by the RHCHME_ENABLE_SIMD CMake
// option (which defines the RHCHME_ENABLE_SIMD macro and, on x86-64, adds
// -mavx2 -mfma):
//
//   - AVX2 + FMA  (x86-64, 4 doubles/vector)
//   - NEON        (aarch64, 2 doubles/vector)
//   - scalar      (always available; the only path when the option is OFF)
//
// The scalar reference kernels under simd::scalar are compiled in every
// build — they are the ground truth tests/simd_test.cc pins the vector
// paths against, and the baseline the scalar-vs-SIMD benchmarks measure.
//
// Numerics contract (see docs/ARCHITECTURE.md "Kernel layer"):
//   - Element-parallel kernels (Axpy, Add, Sub, Scale, Hadamard) perform
//     exactly one multiply and/or add per element, in the same per-element
//     operation order as the scalar reference — results are bit-identical
//     to scalar within any build.
//   - Reductions (Dot, SquaredDistance) reassociate the sum into a fixed
//     number of lane accumulators combined in a fixed order. The order
//     depends only on compile-time constants and the call's length, never
//     on thread count, so results are bit-stable across pool sizes for a
//     given build, but differ from the scalar chain by bounded rounding.
//
// All kernels accept unaligned pointers (la::Matrix rows are 64-byte
// aligned, but callers may pass interior offsets); on modern cores an
// unaligned load of an aligned address costs nothing.

#ifndef RHCHME_LA_SIMD_H_
#define RHCHME_LA_SIMD_H_

#include <cstddef>

#if defined(RHCHME_ENABLE_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define RHCHME_SIMD_AVX2 1
#define RHCHME_SIMD_VECTOR 1
#include <immintrin.h>
#elif defined(RHCHME_ENABLE_SIMD) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define RHCHME_SIMD_NEON 1
#define RHCHME_SIMD_VECTOR 1
#include <arm_neon.h>
#endif

namespace rhchme {
namespace la {
namespace simd {

// ---- Scalar reference kernels (always compiled) --------------------------

namespace scalar {

/// y[0..n) += a * x[0..n).
inline void Axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// Σ a[i]·b[i], single left-to-right accumulation chain.
inline double Dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Σ (a[i]-b[i])², single left-to-right accumulation chain.
inline double SquaredDistance(const double* a, const double* b,
                              std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline void Add(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

inline void Sub(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

inline void Scale(double* y, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

inline void Hadamard(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

}  // namespace scalar

// ---- Vector primitives ----------------------------------------------------

#if RHCHME_SIMD_AVX2

constexpr std::size_t kLanes = 4;
using Vec = __m256d;

inline Vec VZero() { return _mm256_setzero_pd(); }
inline Vec VSet1(double v) { return _mm256_set1_pd(v); }
inline Vec VLoad(const double* p) { return _mm256_loadu_pd(p); }
inline void VStore(double* p, Vec v) { _mm256_storeu_pd(p, v); }
inline Vec VAdd(Vec a, Vec b) { return _mm256_add_pd(a, b); }
inline Vec VSub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
inline Vec VMul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
/// a*b + c, fused (one rounding).
inline Vec VFma(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }

/// Lane sum in fixed ascending-lane order: ((l0+l1)+l2)+l3.
inline double VSumLanes(Vec v) {
  alignas(32) double t[kLanes];
  _mm256_store_pd(t, v);
  return ((t[0] + t[1]) + t[2]) + t[3];
}

#elif RHCHME_SIMD_NEON

constexpr std::size_t kLanes = 2;
using Vec = float64x2_t;

inline Vec VZero() { return vdupq_n_f64(0.0); }
inline Vec VSet1(double v) { return vdupq_n_f64(v); }
inline Vec VLoad(const double* p) { return vld1q_f64(p); }
inline void VStore(double* p, Vec v) { vst1q_f64(p, v); }
inline Vec VAdd(Vec a, Vec b) { return vaddq_f64(a, b); }
inline Vec VSub(Vec a, Vec b) { return vsubq_f64(a, b); }
inline Vec VMul(Vec a, Vec b) { return vmulq_f64(a, b); }
inline Vec VFma(Vec a, Vec b, Vec c) { return vfmaq_f64(c, a, b); }

inline double VSumLanes(Vec v) {
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}

#endif  // vector ISA

// ---- Dispatching kernels --------------------------------------------------

#if RHCHME_SIMD_VECTOR

/// y[0..n) += a * x[0..n). Unfused multiply+add per element — bit-identical
/// to scalar::Axpy in any build.
inline void Axpy(double a, const double* x, double* y, std::size_t n) {
  const Vec av = VSet1(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    VStore(y + i, VAdd(VLoad(y + i), VMul(av, VLoad(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

/// Σ a[i]·b[i] with two FMA lane accumulators combined in fixed order:
/// (acc0 + acc1) lane-summed ascending, then the scalar tail appended.
inline double Dot(const double* a, const double* b, std::size_t n) {
  Vec acc0 = VZero(), acc1 = VZero();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = VFma(VLoad(a + i), VLoad(b + i), acc0);
    acc1 = VFma(VLoad(a + i + kLanes), VLoad(b + i + kLanes), acc1);
  }
  double s = VSumLanes(VAdd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Σ (a[i]-b[i])², same accumulator structure as Dot.
inline double SquaredDistance(const double* a, const double* b,
                              std::size_t n) {
  Vec acc0 = VZero(), acc1 = VZero();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    const Vec d0 = VSub(VLoad(a + i), VLoad(b + i));
    const Vec d1 = VSub(VLoad(a + i + kLanes), VLoad(b + i + kLanes));
    acc0 = VFma(d0, d0, acc0);
    acc1 = VFma(d1, d1, acc1);
  }
  double s = VSumLanes(VAdd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline void Add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    VStore(y + i, VAdd(VLoad(y + i), VLoad(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

inline void Sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    VStore(y + i, VSub(VLoad(y + i), VLoad(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

inline void Scale(double* y, double s, std::size_t n) {
  const Vec sv = VSet1(s);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    VStore(y + i, VMul(VLoad(y + i), sv));
  }
  for (; i < n; ++i) y[i] *= s;
}

inline void Hadamard(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    VStore(y + i, VMul(VLoad(y + i), VLoad(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

#else  // scalar fallback build

constexpr std::size_t kLanes = 1;

inline void Axpy(double a, const double* x, double* y, std::size_t n) {
  scalar::Axpy(a, x, y, n);
}
inline double Dot(const double* a, const double* b, std::size_t n) {
  return scalar::Dot(a, b, n);
}
inline double SquaredDistance(const double* a, const double* b,
                              std::size_t n) {
  return scalar::SquaredDistance(a, b, n);
}
inline void Add(double* y, const double* x, std::size_t n) {
  scalar::Add(y, x, n);
}
inline void Sub(double* y, const double* x, std::size_t n) {
  scalar::Sub(y, x, n);
}
inline void Scale(double* y, double s, std::size_t n) {
  scalar::Scale(y, s, n);
}
inline void Hadamard(double* y, const double* x, std::size_t n) {
  scalar::Hadamard(y, x, n);
}

#endif  // RHCHME_SIMD_VECTOR

/// Human-readable name of the compiled kernel path.
inline const char* IsaName() {
#if RHCHME_SIMD_AVX2
  return "avx2+fma";
#elif RHCHME_SIMD_NEON
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_SIMD_H_
