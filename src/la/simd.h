// Runtime-dispatched SIMD kernel layer for the dense/sparse hot loops.
//
// One binary carries every kernel table it could compile — scalar always,
// AVX2+FMA and AVX-512(F+DQ) on x86-64, NEON on aarch64 — with each ISA's
// implementations confined to their own translation unit
// (la/kernels_*.cc), the only files built with their `-m` flags. CPUID
// feature detection picks the best supported table once at startup
// (AVX-512 → AVX2 → NEON → scalar); every call after that goes through
// the resolved simd::KernelTable of function pointers. There is no
// global SIMD compile flag any more.
//
// Forcing and reproduction:
//   - RHCHME_FORCE_ISA={scalar,avx2,avx512,neon} pins the table before
//     first use. A value that is unknown, not compiled into this binary,
//     or not supported by the host CPU is a clean startup error.
//   - ForceIsa() is the same override for CLI flags (--force_isa); it
//     wins over the environment variable.
//   - The resolved table name is what IsaName() returns and what the
//     bench/quality JSON context records, so artefacts are compared per
//     dispatched ISA.
//
// Numerics contract (see docs/ARCHITECTURE.md "Kernel layer"): identical
// for every table — element-parallel kernels are bit-identical to the
// scalar reference; reductions use fixed lane-accumulator order per
// table, so results are bit-stable across thread counts for a given
// dispatched ISA. The scalar reference kernels under simd::scalar remain
// the ground truth tests/simd_test.cc pins every table against.
//
// All kernels accept unaligned pointers (la::Matrix rows are 64-byte
// aligned, but callers may pass interior offsets).

#ifndef RHCHME_LA_SIMD_H_
#define RHCHME_LA_SIMD_H_

#include <cstddef>

#include "la/kernels.h"
#include "util/status.h"

namespace rhchme {
namespace la {
namespace simd {

// ---- Scalar reference kernels (always compiled, ground truth) ------------

namespace scalar {

/// y[0..n) += a * x[0..n).
inline void Axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// Σ a[i]·b[i], single left-to-right accumulation chain.
inline double Dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Σ (a[i]-b[i])², single left-to-right accumulation chain.
inline double SquaredDistance(const double* a, const double* b,
                              std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline void Add(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

inline void Sub(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

inline void Scale(double* y, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

inline void Hadamard(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

}  // namespace scalar

// ---- Dispatch -------------------------------------------------------------

/// CPU feature bits that drive table selection. Separated from detection
/// so the selection policy is unit-testable with mocked bits.
struct CpuFeatures {
  bool avx512f = false;
  bool avx512dq = false;
  bool avx2 = false;
  bool fma = false;
  bool neon = false;
};

/// Queries the running CPU (CPUID on x86-64; NEON is baseline on
/// aarch64).
CpuFeatures DetectCpuFeatures();

/// Pure selection policy: the highest-preference table that is both
/// compiled into this binary and supported by `features`, in the order
/// AVX-512(F+DQ) → AVX2+FMA → NEON → scalar. Never returns null (the
/// scalar table always exists).
const KernelTable* ResolveTable(const CpuFeatures& features);

/// The dispatched kernel table. Resolved exactly once, on first call:
/// honours a prior ForceIsa() call, else RHCHME_FORCE_ISA, else
/// auto-detection. Thread-safe; hot loops should hoist the reference
/// (`const auto& t = Table();`) rather than re-dispatch per element.
///
/// An invalid RHCHME_FORCE_ISA value (unknown name, table not compiled
/// in, or CPU lacks the ISA) terminates the process with a diagnostic on
/// stderr — a pinned-reproduction run must never silently fall back to a
/// different ISA.
const KernelTable& Table();

/// Pins the dispatched table by name ("scalar", "avx2", "avx512",
/// "neon") — the CLI-flag twin of RHCHME_FORCE_ISA, taking precedence
/// over it. Returns InvalidArgument for an unknown name,
/// FailedPrecondition when the table is not compiled into this binary,
/// not supported by this CPU, or dispatch already resolved to a
/// different table (call before first kernel use).
Status ForceIsa(const char* name);

/// The table for an explicitly named ISA when it is compiled into this
/// binary AND supported by this CPU; nullptr otherwise. Does not touch
/// the dispatched table — this is how tests iterate every runnable path
/// in one binary.
const KernelTable* TableForName(const char* name);

/// Name of the dispatched table: "scalar", "avx2", "avx512" or "neon".
/// Recorded in bench/quality JSON context (`rhchme_simd`).
const char* IsaName();

/// Name of the table auto-detection would pick, ignoring any force
/// override. Recorded alongside IsaName() so a forced artefact is
/// self-describing (`rhchme_simd_detected`).
const char* DetectedIsaName();

// ---- Dispatched kernel entry points ---------------------------------------
//
// Thin forwarders for call sites outside the hot loops. Each performs one
// dispatch (an atomic load) per call; la/gemm.cc and the kNN inner loops
// hoist Table() once instead.

inline void Axpy(double a, const double* x, double* y, std::size_t n) {
  Table().axpy(a, x, y, n);
}
inline double Dot(const double* a, const double* b, std::size_t n) {
  return Table().dot(a, b, n);
}
inline double SquaredDistance(const double* a, const double* b,
                              std::size_t n) {
  return Table().squared_distance(a, b, n);
}
inline void Add(double* y, const double* x, std::size_t n) {
  Table().add(y, x, n);
}
inline void Sub(double* y, const double* x, std::size_t n) {
  Table().sub(y, x, n);
}
inline void Scale(double* y, double s, std::size_t n) {
  Table().scale(y, s, n);
}
inline void Hadamard(double* y, const double* x, std::size_t n) {
  Table().hadamard(y, x, n);
}

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_SIMD_H_
