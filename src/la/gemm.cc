#include "la/gemm.h"

#include <algorithm>
#include <vector>

#include "util/parallel.h"

namespace rhchme {
namespace la {
namespace {

// Tile sizes for the blocked kernels. A reduction tile of B
// (kBlockK x kBlockJ = 128 KB) stays resident in L2 while a panel of
// kRowPanel output rows streams over it; the C row segment (kBlockJ
// doubles) stays in L1 across the reduction tile. The accumulation order
// for any output element is fixed by these constants alone, never by the
// thread count, which keeps results bit-identical for any pool size.
constexpr std::size_t kRowPanel = 32;
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

/// C rows [r0, r1) of C = A * B, tiled over the reduction and column dims.
void GemmPanelNN(const Matrix& a, const Matrix& b, Matrix* c, std::size_t r0,
                 std::size_t r1) {
  const std::size_t k = a.cols(), n = b.cols();
  for (std::size_t kb = 0; kb < k; kb += kBlockK) {
    const std::size_t kend = std::min(k, kb + kBlockK);
    for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
      const std::size_t jlen = std::min(n, jb + kBlockJ) - jb;
      for (std::size_t i = r0; i < r1; ++i) {
        const double* ai = a.row_ptr(i);
        double* ci = c->row_ptr(i) + jb;
        for (std::size_t l = kb; l < kend; ++l) {
          const double ail = ai[l];
          if (ail == 0.0) continue;  // Membership blocks are mostly zero.
          const double* bl = b.row_ptr(l) + jb;
          for (std::size_t j = 0; j < jlen; ++j) ci[j] += ail * bl[j];
        }
      }
    }
  }
}

}  // namespace

void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.rows(), "Multiply: inner dims mismatch");
  const std::size_t m = a.rows();
  c->Resize(m, b.cols());
  util::ParallelFor(0, m, kRowPanel, [&](std::size_t r0, std::size_t r1) {
    GemmPanelNN(a, b, c, r0, r1);
  });
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyInto(a, b, &c);
  return c;
}

void MultiplyTNInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  // Materialising Aᵀ costs O(mk) against the O(mkn) product and turns the
  // column-strided reads into the contiguous row-panel kernel.
  const Matrix at = a.Transposed();
  const std::size_t m = at.rows();
  c->Resize(m, b.cols());
  util::ParallelFor(0, m, kRowPanel, [&](std::size_t r0, std::size_t r1) {
    GemmPanelNN(at, b, c, r0, r1);
  });
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyTNInto(a, b, &c);
  return c;
}

void MultiplyTNStreamInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  const std::size_t kk = a.rows(), m = a.cols(), n = b.cols();
  c->Resize(m, n);
  if (kk == 0 || m == 0 || n == 0) return;
  // Mirror of the sparse scatter fallback: bounded per-chunk accumulators
  // keep the merge memory at <= kMaxChunks output copies, and the
  // shape-only chunk layout keeps the per-element accumulation order
  // (ascending source row) independent of the thread count.
  constexpr std::size_t kMaxChunks = 16;
  const std::size_t cap_grain = (kk + kMaxChunks - 1) / kMaxChunks;
  const std::size_t grain =
      std::max(util::GrainForWork(2 * m * (n ? n : 1)), cap_grain);
  const std::size_t nchunks = (kk + grain - 1) / grain;
  if (nchunks <= 1) {
    for (std::size_t k = 0; k < kk; ++k) {
      const double* ak = a.row_ptr(k);
      const double* bk = b.row_ptr(k);
      for (std::size_t i = 0; i < m; ++i) {
        const double aki = ak[i];
        if (aki == 0.0) continue;
        double* ci = c->row_ptr(i);
        for (std::size_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
      }
    }
    return;
  }
  std::vector<Matrix> partial(nchunks);
  util::ParallelFor(0, kk, grain, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t cb = b0; cb < e0; cb += grain) {
      Matrix& slot = partial[cb / grain];
      slot.Resize(m, n);  // Zero-initialised accumulator.
      const std::size_t ce = std::min(e0, cb + grain);
      for (std::size_t k = cb; k < ce; ++k) {
        const double* ak = a.row_ptr(k);
        const double* bk = b.row_ptr(k);
        for (std::size_t i = 0; i < m; ++i) {
          const double aki = ak[i];
          if (aki == 0.0) continue;
          double* ci = slot.row_ptr(i);
          for (std::size_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
        }
      }
    }
  });
  for (const Matrix& slot : partial) c->Add(slot);
}

void MultiplyNTInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.cols(), "MultiplyNT: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c->Resize(m, n);
  // C(i,j) is a dot product of two contiguous rows; rows of C are
  // independent, so panels go straight to the pool.
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(2 * k * (n ? n : 1)));
  util::ParallelFor(0, m, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* ai = a.row_ptr(i);
      double* ci = c->row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double* bj = b.row_ptr(j);
        double acc = 0.0;
        for (std::size_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
        ci[j] = acc;
      }
    }
  });
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyNTInto(a, b, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const std::size_t k = a.rows(), n = a.cols();
  Matrix g(n, n);
  if (n == 0) return g;
  // Row i of AᵀA needs column i of A; the transpose makes every dot
  // contiguous. Upper triangle first (disjoint rows per chunk), mirror
  // after the barrier.
  const Matrix at = a.Transposed();
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(k * (n / 2 + 1)));
  util::ParallelFor(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* ati = at.row_ptr(i);
      double* gi = g.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) {
        const double* atj = at.row_ptr(j);
        double acc = 0.0;
        for (std::size_t l = 0; l < k; ++l) acc += ati[l] * atj[l];
        gi[j] = acc;
      }
    }
  });
  util::ParallelFor(0, n, std::max(std::size_t{1}, util::GrainForWork(n)),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        for (std::size_t j = 0; j < i; ++j) {
                          g(i, j) = g(j, i);
                        }
                      }
                    });
  return g;
}

std::vector<double> MultiplyVec(const Matrix& a, const std::vector<double>& x) {
  RHCHME_CHECK(a.cols() == x.size(), "MultiplyVec: dims mismatch");
  std::vector<double> y(a.rows(), 0.0);
  util::ParallelFor(
      0, a.rows(), util::GrainForWork(2 * a.cols() + 1),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const double* ai = a.row_ptr(i);
          double acc = 0.0;
          for (std::size_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[j];
          y[i] = acc;
        }
      });
  return y;
}

std::vector<double> MultiplyTVec(const Matrix& a,
                                 const std::vector<double>& x) {
  RHCHME_CHECK(a.rows() == x.size(), "MultiplyTVec: dims mismatch");
  // Serial: the scatter-accumulate into y is cheap (O(mk) on vectors) and
  // would need per-thread copies of y to stay deterministic.
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * ai[j];
  }
  return y;
}

double FrobeniusInner(const Matrix& a, const Matrix& b) {
  RHCHME_CHECK(a.SameShape(b), "FrobeniusInner: shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  return util::ParallelSum(0, a.size(), util::kMinWorkPerChunk,
                           [&](std::size_t i0, std::size_t i1) {
                             double acc = 0.0;
                             for (std::size_t i = i0; i < i1; ++i) {
                               acc += pa[i] * pb[i];
                             }
                             return acc;
                           });
}

double Sandwich(const Matrix& g, const Matrix& l) {
  RHCHME_CHECK(l.rows() == l.cols() && l.rows() == g.rows(),
               "Sandwich: shape mismatch");
  const std::size_t n = g.rows(), c = g.cols();
  if (n == 0 || c == 0) return 0.0;
  // tr(Gᵀ L G) = Σ_i (L G)(i,:) · G(i,:). Each chunk streams its rows of L
  // against G into a c-sized scratch row, so the n x c intermediate is
  // never materialised; ParallelSum adds the per-chunk traces in fixed
  // chunk order.
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(2 * n * c));
  return util::ParallelSum(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    std::vector<double> u(c);
    double acc = 0.0;
    for (std::size_t i = r0; i < r1; ++i) {
      std::fill(u.begin(), u.end(), 0.0);
      const double* li = l.row_ptr(i);
      for (std::size_t t = 0; t < n; ++t) {
        const double lit = li[t];
        if (lit == 0.0) continue;  // Ensemble Laplacians are pNN-sparse.
        const double* gt = g.row_ptr(t);
        for (std::size_t j = 0; j < c; ++j) u[j] += lit * gt[j];
      }
      const double* gi = g.row_ptr(i);
      double trace_i = 0.0;
      for (std::size_t j = 0; j < c; ++j) trace_i += u[j] * gi[j];
      acc += trace_i;
    }
    return acc;
  });
}

}  // namespace la
}  // namespace rhchme
