#include "la/gemm.h"

#include <algorithm>
#include <vector>

#include "la/aligned.h"
#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace la {
namespace {

// Tile sizes for the blocked kernels. A reduction tile of B
// (kBlockK x kBlockJ = 128 KB) stays resident in L2 while a panel of
// kRowPanel output rows streams over it; the C row segment (kBlockJ
// doubles) stays in L1 across the reduction tile. The accumulation order
// for any output element is fixed by these constants alone, never by the
// thread count, which keeps results bit-identical for any pool size.
constexpr std::size_t kRowPanel = 32;
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

/// Zero fraction at or above which a (row panel x kBlockK) tile of A takes
/// the zero-skipping scalar path. Membership blocks (one nonzero per row
/// per type block) sit far above this; dense R products sit far below, so
/// the probe rarely flips on borderline tiles.
constexpr double kSparsePanelZeroFraction = 0.5;

/// Cheap density probe: true when at least kSparsePanelZeroFraction of the
/// A tile rows [p0, p1) x cols [kb, kend) is exactly zero. One pass over
/// at most kRowPanel x kBlockK doubles — noise against the 2·rows·klen·n
/// flops the tile is about to spend.
bool PanelMostlyZero(const Matrix& a, std::size_t p0, std::size_t p1,
                     std::size_t kb, std::size_t kend) {
  std::size_t zeros = 0;
  for (std::size_t i = p0; i < p1; ++i) {
    const double* ai = a.row_ptr(i);
    for (std::size_t l = kb; l < kend; ++l) zeros += (ai[l] == 0.0);
  }
  const std::size_t total = (p1 - p0) * (kend - kb);
  return static_cast<double>(zeros) >=
         kSparsePanelZeroFraction * static_cast<double>(total);
}

/// Zero-skipping panel kernel: right for mostly-zero A tiles (membership
/// blocks), where skipped rows save the whole B-row stream. The branch
/// defeats vectorization of the l loop, which is why dense tiles bypass
/// this kernel entirely.
void GemmPanelSparse(const Matrix& a, const Matrix& b, Matrix* c,
                     std::size_t p0, std::size_t p1, std::size_t kb,
                     std::size_t kend) {
  const std::size_t n = b.cols();
  for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
    const std::size_t jlen = std::min(n, jb + kBlockJ) - jb;
    for (std::size_t i = p0; i < p1; ++i) {
      const double* ai = a.row_ptr(i);
      double* ci = c->row_ptr(i) + jb;
      for (std::size_t l = kb; l < kend; ++l) {
        const double ail = ai[l];
        if (ail == 0.0) continue;
        simd::Axpy(ail, b.row_ptr(l) + jb, ci, jlen);
      }
    }
  }
}

#if RHCHME_SIMD_VECTOR

// Packed register-blocked microkernel. B tiles are packed once per
// (kBlockK x kBlockJ) block into column panels of kNr doubles — aligned,
// contiguous, reused by every row microtile of the panel — and a
// kMr x kNr register accumulator tile runs an FMA-fused reduction over
// the block. Terms still enter "l ascending within kb, kb ascending",
// but the rounding chain differs from the zero-skip path (fused FMA into
// a zero-initialised register partial vs unfused in-place updates of C),
// so the two paths are NOT bit-identical to each other. That is fine for
// the determinism contract: the probe reads only A's content on the
// global panel grid, never the thread count, so the path chosen for a
// given tile — and the result — is the same for every pool size.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 2 * simd::kLanes;

/// Packs B rows [kb, kend) x cols [jb, jb+jlen) into `pack`, laid out as
/// ceil(jlen/kNr) panels of (klen x kNr); short trailing panels are
/// zero-filled so the microkernel always loads full vectors.
void PackB(const Matrix& b, std::size_t kb, std::size_t kend, std::size_t jb,
           std::size_t jlen, double* pack) {
  const std::size_t klen = kend - kb;
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = jb + p * kNr;
    const std::size_t w = std::min(kNr, jb + jlen - j0);
    double* dst = pack + p * klen * kNr;
    for (std::size_t l = 0; l < klen; ++l) {
      const double* bl = b.row_ptr(kb + l) + j0;
      for (std::size_t j = 0; j < w; ++j) dst[j] = bl[j];
      for (std::size_t j = w; j < kNr; ++j) dst[j] = 0.0;
      dst += kNr;
    }
  }
}

/// C row segment += accumulator pair, touching only the w real columns of
/// a possibly short trailing panel.
inline void AddTileRow(double* c, simd::Vec v0, simd::Vec v1, std::size_t w) {
  if (w == kNr) {
    simd::VStore(c, simd::VAdd(simd::VLoad(c), v0));
    simd::VStore(c + simd::kLanes,
                 simd::VAdd(simd::VLoad(c + simd::kLanes), v1));
    return;
  }
  alignas(kAlignment) double t[kNr];
  simd::VStore(t, v0);
  simd::VStore(t + simd::kLanes, v1);
  for (std::size_t j = 0; j < w; ++j) c[j] += t[j];
}

/// 4 x kNr register tile: 8 vector accumulators, two B loads and four
/// broadcast-FMA pairs per reduction step.
void MicroTile4(const double* a0, const double* a1, const double* a2,
                const double* a3, const double* pb, std::size_t klen,
                double* c0, double* c1, double* c2, double* c3,
                std::size_t w) {
  simd::Vec x00 = simd::VZero(), x01 = simd::VZero();
  simd::Vec x10 = simd::VZero(), x11 = simd::VZero();
  simd::Vec x20 = simd::VZero(), x21 = simd::VZero();
  simd::Vec x30 = simd::VZero(), x31 = simd::VZero();
  for (std::size_t l = 0; l < klen; ++l) {
    const simd::Vec b0 = simd::VLoad(pb);
    const simd::Vec b1 = simd::VLoad(pb + simd::kLanes);
    pb += kNr;
    simd::Vec av = simd::VSet1(a0[l]);
    x00 = simd::VFma(av, b0, x00);
    x01 = simd::VFma(av, b1, x01);
    av = simd::VSet1(a1[l]);
    x10 = simd::VFma(av, b0, x10);
    x11 = simd::VFma(av, b1, x11);
    av = simd::VSet1(a2[l]);
    x20 = simd::VFma(av, b0, x20);
    x21 = simd::VFma(av, b1, x21);
    av = simd::VSet1(a3[l]);
    x30 = simd::VFma(av, b0, x30);
    x31 = simd::VFma(av, b1, x31);
  }
  AddTileRow(c0, x00, x01, w);
  AddTileRow(c1, x10, x11, w);
  AddTileRow(c2, x20, x21, w);
  AddTileRow(c3, x30, x31, w);
}

/// 1 x kNr tail tile for the last rows() % kMr rows of a panel.
void MicroTile1(const double* a0, const double* pb, std::size_t klen,
                double* c0, std::size_t w) {
  simd::Vec x0 = simd::VZero(), x1 = simd::VZero();
  for (std::size_t l = 0; l < klen; ++l) {
    const simd::Vec av = simd::VSet1(a0[l]);
    x0 = simd::VFma(av, simd::VLoad(pb), x0);
    x1 = simd::VFma(av, simd::VLoad(pb + simd::kLanes), x1);
    pb += kNr;
  }
  AddTileRow(c0, x0, x1, w);
}

/// Dense-tile panel kernel: packs each B block once, then streams the
/// panel's row microtiles over the packed panels.
void GemmPanelDense(const Matrix& a, const Matrix& b, Matrix* c,
                    std::size_t p0, std::size_t p1, std::size_t kb,
                    std::size_t kend, AlignedVector<double>* pack) {
  const std::size_t n = b.cols();
  const std::size_t klen = kend - kb;
  for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
    const std::size_t jlen = std::min(n, jb + kBlockJ) - jb;
    const std::size_t npanels = (jlen + kNr - 1) / kNr;
    pack->resize(npanels * klen * kNr);
    PackB(b, kb, kend, jb, jlen, pack->data());
    for (std::size_t p = 0; p < npanels; ++p) {
      const std::size_t j0 = jb + p * kNr;
      const std::size_t w = std::min(kNr, jb + jlen - j0);
      const double* pbp = pack->data() + p * klen * kNr;
      std::size_t i = p0;
      for (; i + kMr <= p1; i += kMr) {
        MicroTile4(a.row_ptr(i) + kb, a.row_ptr(i + 1) + kb,
                   a.row_ptr(i + 2) + kb, a.row_ptr(i + 3) + kb, pbp, klen,
                   c->row_ptr(i) + j0, c->row_ptr(i + 1) + j0,
                   c->row_ptr(i + 2) + j0, c->row_ptr(i + 3) + j0, w);
      }
      for (; i < p1; ++i) {
        MicroTile1(a.row_ptr(i) + kb, pbp, klen, c->row_ptr(i) + j0, w);
      }
    }
  }
}

#else  // !RHCHME_SIMD_VECTOR

/// Scalar dense-tile kernel: the same loops as the sparse kernel minus the
/// per-element zero test, which lets the compiler vectorize the j loop
/// with whatever the baseline ISA offers.
void GemmPanelDense(const Matrix& a, const Matrix& b, Matrix* c,
                    std::size_t p0, std::size_t p1, std::size_t kb,
                    std::size_t kend) {
  const std::size_t n = b.cols();
  for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
    const std::size_t jlen = std::min(n, jb + kBlockJ) - jb;
    for (std::size_t i = p0; i < p1; ++i) {
      const double* ai = a.row_ptr(i);
      double* ci = c->row_ptr(i) + jb;
      for (std::size_t l = kb; l < kend; ++l) {
        simd::Axpy(ai[l], b.row_ptr(l) + jb, ci, jlen);
      }
    }
  }
}

#endif  // RHCHME_SIMD_VECTOR

/// C rows [r0, r1) of C = A * B, tiled over the reduction and column dims.
/// Walks kRowPanel sub-panels on the *global* row grid: ParallelFor chunk
/// starts are always grain-aligned (even when ranges fuse on the inline
/// path), so the sub-panel extents — and with them the per-tile
/// sparse/dense probe decisions — are identical for every pool size.
void GemmPanelNN(const Matrix& a, const Matrix& b, Matrix* c, std::size_t r0,
                 std::size_t r1) {
  const std::size_t k = a.cols();
#if RHCHME_SIMD_VECTOR
  AlignedVector<double> pack;
#endif
  for (std::size_t p0 = r0; p0 < r1; p0 += kRowPanel) {
    const std::size_t p1 = std::min(r1, p0 + kRowPanel);
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t kend = std::min(k, kb + kBlockK);
      if (PanelMostlyZero(a, p0, p1, kb, kend)) {
        GemmPanelSparse(a, b, c, p0, p1, kb, kend);
      } else {
#if RHCHME_SIMD_VECTOR
        GemmPanelDense(a, b, c, p0, p1, kb, kend, &pack);
#else
        GemmPanelDense(a, b, c, p0, p1, kb, kend);
#endif
      }
    }
  }
}

}  // namespace

void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.rows(), "Multiply: inner dims mismatch");
  const std::size_t m = a.rows();
  c->Resize(m, b.cols());
  util::ParallelFor(0, m, kRowPanel, [&](std::size_t r0, std::size_t r1) {
    GemmPanelNN(a, b, c, r0, r1);
  });
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyInto(a, b, &c);
  return c;
}

void MultiplyTNInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  // Materialising Aᵀ costs O(mk) against the O(mkn) product and turns the
  // column-strided reads into the contiguous row-panel kernel.
  const Matrix at = a.Transposed();
  const std::size_t m = at.rows();
  c->Resize(m, b.cols());
  util::ParallelFor(0, m, kRowPanel, [&](std::size_t r0, std::size_t r1) {
    GemmPanelNN(at, b, c, r0, r1);
  });
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyTNInto(a, b, &c);
  return c;
}

void MultiplyTNStreamInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  const std::size_t kk = a.rows(), m = a.cols(), n = b.cols();
  c->Resize(m, n);
  if (kk == 0 || m == 0 || n == 0) return;
  // Mirror of the sparse scatter fallback: bounded per-chunk accumulators
  // keep the merge memory at <= kMaxChunks output copies, and the
  // shape-only chunk layout keeps the per-element accumulation order
  // (ascending source row) independent of the thread count.
  constexpr std::size_t kMaxChunks = 16;
  const std::size_t cap_grain = (kk + kMaxChunks - 1) / kMaxChunks;
  const std::size_t grain =
      std::max(util::GrainForWork(2 * m * (n ? n : 1)), cap_grain);
  const std::size_t nchunks = (kk + grain - 1) / grain;
  if (nchunks <= 1) {
    for (std::size_t k = 0; k < kk; ++k) {
      const double* ak = a.row_ptr(k);
      const double* bk = b.row_ptr(k);
      for (std::size_t i = 0; i < m; ++i) {
        const double aki = ak[i];
        if (aki == 0.0) continue;
        simd::Axpy(aki, bk, c->row_ptr(i), n);
      }
    }
    return;
  }
  std::vector<Matrix> partial(nchunks);
  util::ParallelFor(0, kk, grain, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t cb = b0; cb < e0; cb += grain) {
      Matrix& slot = partial[cb / grain];
      slot.Resize(m, n);  // Zero-initialised accumulator.
      const std::size_t ce = std::min(e0, cb + grain);
      for (std::size_t k = cb; k < ce; ++k) {
        const double* ak = a.row_ptr(k);
        const double* bk = b.row_ptr(k);
        for (std::size_t i = 0; i < m; ++i) {
          const double aki = ak[i];
          if (aki == 0.0) continue;
          simd::Axpy(aki, bk, slot.row_ptr(i), n);
        }
      }
    }
  });
  for (const Matrix& slot : partial) c->Add(slot);
}

void MultiplyNTInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.cols(), "MultiplyNT: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c->Resize(m, n);
  // C(i,j) is a dot product of two contiguous rows; rows of C are
  // independent, so panels go straight to the pool.
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(2 * k * (n ? n : 1)));
  util::ParallelFor(0, m, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* ai = a.row_ptr(i);
      double* ci = c->row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] = simd::Dot(ai, b.row_ptr(j), k);
      }
    }
  });
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyNTInto(a, b, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const std::size_t k = a.rows(), n = a.cols();
  Matrix g(n, n);
  if (n == 0) return g;
  // Row i of AᵀA needs column i of A; the transpose makes every dot
  // contiguous. Upper triangle first (disjoint rows per chunk), mirror
  // after the barrier.
  const Matrix at = a.Transposed();
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(k * (n / 2 + 1)));
  util::ParallelFor(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* ati = at.row_ptr(i);
      double* gi = g.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) {
        gi[j] = simd::Dot(ati, at.row_ptr(j), k);
      }
    }
  });
  util::ParallelFor(0, n, std::max(std::size_t{1}, util::GrainForWork(n)),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        for (std::size_t j = 0; j < i; ++j) {
                          g(i, j) = g(j, i);
                        }
                      }
                    });
  return g;
}

std::vector<double> MultiplyVec(const Matrix& a, const std::vector<double>& x) {
  RHCHME_CHECK(a.cols() == x.size(), "MultiplyVec: dims mismatch");
  std::vector<double> y(a.rows(), 0.0);
  util::ParallelFor(0, a.rows(), util::GrainForWork(2 * a.cols() + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        y[i] = simd::Dot(a.row_ptr(i), x.data(), a.cols());
                      }
                    });
  return y;
}

std::vector<double> MultiplyTVec(const Matrix& a,
                                 const std::vector<double>& x) {
  RHCHME_CHECK(a.rows() == x.size(), "MultiplyTVec: dims mismatch");
  const std::size_t kk = a.rows(), m = a.cols();
  std::vector<double> y(m, 0.0);
  if (kk == 0 || m == 0) return y;
  // Same bounded per-chunk-accumulator pattern as MultiplyTNStreamInto:
  // source-row chunks accumulate into their own m-vector, merged in chunk
  // order. Chunk layout depends only on the shape (capped at kMaxChunks),
  // and every y[j] sums rows in ascending order on both paths, so results
  // are bit-identical for any pool size.
  constexpr std::size_t kMaxChunks = 16;
  const std::size_t cap_grain = (kk + kMaxChunks - 1) / kMaxChunks;
  const std::size_t grain = std::max(util::GrainForWork(2 * m + 1), cap_grain);
  const std::size_t nchunks = (kk + grain - 1) / grain;
  if (nchunks <= 1) {
    for (std::size_t i = 0; i < kk; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      simd::Axpy(xi, a.row_ptr(i), y.data(), m);
    }
    return y;
  }
  std::vector<std::vector<double>> partial(nchunks);
  util::ParallelFor(0, kk, grain, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t cb = b0; cb < e0; cb += grain) {
      std::vector<double>& slot = partial[cb / grain];
      slot.assign(m, 0.0);
      const std::size_t ce = std::min(e0, cb + grain);
      for (std::size_t i = cb; i < ce; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        simd::Axpy(xi, a.row_ptr(i), slot.data(), m);
      }
    }
  });
  for (const std::vector<double>& slot : partial) {
    simd::Add(y.data(), slot.data(), m);
  }
  return y;
}

double FrobeniusInner(const Matrix& a, const Matrix& b) {
  RHCHME_CHECK(a.SameShape(b), "FrobeniusInner: shape mismatch");
  const std::size_t cols = a.cols();
  if (a.rows() == 0 || cols == 0) return 0.0;
  // Row-wise so the padded storage's stride never enters the sum; rows
  // within a chunk accumulate in ascending order and ParallelSum merges
  // chunk partials in chunk order.
  return util::ParallelSum(0, a.rows(), util::GrainForWork(2 * cols),
                           [&](std::size_t r0, std::size_t r1) {
                             double acc = 0.0;
                             for (std::size_t i = r0; i < r1; ++i) {
                               acc += simd::Dot(a.row_ptr(i), b.row_ptr(i),
                                                cols);
                             }
                             return acc;
                           });
}

double Sandwich(const Matrix& g, const Matrix& l) {
  RHCHME_CHECK(l.rows() == l.cols() && l.rows() == g.rows(),
               "Sandwich: shape mismatch");
  const std::size_t n = g.rows(), c = g.cols();
  if (n == 0 || c == 0) return 0.0;
  // tr(Gᵀ L G) = Σ_i (L G)(i,:) · G(i,:). Each chunk streams its rows of L
  // against G into a c-sized scratch row, so the n x c intermediate is
  // never materialised; ParallelSum adds the per-chunk traces in fixed
  // chunk order.
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(2 * n * c));
  return util::ParallelSum(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    std::vector<double> u(c);
    double acc = 0.0;
    for (std::size_t i = r0; i < r1; ++i) {
      std::fill(u.begin(), u.end(), 0.0);
      const double* li = l.row_ptr(i);
      for (std::size_t t = 0; t < n; ++t) {
        const double lit = li[t];
        if (lit == 0.0) continue;  // Ensemble Laplacians are pNN-sparse.
        simd::Axpy(lit, g.row_ptr(t), u.data(), c);
      }
      acc += simd::Dot(u.data(), g.row_ptr(i), c);
    }
    return acc;
  });
}

}  // namespace la
}  // namespace rhchme
