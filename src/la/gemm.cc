#include "la/gemm.h"

#include <algorithm>
#include <vector>

#include "la/aligned.h"
#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace la {
namespace {

// Tile sizes for the blocked kernels. A reduction tile of B
// (kBlockK x kBlockJ = 128 KB) stays resident in L2 while a panel of
// kRowPanel output rows streams over it; the C row segment (kBlockJ
// doubles) stays in L1 across the reduction tile. The accumulation order
// for any output element is fixed by these constants and the dispatched
// kernel table alone, never by the thread count, which keeps results
// bit-identical for any pool size within a dispatched ISA.
constexpr std::size_t kRowPanel = 32;
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

/// Zero fraction at or above which a (row panel x kBlockK) tile of A takes
/// the zero-skipping scalar path. Membership blocks (one nonzero per row
/// per type block) sit far above this; dense R products sit far below, so
/// the probe rarely flips on borderline tiles.
constexpr double kSparsePanelZeroFraction = 0.5;

/// Cheap density probe: true when at least kSparsePanelZeroFraction of the
/// A tile rows [p0, p1) x cols [kb, kend) is exactly zero. One pass over
/// at most kRowPanel x kBlockK doubles — noise against the 2·rows·klen·n
/// flops the tile is about to spend.
bool PanelMostlyZero(const Matrix& a, std::size_t p0, std::size_t p1,
                     std::size_t kb, std::size_t kend) {
  std::size_t zeros = 0;
  for (std::size_t i = p0; i < p1; ++i) {
    const double* ai = a.row_ptr(i);
    for (std::size_t l = kb; l < kend; ++l) zeros += (ai[l] == 0.0);
  }
  const std::size_t total = (p1 - p0) * (kend - kb);
  return static_cast<double>(zeros) >=
         kSparsePanelZeroFraction * static_cast<double>(total);
}

/// Same probe over one kBlockK-column segment of a single row — the
/// la::Sandwich analogue of the A-tile probe. Sparse ensemble Laplacian
/// rows (pNN graphs) sit far above the threshold; dense rows far below.
bool SegmentMostlyZero(const double* row, std::size_t t0, std::size_t t1) {
  std::size_t zeros = 0;
  for (std::size_t t = t0; t < t1; ++t) zeros += (row[t] == 0.0);
  return static_cast<double>(zeros) >=
         kSparsePanelZeroFraction * static_cast<double>(t1 - t0);
}

/// Zero-skipping panel kernel: right for mostly-zero A tiles (membership
/// blocks), where skipped rows save the whole B-row stream. The branch
/// defeats vectorization of the l loop, which is why dense tiles bypass
/// this kernel entirely.
void GemmPanelSparse(const simd::KernelTable& kt, const Matrix& a,
                     const Matrix& b, Matrix* c, std::size_t p0,
                     std::size_t p1, std::size_t kb, std::size_t kend,
                     std::size_t jb, std::size_t jlen) {
  for (std::size_t i = p0; i < p1; ++i) {
    const double* ai = a.row_ptr(i);
    double* ci = c->row_ptr(i) + jb;
    for (std::size_t l = kb; l < kend; ++l) {
      const double ail = ai[l];
      if (ail == 0.0) continue;
      kt.axpy(ail, b.row_ptr(l) + jb, ci, jlen);
    }
  }
}

/// C rows [r0, r1) of C = A * B, tiled over the reduction and column dims
/// on the dispatched table's packed protocol. Loop order per chunk is
/// kb → jb → row panel: every dense (panel × kb) A tile is packed once
/// into mr-row micro-panels (BLIS A-panel layout — the packed stream is
/// contiguous in the reduction direction, which removes the strided-row
/// L1 conflict misses that capped the unpacked microkernel at large n),
/// and each nr-column packed B block is then reused across *all* row
/// panels of the chunk — B packing traffic scales with blocks, not with
/// blocks × panels, which is what capped the packed kernel at n=1024.
///
/// Terms enter every C element in "l ascending within kb, kb ascending"
/// order on both paths, but the rounding chain differs between them (FMA
/// into a zero-initialised register partial vs unfused in-place updates
/// of C), so the two paths are NOT bit-identical to each other. That is
/// fine for the determinism contract: probe decisions sit on kRowPanel
/// sub-panels of the *global* row grid (ParallelFor chunk starts are
/// always grain-aligned, even when ranges fuse on the inline path) and
/// read only A's content, never the thread count, so the path chosen for
/// a given tile — and the result — is the same for every pool size.
void GemmPanelNN(const Matrix& a, const Matrix& b, Matrix* c, std::size_t r0,
                 std::size_t r1) {
  const simd::KernelTable& kt = simd::Table();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const std::size_t npanels = (r1 - r0 + kRowPanel - 1) / kRowPanel;
  AlignedVector<double> packa, packb;
  std::vector<std::size_t> aoff(npanels);
  std::vector<char> sparse(npanels);
  for (std::size_t kb = 0; kb < k; kb += kBlockK) {
    const std::size_t kend = std::min(k, kb + kBlockK);
    const std::size_t klen = kend - kb;
    std::size_t atotal = 0;
    for (std::size_t p = 0; p < npanels; ++p) {
      const std::size_t p0 = r0 + p * kRowPanel;
      const std::size_t p1 = std::min(r1, p0 + kRowPanel);
      sparse[p] = PanelMostlyZero(a, p0, p1, kb, kend) ? 1 : 0;
      if (!sparse[p]) {
        const std::size_t apanels = (p1 - p0 + kt.mr - 1) / kt.mr;
        aoff[p] = atotal;
        atotal += apanels * klen * kt.mr;
      }
    }
    packa.resize(atotal);
    for (std::size_t p = 0; p < npanels; ++p) {
      if (sparse[p]) continue;
      const std::size_t p0 = r0 + p * kRowPanel;
      const std::size_t p1 = std::min(r1, p0 + kRowPanel);
      kt.pack_a(a.row_ptr(p0) + kb, a.stride(), p1 - p0, klen,
                packa.data() + aoff[p]);
    }
    for (std::size_t jb = 0; jb < n; jb += kBlockJ) {
      const std::size_t jlen = std::min(n, jb + kBlockJ) - jb;
      bool b_packed = false;
      for (std::size_t p = 0; p < npanels; ++p) {
        const std::size_t p0 = r0 + p * kRowPanel;
        const std::size_t p1 = std::min(r1, p0 + kRowPanel);
        if (sparse[p]) {
          GemmPanelSparse(kt, a, b, c, p0, p1, kb, kend, jb, jlen);
          continue;
        }
        if (!b_packed) {
          const std::size_t bpanels = (jlen + kt.nr - 1) / kt.nr;
          packb.resize(bpanels * klen * kt.nr);
          kt.pack_b(b.row_ptr(kb) + jb, b.stride(), klen, jlen,
                    packb.data());
          b_packed = true;
        }
        kt.gemm_packed(packa.data() + aoff[p], packb.data(), p1 - p0, klen,
                       jlen, c->row_ptr(p0) + jb, c->stride());
      }
    }
  }
}

}  // namespace

void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.rows(), "Multiply: inner dims mismatch");
  const std::size_t m = a.rows();
  c->Resize(m, b.cols());
  util::ParallelFor(0, m, kRowPanel, [&](std::size_t r0, std::size_t r1) {
    GemmPanelNN(a, b, c, r0, r1);
  });
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyInto(a, b, &c);
  return c;
}

void MultiplyTNInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  // Materialising Aᵀ costs O(mk) against the O(mkn) product and turns the
  // column-strided reads into the contiguous row-panel kernel.
  const Matrix at = a.Transposed();
  const std::size_t m = at.rows();
  c->Resize(m, b.cols());
  util::ParallelFor(0, m, kRowPanel, [&](std::size_t r0, std::size_t r1) {
    GemmPanelNN(at, b, c, r0, r1);
  });
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyTNInto(a, b, &c);
  return c;
}

void MultiplyTNStreamInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  const simd::KernelTable& kt = simd::Table();
  const std::size_t kk = a.rows(), m = a.cols(), n = b.cols();
  c->Resize(m, n);
  if (kk == 0 || m == 0 || n == 0) return;
  // Mirror of the sparse scatter fallback: bounded per-chunk accumulators
  // keep the merge memory at <= kMaxChunks output copies, and the
  // shape-only chunk layout keeps the per-element accumulation order
  // (ascending source row) independent of the thread count.
  constexpr std::size_t kMaxChunks = 16;
  const std::size_t cap_grain = (kk + kMaxChunks - 1) / kMaxChunks;
  const std::size_t grain =
      std::max(util::GrainForWork(2 * m * (n ? n : 1)), cap_grain);
  const std::size_t nchunks = (kk + grain - 1) / grain;
  if (nchunks <= 1) {
    for (std::size_t k = 0; k < kk; ++k) {
      const double* ak = a.row_ptr(k);
      const double* bk = b.row_ptr(k);
      for (std::size_t i = 0; i < m; ++i) {
        const double aki = ak[i];
        if (aki == 0.0) continue;
        kt.axpy(aki, bk, c->row_ptr(i), n);
      }
    }
    return;
  }
  std::vector<Matrix> partial(nchunks);
  util::ParallelFor(0, kk, grain, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t cb = b0; cb < e0; cb += grain) {
      Matrix& slot = partial[cb / grain];
      slot.Resize(m, n);  // Zero-initialised accumulator.
      const std::size_t ce = std::min(e0, cb + grain);
      for (std::size_t k = cb; k < ce; ++k) {
        const double* ak = a.row_ptr(k);
        const double* bk = b.row_ptr(k);
        for (std::size_t i = 0; i < m; ++i) {
          const double aki = ak[i];
          if (aki == 0.0) continue;
          kt.axpy(aki, bk, slot.row_ptr(i), n);
        }
      }
    }
  });
  for (const Matrix& slot : partial) c->Add(slot);
}

void MultiplyNTInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.cols(), "MultiplyNT: inner dims mismatch");
  const simd::KernelTable& kt = simd::Table();
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c->Resize(m, n);
  // C(i,j) is a dot product of two contiguous rows; rows of C are
  // independent, so panels go straight to the pool.
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(2 * k * (n ? n : 1)));
  util::ParallelFor(0, m, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* ai = a.row_ptr(i);
      double* ci = c->row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] = kt.dot(ai, b.row_ptr(j), k);
      }
    }
  });
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyNTInto(a, b, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const simd::KernelTable& kt = simd::Table();
  const std::size_t k = a.rows(), n = a.cols();
  Matrix g(n, n);
  if (n == 0) return g;
  // Row i of AᵀA needs column i of A; the transpose makes every dot
  // contiguous. Upper triangle first (disjoint rows per chunk), mirror
  // after the barrier.
  const Matrix at = a.Transposed();
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(k * (n / 2 + 1)));
  util::ParallelFor(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* ati = at.row_ptr(i);
      double* gi = g.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) {
        gi[j] = kt.dot(ati, at.row_ptr(j), k);
      }
    }
  });
  util::ParallelFor(0, n, std::max(std::size_t{1}, util::GrainForWork(n)),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        for (std::size_t j = 0; j < i; ++j) {
                          g(i, j) = g(j, i);
                        }
                      }
                    });
  return g;
}

std::vector<double> MultiplyVec(const Matrix& a, const std::vector<double>& x) {
  RHCHME_CHECK(a.cols() == x.size(), "MultiplyVec: dims mismatch");
  const simd::KernelTable& kt = simd::Table();
  std::vector<double> y(a.rows(), 0.0);
  util::ParallelFor(0, a.rows(), util::GrainForWork(2 * a.cols() + 1),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        y[i] = kt.dot(a.row_ptr(i), x.data(), a.cols());
                      }
                    });
  return y;
}

std::vector<double> MultiplyTVec(const Matrix& a,
                                 const std::vector<double>& x) {
  RHCHME_CHECK(a.rows() == x.size(), "MultiplyTVec: dims mismatch");
  const simd::KernelTable& kt = simd::Table();
  const std::size_t kk = a.rows(), m = a.cols();
  std::vector<double> y(m, 0.0);
  if (kk == 0 || m == 0) return y;
  // Same bounded per-chunk-accumulator pattern as MultiplyTNStreamInto:
  // source-row chunks accumulate into their own m-vector, merged in chunk
  // order. Chunk layout depends only on the shape (capped at kMaxChunks),
  // and every y[j] sums rows in ascending order on both paths, so results
  // are bit-identical for any pool size.
  constexpr std::size_t kMaxChunks = 16;
  const std::size_t cap_grain = (kk + kMaxChunks - 1) / kMaxChunks;
  const std::size_t grain = std::max(util::GrainForWork(2 * m + 1), cap_grain);
  const std::size_t nchunks = (kk + grain - 1) / grain;
  if (nchunks <= 1) {
    for (std::size_t i = 0; i < kk; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      kt.axpy(xi, a.row_ptr(i), y.data(), m);
    }
    return y;
  }
  std::vector<std::vector<double>> partial(nchunks);
  util::ParallelFor(0, kk, grain, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t cb = b0; cb < e0; cb += grain) {
      std::vector<double>& slot = partial[cb / grain];
      slot.assign(m, 0.0);
      const std::size_t ce = std::min(e0, cb + grain);
      for (std::size_t i = cb; i < ce; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        kt.axpy(xi, a.row_ptr(i), slot.data(), m);
      }
    }
  });
  for (const std::vector<double>& slot : partial) {
    kt.add(y.data(), slot.data(), m);
  }
  return y;
}

double FrobeniusInner(const Matrix& a, const Matrix& b) {
  RHCHME_CHECK(a.SameShape(b), "FrobeniusInner: shape mismatch");
  const simd::KernelTable& kt = simd::Table();
  const std::size_t cols = a.cols();
  if (a.rows() == 0 || cols == 0) return 0.0;
  // Row-wise so the padded storage's stride never enters the sum; rows
  // within a chunk accumulate in ascending order and ParallelSum merges
  // chunk partials in chunk order.
  return util::ParallelSum(0, a.rows(), util::GrainForWork(2 * cols),
                           [&](std::size_t r0, std::size_t r1) {
                             double acc = 0.0;
                             for (std::size_t i = r0; i < r1; ++i) {
                               acc += kt.dot(a.row_ptr(i), b.row_ptr(i),
                                             cols);
                             }
                             return acc;
                           });
}

double Sandwich(const Matrix& g, const Matrix& l) {
  RHCHME_CHECK(l.rows() == l.cols() && l.rows() == g.rows(),
               "Sandwich: shape mismatch");
  const simd::KernelTable& kt = simd::Table();
  const std::size_t n = g.rows(), c = g.cols();
  if (n == 0 || c == 0) return 0.0;
  // tr(Gᵀ L G) = Σ_i (L G)(i,:) · G(i,:). Each chunk streams its rows of L
  // against G into a c-sized scratch row, so the n x c intermediate is
  // never materialised; ParallelSum adds the per-chunk traces in fixed
  // chunk order. Each L row is probed per kBlockK-column segment, the
  // same way GemmPanelNN probes A tiles: mostly-zero segments (ensemble
  // Laplacians are pNN-sparse) take the zero-skip branch, dense segments
  // (fused or corrupted Laplacians) drop the per-element test so every
  // axpy issues back to back. Skipping a zero coefficient and issuing its
  // axpy produce the same u (a 0·x term adds exactly zero), so the probe
  // only picks between equivalent schedules — and it reads L's content
  // alone, never the thread count.
  const std::size_t grain =
      std::max(std::size_t{1}, util::GrainForWork(2 * n * c));
  return util::ParallelSum(0, n, grain, [&](std::size_t r0, std::size_t r1) {
    std::vector<double> u(c);
    double acc = 0.0;
    for (std::size_t i = r0; i < r1; ++i) {
      std::fill(u.begin(), u.end(), 0.0);
      const double* li = l.row_ptr(i);
      for (std::size_t tb = 0; tb < n; tb += kBlockK) {
        const std::size_t tend = std::min(n, tb + kBlockK);
        if (SegmentMostlyZero(li, tb, tend)) {
          for (std::size_t t = tb; t < tend; ++t) {
            const double lit = li[t];
            if (lit == 0.0) continue;
            kt.axpy(lit, g.row_ptr(t), u.data(), c);
          }
        } else {
          for (std::size_t t = tb; t < tend; ++t) {
            kt.axpy(li[t], g.row_ptr(t), u.data(), c);
          }
        }
      }
      acc += kt.dot(u.data(), g.row_ptr(i), c);
    }
    return acc;
  });
}

}  // namespace la
}  // namespace rhchme
