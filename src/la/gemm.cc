#include "la/gemm.h"

namespace rhchme {
namespace la {

void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.rows(), "Multiply: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c->Resize(m, n);
  // ikj order: the inner loop is a contiguous axpy over B's and C's rows.
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c->row_ptr(i);
    const double* ai = a.row_ptr(i);
    for (std::size_t l = 0; l < k; ++l) {
      const double ail = ai[l];
      if (ail == 0.0) continue;
      const double* bl = b.row_ptr(l);
      for (std::size_t j = 0; j < n; ++j) ci[j] += ail * bl[j];
    }
  }
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyInto(a, b, &c);
  return c;
}

void MultiplyTNInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.rows() == b.rows(), "MultiplyTN: inner dims mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  c->Resize(m, n);
  // l outer: stream over rows of A and B once, scatter-accumulate into C.
  for (std::size_t l = 0; l < k; ++l) {
    const double* al = a.row_ptr(l);
    const double* bl = b.row_ptr(l);
    for (std::size_t i = 0; i < m; ++i) {
      const double ali = al[i];
      if (ali == 0.0) continue;
      double* ci = c->row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += ali * bl[j];
    }
  }
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyTNInto(a, b, &c);
  return c;
}

void MultiplyNTInto(const Matrix& a, const Matrix& b, Matrix* c) {
  RHCHME_CHECK(a.cols() == b.cols(), "MultiplyNT: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c->Resize(m, n);
  // C(i,j) is a dot product of two contiguous rows.
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.row_ptr(i);
    double* ci = c->row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.row_ptr(j);
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      ci[j] = acc;
    }
  }
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c;
  MultiplyNTInto(a, b, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const std::size_t k = a.rows(), n = a.cols();
  Matrix g(n, n);
  for (std::size_t l = 0; l < k; ++l) {
    const double* al = a.row_ptr(l);
    for (std::size_t i = 0; i < n; ++i) {
      const double ali = al[i];
      if (ali == 0.0) continue;
      double* gi = g.row_ptr(i);
      for (std::size_t j = i; j < n; ++j) gi[j] += ali * al[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

std::vector<double> MultiplyVec(const Matrix& a, const std::vector<double>& x) {
  RHCHME_CHECK(a.cols() == x.size(), "MultiplyVec: dims mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<double> MultiplyTVec(const Matrix& a,
                                 const std::vector<double>& x) {
  RHCHME_CHECK(a.rows() == x.size(), "MultiplyTVec: dims mismatch");
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * ai[j];
  }
  return y;
}

double FrobeniusInner(const Matrix& a, const Matrix& b) {
  RHCHME_CHECK(a.SameShape(b), "FrobeniusInner: shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += pa[i] * pb[i];
  return acc;
}

}  // namespace la
}  // namespace rhchme
