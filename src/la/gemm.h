// Dense matrix-multiplication kernels.
//
// Every solver inner loop in the library funnels through these four
// products, so they use cache-friendly loop orders (ikj / dot-row forms)
// that auto-vectorise well with -O2 on a single core. Shapes are checked;
// `*Into` variants reuse the caller's output buffer.

#ifndef RHCHME_LA_GEMM_H_
#define RHCHME_LA_GEMM_H_

#include "la/matrix.h"

namespace rhchme {
namespace la {

/// C = A * B. Requires a.cols() == b.rows().
Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B. Requires a.rows() == b.rows().
Matrix MultiplyTN(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ. Requires a.cols() == b.cols().
Matrix MultiplyNT(const Matrix& a, const Matrix& b);

/// Writes A * B into `c` (resized as needed).
void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Writes Aᵀ * B into `c` (resized as needed).
void MultiplyTNInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Writes A * Bᵀ into `c` (resized as needed).
void MultiplyNTInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Gram matrix AᵀA (symmetric; computes the upper triangle and mirrors).
Matrix Gram(const Matrix& a);

/// y = A * x. Requires a.cols() == x.size().
std::vector<double> MultiplyVec(const Matrix& a, const std::vector<double>& x);

/// y = Aᵀ * x. Requires a.rows() == x.size().
std::vector<double> MultiplyTVec(const Matrix& a,
                                 const std::vector<double>& x);

/// tr(Aᵀ B) = sum of the entrywise product — the Frobenius inner product.
/// Cheaper than forming the product when only the trace is needed
/// (used for tr(Gᵀ L G) bookkeeping).
double FrobeniusInner(const Matrix& a, const Matrix& b);

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_GEMM_H_
