// Dense matrix-multiplication kernels.
//
// Every solver inner loop in the library funnels through these products.
// The kernels are cache-blocked (tiled over the reduction and column
// dimensions) and dispatch independent row panels of the output through
// util::ParallelFor, so they scale across cores; thread count is governed
// by util::SetNumThreads / the RHCHME_NUM_THREADS environment variable,
// and grain sizes derive from util::GrainForWork (≈64K flops per chunk).
//
// Within each row panel the inner loops run on the runtime-dispatched
// kernel table (la/simd.h, la/kernels.h): dense A tiles are packed —
// both operands, BLIS-style — and go through the table's register-blocked
// microkernel; mostly-zero tiles (membership blocks) keep a zero-skipping
// axpy path, selected per tile by a cheap density probe (Sandwich applies
// the same probe per reduction segment of each L row). One binary carries
// every compiled table (scalar, avx2, avx512, neon) and picks one at
// startup by CPUID; RHCHME_FORCE_ISA / --force_isa pins the choice.
//
// Determinism: each output row is produced by exactly one chunk and its
// accumulation order is fixed by compile-time tile constants and the
// shape-only chunk layout, never by the thread count or schedule, so
// results are bit-identical for any pool size *under a given dispatched
// table* (different tables reassociate reductions differently and are
// not bit-comparable to each other). Shapes are checked; `*Into` variants
// reuse the caller's output buffer.

#ifndef RHCHME_LA_GEMM_H_
#define RHCHME_LA_GEMM_H_

#include "la/matrix.h"

namespace rhchme {
namespace la {

/// C = A * B. Requires a.cols() == b.rows().
Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B. Requires a.rows() == b.rows().
Matrix MultiplyTN(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ. Requires a.cols() == b.cols().
Matrix MultiplyNT(const Matrix& a, const Matrix& b);

/// Writes A * B into `c` (resized as needed).
void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Writes Aᵀ * B into `c` (resized as needed). Materialises Aᵀ first —
/// fastest for the general case, but costs an A-sized temporary.
void MultiplyTNInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Writes Aᵀ * B into `c` without materialising Aᵀ: source-row chunks of
/// A/B accumulate into per-chunk (a.cols() x b.cols()) buffers that are
/// merged in chunk order. Chunk layout depends only on the shapes (capped
/// at 16 chunks), so results are bit-identical for any pool size. The
/// memory-lean choice when A is a large square matrix and B is narrow —
/// the solver's Mᵀ·G product — where the transposed copy would be the
/// only n x n temporary of the iteration.
void MultiplyTNStreamInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Writes A * Bᵀ into `c` (resized as needed).
void MultiplyNTInto(const Matrix& a, const Matrix& b, Matrix* c);

/// Gram matrix AᵀA (symmetric; computes the upper triangle in parallel
/// row panels and mirrors).
Matrix Gram(const Matrix& a);

/// y = A * x. Requires a.cols() == x.size().
std::vector<double> MultiplyVec(const Matrix& a, const std::vector<double>& x);

/// y = Aᵀ * x. Requires a.rows() == x.size(). Source-row chunks scatter
/// into bounded per-chunk accumulators (<= 16 output copies) merged in
/// chunk order — the same pattern as MultiplyTNStreamInto — so results
/// are bit-identical for any pool size.
std::vector<double> MultiplyTVec(const Matrix& a,
                                 const std::vector<double>& x);

/// tr(Aᵀ B) = sum of the entrywise product — the Frobenius inner product.
/// Cheaper than forming the product when only the trace is needed.
double FrobeniusInner(const Matrix& a, const Matrix& b);

/// tr(Gᵀ L G) without materialising L G: each chunk streams rows of L
/// against G into a c-sized scratch row, and per-row traces are reduced in
/// fixed order. Requires L square with l.rows() == g.rows(). This is the
/// ensemble-regulariser term of the RHCHME objective (paper Eq. 16).
double Sandwich(const Matrix& g, const Matrix& l);

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_GEMM_H_
