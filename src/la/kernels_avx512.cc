// AVX-512 kernel table (F + DQ). This TU (and only this TU) is compiled
// with -mavx512f -mavx512dq -mfma; like the AVX2 TU it is reached only
// through the dispatch table, and every helper has internal linkage so no
// 512-bit code can leak into a COMDAT shared with other TUs (la/kernels.h).
//
// Tail handling uses AVX-512 write masks instead of scalar remainder
// loops: `_mm512_maskz_loadu_pd` zero-fills the dead lanes and
// `_mm512_mask_storeu_pd` leaves them untouched in memory. For the
// element-parallel kernels each live lane still performs the scalar
// reference's exact unfused operation, so bit-identity with scalar holds
// through the masked tail. For the reductions the maskz zero lanes fold
// into the accumulators as exact +0.0 terms (0*0+acc == acc), so the
// result depends only on the call's length — the fixed-lane-order
// contract of la/kernels.h.
//
// GEMM geometry is 8 x 16: mr=8 packed A rows against nr=16 packed B
// columns (two zmm registers), i.e. 16 vector accumulators per tile.

#include "la/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace rhchme {
namespace la {
namespace simd {
namespace {

constexpr std::size_t kLanes = 8;
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 2 * kLanes;

using Vec = __m512d;

/// Mask selecting the low `rem` of 8 lanes (rem in [0, 8]).
__mmask8 TailMask(std::size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

/// Lane sum in fixed ascending-lane order l0 through l7.
double SumLanes(Vec v) {
  alignas(64) double t[kLanes];
  _mm512_store_pd(t, v);
  double s = t[0];
  for (std::size_t l = 1; l < kLanes; ++l) s += t[l];
  return s;
}

void Axpy(double a, const double* x, double* y, std::size_t n) {
  const Vec av = _mm512_set1_pd(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                             _mm512_mul_pd(av, _mm512_loadu_pd(x + i))));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(
        y + i, m,
        _mm512_add_pd(_mm512_maskz_loadu_pd(m, y + i),
                      _mm512_mul_pd(av, _mm512_maskz_loadu_pd(m, x + i))));
  }
}

double Dot(const double* a, const double* b, std::size_t n) {
  Vec acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + kLanes),
                           _mm512_loadu_pd(b + i + kLanes), acc1);
  }
  if (i + kLanes <= n) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    i += kLanes;
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    acc1 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(m, a + i),
                           _mm512_maskz_loadu_pd(m, b + i), acc1);
  }
  return SumLanes(_mm512_add_pd(acc0, acc1));
}

double SquaredDistance(const double* a, const double* b, std::size_t n) {
  Vec acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    const Vec d0 = _mm512_sub_pd(_mm512_loadu_pd(a + i),
                                 _mm512_loadu_pd(b + i));
    const Vec d1 = _mm512_sub_pd(_mm512_loadu_pd(a + i + kLanes),
                                 _mm512_loadu_pd(b + i + kLanes));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  if (i + kLanes <= n) {
    const Vec d = _mm512_sub_pd(_mm512_loadu_pd(a + i),
                                _mm512_loadu_pd(b + i));
    acc0 = _mm512_fmadd_pd(d, d, acc0);
    i += kLanes;
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const Vec d = _mm512_sub_pd(_mm512_maskz_loadu_pd(m, a + i),
                                _mm512_maskz_loadu_pd(m, b + i));
    acc1 = _mm512_fmadd_pd(d, d, acc1);
  }
  return SumLanes(_mm512_add_pd(acc0, acc1));
}

void Add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                                          _mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(y + i, m,
                          _mm512_add_pd(_mm512_maskz_loadu_pd(m, y + i),
                                        _mm512_maskz_loadu_pd(m, x + i)));
  }
}

void Sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(y + i, _mm512_sub_pd(_mm512_loadu_pd(y + i),
                                          _mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(y + i, m,
                          _mm512_sub_pd(_mm512_maskz_loadu_pd(m, y + i),
                                        _mm512_maskz_loadu_pd(m, x + i)));
  }
}

void Scale(double* y, double s, std::size_t n) {
  const Vec sv = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(y + i, _mm512_mul_pd(_mm512_loadu_pd(y + i), sv));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(
        y + i, m, _mm512_mul_pd(_mm512_maskz_loadu_pd(m, y + i), sv));
  }
}

void Hadamard(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(y + i, _mm512_mul_pd(_mm512_loadu_pd(y + i),
                                          _mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(y + i, m,
                          _mm512_mul_pd(_mm512_maskz_loadu_pd(m, y + i),
                                        _mm512_maskz_loadu_pd(m, x + i)));
  }
}

void PackB(const double* b, std::size_t ldb, std::size_t klen,
           std::size_t jlen, double* pack) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    double* dst = pack + p * klen * kNr;
    for (std::size_t l = 0; l < klen; ++l) {
      const double* bl = b + l * ldb + j0;
      for (std::size_t j = 0; j < w; ++j) dst[j] = bl[j];
      for (std::size_t j = w; j < kNr; ++j) dst[j] = 0.0;
      dst += kNr;
    }
  }
}

void PackA(const double* a, std::size_t lda, std::size_t mrows,
           std::size_t klen, double* pack) {
  for (std::size_t p = 0; p * kMr < mrows; ++p) {
    const std::size_t i0 = p * kMr;
    const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
    double* dst = pack + p * klen * kMr;
    for (std::size_t l = 0; l < klen; ++l) {
      for (std::size_t r = 0; r < h; ++r) dst[r] = a[(i0 + r) * lda + l];
      for (std::size_t r = h; r < kMr; ++r) dst[r] = 0.0;
      dst += kMr;
    }
  }
}

/// C row segment += accumulator pair; masked stores cover short trailing
/// panels without touching columns beyond w.
void AddTileRow(double* c, Vec v0, Vec v1, std::size_t w) {
  if (w == kNr) {
    _mm512_storeu_pd(c, _mm512_add_pd(_mm512_loadu_pd(c), v0));
    _mm512_storeu_pd(c + kLanes,
                     _mm512_add_pd(_mm512_loadu_pd(c + kLanes), v1));
    return;
  }
  const __mmask8 m0 = w >= kLanes ? TailMask(kLanes) : TailMask(w);
  _mm512_mask_storeu_pd(
      c, m0, _mm512_add_pd(_mm512_maskz_loadu_pd(m0, c), v0));
  if (w > kLanes) {
    const __mmask8 m1 = TailMask(w - kLanes);
    _mm512_mask_storeu_pd(
        c + kLanes, m1,
        _mm512_add_pd(_mm512_maskz_loadu_pd(m1, c + kLanes), v1));
  }
}

/// 8 x 16 register tile: 16 zmm accumulators, two B loads and eight
/// broadcast-FMA pairs per reduction step. `h` rows of C are written.
void MicroTile(const double* pa, const double* pb, std::size_t klen,
               double* c, std::size_t ldc, std::size_t h, std::size_t w) {
  Vec x0[kMr], x1[kMr];
  for (std::size_t r = 0; r < kMr; ++r) {
    x0[r] = _mm512_setzero_pd();
    x1[r] = _mm512_setzero_pd();
  }
  for (std::size_t l = 0; l < klen; ++l) {
    const Vec b0 = _mm512_loadu_pd(pb);
    const Vec b1 = _mm512_loadu_pd(pb + kLanes);
    pb += kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const Vec av = _mm512_set1_pd(pa[r]);
      x0[r] = _mm512_fmadd_pd(av, b0, x0[r]);
      x1[r] = _mm512_fmadd_pd(av, b1, x1[r]);
    }
    pa += kMr;
  }
  for (std::size_t r = 0; r < h; ++r) {
    AddTileRow(c + r * ldc, x0[r], x1[r], w);
  }
}

void GemmPacked(const double* packa, const double* packb, std::size_t mrows,
                std::size_t klen, std::size_t jlen, double* c,
                std::size_t ldc) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    const double* pb = packb + p * klen * kNr;
    for (std::size_t q = 0; q * kMr < mrows; ++q) {
      const std::size_t i0 = q * kMr;
      const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
      MicroTile(packa + q * klen * kMr, pb, klen, c + i0 * ldc + j0, ldc, h,
                w);
    }
  }
}

constexpr KernelTable kAvx512Table = {
    "avx512", Isa::kAvx512, kLanes,        kMr, kNr,   Axpy,
    Dot,      SquaredDistance, Add,        Sub, Scale, Hadamard,
    PackB,    PackA,           GemmPacked,
};

}  // namespace

const KernelTable* Avx512KernelTable() { return &kAvx512Table; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace rhchme {
namespace la {
namespace simd {

// Stub when the build could not enable AVX-512 for this TU: the binary
// simply does not carry the path.
const KernelTable* Avx512KernelTable() { return nullptr; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#endif  // __AVX512F__ && __AVX512DQ__
