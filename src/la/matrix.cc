#include "la/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "la/simd.h"
#include "util/parallel.h"

namespace rhchme {
namespace la {

namespace memstats {
namespace {
std::atomic<bool> g_tracking{false};
std::atomic<std::size_t> g_threshold{0};
std::atomic<std::size_t> g_count{0};
}  // namespace

void StartTracking(std::size_t min_elements) {
  g_threshold.store(min_elements, std::memory_order_relaxed);
  g_count.store(0, std::memory_order_relaxed);
  g_tracking.store(true, std::memory_order_release);
}

void StopTracking() { g_tracking.store(false, std::memory_order_release); }

std::size_t LargeAllocations() {
  return g_count.load(std::memory_order_relaxed);
}

namespace internal {
void NoteAlloc(std::size_t elements) {
  if (!g_tracking.load(std::memory_order_acquire)) return;
  if (elements >= g_threshold.load(std::memory_order_relaxed)) {
    g_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace internal
}  // namespace memstats

// Storage invariant: rows are stride_-spaced and the padding columns
// [cols_, stride_) of every row stay zero. Whole-buffer passes are legal
// only for operations that map zeros to zeros (+, -, *s, ∘, clamp); every
// other loop walks rows and touches logical columns only.

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    RHCHME_CHECK(rows[i].size() == rows[0].size(), "ragged row lengths");
    std::copy(rows[i].begin(), rows[i].end(), m.row_ptr(i));
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::RandomUniform(std::size_t rows, std::size_t cols, Rng* rng,
                             double lo, double hi) {
  Matrix m(rows, cols);
  // Row-major logical order keeps the draw sequence identical to the
  // unpadded layout (seeded tests depend on it).
  for (std::size_t i = 0; i < rows; ++i) {
    double* r = m.row_ptr(i);
    for (std::size_t j = 0; j < cols; ++j) r[j] = rng->Uniform(lo, hi);
  }
  return m;
}

Matrix Matrix::RandomNormal(std::size_t rows, std::size_t cols, Rng* rng,
                            double mean, double stddev) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* r = m.row_ptr(i);
    for (std::size_t j = 0; j < cols; ++j) r[j] = rng->Normal(mean, stddev);
  }
  return m;
}

void Matrix::Fill(double v) {
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = row_ptr(i);
    std::fill(r, r + cols_, v);
  }
}

void Matrix::Resize(std::size_t rows, std::size_t cols) {
  // A same-footprint Resize reuses the buffer (hot *Into kernels call it
  // every iteration); only a buffer change is a fresh acquisition. The
  // tracked element count is logical (padding excluded).
  const std::size_t stride = PaddedStride(cols);
  if (rows * stride != data_.size()) {
    memstats::internal::NoteAlloc(rows * cols);
  }
  rows_ = rows;
  cols_ = cols;
  stride_ = stride;
  data_.assign(rows * stride, 0.0);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  // Blocked transpose keeps both source row and destination row in cache;
  // chunks own disjoint destination row panels, so they parallelise cleanly.
  constexpr std::size_t kBlock = 32;
  util::ParallelFor(0, cols_, kBlock, [&](std::size_t j0, std::size_t j1) {
    for (std::size_t ib = 0; ib < rows_; ib += kBlock) {
      const std::size_t imax = std::min(rows_, ib + kBlock);
      for (std::size_t j = j0; j < j1; ++j) {
        for (std::size_t i = ib; i < imax; ++i) {
          t(j, i) = (*this)(i, j);
        }
      }
    }
  });
  return t;
}

Matrix Matrix::Block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  RHCHME_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_, "block out of range");
  Matrix b(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    const double* src = row_ptr(r0 + i) + c0;
    std::copy(src, src + nc, b.row_ptr(i));
  }
  return b;
}

void Matrix::SetBlock(std::size_t r0, std::size_t c0, const Matrix& src) {
  RHCHME_CHECK(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_,
               "block out of range");
  for (std::size_t i = 0; i < src.rows(); ++i) {
    std::copy(src.row_ptr(i), src.row_ptr(i) + src.cols(),
              row_ptr(r0 + i) + c0);
  }
}

std::vector<double> Matrix::Row(std::size_t i) const {
  RHCHME_CHECK(i < rows_, "row out of range");
  return std::vector<double>(row_ptr(i), row_ptr(i) + cols_);
}

std::vector<double> Matrix::Col(std::size_t j) const {
  RHCHME_CHECK(j < cols_, "col out of range");
  std::vector<double> c(rows_);
  for (std::size_t i = 0; i < rows_; ++i) c[i] = (*this)(i, j);
  return c;
}

void Matrix::Add(const Matrix& other) {
  RHCHME_CHECK(SameShape(other), "Add: shape mismatch");
  // Same shape implies same stride; 0+0 keeps the padding zero, so the
  // whole padded buffer goes through one vector pass.
  simd::Add(data_.data(), other.data_.data(), data_.size());
}

void Matrix::Sub(const Matrix& other) {
  RHCHME_CHECK(SameShape(other), "Sub: shape mismatch");
  simd::Sub(data_.data(), other.data_.data(), data_.size());
}

void Matrix::Scale(double s) { simd::Scale(data_.data(), s, data_.size()); }

void Matrix::AddScaled(const Matrix& other, double s) {
  RHCHME_CHECK(SameShape(other), "AddScaled: shape mismatch");
  simd::Axpy(s, other.data_.data(), data_.data(), data_.size());
}

void Matrix::Hadamard(const Matrix& other) {
  RHCHME_CHECK(SameShape(other), "Hadamard: shape mismatch");
  simd::Hadamard(data_.data(), other.data_.data(), data_.size());
}

void Matrix::Apply(const std::function<double(double)>& f) {
  // f(0) may be nonzero, so only logical columns may be touched.
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) r[j] = f(r[j]);
  }
}

void Matrix::ClampNonNegative() {
  for (double& v : data_) v = v < 0.0 ? 0.0 : v;  // Padding: 0 -> 0.
}

double Matrix::FrobeniusNormSquared() const {
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    s += simd::Dot(r, r, cols_);
  }
  return s;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(FrobeniusNormSquared());
}

double Matrix::L1Norm() const {
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) s += std::fabs(r[j]);
  }
  return s;
}

double Matrix::L21Norm() const {
  double total = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    total += std::sqrt(simd::Dot(r, r, cols_));
  }
  return total;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) s += r[j];
  }
  return s;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) m = std::max(m, std::fabs(r[j]));
  }
  return m;
}

double Matrix::Min() const {
  double m = empty() ? 0.0 : data_[0];
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) m = std::min(m, r[j]);
  }
  return m;
}

double Matrix::Max() const {
  double m = empty() ? 0.0 : data_[0];
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) m = std::max(m, r[j]);
  }
  return m;
}

std::vector<double> Matrix::RowSums() const {
  std::vector<double> s(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += r[j];
    s[i] = acc;
  }
  return s;
}

std::vector<double> Matrix::ColSums() const {
  std::vector<double> s(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) s[j] += r[j];
  }
  return s;
}

double Matrix::Trace() const {
  RHCHME_CHECK(rows_ == cols_, "Trace: matrix must be square");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

bool Matrix::AllFinite() const {
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      if (!std::isfinite(r[j])) return false;
    }
  }
  return true;
}

std::size_t Matrix::ReplaceNonFinite(double value) {
  std::size_t replaced = 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      if (!std::isfinite(r[j])) {
        r[j] = value;
        ++replaced;
      }
    }
  }
  return replaced;
}

bool Matrix::IsNonNegative(double tol) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      if (r[j] < -tol) return false;
    }
  }
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  RHCHME_CHECK(SameShape(other), "MaxAbsDiff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = row_ptr(i);
    const double* b = other.row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      m = std::max(m, std::fabs(a[j] - b[j]));
    }
  }
  return m;
}

void Matrix::ScaleRows(const std::vector<double>& d) {
  RHCHME_CHECK(d.size() == rows_, "ScaleRows: size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    if (std::fabs(d[i]) < kScaleRowsEps) continue;
    simd::Scale(row_ptr(i), 1.0 / d[i], cols_);
  }
}

void Matrix::ScaleCols(const std::vector<double>& d) {
  RHCHME_CHECK(d.size() == cols_, "ScaleCols: size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    simd::Hadamard(row_ptr(i), d.data(), cols_);
  }
}

void Matrix::NormalizeRowsL1(std::size_t c0, std::size_t c1) {
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = row_ptr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += std::fabs(r[j]);
    if (s > kNormalizeRowsZeroTol) {
      simd::Scale(r, 1.0 / s, cols_);
    } else if (c1 > c0) {
      double u = 1.0 / static_cast<double>(c1 - c0);
      for (std::size_t j = c0; j < c1; ++j) r[j] = u;
    }
  }
}

std::string Matrix::DebugString(std::size_t max_rows,
                                std::size_t max_cols) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Matrix %zux%zu\n", rows_, cols_);
  std::string out = buf;
  for (std::size_t i = 0; i < std::min(rows_, max_rows); ++i) {
    out += "  [";
    for (std::size_t j = 0; j < std::min(cols_, max_cols); ++j) {
      std::snprintf(buf, sizeof(buf), "%s%9.4g", j ? ", " : "", (*this)(i, j));
      out += buf;
    }
    if (cols_ > max_cols) out += ", ...";
    out += "]\n";
  }
  if (rows_ > max_rows) out += "  ...\n";
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Add(b);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Sub(b);
  return c;
}

Matrix Scaled(const Matrix& a, double s) {
  Matrix c = a;
  c.Scale(s);
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.Hadamard(b);
  return c;
}

Matrix PositivePart(const Matrix& m) {
  Matrix p = m;
  p.Apply([](double v) { return v > 0.0 ? v : 0.0; });
  return p;
}

Matrix NegativePart(const Matrix& m) {
  Matrix p = m;
  p.Apply([](double v) { return v < 0.0 ? -v : 0.0; });
  return p;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  return a.MaxAbsDiff(b);
}

Matrix HConcat(const Matrix& a, const Matrix& b) {
  RHCHME_CHECK(a.rows() == b.rows(), "HConcat: row mismatch");
  Matrix c(a.rows(), a.cols() + b.cols());
  c.SetBlock(0, 0, a);
  c.SetBlock(0, a.cols(), b);
  return c;
}

Matrix VConcat(const Matrix& a, const Matrix& b) {
  RHCHME_CHECK(a.cols() == b.cols(), "VConcat: column mismatch");
  Matrix c(a.rows() + b.rows(), a.cols());
  c.SetBlock(0, 0, a);
  c.SetBlock(a.rows(), 0, b);
  return c;
}

}  // namespace la
}  // namespace rhchme
