#include "la/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rhchme {
namespace la {
namespace {

/// Frobenius mass of the strict off-diagonal part.
double OffDiagonalNorm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      s += 2.0 * a(i, j) * a(i, j);
    }
  }
  return std::sqrt(s);
}

}  // namespace

Result<EigenSymResult> EigenSym(const Matrix& a, const EigenSymOptions& opts) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSym: matrix must be square");
  }
  const std::size_t n = a.rows();

  // Work on the symmetrised copy; V accumulates the rotations.
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
  Matrix v = Matrix::Identity(n);

  const double stop = opts.tolerance * std::max(w.FrobeniusNorm(), 1e-300);
  bool converged = (n <= 1) || OffDiagonalNorm(w) <= stop;
  for (int sweep = 0; sweep < opts.max_sweeps && !converged; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = w(p, p), aqq = w(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to rows/cols p,q of W and columns p,q of V.
        for (std::size_t i = 0; i < n; ++i) {
          const double wip = w(i, p), wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double wpi = w(p, i), wqi = w(q, i);
          w(p, i) = c * wpi - s * wqi;
          w(q, i) = s * wpi + c * wqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    converged = OffDiagonalNorm(w) <= stop;
  }
  if (!converged) {
    return Status::NotConverged("EigenSym: Jacobi sweep cap reached");
  }

  // Sort ascending by eigenvalue and permute eigenvector columns.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return w(x, x) < w(y, y); });

  EigenSymResult out;
  out.eigenvalues.resize(n);
  out.eigenvectors.Resize(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = w(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

Result<EigenSymResult> EigenSymSmallest(const Matrix& a, std::size_t k,
                                        const EigenSymOptions& opts) {
  if (k > a.rows()) {
    return Status::InvalidArgument("EigenSymSmallest: k exceeds dimension");
  }
  Result<EigenSymResult> full = EigenSym(a, opts);
  if (!full.ok()) return full.status();
  EigenSymResult sliced;
  sliced.eigenvalues.assign(full.value().eigenvalues.begin(),
                            full.value().eigenvalues.begin() + k);
  sliced.eigenvectors = full.value().eigenvectors.Block(0, 0, a.rows(), k);
  return sliced;
}

}  // namespace la
}  // namespace rhchme
