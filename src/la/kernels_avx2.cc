// AVX2+FMA kernel table. This TU (and only this TU) is compiled with
// -mavx2 -mfma; it is reached exclusively through the dispatch table, so
// the binary stays legal on pre-Haswell hosts. Everything here has
// internal linkage — no inline helper may escape into a COMDAT the linker
// could pick for other TUs (see la/kernels.h).
//
// The arithmetic is the PR 4 compile-time AVX2 path, unchanged: unfused
// mul+add per element for the element-parallel kernels (bit-identical to
// scalar), two 4-lane FMA accumulators summed in fixed ascending-lane
// order for the reductions, and the 4 x 8 broadcast-FMA register tile for
// the GEMM microkernel. A-panel packing only relocates the same operands
// into a contiguous stream, so dispatched results are bit-identical to
// the old `-mavx2`-global build.

#include "la/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace rhchme {
namespace la {
namespace simd {
namespace {

constexpr std::size_t kLanes = 4;
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 2 * kLanes;

using Vec = __m256d;

/// Lane sum in fixed ascending-lane order: ((l0+l1)+l2)+l3.
double SumLanes(Vec v) {
  alignas(32) double t[kLanes];
  _mm256_store_pd(t, v);
  return ((t[0] + t[1]) + t[2]) + t[3];
}

void Axpy(double a, const double* x, double* y, std::size_t n) {
  const Vec av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

double Dot(const double* a, const double* b, std::size_t n) {
  Vec acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + kLanes),
                           _mm256_loadu_pd(b + i + kLanes), acc1);
  }
  double s = SumLanes(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const double* a, const double* b, std::size_t n) {
  Vec acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    const Vec d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                 _mm256_loadu_pd(b + i));
    const Vec d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + kLanes),
                                 _mm256_loadu_pd(b + i + kLanes));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double s = SumLanes(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void Add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void Sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void Scale(double* y, double s, std::size_t n) {
  const Vec sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), sv));
  }
  for (; i < n; ++i) y[i] *= s;
}

void Hadamard(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void PackB(const double* b, std::size_t ldb, std::size_t klen,
           std::size_t jlen, double* pack) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    double* dst = pack + p * klen * kNr;
    for (std::size_t l = 0; l < klen; ++l) {
      const double* bl = b + l * ldb + j0;
      for (std::size_t j = 0; j < w; ++j) dst[j] = bl[j];
      for (std::size_t j = w; j < kNr; ++j) dst[j] = 0.0;
      dst += kNr;
    }
  }
}

void PackA(const double* a, std::size_t lda, std::size_t mrows,
           std::size_t klen, double* pack) {
  for (std::size_t p = 0; p * kMr < mrows; ++p) {
    const std::size_t i0 = p * kMr;
    const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
    double* dst = pack + p * klen * kMr;
    for (std::size_t l = 0; l < klen; ++l) {
      for (std::size_t r = 0; r < h; ++r) dst[r] = a[(i0 + r) * lda + l];
      for (std::size_t r = h; r < kMr; ++r) dst[r] = 0.0;
      dst += kMr;
    }
  }
}

/// C row segment += accumulator pair, touching only the w real columns of
/// a possibly short trailing panel.
void AddTileRow(double* c, Vec v0, Vec v1, std::size_t w) {
  if (w == kNr) {
    _mm256_storeu_pd(c, _mm256_add_pd(_mm256_loadu_pd(c), v0));
    _mm256_storeu_pd(c + kLanes,
                     _mm256_add_pd(_mm256_loadu_pd(c + kLanes), v1));
    return;
  }
  alignas(64) double t[kNr];
  _mm256_store_pd(t, v0);
  _mm256_store_pd(t + kLanes, v1);
  for (std::size_t j = 0; j < w; ++j) c[j] += t[j];
}

/// 4 x 8 register tile over one packed A micro-panel and one packed B
/// column panel: 8 vector accumulators, two B loads and four
/// broadcast-FMA pairs per reduction step. `h` rows of C are written.
void MicroTile(const double* pa, const double* pb, std::size_t klen,
               double* c, std::size_t ldc, std::size_t h, std::size_t w) {
  Vec x00 = _mm256_setzero_pd(), x01 = _mm256_setzero_pd();
  Vec x10 = _mm256_setzero_pd(), x11 = _mm256_setzero_pd();
  Vec x20 = _mm256_setzero_pd(), x21 = _mm256_setzero_pd();
  Vec x30 = _mm256_setzero_pd(), x31 = _mm256_setzero_pd();
  for (std::size_t l = 0; l < klen; ++l) {
    const Vec b0 = _mm256_loadu_pd(pb);
    const Vec b1 = _mm256_loadu_pd(pb + kLanes);
    pb += kNr;
    Vec av = _mm256_set1_pd(pa[0]);
    x00 = _mm256_fmadd_pd(av, b0, x00);
    x01 = _mm256_fmadd_pd(av, b1, x01);
    av = _mm256_set1_pd(pa[1]);
    x10 = _mm256_fmadd_pd(av, b0, x10);
    x11 = _mm256_fmadd_pd(av, b1, x11);
    av = _mm256_set1_pd(pa[2]);
    x20 = _mm256_fmadd_pd(av, b0, x20);
    x21 = _mm256_fmadd_pd(av, b1, x21);
    av = _mm256_set1_pd(pa[3]);
    x30 = _mm256_fmadd_pd(av, b0, x30);
    x31 = _mm256_fmadd_pd(av, b1, x31);
    pa += kMr;
  }
  AddTileRow(c, x00, x01, w);
  if (h > 1) AddTileRow(c + ldc, x10, x11, w);
  if (h > 2) AddTileRow(c + 2 * ldc, x20, x21, w);
  if (h > 3) AddTileRow(c + 3 * ldc, x30, x31, w);
}

void GemmPacked(const double* packa, const double* packb, std::size_t mrows,
                std::size_t klen, std::size_t jlen, double* c,
                std::size_t ldc) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    const double* pb = packb + p * klen * kNr;
    for (std::size_t q = 0; q * kMr < mrows; ++q) {
      const std::size_t i0 = q * kMr;
      const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
      MicroTile(packa + q * klen * kMr, pb, klen, c + i0 * ldc + j0, ldc, h,
                w);
    }
  }
}

constexpr KernelTable kAvx2Table = {
    "avx2", Isa::kAvx2, kLanes,          kMr, kNr,   Axpy,
    Dot,    SquaredDistance, Add,        Sub, Scale, Hadamard,
    PackB,  PackA,           GemmPacked,
};

}  // namespace

const KernelTable* Avx2KernelTable() { return &kAvx2Table; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#else  // !(__AVX2__ && __FMA__)

namespace rhchme {
namespace la {
namespace simd {

// Stub when the build could not enable AVX2 for this TU (foreign
// architecture or an older compiler): the dispatcher sees a binary that
// simply does not carry the path.
const KernelTable* Avx2KernelTable() { return nullptr; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#endif  // __AVX2__ && __FMA__
