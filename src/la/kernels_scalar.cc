// Scalar kernel table — the always-available dispatch fallback and the
// semantic reference every vector table is pinned against
// (tests/simd_test.cc). Compiled with no ISA flags: whatever the baseline
// target offers is all the auto-vectorizer may use.
//
// The element-parallel kernels are byte-for-byte the simd::scalar::*
// reference loops; the GEMM entry points implement the same packed
// (mr x nr) register-tile protocol as the vector tables so la/gemm.cc
// drives every ISA through one code path.

#include "la/kernels.h"

namespace rhchme {
namespace la {
namespace simd {
namespace {

constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

void Axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

double Dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void Add(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void Sub(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void Scale(double* y, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

void Hadamard(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void PackB(const double* b, std::size_t ldb, std::size_t klen,
           std::size_t jlen, double* pack) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    double* dst = pack + p * klen * kNr;
    for (std::size_t l = 0; l < klen; ++l) {
      const double* bl = b + l * ldb + j0;
      for (std::size_t j = 0; j < w; ++j) dst[j] = bl[j];
      for (std::size_t j = w; j < kNr; ++j) dst[j] = 0.0;
      dst += kNr;
    }
  }
}

void PackA(const double* a, std::size_t lda, std::size_t mrows,
           std::size_t klen, double* pack) {
  for (std::size_t p = 0; p * kMr < mrows; ++p) {
    const std::size_t i0 = p * kMr;
    const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
    double* dst = pack + p * klen * kMr;
    for (std::size_t l = 0; l < klen; ++l) {
      for (std::size_t r = 0; r < h; ++r) dst[r] = a[(i0 + r) * lda + l];
      for (std::size_t r = h; r < kMr; ++r) dst[r] = 0.0;
      dst += kMr;
    }
  }
}

void GemmPacked(const double* packa, const double* packb, std::size_t mrows,
                std::size_t klen, std::size_t jlen, double* c,
                std::size_t ldc) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    const double* pb = packb + p * klen * kNr;
    for (std::size_t q = 0; q * kMr < mrows; ++q) {
      const std::size_t i0 = q * kMr;
      const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
      const double* pa = packa + q * klen * kMr;
      double acc[kMr][kNr] = {};
      for (std::size_t l = 0; l < klen; ++l) {
        const double* bl = pb + l * kNr;
        const double* al = pa + l * kMr;
        for (std::size_t r = 0; r < kMr; ++r) {
          for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += al[r] * bl[j];
        }
      }
      for (std::size_t r = 0; r < h; ++r) {
        double* cr = c + (i0 + r) * ldc + j0;
        for (std::size_t j = 0; j < w; ++j) cr[j] += acc[r][j];
      }
    }
  }
}

constexpr KernelTable kScalarTable = {
    "scalar", Isa::kScalar, /*lanes=*/1,     kMr,   kNr,  Axpy,
    Dot,      SquaredDistance, Add,          Sub,   Scale, Hadamard,
    PackB,    PackA,           GemmPacked,
};

}  // namespace

const KernelTable* ScalarKernelTable() { return &kScalarTable; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme
