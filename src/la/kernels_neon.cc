// NEON kernel table (aarch64, 2 doubles/vector). NEON is baseline on
// aarch64, so this TU needs no extra `-m` flags — the guard keeps the
// file an inert stub on every other architecture. Same internal-linkage
// discipline as the x86 TUs (la/kernels.h).
//
// The arithmetic is the PR 4 compile-time NEON path, unchanged: unfused
// per-element ops for the element-parallel kernels, two 2-lane FMA
// accumulators summed in fixed ascending-lane order for the reductions,
// and the generic 4 x (2*lanes) broadcast-FMA register tile — here
// 4 x 4 — for the GEMM microkernel.

#include "la/kernels.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

namespace rhchme {
namespace la {
namespace simd {
namespace {

constexpr std::size_t kLanes = 2;
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 2 * kLanes;

using Vec = float64x2_t;

/// Lane sum in fixed ascending-lane order: l0 + l1.
double SumLanes(Vec v) {
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}

void Axpy(double a, const double* x, double* y, std::size_t n) {
  const Vec av = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i),
                               vmulq_f64(av, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

double Dot(const double* a, const double* b, std::size_t n) {
  Vec acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + kLanes),
                     vld1q_f64(b + i + kLanes));
  }
  double s = SumLanes(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const double* a, const double* b, std::size_t n) {
  Vec acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    const Vec d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const Vec d1 = vsubq_f64(vld1q_f64(a + i + kLanes),
                             vld1q_f64(b + i + kLanes));
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
  }
  double s = SumLanes(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void Add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void Sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vsubq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void Scale(double* y, double s, std::size_t n) {
  const Vec sv = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), sv));
  }
  for (; i < n; ++i) y[i] *= s;
}

void Hadamard(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void PackB(const double* b, std::size_t ldb, std::size_t klen,
           std::size_t jlen, double* pack) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    double* dst = pack + p * klen * kNr;
    for (std::size_t l = 0; l < klen; ++l) {
      const double* bl = b + l * ldb + j0;
      for (std::size_t j = 0; j < w; ++j) dst[j] = bl[j];
      for (std::size_t j = w; j < kNr; ++j) dst[j] = 0.0;
      dst += kNr;
    }
  }
}

void PackA(const double* a, std::size_t lda, std::size_t mrows,
           std::size_t klen, double* pack) {
  for (std::size_t p = 0; p * kMr < mrows; ++p) {
    const std::size_t i0 = p * kMr;
    const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
    double* dst = pack + p * klen * kMr;
    for (std::size_t l = 0; l < klen; ++l) {
      for (std::size_t r = 0; r < h; ++r) dst[r] = a[(i0 + r) * lda + l];
      for (std::size_t r = h; r < kMr; ++r) dst[r] = 0.0;
      dst += kMr;
    }
  }
}

/// C row segment += accumulator pair, touching only the w real columns.
void AddTileRow(double* c, Vec v0, Vec v1, std::size_t w) {
  if (w == kNr) {
    vst1q_f64(c, vaddq_f64(vld1q_f64(c), v0));
    vst1q_f64(c + kLanes, vaddq_f64(vld1q_f64(c + kLanes), v1));
    return;
  }
  alignas(64) double t[kNr];
  vst1q_f64(t, v0);
  vst1q_f64(t + kLanes, v1);
  for (std::size_t j = 0; j < w; ++j) c[j] += t[j];
}

/// 4 x 4 register tile: 8 vector accumulators, two B loads and four
/// broadcast-FMA pairs per reduction step. `h` rows of C are written.
void MicroTile(const double* pa, const double* pb, std::size_t klen,
               double* c, std::size_t ldc, std::size_t h, std::size_t w) {
  Vec x00 = vdupq_n_f64(0.0), x01 = vdupq_n_f64(0.0);
  Vec x10 = vdupq_n_f64(0.0), x11 = vdupq_n_f64(0.0);
  Vec x20 = vdupq_n_f64(0.0), x21 = vdupq_n_f64(0.0);
  Vec x30 = vdupq_n_f64(0.0), x31 = vdupq_n_f64(0.0);
  for (std::size_t l = 0; l < klen; ++l) {
    const Vec b0 = vld1q_f64(pb);
    const Vec b1 = vld1q_f64(pb + kLanes);
    pb += kNr;
    Vec av = vdupq_n_f64(pa[0]);
    x00 = vfmaq_f64(x00, av, b0);
    x01 = vfmaq_f64(x01, av, b1);
    av = vdupq_n_f64(pa[1]);
    x10 = vfmaq_f64(x10, av, b0);
    x11 = vfmaq_f64(x11, av, b1);
    av = vdupq_n_f64(pa[2]);
    x20 = vfmaq_f64(x20, av, b0);
    x21 = vfmaq_f64(x21, av, b1);
    av = vdupq_n_f64(pa[3]);
    x30 = vfmaq_f64(x30, av, b0);
    x31 = vfmaq_f64(x31, av, b1);
    pa += kMr;
  }
  AddTileRow(c, x00, x01, w);
  if (h > 1) AddTileRow(c + ldc, x10, x11, w);
  if (h > 2) AddTileRow(c + 2 * ldc, x20, x21, w);
  if (h > 3) AddTileRow(c + 3 * ldc, x30, x31, w);
}

void GemmPacked(const double* packa, const double* packb, std::size_t mrows,
                std::size_t klen, std::size_t jlen, double* c,
                std::size_t ldc) {
  for (std::size_t p = 0; p * kNr < jlen; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t w = jlen - j0 < kNr ? jlen - j0 : kNr;
    const double* pb = packb + p * klen * kNr;
    for (std::size_t q = 0; q * kMr < mrows; ++q) {
      const std::size_t i0 = q * kMr;
      const std::size_t h = mrows - i0 < kMr ? mrows - i0 : kMr;
      MicroTile(packa + q * klen * kMr, pb, klen, c + i0 * ldc + j0, ldc, h,
                w);
    }
  }
}

constexpr KernelTable kNeonTable = {
    "neon", Isa::kNeon, kLanes,          kMr, kNr,   Axpy,
    Dot,    SquaredDistance, Add,        Sub, Scale, Hadamard,
    PackB,  PackA,           GemmPacked,
};

}  // namespace

const KernelTable* NeonKernelTable() { return &kNeonTable; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#else  // !__ARM_NEON

namespace rhchme {
namespace la {
namespace simd {

// Stub on non-ARM architectures.
const KernelTable* NeonKernelTable() { return nullptr; }

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#endif  // __ARM_NEON
