// Aligned storage helpers for the dense kernel layer.
//
// Every la::Matrix row begins on a 64-byte boundary: the buffer comes from
// an over-aligned allocator and the leading dimension (stride) is padded up
// to a whole cache line of doubles. Aligned, padded rows are what let the
// SIMD kernels (la/simd.h) use full-width loads without peeling prologues,
// and keep row panels from splitting cache lines across threads.

#ifndef RHCHME_LA_ALIGNED_H_
#define RHCHME_LA_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace rhchme {
namespace la {

/// Alignment of every Matrix row and of the GEMM packing buffers: one
/// x86-64 cache line, which is also a whole AVX-512 vector and a multiple
/// of every narrower vector width (AVX2, NEON, SSE2).
constexpr std::size_t kAlignment = 64;

/// Doubles per cache line — the unit the leading dimension is padded to.
constexpr std::size_t kAlignDoubles = kAlignment / sizeof(double);

/// Leading dimension (in doubles) for a row of `cols` logical columns:
/// `cols` rounded up to a whole cache line, 0 for an empty row.
constexpr std::size_t PaddedStride(std::size_t cols) {
  return (cols + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
}

/// Minimal C++17 over-aligned allocator (aligned operator new/delete).
/// Stateless: all instances are interchangeable, so vectors copy/move
/// freely and propagate the alignment guarantee with them.
template <typename T, std::size_t Align = kAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "Align must not weaken T's alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
};

template <typename T, std::size_t A, typename U, std::size_t B>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, B>&) {
  return A == B;
}
template <typename T, std::size_t A, typename U, std::size_t B>
bool operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, B>&) {
  return A != B;
}

/// std::vector whose buffer starts on a kAlignment boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_ALIGNED_H_
