// The runtime-dispatched kernel table: one struct of function pointers per
// instruction set, resolved once at startup by CPUID feature detection
// (la/simd.h owns the dispatch; this header owns the seam).
//
// Every ISA's implementations live in their own translation unit —
// la/kernels_scalar.cc, la/kernels_avx2.cc, la/kernels_avx512.cc,
// la/kernels_neon.cc — and those files are the ONLY ones compiled with
// their `-m` ISA flags (see CMakeLists.txt). That is what lets one binary
// carry scalar through AVX-512 side by side without the classic
// illegal-instruction hazard: this header must therefore stay free of
// inline functions and of includes that carry them. An inline function
// compiled into an AVX-512 TU lands in a COMDAT section the linker may
// pick for the whole program, which would execute AVX-512 code on a host
// the dispatcher correctly classified as AVX2-only. Raw pointers, plain
// declarations, <cstddef> only.
//
// Numerics contract carried by every table (docs/ARCHITECTURE.md "Kernel
// layer"):
//   - Element-parallel kernels (Axpy, Add, Sub, Scale, Hadamard) perform
//     exactly one (unfused) multiply and/or add per element in the scalar
//     reference's per-element order — bit-identical to simd::scalar::*
//     for every table, including the AVX-512 masked tails.
//   - Reductions (Dot, SquaredDistance) reassociate into a fixed number
//     of lane accumulators combined in a fixed order that depends only on
//     the table and the call's length — bit-stable across thread counts
//     per dispatched table, bounded rounding away from the scalar chain.
//   - The packed GEMM microkernel fixes its accumulation order by the
//     table's (mr, nr) geometry and the call's klen alone.

#ifndef RHCHME_LA_KERNELS_H_
#define RHCHME_LA_KERNELS_H_

#include <cstddef>

namespace rhchme {
namespace la {
namespace simd {

/// Instruction sets a kernel table can be built for, in dispatch
/// preference order (highest first at runtime: kAvx512 > kAvx2 > kNeon >
/// kScalar).
enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// One ISA's complete kernel set. All pointers are always non-null in a
/// table returned by the registry; geometry fields size the caller-owned
/// GEMM packing buffers.
struct KernelTable {
  const char* name;   ///< Resolved table name: "scalar", "avx2", "avx512", "neon".
  Isa isa;            ///< Which ISA this table implements.
  std::size_t lanes;  ///< Doubles per vector register (1 for scalar).
  std::size_t mr;     ///< GEMM microkernel rows (A micro-panel height).
  std::size_t nr;     ///< GEMM microkernel cols (B panel width, doubles).

  /// y[0..n) += a * x[0..n). Unfused multiply+add per element.
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// Σ a[i]·b[i] with the table's fixed lane-accumulator order.
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// Σ (a[i]-b[i])², same accumulator structure as dot.
  double (*squared_distance)(const double* a, const double* b,
                             std::size_t n);
  void (*add)(double* y, const double* x, std::size_t n);
  void (*sub)(double* y, const double* x, std::size_t n);
  void (*scale)(double* y, double s, std::size_t n);
  void (*hadamard)(double* y, const double* x, std::size_t n);

  /// Packs B rows [0, klen) x cols [0, jlen) (row stride ldb) into `pack`,
  /// laid out as ceil(jlen/nr) column panels of (klen x nr); short trailing
  /// panels are zero-filled so the microkernel always loads full vectors.
  /// `pack` must hold ceil(jlen/nr) * klen * nr doubles, 64-byte aligned.
  void (*pack_b)(const double* b, std::size_t ldb, std::size_t klen,
                 std::size_t jlen, double* pack);

  /// Packs A rows [0, mrows) x cols [0, klen) (row stride lda) into `pack`,
  /// laid out as ceil(mrows/mr) row micro-panels of (klen x mr) with the mr
  /// row values interleaved per reduction step (BLIS A-panel layout); rows
  /// beyond mrows are zero-filled. `pack` must hold
  /// ceil(mrows/mr) * klen * mr doubles, 64-byte aligned.
  void (*pack_a)(const double* a, std::size_t lda, std::size_t mrows,
                 std::size_t klen, double* pack);

  /// C[0..mrows) x [0..jlen) (row stride ldc) += packed A * packed B,
  /// where both operands were laid out by this table's pack_a / pack_b
  /// with the same (mrows, klen, jlen). Accumulates each output tile in a
  /// register block over the full klen reduction before touching C.
  void (*gemm_packed)(const double* packa, const double* packb,
                      std::size_t mrows, std::size_t klen, std::size_t jlen,
                      double* c, std::size_t ldc);
};

/// Per-ISA table accessors, defined one per kernels_*.cc TU. Each returns
/// its table when the TU was compiled with the matching ISA enabled, and
/// nullptr otherwise (the TU compiles to a stub on foreign architectures
/// or with an older compiler), so the dispatcher can probe what this
/// binary actually carries. Hardware support is the dispatcher's problem,
/// not these accessors'.
const KernelTable* ScalarKernelTable();  // Never null.
const KernelTable* Avx2KernelTable();
const KernelTable* Avx512KernelTable();
const KernelTable* NeonKernelTable();

}  // namespace simd
}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_KERNELS_H_
