// Direct solvers for small dense systems.
//
// The solvers in this library only ever invert c x c matrices (c = total
// cluster count, tens at most) — e.g. (GᵀG)⁻¹ in the S-update (paper
// Eq. 18) — and diagonal-plus-identity systems. Cholesky covers the SPD
// case; LU with partial pivoting covers the general case.

#ifndef RHCHME_LA_SOLVE_H_
#define RHCHME_LA_SOLVE_H_

#include "la/matrix.h"

namespace rhchme {
namespace la {

/// Cholesky factorisation A = L·Lᵀ of a symmetric positive-definite matrix.
/// Returns the lower-triangular factor, or NumericalError if A is not
/// (numerically) positive definite.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A·X = B for SPD A via Cholesky. B may have multiple columns.
Result<Matrix> SolveSPD(const Matrix& a, const Matrix& b);

/// Solves A·X = B for general square A via LU with partial pivoting.
Result<Matrix> SolveLU(const Matrix& a, const Matrix& b);

/// A⁻¹ for general square A (LU-based). Prefer the Solve* functions when a
/// product with the inverse is all that is needed.
Result<Matrix> Inverse(const Matrix& a);

/// (A + ridge·I)⁻¹·B for symmetric A — the regularised solve used by the
/// S-update where GᵀG may be singular when a cluster empties out.
Result<Matrix> SolveRidged(const Matrix& a, const Matrix& b, double ridge);

/// Determinant via LU (for tests and diagnostics; O(n³)).
Result<double> Determinant(const Matrix& a);

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_SOLVE_H_
