// Compressed-sparse-row matrix.
//
// The inter-type relationship matrix R and pNN affinity graphs are sparse
// (tf-idf blocks, p edges per object). CSR keeps graph construction and
// sparse-dense products cheap; solvers densify only when an algorithm is
// inherently dense (e.g. the error matrix E_R).

#ifndef RHCHME_LA_SPARSE_H_
#define RHCHME_LA_SPARSE_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace la {

/// One (row, col, value) entry used to build a SparseMatrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR matrix. Duplicate triplets are summed at build time;
/// explicit zeros are dropped.
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// Builds from triplets (any order; duplicates summed; zeros pruned).
  static SparseMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping entries with |v| <= prune_tol.
  static SparseMatrix FromDense(const Matrix& dense, double prune_tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Fraction of entries stored: nnz / (rows*cols); 0 for empty shapes.
  double Density() const;

  const std::vector<std::size_t>& row_offsets() const { return row_ptr_; }
  const std::vector<std::size_t>& col_indices() const { return cols_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Value at (i, j) — binary search within the row; O(log nnz_row).
  double At(std::size_t i, std::size_t j) const;

  /// Dense copy.
  Matrix ToDense() const;

  /// Transposed copy (CSR of the transpose; O(nnz)).
  SparseMatrix Transposed() const;

  /// y = A·x.
  std::vector<double> MultiplyVec(const std::vector<double>& x) const;

  /// C = A·B for dense B (resizes `c`).
  void MultiplyDenseInto(const Matrix& b, Matrix* c) const;
  Matrix MultiplyDense(const Matrix& b) const;

  /// C = Aᵀ·B for dense B (resizes `c`; no explicit transpose formed).
  void MultiplyTransposedDenseInto(const Matrix& b, Matrix* c) const;

  /// Per-row sums (degree vector when A is an affinity matrix).
  std::vector<double> RowSums() const;

  double FrobeniusNorm() const;
  double Sum() const;

  /// True when A equals its transpose up to `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;   // size rows_+1
  std::vector<std::size_t> cols_idx_;  // size nnz
  std::vector<double> values_;         // size nnz
};

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_SPARSE_H_
