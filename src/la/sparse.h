// Compressed-sparse-row matrix with a lazily built CSC mirror.
//
// The inter-type relationship matrix R and pNN affinity graphs are sparse
// (tf-idf blocks, p edges per object). CSR keeps graph construction and
// sparse-dense products cheap; solvers densify only when an algorithm is
// inherently dense (e.g. the solver's joint-R residual workspace).
//
// Transposed products (Aᵀ·B, Aᵀ·x) are the awkward case for CSR: the
// natural loop scatters into output rows indexed by the nonzeros'
// columns, which cannot be split across threads without races. The CSC
// mirror — the same nonzeros regrouped by column, rows ascending within
// each column — turns those scatters into gathers that thread cleanly
// over output rows. See BuildCscMirror() for the caching/invalidation
// contract.

#ifndef RHCHME_LA_SPARSE_H_
#define RHCHME_LA_SPARSE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace la {

/// One (row, col, value) entry used to build a SparseMatrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Column-compressed view of a SparseMatrix: the same nonzeros grouped by
/// column, with row indices ascending within each column. Column j owns
/// the slice [col_ptr[j], col_ptr[j+1]) of row_idx/values. Immutable once
/// built — SparseMatrix shares mirrors across copies via shared_ptr.
struct CscMirror {
  std::vector<std::size_t> col_ptr;  // size cols+1
  std::vector<std::size_t> row_idx;  // size nnz
  std::vector<double> values;        // size nnz
};

/// CSR matrix. Duplicate triplets are summed at build time; explicit
/// zeros are dropped. The structure is fixed after construction; the only
/// mutators are value-level (Scale, PruneSmall), and both invalidate the
/// CSC mirror.
///
/// Thread-safety: concurrent const access is safe, including the lazy
/// CSC build (internally synchronised; at most one thread builds, the
/// rest reuse the cached mirror). Mutators require exclusive access, the
/// usual const/non-const contract.
///
/// Determinism: every product accumulates each output element in
/// ascending source-row order with thread-count-independent chunking, so
/// results are bit-identical for any pool size (see
/// MultiplyTransposedDenseInto for the two code paths).
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  // The CSC cache adds a mutex, so the rule-of-five members are spelled
  // out: copies share the (immutable) mirror, moves steal it.
  SparseMatrix(const SparseMatrix& other);
  SparseMatrix& operator=(const SparseMatrix& other);
  SparseMatrix(SparseMatrix&& other) noexcept;
  SparseMatrix& operator=(SparseMatrix&& other) noexcept;
  ~SparseMatrix() = default;

  /// Builds from triplets (any order; duplicates summed; zeros pruned).
  static SparseMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping entries with |v| <= prune_tol.
  static SparseMatrix FromDense(const Matrix& dense, double prune_tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Fraction of entries stored: nnz / (rows*cols); 0 for empty shapes.
  double Density() const;

  const std::vector<std::size_t>& row_offsets() const { return row_ptr_; }
  const std::vector<std::size_t>& col_indices() const { return cols_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Builds (first call) or returns the cached CSC mirror. O(nnz)
  /// counting sort; later transposed products and Transposed() calls
  /// become gather-style and thread over output rows. Call it once on
  /// matrices that feed repeated transposed products; skip it for
  /// one-shot products, which use the deterministic per-chunk-accumulator
  /// fallback instead. The returned reference stays valid until the next
  /// mutation of this matrix.
  ///
  /// Invalidation: Scale() and PruneSmall() drop the cached mirror (the
  /// next BuildCscMirror() rebuilds it). Copies made while a mirror
  /// exists share it; mutating the original later does not affect them.
  const CscMirror& BuildCscMirror() const;

  /// True when a CSC mirror is currently cached (no build is triggered).
  bool HasCscMirror() const;

  /// In-place value mutators. Both invalidate the CSC mirror.
  /// Multiplies every stored value by s (structure unchanged; explicit
  /// zeros may appear when s == 0).
  void Scale(double s);
  /// Removes entries with |v| <= tol; returns how many were dropped.
  std::size_t PruneSmall(double tol);
  /// Replaces NaN/Inf stored values with `value`; returns how many were
  /// replaced (structure unchanged; invalidates the mirror only when a
  /// replacement happened).
  std::size_t ReplaceNonFinite(double value);

  /// Value at (i, j) — binary search within the row; O(log nnz_row).
  double At(std::size_t i, std::size_t j) const;

  /// Dense copy.
  Matrix ToDense() const;

  /// Transposed copy (CSR of the transpose). O(nnz): builds (and
  /// caches) this matrix's CSC mirror, whose arrays are exactly the
  /// transpose's CSR; the result carries this matrix's CSR as its own
  /// ready-made CSC mirror.
  SparseMatrix Transposed() const;

  /// y = A·x.
  std::vector<double> MultiplyVec(const std::vector<double>& x) const;

  /// y = Aᵀ·x (no explicit transpose formed). Gather loop over the CSC
  /// mirror when cached; per-chunk accumulators merged in chunk order
  /// otherwise. Both paths are bit-stable across thread counts.
  std::vector<double> MultiplyTVec(const std::vector<double>& x) const;

  /// C = A·B for dense B (resizes `c`).
  void MultiplyDenseInto(const Matrix& b, Matrix* c) const;
  Matrix MultiplyDense(const Matrix& b) const;

  /// C = Aᵀ·B for dense B (resizes `c`; no explicit transpose formed).
  ///
  /// With a cached CSC mirror, output rows (columns of A) are
  /// independent gathers and the loop threads over them. Without one,
  /// source-row chunks scatter into per-chunk dense accumulators that
  /// are merged in chunk order; chunk boundaries depend only on the
  /// matrix shape, never the pool size, so either path is bit-identical
  /// across thread counts (the two paths may differ from each other in
  /// the last bit — per call site the path is fixed).
  void MultiplyTransposedDenseInto(const Matrix& b, Matrix* c) const;

  /// C = Aᵀ·diag(d)·B for dense B: the transposed product with source row
  /// i scaled by d[i] (requires d.size() == rows(); resizes `c`). Runs the
  /// same two code paths — CSC gather when the mirror is cached, bounded
  /// per-chunk-accumulator scatter otherwise — under the same determinism
  /// contract as MultiplyTransposedDenseInto. The sparse-R solver core's
  /// Mᵀ·G gradient half needs Rᵀ·diag(s)·G without ever materialising the
  /// row-scaled diag(s)·R.
  void MultiplyTransposedScaledDenseInto(const std::vector<double>& d,
                                         const Matrix& b, Matrix* c) const;

  /// Per-row sums (degree vector when A is an affinity matrix).
  std::vector<double> RowSums() const;

  /// Per-row squared Euclidean norms: out[i] = Σ_j a_ij². The sparse-R
  /// solver core caches these once per fit — the analytic residual row
  /// norms ‖q_i‖² = ‖r_i‖² − 2·h_i·k_iᵀ + h_i·(GᵀG)·h_iᵀ start from them.
  std::vector<double> RowNormsSquared() const;

  /// Per-column sums (in-degrees). Ascending-row accumulation per
  /// column on both the CSC and the scan path, so the result is
  /// path-independent.
  std::vector<double> ColSums() const;

  double FrobeniusNorm() const;
  double Sum() const;

  /// True when A equals its transpose up to `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  /// Shared body of the transposed dense products; `row_scale` (length
  /// rows(), may be nullptr for no scaling) multiplies source row i.
  void TransposedDenseProductInto(const double* row_scale, const Matrix& b,
                                  Matrix* c) const;
  std::shared_ptr<const CscMirror> ComputeCsc() const;
  /// Cached mirror if present, nullptr otherwise (does not build).
  std::shared_ptr<const CscMirror> CscIfBuilt() const;
  void InvalidateCscMirror();

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;   // size rows_+1
  std::vector<std::size_t> cols_idx_;  // size nnz
  std::vector<double> values_;         // size nnz

  // Lazily built CSC mirror. The mutex only guards the pointer slot;
  // the pointed-to mirror is immutable.
  mutable std::mutex csc_mu_;
  mutable std::shared_ptr<const CscMirror> csc_;
};

/// Entrywise positive part (|M| + M)/2 of a sparse matrix: keeps the
/// strictly positive entries, drops the rest. A structure-level filter —
/// the ±-split of the multiplicative update (paper Eq. 21) stays sparse,
/// with patterns contained in M's.
SparseMatrix PositivePart(const SparseMatrix& m);

/// Entrywise negative part (|M| - M)/2: the negated strictly negative
/// entries (result is entrywise nonnegative).
SparseMatrix NegativePart(const SparseMatrix& m);

/// tr(Gᵀ L G) against a sparse L — the ensemble-regulariser term of the
/// RHCHME objective evaluated in O(nnz · c). Per-row traces are staged
/// row-indexed and reduced in fixed chunk order, so the value is
/// bit-identical for any pool size. Requires L square with
/// l.rows() == g.rows().
double Sandwich(const Matrix& g, const SparseMatrix& l);

}  // namespace la
}  // namespace rhchme

#endif  // RHCHME_LA_SPARSE_H_
