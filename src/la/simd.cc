// Kernel-table dispatch: CPUID detection, force overrides, one-time
// resolution. This TU is compiled with baseline flags only — it calls the
// per-ISA accessors (la/kernels_*.cc) but never their kernels directly.

#include "la/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "util/logging.h"

namespace rhchme {
namespace la {
namespace simd {
namespace {

/// The resolved table; null until first dispatch. Release/acquire pairs
/// make the pointed-to table's initialization visible to every reader
/// (the tables themselves are constexpr, so this is belt and braces).
std::atomic<const KernelTable*> g_table{nullptr};

/// Serializes resolution and force requests.
std::mutex& ResolveMutex() {
  static std::mutex m;
  return m;
}

const char* const kValidNames = "scalar, avx2, avx512, neon";

/// Compiled-in table for `name`, or null. Does not check CPU support.
const KernelTable* CompiledTableForName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return ScalarKernelTable();
  if (std::strcmp(name, "avx2") == 0) return Avx2KernelTable();
  if (std::strcmp(name, "avx512") == 0) return Avx512KernelTable();
  if (std::strcmp(name, "neon") == 0) return NeonKernelTable();
  return nullptr;
}

bool IsKnownName(const char* name) {
  return std::strcmp(name, "scalar") == 0 || std::strcmp(name, "avx2") == 0 ||
         std::strcmp(name, "avx512") == 0 || std::strcmp(name, "neon") == 0;
}

/// Whether the running CPU can execute `table`'s ISA.
bool CpuSupports(const KernelTable& table, const CpuFeatures& f) {
  switch (table.isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return f.avx2 && f.fma;
    case Isa::kAvx512:
      return f.avx512f && f.avx512dq;
    case Isa::kNeon:
      return f.neon;
  }
  return false;
}

/// Publishes `table` as the dispatched table and logs the decision once.
/// Caller holds ResolveMutex().
const KernelTable* Publish(const KernelTable* table, const char* how) {
  RHCHME_LOG(kInfo) << "simd: dispatching kernel table '" << table->name
                    << "' (" << how << "; detected '" << DetectedIsaName()
                    << "')";
  g_table.store(table, std::memory_order_release);
  return table;
}

/// Resolves from RHCHME_FORCE_ISA or auto-detection. Caller holds
/// ResolveMutex(). Exits the process on an invalid force request: a
/// pinned-reproduction run must never silently run a different ISA.
const KernelTable* ResolveLocked() {
  const char* forced = std::getenv("RHCHME_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    if (!IsKnownName(forced)) {
      std::fprintf(stderr,
                   "rhchme: invalid RHCHME_FORCE_ISA='%s' (valid: %s)\n",
                   forced, kValidNames);
      std::exit(1);
    }
    const KernelTable* t = CompiledTableForName(forced);
    if (t == nullptr) {
      std::fprintf(stderr,
                   "rhchme: RHCHME_FORCE_ISA='%s' is not compiled into this "
                   "binary\n",
                   forced);
      std::exit(1);
    }
    if (!CpuSupports(*t, DetectCpuFeatures())) {
      std::fprintf(stderr,
                   "rhchme: RHCHME_FORCE_ISA='%s' is not supported by this "
                   "CPU (detected '%s')\n",
                   forced, DetectedIsaName());
      std::exit(1);
    }
    return Publish(t, "RHCHME_FORCE_ISA");
  }
  return Publish(ResolveTable(DetectCpuFeatures()), "auto-detected");
}

}  // namespace

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  f.avx512dq = __builtin_cpu_supports("avx512dq") != 0;
#elif defined(__aarch64__)
  f.neon = true;
#endif
  return f;
}

const KernelTable* ResolveTable(const CpuFeatures& features) {
  if (features.avx512f && features.avx512dq) {
    if (const KernelTable* t = Avx512KernelTable()) return t;
  }
  if (features.avx2 && features.fma) {
    if (const KernelTable* t = Avx2KernelTable()) return t;
  }
  if (features.neon) {
    if (const KernelTable* t = NeonKernelTable()) return t;
  }
  return ScalarKernelTable();
}

const KernelTable& Table() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    std::lock_guard<std::mutex> lock(ResolveMutex());
    t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) t = ResolveLocked();
  }
  return *t;
}

Status ForceIsa(const char* name) {
  if (name == nullptr || !IsKnownName(name)) {
    return Status::InvalidArgument(
        std::string("unknown ISA '") + (name ? name : "") +
        "' (valid: " + kValidNames + ")");
  }
  const KernelTable* t = CompiledTableForName(name);
  if (t == nullptr) {
    return Status::FailedPrecondition(
        std::string("ISA '") + name + "' is not compiled into this binary");
  }
  if (!CpuSupports(*t, DetectCpuFeatures())) {
    return Status::FailedPrecondition(
        std::string("ISA '") + name + "' is not supported by this CPU " +
        "(detected '" + DetectedIsaName() + "')");
  }
  std::lock_guard<std::mutex> lock(ResolveMutex());
  const KernelTable* current = g_table.load(std::memory_order_acquire);
  if (current != nullptr) {
    if (current == t) return Status::OK();
    return Status::FailedPrecondition(
        std::string("kernel table already resolved to '") + current->name +
        "'; --force_isa must be applied before first kernel use");
  }
  Publish(t, "--force_isa");
  return Status::OK();
}

const KernelTable* TableForName(const char* name) {
  if (name == nullptr) return nullptr;
  const KernelTable* t = CompiledTableForName(name);
  if (t == nullptr || !CpuSupports(*t, DetectCpuFeatures())) return nullptr;
  return t;
}

const char* IsaName() { return Table().name; }

const char* DetectedIsaName() {
  return ResolveTable(DetectCpuFeatures())->name;
}

}  // namespace simd
}  // namespace la
}  // namespace rhchme
