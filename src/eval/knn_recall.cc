#include "eval/knn_recall.h"

#include <algorithm>
#include <vector>

namespace rhchme {
namespace eval {

Result<double> KnnRecall(const graph::KnnNeighborLists& approx,
                         const graph::KnnNeighborLists& exact) {
  if (approx.size() != exact.size()) {
    return Status::InvalidArgument("recall needs equally many lists");
  }
  std::size_t hits = 0, total = 0;
  std::vector<std::size_t> truth;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    truth.clear();
    for (const graph::KnnNeighbor& e : exact[i]) truth.push_back(e.index);
    std::sort(truth.begin(), truth.end());
    total += truth.size();
    for (const graph::KnnNeighbor& e : approx[i]) {
      if (std::binary_search(truth.begin(), truth.end(), e.index)) ++hits;
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

Result<double> RecallAgainstExact(const la::Matrix& points,
                                  const graph::KnnGraphOptions& opts) {
  Result<graph::KnnNeighborLists> approx =
      graph::BuildKnnNeighbors(points, opts);
  if (!approx.ok()) return approx.status();
  const std::size_t p =
      std::min(opts.p, points.rows() > 0 ? points.rows() - 1 : 0);
  graph::KnnNeighborLists exact = graph::ExactKnnNeighbors(
      points, p, graph::KnnMetric::kSquaredEuclidean);
  return KnnRecall(approx.value(), exact);
}

}  // namespace eval
}  // namespace rhchme
