#include "eval/scenario.h"

#include <algorithm>
#include <cstdio>

#include "baselines/drcc.h"
#include "baselines/rmc.h"
#include "baselines/snmtf.h"
#include "baselines/src_clustering.h"
#include "core/rhchme_solver.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "la/simd.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace eval {

const char* ScenarioWorkloadName(ScenarioWorkload w) {
  switch (w) {
    case ScenarioWorkload::kCorpus:
      return "corpus";
    case ScenarioWorkload::kBlockWorld:
      return "blockworld";
  }
  return "unknown";
}

const char* ImbalanceKindName(ImbalanceKind k) {
  switch (k) {
    case ImbalanceKind::kBalanced:
      return "balanced";
    case ImbalanceKind::kSkewed:
      return "skewed";
  }
  return "unknown";
}

const char* CorruptionModeName(data::RowCorruptionMode m) {
  switch (m) {
    case data::RowCorruptionMode::kSpike:
      return "spike";
    case data::RowCorruptionMode::kNonFinite:
      return "nonfinite";
  }
  return "unknown";
}

std::vector<RhchmeVariant> DefaultRhchmeVariants() {
  return {{"implicit", "exact"},
          {"sparse", "exact"},
          {"explicit", "exact"},
          {"implicit", "descent"}};
}

namespace {

const std::vector<std::string>& KnownMethods() {
  static const std::vector<std::string> kMethods = {"RHCHME", "DR-T", "SRC",
                                                    "SNMTF", "RMC"};
  return kMethods;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

Status ScenarioGridOptions::Validate() const {
  if (corruption_fractions.empty() || sparsity_levels.empty() ||
      imbalances.empty() || seeds.empty() || corruption_modes.empty()) {
    return Status::InvalidArgument("every grid axis needs at least one value");
  }
  for (double c : corruption_fractions) {
    if (!(c >= 0.0 && c <= 1.0)) {
      return Status::InvalidArgument("corruption fractions must be in [0,1]");
    }
  }
  for (double s : sparsity_levels) {
    if (!(s >= 0.0 && s < 1.0)) {
      return Status::InvalidArgument("sparsity levels must be in [0,1)");
    }
  }
  for (const std::string& m : methods) {
    if (!Contains(KnownMethods(), m)) {
      return Status::InvalidArgument("unknown method: " + m);
    }
  }
  for (const RhchmeVariant& v : rhchme_variants) {
    if (v.core != "implicit" && v.core != "sparse" && v.core != "explicit") {
      return Status::InvalidArgument("unknown RHCHME core: " + v.core);
    }
    if (v.backend != "exact" && v.backend != "descent") {
      return Status::InvalidArgument("unknown graph backend: " + v.backend);
    }
  }
  if (n_classes < 2) {
    return Status::InvalidArgument("grid needs at least two classes");
  }
  if (docs_per_class < 2 * n_classes) {
    return Status::InvalidArgument(
        "docs_per_class too small for the skewed 4:2:1 shape");
  }
  if (objects_per_type < 2 * n_classes) {
    return Status::InvalidArgument(
        "objects_per_type too small for the skewed 4:2:1 shape");
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Accumulates one fit outcome per replicate into a seed-averaged cell.
struct MetricSum {
  double nmi = 0.0, ari = 0.0, purity = 0.0, fscore = 0.0, seconds = 0.0;
  double recovery = 0.0;  ///< FitDiagnostics::RecoveryEvents(); RHCHME only.
  int n = 0;
};

Status ScoreInto(const std::vector<std::size_t>& truth,
                 const std::vector<std::size_t>& predicted, double seconds,
                 MetricSum* acc) {
  Result<double> nmi = Nmi(truth, predicted);
  if (!nmi.ok()) return nmi.status();
  Result<double> ari = AdjustedRandIndex(truth, predicted);
  if (!ari.ok()) return ari.status();
  Result<double> purity = Purity(truth, predicted);
  if (!purity.ok()) return purity.status();
  Result<double> fscore = FScore(truth, predicted);
  if (!fscore.ok()) return fscore.status();
  acc->nmi += nmi.value();
  acc->ari += ari.value();
  acc->purity += purity.value();
  acc->fscore += fscore.value();
  acc->seconds += seconds;
  ++acc->n;
  return Status::OK();
}

/// 4:2:1 skew of `base` over `count` slots, floored at n_classes-safe
/// minimums so every class/type keeps enough objects to cluster.
std::vector<std::size_t> SkewedSizes(std::size_t base, std::size_t count,
                                     std::size_t floor_size) {
  static const double kWeights[] = {2.0, 1.0, 0.5};
  std::vector<std::size_t> sizes(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double w = kWeights[i % 3];
    sizes[i] = std::max<std::size_t>(
        floor_size, static_cast<std::size_t>(w * static_cast<double>(base)));
  }
  return sizes;
}

Result<data::MultiTypeRelationalData> MakeCellData(
    const ScenarioGridOptions& opts, ImbalanceKind imbalance,
    double corruption, data::RowCorruptionMode corruption_mode,
    double sparsity, uint64_t seed) {
  if (opts.workload == ScenarioWorkload::kCorpus) {
    data::SyntheticCorpusOptions gen;
    gen.docs_per_class =
        imbalance == ImbalanceKind::kBalanced
            ? std::vector<std::size_t>(opts.n_classes, opts.docs_per_class)
            : SkewedSizes(opts.docs_per_class, opts.n_classes,
                          /*floor_size=*/4);
    gen.n_terms = opts.n_terms;
    gen.n_concepts = opts.n_concepts;
    gen.topics_per_class = 2;
    gen.core_terms_per_topic = 6;
    gen.doc_length_mean = 60.0;
    gen.corrupted_doc_fraction = corruption;
    gen.corruption_mode = corruption_mode;
    gen.relation_dropout = sparsity;
    gen.seed = seed;
    return data::GenerateSyntheticCorpus(gen);
  }
  data::BlockWorldOptions gen;
  gen.objects_per_type =
      imbalance == ImbalanceKind::kBalanced
          ? std::vector<std::size_t>(3, opts.objects_per_type)
          : SkewedSizes(opts.objects_per_type, 3,
                        /*floor_size=*/opts.n_classes * 2);
  gen.n_classes = opts.n_classes;
  gen.dropout = sparsity;
  gen.corrupted_fraction = corruption;
  gen.corruption_mode = corruption_mode;
  gen.seed = seed;
  return data::GenerateBlockWorld(gen);
}

/// Paper-tuned settings per workload: tf-idf corpora use the paper's
/// lambda/beta magnitudes, the O(1)-magnitude block world the webpage
/// example's (regularisers scale with ||R||²_F).
core::RhchmeOptions BaseRhchmeOptions(const ScenarioGridOptions& opts) {
  core::RhchmeOptions o;
  o.max_iterations = opts.max_iterations;
  if (opts.workload == ScenarioWorkload::kBlockWorld) {
    o.lambda = 5.0;
    o.beta = 500.0;
  }
  return o;
}

/// One (method, variant) slot of a cell with its replicate accumulator.
struct MethodSlot {
  std::string method;
  std::string variant;  ///< Empty for baselines.
  RhchmeVariant rhchme;
  MetricSum sum;
};

Status RunBaselineReplicate(const std::string& method,
                            const data::MultiTypeRelationalData& d,
                            const ScenarioGridOptions& opts, uint64_t seed,
                            MetricSum* acc) {
  const std::vector<std::size_t>& truth = d.Type(0).labels;
  if (method == "DR-T") {
    baselines::DrccOptions o;
    o.row_clusters = d.Type(0).clusters;
    o.col_clusters = d.Type(1).clusters;
    o.max_iterations = opts.max_iterations;
    o.seed = seed;
    Result<baselines::DrccResult> fit = baselines::RunDrcc(d.Relation(0, 1), o);
    if (!fit.ok()) return fit.status();
    return ScoreInto(truth, fit.value().row_labels, fit.value().seconds, acc);
  }
  if (method == "SRC") {
    baselines::SrcOptions o;
    o.max_iterations = opts.max_iterations;
    o.seed = seed;
    Result<fact::HoccResult> fit = baselines::RunSrc(d, o);
    if (!fit.ok()) return fit.status();
    return ScoreInto(truth, fit.value().labels[0], fit.value().seconds, acc);
  }
  if (method == "SNMTF") {
    baselines::SnmtfOptions o;
    if (opts.workload == ScenarioWorkload::kBlockWorld) o.lambda = 1.0;
    o.max_iterations = opts.max_iterations;
    o.seed = seed;
    Result<fact::HoccResult> fit = baselines::RunSnmtf(d, o);
    if (!fit.ok()) return fit.status();
    return ScoreInto(truth, fit.value().labels[0], fit.value().seconds, acc);
  }
  if (method == "RMC") {
    baselines::RmcOptions o;
    if (opts.workload == ScenarioWorkload::kBlockWorld) o.lambda = 1.0;
    o.max_iterations = opts.max_iterations;
    o.seed = seed;
    Result<baselines::RmcResult> fit = baselines::RunRmc(d, o);
    if (!fit.ok()) return fit.status();
    return ScoreInto(truth, fit.value().hocc.labels[0],
                     fit.value().hocc.seconds, acc);
  }
  return Status::InvalidArgument("unknown baseline: " + method);
}

void ApplyVariant(const RhchmeVariant& v, core::RhchmeOptions* o) {
  if (v.core == "sparse") {
    o->sparse_r = core::SparseRMode::kAlways;
  } else {
    o->sparse_r = core::SparseRMode::kNever;
    o->explicit_materialization = v.core == "explicit";
  }
  o->ensemble.knn.backend = v.backend == "descent"
                                ? graph::KnnBackend::kNNDescent
                                : graph::KnnBackend::kExact;
}

/// Runs every RHCHME variant slot on one replicate. The ensemble is
/// shared across solver cores of the same backend (it does not depend on
/// the core), and its build time is charged to each of them so `seconds`
/// reflects a full fit.
Status RunRhchmeReplicate(std::vector<MethodSlot*>& slots,
                          const data::MultiTypeRelationalData& d,
                          const ScenarioGridOptions& opts, uint64_t seed) {
  const std::vector<std::size_t>& truth = d.Type(0).labels;
  const fact::BlockStructure blocks = fact::BuildBlockStructure(d);
  for (const std::string& backend : {std::string("exact"),
                                     std::string("descent")}) {
    std::vector<MethodSlot*> backend_slots;
    for (MethodSlot* s : slots) {
      if (s->rhchme.backend == backend) backend_slots.push_back(s);
    }
    if (backend_slots.empty()) continue;

    core::RhchmeOptions base = BaseRhchmeOptions(opts);
    ApplyVariant(backend_slots.front()->rhchme, &base);
    Stopwatch ensemble_watch;
    Result<core::HeterogeneousEnsemble> ensemble =
        core::BuildEnsemble(d, blocks, base.ensemble);
    if (!ensemble.ok()) return ensemble.status();
    const double ensemble_seconds = ensemble_watch.ElapsedSeconds();

    for (MethodSlot* s : backend_slots) {
      core::RhchmeOptions o = BaseRhchmeOptions(opts);
      ApplyVariant(s->rhchme, &o);
      o.seed = seed;
      core::Rhchme solver(o);
      Result<core::RhchmeResult> fit = solver.FitWithEnsemble(d, *ensemble);
      if (!fit.ok()) return fit.status();
      RHCHME_RETURN_IF_ERROR(
          ScoreInto(truth, fit.value().hocc.labels[0],
                    fit.value().hocc.seconds + ensemble_seconds, &s->sum));
      s->sum.recovery +=
          static_cast<double>(fit.value().diagnostics.RecoveryEvents());
    }
  }
  return Status::OK();
}

}  // namespace

Result<ScenarioReport> RunScenarioGrid(const ScenarioGridOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  const std::vector<std::string>& methods =
      opts.methods.empty() ? KnownMethods() : opts.methods;
  const std::vector<RhchmeVariant> variants =
      opts.rhchme_variants.empty() ? DefaultRhchmeVariants()
                                   : opts.rhchme_variants;

  ScenarioReport report;
  report.grid = opts;

  for (ImbalanceKind imbalance : opts.imbalances) {
    for (data::RowCorruptionMode mode : opts.corruption_modes) {
      const bool nonfinite = mode == data::RowCorruptionMode::kNonFinite;
      for (double corruption : opts.corruption_fractions) {
        // A kNonFinite cell at corruption 0 plants nothing — it would
        // duplicate the spike cell bit-for-bit, so it is skipped.
        if (nonfinite && corruption == 0.0) continue;
        for (double sparsity : opts.sparsity_levels) {
          // One slot per (method, variant); RHCHME expands to its
          // variants. Baselines have no numerical guards — on NaN/Inf
          // input they only crash or emit NaN metrics — so kNonFinite
          // cells run the guarded RHCHME variants alone.
          std::vector<MethodSlot> slots;
          for (const std::string& m : methods) {
            if (m == "RHCHME") {
              for (const RhchmeVariant& v : variants) {
                slots.push_back({m, v.Name(), v, {}});
              }
            } else if (!nonfinite) {
              slots.push_back({m, "", {}, {}});
            }
          }
          if (slots.empty()) continue;

          for (uint64_t seed : opts.seeds) {
            Result<data::MultiTypeRelationalData> d =
                MakeCellData(opts, imbalance, corruption, mode, sparsity,
                             seed);
            if (!d.ok()) return d.status();

            std::vector<MethodSlot*> rhchme_slots;
            for (MethodSlot& s : slots) {
              if (s.method == "RHCHME") rhchme_slots.push_back(&s);
            }
            if (!rhchme_slots.empty()) {
              RHCHME_RETURN_IF_ERROR(
                  RunRhchmeReplicate(rhchme_slots, d.value(), opts, seed));
            }
            for (MethodSlot& s : slots) {
              if (s.method == "RHCHME") continue;
              RHCHME_RETURN_IF_ERROR(RunBaselineReplicate(
                  s.method, d.value(), opts, seed, &s.sum));
            }
          }

          for (const MethodSlot& s : slots) {
            ScenarioCell cell;
            cell.workload = opts.workload;
            cell.imbalance = imbalance;
            cell.corruption = corruption;
            cell.corruption_mode = mode;
            cell.sparsity = sparsity;
            cell.method = s.method;
            cell.variant = s.variant;
            const double n = static_cast<double>(s.sum.n);
            cell.nmi = s.sum.nmi / n;
            cell.ari = s.sum.ari / n;
            cell.purity = s.sum.purity / n;
            cell.fscore = s.sum.fscore / n;
            cell.seconds = s.sum.seconds / n;
            cell.recovery_events = s.sum.recovery / n;
            cell.replicates = s.sum.n;
            report.cells.push_back(cell);
          }
        }
      }
    }
  }
  return report;
}

Status WriteScenarioReportJson(const ScenarioReport& report,
                               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  const ScenarioGridOptions& g = report.grid;
  std::fprintf(f, "{\n  \"context\": {\n");
#ifdef NDEBUG
  std::fprintf(f, "    \"rhchme_build_type\": \"release\",\n");
#else
  std::fprintf(f, "    \"rhchme_build_type\": \"debug\",\n");
#endif
  // The runtime-dispatched table the run executed (after any force
  // override) and what auto-detection would have picked; the compare
  // gate keys on the former.
  std::fprintf(f, "    \"rhchme_simd\": \"%s\",\n", la::simd::IsaName());
  std::fprintf(f, "    \"rhchme_simd_detected\": \"%s\",\n",
               la::simd::DetectedIsaName());
  std::fprintf(f, "    \"workload\": \"%s\",\n",
               ScenarioWorkloadName(g.workload));
  auto write_doubles = [f](const char* key, const std::vector<double>& v) {
    std::fprintf(f, "    \"%s\": [", key);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::fprintf(f, "%s%g", i ? ", " : "", v[i]);
    }
    std::fprintf(f, "],\n");
  };
  write_doubles("corruption_fractions", g.corruption_fractions);
  std::fprintf(f, "    \"corruption_modes\": [");
  for (std::size_t i = 0; i < g.corruption_modes.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                 CorruptionModeName(g.corruption_modes[i]));
  }
  std::fprintf(f, "],\n");
  write_doubles("sparsity_levels", g.sparsity_levels);
  std::fprintf(f, "    \"imbalances\": [");
  for (std::size_t i = 0; i < g.imbalances.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                 ImbalanceKindName(g.imbalances[i]));
  }
  std::fprintf(f, "],\n    \"seeds\": [");
  for (std::size_t i = 0; i < g.seeds.size(); ++i) {
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(g.seeds[i]));
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "    \"max_iterations\": %d\n", g.max_iterations);
  std::fprintf(f, "  },\n  \"cells\": [\n");
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const ScenarioCell& c = report.cells[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"imbalance\": \"%s\", "
        "\"corruption\": %g, \"corruption_mode\": \"%s\", "
        "\"sparsity\": %g, \"method\": \"%s\", "
        "\"variant\": \"%s\", \"nmi\": %.17g, \"ari\": %.17g, "
        "\"purity\": %.17g, \"fscore\": %.17g, \"seconds\": %.6g, "
        "\"recovery_events\": %g, \"replicates\": %d}%s\n",
        ScenarioWorkloadName(c.workload), ImbalanceKindName(c.imbalance),
        c.corruption, CorruptionModeName(c.corruption_mode), c.sparsity,
        c.method.c_str(), c.variant.c_str(), c.nmi, c.ari, c.purity,
        c.fscore, c.seconds, c.recovery_events, c.replicates,
        i + 1 < report.cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (std::fclose(f) != 0) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace eval
}  // namespace rhchme
