// Experiment harness: runs the paper's seven methods (DR-T, DR-C, DR-TC,
// SRC, SNMTF, RMC, RHCHME) on a dataset and scores document clustering
// with FScore/NMI plus wall-clock time — the grid behind Tables III–V.

#ifndef RHCHME_EVAL_EXPERIMENT_H_
#define RHCHME_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baselines/drcc.h"
#include "baselines/rmc.h"
#include "baselines/snmtf.h"
#include "baselines/src_clustering.h"
#include "core/rhchme_solver.h"
#include "data/multitype_data.h"
#include "eval/metrics.h"

namespace rhchme {
namespace eval {

struct Scores {
  double fscore = 0.0;
  double nmi = 0.0;
};

/// FScore + NMI against ground truth.
Result<Scores> ScoreLabels(const std::vector<std::size_t>& truth,
                           const std::vector<std::size_t>& predicted);

/// One (method, dataset) cell of Tables III–V.
struct MethodRun {
  std::string method;
  std::string dataset;
  Scores scores;        ///< Document-type clustering quality.
  double seconds = 0.0; ///< Fit wall-clock (Table V).
  int iterations = 0;
  bool converged = false;
};

/// Method configurations, defaulted to the paper's tuned settings
/// (§IV.B: p = 5 for SNMTF/RHCHME, six RMC candidates, lambda = 250,
/// gamma = 25, alpha = 1, beta = 50).
struct PaperBenchOptions {
  core::RhchmeOptions rhchme;
  baselines::SnmtfOptions snmtf;
  baselines::RmcOptions rmc;
  baselines::SrcOptions src;
  baselines::DrccOptions drcc;
  /// Subset of {"DR-T","DR-C","DR-TC","SRC","SNMTF","RMC","RHCHME"};
  /// empty runs all (DR-C/DR-TC require a 3rd type and are skipped
  /// otherwise).
  std::vector<std::string> methods;
  /// Independent runs per method (seeds seed_base .. seed_base+restarts-1);
  /// scores and times are averaged. Multiplicative-update methods are
  /// init-sensitive, so the paper-table benches use 3. RHCHME's manifold
  /// ensemble is learned once per dataset and shared across restarts.
  int restarts = 1;
  uint64_t seed_base = 0;
};

/// Runs the configured methods on `data` (type 0 must be the documents
/// and carry ground-truth labels). Returns one MethodRun per method.
Result<std::vector<MethodRun>> RunPaperMethods(
    const data::MultiTypeRelationalData& data, const std::string& dataset_name,
    const PaperBenchOptions& opts);

}  // namespace eval
}  // namespace rhchme

#endif  // RHCHME_EVAL_EXPERIMENT_H_
