#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace rhchme {
namespace eval {
namespace {

/// Maps arbitrary label values onto 0..k-1.
std::vector<std::size_t> Compact(const std::vector<std::size_t>& labels,
                                 std::size_t* k_out) {
  std::map<std::size_t, std::size_t> remap;
  std::vector<std::size_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = remap.emplace(labels[i], remap.size());
    out[i] = it->second;
  }
  *k_out = remap.size();
  return out;
}

}  // namespace

Result<ContingencyTable> ContingencyTable::Build(
    const std::vector<std::size_t>& truth,
    const std::vector<std::size_t>& predicted) {
  if (truth.empty() || truth.size() != predicted.size()) {
    return Status::InvalidArgument(
        "metrics need equal, nonzero label vectors");
  }
  ContingencyTable t;
  std::size_t n_classes = 0, n_clusters = 0;
  const std::vector<std::size_t> tc = Compact(truth, &n_classes);
  const std::vector<std::size_t> pc = Compact(predicted, &n_clusters);
  t.class_sizes_.assign(n_classes, 0);
  t.cluster_sizes_.assign(n_clusters, 0);
  t.counts_.assign(n_classes * n_clusters, 0);
  t.total_ = truth.size();
  for (std::size_t i = 0; i < tc.size(); ++i) {
    ++t.class_sizes_[tc[i]];
    ++t.cluster_sizes_[pc[i]];
    ++t.counts_[tc[i] * n_clusters + pc[i]];
  }
  return t;
}

Result<double> FScore(const std::vector<std::size_t>& truth,
                      const std::vector<std::size_t>& predicted) {
  Result<ContingencyTable> table = ContingencyTable::Build(truth, predicted);
  if (!table.ok()) return table.status();
  const ContingencyTable& t = table.value();
  const double n = static_cast<double>(t.total());
  double score = 0.0;
  for (std::size_t j = 0; j < t.num_classes(); ++j) {
    const double nj = static_cast<double>(t.class_size(j));
    double best = 0.0;
    for (std::size_t l = 0; l < t.num_clusters(); ++l) {
      const double njl = static_cast<double>(t.joint(j, l));
      if (njl == 0.0) continue;
      const double nl = static_cast<double>(t.cluster_size(l));
      const double recall = njl / nj;
      const double precision = njl / nl;
      best = std::max(best,
                      2.0 * recall * precision / (recall + precision));
    }
    score += (nj / n) * best;
  }
  return score;
}

Result<double> Nmi(const std::vector<std::size_t>& truth,
                   const std::vector<std::size_t>& predicted) {
  Result<ContingencyTable> table = ContingencyTable::Build(truth, predicted);
  if (!table.ok()) return table.status();
  const ContingencyTable& t = table.value();
  const double n = static_cast<double>(t.total());

  double h_class = 0.0, h_cluster = 0.0, mi = 0.0;
  for (std::size_t j = 0; j < t.num_classes(); ++j) {
    const double p = static_cast<double>(t.class_size(j)) / n;
    if (p > 0.0) h_class -= p * std::log(p);
  }
  for (std::size_t l = 0; l < t.num_clusters(); ++l) {
    const double p = static_cast<double>(t.cluster_size(l)) / n;
    if (p > 0.0) h_cluster -= p * std::log(p);
  }
  for (std::size_t j = 0; j < t.num_classes(); ++j) {
    for (std::size_t l = 0; l < t.num_clusters(); ++l) {
      const double njl = static_cast<double>(t.joint(j, l));
      if (njl == 0.0) continue;
      const double pj = static_cast<double>(t.class_size(j));
      const double pl = static_cast<double>(t.cluster_size(l));
      mi += (njl / n) * std::log(n * njl / (pj * pl));
    }
  }
  if (h_class <= 0.0 || h_cluster <= 0.0) {
    // One side is a single block: identical partitions iff both are.
    return (t.num_classes() == 1 && t.num_clusters() == 1) ? 1.0 : 0.0;
  }
  return std::clamp(mi / std::sqrt(h_class * h_cluster), 0.0, 1.0);
}

Result<double> Purity(const std::vector<std::size_t>& truth,
                      const std::vector<std::size_t>& predicted) {
  Result<ContingencyTable> table = ContingencyTable::Build(truth, predicted);
  if (!table.ok()) return table.status();
  const ContingencyTable& t = table.value();
  std::size_t correct = 0;
  for (std::size_t l = 0; l < t.num_clusters(); ++l) {
    std::size_t best = 0;
    for (std::size_t j = 0; j < t.num_classes(); ++j) {
      best = std::max(best, t.joint(j, l));
    }
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(t.total());
}

Result<double> AdjustedRandIndex(const std::vector<std::size_t>& truth,
                                 const std::vector<std::size_t>& predicted) {
  Result<ContingencyTable> table = ContingencyTable::Build(truth, predicted);
  if (!table.ok()) return table.status();
  const ContingencyTable& t = table.value();
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };

  double sum_joint = 0.0, sum_class = 0.0, sum_cluster = 0.0;
  for (std::size_t j = 0; j < t.num_classes(); ++j) {
    sum_class += choose2(static_cast<double>(t.class_size(j)));
    for (std::size_t l = 0; l < t.num_clusters(); ++l) {
      sum_joint += choose2(static_cast<double>(t.joint(j, l)));
    }
  }
  for (std::size_t l = 0; l < t.num_clusters(); ++l) {
    sum_cluster += choose2(static_cast<double>(t.cluster_size(l)));
  }
  const double total2 = choose2(static_cast<double>(t.total()));
  if (total2 == 0.0) return 0.0;
  const double expected = sum_class * sum_cluster / total2;
  const double max_index = 0.5 * (sum_class + sum_cluster);
  // max_index == expected only when both partitions are all-singletons or
  // both are a single cluster — identical trivial partitions. Score them
  // as perfect agreement, matching the NMI single-block convention.
  if (max_index - expected == 0.0) return 1.0;
  return (sum_joint - expected) / (max_index - expected);
}

}  // namespace eval
}  // namespace rhchme
