#include "eval/experiment.h"

#include "util/stopwatch.h"

#include <algorithm>

namespace rhchme {
namespace eval {

Result<Scores> ScoreLabels(const std::vector<std::size_t>& truth,
                           const std::vector<std::size_t>& predicted) {
  Result<double> f = FScore(truth, predicted);
  if (!f.ok()) return f.status();
  Result<double> n = Nmi(truth, predicted);
  if (!n.ok()) return n.status();
  return Scores{f.value(), n.value()};
}

namespace {

bool WantMethod(const PaperBenchOptions& opts, const std::string& name) {
  if (opts.methods.empty()) return true;
  return std::find(opts.methods.begin(), opts.methods.end(), name) !=
         opts.methods.end();
}

/// Accumulates per-restart outcomes into one averaged MethodRun.
class RunAverager {
 public:
  RunAverager(std::string method, std::string dataset)
      : run_{std::move(method), std::move(dataset), {}, 0.0, 0, true} {}

  void Add(const Scores& scores, double seconds, int iterations,
           bool converged) {
    run_.scores.fscore += scores.fscore;
    run_.scores.nmi += scores.nmi;
    run_.seconds += seconds;
    run_.iterations += iterations;
    run_.converged = run_.converged && converged;
    ++count_;
  }

  MethodRun Finish() {
    MethodRun out = run_;
    if (count_ > 0) {
      out.scores.fscore /= count_;
      out.scores.nmi /= count_;
      out.seconds /= count_;
      out.iterations /= count_;
    }
    return out;
  }

 private:
  MethodRun run_;
  int count_ = 0;
};

/// Runs one DRCC variant (averaged over restarts).
Result<MethodRun> RunDrccVariant(const la::Matrix& x,
                                 const std::vector<std::size_t>& truth,
                                 std::size_t row_clusters,
                                 std::size_t col_clusters,
                                 const std::string& name,
                                 const std::string& dataset,
                                 const PaperBenchOptions& bench) {
  RunAverager avg(name, dataset);
  for (int r = 0; r < bench.restarts; ++r) {
    baselines::DrccOptions opts = bench.drcc;
    opts.row_clusters = row_clusters;
    opts.col_clusters = col_clusters;
    opts.seed = bench.seed_base + static_cast<uint64_t>(r);
    Result<baselines::DrccResult> fit = baselines::RunDrcc(x, opts);
    if (!fit.ok()) return fit.status();
    Result<Scores> scores = ScoreLabels(truth, fit.value().row_labels);
    if (!scores.ok()) return scores.status();
    avg.Add(scores.value(), fit.value().seconds, fit.value().iterations,
            fit.value().converged);
  }
  return avg.Finish();
}

}  // namespace

Result<std::vector<MethodRun>> RunPaperMethods(
    const data::MultiTypeRelationalData& data, const std::string& dataset_name,
    const PaperBenchOptions& opts) {
  RHCHME_RETURN_IF_ERROR(data.Validate());
  if (opts.restarts < 1) {
    return Status::InvalidArgument("restarts must be >= 1");
  }
  if (data.Type(0).labels.empty()) {
    return Status::InvalidArgument(
        "type 0 (documents) must carry ground-truth labels");
  }
  const std::vector<std::size_t>& truth = data.Type(0).labels;
  const std::size_t doc_clusters = data.Type(0).clusters;
  const bool has_concepts = data.NumTypes() >= 3 && data.HasRelation(0, 2);

  std::vector<MethodRun> runs;

  if (WantMethod(opts, "DR-T") && data.HasRelation(0, 1)) {
    Result<MethodRun> run = RunDrccVariant(
        data.Relation(0, 1), truth, doc_clusters, data.Type(1).clusters,
        "DR-T", dataset_name, opts);
    if (!run.ok()) return run.status();
    runs.push_back(run.value());
  }
  if (WantMethod(opts, "DR-C") && has_concepts) {
    Result<MethodRun> run = RunDrccVariant(
        data.Relation(0, 2), truth, doc_clusters, data.Type(2).clusters,
        "DR-C", dataset_name, opts);
    if (!run.ok()) return run.status();
    runs.push_back(run.value());
  }
  if (WantMethod(opts, "DR-TC") && has_concepts && data.HasRelation(0, 1)) {
    const la::Matrix x =
        la::HConcat(data.Relation(0, 1), data.Relation(0, 2));
    Result<MethodRun> run = RunDrccVariant(
        x, truth, doc_clusters,
        data.Type(1).clusters + data.Type(2).clusters, "DR-TC", dataset_name,
        opts);
    if (!run.ok()) return run.status();
    runs.push_back(run.value());
  }

  if (WantMethod(opts, "SRC")) {
    RunAverager avg("SRC", dataset_name);
    for (int r = 0; r < opts.restarts; ++r) {
      baselines::SrcOptions o = opts.src;
      o.seed = opts.seed_base + static_cast<uint64_t>(r);
      Result<fact::HoccResult> fit = baselines::RunSrc(data, o);
      if (!fit.ok()) return fit.status();
      Result<Scores> scores = ScoreLabels(truth, fit.value().labels[0]);
      if (!scores.ok()) return scores.status();
      avg.Add(scores.value(), fit.value().seconds, fit.value().iterations,
              fit.value().converged);
    }
    runs.push_back(avg.Finish());
  }
  if (WantMethod(opts, "SNMTF")) {
    RunAverager avg("SNMTF", dataset_name);
    for (int r = 0; r < opts.restarts; ++r) {
      baselines::SnmtfOptions o = opts.snmtf;
      o.seed = opts.seed_base + static_cast<uint64_t>(r);
      Result<fact::HoccResult> fit = baselines::RunSnmtf(data, o);
      if (!fit.ok()) return fit.status();
      Result<Scores> scores = ScoreLabels(truth, fit.value().labels[0]);
      if (!scores.ok()) return scores.status();
      avg.Add(scores.value(), fit.value().seconds, fit.value().iterations,
              fit.value().converged);
    }
    runs.push_back(avg.Finish());
  }
  if (WantMethod(opts, "RMC")) {
    RunAverager avg("RMC", dataset_name);
    for (int r = 0; r < opts.restarts; ++r) {
      baselines::RmcOptions o = opts.rmc;
      o.seed = opts.seed_base + static_cast<uint64_t>(r);
      Result<baselines::RmcResult> fit = baselines::RunRmc(data, o);
      if (!fit.ok()) return fit.status();
      Result<Scores> scores = ScoreLabels(truth, fit.value().hocc.labels[0]);
      if (!scores.ok()) return scores.status();
      avg.Add(scores.value(), fit.value().hocc.seconds,
              fit.value().hocc.iterations, fit.value().hocc.converged);
    }
    runs.push_back(avg.Finish());
  }
  if (WantMethod(opts, "RHCHME")) {
    // The ensemble (intra-type learning) does not depend on the restart
    // seed; learn it once and share it. Its cost is charged to every
    // restart so Table V reflects a full fit.
    const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
    Stopwatch ensemble_watch;
    Result<core::HeterogeneousEnsemble> ensemble =
        core::BuildEnsemble(data, blocks, opts.rhchme.ensemble);
    if (!ensemble.ok()) return ensemble.status();
    const double ensemble_seconds = ensemble_watch.ElapsedSeconds();

    RunAverager avg("RHCHME", dataset_name);
    for (int r = 0; r < opts.restarts; ++r) {
      core::RhchmeOptions o = opts.rhchme;
      o.seed = opts.seed_base + static_cast<uint64_t>(r);
      core::Rhchme solver(o);
      Result<core::RhchmeResult> fit =
          solver.FitWithEnsemble(data, ensemble.value());
      if (!fit.ok()) return fit.status();
      Result<Scores> scores = ScoreLabels(truth, fit.value().hocc.labels[0]);
      if (!scores.ok()) return scores.status();
      avg.Add(scores.value(), fit.value().hocc.seconds + ensemble_seconds,
              fit.value().hocc.iterations, fit.value().hocc.converged);
    }
    runs.push_back(avg.Finish());
  }
  return runs;
}

}  // namespace eval
}  // namespace rhchme
