// Robustness scenario matrix (ROADMAP item 5) — the quality twin of the
// bench_kernels perf gate.
//
// The paper's core claim is robustness: the heterogeneous manifold
// ensemble should degrade gracefully under corrupted samples and
// sparse/imbalanced relations. This module makes that claim measurable
// and CI-gateable: a declarative grid sweeps corruption fraction ×
// relation sparsity × class/type imbalance over a synthetic workload
// family (the document/term/concept corpus of examples/
// document_clustering.cpp or the K-type block world of examples/
// webpage_clustering.cpp), runs RHCHME — any combination of solver core
// (implicit / sparse-R / explicit) × graph backend (exact / NN-descent)
// — and the four baselines (DR-T, SRC, SNMTF, RMC) on every cell, and
// aggregates NMI/ARI/purity/FScore over a fixed replicate seed set.
//
// WriteScenarioReportJson emits QUALITY_scenarios.json with a context
// block mirroring BENCH_kernels.json (`rhchme_build_type`,
// `rhchme_simd`, grid metadata); tools/quality_compare.py fails CI when
// any cell drops beyond a threshold against the committed
// QUALITY_scenarios.baseline.json — exactly how tools/bench_compare.py
// gates perf.
//
// Determinism: cell data derives from the replicate seed through the
// generators' DeriveStreamSeed streams, every fit honours the library's
// thread-count determinism contract, and metrics are serialised with
// round-trippable precision — so a grid run (and its JSON artefact,
// timings aside) is bit-identical for any pool size
// (tests/scenario_test.cc pins this down).

#ifndef RHCHME_EVAL_SCENARIO_H_
#define RHCHME_EVAL_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/corruption.h"
#include "util/status.h"

namespace rhchme {
namespace eval {

/// Workload family a grid runs on.
enum class ScenarioWorkload {
  kCorpus,      ///< 3-type documents/terms/concepts synthetic corpus.
  kBlockWorld,  ///< 3-type planted block world (webpage-style, dense-ish).
};

const char* ScenarioWorkloadName(ScenarioWorkload w);

/// Class/type size shape of a cell — the imbalance axis.
enum class ImbalanceKind {
  kBalanced,  ///< Equal class sizes (corpus) / type sizes (block world).
  kSkewed,    ///< 4:2:1 class sizes (corpus) / type sizes (block world).
};

const char* ImbalanceKindName(ImbalanceKind k);

/// JSON tag of a corruption payload: "spike" or "nonfinite".
const char* CorruptionModeName(data::RowCorruptionMode m);

/// One RHCHME configuration under the grid: solver core × graph backend.
struct RhchmeVariant {
  /// Solver core: "implicit" (dense default), "sparse" (sparse-R forced),
  /// or "explicit" (reference materialisation).
  std::string core = "implicit";
  /// pNN construction backend for both ensemble members: "exact" or
  /// "descent".
  std::string backend = "exact";

  /// "implicit+exact" — the `variant` field of the emitted cells.
  std::string Name() const { return core + "+" + backend; }
};

/// The default RHCHME coverage: every solver core on the exact backend,
/// plus the default core on NN-descent.
std::vector<RhchmeVariant> DefaultRhchmeVariants();

struct ScenarioGridOptions {
  ScenarioWorkload workload = ScenarioWorkload::kCorpus;

  // ---- Grid axes ----------------------------------------------------------
  /// Fraction of type-0 objects whose relation rows are corrupted.
  std::vector<double> corruption_fractions = {0.0, 0.15, 0.3};
  /// Corrupted-entry payloads. kNonFinite cells plant NaN/Inf instead of
  /// spikes and exercise the solver's numerical guards end-to-end; they
  /// skip corruption == 0 (identical to the spike cell) and skip the
  /// baselines (which have no guards and would just crash or emit NaN).
  std::vector<data::RowCorruptionMode> corruption_modes = {
      data::RowCorruptionMode::kSpike, data::RowCorruptionMode::kNonFinite};
  /// Entry dropout of the relation blocks (missing observations).
  std::vector<double> sparsity_levels = {0.0, 0.3, 0.6};
  std::vector<ImbalanceKind> imbalances = {ImbalanceKind::kBalanced,
                                           ImbalanceKind::kSkewed};
  /// Replicate seeds; every cell is averaged over all of them. Each seed
  /// drives both the data generation and the solver initialisation.
  std::vector<uint64_t> seeds = {1, 2, 3};

  // ---- Methods ------------------------------------------------------------
  /// Subset of {"RHCHME", "DR-T", "SRC", "SNMTF", "RMC"}; empty runs all.
  std::vector<std::string> methods;
  /// RHCHME core × backend coverage; empty selects
  /// DefaultRhchmeVariants().
  std::vector<RhchmeVariant> rhchme_variants;

  // ---- Problem scale ------------------------------------------------------
  /// Corpus: balanced class sizes are {docs_per_class × n_classes};
  /// skewed scales them 4:2:1 (same shape family as the paper's D3/D4).
  std::size_t n_classes = 3;
  std::size_t docs_per_class = 16;
  std::size_t n_terms = 72;
  std::size_t n_concepts = 48;
  /// Block world: balanced type sizes are {objects_per_type × 3 types};
  /// skewed scales them 4:2:1.
  std::size_t objects_per_type = 32;

  /// Iteration cap shared by every method (the grid measures relative
  /// degradation, not converged absolutes).
  int max_iterations = 40;

  Status Validate() const;
};

/// Seed-averaged quality of one (cell, method[, variant]) combination.
struct ScenarioCell {
  ScenarioWorkload workload = ScenarioWorkload::kCorpus;
  ImbalanceKind imbalance = ImbalanceKind::kBalanced;
  double corruption = 0.0;
  data::RowCorruptionMode corruption_mode = data::RowCorruptionMode::kSpike;
  double sparsity = 0.0;
  std::string method;   ///< "RHCHME", "DR-T", "SRC", "SNMTF", "RMC".
  std::string variant;  ///< RHCHME core+backend; empty for baselines.
  double nmi = 0.0;
  double ari = 0.0;
  double purity = 0.0;
  double fscore = 0.0;
  double seconds = 0.0;  ///< Mean fit wall clock — informational only.
  /// Mean FitDiagnostics::RecoveryEvents() per replicate (RHCHME slots
  /// only; 0 for baselines). Healthy spike cells stay at 0; kNonFinite
  /// cells must be > 0 — the guards, not luck, absorb the damage.
  double recovery_events = 0.0;
  int replicates = 0;
};

struct ScenarioReport {
  ScenarioGridOptions grid;  ///< The options that produced the cells.
  std::vector<ScenarioCell> cells;
};

/// Runs the full grid. Cells are ordered (imbalance, corruption mode,
/// corruption, sparsity, method) — deterministic for a fixed option set.
Result<ScenarioReport> RunScenarioGrid(const ScenarioGridOptions& opts);

/// Writes the machine-readable QUALITY_scenarios.json consumed by
/// tools/quality_compare.py. Metric doubles are serialised with %.17g so
/// the artefact round-trips bit-exactly; `seconds` is the only
/// machine-dependent field. Overwrites `path`.
Status WriteScenarioReportJson(const ScenarioReport& report,
                               const std::string& path);

}  // namespace eval
}  // namespace rhchme

#endif  // RHCHME_EVAL_SCENARIO_H_
