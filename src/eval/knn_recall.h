// Recall of approximate neighbour lists against the exact reference —
// the quality gate for the NN-descent graph backend (ISSUE 6: approximate
// members are acceptable because the ensemble combiner downweights
// imperfect manifolds, but only when recall stays high).

#ifndef RHCHME_EVAL_KNN_RECALL_H_
#define RHCHME_EVAL_KNN_RECALL_H_

#include "graph/knn_descent.h"
#include "graph/knn_graph.h"
#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace eval {

/// Fraction of true neighbours recovered: |approx ∩ exact| / |exact|,
/// summed over rows. Membership is by index; ties at the p-th distance
/// mean the exact set is one valid choice among several, so recall of a
/// perfect approximation can fall (marginally) below 1. Requires equal
/// list counts; empty inputs score 1.
Result<double> KnnRecall(const graph::KnnNeighborLists& approx,
                         const graph::KnnNeighborLists& exact);

/// Builds neighbour lists under `opts` (whatever backend it selects) and
/// scores them against ExactKnnNeighbors on the same points. Recall of
/// the exact backend against itself is 1 by construction.
Result<double> RecallAgainstExact(const la::Matrix& points,
                                  const graph::KnnGraphOptions& opts);

}  // namespace eval
}  // namespace rhchme

#endif  // RHCHME_EVAL_KNN_RECALL_H_
