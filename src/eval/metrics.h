// External clustering-quality metrics (paper §IV.C).
//
// FScore follows Eq. 38 exactly (class-weighted best F-measure over
// clusters); NMI uses the standard sqrt-entropy normalisation
// I(C;L)/sqrt(H(C)·H(L)) — the paper's printed Eq. 39 omits the square
// root (DESIGN.md §5.4). Purity and Adjusted Rand Index are included as
// additional diagnostics.

#ifndef RHCHME_EVAL_METRICS_H_
#define RHCHME_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace rhchme {
namespace eval {

/// Counts n_jl of objects in true class j and predicted cluster l.
/// Labels need not be contiguous; they are compacted internally.
class ContingencyTable {
 public:
  /// Requires equal, nonzero lengths.
  static Result<ContingencyTable> Build(
      const std::vector<std::size_t>& truth,
      const std::vector<std::size_t>& predicted);

  std::size_t num_classes() const { return class_sizes_.size(); }
  std::size_t num_clusters() const { return cluster_sizes_.size(); }
  std::size_t total() const { return total_; }
  std::size_t class_size(std::size_t j) const { return class_sizes_[j]; }
  std::size_t cluster_size(std::size_t l) const { return cluster_sizes_[l]; }
  std::size_t joint(std::size_t j, std::size_t l) const {
    return counts_[j * cluster_sizes_.size() + l];
  }

 private:
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> class_sizes_;
  std::vector<std::size_t> cluster_sizes_;
  std::size_t total_ = 0;
};

/// FScore of Eq. 38 in [0, 1]; 1 iff the partition matches the classes.
Result<double> FScore(const std::vector<std::size_t>& truth,
                      const std::vector<std::size_t>& predicted);

/// Normalised mutual information in [0, 1]. When one side has a single
/// block (zero entropy), returns 1 if the partitions are identical as
/// partitions, else 0.
Result<double> Nmi(const std::vector<std::size_t>& truth,
                   const std::vector<std::size_t>& predicted);

/// Fraction of objects in their cluster's majority class.
Result<double> Purity(const std::vector<std::size_t>& truth,
                      const std::vector<std::size_t>& predicted);

/// Adjusted Rand Index in [-1, 1]; 0 expected for random partitions.
Result<double> AdjustedRandIndex(const std::vector<std::size_t>& truth,
                                 const std::vector<std::size_t>& predicted);

}  // namespace eval
}  // namespace rhchme

#endif  // RHCHME_EVAL_METRICS_H_
