#include "baselines/rmc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "baselines/snmtf.h"
#include "la/gemm.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace baselines {

Status RmcOptions::Validate() const {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  for (const auto& c : candidates) RHCHME_RETURN_IF_ERROR(c.Validate());
  return Status::OK();
}

std::vector<graph::KnnGraphOptions> DefaultRmcCandidates() {
  std::vector<graph::KnnGraphOptions> out;
  for (std::size_t p : {std::size_t{5}, std::size_t{10}}) {
    for (graph::WeightScheme scheme :
         {graph::WeightScheme::kBinary, graph::WeightScheme::kHeatKernel,
          graph::WeightScheme::kCosine}) {
      graph::KnnGraphOptions o;
      o.p = p;
      o.scheme = scheme;
      out.push_back(o);
    }
  }
  return out;
}

std::vector<double> ProjectOntoSimplex(std::vector<double> v) {
  // Duchi et al. (ICML 2008): sort descending, find the threshold rho.
  std::vector<double> u = v;
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumsum = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cumsum += u[i];
    const double t = (cumsum - 1.0) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      rho = i + 1;
      theta = t;
    }
  }
  if (rho == 0) {
    // Degenerate input; fall back to uniform.
    std::fill(v.begin(), v.end(), 1.0 / static_cast<double>(v.size()));
    return v;
  }
  for (double& x : v) x = std::max(0.0, x - theta);
  return v;
}

Result<RmcResult> RunRmc(const data::MultiTypeRelationalData& data,
                         const RmcOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  Stopwatch watch;

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  const la::Matrix r = data.BuildJointR();

  // Pre-build all candidate Laplacians (this is RMC's extra cost that
  // Table V attributes to it).
  const std::vector<graph::KnnGraphOptions> candidates =
      opts.candidates.empty() ? DefaultRmcCandidates() : opts.candidates;
  const std::size_t q = candidates.size();
  std::vector<la::Matrix> lap(q);
  for (std::size_t i = 0; i < q; ++i) {
    Result<la::Matrix> l =
        BuildJointKnnLaplacian(data, blocks, candidates[i], opts.laplacian);
    if (!l.ok()) return l.status();
    lap[i] = std::move(l).value();
  }

  Rng rng(opts.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();

  std::vector<double> beta(q, 1.0 / static_cast<double>(q));
  RmcResult out;
  fact::HoccResult& res = out.hocc;
  la::Matrix s;
  double prev = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts.max_iterations; ++t) {
    // ---- beta update: argmin over the simplex of
    //      sum_i beta_i·tr(GᵀL̂_iG) + mu·||beta||²
    //      => beta = Proj_simplex(-trace_vec / (2·mu)).
    std::vector<double> traces(q);
    for (std::size_t i = 0; i < q; ++i) {
      traces[i] = la::FrobeniusInner(la::Multiply(lap[i], g), g);
    }
    double mu = opts.mu;
    if (mu <= 0.0) {
      // Auto scale: comparable to the trace magnitudes, so weights spread
      // over several candidates instead of collapsing onto one.
      double mean = 0.0;
      for (double v : traces) mean += std::fabs(v);
      mu = std::max(mean / static_cast<double>(q), 1e-12);
    }
    std::vector<double> target(q);
    for (std::size_t i = 0; i < q; ++i) target[i] = -traces[i] / (2.0 * mu);
    beta = ProjectOntoSimplex(std::move(target));

    // ---- Ensemble Laplacian under the current beta.
    la::Matrix ensemble(r.rows(), r.cols());
    for (std::size_t i = 0; i < q; ++i) {
      if (beta[i] > 0.0) ensemble.AddScaled(lap[i], beta[i]);
    }
    const la::Matrix lap_pos = la::PositivePart(ensemble);
    const la::Matrix lap_neg = la::NegativePart(ensemble);

    // ---- Standard NMTF steps against the ensemble.
    Result<la::Matrix> s_new = fact::SolveCentralS(g, r, opts.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();
    fact::MultiplicativeGUpdate(r, s, opts.lambda, &lap_pos, &lap_neg,
                                opts.mu_eps, &g);

    double smooth = 0.0;
    for (std::size_t i = 0; i < q; ++i) {
      if (beta[i] > 0.0) {
        smooth += beta[i] * la::FrobeniusInner(la::Multiply(lap[i], g), g);
      }
    }
    const double objective =
        fact::ReconstructionError(r, g, s) + opts.lambda * smooth;
    res.objective_trace.push_back(objective);
    res.iterations = t;
    const double rel =
        std::fabs(prev - objective) / std::max(1.0, std::fabs(prev));
    if (std::isfinite(prev) && rel < opts.tolerance) {
      res.converged = true;
      break;
    }
    prev = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  out.candidate_weights = std::move(beta);
  return out;
}

}  // namespace baselines
}  // namespace rhchme
