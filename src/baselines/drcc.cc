#include "baselines/drcc.h"

#include <cmath>
#include <limits>

#include "cluster/assignments.h"
#include "cluster/kmeans.h"
#include "factorization/hocc_common.h"
#include "la/gemm.h"
#include "la/solve.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace baselines {

Status DrccOptions::Validate() const {
  if (row_clusters == 0 || col_clusters == 0) {
    return Status::InvalidArgument("cluster counts must be >= 1");
  }
  if (lambda < 0.0 || mu < 0.0) {
    return Status::InvalidArgument("lambda/mu must be >= 0");
  }
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return knn.Validate();
}

namespace {

/// S = (GᵀG + rI)⁻¹ Gᵀ X F (FᵀF + rI)⁻¹ — the bilinear central solve.
Result<la::Matrix> SolveBilinearS(const la::Matrix& g, const la::Matrix& x,
                                  const la::Matrix& f, double ridge) {
  la::Matrix gtxf = la::MultiplyTN(g, la::Multiply(x, f));
  Result<la::Matrix> left = la::SolveRidged(la::Gram(g), gtxf, ridge);
  if (!left.ok()) return left.status();
  Result<la::Matrix> right =
      la::SolveRidged(la::Gram(f), left.value().Transposed(), ridge);
  if (!right.ok()) return right.status();
  return right.value().Transposed();
}

/// k-means membership initialisation over the rows of `points`.
Result<la::Matrix> InitFactor(const la::Matrix& points, std::size_t k,
                              Rng* rng) {
  cluster::KMeansOptions kopts;
  kopts.k = k;
  kopts.restarts = 2;
  Result<cluster::KMeansResult> km = cluster::KMeans(points, kopts, rng);
  if (!km.ok()) return km.status();
  return cluster::MembershipFromLabels(km.value().assignments, k);
}

}  // namespace

Result<DrccResult> RunDrcc(const la::Matrix& x, const DrccOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  if (x.rows() < opts.row_clusters || x.cols() < opts.col_clusters) {
    return Status::InvalidArgument("DRCC: fewer objects than clusters");
  }
  Stopwatch watch;

  // Sample graph on rows of X, feature graph on rows of Xᵀ.
  const la::Matrix xt = x.Transposed();
  Result<la::SparseMatrix> wg = graph::BuildKnnGraph(x, opts.knn);
  if (!wg.ok()) return wg.status();
  Result<la::SparseMatrix> wf = graph::BuildKnnGraph(xt, opts.knn);
  if (!wf.ok()) return wf.status();
  Result<la::Matrix> lg = graph::BuildLaplacian(wg.value(), opts.laplacian);
  if (!lg.ok()) return lg.status();
  Result<la::Matrix> lf = graph::BuildLaplacian(wf.value(), opts.laplacian);
  if (!lf.ok()) return lf.status();
  const la::Matrix lg_pos = la::PositivePart(lg.value());
  const la::Matrix lg_neg = la::NegativePart(lg.value());
  const la::Matrix lf_pos = la::PositivePart(lf.value());
  const la::Matrix lf_neg = la::NegativePart(lf.value());

  Rng rng(opts.seed);
  Result<la::Matrix> g_init = InitFactor(x, opts.row_clusters, &rng);
  if (!g_init.ok()) return g_init.status();
  la::Matrix g = std::move(g_init).value();
  Result<la::Matrix> f_init = InitFactor(xt, opts.col_clusters, &rng);
  if (!f_init.ok()) return f_init.status();
  la::Matrix f = std::move(f_init).value();

  DrccResult res;
  la::Matrix s;
  double prev = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts.max_iterations; ++t) {
    Result<la::Matrix> s_new = SolveBilinearS(g, x, f, opts.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();

    // ---- G update: grad = -2·X·F·Sᵀ + 2·G·(S·FᵀF·Sᵀ) + 2·mu·L_G·G.
    {
      la::Matrix xfst = la::MultiplyNT(la::Multiply(x, f), s);
      la::Matrix sffs = la::MultiplyNT(la::Multiply(s, la::Gram(f)), s);
      la::Matrix num = la::PositivePart(xfst);
      num.Add(la::Multiply(g, la::NegativePart(sffs)));
      la::Matrix den = la::NegativePart(xfst);
      den.Add(la::Multiply(g, la::PositivePart(sffs)));
      if (opts.mu != 0.0) {
        la::Matrix tmp = la::Multiply(lg_neg, g);
        tmp.Scale(opts.mu);
        num.Add(tmp);
        la::MultiplyInto(lg_pos, g, &tmp);
        tmp.Scale(opts.mu);
        den.Add(tmp);
      }
      fact::RatioUpdate(num, den, opts.mu_eps, &g);
    }

    // ---- F update: grad = -2·Xᵀ·G·S + 2·F·(Sᵀ·GᵀG·S) + 2·lambda·L_F·F.
    {
      la::Matrix xtgs = la::Multiply(la::MultiplyTN(x, g), s);
      la::Matrix sggs = la::MultiplyTN(s, la::Multiply(la::Gram(g), s));
      la::Matrix num = la::PositivePart(xtgs);
      num.Add(la::Multiply(f, la::NegativePart(sggs)));
      la::Matrix den = la::NegativePart(xtgs);
      den.Add(la::Multiply(f, la::PositivePart(sggs)));
      if (opts.lambda != 0.0) {
        la::Matrix tmp = la::Multiply(lf_neg, f);
        tmp.Scale(opts.lambda);
        num.Add(tmp);
        la::MultiplyInto(lf_pos, f, &tmp);
        tmp.Scale(opts.lambda);
        den.Add(tmp);
      }
      fact::RatioUpdate(num, den, opts.mu_eps, &f);
    }

    // ---- Objective.
    la::Matrix approx = la::MultiplyNT(la::Multiply(g, s), f);
    approx.Sub(x);
    const double objective =
        approx.FrobeniusNormSquared() +
        opts.lambda * la::FrobeniusInner(la::Multiply(lf.value(), f), f) +
        opts.mu * la::FrobeniusInner(la::Multiply(lg.value(), g), g);
    res.objective_trace.push_back(objective);
    res.iterations = t;
    const double rel =
        std::fabs(prev - objective) / std::max(1.0, std::fabs(prev));
    if (std::isfinite(prev) && rel < opts.tolerance) {
      res.converged = true;
      break;
    }
    prev = objective;
  }

  res.row_labels = cluster::HardAssignments(g);
  res.col_labels = cluster::HardAssignments(f);
  res.g = std::move(g);
  res.f = std::move(f);
  res.s = std::move(s);
  res.seconds = watch.ElapsedSeconds();
  return res;
}

}  // namespace baselines
}  // namespace rhchme
