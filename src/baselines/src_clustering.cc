#include "baselines/src_clustering.h"

#include <cmath>
#include <limits>

#include "la/gemm.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace baselines {

Status SrcOptions::Validate() const {
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) return Status::InvalidArgument("tolerance must be >= 0");
  return Status::OK();
}

Result<fact::HoccResult> RunSrc(const data::MultiTypeRelationalData& data,
                                const SrcOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  Stopwatch watch;

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  const la::Matrix r = data.BuildJointR();

  Rng rng(opts.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();

  fact::HoccResult res;
  la::Matrix s;
  double prev = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts.max_iterations; ++t) {
    Result<la::Matrix> s_new = fact::SolveCentralS(g, r, opts.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();
    fact::MultiplicativeGUpdate(r, s, opts.mu_eps, &g);

    const double objective = fact::ReconstructionError(r, g, s);
    res.objective_trace.push_back(objective);
    res.iterations = t;
    const double rel =
        std::fabs(prev - objective) / std::max(1.0, std::fabs(prev));
    if (std::isfinite(prev) && rel < opts.tolerance) {
      res.converged = true;
      break;
    }
    prev = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  return res;
}

}  // namespace baselines
}  // namespace rhchme
