// SRC — Spectral Relational Clustering baseline (paper §IV.B; Long et
// al., ICML 2006 [2]).
//
// As benchmarked in the paper, SRC performs collective nonnegative matrix
// tri-factorisation of the inter-type relationships ONLY:
//
//   min_{G >= 0}  sum_{i<j} nu_ij · ||R_ij − G_i·S_ij·G_jᵀ||²_F
//
// i.e. the joint objective ||R − G·S·Gᵀ||²_F with no intra-type
// (manifold) information. It is the "no intra-type relationships"
// reference point of Tables III–V.

#ifndef RHCHME_BASELINES_SRC_CLUSTERING_H_
#define RHCHME_BASELINES_SRC_CLUSTERING_H_

#include <cstdint>

#include "data/multitype_data.h"
#include "factorization/hocc_common.h"
#include "util/status.h"

namespace rhchme {
namespace baselines {

struct SrcOptions {
  int max_iterations = 100;
  double tolerance = 1e-5;    ///< Relative objective-change stop rule.
  double ridge = 1e-9;        ///< Empty-cluster guard in the S solve.
  double mu_eps = 1e-12;      ///< Multiplicative denominator floor.
  fact::MembershipInit init = fact::MembershipInit::kKMeans;
  uint64_t seed = 0;

  Status Validate() const;
};

/// Fits SRC on the data's inter-type relationships.
Result<fact::HoccResult> RunSrc(const data::MultiTypeRelationalData& data,
                                const SrcOptions& opts);

}  // namespace baselines
}  // namespace rhchme

#endif  // RHCHME_BASELINES_SRC_CLUSTERING_H_
