// SNMTF — Symmetric Nonnegative Matrix Tri-Factorisation baseline
// (paper §II.A Eq. 1 and §IV.B; Wang et al., CIKM/ICDM 2011 [5, 6]).
//
// Adds a single-graph manifold regulariser to the SRC objective:
//
//   min_{G >= 0}  ||R − G·S·Gᵀ||²_F + lambda·tr(Gᵀ·L·G)
//
// with L built from ONE pNN graph per type (the paper uses p = 5). This
// is the "intra-type relationships from a pNN graph only" reference
// point that RHCHME's heterogeneous ensemble improves on. The original
// SNMTF imposes Gᵀ·L·G = I; as in RMC [15] we use the relaxed
// multiplicative scheme, which keeps G nonnegative (the paper §III.C
// discusses exactly this trade-off).

#ifndef RHCHME_BASELINES_SNMTF_H_
#define RHCHME_BASELINES_SNMTF_H_

#include <cstdint>

#include "data/multitype_data.h"
#include "factorization/hocc_common.h"
#include "graph/knn_graph.h"
#include "graph/laplacian.h"
#include "util/status.h"

namespace rhchme {
namespace baselines {

struct SnmtfOptions {
  double lambda = 250.0;  ///< Graph regularisation strength.
  graph::KnnGraphOptions knn;  ///< Single pNN member (paper: p=5 cosine).
  graph::LaplacianKind laplacian = graph::LaplacianKind::kSymmetric;
  int max_iterations = 100;
  double tolerance = 1e-5;
  double ridge = 1e-9;
  double mu_eps = 1e-12;
  fact::MembershipInit init = fact::MembershipInit::kKMeans;
  uint64_t seed = 0;

  Status Validate() const;
};

/// Fits SNMTF. Types must have nonempty features (for the pNN graphs).
Result<fact::HoccResult> RunSnmtf(const data::MultiTypeRelationalData& data,
                                  const SnmtfOptions& opts);

/// Builds the joint block-diagonal single-pNN Laplacian SNMTF uses
/// (shared with RMC candidates and exposed for tests).
Result<la::Matrix> BuildJointKnnLaplacian(
    const data::MultiTypeRelationalData& data,
    const fact::BlockStructure& blocks, const graph::KnnGraphOptions& knn,
    graph::LaplacianKind kind);

}  // namespace baselines
}  // namespace rhchme

#endif  // RHCHME_BASELINES_SNMTF_H_
