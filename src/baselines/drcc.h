// DRCC — Dual-Regularised Co-Clustering baseline (paper §IV.B; Gu &
// Zhou, "Co-clustering on manifolds", KDD 2009 [1]).
//
// The two-way (documents x features) reference point of Tables III–V:
//
//   min_{G >= 0, F >= 0}  ||X − G·S·Fᵀ||²_F + lambda·tr(Fᵀ·L_F·F)
//                                            + mu·tr(Gᵀ·L_G·G)
//
// with pNN-graph Laplacians on BOTH the sample and the feature side. The
// paper evaluates three variants that differ only in X:
//   DR-T  — document–term block,
//   DR-C  — document–concept block,
//   DR-TC — [document–term | document–concept] concatenated.

#ifndef RHCHME_BASELINES_DRCC_H_
#define RHCHME_BASELINES_DRCC_H_

#include <cstdint>
#include <vector>

#include "graph/knn_graph.h"
#include "graph/laplacian.h"
#include "la/matrix.h"
#include "util/status.h"

namespace rhchme {
namespace baselines {

struct DrccOptions {
  std::size_t row_clusters = 2;   ///< Document clusters.
  std::size_t col_clusters = 2;   ///< Feature clusters.
  double lambda = 1.0;            ///< Feature-graph strength.
  double mu = 1.0;                ///< Sample-graph strength.
  graph::KnnGraphOptions knn;     ///< Used for both graphs (p=5 default).
  graph::LaplacianKind laplacian = graph::LaplacianKind::kSymmetric;
  int max_iterations = 100;
  double tolerance = 1e-5;
  double ridge = 1e-9;
  double mu_eps = 1e-12;
  uint64_t seed = 0;

  Status Validate() const;
};

struct DrccResult {
  la::Matrix g;                          ///< n x row_clusters memberships.
  la::Matrix f;                          ///< m x col_clusters memberships.
  la::Matrix s;                          ///< row_clusters x col_clusters.
  std::vector<std::size_t> row_labels;   ///< Hard document labels.
  std::vector<std::size_t> col_labels;   ///< Hard feature labels.
  std::vector<double> objective_trace;
  int iterations = 0;
  bool converged = false;
  double seconds = 0.0;
};

/// Fits DRCC on a nonnegative data matrix X (samples x features).
/// Requires x.rows() >= row_clusters and x.cols() >= col_clusters.
Result<DrccResult> RunDrcc(const la::Matrix& x, const DrccOptions& opts);

}  // namespace baselines
}  // namespace rhchme

#endif  // RHCHME_BASELINES_DRCC_H_
