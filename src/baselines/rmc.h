// RMC — Relational Multi-manifold Co-clustering baseline (paper §II.A
// Eq. 2 and §IV.B; Li et al., IEEE Trans. Cybernetics 2013 [15]).
//
// Like SNMTF but the graph regulariser is a LEARNED convex combination of
// q pre-given pNN-graph Laplacian candidates:
//
//   L = sum_i beta_i · L̂_i,   sum_i beta_i = 1, beta_i >= 0        (Eq. 2)
//
// The paper's experimental setup uses q = 6 candidates: p ∈ {5, 10} ×
// {binary, heat kernel, cosine} weighting. The candidate weights are
// refreshed each outer iteration by minimising
//   sum_i beta_i · tr(Gᵀ·L̂_i·G) + mu·||beta||²  over the simplex,
// the quadratic-regularised scheme of the RMC paper (mu -> 0 picks only
// the single smoothest candidate; mu -> inf gives uniform weights).
//
// All candidates are the SAME kind of member (pNN graphs) — exactly the
// lack of diversity RHCHME's §III.B argues against.

#ifndef RHCHME_BASELINES_RMC_H_
#define RHCHME_BASELINES_RMC_H_

#include <cstdint>
#include <vector>

#include "data/multitype_data.h"
#include "factorization/hocc_common.h"
#include "graph/knn_graph.h"
#include "graph/laplacian.h"
#include "util/status.h"

namespace rhchme {
namespace baselines {

struct RmcOptions {
  double lambda = 250.0;
  /// Candidate pNN configurations; empty selects the paper's six.
  std::vector<graph::KnnGraphOptions> candidates;
  graph::LaplacianKind laplacian = graph::LaplacianKind::kSymmetric;
  /// Weight-spread regulariser mu; <= 0 selects mu automatically from the
  /// scale of the tr(Gᵀ·L̂_i·G) values.
  double mu = -1.0;
  int max_iterations = 100;
  double tolerance = 1e-5;
  double ridge = 1e-9;
  double mu_eps = 1e-12;
  fact::MembershipInit init = fact::MembershipInit::kKMeans;
  uint64_t seed = 0;

  Status Validate() const;
};

/// The paper's six candidates: p ∈ {5,10} × {binary, heat, cosine}.
std::vector<graph::KnnGraphOptions> DefaultRmcCandidates();

struct RmcResult {
  fact::HoccResult hocc;
  std::vector<double> candidate_weights;  ///< Final beta.
};

Result<RmcResult> RunRmc(const data::MultiTypeRelationalData& data,
                         const RmcOptions& opts);

/// Euclidean projection of `v` onto the probability simplex
/// {x >= 0, sum x = 1} (Duchi et al. algorithm; exposed for tests).
std::vector<double> ProjectOntoSimplex(std::vector<double> v);

}  // namespace baselines
}  // namespace rhchme

#endif  // RHCHME_BASELINES_RMC_H_
