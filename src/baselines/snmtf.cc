#include "baselines/snmtf.h"

#include <cmath>
#include <limits>

#include "la/gemm.h"
#include "util/stopwatch.h"

namespace rhchme {
namespace baselines {

Status SnmtfOptions::Validate() const {
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return knn.Validate();
}

Result<la::Matrix> BuildJointKnnLaplacian(
    const data::MultiTypeRelationalData& data,
    const fact::BlockStructure& blocks, const graph::KnnGraphOptions& knn,
    graph::LaplacianKind kind) {
  la::Matrix joint(blocks.total_objects(), blocks.total_objects());
  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    const data::ObjectType& type = data.Type(k);
    if (type.features.empty()) {
      return Status::FailedPrecondition("type '" + type.name +
                                        "' has no features for a pNN graph");
    }
    Result<la::SparseMatrix> w = graph::BuildKnnGraph(type.features, knn);
    if (!w.ok()) return w.status();
    Result<la::Matrix> lap = graph::BuildLaplacian(w.value(), kind);
    if (!lap.ok()) return lap.status();
    joint.SetBlock(blocks.type_offset[k], blocks.type_offset[k], lap.value());
  }
  return joint;
}

Result<fact::HoccResult> RunSnmtf(const data::MultiTypeRelationalData& data,
                                  const SnmtfOptions& opts) {
  RHCHME_RETURN_IF_ERROR(opts.Validate());
  RHCHME_RETURN_IF_ERROR(data.Validate());
  Stopwatch watch;

  const fact::BlockStructure blocks = fact::BuildBlockStructure(data);
  const la::Matrix r = data.BuildJointR();
  Result<la::Matrix> lap =
      BuildJointKnnLaplacian(data, blocks, opts.knn, opts.laplacian);
  if (!lap.ok()) return lap.status();
  const la::Matrix lap_pos = la::PositivePart(lap.value());
  const la::Matrix lap_neg = la::NegativePart(lap.value());

  Rng rng(opts.seed);
  Result<la::Matrix> init =
      fact::InitMembership(data, blocks, opts.init, &rng);
  if (!init.ok()) return init.status();
  la::Matrix g = std::move(init).value();

  fact::HoccResult res;
  la::Matrix s;
  double prev = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= opts.max_iterations; ++t) {
    Result<la::Matrix> s_new = fact::SolveCentralS(g, r, opts.ridge);
    if (!s_new.ok()) return s_new.status();
    s = std::move(s_new).value();
    fact::MultiplicativeGUpdate(r, s, opts.lambda, &lap_pos, &lap_neg,
                                opts.mu_eps, &g);

    const double objective =
        fact::ReconstructionError(r, g, s) +
        opts.lambda * la::FrobeniusInner(la::Multiply(lap.value(), g), g);
    res.objective_trace.push_back(objective);
    res.iterations = t;
    const double rel =
        std::fabs(prev - objective) / std::max(1.0, std::fabs(prev));
    if (std::isfinite(prev) && rel < opts.tolerance) {
      res.converged = true;
      break;
    }
    prev = objective;
  }

  res.g = std::move(g);
  res.s = std::move(s);
  res.labels = fact::ExtractLabels(blocks, res.g);
  res.seconds = watch.ElapsedSeconds();
  return res;
}

}  // namespace baselines
}  // namespace rhchme
