// Global thread pool and data-parallel loop primitives.
//
// Every threaded hot path in the library (GEMM row panels, pairwise
// distances, k-means assignment, per-row reweighting) dispatches through
// ParallelFor / ParallelSum. The pool is created lazily on first use and
// shared process-wide.
//
// Thread-count control (in priority order):
//   1. SetNumThreads(n)            — programmatic override, takes effect on
//                                    the next parallel region.
//   2. RHCHME_NUM_THREADS=<n>      — environment override, read once at
//                                    first pool use.
//   3. std::thread::hardware_concurrency() — default.
//
// Determinism contract: when ParallelFor splits a range, chunk starts
// always sit at begin + k*grain — but the inline path (pool size 1,
// single-chunk range, nested region) may fuse the whole range into one
// fn(begin, end) call, so per-call boundaries are NOT thread-count
// stable. Callers that need bit-stable results across thread counts must
// either (a) make each index's computation independent of the chunk
// extent (all the kernel call sites do this: one output row per index,
// fixed accumulation order), (b) use ParallelSum, which re-chunks fused
// ranges internally and combines per-chunk partials in chunk order, or
// (c) apply the same re-chunking idiom to non-scalar reductions: derive
// the chunk layout from the problem shape only (never the pool size),
// give each chunk its own accumulator slot indexed by
// (chunk_begin - begin) / grain — recoverable inside fused calls because
// chunk starts are grain-aligned — and merge the slots in chunk order
// after the barrier. SparseMatrix::MultiplyTransposedDenseInto's scatter
// fallback is the reference implementation of (c). No atomics touch user
// accumulators.
//
// Nested parallel regions run serially: a ParallelFor issued from inside
// a worker executes inline on that worker. Coarse task fan-out (e.g. the
// per-member ensemble build in core/ensemble.cc) therefore trades inner
// kernel parallelism for task parallelism; dispatch through the pool
// only when there are >= 2 tasks, otherwise run the single task on the
// caller so its inner regions still parallelise. Chunk functions must
// not throw.

#ifndef RHCHME_UTIL_PARALLEL_H_
#define RHCHME_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace rhchme {
namespace util {

/// Default minimum number of inner-loop operations a chunk should amortise
/// (~64K flops, a few tens of microseconds); callers derive their grain as
/// kMinWorkPerChunk / work-per-index.
constexpr std::size_t kMinWorkPerChunk = std::size_t{1} << 16;

/// Number of threads parallel regions will use (>= 1).
int NumThreads();

/// Sets the pool size for subsequent parallel regions. Values < 1 clamp
/// to 1 (serial). Safe to call between regions; must not be called from
/// inside a chunk function.
void SetNumThreads(int n);

/// Chunk body: processes the half-open index range [chunk_begin, chunk_end).
using ChunkFn = std::function<void(std::size_t, std::size_t)>;

/// Splits [begin, end) into chunks of `grain` indices (the last chunk may
/// be short) and executes them on the pool; the calling thread participates.
/// Returns after every chunk has finished (full barrier). Runs inline —
/// fusing the whole range into a single fn(begin, end) call — when the
/// range fits one chunk, the pool is size 1, or the caller is itself a
/// pool worker; use ParallelSum when per-chunk identity must survive that
/// fusion.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const ChunkFn& fn);

/// Chunk reduction body: returns the partial sum over [chunk_begin,
/// chunk_end).
using ChunkSumFn = std::function<double(std::size_t, std::size_t)>;

/// Parallel sum reduction with deterministic (chunk-ordered) combination:
/// partial sums are stored per chunk and added in chunk order, so the
/// result is identical for any thread count given fixed (begin, end, grain).
double ParallelSum(std::size_t begin, std::size_t end, std::size_t grain,
                   const ChunkSumFn& fn);

/// Grain (indices per chunk) that gives each chunk at least kMinWorkPerChunk
/// operations when one index costs `work_per_index` operations.
std::size_t GrainForWork(std::size_t work_per_index);

}  // namespace util
}  // namespace rhchme

#endif  // RHCHME_UTIL_PARALLEL_H_
