// Deterministic fault injection for robustness testing.
//
// A process-wide registry of named injection sites compiled into the
// library unconditionally. Each site is a single ShouldFail(site) probe at
// a seam where real systems fail: a kernel producing NaN, the central
// solve going singular, an allocation throwing, an I/O write truncating.
// When the registry is disarmed (the default, and the only state outside
// tests) the probe is one relaxed atomic load — guards live outside the
// inner microkernel loops and cost nothing measurable.
//
// Two arming modes, both exactly replayable:
//
//   ArmCountdown(site, n)  — the site's n-th hit fires (once); hits are
//                            counted deterministically because all sites
//                            sit on serial solver/I/O seams.
//   ArmSeeded(seed, p)     — every site draws from its own Rng seeded with
//                            DeriveStreamSeed(seed, Fnv1a(site)) and fires
//                            with probability p per hit. The same seed
//                            replays the same fault schedule.
//
// Sites are string literals (see fault_site below) so a test can enumerate
// every seam the library registers without linking test-only code.

#ifndef RHCHME_UTIL_FAULT_H_
#define RHCHME_UTIL_FAULT_H_

#include <cstdint>
#include <vector>

namespace rhchme {
namespace util {

/// Canonical injection-site names. Adding a seam means adding a constant
/// here, probing it at the seam, and covering it in fault_injection_test.
namespace fault_site {
// Kernel / solve seams.
inline constexpr const char* kCentralSolveFail = "solve.central_s.fail";
inline constexpr const char* kCentralSolvePoison = "solve.central_s.poison";
inline constexpr const char* kGUpdatePoison = "kernel.g_update.poison";
inline constexpr const char* kResidualPoison = "solver.residual.poison";
inline constexpr const char* kObjectivePoison = "solver.objective.poison";
inline constexpr const char* kInitPoison = "solver.init.poison";
// Allocation seams.
inline constexpr const char* kAllocJointR = "alloc.joint_r";
inline constexpr const char* kAllocWorkspace = "alloc.workspace";
// I/O seams.
inline constexpr const char* kMatrixWriteFail = "io.matrix.write.fail";
inline constexpr const char* kMatrixReadFail = "io.matrix.read.fail";
inline constexpr const char* kSnapshotWriteTruncate =
    "io.snapshot.write.truncate";
inline constexpr const char* kSnapshotRenameFail = "io.snapshot.rename.fail";
}  // namespace fault_site

/// All site names above, for tests that sweep every registered seam.
std::vector<const char*> AllFaultSites();

/// True when the registry says this hit of `site` must fail. The fast path
/// (registry disarmed) is a single relaxed atomic load.
bool FaultShouldFail(const char* site);

/// Arms `site` to fire on exactly its `fire_on_hit`-th hit from now
/// (1-based); earlier and later hits pass. Hit counting starts at this
/// call. Other sites are unaffected.
void FaultArmCountdown(const char* site, int fire_on_hit);

/// Arms every site probabilistically: each hit of site s fires with
/// probability `probability`, drawn from an Rng seeded with
/// DeriveStreamSeed(seed, Fnv1a(s)). Fully replayable from `seed`.
void FaultArmSeeded(uint64_t seed, double probability);

/// Disarms everything and clears hit counters.
void FaultDisarm();

/// Hits recorded for `site` since it was last armed (0 when never armed).
long long FaultHitCount(const char* site);

/// Entropy seed for opt-in soak runs (never used on deterministic paths;
/// callers log the value so any failure replays via FaultArmSeeded).
uint64_t FaultEntropySoakSeed();

/// RAII: disarms the registry on scope exit. Tests arm inside one of
/// these so a failing assertion cannot leak an armed site into the next
/// test case.
class ScopedFaultDisarm {
 public:
  ScopedFaultDisarm() = default;
  ~ScopedFaultDisarm() { FaultDisarm(); }
  ScopedFaultDisarm(const ScopedFaultDisarm&) = delete;
  ScopedFaultDisarm& operator=(const ScopedFaultDisarm&) = delete;
};

}  // namespace util
}  // namespace rhchme

#endif  // RHCHME_UTIL_FAULT_H_
