// Aligned ASCII tables + CSV export for the benchmark harness.
//
// Every bench binary prints its paper-style table through TablePrinter and
// mirrors it to a CSV file so results can be diffed across runs.

#ifndef RHCHME_UTIL_TABLE_PRINTER_H_
#define RHCHME_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rhchme {

/// Collects rows of string cells and renders them as an aligned table
/// (paper style) or CSV.
class TablePrinter {
 public:
  /// `title` is printed above the table; `columns` is the header row.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given number of decimals ("0.892").
  static std::string Fmt(double v, int decimals = 3);

  /// Renders the aligned table to a string.
  std::string ToText() const;

  /// Prints ToText() to stdout.
  void Print() const;

  /// Writes the table as CSV. Overwrites `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rhchme

#endif  // RHCHME_UTIL_TABLE_PRINTER_H_
