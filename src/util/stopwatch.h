// Wall-clock stopwatch used by the experiment runner and benchmarks.

#ifndef RHCHME_UTIL_STOPWATCH_H_
#define RHCHME_UTIL_STOPWATCH_H_

#include <chrono>

namespace rhchme {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rhchme

#endif  // RHCHME_UTIL_STOPWATCH_H_
