#include "util/table_printer.h"

#include <cstdio>
#include <fstream>

namespace rhchme {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  RHCHME_CHECK(!columns_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  RHCHME_CHECK(cells.size() == columns_.size(),
               "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::ToText() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };

  std::string out;
  out += title_;
  out += "\n";
  std::string sep;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    sep += std::string(width[c], '-');
    if (c + 1 < columns_.size()) sep += "-+-";
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out += pad(columns_[c], width[c]);
    if (c + 1 < columns_.size()) out += " | ";
  }
  out += "\n" + sep + "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], width[c]);
      if (c + 1 < row.size()) out += " | ";
    }
    out += "\n";
  }
  return out;
}

void TablePrinter::Print() const { std::printf("%s\n", ToText().c_str()); }

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += "\"";
    return q;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    f << quote(columns_[c]) << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      f << quote(row[c]) << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return Status::OK();
}

}  // namespace rhchme
