// Status / Result<T>: exception-free error handling (RocksDB/Arrow idiom).
//
// Fallible operations return a Status (or Result<T> when they produce a
// value). Internal invariant violations use RHCHME_CHECK, which aborts: a
// broken invariant is a bug, not a recoverable condition.

#ifndef RHCHME_UTIL_STATUS_H_
#define RHCHME_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace rhchme {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed value (shape mismatch, ...).
  kFailedPrecondition,///< Object state does not allow the operation.
  kNotConverged,      ///< Iterative solver hit its iteration cap.
  kNumericalError,    ///< Singular matrix, NaN/Inf encountered, ...
  kNotFound,          ///< Lookup failed (e.g. unknown dataset name).
  kInternal,          ///< Invariant violation that was caught gracefully.
};

/// Human-readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a free-form message.
///
/// Cheap to copy in the OK case (empty message). Use Status::OK() for
/// success and the named factories for failures:
///
///   Status Foo() {
///     if (bad) return Status::InvalidArgument("rows must match: 3 vs 4");
///     return Status::OK();
///   }
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "InvalidArgument: rows must match: 3 vs 4".
  std::string ToString() const;

  /// Same code with "file:line: " prefixed to the message, so propagated
  /// errors carry the seam they crossed. No-op on OK.
  Status WithContext(const char* file, int line) const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Holds T on success, a non-OK Status on failure.
///
///   Result<Matrix> r = Invert(m);
///   if (!r.ok()) return r.status();
///   Matrix inv = std::move(r).value();
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : payload_(std::move(value)) {}
  /*implicit*/ Result(Status status) : payload_(std::move(status)) {
    RhchmeCheckNotOk();
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The failure Status; Status::OK() when ok().
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    AbortIfNotOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfNotOk();
    return std::get<T>(std::move(payload_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  void RhchmeCheckNotOk() const {
    if (ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }
  void AbortIfNotOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace rhchme

/// Aborts with a message when `cond` is false. For programmer errors only.
#define RHCHME_CHECK(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s — %s\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define RHCHME_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::rhchme::Status s_ = (expr);                 \
    if (!s_.ok()) return s_;                      \
  } while (0)

/// Propagates a non-OK Status annotated with this file:line, so a failure
/// deep in a pipeline names every seam it crossed on the way out.
#define RHCHME_RETURN_IF_ERROR_CTX(expr)                    \
  do {                                                      \
    ::rhchme::Status s_ = (expr);                           \
    if (!s_.ok()) return s_.WithContext(__FILE__, __LINE__); \
  } while (0)

#endif  // RHCHME_UTIL_STATUS_H_
