#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace rhchme {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::Next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  RHCHME_CHECK(n > 0, "UniformInt(0)");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Exponential(double lambda) {
  RHCHME_CHECK(lambda > 0.0, "Exponential rate must be positive");
  return -std::log(1.0 - Uniform()) / lambda;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    RHCHME_CHECK(w >= 0.0, "Categorical weights must be nonnegative");
    total += w;
  }
  RHCHME_CHECK(total > 0.0, "Categorical weights must not all be zero");
  double r = Uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // r landed on total due to rounding.
}

int Rng::Poisson(double mean) {
  RHCHME_CHECK(mean >= 0.0, "Poisson mean must be nonnegative");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  // Knuth's product-of-uniforms method.
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  RHCHME_CHECK(k <= n, "sample size exceeds population");
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = UniformInt(j + 1);
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

Rng::State Rng::SaveState() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
  st.have_cached_normal = have_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  // Fold the stream id into the SplitMix64 walk position: stream k reads
  // the (k+1)-th output of the seed's expansion sequence, computed in
  // O(1) because SplitMix64's state advance is a fixed increment.
  uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  // Inline SplitMix64 finaliser on the advanced state.
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng StreamRng(uint64_t seed, uint64_t stream) {
  return Rng(DeriveStreamSeed(seed, stream));
}

}  // namespace rhchme
