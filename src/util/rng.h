// Deterministic random number generation.
//
// Every stochastic component in the library (k-means seeding, synthetic data,
// random initialisation, corruption injection) draws from an explicitly
// seeded Rng so that experiments and tests are exactly reproducible.

#ifndef RHCHME_UTIL_RNG_H_
#define RHCHME_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace rhchme {

/// Deterministic pseudo-random generator (SplitMix64 seeded xoshiro256**).
///
/// Not cryptographic; chosen for speed, quality and full reproducibility
/// across platforms (unlike std::normal_distribution, whose output is
/// implementation-defined — we implement our own transforms).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with rate `lambda` (mean 1/lambda).
  double Exponential(double lambda);

  /// Samples an index from an unnormalised nonnegative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int Poisson(double mean);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Child generator with an independent stream, derived deterministically.
  Rng Split();

  /// Complete generator state, for checkpoint/resume. A generator restored
  /// from a saved state continues the exact stream the original would have
  /// produced (including the Box–Muller cached half-normal).
  struct State {
    uint64_t s[4];
    bool have_cached_normal;
    double cached_normal;
  };

  /// Snapshot of the current stream position.
  State SaveState() const;

  /// Rewinds/forwards this generator to a saved stream position.
  void RestoreState(const State& state);

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Deterministically derives the seed of sub-stream `stream` under `seed`.
///
/// SplitMix64-mixes (seed, stream), so nearby pairs — adjacent streams of
/// one seed, or the same stream of adjacent seeds — land on well-separated
/// generators, unlike additive offsets (seed + c·stream), where different
/// (seed, stream) pairs collide on the same derived seed. Schedule-free by
/// construction: the result depends only on the two inputs, which is what
/// lets threaded consumers (e.g. the per-member ensemble tasks) draw
/// reproducible streams no matter which worker runs them first.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

/// Convenience: an Rng seeded with DeriveStreamSeed(seed, stream).
Rng StreamRng(uint64_t seed, uint64_t stream);

}  // namespace rhchme

#endif  // RHCHME_UTIL_RNG_H_
