#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace rhchme {
namespace util {
namespace {

// True on pool workers, and on the caller while it participates in a
// region; nested ParallelFor calls then run inline.
thread_local bool tls_in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("RHCHME_NUM_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

class ThreadPool {
 public:
  // Leaked singleton: workers parked on the condition variable at process
  // exit must not race static destruction of the pool's mutex.
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
    return *pool;
  }

  int num_threads() const {
    return target_threads_.load(std::memory_order_relaxed);
  }

  void SetNumThreads(int n) {
    std::lock_guard<std::mutex> region(run_mu_);
    JoinWorkers();
    target_threads_.store(std::max(1, n), std::memory_order_relaxed);
  }

  void Run(std::size_t begin, std::size_t end, std::size_t grain,
           const ChunkFn& fn) {
    const std::size_t chunk = std::max<std::size_t>(1, grain);
    const std::size_t nchunks = (end - begin + chunk - 1) / chunk;
    if (nchunks <= 1 || num_threads() <= 1 || tls_in_parallel_region) {
      const bool was_in_region = tls_in_parallel_region;
      tls_in_parallel_region = true;
      fn(begin, end);
      tls_in_parallel_region = was_in_region;
      return;
    }

    // One region at a time; concurrent callers queue here.
    std::lock_guard<std::mutex> region(run_mu_);
    EnsureWorkers(num_threads() - 1);
    const Job job{begin, end, chunk, nchunks, &fn};
    {
      std::unique_lock<std::mutex> lock(mu_);
      // All workers must be parked before job state is rewritten, else a
      // straggler from the previous generation could claim a chunk of the
      // new job while still holding the old function pointer.
      done_cv_.wait(lock, [&] { return idle_ == workers_.size(); });
      job_ = job;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_.store(nchunks, std::memory_order_relaxed);
      ++generation_;
    }
    cv_.notify_all();

    tls_in_parallel_region = true;
    DrainChunks(job);
    tls_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::size_t nchunks = 0;
    const ChunkFn* fn = nullptr;
  };

  explicit ThreadPool(int n) : target_threads_(std::max(1, n)) {}

  void EnsureWorkers(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < n) {
      workers_.emplace_back(&ThreadPool::WorkerLoop, this);
    }
  }

  void JoinWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
    idle_ = 0;
  }

  void WorkerLoop() {
    tls_in_parallel_region = true;
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mu_);
    ++idle_;
    done_cv_.notify_all();
    for (;;) {
      cv_.wait(lock,
               [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      const Job job = job_;
      --idle_;
      lock.unlock();
      DrainChunks(job);
      lock.lock();
      ++idle_;
      done_cv_.notify_all();
    }
  }

  void DrainChunks(const Job& job) {
    for (;;) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.nchunks) return;
      const std::size_t b = job.begin + c * job.chunk;
      const std::size_t e = std::min(job.end, b + job.chunk);
      (*job.fn)(b, e);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk: wake the caller blocked in Run().
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  std::atomic<int> target_threads_;
  std::mutex run_mu_;  // Serialises Run() and SetNumThreads().

  std::mutex mu_;  // Guards job_, generation_, idle_, stop_, workers_.
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job job_;
  std::uint64_t generation_ = 0;
  std::size_t idle_ = 0;
  bool stop_ = false;

  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::size_t> pending_{0};
};

}  // namespace

int NumThreads() { return ThreadPool::Instance().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Instance().SetNumThreads(n); }

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const ChunkFn& fn) {
  if (begin >= end) return;
  ThreadPool::Instance().Run(begin, end, grain, fn);
}

double ParallelSum(std::size_t begin, std::size_t end, std::size_t grain,
                   const ChunkSumFn& fn) {
  if (begin >= end) return 0.0;
  const std::size_t chunk = std::max<std::size_t>(1, grain);
  const std::size_t nchunks = (end - begin + chunk - 1) / chunk;
  std::vector<double> partial(nchunks, 0.0);
  ParallelFor(begin, end, chunk, [&](std::size_t b, std::size_t e) {
    // Chunks are grain-aligned, so the slot index is recoverable from b
    // even when several chunks are fused into one inline call.
    for (std::size_t cb = b; cb < e; cb += chunk) {
      partial[(cb - begin) / chunk] = fn(cb, std::min(e, cb + chunk));
    }
  });
  double total = 0.0;
  for (double v : partial) total += v;
  return total;
}

std::size_t GrainForWork(std::size_t work_per_index) {
  if (work_per_index == 0) work_per_index = 1;
  return std::max<std::size_t>(1, kMinWorkPerChunk / work_per_index);
}

}  // namespace util
}  // namespace rhchme
