#include "util/fault.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "util/rng.h"

namespace rhchme {
namespace util {
namespace {

struct SiteState {
  long long hits = 0;
  long long fire_on_hit = 0;  // 0 = countdown mode off.
  bool fired = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
  // Seeded mode: one independent stream per site so the schedule of one
  // seam does not depend on how often another seam is hit.
  bool seeded = false;
  uint64_t seed = 0;
  double probability = 0.0;
  std::map<std::string, Rng> streams;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // Leaked: alive for process exit.
  return *r;
}

// Fast-path switch: 0 = disarmed. Probes are outside inner kernel loops,
// so one relaxed load is the whole cost of an inactive registry.
std::atomic<int> g_active{0};

uint64_t Fnv1a(const char* s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::vector<const char*> AllFaultSites() {
  return {fault_site::kCentralSolveFail,     fault_site::kCentralSolvePoison,
          fault_site::kGUpdatePoison,        fault_site::kResidualPoison,
          fault_site::kObjectivePoison,      fault_site::kInitPoison,
          fault_site::kAllocJointR,          fault_site::kAllocWorkspace,
          fault_site::kMatrixWriteFail,      fault_site::kMatrixReadFail,
          fault_site::kSnapshotWriteTruncate,
          fault_site::kSnapshotRenameFail};
}

bool FaultShouldFail(const char* site) {
  if (g_active.load(std::memory_order_relaxed) == 0) return false;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteState& st = r.sites[site];
  ++st.hits;
  if (st.fire_on_hit > 0 && !st.fired && st.hits == st.fire_on_hit) {
    st.fired = true;
    return true;
  }
  if (r.seeded) {
    auto it = r.streams.find(site);
    if (it == r.streams.end()) {
      it = r.streams
               .emplace(site, Rng(DeriveStreamSeed(r.seed, Fnv1a(site))))
               .first;
    }
    if (it->second.Uniform() < r.probability) return true;
  }
  return false;
}

void FaultArmCountdown(const char* site, int fire_on_hit) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteState& st = r.sites[site];
  st.hits = 0;
  st.fired = false;
  st.fire_on_hit = fire_on_hit;
  g_active.store(1, std::memory_order_relaxed);
}

void FaultArmSeeded(uint64_t seed, double probability) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.seeded = true;
  r.seed = seed;
  r.probability = probability;
  r.streams.clear();
  g_active.store(1, std::memory_order_relaxed);
}

void FaultDisarm() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  g_active.store(0, std::memory_order_relaxed);
  r.sites.clear();
  r.seeded = false;
  r.streams.clear();
}

long long FaultHitCount(const char* site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

uint64_t FaultEntropySoakSeed() {
  // Soak-only entropy: a wall-clock nanosecond stamp folded through the
  // SplitMix64 finaliser. Never consulted on a deterministic path — the
  // caller must log the returned seed so any soak failure replays exactly
  // via FaultArmSeeded(seed, p).
  const auto tick = std::chrono::steady_clock::now();
  // lint:determinism-ok(opt-in soak entropy, logged by callers and replayable via FaultArmSeeded; never reaches a deterministic path)
  const uint64_t now = static_cast<uint64_t>(tick.time_since_epoch().count());
  return DeriveStreamSeed(now, 0xfa17ULL);
}

}  // namespace util
}  // namespace rhchme
