#include "util/status.h"

namespace rhchme {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kNotConverged: return "NotConverged";
    case StatusCode::kNumericalError: return "NumericalError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

Status Status::WithContext(const char* file, int line) const {
  if (ok()) return *this;
  // Strip the directory: the basename names the seam without leaking
  // build-machine paths into user-visible diagnostics.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }
  return Status(code_,
                std::string(base) + ":" + std::to_string(line) + ": " +
                    message_);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rhchme
