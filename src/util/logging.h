// Minimal leveled logging to stderr.
//
// The library itself is quiet by default (level kWarning); solvers expose a
// `verbose` option that routes per-iteration traces through kDebug.

#ifndef RHCHME_UTIL_LOGGING_H_
#define RHCHME_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rhchme {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Current global threshold.
LogLevel GetLogLevel();

namespace internal {

/// Builds one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rhchme

#define RHCHME_LOG(level)                                              \
  if (static_cast<int>(::rhchme::LogLevel::level) >=                   \
      static_cast<int>(::rhchme::GetLogLevel()))                       \
  ::rhchme::internal::LogMessage(::rhchme::LogLevel::level, __FILE__,  \
                                 __LINE__)

#endif  // RHCHME_UTIL_LOGGING_H_
