#include "factorization/hocc_common.h"

#include <cmath>
#include <limits>
#include <string>

#include "cluster/assignments.h"
#include "cluster/kmeans.h"
#include "la/gemm.h"
#include "la/solve.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace rhchme {
namespace fact {

BlockStructure BuildBlockStructure(const data::MultiTypeRelationalData& data) {
  BlockStructure b;
  b.type_offset.assign(1, 0);
  b.cluster_offset.assign(1, 0);
  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    b.type_offset.push_back(b.type_offset.back() + data.Type(k).count);
    b.cluster_offset.push_back(b.cluster_offset.back() +
                               data.Type(k).clusters);
  }
  return b;
}

Result<la::Matrix> InitMembership(const data::MultiTypeRelationalData& data,
                                  const BlockStructure& blocks,
                                  MembershipInit init, Rng* rng) {
  la::Matrix g(blocks.total_objects(), blocks.total_clusters());
  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    const data::ObjectType& type = data.Type(k);
    la::Matrix block;
    if (init == MembershipInit::kKMeans && !type.features.empty()) {
      // Spherical initialisation: L2-normalise object rows so the seeding
      // reflects direction (content) rather than magnitude — otherwise
      // corrupted high-norm rows capture the k-means++ centroids.
      la::Matrix unit = type.features;
      util::ParallelFor(
          0, unit.rows(), util::GrainForWork(4 * unit.cols() + 1),
          [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = r0; i < r1; ++i) {
              double* r = unit.row_ptr(i);
              double norm = 0.0;
              for (std::size_t j = 0; j < unit.cols(); ++j) {
                // NaN/Inf features (kNonFinite corruption) read as missing:
                // the row degrades toward zero instead of poisoning every
                // centroid distance.
                if (!std::isfinite(r[j])) r[j] = 0.0;
                norm += r[j] * r[j];
              }
              if (norm > 0.0 && std::isfinite(norm)) {
                const double inv = 1.0 / std::sqrt(norm);
                for (std::size_t j = 0; j < unit.cols(); ++j) r[j] *= inv;
              }
            }
          });
      cluster::KMeansOptions kopts;
      kopts.k = type.clusters;
      kopts.restarts = 2;
      Result<cluster::KMeansResult> km = cluster::KMeans(unit, kopts, rng);
      if (!km.ok()) return km.status();
      block = cluster::MembershipFromLabels(km.value().assignments,
                                            type.clusters);
    } else {
      block = cluster::RandomMembership(type.count, type.clusters, rng);
    }
    g.SetBlock(blocks.type_offset[k], blocks.cluster_offset[k], block);
  }
  if (util::FaultShouldFail(util::fault_site::kInitPoison) && !g.empty()) {
    g(0, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  return g;
}

Result<la::Matrix> SolveCentralS(const la::Matrix& g, const la::Matrix& m,
                                 double ridge, SolveStats* stats) {
  if (g.rows() != m.rows() || m.rows() != m.cols()) {
    return Status::InvalidArgument("SolveCentralS: shape mismatch");
  }
  la::Matrix gtg = la::Gram(g);
  la::Matrix gtmg = la::MultiplyTN(g, la::Multiply(m, g));
  return SolveCentralSFromProducts(gtg, gtmg, ridge, stats);
}

Result<la::Matrix> SolveCentralSFromProducts(const la::Matrix& gtg,
                                             const la::Matrix& gtmg,
                                             double ridge, SolveStats* stats) {
  if (gtg.rows() != gtg.cols() || !gtg.SameShape(gtmg)) {
    return Status::InvalidArgument("SolveCentralSFromProducts: shape mismatch");
  }
  // Ridge ladder for the retry guard. Boosts are scaled to the mean
  // |diagonal| of GᵀG so "large" is relative to this problem's Gram
  // magnitude, not an absolute unit. Attempt 0 is byte-for-byte the
  // unguarded solve, preserving healthy trajectories exactly.
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < gtg.rows(); ++i) {
    diag_mean += std::fabs(gtg(i, i));
  }
  if (gtg.rows() > 0) diag_mean /= static_cast<double>(gtg.rows());
  const double scale =
      diag_mean > 0.0 && std::isfinite(diag_mean) ? diag_mean : 1.0;
  const double ladder[3] = {ridge, std::max(ridge * 1e3, scale * 1e-8),
                            std::max(ridge * 1e6, scale * 1e-4)};
  Status last = Status::NumericalError("central solve: no attempt ran");
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (attempt > 0 && stats != nullptr) ++stats->ridge_retries;
    if (attempt == 0 &&
        util::FaultShouldFail(util::fault_site::kCentralSolveFail)) {
      last = Status::NumericalError("injected central-solve failure");
      continue;
    }
    // S = (GᵀG + rI)⁻¹ Gᵀ M G (GᵀG + rI)⁻¹, evaluated as two solves.
    Result<la::Matrix> left = la::SolveRidged(gtg, gtmg, ladder[attempt]);
    if (!left.ok()) {
      last = left.status();
      continue;
    }
    // Right inverse: solve (GᵀG) Xᵀ = leftᵀ, i.e. X = left (GᵀG)⁻¹.
    Result<la::Matrix> right =
        la::SolveRidged(gtg, left.value().Transposed(), ladder[attempt]);
    if (!right.ok()) {
      last = right.status();
      continue;
    }
    la::Matrix s = std::move(right).value().Transposed();
    if (attempt == 0 && !s.empty() &&
        util::FaultShouldFail(util::fault_site::kCentralSolvePoison)) {
      s(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }
    if (!s.AllFinite()) {
      last = Status::NumericalError(
          "SolveCentralSFromProducts: non-finite S at ridge " +
          std::to_string(ladder[attempt]));
      continue;
    }
    return s;
  }
  return last;
}

namespace {

/// Data-term halves of Eq. 21 from precomputed gradient products:
/// num = A⁺ + G·B⁻ and den = A⁻ + G·B⁺ with the symmetrised halves
/// A = ½(mg·Sᵀ + mtg·S) and B of the header comment. Shared by every
/// overload — the dense paths form mg/mtg from M, the sparse-R core from
/// its low-rank identities; both already hold GᵀG.
void GUpdateDataTermsFromProducts(const la::Matrix& mg, const la::Matrix& mtg,
                                  const la::Matrix& s, const la::Matrix& gtg,
                                  const la::Matrix& g, la::Matrix* num,
                                  la::Matrix* den) {
  // A = ½ (M G Sᵀ + Mᵀ G S).
  la::Matrix a = la::MultiplyNT(mg, s);                 // (M G) Sᵀ
  a.Add(la::Multiply(mtg, s));                          // + (Mᵀ G) S
  a.Scale(0.5);

  // B = ½ (Sᵀ GᵀG S + S GᵀG Sᵀ).
  la::Matrix gtgs = la::Multiply(gtg, s);               // GᵀG S
  la::Matrix b = la::MultiplyTN(s, gtgs);               // Sᵀ GᵀG S
  la::Matrix gtgst = la::MultiplyNT(gtg, s);            // GᵀG Sᵀ
  b.Add(la::Multiply(s, gtgst));                        // + S GᵀG Sᵀ
  b.Scale(0.5);

  *num = la::PositivePart(a);
  num->Add(la::Multiply(g, la::NegativePart(b)));
  *den = la::NegativePart(a);
  den->Add(la::Multiply(g, la::PositivePart(b)));
}

}  // namespace

void MultiplicativeGUpdate(const la::Matrix& m, const la::Matrix& s,
                           double lambda, const la::Matrix* laplacian_pos,
                           const la::Matrix* laplacian_neg, double eps,
                           la::Matrix* g) {
  la::Matrix mg = la::Multiply(m, *g);                  // n x c
  la::Matrix mtg;                                       // n x c
  // Streaming AᵀB: materialising Mᵀ here would be the iteration's only
  // dense n x n temporary (M is the solver's full-size data matrix).
  la::MultiplyTNStreamInto(m, *g, &mtg);
  la::Matrix num, den;
  GUpdateDataTermsFromProducts(mg, mtg, s, la::Gram(*g), *g, &num, &den);
  if (lambda != 0.0 && laplacian_pos != nullptr && laplacian_neg != nullptr) {
    la::Matrix lg_neg = la::Multiply(*laplacian_neg, *g);
    lg_neg.Scale(lambda);
    num.Add(lg_neg);
    la::Matrix lg_pos = la::Multiply(*laplacian_pos, *g);
    lg_pos.Scale(lambda);
    den.Add(lg_pos);
  }
  RatioUpdate(num, den, eps, g);
}

void MultiplicativeGUpdate(const la::Matrix& m, const la::Matrix& s,
                           double lambda,
                           const la::SparseMatrix* laplacian_pos,
                           const la::SparseMatrix* laplacian_neg, double eps,
                           la::Matrix* g) {
  la::Matrix mg = la::Multiply(m, *g);                  // n x c
  la::Matrix mtg;                                       // n x c
  la::MultiplyTNStreamInto(m, *g, &mtg);
  const Status st = MultiplicativeGUpdateFromProducts(
      mg, mtg, s, la::Gram(*g), lambda, laplacian_pos, laplacian_neg, eps, g);
  // The products were formed from *g two lines up, so a shape mismatch
  // here is programmer error, not a recoverable pipeline state.
  RHCHME_CHECK(st.ok(), st.ToString().c_str());
}

Status MultiplicativeGUpdateFromProducts(const la::Matrix& mg,
                                         const la::Matrix& mtg,
                                         const la::Matrix& s,
                                         const la::Matrix& gtg, double lambda,
                                         const la::SparseMatrix* laplacian_pos,
                                         const la::SparseMatrix* laplacian_neg,
                                         double eps, la::Matrix* g) {
  if (!mg.SameShape(*g) || !mtg.SameShape(*g)) {
    return Status::InvalidArgument(
        "MultiplicativeGUpdateFromProducts: shape mismatch");
  }
  la::Matrix num, den;
  GUpdateDataTermsFromProducts(mg, mtg, s, gtg, *g, &num, &den);
  if (lambda != 0.0 && laplacian_pos != nullptr && laplacian_neg != nullptr) {
    la::Matrix lg;                                      // n x c SpMM scratch
    laplacian_neg->MultiplyDenseInto(*g, &lg);
    lg.Scale(lambda);
    num.Add(lg);
    laplacian_pos->MultiplyDenseInto(*g, &lg);
    lg.Scale(lambda);
    den.Add(lg);
  }
  RatioUpdate(num, den, eps, g);
  if (util::FaultShouldFail(util::fault_site::kGUpdatePoison) && !g->empty()) {
    // Simulates a kernel emitting NaN (e.g. an overflowed 0·inf product);
    // the solver's post-update tripwire must catch and sanitize it.
    (*g)(0, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  return Status::OK();
}

void MultiplicativeGUpdate(const la::Matrix& m, const la::Matrix& s,
                           double eps, la::Matrix* g) {
  MultiplicativeGUpdate(m, s, /*lambda=*/0.0,
                        static_cast<const la::Matrix*>(nullptr), nullptr, eps,
                        g);
}

void RatioUpdate(const la::Matrix& num, const la::Matrix& den, double eps,
                 la::Matrix* g) {
  RHCHME_CHECK(num.SameShape(den) && num.SameShape(*g),
               "RatioUpdate: shape mismatch");
  // Row-wise: Matrix rows are stride-padded, so flat data() indexing would
  // walk into the padding.
  const std::size_t cols = g->cols();
  util::ParallelFor(0, g->rows(), util::GrainForWork(8 * (cols + 1)),
                    [&](std::size_t r0, std::size_t r1) {
                      for (std::size_t i = r0; i < r1; ++i) {
                        const double* pn = num.row_ptr(i);
                        const double* pd = den.row_ptr(i);
                        double* pg = g->row_ptr(i);
                        for (std::size_t j = 0; j < cols; ++j) {
                          // Guard tiny negatives in the numerator.
                          const double n = pn[j] > 0.0 ? pn[j] : 0.0;
                          pg[j] *= std::sqrt(n / (pd[j] + eps));
                        }
                      }
                    });
}

void NormalizeMembershipRows(const BlockStructure& blocks, la::Matrix* g) {
  for (std::size_t k = 0; k < blocks.num_types(); ++k) {
    const std::size_t c0 = blocks.cluster_offset[k];
    const std::size_t c1 = blocks.cluster_offset[k + 1];
    util::ParallelFor(
        blocks.type_offset[k], blocks.type_offset[k + 1],
        util::GrainForWork(4 * (c1 - c0) + 1),
        [&](std::size_t r0, std::size_t r1) {
          for (std::size_t i = r0; i < r1; ++i) {
            double s = 0.0;
            for (std::size_t j = c0; j < c1; ++j) s += std::fabs((*g)(i, j));
            if (s > 0.0) {
              const double inv = 1.0 / s;
              for (std::size_t j = c0; j < c1; ++j) (*g)(i, j) *= inv;
            } else {
              const double u = 1.0 / static_cast<double>(c1 - c0);
              for (std::size_t j = c0; j < c1; ++j) (*g)(i, j) = u;
            }
          }
        });
  }
}

double ReconstructionError(const la::Matrix& m, const la::Matrix& g,
                           const la::Matrix& s) {
  la::Matrix gs = la::Multiply(g, s);
  la::Matrix approx = la::MultiplyNT(gs, g);
  approx.Sub(m);
  return approx.FrobeniusNormSquared();
}

std::vector<std::vector<std::size_t>> ExtractLabels(
    const BlockStructure& blocks, const la::Matrix& g) {
  std::vector<std::vector<std::size_t>> labels;
  labels.reserve(blocks.num_types());
  for (std::size_t k = 0; k < blocks.num_types(); ++k) {
    labels.push_back(cluster::HardAssignments(
        g, blocks.type_offset[k], blocks.type_offset[k + 1],
        blocks.cluster_offset[k], blocks.cluster_offset[k + 1]));
  }
  return labels;
}

}  // namespace fact
}  // namespace rhchme
