// Shared machinery for NMTF-based HOCC solvers.
//
// RHCHME and the SRC/SNMTF/RMC baselines all decompose the joint inter-type
// matrix R ≈ G·S·Gᵀ with block-diagonal G and zero-diagonal-block S (paper
// §I.A / Eq. 1). This module holds the block-structure bookkeeping, the
// closed-form central-factor update (Eq. 18), the multiplicative ±-split
// G update (Eq. 21) and the shared result type.

#ifndef RHCHME_FACTORIZATION_HOCC_COMMON_H_
#define RHCHME_FACTORIZATION_HOCC_COMMON_H_

#include <string>
#include <vector>

#include "data/multitype_data.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "util/rng.h"
#include "util/status.h"

namespace rhchme {
namespace fact {

/// Row/column offsets describing the block layout of the joint matrices.
struct BlockStructure {
  std::vector<std::size_t> type_offset;     ///< Row offset per type (+ n).
  std::vector<std::size_t> cluster_offset;  ///< Column offset per type (+ c).

  std::size_t num_types() const { return type_offset.size() - 1; }
  std::size_t total_objects() const { return type_offset.back(); }
  std::size_t total_clusters() const { return cluster_offset.back(); }
  std::size_t objects(std::size_t k) const {
    return type_offset[k + 1] - type_offset[k];
  }
  std::size_t clusters(std::size_t k) const {
    return cluster_offset[k + 1] - cluster_offset[k];
  }
};

/// Derives the block layout from the data's type/cluster counts.
BlockStructure BuildBlockStructure(const data::MultiTypeRelationalData& data);

/// How to initialise the membership matrix G (paper §III.D: either works;
/// k-means is Algorithm 2's default).
enum class MembershipInit { kKMeans, kRandom };

/// Block-diagonal initial G: type k's block is filled by k-means on the
/// type's features (or randomly), rows L1-normalised, never exactly zero
/// inside the block (multiplicative updates cannot leave zeros).
Result<la::Matrix> InitMembership(const data::MultiTypeRelationalData& data,
                                  const BlockStructure& blocks,
                                  MembershipInit init, Rng* rng);

/// Counters surfaced by the central-solve guard (folded into the solver's
/// FitDiagnostics). Optional everywhere — passing nullptr skips counting.
struct SolveStats {
  int ridge_retries = 0;  ///< Boosted-ridge attempts after a failed solve.
};

/// Closed-form S given G (paper Eq. 18): S = P·Gᵀ·M·G·P with
/// P = (GᵀG + ridge·I)⁻¹. `m` is R (or R - E_R for the robust variant).
Result<la::Matrix> SolveCentralS(const la::Matrix& g, const la::Matrix& m,
                                 double ridge = 1e-9,
                                 SolveStats* stats = nullptr);

/// Product-form Eq. 18: the same closed form from the precomputed c x c
/// factors `gtg` = GᵀG and `gtmg` = Gᵀ·M·G. This is the seam the
/// implicit-M solver cores plug into — the sparse-R core evaluates
/// Gᵀ·M·G from low-rank identities without ever forming M, then hands
/// the c x c pieces here. SolveCentralS is a thin wrapper around it.
///
/// Numerical guard: when the base solve fails or produces a non-finite S
/// (singular GᵀG, injected fault), the solve is retried up the ridge
/// ladder {ridge, ~1e-8·d̄, ~1e-4·d̄} with d̄ the mean |diagonal| of GᵀG,
/// counting each retry in `stats`. Only after the whole ladder fails does
/// the last error surface. The first attempt is byte-for-byte the
/// unguarded computation, so healthy fits keep their exact trajectory.
Result<la::Matrix> SolveCentralSFromProducts(const la::Matrix& gtg,
                                             const la::Matrix& gtmg,
                                             double ridge = 1e-9,
                                             SolveStats* stats = nullptr);

/// One multiplicative update of G (paper Eq. 21) for the objective
///   ‖M − G·S·Gᵀ‖²_F + lambda·tr(Gᵀ·L·G):
///   G ← G ∘ sqrt( (lambda·L⁻·G + A⁺ + G·B⁻) / (lambda·L⁺·G + A⁻ + G·B⁺) )
/// with the symmetrised gradient halves A = ½(M·G·Sᵀ + Mᵀ·G·S) and
/// B = ½(Sᵀ·GᵀG·S + S·GᵀG·Sᵀ), which reduce to the paper's A = M·G·Sᵀ,
/// B = Sᵀ·GᵀG·S when M and S are symmetric (DESIGN.md §5).
///
/// `laplacian_pos`/`laplacian_neg` are the precomputed ± parts of L; pass
/// nullptr (with lambda = 0) when there is no manifold regulariser.
/// `eps` floors the denominator. Zero entries of G stay zero, so the
/// block-diagonal structure is preserved.
void MultiplicativeGUpdate(const la::Matrix& m, const la::Matrix& s,
                           double lambda, const la::Matrix* laplacian_pos,
                           const la::Matrix* laplacian_neg, double eps,
                           la::Matrix* g);

/// Sparse-Laplacian overload: the ± parts stay in CSR and the L±·G terms
/// run as SpMM (O(nnz·c) instead of O(n²·c)); the pNN ensemble Laplacian
/// is never densified. Values agree with the dense overload to rounding.
void MultiplicativeGUpdate(const la::Matrix& m, const la::Matrix& s,
                           double lambda,
                           const la::SparseMatrix* laplacian_pos,
                           const la::SparseMatrix* laplacian_neg, double eps,
                           la::Matrix* g);

/// Product-form Eq. 21: the same update from precomputed gradient halves
/// `mg` = M·G and `mtg` = Mᵀ·G (both n x c) and `gtg` = GᵀG instead of M
/// itself — the seam shared with the sparse-R solver core, which
/// evaluates the products in O(nnz + n·c²) via the implicit
/// M = R − diag(s)·(R − H·Gᵀ) and never materialises a dense M (and
/// already holds GᵀG from the S solve). `g` must be the same membership
/// every product was formed against. Laplacian handling matches the
/// sparse overload above. Returns InvalidArgument on shape mismatch
/// instead of aborting — this is a fit-pipeline seam, and bad shapes here
/// can come from corrupted snapshots, not only programmer error.
Status MultiplicativeGUpdateFromProducts(const la::Matrix& mg,
                                         const la::Matrix& mtg,
                                         const la::Matrix& s,
                                         const la::Matrix& gtg, double lambda,
                                         const la::SparseMatrix* laplacian_pos,
                                         const la::SparseMatrix* laplacian_neg,
                                         double eps, la::Matrix* g);

/// No-regulariser convenience (lambda = 0): data terms only. Avoids the
/// nullptr-overload ambiguity at call sites without a Laplacian.
void MultiplicativeGUpdate(const la::Matrix& m, const la::Matrix& s,
                           double eps, la::Matrix* g);

/// G ∘= sqrt(num/(den+eps)) — the bare ratio update (used by DRCC, whose
/// factor matrices are not symmetric).
void RatioUpdate(const la::Matrix& num, const la::Matrix& den, double eps,
                 la::Matrix* g);

/// Row-wise L1 normalisation applied block-by-block: each row of type k is
/// normalised within its own cluster columns (paper Eq. 22; all-zero rows
/// become uniform over the block).
void NormalizeMembershipRows(const BlockStructure& blocks, la::Matrix* g);

/// Reconstruction ‖M − G·S·Gᵀ‖²_F.
double ReconstructionError(const la::Matrix& m, const la::Matrix& g,
                           const la::Matrix& s);

/// Shared outcome of a HOCC solver.
struct HoccResult {
  la::Matrix g;                         ///< Joint n x c membership matrix.
  la::Matrix s;                         ///< Joint c x c association matrix.
  /// Hard labels per type (labels[k][i] in [0, c_k)).
  std::vector<std::vector<std::size_t>> labels;
  std::vector<double> objective_trace;  ///< Objective after each iteration.
  int iterations = 0;
  bool converged = false;
  double seconds = 0.0;                 ///< Wall-clock fit time.
};

/// Extracts hard per-type labels from the joint G.
std::vector<std::vector<std::size_t>> ExtractLabels(
    const BlockStructure& blocks, const la::Matrix& g);

}  // namespace fact
}  // namespace rhchme

#endif  // RHCHME_FACTORIZATION_HOCC_COMMON_H_
