// Reproduces Fig. 2 of the paper: FScore and NMI curves with respect to
// the four trade-off parameters on R-Min20Max200 (our D3' analogue):
//
//   lambda — Laplacian regulariser strength   {0.001 .. 1000}
//   gamma  — subspace noise tolerance         {0.01 .. 100}
//   alpha  — ensemble combination             {1/16 .. 16}
//   beta   — error-matrix trade-off           {1 .. 1000}
//
// Each sweep varies one parameter with the others at the library defaults
// (the paper does the same, §IV.E). The lambda/beta/alpha sweeps reuse the
// learned subspace affinities, mirroring how a practitioner would tune.

#include <cstdio>
#include <string>
#include <vector>

#include "rhchme/rhchme.h"

namespace {

using namespace rhchme;  // NOLINT — bench binary, compactness wins.

eval::Scores RunWithEnsemble(const data::MultiTypeRelationalData& d,
                             const core::HeterogeneousEnsemble& ensemble,
                             core::RhchmeOptions opts) {
  opts.max_iterations = 50;
  core::Rhchme solver(opts);
  auto fit = solver.FitWithEnsemble(d, ensemble);
  RHCHME_CHECK(fit.ok(), fit.status().ToString().c_str());
  return eval::ScoreLabels(d.Type(0).labels, fit.value().hocc.labels[0])
      .value();
}

void PrintSweep(const char* name, const std::vector<double>& grid,
                const std::vector<eval::Scores>& scores,
                TablePrinter* csv_out) {
  TablePrinter t(std::string("Fig. 2 — FScore/NMI vs ") + name,
                 {name, "FScore", "NMI"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.AddRow({TablePrinter::Fmt(grid[i], grid[i] < 0.1 ? 3 : 2),
              TablePrinter::Fmt(scores[i].fscore, 3),
              TablePrinter::Fmt(scores[i].nmi, 3)});
    csv_out->AddRow({name, TablePrinter::Fmt(grid[i], 4),
                     TablePrinter::Fmt(scores[i].fscore, 4),
                     TablePrinter::Fmt(scores[i].nmi, 4)});
  }
  t.Print();
}

}  // namespace

int main() {
  auto data =
      data::GenerateSyntheticCorpus(data::ReutersMin20Max200Preset());
  RHCHME_CHECK(data.ok(), data.status().ToString().c_str());
  const data::MultiTypeRelationalData& d = data.value();
  const fact::BlockStructure blocks = fact::BuildBlockStructure(d);
  std::printf("Fig. 2 parameter sweeps on D3' (R-Min20Max200 analogue), "
              "n=%zu\n\n", d.TotalObjects());

  TablePrinter csv("fig2", {"parameter", "value", "fscore", "nmi"});
  const core::RhchmeOptions defaults;  // λ=250, β=300, α=1, γ=5.

  // Base ensemble at default gamma/alpha — reused by λ, β, α sweeps.
  auto base = core::BuildEnsemble(d, blocks, defaults.ensemble);
  RHCHME_CHECK(base.ok(), base.status().ToString().c_str());

  // ---- lambda sweep ---------------------------------------------------------
  {
    const std::vector<double> grid = {0.001, 0.01, 0.1, 1,
                                      250,   500,  750, 1000};
    std::vector<eval::Scores> scores;
    for (double lambda : grid) {
      core::RhchmeOptions opts = defaults;
      opts.lambda = lambda;
      scores.push_back(RunWithEnsemble(d, base.value(), opts));
    }
    PrintSweep("lambda", grid, scores, &csv);
  }

  // ---- gamma sweep (rebuilds the subspace member) ---------------------------
  {
    const std::vector<double> grid = {0.01, 0.1, 1, 5, 10, 25, 50, 100};
    std::vector<eval::Scores> scores;
    for (double gamma : grid) {
      core::RhchmeOptions opts = defaults;
      opts.ensemble.subspace.gamma = gamma;
      auto ens = core::BuildEnsemble(d, blocks, opts.ensemble);
      RHCHME_CHECK(ens.ok(), ens.status().ToString().c_str());
      scores.push_back(RunWithEnsemble(d, ens.value(), opts));
    }
    PrintSweep("gamma", grid, scores, &csv);
  }

  // ---- alpha sweep (reweights prelearned members) ----------------------------
  {
    const std::vector<double> grid = {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2,
                                      1,        2,       4,       8,
                                      16};
    std::vector<eval::Scores> scores;
    for (double alpha : grid) {
      core::RhchmeOptions opts = defaults;
      opts.ensemble.alpha = alpha;
      auto reweighted = core::ReweightEnsemble(base.value(), blocks, alpha);
      RHCHME_CHECK(reweighted.ok(), reweighted.status().ToString().c_str());
      scores.push_back(RunWithEnsemble(d, reweighted.value(), opts));
    }
    PrintSweep("alpha", grid, scores, &csv);
  }

  // ---- beta sweep ------------------------------------------------------------
  {
    const std::vector<double> grid = {1,  10,  20,  30, 40,
                                      50, 300, 1000, 10000};
    std::vector<eval::Scores> scores;
    for (double beta : grid) {
      core::RhchmeOptions opts = defaults;
      opts.beta = beta;
      scores.push_back(RunWithEnsemble(d, base.value(), opts));
    }
    PrintSweep("beta", grid, scores, &csv);
  }

  (void)csv.WriteCsv("results_fig2_param_sweep.csv");
  std::printf("CSV written: results_fig2_param_sweep.csv\n");
  return 0;
}
