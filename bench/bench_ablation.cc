// Ablation bench for RHCHME's design choices (DESIGN.md §4).
//
// Not a paper table — it isolates the contribution of each component the
// paper argues for in §III:
//   1. ensemble members: pNN only (≈SNMTF's estimate), subspace only,
//      or the full heterogeneous ensemble (Eq. 12);
//   2. the sample-wise sparse error matrix E_R (Eq. 13), evaluated on
//      clean and corrupted data;
//   3. the row ℓ1 normalisation of Eq. 22 (trivial-solution guard).

#include <cstdio>
#include <string>
#include <vector>

#include "rhchme/rhchme.h"

namespace {
using namespace rhchme;  // NOLINT — bench binary.

eval::Scores RunVariant(const data::MultiTypeRelationalData& d,
                        core::RhchmeOptions opts) {
  opts.max_iterations = 50;
  core::Rhchme solver(opts);
  auto fit = solver.Fit(d);
  RHCHME_CHECK(fit.ok(), fit.status().ToString().c_str());
  return eval::ScoreLabels(d.Type(0).labels, fit.value().hocc.labels[0])
      .value();
}

void Section(const char* title, const data::MultiTypeRelationalData& d,
             const std::vector<std::pair<std::string, core::RhchmeOptions>>&
                 variants,
             TablePrinter* csv) {
  TablePrinter t(title, {"Variant", "FScore", "NMI"});
  for (const auto& [name, opts] : variants) {
    eval::Scores s = RunVariant(d, opts);
    t.AddRow({name, TablePrinter::Fmt(s.fscore, 3),
              TablePrinter::Fmt(s.nmi, 3)});
    csv->AddRow({title, name, TablePrinter::Fmt(s.fscore, 4),
                 TablePrinter::Fmt(s.nmi, 4)});
  }
  t.Print();
}

}  // namespace

int main() {
  TablePrinter csv("ablation", {"section", "variant", "fscore", "nmi"});

  // ---- Ensemble members on D3' ---------------------------------------------
  {
    auto data =
        data::GenerateSyntheticCorpus(data::ReutersMin20Max200Preset());
    RHCHME_CHECK(data.ok(), data.status().ToString().c_str());
    core::RhchmeOptions full;
    core::RhchmeOptions knn_only = full;
    knn_only.ensemble.include_subspace = false;
    core::RhchmeOptions sub_only = full;
    sub_only.ensemble.include_knn = false;
    core::RhchmeOptions no_laplacian = full;
    no_laplacian.lambda = 0.0;
    Section("Ablation A — ensemble members (D3')", data.value(),
            {{"full ensemble (Eq. 12)", full},
             {"pNN member only (SNMTF-style)", knn_only},
             {"subspace member only", sub_only},
             {"no manifold regulariser (lambda=0)", no_laplacian}},
            &csv);
  }

  // ---- Error matrix under corruption (D1' at two corruption levels) --------
  for (double corruption : {0.0, 0.15}) {
    data::SyntheticCorpusOptions gen = data::Multi5Preset();
    gen.corrupted_doc_fraction = corruption;
    gen.corruption_magnitude = 5.0;
    auto data = data::GenerateSyntheticCorpus(gen);
    RHCHME_CHECK(data.ok(), data.status().ToString().c_str());
    core::RhchmeOptions with_er;
    core::RhchmeOptions without_er = with_er;
    without_er.use_error_matrix = false;
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Ablation B — error matrix (D1', %.0f%% corrupted rows)",
                  100.0 * corruption);
    Section(title, data.value(),
            {{"with E_R (Eq. 15)", with_er},
             {"without E_R (squared loss only)", without_er}},
            &csv);
  }

  // ---- Row normalisation ----------------------------------------------------
  {
    auto data = data::GenerateSyntheticCorpus(data::Multi10Preset());
    RHCHME_CHECK(data.ok(), data.status().ToString().c_str());
    core::RhchmeOptions with_norm;
    core::RhchmeOptions without_norm = with_norm;
    without_norm.normalize_rows = false;
    // The trivial-solution risk grows with lambda; test at a large value.
    core::RhchmeOptions big_lambda_norm = with_norm;
    big_lambda_norm.lambda = 1500.0;
    core::RhchmeOptions big_lambda_free = without_norm;
    big_lambda_free.lambda = 1500.0;
    Section("Ablation C — row l1 normalisation (D2')", data.value(),
            {{"normalised (Eq. 22), lambda=250", with_norm},
             {"unnormalised, lambda=250", without_norm},
             {"normalised, lambda=1500", big_lambda_norm},
             {"unnormalised, lambda=1500", big_lambda_free}},
            &csv);
  }

  (void)csv.WriteCsv("results_ablation.csv");
  std::printf("CSV written: results_ablation.csv\n");
  return 0;
}
