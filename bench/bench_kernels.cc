// google-benchmark microbenchmarks for the numerical kernels behind the
// solvers (Table V's costs decompose into exactly these pieces):
// GEMM variants, pNN graph construction, Laplacian assembly, one SPG step
// worth of work, one multiplicative-update iteration, and k-means.
//
// Flop-counted benchmarks report a GFLOP/s rate counter, and every
// benchmark reports the pool size as a `threads` counter so perf runs are
// comparable across machines and RHCHME_NUM_THREADS settings. In addition
// to the console table, results are written to BENCH_kernels.json
// (google-benchmark's JSON schema) so successive PRs can diff the perf
// trajectory; pass --benchmark_out=<path> to redirect.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "rhchme/rhchme.h"
#include "util/parallel.h"

namespace {

using namespace rhchme;  // NOLINT — bench binary.

constexpr char kJsonOutPath[] = "BENCH_kernels.json";

la::Matrix RandomMatrix(std::size_t r, std::size_t c, uint64_t seed) {
  Rng rng(seed);
  return la::Matrix::RandomUniform(r, c, &rng);
}

/// Attaches the shared counters: flops/iteration as a GFLOP/s rate and the
/// thread-pool size the run used.
void SetKernelCounters(benchmark::State& state, double flops_per_iteration) {
  if (flops_per_iteration > 0.0) {
    state.counters["GFLOP/s"] = benchmark::Counter(
        flops_per_iteration, benchmark::Counter::kIsIterationInvariantRate,
        benchmark::Counter::kIs1000);
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(util::NumThreads()));
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix a = RandomMatrix(n, n, 1);
  la::Matrix b = RandomMatrix(n, n, 2);
  la::Matrix c;
  for (auto _ : state) {
    la::MultiplyInto(a, b, &c);
    // lint:stride-ok(DoNotOptimize sink: pointer identity only, no element access)
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  SetKernelCounters(state, flops);
}
BENCHMARK(BM_GemmNN)->UseRealTime()->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_GemmTallSkinny(benchmark::State& state) {
  // The solver's dominant product shape: (n x n) · (n x c).
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::Matrix m = RandomMatrix(n, n, 3);
  la::Matrix g = RandomMatrix(n, c, 4);
  la::Matrix out;
  for (auto _ : state) {
    la::MultiplyInto(m, g, &out);
    // lint:stride-ok(DoNotOptimize sink: pointer identity only, no element access)
    benchmark::DoNotOptimize(out.data());
  }
  const double flops = 2.0 * static_cast<double>(n) * n * c;
  state.SetItemsProcessed(state.iterations() * 2 * n * n * c);
  SetKernelCounters(state, flops);
}
BENCHMARK(BM_GemmTallSkinny)->UseRealTime()->Arg(256)->Arg(512)->Arg(1024);

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::Matrix g = RandomMatrix(n, c, 5);
  for (auto _ : state) {
    la::Matrix gtg = la::Gram(g);
    // lint:stride-ok(DoNotOptimize sink: pointer identity only, no element access)
    benchmark::DoNotOptimize(gtg.data());
  }
  // Upper triangle of a c x c result, each entry an n-length dot.
  SetKernelCounters(state, static_cast<double>(n) * c * (c + 1));
}
BENCHMARK(BM_Gram)->UseRealTime()->Arg(256)->Arg(1024);

void BM_Sandwich(benchmark::State& state) {
  // tr(Gᵀ L G) — the ensemble-regulariser term of the objective. A fully
  // dense L: every kBlockK segment fails the zero probe, so this measures
  // the branch-free axpy schedule.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::Matrix g = RandomMatrix(n, c, 13);
  la::Matrix l = RandomMatrix(n, n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Sandwich(g, l));
  }
  SetKernelCounters(state,
                    2.0 * static_cast<double>(n) * n * c +
                        2.0 * static_cast<double>(n) * c);
}
BENCHMARK(BM_Sandwich)->UseRealTime()->Arg(256)->Arg(1024);

void BM_SandwichSparseRows(benchmark::State& state) {
  // The same dense-storage kernel fed a pNN-sparse L (16 nnz/row, the
  // ensemble Laplacian shape): every segment passes the zero probe and
  // takes the zero-skip schedule. Paired with BM_Sandwich this gates the
  // density probe in la::Sandwich from both sides.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  const std::size_t nnz_per_row = 16;
  la::Matrix g = RandomMatrix(n, c, 13);
  Rng rng(14);
  la::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      l(i, rng.UniformInt(n)) = rng.Uniform(0.1, 1.0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Sandwich(g, l));
  }
  // Useful flops: one axpy per stored nonzero plus the trace dots.
  SetKernelCounters(state,
                    2.0 * static_cast<double>(n) * nnz_per_row * c +
                        2.0 * static_cast<double>(n) * c);
}
BENCHMARK(BM_SandwichSparseRows)->UseRealTime()->Arg(256)->Arg(1024);

// ---- SIMD primitive microbenchmarks --------------------------------------
// Scalar-vs-SIMD pairs for the la/simd.h kernels the GEMM / distance /
// sparse hot loops are built from. Within one binary the "Simd" variants
// run whatever path the build selected (see the `isa` label), so the pair
// quantifies the vector-width win without needing a second build.

std::vector<double> RandomVector(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

void SetSimdCounters(benchmark::State& state, double flops_per_iteration) {
  SetKernelCounters(state, flops_per_iteration);
  state.SetLabel(la::simd::IsaName());
}

void BM_DotSimd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a = RandomVector(n, 21), b = RandomVector(n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::simd::Dot(a.data(), b.data(), n));
  }
  SetSimdCounters(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_DotSimd)->UseRealTime()->Arg(64)->Arg(4096);

void BM_DotScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a = RandomVector(n, 21), b = RandomVector(n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::simd::scalar::Dot(a.data(), b.data(), n));
  }
  SetSimdCounters(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_DotScalar)->UseRealTime()->Arg(64)->Arg(4096);

void BM_AxpySimd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x = RandomVector(n, 23), y = RandomVector(n, 24);
  for (auto _ : state) {
    la::simd::Axpy(1.0000001, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  SetSimdCounters(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_AxpySimd)->UseRealTime()->Arg(64)->Arg(4096);

void BM_AxpyScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x = RandomVector(n, 23), y = RandomVector(n, 24);
  for (auto _ : state) {
    la::simd::scalar::Axpy(1.0000001, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  SetSimdCounters(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_AxpyScalar)->UseRealTime()->Arg(64)->Arg(4096);

void BM_SquaredDistanceSimd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a = RandomVector(n, 25), b = RandomVector(n, 26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        la::simd::SquaredDistance(a.data(), b.data(), n));
  }
  SetSimdCounters(state, 3.0 * static_cast<double>(n));
}
BENCHMARK(BM_SquaredDistanceSimd)->UseRealTime()->Arg(64)->Arg(4096);

void BM_SquaredDistanceScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a = RandomVector(n, 25), b = RandomVector(n, 26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        la::simd::scalar::SquaredDistance(a.data(), b.data(), n));
  }
  SetSimdCounters(state, 3.0 * static_cast<double>(n));
}
BENCHMARK(BM_SquaredDistanceScalar)->UseRealTime()->Arg(64)->Arg(4096);

la::SparseMatrix RandomSparse(std::size_t rows, std::size_t cols,
                              std::size_t nnz_per_row, uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> trips;
  trips.reserve(rows * nnz_per_row);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      trips.push_back({i, rng.UniformInt(cols), rng.Uniform(0.1, 1.0)});
    }
  }
  return la::SparseMatrix::FromTriplets(rows, cols, std::move(trips));
}

void BM_SparseSandwich(benchmark::State& state) {
  // tr(Gᵀ L G) against a pNN-sparse L (16 nnz/row) — the objective's
  // regulariser term on the memory-lean solver core; O(nnz·c) instead of
  // the dense kernel's O(n²·c).
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::Matrix g = RandomMatrix(n, c, 13);
  la::SparseMatrix l = RandomSparse(n, n, 16, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Sandwich(g, l));
  }
  SetKernelCounters(state, 2.0 * static_cast<double>(l.nnz()) * c);
}
BENCHMARK(BM_SparseSandwich)->UseRealTime()->Arg(256)->Arg(1024)->Arg(4096);

void BM_SparseCscBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::SparseMatrix a = RandomSparse(n, n, 16, 15);
  for (auto _ : state) {
    state.PauseTiming();
    a.Scale(1.0);  // Invalidates the cached mirror; not part of the build.
    state.ResumeTiming();
    benchmark::DoNotOptimize(&a.BuildCscMirror());
  }
  SetKernelCounters(state, 0.0);
  state.counters["nnz"] = benchmark::Counter(static_cast<double>(a.nnz()));
}
BENCHMARK(BM_SparseCscBuild)->UseRealTime()->Arg(1024)->Arg(4096);

void BM_SparseTransposedDenseScatter(benchmark::State& state) {
  // Aᵀ·B on the per-chunk-accumulator fallback (no CSC mirror) — the
  // one-shot-product path.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::SparseMatrix a = RandomSparse(n, n, 16, 16);
  la::Matrix b = RandomMatrix(n, c, 17);
  la::Matrix out;
  for (auto _ : state) {
    a.MultiplyTransposedDenseInto(b, &out);
    // lint:stride-ok(DoNotOptimize sink: pointer identity only, no element access)
    benchmark::DoNotOptimize(out.data());
  }
  SetKernelCounters(state, 2.0 * static_cast<double>(a.nnz()) * c);
}
BENCHMARK(BM_SparseTransposedDenseScatter)->UseRealTime()
    ->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SparseTransposedDenseCsc(benchmark::State& state) {
  // Same product with the CSC mirror built once up front: gather-style
  // loops threading over output rows.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::SparseMatrix a = RandomSparse(n, n, 16, 16);
  a.BuildCscMirror();
  la::Matrix b = RandomMatrix(n, c, 17);
  la::Matrix out;
  for (auto _ : state) {
    a.MultiplyTransposedDenseInto(b, &out);
    // lint:stride-ok(DoNotOptimize sink: pointer identity only, no element access)
    benchmark::DoNotOptimize(out.data());
  }
  SetKernelCounters(state, 2.0 * static_cast<double>(a.nnz()) * c);
}
BENCHMARK(BM_SparseTransposedDenseCsc)->UseRealTime()
    ->Arg(1024)->Arg(4096)->Arg(16384);

void BM_EnsembleBuild(benchmark::State& state) {
  // Full heterogeneous-ensemble construction (paper Eq. 12): per (type,
  // member) tasks — subspace learning + pNN graph + Laplacians — on the
  // pool. The `threads` counter shows the scaling knob.
  const auto per_type = static_cast<std::size_t>(state.range(0));
  data::BlockWorldOptions data_opts;
  data_opts.objects_per_type = {per_type, per_type, per_type};
  data_opts.n_classes = 3;
  data_opts.seed = 18;
  data::MultiTypeRelationalData d =
      data::GenerateBlockWorld(data_opts).value();
  fact::BlockStructure blocks = fact::BuildBlockStructure(d);
  core::EnsembleOptions opts;
  opts.subspace.spg.max_iterations = 15;
  for (auto _ : state) {
    auto e = core::BuildEnsemble(d, blocks, opts);
    benchmark::DoNotOptimize(e.value().laplacian.nnz());
  }
  SetKernelCounters(state, 0.0);
}
BENCHMARK(BM_EnsembleBuild)->UseRealTime()->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_KnnGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = RandomMatrix(n, 64, 6);
  graph::KnnGraphOptions opts;  // p=5 cosine, the paper's setting.
  for (auto _ : state) {
    auto g = graph::BuildKnnGraph(pts, opts);
    benchmark::DoNotOptimize(g.value().nnz());
  }
  // Pairwise distances dominate: n(n-1)/2 dots of length 64.
  SetKernelCounters(state, static_cast<double>(n) * (n - 1) * 64);
}
BENCHMARK(BM_KnnGraph)->UseRealTime()->Arg(128)->Arg(256)->Arg(512);

/// Clustered points for the construction-engine benches. NN-descent's
/// ~O(n^1.14) claim holds on data with local structure — which is also
/// what the pNN ensemble members actually see; uniform random points in
/// 32-d are the ANN worst case and would benchmark a regime the solver
/// never runs in.
la::Matrix ClusteredPoints(std::size_t n, std::size_t d, uint64_t seed) {
  constexpr std::size_t kClusters = 16;
  Rng rng(seed);
  la::Matrix centers(kClusters, d);
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (std::size_t j = 0; j < d; ++j) centers(c, j) = 8.0 * rng.Normal();
  }
  la::Matrix pts(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % kClusters;
    for (std::size_t j = 0; j < d; ++j) {
      pts(i, j) = centers(c, j) + rng.Normal();
    }
  }
  return pts;
}

void BM_KnnBuildExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = ClusteredPoints(n, 32, 8);
  graph::KnnGraphOptions opts;
  opts.p = 10;
  opts.backend = graph::KnnBackend::kExact;
  for (auto _ : state) {
    auto lists = graph::BuildKnnNeighbors(pts, opts);
    benchmark::DoNotOptimize(lists.value().size());
  }
  // The exact engine is its own recall reference.
  state.counters["recall"] = benchmark::Counter(1.0);
  SetKernelCounters(state, static_cast<double>(n) * (n - 1) * 32);
}
BENCHMARK(BM_KnnBuildExact)->UseRealTime()->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_KnnBuildDescent(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = ClusteredPoints(n, 32, 8);
  graph::KnnGraphOptions opts;
  opts.p = 10;
  opts.backend = graph::KnnBackend::kNNDescent;
  for (auto _ : state) {
    auto lists = graph::BuildKnnNeighbors(pts, opts);
    benchmark::DoNotOptimize(lists.value().size());
  }
  // Recall vs the exact engine, measured outside the timed loop and
  // regression-gated by tools/bench_compare.py alongside real_time.
  state.counters["recall"] =
      benchmark::Counter(eval::RecallAgainstExact(pts, opts).value());
  SetKernelCounters(state, 0.0);  // Adaptive work; no meaningful flop count.
}
BENCHMARK(BM_KnnBuildDescent)->UseRealTime()->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Laplacian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = RandomMatrix(n, 32, 7);
  graph::KnnGraphOptions opts;
  auto w = graph::BuildKnnGraph(pts, opts).value();
  for (auto _ : state) {
    auto l = graph::BuildLaplacian(w, graph::LaplacianKind::kSymmetric);
    benchmark::DoNotOptimize(l.value().data());
  }
  SetKernelCounters(state, 0.0);
}
BENCHMARK(BM_Laplacian)->UseRealTime()->Arg(128)->Arg(512);

void BM_SubspaceLearning(benchmark::State& state) {
  // Full Algorithm 1 on an n-object type (30 SPG iterations).
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix x = RandomMatrix(n, 80, 8);
  core::SubspaceOptions opts;
  opts.spg.max_iterations = 30;
  for (auto _ : state) {
    auto r = core::LearnSubspaceAffinity(x, opts);
    benchmark::DoNotOptimize(r.value().affinity.data());
  }
  SetKernelCounters(state, 0.0);
}
BENCHMARK(BM_SubspaceLearning)->UseRealTime()->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_MultiplicativeIteration(benchmark::State& state) {
  // One S-solve + one multiplicative G update, the per-iteration core of
  // every HOCC solver here.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 15;
  Rng rng(9);
  la::Matrix r = la::Matrix::RandomUniform(n, n, &rng);
  la::Matrix g = la::Matrix::RandomUniform(n, c, &rng, 0.1, 1.0);
  la::Matrix lap = la::Matrix::Identity(n);
  la::Matrix lap_pos = la::PositivePart(lap);
  la::Matrix lap_neg = la::NegativePart(lap);
  for (auto _ : state) {
    auto s = fact::SolveCentralS(g, r, 1e-9);
    fact::MultiplicativeGUpdate(r, s.value(), 1.0, &lap_pos, &lap_neg,
                                1e-12, &g);
    // lint:stride-ok(DoNotOptimize sink: pointer identity only, no element access)
    benchmark::DoNotOptimize(g.data());
  }
  // Dominated by the n² x c products: M G, Mᵀ G, and the Laplacian terms.
  SetKernelCounters(state, 8.0 * static_cast<double>(n) * n * c);
}
BENCHMARK(BM_MultiplicativeIteration)->UseRealTime()->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Which solver core a BM_SolverIteration* variant exercises.
enum class SolverCore { kImplicit, kExplicit, kSparseR };

/// Shared harness for the solver-core benchmarks: a 3-type block world
/// with a prebuilt ensemble, timed over a fixed 6-iteration
/// FitWithEnsemble so per-fit times are directly comparable between the
/// implicit (memory-lean), explicit-materialisation and sparse-R cores.
/// `dropout` controls the joint R's fill — the default 0.3 matches the
/// original pair of benchmarks; the tf-idf variant pushes it to 0.97 so
/// the sparse core's O(nnz) iteration cost shows.
void RunSolverIterationBench(benchmark::State& state, SolverCore solver_core,
                             double dropout = 0.3) {
  const auto per_type = static_cast<std::size_t>(state.range(0));
  data::BlockWorldOptions data_opts;
  data_opts.objects_per_type = {per_type, per_type, per_type};
  data_opts.n_classes = 3;
  data_opts.dropout = dropout;
  data_opts.seed = 19;
  data::MultiTypeRelationalData d =
      data::GenerateBlockWorld(data_opts).value();
  fact::BlockStructure blocks = fact::BuildBlockStructure(d);
  core::RhchmeOptions opts;
  opts.lambda = 1.0;
  opts.beta = 50.0;
  opts.max_iterations = 6;
  opts.tolerance = 0.0;  // Run all iterations.
  opts.explicit_materialization = solver_core == SolverCore::kExplicit;
  opts.sparse_r = solver_core == SolverCore::kSparseR
                      ? core::SparseRMode::kAlways
                      : core::SparseRMode::kNever;
  opts.ensemble.subspace.spg.max_iterations = 10;
  auto ensemble = core::BuildEnsemble(d, blocks, opts.ensemble);
  core::Rhchme solver(opts);
  for (auto _ : state) {
    auto fit = solver.FitWithEnsemble(d, ensemble.value());
    benchmark::DoNotOptimize(fit.value().hocc.objective_trace.back());
  }
  SetKernelCounters(state, 0.0);
  state.counters["solver_iters"] =
      benchmark::Counter(static_cast<double>(opts.max_iterations));
  state.counters["r_density"] = benchmark::Counter(d.JointRDensity());
}

void BM_SolverIterationImplicit(benchmark::State& state) {
  RunSolverIterationBench(state, SolverCore::kImplicit);
}
BENCHMARK(BM_SolverIterationImplicit)->UseRealTime()->Arg(64)->Arg(128)
    ->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SolverIterationExplicit(benchmark::State& state) {
  RunSolverIterationBench(state, SolverCore::kExplicit);
}
BENCHMARK(BM_SolverIterationExplicit)->UseRealTime()->Arg(64)->Arg(128)
    ->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SolverIterationSparse(benchmark::State& state) {
  // Sparse-R core on the same data as the dense pair: the apples-to-apples
  // comparison at the default ~45% joint-R fill (the sparse core's
  // worst case).
  RunSolverIterationBench(state, SolverCore::kSparseR);
}
BENCHMARK(BM_SolverIterationSparse)->UseRealTime()->Arg(64)->Arg(128)
    ->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SolverIterationSparseTfidf(benchmark::State& state) {
  // Sparse-R core at tf-idf-like fill (~3%, below the kAuto threshold):
  // the iteration cost is O(nnz + n·c) here, so this variant scales with
  // the nonzero count rather than n².
  RunSolverIterationBench(state, SolverCore::kSparseR, /*dropout=*/0.97);
}
BENCHMARK(BM_SolverIterationSparseTfidf)->UseRealTime()->Arg(64)->Arg(128)
    ->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SolverIterationImplicitTfidf(benchmark::State& state) {
  // Dense-implicit reference at the same tf-idf-like fill — the pair
  // quantifies the sparse core's win where it is meant to live.
  RunSolverIterationBench(state, SolverCore::kImplicit, /*dropout=*/0.97);
}
BENCHMARK(BM_SolverIterationImplicitTfidf)->UseRealTime()->Arg(64)->Arg(128)
    ->Arg(256)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = RandomMatrix(n, 32, 10);
  cluster::KMeansOptions opts;
  opts.k = 10;
  opts.restarts = 2;
  for (auto _ : state) {
    Rng rng(11);
    auto r = cluster::KMeans(pts, opts, &rng);
    benchmark::DoNotOptimize(r.value().inertia);
  }
  SetKernelCounters(state, 0.0);
}
BENCHMARK(BM_KMeans)->UseRealTime()->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_EigenSym(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  la::Matrix b = la::Matrix::RandomNormal(n, n, &rng);
  la::Matrix a = la::Add(b, b.Transposed());
  for (auto _ : state) {
    auto r = la::EigenSym(a);
    benchmark::DoNotOptimize(r.value().eigenvalues.data());
  }
  SetKernelCounters(state, 0.0);
}
BENCHMARK(BM_EigenSym)->UseRealTime()->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: mirror the console report into BENCH_kernels.json (in the
// working directory) so perf runs leave a machine-readable artefact. A
// caller-supplied --benchmark_out takes precedence.
//
// The JSON context gains three custom keys: `rhchme_build_type` records
// whether *this binary* was optimised (NDEBUG) — the stock
// `library_build_type` only reflects how the system's libbenchmark was
// compiled (Debian ships it assertion-enabled, i.e. "debug", even for
// Release user builds) — `rhchme_simd` records the runtime-dispatched
// kernel table this run actually executed (after any --force_isa /
// RHCHME_FORCE_ISA override), and `rhchme_simd_detected` what
// auto-detection would have picked. tools/bench_compare.py keys the
// comparison off rhchme_simd and rejects debug artefacts.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.push_back(argv[0]);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--force_isa=", 0) == 0) {
      const rhchme::Status st =
          la::simd::ForceIsa(arg.substr(std::string("--force_isa=").size())
                                 .c_str());
      if (!st.ok()) {
        std::fprintf(stderr, "bench_kernels: %s\n", st.ToString().c_str());
        return 1;
      }
      continue;  // Consumed; benchmark::Initialize must not see it.
    }
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  std::string out_flag = std::string("--benchmark_out=") + kJsonOutPath;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
#ifdef NDEBUG
  benchmark::AddCustomContext("rhchme_build_type", "release");
#else
  benchmark::AddCustomContext("rhchme_build_type", "debug");
#endif
  benchmark::AddCustomContext("rhchme_simd", la::simd::IsaName());
  benchmark::AddCustomContext("rhchme_simd_detected",
                              la::simd::DetectedIsaName());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
