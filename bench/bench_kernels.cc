// google-benchmark microbenchmarks for the numerical kernels behind the
// solvers (Table V's costs decompose into exactly these pieces):
// GEMM variants, pNN graph construction, Laplacian assembly, one SPG step
// worth of work, one multiplicative-update iteration, and k-means.

#include <benchmark/benchmark.h>

#include "rhchme/rhchme.h"

namespace {

using namespace rhchme;  // NOLINT — bench binary.

la::Matrix RandomMatrix(std::size_t r, std::size_t c, uint64_t seed) {
  Rng rng(seed);
  return la::Matrix::RandomUniform(r, c, &rng);
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix a = RandomMatrix(n, n, 1);
  la::Matrix b = RandomMatrix(n, n, 2);
  la::Matrix c;
  for (auto _ : state) {
    la::MultiplyInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmTallSkinny(benchmark::State& state) {
  // The solver's dominant product shape: (n x n) · (n x c).
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 30;
  la::Matrix m = RandomMatrix(n, n, 3);
  la::Matrix g = RandomMatrix(n, c, 4);
  la::Matrix out;
  for (auto _ : state) {
    la::MultiplyInto(m, g, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * c);
}
BENCHMARK(BM_GemmTallSkinny)->Arg(256)->Arg(512)->Arg(1024);

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix g = RandomMatrix(n, 30, 5);
  for (auto _ : state) {
    la::Matrix gtg = la::Gram(g);
    benchmark::DoNotOptimize(gtg.data());
  }
}
BENCHMARK(BM_Gram)->Arg(256)->Arg(1024);

void BM_KnnGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = RandomMatrix(n, 64, 6);
  graph::KnnGraphOptions opts;  // p=5 cosine, the paper's setting.
  for (auto _ : state) {
    auto g = graph::BuildKnnGraph(pts, opts);
    benchmark::DoNotOptimize(g.value().nnz());
  }
}
BENCHMARK(BM_KnnGraph)->Arg(128)->Arg(256)->Arg(512);

void BM_Laplacian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = RandomMatrix(n, 32, 7);
  graph::KnnGraphOptions opts;
  auto w = graph::BuildKnnGraph(pts, opts).value();
  for (auto _ : state) {
    auto l = graph::BuildLaplacian(w, graph::LaplacianKind::kSymmetric);
    benchmark::DoNotOptimize(l.value().data());
  }
}
BENCHMARK(BM_Laplacian)->Arg(128)->Arg(512);

void BM_SubspaceLearning(benchmark::State& state) {
  // Full Algorithm 1 on an n-object type (30 SPG iterations).
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix x = RandomMatrix(n, 80, 8);
  core::SubspaceOptions opts;
  opts.spg.max_iterations = 30;
  for (auto _ : state) {
    auto r = core::LearnSubspaceAffinity(x, opts);
    benchmark::DoNotOptimize(r.value().affinity.data());
  }
}
BENCHMARK(BM_SubspaceLearning)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_MultiplicativeIteration(benchmark::State& state) {
  // One S-solve + one multiplicative G update, the per-iteration core of
  // every HOCC solver here.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 15;
  Rng rng(9);
  la::Matrix r = la::Matrix::RandomUniform(n, n, &rng);
  la::Matrix g = la::Matrix::RandomUniform(n, c, &rng, 0.1, 1.0);
  la::Matrix lap = la::Matrix::Identity(n);
  la::Matrix lap_pos = la::PositivePart(lap);
  la::Matrix lap_neg = la::NegativePart(lap);
  for (auto _ : state) {
    auto s = fact::SolveCentralS(g, r, 1e-9);
    fact::MultiplicativeGUpdate(r, s.value(), 1.0, &lap_pos, &lap_neg,
                                1e-12, &g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_MultiplicativeIteration)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix pts = RandomMatrix(n, 32, 10);
  cluster::KMeansOptions opts;
  opts.k = 10;
  opts.restarts = 2;
  for (auto _ : state) {
    Rng rng(11);
    auto r = cluster::KMeans(pts, opts, &rng);
    benchmark::DoNotOptimize(r.value().inertia);
  }
}
BENCHMARK(BM_KMeans)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_EigenSym(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  la::Matrix b = la::Matrix::RandomNormal(n, n, &rng);
  la::Matrix a = la::Add(b, b.Transposed());
  for (auto _ : state) {
    auto r = la::EigenSym(a);
    benchmark::DoNotOptimize(r.value().eigenvalues.data());
  }
}
BENCHMARK(BM_EigenSym)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
