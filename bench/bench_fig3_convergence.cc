// Reproduces Fig. 3 of the paper: FScore and NMI curves with respect to
// the number of RHCHME iterations on all four datasets.
//
// The paper observes that both metrics rise through the early iterations
// and converge quickly, with the largest dataset (R-Top10) needing the
// most iterations. The harness traces metrics at every iteration via the
// solver's iteration callback and prints a sampled view.

#include <cstdio>
#include <string>
#include <vector>

#include "rhchme/rhchme.h"

namespace {
using namespace rhchme;  // NOLINT — bench binary.
}

int main() {
  const std::vector<std::pair<std::string, data::SyntheticCorpusOptions>>
      datasets = {{"Multi5", data::Multi5Preset()},
                  {"Multi10", data::Multi10Preset()},
                  {"R-Min20Max200", data::ReutersMin20Max200Preset()},
                  {"R-Top10", data::ReutersTop10Preset()}};
  const int kIterations = 100;
  const std::vector<int> kSamples = {1,  2,  5,  10, 20, 30,
                                     40, 50, 70, 100};

  TablePrinter csv("fig3", {"dataset", "iteration", "fscore", "nmi"});
  std::printf("Fig. 3 — FScore/NMI vs iterations (RHCHME, %d iterations)\n\n",
              kIterations);

  for (const auto& [name, preset] : datasets) {
    auto data = data::GenerateSyntheticCorpus(preset);
    RHCHME_CHECK(data.ok(), data.status().ToString().c_str());
    const data::MultiTypeRelationalData& d = data.value();
    const fact::BlockStructure blocks = fact::BuildBlockStructure(d);

    core::RhchmeOptions opts;
    opts.max_iterations = kIterations;
    opts.tolerance = 0.0;  // Trace the full horizon, like the figure.
    core::Rhchme solver(opts);

    std::vector<eval::Scores> trace(kIterations + 1);
    solver.SetIterationCallback([&](int it, const la::Matrix& g) {
      auto labels = fact::ExtractLabels(blocks, g);
      trace[it] =
          eval::ScoreLabels(d.Type(0).labels, labels[0]).value();
    });
    auto fit = solver.Fit(d);
    RHCHME_CHECK(fit.ok(), fit.status().ToString().c_str());

    TablePrinter t("Fig. 3 — " + name, {"iteration", "FScore", "NMI"});
    for (int it : kSamples) {
      t.AddRow({std::to_string(it), TablePrinter::Fmt(trace[it].fscore, 3),
                TablePrinter::Fmt(trace[it].nmi, 3)});
    }
    t.Print();
    for (int it = 1; it <= kIterations; ++it) {
      csv.AddRow({name, std::to_string(it),
                  TablePrinter::Fmt(trace[it].fscore, 4),
                  TablePrinter::Fmt(trace[it].nmi, 4)});
    }

    // The figure's qualitative claim: the last sampled point is at least
    // as good as the first (curves rise then flatten).
    std::printf("  rise check: F(1)=%.3f -> F(%d)=%.3f, NMI(1)=%.3f -> "
                "NMI(%d)=%.3f\n\n",
                trace[1].fscore, kIterations, trace[kIterations].fscore,
                trace[1].nmi, kIterations, trace[kIterations].nmi);
  }

  (void)csv.WriteCsv("results_fig3_convergence.csv");
  std::printf("CSV written: results_fig3_convergence.csv\n");
  return 0;
}
