// Reproduces Tables II–V of the paper:
//   Table II  — dataset characteristics (our scaled analogues),
//   Table III — FScore per dataset and method,
//   Table IV  — NMI per dataset and method,
//   Table V   — running time per dataset and method.
//
// Methods: DR-T, DR-C, DR-TC (two-way DRCC variants), SRC, SNMTF, RMC and
// RHCHME, all at the tuned defaults of §IV.B. Deterministic (fixed seeds).
// Absolute values depend on the synthetic substitution (DESIGN.md §3);
// EXPERIMENTS.md records the shape comparison against the paper.

#include <cstdio>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "rhchme/rhchme.h"

namespace {

using rhchme::TablePrinter;

struct DatasetRun {
  std::string id;
  std::string description;
  rhchme::data::SyntheticCorpusOptions opts;
};

}  // namespace

int main() {
  const std::vector<DatasetRun> datasets = {
      {"D1", "Multi5", rhchme::data::Multi5Preset()},
      {"D2", "Multi10", rhchme::data::Multi10Preset()},
      {"D3", "R-Min20Max200", rhchme::data::ReutersMin20Max200Preset()},
      {"D4", "R-Top10", rhchme::data::ReutersTop10Preset()},
  };

  // ---- Table II: characteristics ------------------------------------------
  TablePrinter table2("TABLE II — data sets used for evaluation (scaled "
                      "synthetic analogues; see DESIGN.md §3)",
                      {"Data Set", "Description", "#Classes", "#Documents",
                       "#Terms", "#Concepts"});
  for (const auto& d : datasets) {
    const std::size_t docs =
        std::accumulate(d.opts.docs_per_class.begin(),
                        d.opts.docs_per_class.end(), std::size_t{0});
    table2.AddRow({d.id, d.description,
                   std::to_string(d.opts.docs_per_class.size()),
                   std::to_string(docs), std::to_string(d.opts.n_terms),
                   std::to_string(d.opts.n_concepts)});
  }
  table2.Print();

  // ---- Run the full method grid --------------------------------------------
  rhchme::eval::PaperBenchOptions bench;
  bench.restarts = 3;  // Average over inits; MU methods are init-sensitive.
  bench.rhchme.max_iterations = 60;
  bench.snmtf.max_iterations = 60;
  bench.rmc.max_iterations = 60;
  bench.src.max_iterations = 60;
  bench.drcc.max_iterations = 60;

  const std::vector<std::string> methods = {"DR-T", "DR-C",  "DR-TC", "SRC",
                                            "SNMTF", "RMC", "RHCHME"};
  std::map<std::string, std::map<std::string, rhchme::eval::MethodRun>> grid;

  for (const auto& d : datasets) {
    auto data = rhchme::data::GenerateSyntheticCorpus(d.opts);
    if (!data.ok()) {
      std::fprintf(stderr, "%s: %s\n", d.id.c_str(),
                   data.status().ToString().c_str());
      return 1;
    }
    std::printf("running %s (%s): n=%zu objects...\n", d.id.c_str(),
                d.description.c_str(), data.value().TotalObjects());
    auto runs = rhchme::eval::RunPaperMethods(data.value(), d.id, bench);
    if (!runs.ok()) {
      std::fprintf(stderr, "%s: %s\n", d.id.c_str(),
                   runs.status().ToString().c_str());
      return 1;
    }
    for (const auto& run : runs.value()) grid[run.method][d.id] = run;
  }
  std::printf("\n");

  // ---- Tables III, IV, V ----------------------------------------------------
  auto build = [&](const char* title, auto cell) {
    TablePrinter t(title, {"Methods", "D1", "D2", "D3", "D4", "Average"});
    for (const auto& m : methods) {
      std::vector<std::string> row = {m};
      double sum = 0.0;
      for (const auto& d : datasets) {
        const double v = cell(grid[m][d.id]);
        sum += v;
        row.push_back(TablePrinter::Fmt(v, 3));
      }
      row.push_back(TablePrinter::Fmt(sum / datasets.size(), 3));
      t.AddRow(std::move(row));
    }
    return t;
  };

  TablePrinter table3 = build(
      "TABLE III — FScore for each data set and method",
      [](const rhchme::eval::MethodRun& r) { return r.scores.fscore; });
  TablePrinter table4 = build(
      "TABLE IV — NMI for each data set and method",
      [](const rhchme::eval::MethodRun& r) { return r.scores.nmi; });
  table3.Print();
  table4.Print();

  TablePrinter table5("TABLE V — running time (in seconds) of each method",
                      {"Methods", "D1", "D2", "D3", "D4"});
  for (const auto& m : methods) {
    std::vector<std::string> row = {m};
    for (const auto& d : datasets) {
      row.push_back(TablePrinter::Fmt(grid[m][d.id].seconds, 2));
    }
    table5.AddRow(std::move(row));
  }
  table5.Print();

  (void)table3.WriteCsv("results_table3_fscore.csv");
  (void)table4.WriteCsv("results_table4_nmi.csv");
  (void)table5.WriteCsv("results_table5_runtime.csv");
  std::printf("CSV written: results_table{3,4,5}_*.csv\n");
  return 0;
}
