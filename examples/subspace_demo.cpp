// Fig. 1 demo: two intersecting circles.
//
// Points near the intersection of two manifolds share the same p nearest
// Euclidean neighbours, so a pNN graph connects them ACROSS manifolds;
// the subspace affinity (learned on lifted coordinates where each circle
// is a linear variety) keeps them apart. This is the paper's §III.A
// motivation, rendered as numbers and an ASCII scatter plot.
//
//   $ ./subspace_demo

#include <cmath>
#include <cstdio>
#include <vector>

#include "rhchme/rhchme.h"

namespace {

using namespace rhchme;  // NOLINT — example binary.

/// Fraction of affinity mass that stays within the true manifold.
double WithinMass(const la::Matrix& w, const std::vector<std::size_t>& y) {
  double in = 0.0, total = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      total += w(i, j);
      if (y[i] == y[j]) in += w(i, j);
    }
  }
  return total > 0.0 ? in / total : 0.0;
}

/// Fraction of the WITHIN-manifold affinity mass that connects pairs more
/// than `cutoff` apart in Euclidean distance — the paper's "point z"
/// claim: a pNN graph cannot connect distant within-manifold neighbours.
double DistantWithinMass(const la::Matrix& w, const data::ManifoldSample& s,
                         double cutoff) {
  double distant = 0.0, total = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      if (s.labels[i] != s.labels[j] || w(i, j) <= 0.0) continue;
      total += w(i, j);
      const double dx = s.points(i, 0) - s.points(j, 0);
      const double dy = s.points(i, 1) - s.points(j, 1);
      if (dx * dx + dy * dy > cutoff * cutoff) distant += w(i, j);
    }
  }
  return total > 0.0 ? distant / total : 0.0;
}

/// Mean Euclidean length of within-manifold affinity edges (mass-weighted).
double MeanEdgeLength(const la::Matrix& w, const data::ManifoldSample& s) {
  double len = 0.0, total = 0.0;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      if (s.labels[i] != s.labels[j] || w(i, j) <= 0.0) continue;
      const double dx = s.points(i, 0) - s.points(j, 0);
      const double dy = s.points(i, 1) - s.points(j, 1);
      len += w(i, j) * std::sqrt(dx * dx + dy * dy);
      total += w(i, j);
    }
  }
  return total > 0.0 ? len / total : 0.0;
}

void AsciiScatter(const data::ManifoldSample& s) {
  const int W = 68, H = 22;
  std::vector<std::string> canvas(H, std::string(W, ' '));
  double xmin = 1e9, xmax = -1e9, ymin = 1e9, ymax = -1e9;
  for (std::size_t i = 0; i < s.points.rows(); ++i) {
    xmin = std::min(xmin, s.points(i, 0));
    xmax = std::max(xmax, s.points(i, 0));
    ymin = std::min(ymin, s.points(i, 1));
    ymax = std::max(ymax, s.points(i, 1));
  }
  for (std::size_t i = 0; i < s.points.rows(); ++i) {
    int cx = static_cast<int>((s.points(i, 0) - xmin) / (xmax - xmin) *
                              (W - 1));
    int cy = static_cast<int>((s.points(i, 1) - ymin) / (ymax - ymin) *
                              (H - 1));
    canvas[H - 1 - cy][cx] = s.labels[i] == 0 ? 'o' : '+';
  }
  std::printf("two intersecting circles ('o' = manifold 0, '+' = 1):\n");
  for (const auto& line : canvas) std::printf("  %s\n", line.c_str());
}

}  // namespace

int main() {
  data::TwoCirclesOptions gen;
  gen.points_per_circle = 120;
  gen.radius = 1.0;
  gen.center_distance = 1.2;  // < 2r: the circles intersect (Fig. 1).
  gen.noise_sigma = 0.01;
  gen.seed = 42;
  data::ManifoldSample sample = data::SampleTwoCircles(gen);
  AsciiScatter(sample);

  // Lift to the quadratic monomials: a circle is a LINEAR constraint on
  // (x, y, x², y², xy), so the two circles become two linear varieties —
  // exactly the regime of self-expressive subspace learning.
  la::Matrix lifted(sample.points.rows(), 5);
  for (std::size_t i = 0; i < sample.points.rows(); ++i) {
    const double x = sample.points(i, 0), y = sample.points(i, 1);
    lifted(i, 0) = x;
    lifted(i, 1) = y;
    lifted(i, 2) = x * x;
    lifted(i, 3) = y * y;
    lifted(i, 4) = x * y;
  }

  // pNN member (Eq. 3, p = 5 cosine on the raw coordinates).
  graph::KnnGraphOptions knn;
  Result<la::SparseMatrix> we = graph::BuildKnnGraph(sample.points, knn);
  RHCHME_CHECK(we.ok(), we.status().ToString().c_str());

  // Subspace member (Algorithm 1 on the lifted coordinates).
  core::SubspaceOptions sub;
  sub.gamma = 10.0;
  Result<core::SubspaceResult> ws = core::LearnSubspaceAffinity(lifted, sub);
  RHCHME_CHECK(ws.ok(), ws.status().ToString().c_str());

  la::Matrix we_dense = we.value().ToDense();
  const la::Matrix& ws_aff = ws.value().affinity;
  const double cutoff = 0.5 * gen.radius;
  TablePrinter t(
      "Intra-type relationship quality (within = same-manifold edge mass; "
      "reach = within-mass on pairs further than r/2 apart)",
      {"Affinity", "within-manifold", "reach (distant pairs)",
       "mean edge length"});
  t.AddRow({"pNN graph W^E (Eq. 3)",
            TablePrinter::Fmt(WithinMass(we_dense, sample.labels), 3),
            TablePrinter::Fmt(DistantWithinMass(we_dense, sample, cutoff), 3),
            TablePrinter::Fmt(MeanEdgeLength(we_dense, sample), 3)});
  t.AddRow({"subspace affinity W^S (Alg. 1)",
            TablePrinter::Fmt(WithinMass(ws_aff, sample.labels), 3),
            TablePrinter::Fmt(DistantWithinMass(ws_aff, sample, cutoff), 3),
            TablePrinter::Fmt(MeanEdgeLength(ws_aff, sample), 3)});
  t.Print();
  std::printf(
      "The pNN graph is precise but local: essentially no edge reaches a\n"
      "distant within-manifold neighbour (the paper's point z in Fig. 1).\n"
      "The subspace affinity trades some local precision for global reach,\n"
      "connecting objects anywhere on the same manifold. The heterogeneous\n"
      "ensemble (Eq. 12) combines both, which is exactly the paper's\n"
      "argument for diversity over RMC's many same-type members.\n");
  return 0;
}
