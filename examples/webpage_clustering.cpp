// Web-page scenario from the paper's introduction: a page is related to
// FOUR object types — the pages themselves, content terms, user queries
// that retrieve them, and users who visit them. RHCHME clusters all four
// simultaneously; nothing in the solver is specific to K = 3.
//
//   $ ./webpage_clustering

#include <cstdio>

#include "rhchme/rhchme.h"

int main() {
  using namespace rhchme;

  // Planted structure: 4 latent communities shared by pages, terms,
  // queries and users; co-occurrence is strong within a community.
  data::BlockWorldOptions gen;
  gen.objects_per_type = {80, 120, 60, 70};  // pages, terms, queries, users
  gen.n_classes = 4;
  gen.within_strength = 1.0;
  gen.between_strength = 0.2;
  gen.noise = 0.3;
  gen.dropout = 0.4;  // Sparse co-occurrence, like real logs.
  gen.seed = 2024;
  Result<data::MultiTypeRelationalData> data = data::GenerateBlockWorld(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("web data: %zu types, %zu objects total, R density %.1f%%\n",
              data.value().NumTypes(), data.value().TotalObjects(),
              100.0 * data.value().BuildJointRSparse().Density());

  core::RhchmeOptions opts;
  opts.max_iterations = 60;
  opts.lambda = 5.0;  // Block-world magnitudes are O(1), unlike tf-idf.
  opts.beta = 500.0;
  core::Rhchme solver(opts);
  Result<core::RhchmeResult> fit = solver.Fit(data.value());
  if (!fit.ok()) {
    std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("4-type co-clustering (RHCHME)",
                     {"Type", "Objects", "FScore", "NMI"});
  for (std::size_t k = 0; k < data.value().NumTypes(); ++k) {
    Result<eval::Scores> s = eval::ScoreLabels(
        data.value().Type(k).labels, fit.value().hocc.labels[k]);
    table.AddRow({data.value().Type(k).name,
                  std::to_string(data.value().Type(k).count),
                  TablePrinter::Fmt(s.value().fscore, 3),
                  TablePrinter::Fmt(s.value().nmi, 3)});
  }
  table.Print();

  // Show a few page<->query cluster associations from S: the central
  // matrix links cluster p of pages to cluster q of queries.
  const fact::BlockStructure blocks =
      fact::BuildBlockStructure(data.value());
  const la::Matrix& s = fit.value().hocc.s;
  std::printf("page-cluster x query-cluster association strengths:\n");
  for (std::size_t p = 0; p < 4; ++p) {
    std::printf("  page[%zu]:", p);
    for (std::size_t q = 0; q < 4; ++q) {
      std::printf(" %7.3f", s(blocks.cluster_offset[0] + p,
                              blocks.cluster_offset[2] + q));
    }
    std::printf("\n");
  }
  std::printf(
      "(cluster ids are arbitrary, so the matching shows up as one clearly\n"
      " dominant entry per row — a permutation, not a literal diagonal)\n");
  return 0;
}
