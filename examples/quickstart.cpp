// Quickstart: cluster a small 3-type corpus (documents, terms, concepts)
// with RHCHME in ~30 lines of user code.
//
//   $ ./quickstart
//
// Walks through the full public API: generate (or assemble) multi-type
// relational data, configure the solver, fit, and evaluate.

#include <cstdio>

#include "rhchme/rhchme.h"

int main() {
  using namespace rhchme;

  // 1. Data: three balanced document classes over a small vocabulary.
  //    In a real application you would fill MultiTypeRelationalData
  //    yourself: AddType(...) per object type + SetRelation(k, l, block).
  data::SyntheticCorpusOptions gen;
  gen.docs_per_class = {30, 30, 30};
  gen.n_terms = 120;
  gen.n_concepts = 80;
  gen.concept_direct_hits = 12.0;  // Clearly class-indicative concepts.
  gen.concept_noise_hits = 1.5;
  gen.seed = 1;
  Result<data::MultiTypeRelationalData> data =
      data::GenerateSyntheticCorpus(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("data: %zu documents, %zu terms, %zu concepts\n",
              data.value().Type(0).count, data.value().Type(1).count,
              data.value().Type(2).count);

  // 2. Solver: the defaults follow the paper's tuned setting (lambda for
  //    the manifold regulariser, beta for the sparse error matrix, a
  //    p=5 cosine pNN graph + subspace learning ensemble).
  core::RhchmeOptions opts;
  opts.max_iterations = 60;
  core::Rhchme solver(opts);

  // 3. Fit. The result carries the joint soft membership matrix G, hard
  //    labels per type, the learned error matrix and the objective trace.
  Result<core::RhchmeResult> fit = solver.Fit(data.value());
  if (!fit.ok()) {
    std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  const fact::HoccResult& result = fit.value().hocc;
  std::printf("converged=%s after %d iterations (%.2fs)\n",
              result.converged ? "yes" : "no", result.iterations,
              result.seconds);

  // 4. Evaluate document clustering against the known classes.
  Result<eval::Scores> scores =
      eval::ScoreLabels(data.value().Type(0).labels, result.labels[0]);
  if (!scores.ok()) {
    std::fprintf(stderr, "eval: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  std::printf("documents: FScore=%.3f  NMI=%.3f\n", scores.value().fscore,
              scores.value().nmi);

  // Terms and concepts are clustered simultaneously — that is the point
  // of high-order co-clustering.
  for (std::size_t k : {std::size_t{1}, std::size_t{2}}) {
    Result<eval::Scores> s = eval::ScoreLabels(data.value().Type(k).labels,
                                               result.labels[k]);
    std::printf("%-9s: FScore=%.3f  NMI=%.3f\n",
                data.value().Type(k).name.c_str(), s.value().fscore,
                s.value().nmi);
  }
  return 0;
}
