// Robustness demo: why the sparse error matrix E_R exists (paper §III.C).
//
// Sweeps the fraction of corrupted document rows and compares RHCHME with
// and without the error matrix. Also shows that E_R localises: corrupted
// rows carry most of its mass (the L2,1 sample-wise sparsity at work).
//
//   $ ./robustness_demo

#include <algorithm>
#include <cstdio>
#include <vector>

#include "rhchme/rhchme.h"

int main() {
  using namespace rhchme;

  TablePrinter table(
      "Corruption sweep on Multi5' (FScore / NMI, with vs without E_R)",
      {"corrupted rows", "F with E_R", "F without", "NMI with E_R",
       "NMI without"});

  for (double fraction : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    data::SyntheticCorpusOptions gen = data::Multi5Preset();
    gen.corrupted_doc_fraction = fraction;
    gen.corruption_magnitude = 5.0;
    Result<data::MultiTypeRelationalData> data =
        data::GenerateSyntheticCorpus(gen);
    if (!data.ok()) {
      std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
      return 1;
    }

    auto run = [&](bool use_error_matrix) {
      core::RhchmeOptions opts;
      opts.max_iterations = 50;
      opts.use_error_matrix = use_error_matrix;
      core::Rhchme solver(opts);
      Result<core::RhchmeResult> fit = solver.Fit(data.value());
      RHCHME_CHECK(fit.ok(), fit.status().ToString().c_str());
      return eval::ScoreLabels(data.value().Type(0).labels,
                               fit.value().hocc.labels[0])
          .value();
    };
    eval::Scores with = run(true);
    eval::Scores without = run(false);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * fraction);
    table.AddRow({label, TablePrinter::Fmt(with.fscore, 3),
                  TablePrinter::Fmt(without.fscore, 3),
                  TablePrinter::Fmt(with.nmi, 3),
                  TablePrinter::Fmt(without.nmi, 3)});
  }
  table.Print();

  // ---- Localisation: where does E_R's mass sit? -----------------------------
  data::SyntheticCorpusOptions gen = data::Multi5Preset();
  gen.corrupted_doc_fraction = 0.0;  // Corrupt manually to know the rows.
  Result<data::MultiTypeRelationalData> data_result =
      data::GenerateSyntheticCorpus(gen);
  RHCHME_CHECK(data_result.ok(), data_result.status().ToString().c_str());
  data::MultiTypeRelationalData data = std::move(data_result).value();

  la::Matrix r01 = data.Relation(0, 1);
  Rng rng(7);
  data::RowCorruptionOptions corr;
  corr.row_fraction = 0.1;
  corr.magnitude = 6.0;
  std::vector<std::size_t> bad_rows = data::CorruptRows(&r01, corr, &rng);
  RHCHME_CHECK(data.SetRelation(0, 1, r01).ok(), "set relation");

  core::RhchmeOptions opts;
  opts.max_iterations = 40;
  core::Rhchme solver(opts);
  Result<core::RhchmeResult> fit = solver.Fit(data);
  RHCHME_CHECK(fit.ok(), fit.status().ToString().c_str());
  // The solver keeps E_R factored; the dense view is materialised lazily.
  const la::Matrix& e = fit.value().ErrorMatrix();

  // Rank document rows by ||E_R row||; count corrupted rows in the top-k.
  const std::size_t n_docs = data.Type(0).count;
  std::vector<std::pair<double, std::size_t>> by_norm;
  for (std::size_t i = 0; i < n_docs; ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < e.cols(); ++j) norm += e(i, j) * e(i, j);
    by_norm.push_back({norm, i});
  }
  std::sort(by_norm.rbegin(), by_norm.rend());
  std::size_t hits = 0;
  for (std::size_t k = 0; k < bad_rows.size(); ++k) {
    if (std::find(bad_rows.begin(), bad_rows.end(), by_norm[k].second) !=
        bad_rows.end()) {
      ++hits;
    }
  }
  std::printf(
      "E_R localisation: %zu of the %zu largest E_R rows are exactly the "
      "corrupted documents (%zu corrupted in total)\n",
      hits, bad_rows.size(), bad_rows.size());
  return 0;
}
