// Document clustering scenario (the paper's §IV setting): cluster a
// documents-terms-concepts corpus with every method of Tables III/IV and
// compare — a compact, single-dataset version of the full bench.
//
//   $ ./document_clustering           # Multi5-like corpus
//   $ ./document_clustering D3        # any of D1..D4

#include <cstdio>
#include <string>

#include "rhchme/rhchme.h"

int main(int argc, char** argv) {
  using namespace rhchme;

  const std::string dataset = argc > 1 ? argv[1] : "D1";
  Result<data::SyntheticCorpusOptions> preset =
      data::PresetByName(dataset);
  if (!preset.ok()) {
    std::fprintf(stderr, "unknown dataset '%s' (use D1..D4): %s\n",
                 dataset.c_str(), preset.status().ToString().c_str());
    return 1;
  }
  Result<data::MultiTypeRelationalData> data =
      data::GenerateSyntheticCorpus(preset.value());
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset %s: %zu docs / %zu terms / %zu concepts, %zu classes\n",
              dataset.c_str(), data.value().Type(0).count,
              data.value().Type(1).count, data.value().Type(2).count,
              data.value().Type(0).clusters);

  eval::PaperBenchOptions bench;
  bench.rhchme.max_iterations = 60;
  bench.snmtf.max_iterations = 60;
  bench.rmc.max_iterations = 60;
  bench.src.max_iterations = 60;
  bench.drcc.max_iterations = 60;

  Result<std::vector<eval::MethodRun>> runs =
      eval::RunPaperMethods(data.value(), dataset, bench);
  if (!runs.ok()) {
    std::fprintf(stderr, "run: %s\n", runs.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("Document clustering on " + dataset +
                         " (FScore/NMI on documents; time in seconds)",
                     {"Method", "FScore", "NMI", "Time", "Iterations"});
  for (const auto& r : runs.value()) {
    table.AddRow({r.method, TablePrinter::Fmt(r.scores.fscore, 3),
                  TablePrinter::Fmt(r.scores.nmi, 3),
                  TablePrinter::Fmt(r.seconds, 2),
                  std::to_string(r.iterations)});
  }
  table.Print();
  return 0;
}
