// Robustness scenario-matrix runner (ROADMAP item 5).
//
// Sweeps corruption fraction x relation sparsity x class imbalance over
// RHCHME (solver cores x graph backends) and the four baselines, then
// writes QUALITY_scenarios.json for tools/quality_compare.py — the
// quality twin of bench_kernels + tools/bench_compare.py.
//
// Usage:
//   rhchme_scenarios [--workload corpus|blockworld] [--quick]
//                    [--out FILE] [--threads N] [--force_isa ISA]
//
//   --quick      CI grid: same 3x3x2 cell coverage, fewer replicate seeds
//                and a lower iteration cap. The committed baseline is
//                generated with this flag (Release build).
//   --threads    Pool size; results are bit-identical for any value
//                (tests/scenario_test.cc pins that down).
//   --force_isa  Pins the dispatched kernel table (scalar|avx2|avx512|
//                neon); overrides RHCHME_FORCE_ISA. The resolved table is
//                recorded in the report's JSON context, which is what
//                tools/quality_compare.py keys the comparison on.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/scenario.h"
#include "la/simd.h"
#include "util/parallel.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload corpus|blockworld] [--quick] "
               "[--out FILE] [--threads N] [--force_isa ISA]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using rhchme::eval::ScenarioGridOptions;
  using rhchme::eval::ScenarioWorkload;

  ScenarioGridOptions opts;
  std::string out = "QUALITY_scenarios.json";
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--workload" && i + 1 < argc) {
      const std::string w = argv[++i];
      if (w == "corpus") {
        opts.workload = ScenarioWorkload::kCorpus;
      } else if (w == "blockworld") {
        opts.workload = ScenarioWorkload::kBlockWorld;
      } else {
        std::fprintf(stderr, "unknown workload: %s\n", w.c_str());
        return Usage(argv[0]);
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      rhchme::util::SetNumThreads(std::atoi(argv[++i]));
    } else if (arg == "--force_isa" && i + 1 < argc) {
      const rhchme::Status st = rhchme::la::simd::ForceIsa(argv[++i]);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (quick) {
    // Same cell coverage as the full run — the gate compares per-cell —
    // but fewer replicates and a lower iteration cap to fit a CI leg.
    opts.seeds = {1, 2};
    opts.max_iterations = 25;
  }

  std::printf("scenario grid: workload=%s cells=%zux%zux%zu seeds=%zu "
              "max_iterations=%d\n",
              rhchme::eval::ScenarioWorkloadName(opts.workload),
              opts.imbalances.size(), opts.corruption_fractions.size(),
              opts.sparsity_levels.size(), opts.seeds.size(),
              opts.max_iterations);

  rhchme::Result<rhchme::eval::ScenarioReport> report =
      rhchme::eval::RunScenarioGrid(opts);
  if (!report.ok()) {
    std::fprintf(stderr, "scenario grid failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }

  for (const rhchme::eval::ScenarioCell& c : report.value().cells) {
    std::printf(
        "%-10s corrupt=%.2f sparse=%.2f %-6s %-16s nmi=%.3f ari=%.3f "
        "purity=%.3f\n",
        rhchme::eval::ImbalanceKindName(c.imbalance), c.corruption,
        c.sparsity, c.method.c_str(),
        c.variant.empty() ? "-" : c.variant.c_str(), c.nmi, c.ari, c.purity);
  }

  const rhchme::Status st =
      rhchme::eval::WriteScenarioReportJson(report.value(), out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cells)\n", out.c_str(),
              report.value().cells.size());
  return 0;
}
