#!/usr/bin/env python3
"""Docs link hygiene: fail on broken relative links and stale file refs.

Checks, over README.md and every Markdown file under docs/:

  1. Markdown links `[text](target)`: every relative target must resolve
     to an existing file or directory (anchors are stripped; http(s)/
     mailto links are skipped).
  2. Stale file references: inline-code mentions of repo paths
     (`src/...`, `tests/...`, `bench/...`, `docs/...`, `tools/...`,
     `examples/...`, `.github/...`) must exist, so renames can't leave
     the docs pointing at ghosts. Glob-style mentions (containing `*`)
     are ignored.

Exit status 0 when clean, 1 with one line per problem otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_PATH = re.compile(
    r"`((?:src|tests|bench|docs|tools|examples|\.github)/[A-Za-z0-9_./-]+)`"
)
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def doc_files():
    files = []
    readme = REPO / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((REPO / "docs").glob("**/*.md")))
    return files


def check_file(path):
    problems = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MD_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: broken link -> {target}"
                )
        for match in CODE_PATH.finditer(line):
            ref = match.group(1)
            if "*" in ref:
                continue
            if not (REPO / ref).exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: stale file reference -> {ref}"
                )
    return problems


def main():
    files = doc_files()
    if not files:
        print("check_docs_links: no documentation files found", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"check_docs_links: {len(files)} file(s), {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
