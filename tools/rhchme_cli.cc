// rhchme_cli — run the library end to end from the command line.
//
// Subcommands:
//   generate <preset|D1..D4> <out_dir> [seed]
//       Generate a synthetic corpus and save it as a dataset directory.
//   run <method> <dataset_dir> [out_labels.csv]
//       Fit one method (RHCHME, SRC, SNMTF, RMC) on a saved dataset;
//       prints FScore/NMI per labelled type and optionally writes the
//       document labels.
//   compare <dataset_dir>
//       Run all seven paper methods and print the comparison table.
//
// A leading --force_isa=<scalar|avx2|avx512|neon> pins the dispatched
// kernel table (same contract as the RHCHME_FORCE_ISA environment
// variable, over which the flag wins); an ISA this binary or CPU cannot
// run is a clean error.
//
// Example:
//   rhchme_cli generate D1 /tmp/d1
//   rhchme_cli run RHCHME /tmp/d1 /tmp/d1_labels.csv
//   rhchme_cli --force_isa=scalar compare /tmp/d1

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rhchme/rhchme.h"

namespace {

using namespace rhchme;  // NOLINT — CLI binary.

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rhchme_cli [--force_isa=ISA] generate <D1|D2|D3|D4> <out_dir> "
      "[seed]\n"
      "  rhchme_cli [--force_isa=ISA] run <RHCHME|SRC|SNMTF|RMC> "
      "<dataset_dir> [labels_out]\n"
      "  rhchme_cli [--force_isa=ISA] compare <dataset_dir>\n"
      "  ISA: scalar | avx2 | avx512 | neon (pins the kernel table; "
      "overrides RHCHME_FORCE_ISA)\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Strict decimal parse — "abc" or "12junk" must be a diagnostic, not a
/// silent seed of 0.
Result<uint64_t> ParseSeed(const char* arg) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("seed is not a decimal integer: '" +
                                   std::string(arg) + "'");
  }
  return static_cast<uint64_t>(v);
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<data::SyntheticCorpusOptions> preset = data::PresetByName(argv[2]);
  if (!preset.ok()) return Fail(preset.status());
  data::SyntheticCorpusOptions opts = preset.value();
  if (argc > 4) {
    Result<uint64_t> seed = ParseSeed(argv[4]);
    if (!seed.ok()) return Fail(seed.status());
    opts.seed = seed.value();
  }
  Result<data::MultiTypeRelationalData> corpus =
      data::GenerateSyntheticCorpus(opts);
  if (!corpus.ok()) return Fail(corpus.status());
  Status saved = io::SaveDataset(corpus.value(), argv[3]);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s: %zu types, %zu objects\n", argv[3],
              corpus.value().NumTypes(), corpus.value().TotalObjects());
  return 0;
}

void PrintScores(const data::MultiTypeRelationalData& data,
                 const std::vector<std::vector<std::size_t>>& labels) {
  for (std::size_t k = 0; k < data.NumTypes(); ++k) {
    if (data.Type(k).labels.empty()) continue;
    Result<eval::Scores> s =
        eval::ScoreLabels(data.Type(k).labels, labels[k]);
    if (s.ok()) {
      std::printf("%-12s FScore=%.3f NMI=%.3f\n", data.Type(k).name.c_str(),
                  s.value().fscore, s.value().nmi);
    }
  }
}

int Run(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string method = argv[2];
  Result<data::MultiTypeRelationalData> data = io::LoadDataset(argv[3]);
  if (!data.ok()) return Fail(data.status());

  std::vector<std::vector<std::size_t>> labels;
  double seconds = 0.0;
  if (method == "RHCHME") {
    core::Rhchme solver{core::RhchmeOptions{}};
    Result<core::RhchmeResult> fit = solver.Fit(data.value());
    if (!fit.ok()) return Fail(fit.status());
    const core::FitDiagnostics& diag = fit.value().diagnostics;
    if (diag.RecoveryEvents() > 0) {
      std::printf(
          "recovered from %llu numerical fault(s): %llu guard trip(s), "
          "%llu backtrack(s), %llu ridge retry(ies), %llu degraded stop(s)\n",
          static_cast<unsigned long long>(diag.RecoveryEvents()),
          static_cast<unsigned long long>(diag.nan_guard_trips),
          static_cast<unsigned long long>(diag.backtracks),
          static_cast<unsigned long long>(diag.solve_ridge_retries),
          static_cast<unsigned long long>(diag.degraded_stops));
    }
    labels = fit.value().hocc.labels;
    seconds = fit.value().hocc.seconds;
  } else if (method == "SRC") {
    Result<fact::HoccResult> fit =
        baselines::RunSrc(data.value(), baselines::SrcOptions{});
    if (!fit.ok()) return Fail(fit.status());
    labels = fit.value().labels;
    seconds = fit.value().seconds;
  } else if (method == "SNMTF") {
    Result<fact::HoccResult> fit =
        baselines::RunSnmtf(data.value(), baselines::SnmtfOptions{});
    if (!fit.ok()) return Fail(fit.status());
    labels = fit.value().labels;
    seconds = fit.value().seconds;
  } else if (method == "RMC") {
    Result<baselines::RmcResult> fit =
        baselines::RunRmc(data.value(), baselines::RmcOptions{});
    if (!fit.ok()) return Fail(fit.status());
    labels = fit.value().hocc.labels;
    seconds = fit.value().hocc.seconds;
  } else {
    return Usage();
  }

  std::printf("%s finished in %.2fs\n", method.c_str(), seconds);
  PrintScores(data.value(), labels);
  if (argc > 4) {
    Status written = io::WriteLabels(labels[0], argv[4]);
    if (!written.ok()) return Fail(written);
    std::printf("document labels written to %s\n", argv[4]);
  }
  return 0;
}

int Compare(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<data::MultiTypeRelationalData> data = io::LoadDataset(argv[2]);
  if (!data.ok()) return Fail(data.status());
  eval::PaperBenchOptions bench;
  Result<std::vector<eval::MethodRun>> runs =
      eval::RunPaperMethods(data.value(), argv[2], bench);
  if (!runs.ok()) return Fail(runs.status());
  TablePrinter t("Method comparison on " + std::string(argv[2]),
                 {"Method", "FScore", "NMI", "Time(s)"});
  for (const auto& r : runs.value()) {
    t.AddRow({r.method, TablePrinter::Fmt(r.scores.fscore, 3),
              TablePrinter::Fmt(r.scores.nmi, 3),
              TablePrinter::Fmt(r.seconds, 2)});
  }
  t.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel leading --force_isa=... before subcommand dispatch so the
  // positional argv indices the subcommands expect stay intact.
  while (argc >= 2 &&
         std::strncmp(argv[1], "--force_isa=", 12) == 0) {
    const Status st = la::simd::ForceIsa(argv[1] + 12);
    if (!st.ok()) return Fail(st);
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "run") == 0) return Run(argc, argv);
  if (std::strcmp(argv[1], "compare") == 0) return Compare(argc, argv);
  return Usage();
}
